package torusmesh

import (
	"torusmesh/internal/netsim"
	"torusmesh/internal/taskgraph"
)

// TaskGraph is an undirected communication graph over tasks 0..N-1.
type TaskGraph = taskgraph.Graph

// Network is a simulated torus or mesh machine with one router per node,
// dimension-ordered (minimal) routing, and one packet per link per cycle.
type Network = netsim.Network

// Placement maps task index to router index (row-major).
type Placement = netsim.Placement

// SimResult aggregates one simulated communication phase: cycles to
// drain, packet count, max/mean hop counts and peak link load.
type SimResult = netsim.Result

// NewNetwork builds a simulated machine from a spec.
func NewNetwork(sp Spec) *Network { return netsim.New(sp) }

// Simulate runs one communication phase of the task graph under the
// placement (every task edge sends one packet each way).
func Simulate(nw *Network, tg *TaskGraph, p Placement) (SimResult, error) {
	return netsim.Simulate(nw, tg, p)
}

// CongestionStats summarizes static per-link load of a placement under
// dimension-ordered routing (no time simulation).
type CongestionStats = netsim.CongestionStats

// Congestion computes the static congestion of a placement: the peak
// number of task-edge routes sharing one directed link, total traffic
// volume, and the number of used links.
func Congestion(nw *Network, tg *TaskGraph, p Placement) (CongestionStats, error) {
	return netsim.Congestion(nw, tg, p)
}

// PlacementFromEmbedding converts an embedding whose host is the machine
// into a placement of the guest's row-major task indices.
func PlacementFromEmbedding(e *Embedding) Placement {
	return netsim.PlacementFromEmbedding(e)
}

// IdentityPlacement places task i on router i — the naive baseline.
func IdentityPlacement(n int) Placement { return netsim.IdentityPlacement(n) }

// Task graph generators for the application patterns the paper's
// introduction cites (image processing, robotics, scientific computing).

// Pipeline returns a line-shaped task graph of n stages.
func Pipeline(n int) *TaskGraph { return taskgraph.Pipeline(n) }

// RingPipeline returns a ring-shaped task graph of n stages.
func RingPipeline(n int) *TaskGraph { return taskgraph.RingPipeline(n) }

// Stencil2D returns the 5-point stencil communication pattern.
func Stencil2D(rows, cols int) *TaskGraph { return taskgraph.Stencil2D(rows, cols) }

// Stencil3D returns the 7-point stencil communication pattern.
func Stencil3D(x0, x1, x2 int) *TaskGraph { return taskgraph.Stencil3D(x0, x1, x2) }

// HaloExchange2D returns the periodic 5-point stencil (torus) pattern.
func HaloExchange2D(rows, cols int) *TaskGraph { return taskgraph.HaloExchange2D(rows, cols) }

// HypercubeExchange returns the dimension-exchange pattern of size 2^d.
func HypercubeExchange(d int) *TaskGraph { return taskgraph.Hypercube(d) }

// TaskGraphFromSpec converts any torus or mesh into a task graph.
func TaskGraphFromSpec(sp Spec) *TaskGraph { return taskgraph.FromSpec(sp) }
