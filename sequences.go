package torusmesh

import (
	"torusmesh/internal/gray"
	"torusmesh/internal/radix"
)

// GrayF returns f_L(x), the reflected mixed-radix Gray sequence of
// Definition 9: the acyclic enumeration of all nodes of shape L in which
// successive nodes are adjacent in both the L-mesh and the L-torus
// (unit δm- and δt-spread, Lemmas 11-12). It is the paper's dilation-1
// embedding of a line (Theorem 13).
func GrayF(L Shape, x int) Node { return gray.F(radix.Base(L), x) }

// GrayFInv returns the position of node v in the sequence f_L.
func GrayFInv(L Shape, v Node) int { return gray.FInv(radix.Base(L), v) }

// GrayG returns g_L(x), the cyclic sequence of Definition 15 with
// δm-spread at most 2: the paper's dilation-2 embedding of a ring in a
// mesh (Theorem 17), optimal for odd sizes and for lines.
func GrayG(L Shape, x int) Node { return gray.G(radix.Base(L), x) }

// GrayGInv returns the position of node v in the cyclic sequence g_L.
func GrayGInv(L Shape, v Node) int { return gray.GInv(radix.Base(L), v) }

// GrayH returns h_L(x), the cyclic sequence of Definition 22 with unit
// δt-spread (and unit δm-spread when l1 is even): the paper's dilation-1
// embedding of a ring in a torus (Theorem 28) and, after permuting an
// even length to the front, in an even-size mesh (Theorem 24).
func GrayH(L Shape, x int) Node { return gray.H(radix.Base(L), x) }

// GrayHInv returns the position of node v in the cyclic sequence h_L.
func GrayHInv(L Shape, v Node) int { return gray.HInv(radix.Base(L), v) }

// CyclicT returns t_n(x), the cyclic sequence 0, 2, 4, ..., 5, 3, 1 of
// Definition 14 whose successive values differ by at most 2. It is the
// coordinate map of the same-shape torus-into-mesh embedding T_L
// (Definition 35).
func CyclicT(n, x int) int { return gray.TN(n, x) }

// CyclicTInv returns the position of value y in the sequence t_n.
func CyclicTInv(n, y int) int { return gray.TNInv(n, y) }

// GraySequence materializes the whole sequence f_L as nodes 0..n-1; the
// classic binary reflected Gray code is the all-twos special case.
func GraySequence(L Shape) []Node {
	n := L.Size()
	out := make([]Node, n)
	for x := 0; x < n; x++ {
		out[x] = gray.F(radix.Base(L), x)
	}
	return out
}
