package torusmesh

import "torusmesh/internal/place"

// PlacementObjective weighs the three placement costs the search
// minimizes: α·dilation + β·peakLinkLoad + γ·meanUsedLinkLoad.
type PlacementObjective = place.Objective

// PlacementCandidate is one fully scored placement candidate: the
// symmetry variant that produced it and its measured costs.
type PlacementCandidate = place.Candidate

// PlacementResult is the outcome of a placement search: the best
// candidate found next to the paper baseline, the effective search
// parameters, and the verified winning embedding (BestEmbedding).
type PlacementResult = place.Result

// PlacementOptions tunes PlaceWith. The zero value of Objective and
// Budget means their defaults; DefaultPlacementOptions is the
// configuration Place uses.
type PlacementOptions struct {
	// Objective is the score being minimized (zero value: dilation and
	// peak congestion weighted equally).
	Objective PlacementObjective
	// Budget caps how many candidates are constructed and measured
	// (<= 0: a default of place.DefaultBudget).
	Budget int
	// CapDilation discards candidates dilating worse than the paper
	// baseline, so the winner trades congestion at equal or better
	// dilation.
	CapDilation bool
	// Rotations includes digit-rotation candidates (mesh sides only;
	// torus rotations are metric-invariant automorphisms).
	Rotations bool
	// Anneal refines the Pareto front by a seeded, deterministic
	// simulated-annealing pass, evaluated incrementally so it scales to
	// pairs of any size; a refined placement joins the front only when
	// it strictly dominates its seed.
	Anneal bool
	// AnnealSteps budgets each annealing run (<= 0: a fixed default).
	AnnealSteps int
	// AnnealMoves selects the annealing move repertoire: "" or "swap"
	// for node swaps only, "all" to mix in host-axis segment reversals
	// and axis-plane swaps.
	AnnealMoves string
	// Seed seeds the annealing RNG (0: a fixed default). Equal options
	// — seed included — produce identical results.
	Seed int64
	// WideTables forces the annealing pass's placement tables into the
	// historical []int form instead of the compact int32 default.
	// Results are bit-for-bit identical either way; this is a
	// benchmarking and debugging escape hatch.
	WideTables bool
}

// DefaultPlacementOptions caps dilation at the baseline's and enables
// every candidate generator.
func DefaultPlacementOptions() PlacementOptions {
	return PlacementOptions{CapDilation: true, Rotations: true}
}

// Place searches for a congestion-aware placement of g on h: candidate
// embeddings (the paper's construction and the all-primes refinement —
// including rotations of its intermediate stage — composed with axis
// permutations and digit rotations) are scored on dilation and netsim
// link congestion. The result carries the full Pareto front over
// (dilation, peak, avg-link) in Result.Front, with the objective's
// winner — always a front member — returned next to the paper
// baseline. The winner never dilates worse than the baseline
// (DefaultPlacementOptions caps dilation); use PlaceWith to trade
// differently or to enable the annealing refinement.
func Place(g, h Spec) (*PlacementResult, error) {
	return PlaceWith(g, h, DefaultPlacementOptions())
}

// PlaceWith is Place with explicit objective, budget, generator and
// annealing options.
func PlaceWith(g, h Spec, opts PlacementOptions) (*PlacementResult, error) {
	return place.Search(place.Config{
		Guest:       g,
		Host:        h,
		Objective:   opts.Objective,
		Budget:      opts.Budget,
		CapDilation: opts.CapDilation,
		Rotations:   opts.Rotations,
		Anneal:      opts.Anneal,
		AnnealSteps: opts.AnnealSteps,
		AnnealMoves: opts.AnnealMoves,
		Seed:        opts.Seed,
		WideTables:  opts.WideTables,
		Strategies:  place.DefaultStrategies(),
	})
}
