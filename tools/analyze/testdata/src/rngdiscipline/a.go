// Fixtures for the rngdiscipline analyzer: global math/rand draws are
// flagged; seeded instances and annotated sites are not.
package rngdiscipline

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraw(n int) int {
	return rand.Intn(n) // want "global rand.Intn"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

func globalV2() int {
	return randv2.Int() // want "global rand.Int"
}

// seeded is the sanctioned pattern: an explicit source, an explicit
// seed, a private stream.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

func seededV2(a, b uint64) int {
	rng := randv2.New(randv2.NewPCG(a, b))
	return rng.Int()
}

func annotated() float64 {
	//torusmesh:rng jitter on a retry backoff; never reaches an artifact
	return rand.Float64()
}
