// Package obs is a structural stand-in for the repo's internal/obs
// registry: the metricname analyzer matches Registry methods by
// (package name, type name, method name), so these stubs exercise it
// without importing the root module.
package obs

type Label struct{ K, V string }

func L(k, v string) Label { return Label{K: k, V: v} }

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name string, labels ...Label) *Counter             { return &Counter{} }
func (r *Registry) Gauge(name string, labels ...Label) *Gauge                 { return &Gauge{} }
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {}
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return &Histogram{}
}
func (r *Registry) Describe(name, help string) {}
