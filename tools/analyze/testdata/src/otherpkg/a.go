// A package outside the wallclock analyzer's target list: direct
// clock reads are fine here.
package otherpkg

import "time"

func stamp() time.Time { return time.Now() }
