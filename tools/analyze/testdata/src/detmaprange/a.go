// Fixtures for the detmaprange analyzer: map iteration feeding output
// is flagged; collect-sort-emit and annotated loops are not.
package detmaprange

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

func emitPrintf(m map[string]int) {
	for k, v := range m { // want "map iteration order is randomized"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func emitBuilder(m map[string]int, b *strings.Builder) {
	for k := range m { // want "map iteration order is randomized"
		b.WriteString(k)
	}
}

func emitEncoderNested(m map[string]int, enc *json.Encoder) error {
	for _, v := range m { // want "map iteration order is randomized"
		if v > 0 {
			if err := enc.Encode(v); err != nil {
				return err
			}
		}
	}
	return nil
}

func emitMarshal(m map[string]int) [][]byte {
	var out [][]byte
	for _, v := range m { // want "map iteration order is randomized"
		b, _ := json.Marshal(v)
		out = append(out, b)
	}
	return out
}

// sortedIsFine is the sanctioned idiom: collect, sort, emit from the
// slice. Neither loop is flagged — the map range does not emit, and
// the emitting range is over a slice.
func sortedIsFine(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// quietMapRange aggregates without emitting: not flagged.
func quietMapRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// annotated loops are a deliberate, visible escape hatch.
func annotated(m map[string]int) {
	//torusmesh:sorted order-insensitive: one line per key, consumer sorts
	for k := range m {
		fmt.Println(k)
	}
}
