// A Config without a Spec() method: the specdrift analyzer stays
// inert — there is no spec token to drift from.
package nospecmethod

type Config struct {
	Budget  int
	Threads int
}

func Search(cfg Config) int { return cfg.Budget * cfg.Threads }
