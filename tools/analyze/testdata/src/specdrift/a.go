// Fixtures for the specdrift analyzer: a Config field the engine
// reads without Spec() referencing it is flagged; Spec-covered and
// annotated fields are not.
package specdrift

import "fmt"

type Config struct {
	// Name is the pair identity, recorded separately in the artifact.
	//torusmesh:nospec
	Name string
	// Budget and Anneal are search settings covered by Spec().
	Budget int
	Anneal bool
	// Threads changes results but is missing from Spec() — the drift
	// this analyzer exists to catch.
	Threads int
}

func (cfg Config) Spec() string {
	return fmt.Sprintf("budget=%d anneal=%t", cfg.Budget, cfg.Anneal)
}

func Search(cfg Config) int {
	if cfg.Threads > 1 { // want "field Threads is read by the engine but never referenced by Spec"
		return run(cfg.Budget, cfg.Name) * cfg.Threads
	}
	return run(cfg.Budget, cfg.Name)
}

func run(budget int, name string) int { return budget + len(name) }
