// Fixtures for the wallclock analyzer, in a package path matching its
// internal/driver target: direct clock calls are flagged; the
// injectable-clock idiom and annotated sites are not.
package driver

import "time"

type engine struct {
	now func() time.Time
}

// newEngine shows the sanctioned pattern: the time.Now *value* as the
// nil-config default is a reference, not a call, and is allowed.
func newEngine(clock func() time.Time) *engine {
	e := &engine{now: clock}
	if e.now == nil {
		e.now = time.Now
	}
	return e
}

func (e *engine) elapsed(t0 time.Time) time.Duration {
	return e.now().Sub(t0)
}

func direct() time.Duration {
	t0 := time.Now()      // want "direct time.Now call"
	return time.Since(t0) // want "direct time.Since call"
}

func annotated() time.Time {
	//torusmesh:wallclock journal stamps record real wall time by design
	return time.Now()
}
