// Fixtures for the metricname analyzer: non-constant names, grammar
// violations, unlabeled re-registration and kind conflicts are
// flagged; constant names, Describe+register pairs, labeled families
// and annotated reuse are not.
package metricname

import "obs"

const prefix = "placed_"

func register(r *obs.Registry, dynamic string) {
	// The sanctioned shapes.
	r.Describe("placed_requests_total", "Place calls received.")
	r.Counter("placed_requests_total")
	r.Counter(prefix + "cache_misses_total")
	r.GaugeFunc("placed_uptime_seconds", func() float64 { return 0 })
	r.Counter("placed_tier_served_total", obs.L("tier", "baseline"))
	r.Counter("placed_tier_served_total", obs.L("tier", "searched"))
	r.Histogram("placed_http_seconds", []float64{1, 2}, obs.L("endpoint", "/place"))
	r.Histogram("placed_http_seconds", []float64{1, 2}, obs.L("endpoint", "/artifact"))

	// The violations.
	r.Counter(dynamic)                     // want "must be a compile-time string constant"
	r.Gauge("Placed-Depth")                // want "does not match the Prometheus grammar"
	r.Counter("placed_cache_misses_total") // want "registered more than once in this package"
	r.Gauge("placed_requests_total")       // want "registered as Gauge here but as Counter"

	// Deliberate reuse carries the annotation.
	//torusmesh:metric-reuse mirrored onto a second registry on purpose
	r.Counter("placed_requests_total")
}
