package main_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSuiteCleanOnRepo is the meta-gate: the multichecker binary,
// driven exactly the way CI drives it (go vet -vettool over the root
// module), must exit 0 on the repo itself. Any new diagnostic — a
// stray time.Now, an unsorted emitting map range, a Config knob
// missing from Spec() — fails this test before it fails CI.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole root module under vet; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "torusmesh-analyze")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building the analyzer binary: %v\n%s", err, out)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("the analyzer suite is not clean over the repo:\n%s", out)
	}
}
