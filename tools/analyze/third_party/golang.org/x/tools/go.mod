module golang.org/x/tools

go 1.22.0
