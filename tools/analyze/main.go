// Command torusmesh-analyze is the repo's static-analysis gate: five
// analyzers that machine-check the determinism, spec-token and metrics
// invariants every engine's bit-for-bit guarantee rests on. It speaks
// the `go vet -vettool` protocol, so the whole suite runs over the
// root module as
//
//	go build -o /tmp/torusmesh-analyze ./tools/analyze
//	go vet -vettool=/tmp/torusmesh-analyze ./...
//
// (from the repo root; any diagnostic fails the vet run). See
// ARCHITECTURE.md, "Static analysis" for what each analyzer enforces
// and the //torusmesh:* annotation escape hatches.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"torusmesh/tools/analyze/internal/analyzers/detmaprange"
	"torusmesh/tools/analyze/internal/analyzers/metricname"
	"torusmesh/tools/analyze/internal/analyzers/rngdiscipline"
	"torusmesh/tools/analyze/internal/analyzers/specdrift"
	"torusmesh/tools/analyze/internal/analyzers/wallclock"
)

func main() {
	unitchecker.Main(
		detmaprange.Analyzer,
		wallclock.Analyzer,
		rngdiscipline.Analyzer,
		specdrift.Analyzer,
		metricname.Analyzer,
	)
}
