package specdrift_test

import (
	"path/filepath"
	"testing"

	"torusmesh/tools/analyze/internal/analyzers/specdrift"
	"torusmesh/tools/analyze/internal/analyzertest"
)

func TestSpecDrift(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	// specdrift activates on Config+Spec packages; nospecmethod proves
	// it stays inert without a Spec() method (its fixture has no wants).
	analyzertest.Run(t, td, specdrift.Analyzer, "specdrift", "nospecmethod")
}
