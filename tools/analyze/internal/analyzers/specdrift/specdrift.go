// Package specdrift guards the engine-compat spec token. In any
// package that declares a struct `Config` with a `Spec() string`
// method (today: internal/place), every Config field the engine reads
// must either be referenced inside Spec() — and therefore change the
// token — or carry an explicit `//torusmesh:nospec` annotation on its
// declaration stating that artifacts do not depend on it (Guest/Host
// are the pair identity, WideTables is a bit-for-bit-identical memory
// representation, Clock is measurement-only).
//
// Without this check, adding a knob that alters search results but
// forgetting to fold it into Spec() silently poisons everything keyed
// on the token: census Merge would combine shards searched under
// different settings, resume journals would fold into incompatible
// searches, and the placed cache sidecar would serve stale fronts.
package specdrift

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"torusmesh/tools/analyze/internal/analyzers/annotate"
)

var Analyzer = &analysis.Analyzer{
	Name: "specdrift",
	Doc:  "every Config field the engine reads must be referenced by Spec() or annotated //torusmesh:nospec",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	cfg := configType(pass)
	if cfg == nil {
		return nil, nil
	}
	spec := specMethod(pass, cfg)
	if spec == nil || spec.Body == nil {
		return nil, nil
	}
	fields := map[*types.Var]bool{} // fields of Config
	st, ok := cfg.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}
	inSpec := map[*types.Var]bool{} // fields referenced inside Spec()
	collectFieldReads(pass, spec.Body, fields, func(f *types.Var, _ *ast.SelectorExpr) {
		inSpec[f] = true
	})
	exempt := annotatedFields(pass, cfg)

	reported := map[*types.Var]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd == spec || fd.Body == nil {
				continue
			}
			collectFieldReads(pass, fd.Body, fields, func(fv *types.Var, sel *ast.SelectorExpr) {
				if inSpec[fv] || exempt[fv.Name()] || reported[fv] {
					return
				}
				if annotate.InTestFile(pass, sel.Pos()) {
					return
				}
				reported[fv] = true
				pass.Reportf(sel.Pos(), "%s.Config field %s is read by the engine but never referenced by Spec(): a knob outside the spec token silently poisons artifact compatibility; fold it into Spec() or annotate the field declaration //torusmesh:nospec", pass.Pkg.Name(), fv.Name())
			})
		}
	}
	return nil, nil
}

// configType finds a struct type named Config declared in this package.
func configType(pass *analysis.Pass) *types.Named {
	obj, ok := pass.Pkg.Scope().Lookup("Config").(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// specMethod finds the FuncDecl for Config's `Spec() string` method.
func specMethod(pass *analysis.Pass, cfg *types.Named) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Spec" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok && named.Obj() == cfg.Obj() {
				return fd
			}
		}
	}
	return nil
}

// collectFieldReads calls fn for every selector in body that resolves
// to one of the given struct fields.
func collectFieldReads(pass *analysis.Pass, body ast.Node, fields map[*types.Var]bool, fn func(*types.Var, *ast.SelectorExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if fv, ok := s.Obj().(*types.Var); ok && fields[fv] {
			fn(fv, sel)
		}
		return true
	})
}

// annotatedFields returns the names of Config fields whose declaration
// carries //torusmesh:nospec in its doc or line comment.
func annotatedFields(pass *analysis.Pass, cfg *types.Named) map[string]bool {
	out := map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != cfg.Obj().Name() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !hasNospec(field.Doc) && !hasNospec(field.Comment) {
					continue
				}
				for _, name := range field.Names {
					out[name.Name] = true
				}
			}
			return false
		})
	}
	return out
}

func hasNospec(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, "torusmesh:nospec") {
			return true
		}
	}
	return false
}
