package metricname_test

import (
	"path/filepath"
	"testing"

	"torusmesh/tools/analyze/internal/analyzers/metricname"
	"torusmesh/tools/analyze/internal/analyzertest"
)

func TestMetricName(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, td, metricname.Analyzer, "metricname")
}
