// Package metricname keeps the obs instrument namespace sane at
// compile time. Calls to the obs.Registry registration methods
// (Counter, Gauge, GaugeFunc, Histogram, and Describe's name argument)
// must pass a compile-time constant string matching the Prometheus
// metric-name grammar the exporter assumes, [a-z][a-z0-9_]*; a
// runtime-built name can collide, escape the exposition's sorted
// rendering, or register unbounded cardinality. Each name may be
// registered at most once per package — the get-or-create registry
// makes a second registration site a silent alias, which is almost
// always a copy-paste bug (a deliberate cross-registry reuse can carry
// `//torusmesh:metric-reuse`). A labeled family — the same name
// registered at several sites, each with its own label set, like
// placed_tier_served_total{tier=…} — is the one sanctioned shape of
// repetition, provided every site passes labels and the instrument
// kind agrees.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"

	"torusmesh/tools/analyze/internal/analyzers/annotate"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "obs instrument names must be constant [a-z][a-z0-9_]* strings, each registered at most once",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registering marks the methods that create an instrument; Describe
// only attaches help text and is exempt from the once-only rule.
var registering = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

type site struct {
	pos     token.Pos
	method  string
	labeled bool
}

func run(pass *analysis.Pass) (interface{}, error) {
	firstSite := map[string]site{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if !registering[method] && method != "Describe" {
				return true
			}
			if !isRegistryMethod(pass, sel) || annotate.InTestFile(pass, call.Pos()) {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "obs instrument name passed to %s must be a compile-time string constant so the exposition namespace is auditable", method)
				return true
			}
			name := constant.StringVal(tv.Value)
			if !nameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "obs instrument name %q does not match the Prometheus grammar [a-z][a-z0-9_]*", name)
				return true
			}
			if !registering[method] {
				return true
			}
			// Labels follow the fixed arguments: Counter/Gauge take
			// (name, labels...), GaugeFunc (name, fn, labels...),
			// Histogram (name, bounds, labels...).
			fixed := 1
			if method == "GaugeFunc" || method == "Histogram" {
				fixed = 2
			}
			cur := site{pos: call.Pos(), method: method, labeled: len(call.Args) > fixed}
			prev, dup := firstSite[name]
			if !dup {
				firstSite[name] = cur
				return true
			}
			if prev.pos == cur.pos || annotate.Has(pass, call.Pos(), "metric-reuse") {
				return true
			}
			switch {
			case prev.method != cur.method:
				pass.Reportf(call.Pos(), "obs instrument %q is registered as %s here but as %s at %s; one name must keep one kind", name, cur.method, prev.method, pass.Fset.Position(prev.pos))
			case !prev.labeled || !cur.labeled:
				pass.Reportf(call.Pos(), "obs instrument %q is registered more than once in this package (first at %s); register once and share the handle, use distinct labels at every site, or annotate //torusmesh:metric-reuse", name, pass.Fset.Position(prev.pos))
			}
			return true
		})
	}
	return nil, nil
}

// isRegistryMethod reports whether sel is a method selection on
// obs.Registry (any package named obs, so fixtures qualify too).
func isRegistryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	rt := s.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}
