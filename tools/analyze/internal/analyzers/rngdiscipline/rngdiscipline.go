// Package rngdiscipline forbids the global math/rand (and
// math/rand/v2) top-level functions — rand.Intn, rand.Shuffle,
// rand.Float64, rand.Seed, … — in production code. Those draw from a
// shared, runtime-seeded source: any engine touching it produces a
// different RNG stream per process and per interleaving, which would
// destroy the anneal engine's bit-for-bit reproducibility (two
// searches with equal configs, seed included, must produce identical
// artifacts).
//
// The only sanctioned randomness is an explicitly seeded instance,
// `rand.New(rand.NewSource(seed))` (or v2's rand.New(rand.NewPCG(…))),
// threaded to where it is used — exactly how place.annealFront derives
// one stream per seed index. Constructor references (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) and type names are therefore allowed; a
// deliberate exception can carry `//torusmesh:rng`.
package rngdiscipline

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"torusmesh/tools/analyze/internal/analyzers/annotate"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "forbid global math/rand top-level functions; only seeded rand.New(rand.NewSource(…)) instances are reproducible",
	Run:  run,
}

var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 source constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch annotate.ImporteeName(pass, sel) {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true // type or const reference, not a draw
			}
			if allowed[sel.Sel.Name] {
				return true
			}
			if annotate.InTestFile(pass, sel.Pos()) || annotate.Has(pass, sel.Pos(), "rng") {
				return true
			}
			pass.Reportf(sel.Pos(), "global rand.%s draws from the shared runtime-seeded source and is not reproducible; use a seeded rand.New(rand.NewSource(…)) instance (or annotate //torusmesh:rng)", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}
