package rngdiscipline_test

import (
	"path/filepath"
	"testing"

	"torusmesh/tools/analyze/internal/analyzers/rngdiscipline"
	"torusmesh/tools/analyze/internal/analyzertest"
)

func TestRNGDiscipline(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, td, rngdiscipline.Analyzer, "rngdiscipline")
}
