// Package detmaprange flags `for … range` over a map whose loop body
// emits output — writes to an io.Writer or strings.Builder, fmt
// printing, or encoding/json encoding. Go randomizes map iteration
// order, so any bytes produced inside such a loop land in a different
// order on every run, which silently breaks the repo's bit-for-bit
// artifact, NDJSON-stream and Prometheus-exposition guarantees.
//
// The fix is the collect-sort-emit idiom the codebase already uses
// everywhere (cf. obs.Registry.sorted, experiments.sortedKeys): range
// the map into a slice, sort it, range the slice. A site that is
// genuinely order-insensitive (say, each iteration writes to its own
// file) can carry a `//torusmesh:sorted` annotation on the range
// statement or the line above it.
package detmaprange

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"torusmesh/tools/analyze/internal/analyzers/annotate"
)

var Analyzer = &analysis.Analyzer{
	Name: "detmaprange",
	Doc:  "flag map iteration that emits output (map order is randomized; artifacts must be bit-for-bit)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if annotate.InTestFile(pass, rng.Pos()) || annotate.Has(pass, rng.Pos(), "sorted") {
				return true
			}
			if emit := firstEmission(pass, rng.Body); emit != nil {
				pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop emits output (%s); sort the keys first or annotate the loop //torusmesh:sorted", emit.desc)
			}
			return true
		})
	}
	return nil, nil
}

type emission struct{ desc string }

// firstEmission scans a map-range body (at any nesting depth) for a
// call that writes bytes somewhere order-sensitive.
func firstEmission(pass *analysis.Pass, body *ast.BlockStmt) *emission {
	var found *emission
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		// Package-level emitters: fmt.Fprint*/Print* and
		// encoding/json Marshal/Encode entry points.
		switch annotate.ImporteeName(pass, sel) {
		case "fmt":
			switch name {
			case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
				found = &emission{desc: "fmt." + name}
				return false
			}
			return true
		case "encoding/json":
			switch name {
			case "Marshal", "MarshalIndent":
				found = &emission{desc: "json." + name}
				return false
			}
			return true
		}
		// Method emitters: Write/WriteString/WriteByte/WriteRune on
		// writers and builders, Encode on stream encoders.
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			if isMethodCall(pass, sel) {
				found = &emission{desc: "(" + typeName(pass, sel.X) + ")." + name}
				return false
			}
		}
		return true
	})
	return found
}

func isMethodCall(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

func typeName(pass *analysis.Pass, x ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[x]; ok {
		return tv.Type.String()
	}
	return "?"
}
