package detmaprange_test

import (
	"path/filepath"
	"testing"

	"torusmesh/tools/analyze/internal/analyzers/detmaprange"
	"torusmesh/tools/analyze/internal/analyzertest"
)

func TestDetMapRange(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	analyzertest.Run(t, td, detmaprange.Analyzer, "detmaprange")
}
