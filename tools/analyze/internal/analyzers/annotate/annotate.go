// Package annotate resolves the repo's //torusmesh:* analyzer
// annotations — the deliberate, reviewable escape hatches of the
// static-analysis suite. An annotation suppresses a diagnostic only
// when it sits on the flagged line itself or on the line directly
// above it, so every suppression is visible right at the site it
// excuses.
package annotate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Has reports whether a comment containing "torusmesh:<tag>" is
// attached to pos: same line, or the line immediately above.
func Has(pass *analysis.Pass, pos token.Pos, tag string) bool {
	file := FileOf(pass, pos)
	if file == nil {
		return false
	}
	want := "torusmesh:" + tag
	line := pass.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, want) {
				continue
			}
			cl := pass.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// FileOf returns the syntax file of the pass containing pos, or nil.
func FileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file. The suite
// checks production invariants; tests legitimately use fake clocks,
// ad-hoc printing and throwaway randomness.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// ImporteeName resolves a selector expression's qualifier to the
// imported package path when the expression is pkg.Name, else "".
func ImporteeName(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
