package wallclock_test

import (
	"path/filepath"
	"testing"

	"torusmesh/tools/analyze/internal/analyzers/wallclock"
	"torusmesh/tools/analyze/internal/analyzertest"
)

func TestWallclock(t *testing.T) {
	td, err := filepath.Abs(filepath.Join("..", "..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	// internal/driver matches the target list; otherpkg proves the
	// analyzer stays inert elsewhere (its fixture has no wants).
	analyzertest.Run(t, td, wallclock.Analyzer, "internal/driver", "otherpkg")
}
