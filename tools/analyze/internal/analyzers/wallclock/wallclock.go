// Package wallclock flags direct time.Now / time.Since calls in the
// engine packages that carry an injectable clock (internal/serve,
// internal/driver, internal/census, internal/place). A raw wall-clock
// read buried in engine code cannot be substituted in tests, so timing
// behavior (straggler cutoffs, time-to-upgrade histograms, reported
// wall times) becomes untestable and drifts from the deterministic
// e2e fixtures.
//
// The required idiom is the one internal/serve established: the
// config carries a `Clock func() time.Time` (nil means time.Now), the
// engine stores `now` once at construction, and every read goes
// through it — `now()` instead of time.Now(), `now().Sub(t0)` instead
// of time.Since(t0). Referencing the time.Now *value* as the default
// (`now = time.Now`) is not a call and is deliberately allowed: that
// line is the pattern's one legitimate appearance. A call site that
// must read the real clock can carry `//torusmesh:wallclock`.
package wallclock

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"

	"torusmesh/tools/analyze/internal/analyzers/annotate"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flag direct time.Now/time.Since calls where the injectable-clock pattern is required",
	Run:  run,
}

// Packages is the comma-separated list of package-path suffixes the
// analyzer applies to, overridable via -wallclock.packages.
var Packages = "internal/serve,internal/driver,internal/census,internal/place"

func init() {
	Analyzer.Flags.StringVar(&Packages, "packages",
		Packages, "comma-separated package-path suffixes the check applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || annotate.ImporteeName(pass, sel) != "time" {
				return true
			}
			name := sel.Sel.Name
			if name != "Now" && name != "Since" {
				return true
			}
			if annotate.InTestFile(pass, call.Pos()) || annotate.Has(pass, call.Pos(), "wallclock") {
				return true
			}
			fix := "now()"
			if name == "Since" {
				fix = "now().Sub(t)"
			}
			pass.Reportf(call.Pos(), "direct time.%s call in %s: use the injectable clock (%s) so tests can substitute it, or annotate //torusmesh:wallclock", name, pass.Pkg.Path(), fix)
			return true
		})
	}
	return nil, nil
}

func applies(path string) bool {
	for _, suf := range strings.Split(Packages, ",") {
		if suf = strings.TrimSpace(suf); suf != "" && strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}
