// Package analyzertest runs an analyzer over source fixtures and
// checks its diagnostics against `// want "regexp"` comments, the way
// golang.org/x/tools/go/analysis/analysistest does. It exists because
// this module builds offline from a trimmed x/tools snapshot that does
// not carry analysistest's go/packages dependency tree; fixtures are
// parsed and type-checked with the standard library alone (the
// "source" importer compiles stdlib imports from GOROOT, and fixture
// packages import each other by their path under testdata/src).
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgPath> for each given package path, runs
// the analyzer over it, and reports any mismatch between emitted
// diagnostics and the fixtures' // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags := ld.runPass(t, a, pkg)
		checkWants(t, ld.fset, path, pkg.files, diags)
	}
}

type fixturePkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

type loader struct {
	src    string
	fset   *token.FileSet
	stdlib types.Importer
	loaded map[string]*fixturePkg
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		src:    src,
		fset:   fset,
		stdlib: importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*fixturePkg{},
	}
}

// Import resolves fixture-local package paths to testdata/src and
// everything else to the stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.src, path); isDir(dir) {
		fp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return ld.stdlib.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := ld.loaded[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	fp := &fixturePkg{pkg: pkg, info: info, files: files}
	ld.loaded[path] = fp
	return fp, nil
}

func (ld *loader) runPass(t *testing.T, a *analysis.Analyzer, fp *fixturePkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}
	return diags
}

func isDir(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

// wantRE extracts the expectation list of a fixture line's trailing
// comment: one or more Go-quoted regexps after the word "want".
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, pkgPath string, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted(m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	var unexpected []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Errorf("%s: %s", pkgPath, u)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", pkgPath, w.file, w.line, w.re)
		}
	}
}

// quoted pulls the double-quoted strings out of a want clause.
func quoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		rest := s[i:]
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return out
		}
		uq, err := strconv.Unquote(q)
		if err != nil {
			return out
		}
		out = append(out, uq)
		s = rest[len(q):]
	}
}
