package torusmesh_test

import (
	"bytes"
	"context"
	"testing"

	"torusmesh"
	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
)

// TestRunDistributedMatchesUnsharded: the public veneer reproduces the
// unsharded census engine's artifact bit for bit, for both metric-only
// and congestion censuses.
func TestRunDistributedMatchesUnsharded(t *testing.T) {
	for _, congestion := range []bool{false, true} {
		cfg := census.Config{
			Size:       24,
			Shapes:     catalog.CanonicalShapesOfSize(24, 0),
			Metrics:    true,
			Congestion: congestion,
			Embed:      core.Embed,
		}
		want, err := census.Run(cfg)
		if err != nil {
			t.Fatalf("census.Run: %v", err)
		}
		got, err := torusmesh.RunDistributed(context.Background(), 24, torusmesh.DistributedOptions{
			Shards:     5,
			Workers:    3,
			Congestion: congestion,
		})
		if err != nil {
			t.Fatalf("RunDistributed: %v", err)
		}
		wb, err := want.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("congestion=%v: distributed census differs from unsharded census", congestion)
		}
		if got.Embeddable == 0 || got.Pairs != got.SpacePairs {
			t.Errorf("congestion=%v: distributed census incomplete: %d/%d pairs, %d embeddable",
				congestion, got.Pairs, got.SpacePairs, got.Embeddable)
		}
	}
}

// TestRunDistributedDefaults: the zero options resolve to a working
// fleet.
func TestRunDistributedDefaults(t *testing.T) {
	c, err := torusmesh.RunDistributed(context.Background(), 12, torusmesh.DistributedOptions{})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if c.Pairs != c.SpacePairs || c.Pairs == 0 {
		t.Errorf("default fleet census incomplete: %d/%d pairs", c.Pairs, c.SpacePairs)
	}
}
