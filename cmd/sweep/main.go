// Command sweep is the CLI of the coverage census engine: for a given
// size it attempts to embed every ordered pair of canonical torus/mesh
// shapes of that size (in both kind combinations), verifies each
// result, measures dilation costs, and tallies which construction
// carried each pair. The pair space shards deterministically across
// processes, censuses serialize to versioned JSON artifacts, and
// -merge recombines shard artifacts into the census an unsharded run
// would have produced, bit for bit.
//
// Usage:
//
//	sweep -n 24
//	sweep -n 360 -maxdim 4 -congestion
//	sweep -n 60 -congestion -place -place-budget 32
//	sweep -n 360 -shard 2/8 -json s2.json
//	sweep -merge -json full.json s0.json s1.json ... s7.json
//
// Exit codes: 0 = success; 1 = verification failures (a construction
// broke injectivity or its dilation guarantee — a library bug); 2 =
// usage, configuration or artifact-validation errors (bad flags,
// unreadable or incompatible shard artifacts, missing or duplicated
// shards in a -merge).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/par"
	"torusmesh/internal/place"
)

// Exit codes, kept distinct so sweep drivers can tell "the library is
// broken" (retrying will not help) from "this invocation or these
// artifacts are invalid" (fix the inputs and retry).
const (
	exitVerifyFailures = 1
	exitUsage          = 2
)

func main() {
	n := flag.Int("n", 24, "graph size (number of nodes)")
	maxDim := flag.Int("maxdim", 0, "cap on shape dimension (0 = unlimited)")
	shard := flag.String("shard", "0/1", "evaluate only shard i/m of the pair space (0 <= i < m)")
	metrics := flag.Bool("metrics", true, "measure dilation and average dilation per pair")
	congestion := flag.Bool("congestion", false, "measure netsim peak-link congestion per pair")
	doPlace := flag.Bool("place", false, "run the congestion-aware placement search per embeddable pair (implies -congestion)")
	placeBudget := flag.Int("place-budget", 32, "candidate budget of each per-pair placement search")
	placeObjective := flag.String("place-objective", "1,1,0", "placement objective weights α,β,γ")
	jsonOut := flag.String("json", "", "write the census artifact to this file")
	merge := flag.Bool("merge", false, "merge the shard artifacts named as arguments instead of sweeping")
	showShapes := flag.Bool("shapes", false, "list the canonical shapes first")
	threshold := flag.Int("threshold", embed.MaterializeThreshold(),
		"guest-size cutoff for kernel table materialization (<= 0 disables)")
	timing := flag.Bool("time", false, "report the wall time of the sweep")
	flag.Parse()

	if *merge {
		runMerge(flag.Args(), *jsonOut)
		return
	}
	embed.SetMaterializeThreshold(*threshold)
	if *n < 2 {
		fatalf("sweep: -n must be at least 2")
	}
	shardIdx, shardCount, err := parseShard(*shard)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	shapes := catalog.CanonicalShapesOfSize(*n, *maxDim)
	if *showShapes {
		for _, s := range shapes {
			fmt.Println(s)
		}
		fmt.Println()
	}
	cfg := census.Config{
		Size:       *n,
		MaxDim:     *maxDim,
		Shapes:     shapes,
		Shard:      shardIdx,
		Shards:     shardCount,
		Metrics:    *metrics,
		Congestion: *congestion,
		Embed:      core.Embed,
	}
	if *doPlace {
		obj, err := place.ParseObjective(*placeObjective)
		if err != nil {
			fatalf("sweep: %v", err)
		}
		cfg.Congestion = true // the search is compared against the congestion baseline
		cfg.Place, cfg.PlaceSpec = place.CensusFunc(place.Config{
			Objective:   obj,
			Budget:      *placeBudget,
			CapDilation: true,
			Rotations:   true,
			Strategies:  place.DefaultStrategies(),
		})
	}
	c, err := census.Run(cfg)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	report(os.Stdout, c)
	if *timing {
		fmt.Printf("\nswept in %s across %d worker(s)", c.Elapsed, par.Workers())
		if worst := c.SlowestPair(); worst != nil {
			fmt.Printf("; slowest pair %s -> %s took %s", worst.Guest, worst.Host, worst.Wall)
		}
		fmt.Println()
	}
	save(c, *jsonOut)
	exitCode(c)
}

// runMerge combines shard artifacts, reports the merged census, and
// optionally writes it back out.
func runMerge(paths []string, jsonOut string) {
	if len(paths) == 0 {
		fatalf("sweep: -merge needs at least one artifact file")
	}
	parts := make([]*census.Census, len(paths))
	for i, p := range paths {
		c, err := census.ReadFile(p)
		if err != nil {
			fatalf("sweep: %v", err)
		}
		parts[i] = c
	}
	c, err := census.Merge(parts...)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	fmt.Printf("merged %d shard artifact(s)\n", len(parts))
	report(os.Stdout, c)
	save(c, jsonOut)
	exitCode(c)
}

// report prints the census summary: the coverage header with
// construction and verification failures reported distinctly, then the
// per-strategy table with dilation histograms and peak congestion.
func report(w io.Writer, c *census.Census) {
	fmt.Fprintf(w, "size %d: %d canonical shapes, %d ordered (shape,kind) pairs",
		c.Size, len(c.Shapes), c.SpacePairs)
	if c.Shards > 1 {
		fmt.Fprintf(w, " (shard %d/%d: %d pairs)", c.Shard, c.Shards, c.Pairs)
	}
	fmt.Fprintln(w)
	pct := 0.0
	if c.Pairs > 0 {
		pct = 100 * float64(c.Embeddable) / float64(c.Pairs)
	}
	fmt.Fprintf(w, "embeddable: %d (%.1f%%), no construction applies: %d\n",
		c.Embeddable, pct, c.ConstructFailures)
	if c.VerifyFailures > 0 {
		fmt.Fprintf(w, "VERIFICATION FAILURES: %d (constructions built but broke injectivity or their dilation guarantee)\n",
			c.VerifyFailures)
		for i := range c.Results {
			if c.Results[i].FailureStage == census.StageVerify {
				fmt.Fprintf(w, "  %s -> %s: %s\n", c.Results[i].Guest, c.Results[i].Host, c.Results[i].Failure)
			}
		}
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	header := "strategy\tpairs"
	if c.Metrics {
		header += "\tdilation histogram"
	}
	if c.Congestion {
		header += "\tpeak congestion"
	}
	if c.Placed {
		header += "\tplace wins"
	}
	fmt.Fprintln(tw, header)
	var hist map[string]map[int]int
	var peak, wins map[string]int
	if c.Metrics {
		hist = c.DilationHistogram()
	}
	if c.Congestion {
		peak = c.PeakCongestion()
	}
	if c.Placed {
		wins = c.PlaceImprovements()
	}
	keys := make([]string, 0, len(c.ByStrategy))
	for k := range c.ByStrategy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%d", k, c.ByStrategy[k])
		if c.Metrics {
			fmt.Fprintf(tw, "\t%s", histogram(hist[k]))
		}
		if c.Congestion {
			fmt.Fprintf(tw, "\t%d", peak[k])
		}
		if c.Placed {
			fmt.Fprintf(tw, "\t%d", wins[k])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// histogram renders a dilation->count map as "d:count" pairs in
// increasing dilation order.
func histogram(h map[int]int) string {
	if len(h) == 0 {
		return "-"
	}
	ds := make([]int, 0, len(h))
	for d := range h {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("%d:%d", d, h[d])
	}
	return strings.Join(parts, " ")
}

func save(c *census.Census, path string) {
	if path == "" {
		return
	}
	if err := c.WriteFile(path); err != nil {
		fatalf("sweep: %v", err)
	}
}

// exitCode fails the process when any construction broke verification —
// a library bug, unlike pairs the paper's conditions simply do not
// cover.
func exitCode(c *census.Census) {
	if c.VerifyFailures > 0 {
		os.Exit(exitVerifyFailures)
	}
}

// parseShard parses "i/m", rejecting any trailing input — a typo like
// 1/2/8 must not silently evaluate the wrong partition.
func parseShard(s string) (idx, count int, err error) {
	before, after, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(before)
		if err == nil {
			count, err = strconv.Atoi(after)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard must look like 2/8, got %q", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("-shard %d/%d out of range", idx, count)
	}
	return idx, count, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}
