// Command sweep runs the coverage census: for a given size it attempts
// to embed every ordered pair of canonical torus/mesh shapes of that
// size (in both kind combinations), verifies each result, and tallies
// which construction carried each pair.
//
// Usage:
//
//	sweep -n 24
//	sweep -n 360 -maxdim 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"torusmesh/internal/catalog"
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

func main() {
	n := flag.Int("n", 24, "graph size (number of nodes)")
	maxDim := flag.Int("maxdim", 0, "cap on shape dimension (0 = unlimited)")
	showShapes := flag.Bool("shapes", false, "list the canonical shapes first")
	threshold := flag.Int("threshold", embed.MaterializeThreshold(),
		"guest-size cutoff for kernel table materialization (<= 0 disables)")
	timing := flag.Bool("time", false, "report the wall time of the sweep")
	flag.Parse()
	embed.SetMaterializeThreshold(*threshold)
	if *n < 2 {
		fmt.Fprintln(os.Stderr, "sweep: -n must be at least 2")
		os.Exit(2)
	}
	if *showShapes {
		for _, s := range catalog.CanonicalShapesOfSize(*n, *maxDim) {
			fmt.Println(s)
		}
		fmt.Println()
	}
	start := time.Now()
	failures := 0
	census := catalog.Coverage(*n, *maxDim, func(g, h grid.Spec) (string, error) {
		e, err := core.Embed(g, h)
		if err != nil {
			failures++
			return "", err
		}
		if verr := e.Verify(); verr != nil {
			return "", fmt.Errorf("%s -> %s failed verification: %v", g, h, verr)
		}
		if _, perr := e.CheckPredicted(); perr != nil {
			return "", fmt.Errorf("%s -> %s broke its guarantee: %v", g, h, perr)
		}
		return e.Strategy, nil
	})
	fmt.Printf("size %d: %d canonical shapes, %d ordered (shape,kind) pairs\n",
		census.Size, census.Shapes, census.Pairs)
	fmt.Printf("embeddable: %d (%.1f%%), unembeddable: %d\n\n",
		census.Embeddable, 100*float64(census.Embeddable)/float64(census.Pairs),
		census.Pairs-census.Embeddable)
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tpairs")
	keys := make([]string, 0, len(census.ByStrategy))
	for k := range census.ByStrategy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(tw, "%s\t%d\n", k, census.ByStrategy[k])
	}
	tw.Flush()
	if *timing {
		fmt.Printf("\nswept in %s (batch verify + dilation over every pair)\n", time.Since(start))
	}
}
