// Command sweep is the CLI of the coverage census engine: for a given
// size it attempts to embed every ordered pair of canonical torus/mesh
// shapes of that size (in both kind combinations), verifies each
// result, measures dilation costs, and tallies which construction
// carried each pair. The pair space shards deterministically across
// processes, censuses serialize to versioned JSON artifacts, and
// -merge recombines shard artifacts into the census an unsharded run
// would have produced, bit for bit.
//
// Usage:
//
//	sweep -n 24
//	sweep -n 360 -maxdim 4 -congestion
//	sweep -n 60 -congestion -place -place-budget 32
//	sweep -n 360 -shard 2/8 -json s2.json
//	sweep -merge -json full.json s0.json s1.json ... s7.json
//	sweep -merge -json full.json 'shards/*.json'   # or just: shards/
//	sweep -n 360 -shard 2/8 -worker > s2.ndjson    # NDJSON stream mode
//
// -merge arguments may be files, globs, or directories (a directory
// means every *.json and *.ndjson inside it); both the JSON document
// and the NDJSON stream artifact forms are accepted.
//
// -worker turns the process into a shard worker for the distributed
// driver (cmd/sweepd): instead of a human report, the shard census
// streams to stdout as NDJSON — a versioned header line, then one
// result per line, each flushed as soon as its pair finishes, so a
// killed worker leaves a usable prefix. With -resume the worker scans
// a partial stream artifact first and skips pairs already present.
//
// Census artifacts from -place sweeps double as warm input for the
// placement service: `placed -warm 'census-*.json'` (or POST /warm)
// pre-seeds its cache from every pair a census already searched.
//
// Exit codes: 0 = success; 1 = verification failures (a construction
// broke injectivity or its dilation guarantee — a library bug; not
// used in -worker mode, where failures travel inside the records); 2 =
// usage, configuration or artifact-validation errors (bad flags,
// unreadable or incompatible shard artifacts, missing or duplicated
// shards in a -merge).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/par"
	"torusmesh/internal/place"
)

// Exit codes, kept distinct so sweep drivers can tell "the library is
// broken" (retrying will not help) from "this invocation or these
// artifacts are invalid" (fix the inputs and retry).
const (
	exitVerifyFailures = 1
	exitUsage          = 2
	// exitWorkerAbort is the -worker-abort testing hook's exit code: a
	// deliberately crashed worker, distinct from usage errors so the
	// driver smoke can tell the injected failure from a broken setup.
	exitWorkerAbort = 3
)

func main() {
	n := flag.Int("n", 24, "graph size (number of nodes)")
	maxDim := flag.Int("maxdim", 0, "cap on shape dimension (0 = unlimited)")
	shard := flag.String("shard", "0/1", "evaluate only shard i/m of the pair space (0 <= i < m)")
	metrics := flag.Bool("metrics", true, "measure dilation and average dilation per pair")
	congestion := flag.Bool("congestion", false, "measure netsim peak-link congestion per pair")
	doPlace := flag.Bool("place", false, "run the congestion-aware placement search per embeddable pair (implies -congestion)")
	placeBudget := flag.Int("place-budget", 32, "candidate budget of each per-pair placement search")
	placeObjective := flag.String("place-objective", "1,1,0", "placement objective weights α,β,γ")
	placeAnneal := flag.Bool("place-anneal", false, "refine each pair's placement front by seeded simulated annealing")
	placeAnnealMoves := flag.String("place-anneal-moves", "", "annealing move repertoire of the placement searches: swap (default) or all")
	placeSeed := flag.Int64("place-seed", 0, "annealing RNG seed of the placement searches (0 = default)")
	placeWideTables := flag.Bool("place-wide-tables", false, "force wide []int annealing tables in the placement searches (results are identical)")
	jsonOut := flag.String("json", "", "write the census artifact to this file")
	ndjsonOut := flag.String("ndjson", "", "write the census as an NDJSON stream artifact to this file")
	merge := flag.Bool("merge", false, "merge the shard artifacts (files, globs or directories) named as arguments instead of sweeping")
	worker := flag.Bool("worker", false, "distributed-driver worker mode: stream the shard census as NDJSON on stdout")
	resume := flag.String("resume", "", "worker mode: scan this partial NDJSON artifact and skip pairs already present")
	workerAbort := flag.Int("worker-abort", 0,
		"worker mode testing hook: exit(3) mid-stream after emitting this many records (0 = never)")
	showShapes := flag.Bool("shapes", false, "list the canonical shapes first")
	threshold := flag.Int("threshold", embed.MaterializeThreshold(),
		"guest-size cutoff for kernel table materialization (<= 0 disables)")
	timing := flag.Bool("time", false, "report the wall time of the sweep")
	flag.Parse()

	if *merge {
		runMerge(flag.Args(), *jsonOut, *ndjsonOut)
		return
	}
	embed.SetMaterializeThreshold(*threshold)
	if *n < 2 {
		fatalf("sweep: -n must be at least 2")
	}
	if !*worker && (*resume != "" || *workerAbort != 0) {
		fatalf("sweep: -resume and -worker-abort require -worker")
	}
	if *worker && (*jsonOut != "" || *ndjsonOut != "") {
		// The worker's artifact is its stdout stream; silently writing
		// nothing to the named files would strand a later -merge.
		fatalf("sweep: -json and -ndjson cannot be combined with -worker")
	}
	shardIdx, shardCount, err := parseShard(*shard)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	shapes := catalog.CanonicalShapesOfSize(*n, *maxDim)
	if *showShapes && !*worker {
		for _, s := range shapes {
			fmt.Println(s)
		}
		fmt.Println()
	}
	cfg := census.Config{
		Size:       *n,
		MaxDim:     *maxDim,
		Shapes:     shapes,
		Shard:      shardIdx,
		Shards:     shardCount,
		Metrics:    *metrics,
		Congestion: *congestion,
		Embed:      core.Embed,
	}
	if *doPlace {
		obj, err := place.ParseObjective(*placeObjective)
		if err != nil {
			fatalf("sweep: %v", err)
		}
		cfg.Congestion = true // the search is compared against the congestion baseline
		cfg.Place, cfg.PlaceSpec = place.CensusFunc(place.Config{
			Objective:   obj,
			Budget:      *placeBudget,
			CapDilation: true,
			Rotations:   true,
			Anneal:      *placeAnneal,
			AnnealMoves: *placeAnnealMoves,
			Seed:        *placeSeed,
			WideTables:  *placeWideTables,
			Strategies:  place.DefaultStrategies(),
		})
	} else if *placeAnneal || *placeSeed != 0 || *placeAnnealMoves != "" || *placeWideTables {
		fatalf("sweep: -place-anneal, -place-anneal-moves, -place-seed and -place-wide-tables require -place")
	}
	if *doPlace && !*placeAnneal && (*placeSeed != 0 || *placeAnnealMoves != "" || *placeWideTables) {
		fatalf("sweep: -place-seed, -place-anneal-moves and -place-wide-tables require -place-anneal")
	}
	if *worker {
		runWorker(cfg, *resume, *workerAbort)
		return
	}
	c, err := census.Run(cfg)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	report(os.Stdout, c)
	if *timing {
		fmt.Printf("\nswept in %s across %d worker(s)", c.Elapsed, par.Workers())
		if worst := c.SlowestPair(); worst != nil {
			fmt.Printf("; slowest pair %s -> %s took %s", worst.Guest, worst.Host, worst.Wall)
		}
		fmt.Println()
	}
	save(c, *jsonOut, *ndjsonOut)
	exitCode(c)
}

// runWorker is the distributed-driver worker mode: evaluate the shard
// and stream its census as NDJSON on stdout, one record per finished
// pair. With a resume artifact, pairs already present are skipped. The
// process exits 0 even when records carry verification failures — in
// worker mode those are data for the driver, which surfaces them in
// the merged census.
func runWorker(cfg census.Config, resume string, abortAfter int) {
	if resume != "" {
		h, done, err := census.ScanStreamFile(resume)
		if err != nil {
			fatalf("sweep: -resume: %v", err)
		}
		if err := h.SameCensus(cfg.StreamHeader()); err != nil {
			fatalf("sweep: -resume artifact does not match this sweep: %v", err)
		}
		skip := make(map[int]bool, len(done))
		for i := range done {
			skip[done[i].Index] = true
		}
		cfg.Skip = func(i int) bool { return skip[i] }
	}
	sw, err := census.NewStreamWriter(os.Stdout, cfg.StreamHeader())
	if err != nil {
		fatalf("sweep: %v", err)
	}
	emitted := 0
	cfg.OnResult = func(r *census.PairResult) {
		if err := sw.Write(r); err != nil {
			fatalf("sweep: stream write: %v", err)
		}
		emitted++
		if abortAfter > 0 && emitted >= abortAfter {
			// Testing hook: die the way a crashed or killed worker
			// would, mid-stream with a nonzero exit.
			fmt.Fprintf(os.Stderr, "sweep: -worker-abort after %d record(s)\n", emitted)
			os.Exit(exitWorkerAbort)
		}
	}
	if _, err := census.Run(cfg); err != nil {
		fatalf("sweep: %v", err)
	}
}

// runMerge combines shard artifacts, reports the merged census, and
// optionally writes it back out.
func runMerge(args []string, jsonOut, ndjsonOut string) {
	paths := expandArtifactArgs(args)
	parts := make([]*census.Census, len(paths))
	for i, p := range paths {
		c, err := census.ReadFileAny(p)
		if err != nil {
			fatalf("sweep: %v", err)
		}
		parts[i] = c
	}
	c, err := census.Merge(parts...)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	fmt.Printf("merged %d shard artifact(s)\n", len(parts))
	report(os.Stdout, c)
	save(c, jsonOut, ndjsonOut)
	exitCode(c)
}

// expandArtifactArgs resolves -merge arguments: a directory expands to
// every *.json and *.ndjson inside it, a glob pattern to its matches,
// and anything else must be an existing file. An argument that matches
// nothing is a usage error — silently merging fewer shards than the
// operator listed would be caught by Merge's completeness check only
// if an entire shard went missing, not if a duplicate-covering file
// did, so fail early and name the argument.
func expandArtifactArgs(args []string) []string {
	if len(args) == 0 {
		fatalf("sweep: -merge needs at least one artifact file, glob or directory")
	}
	var paths []string
	for _, arg := range args {
		if info, err := os.Stat(arg); err == nil && info.IsDir() {
			var inDir []string
			for _, pat := range []string{"*.json", "*.ndjson"} {
				m, err := filepath.Glob(filepath.Join(arg, pat))
				if err != nil {
					fatalf("sweep: %s: %v", arg, err)
				}
				inDir = append(inDir, m...)
			}
			if len(inDir) == 0 {
				fatalf("sweep: directory %s holds no *.json or *.ndjson artifacts", arg)
			}
			sort.Strings(inDir)
			paths = append(paths, inDir...)
			continue
		}
		matches, err := filepath.Glob(arg)
		if err != nil {
			fatalf("sweep: bad pattern %q: %v", arg, err)
		}
		if len(matches) == 0 {
			fatalf("sweep: no artifact matches %q", arg)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	return paths
}

// report prints the census summary: the coverage header with
// construction and verification failures reported distinctly, then the
// per-strategy table with dilation histograms and peak congestion.
func report(w io.Writer, c *census.Census) {
	fmt.Fprintf(w, "size %d: %d canonical shapes, %d ordered (shape,kind) pairs",
		c.Size, len(c.Shapes), c.SpacePairs)
	if c.Shards > 1 {
		fmt.Fprintf(w, " (shard %d/%d: %d pairs)", c.Shard, c.Shards, c.Pairs)
	}
	fmt.Fprintln(w)
	pct := 0.0
	if c.Pairs > 0 {
		pct = 100 * float64(c.Embeddable) / float64(c.Pairs)
	}
	fmt.Fprintf(w, "embeddable: %d (%.1f%%), no construction applies: %d\n",
		c.Embeddable, pct, c.ConstructFailures)
	if c.VerifyFailures > 0 {
		fmt.Fprintf(w, "VERIFICATION FAILURES: %d (constructions built but broke injectivity or their dilation guarantee)\n",
			c.VerifyFailures)
		for i := range c.Results {
			if c.Results[i].FailureStage == census.StageVerify {
				fmt.Fprintf(w, "  %s -> %s: %s\n", c.Results[i].Guest, c.Results[i].Host, c.Results[i].Failure)
			}
		}
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	header := "strategy\tpairs"
	if c.Metrics {
		header += "\tdilation histogram"
	}
	if c.Congestion {
		header += "\tpeak congestion\tcongestion histogram"
	}
	if c.Placed {
		header += "\tplace wins"
	}
	fmt.Fprintln(tw, header)
	var peak, wins map[string]int
	if c.Congestion {
		peak = c.PeakCongestion()
	}
	if c.Placed {
		wins = c.PlaceImprovements()
	}
	keys := make([]string, 0, len(c.ByStrategy))
	for k := range c.ByStrategy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// The histogram columns render the artifact's per-strategy
		// histogram block, so what the report shows is exactly what a
		// consumer of the JSON artifact would read.
		sh := c.Histograms[k]
		if sh == nil {
			sh = &census.StrategyHistogram{}
		}
		fmt.Fprintf(tw, "%s\t%d", k, c.ByStrategy[k])
		if c.Metrics {
			fmt.Fprintf(tw, "\t%s", histogram(sh.Dilation))
		}
		if c.Congestion {
			fmt.Fprintf(tw, "\t%d\t%s", peak[k], histogram(sh.Congestion))
		}
		if c.Placed {
			fmt.Fprintf(tw, "\t%d", wins[k])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// histogram renders a dilation->count map as "d:count" pairs in
// increasing dilation order.
func histogram(h map[int]int) string {
	if len(h) == 0 {
		return "-"
	}
	ds := make([]int, 0, len(h))
	for d := range h {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = fmt.Sprintf("%d:%d", d, h[d])
	}
	return strings.Join(parts, " ")
}

func save(c *census.Census, jsonPath, ndjsonPath string) {
	if jsonPath != "" {
		if err := c.WriteFile(jsonPath); err != nil {
			fatalf("sweep: %v", err)
		}
	}
	if ndjsonPath != "" {
		if err := c.WriteStreamFile(ndjsonPath); err != nil {
			fatalf("sweep: %v", err)
		}
	}
}

// exitCode fails the process when any construction broke verification —
// a library bug, unlike pairs the paper's conditions simply do not
// cover.
func exitCode(c *census.Census) {
	if c.VerifyFailures > 0 {
		os.Exit(exitVerifyFailures)
	}
}

// parseShard parses "i/m", rejecting any trailing input — a typo like
// 1/2/8 must not silently evaluate the wrong partition.
func parseShard(s string) (idx, count int, err error) {
	before, after, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(before)
		if err == nil {
			count, err = strconv.Atoi(after)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard must look like 2/8, got %q", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("-shard %d/%d out of range", idx, count)
	}
	return idx, count, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}
