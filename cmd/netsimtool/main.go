// Command netsimtool places a task graph on a simulated torus/mesh
// machine and compares the paper's embedding against the naive row-major
// placement, reporting communication-phase latency, hop counts and link
// congestion.
//
// Usage:
//
//	netsimtool -task ring:64 -machine torus:8x8
//	netsimtool -task mesh:8x8 -machine torus:2x2x2x2x2x2
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"torusmesh"
)

func main() {
	taskStr := flag.String("task", "", "task-graph topology spec, e.g. ring:64 or mesh:8x8")
	machineStr := flag.String("machine", "", "machine spec, e.g. torus:8x8")
	flag.Parse()
	if *taskStr == "" || *machineStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*taskStr, *machineStr); err != nil {
		fmt.Fprintln(os.Stderr, "netsimtool:", err)
		os.Exit(1)
	}
}

func run(taskStr, machineStr string) error {
	guest, err := torusmesh.ParseSpec(taskStr)
	if err != nil {
		return err
	}
	machine, err := torusmesh.ParseSpec(machineStr)
	if err != nil {
		return err
	}
	tg := torusmesh.TaskGraphFromSpec(guest)
	nw := torusmesh.NewNetwork(machine)

	e, err := torusmesh.Embed(guest, machine)
	if err != nil {
		return err
	}
	rm, err := torusmesh.RowMajorEmbedding(guest, machine)
	if err != nil {
		return err
	}
	fmt.Printf("task graph: %s (%d tasks, %d edges)\n", tg.Name, tg.N, len(tg.Edges))
	fmt.Printf("machine:    %s\n", machine)
	fmt.Printf("embedding:  %s (guarantee %d)\n\n", e.Strategy, e.Predicted)

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tdilation\tavg hops\tcycles\tpeak link load\ttotal hops\tused links")
	for _, pl := range []struct {
		label string
		p     torusmesh.Placement
	}{
		{"paper embedding", torusmesh.PlacementFromEmbedding(e)},
		{"row-major baseline", torusmesh.PlacementFromEmbedding(rm)},
	} {
		r, err := torusmesh.Simulate(nw, tg, pl.p)
		if err != nil {
			return err
		}
		c, err := torusmesh.Congestion(nw, tg, pl.p)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%d\t%d\t%d\t%d\n",
			pl.label, r.MaxHops, r.AvgHops, r.Cycles, r.MaxLinkLoad, c.TotalHops, c.UsedLinks)
	}
	return tw.Flush()
}
