// Command placed is the placement service: a long-running HTTP server
// answering "place guest G on host H" at interactive latency on top
// of the batch engines.
//
// Requests are normalized to their canonical pair (so relabelings
// that provably share a Pareto front share one cache entry), answered
// instantly from the paper-baseline construction while a background
// search upgrades the entry to the full searched front, and persisted
// as the same versioned artifacts `place -json` writes — a warm cache
// directory and a batch search's output are interchangeable.
//
// Usage:
//
//	placed -addr :8080 -cache /var/cache/placed
//	placed -addr :8080 -warm 'census-*.json'        # pre-seed from sweep output
//	placed -addr :8080 -budget 256 -anneal -seed 7  # same search knobs as place
//
//	curl 'localhost:8080/place?from=torus:8x2&to=mesh:4x4'          # instant baseline
//	curl 'localhost:8080/place?from=torus:8x2&to=mesh:4x4&wait=1'   # block for the front
//	curl 'localhost:8080/artifact?from=torus:8x2&to=mesh:4x4'       # raw place artifact
//	curl 'localhost:8080/status'
//	curl 'localhost:8080/metrics'                                   # Prometheus text
//	curl 'localhost:8080/statusz'                                   # registry as JSON
//	curl -X POST --data-binary @census.json localhost:8080/warm
//
// -max-queue bounds the background search queue: cold pairs beyond it
// answer 429 with a Retry-After hint instead of growing the queue.
// -pprof exposes /debug/pprof/ on the same listener (opt-in: it
// reveals goroutine stacks and heap contents).
//
// The search flags (-objective, -budget, -cap, -rotations, -anneal,
// -anneal-steps, -anneal-moves, -seed, -wide-tables) take the same
// defaults as the place CLI, so a served front is byte-identical to
// `place -json` output for the same pair and flags. A cache directory
// is bound to one search configuration; reopening it under different
// flags is a startup error.
//
// Exit codes: 0 = clean shutdown (SIGINT/SIGTERM); 2 = usage or
// startup errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"torusmesh/internal/census"
	"torusmesh/internal/obs"
	"torusmesh/internal/place"
	"torusmesh/internal/serve"
)

const exitUsage = 2

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "persistent artifact cache directory (empty = in-memory only)")
	warm := flag.String("warm", "", "glob of census artifacts (JSON or NDJSON) to pre-seed the cache from")
	warmWait := flag.Bool("warm-wait", false, "finish all warm searches before accepting requests")
	workers := flag.Int("search-workers", 1, "concurrent background searches")
	maxQueue := flag.Int("max-queue", 0, "max queued background searches before cold pairs get 429 (0 = unbounded)")
	withPprof := flag.Bool("pprof", false, "expose /debug/pprof/ on the listener")
	objective := flag.String("objective", "1,1,0", "objective weights α,β,γ for dilation, peak link load, mean link load")
	budget := flag.Int("budget", place.DefaultBudget, "max candidates constructed and scored per search")
	cap := flag.Bool("cap", true, "discard candidates dilating worse than the baseline")
	rotations := flag.Bool("rotations", true, "include digit-rotation candidates (mesh sides)")
	anneal := flag.Bool("anneal", false, "refine fronts by seeded simulated annealing")
	annealSteps := flag.Int("anneal-steps", 0, "move budget per annealing run (0 = default)")
	annealMoves := flag.String("anneal-moves", "", "annealing move repertoire: swap (default) or all")
	seed := flag.Int64("seed", 0, "annealing RNG seed (0 = default)")
	wideTables := flag.Bool("wide-tables", false, "force wide []int annealing tables")
	flag.Parse()

	if !*anneal && (*annealSteps != 0 || *seed != 0 || *annealMoves != "" || *wideTables) {
		fatalf("placed: -seed, -anneal-steps, -anneal-moves and -wide-tables require -anneal")
	}
	obj, err := place.ParseObjective(*objective)
	if err != nil {
		fatalf("placed: %v", err)
	}

	srv, err := serve.New(serve.Config{
		Place: place.Config{
			Objective:   obj,
			Budget:      *budget,
			CapDilation: *cap,
			Rotations:   *rotations,
			Anneal:      *anneal,
			AnnealSteps: *annealSteps,
			AnnealMoves: *annealMoves,
			Seed:        *seed,
			WideTables:  *wideTables,
			Strategies:  place.DefaultStrategies(),
		},
		CacheDir:      *cacheDir,
		SearchWorkers: *workers,
		MaxQueue:      *maxQueue,
		Registry:      obs.Default(),
		Pprof:         *withPprof,
		Log:           log.Printf,
	})
	if err != nil {
		fatalf("placed: %v", err)
	}
	log.Printf("placed: serving %s", srv.Spec())

	if *warm != "" {
		if err := warmFromGlob(srv, *warm); err != nil {
			fatalf("placed: %v", err)
		}
		if *warmWait {
			srv.Flush()
			log.Printf("placed: warm searches finished")
		}
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("placed: listening on %s", *addr)

	select {
	case <-ctx.Done():
		log.Printf("placed: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Printf("placed: shutdown: %v", err)
		}
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatalf("placed: %v", err)
		}
	}
}

// warmFromGlob pre-seeds the cache from every census artifact the
// glob matches, in either encoding (ReadFileAny sniffs).
func warmFromGlob(srv *serve.Server, pattern string) error {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("-warm %q matched no files", pattern)
	}
	for _, p := range paths {
		c, err := census.ReadFileAny(p)
		if err != nil {
			return err
		}
		ws, err := srv.WarmCensus(c)
		if err != nil {
			return err
		}
		log.Printf("placed: warmed from %s: %d queued, %d present, %d skipped",
			p, ws.Queued, ws.Present, ws.Skipped)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}
