// Command sweepd is the distributed sweep driver: it runs one coverage
// census as a fleet of shard workers (internal/driver), streams every
// finished pair into an NDJSON journal, retries failed or straggling
// shards, and writes a final merged artifact that is byte-identical to
// what an unsharded `sweep -json` run would have produced.
//
// Workers come in two forms. By default shards run in-process on the
// local worker pool. With -sweep pointing at a sweep binary, each
// shard attempt execs `sweep -worker` and folds the NDJSON stream from
// its stdout — the production form; a multi-machine transport would
// exec the same binary remotely and pipe the same bytes.
//
// Usage:
//
//	sweepd -n 360 -maxdim 4 -shards 16 -workers 4 -out full.json
//	sweepd -n 360 -shards 16 -sweep ./sweep -out full.json
//	sweepd -n 360 -shards 16 -sweep ./sweep -out full.json -resume
//	sweepd -n 360 -shards 16 -out full.json -status :9090
//
// -status serves live run observability on its own listener while the
// sweep runs: GET /progress is the per-shard fold state (pending,
// folded, attempts, failures, straggler re-issues, wall times), GET
// /metrics the Prometheus exposition of the same registry, GET
// /statusz its JSON form, and -pprof adds /debug/pprof/:
//
//	curl localhost:9090/progress
//	curl localhost:9090/metrics
//
// The journal (-journal, default <out>.journal) is the crash-safety
// artifact: a stream header line plus one record per finished pair,
// appended and flushed as results arrive in completion order. If a run
// dies, rerunning with -resume scans the journal, skips every pair
// already present, and completes the census; the final artifact is
// byte-identical either way. Subprocess workers are handed the journal
// as their own -resume, so even a retried shard never re-evaluates
// pairs that reached the journal.
//
// Exit codes: 0 = success; 1 = the merged census contains verification
// failures (a library bug, mirroring sweep); 2 = usage, configuration
// or driver errors (a shard exhausting its retries lands here); 3 =
// the -halt-after testing hook stopped the run on purpose.
//
// -inject-fail and -halt-after exist for the CI fault smoke: the first
// makes the first N subprocess attempts crash mid-stream (via sweep's
// -worker-abort hook), the second kills the driver after N shards so
// the smoke can exercise -resume against a genuinely partial journal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync/atomic"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/driver"
	"torusmesh/internal/embed"
	"torusmesh/internal/obs"
	"torusmesh/internal/par"
)

// Exit codes; 0-2 mirror cmd/sweep.
const (
	exitVerifyFailures = 1
	exitUsage          = 2
	exitHalted         = 3
)

func main() {
	n := flag.Int("n", 24, "graph size (number of nodes)")
	maxDim := flag.Int("maxdim", 0, "cap on shape dimension (0 = unlimited)")
	shards := flag.Int("shards", 0, "how many stripes the pair space splits into (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "concurrent shard attempts (0 = min(shards, GOMAXPROCS))")
	retries := flag.Int("retries", 0, "per-shard retry budget after the first attempt (0 = default, negative = none)")
	stragglerFactor := flag.Float64("straggler-factor", 0,
		"re-issue attempts running past this multiple of the median shard wall time (0 = off)")
	metrics := flag.Bool("metrics", true, "measure dilation and average dilation per pair")
	congestion := flag.Bool("congestion", false, "measure netsim peak-link congestion per pair")
	threshold := flag.Int("threshold", embed.MaterializeThreshold(),
		"guest-size cutoff for kernel table materialization (<= 0 disables)")
	out := flag.String("out", "", "write the final merged census artifact (JSON document) to this file")
	journal := flag.String("journal", "", "NDJSON journal path (default <out>.journal; empty without -out disables the journal)")
	resume := flag.Bool("resume", false, "scan the journal and skip pairs already present")
	sweepBin := flag.String("sweep", "", "run shards as subprocess workers exec'ing this sweep binary (empty = in-process)")
	injectFail := flag.Int("inject-fail", 0, "testing hook: crash the first N subprocess worker attempts mid-stream")
	haltAfter := flag.Int("halt-after", 0, "testing hook: stop (exit 3) once this many shards have completed")
	status := flag.String("status", "", "serve live progress on this address (/progress, /metrics, /statusz)")
	withPprof := flag.Bool("pprof", false, "expose /debug/pprof/ on the -status listener")
	timing := flag.Bool("time", false, "report the wall time of the run")
	flag.Parse()

	if *n < 2 {
		fatalf("sweepd: -n must be at least 2")
	}
	if *injectFail > 0 && *sweepBin == "" {
		fatalf("sweepd: -inject-fail requires subprocess workers (-sweep)")
	}
	if *withPprof && *status == "" {
		fatalf("sweepd: -pprof requires a -status listener")
	}
	// Resolve the fleet geometry here so the summary reports what
	// actually ran, not the flag defaults.
	if *shards == 0 {
		*shards = par.Workers()
	}
	if *workers == 0 {
		*workers = min(*shards, par.Workers())
	}
	embed.SetMaterializeThreshold(*threshold)
	template := census.Config{
		Size:       *n,
		MaxDim:     *maxDim,
		Shapes:     catalog.CanonicalShapesOfSize(*n, *maxDim),
		Metrics:    *metrics,
		Congestion: *congestion,
		Embed:      core.Embed,
	}
	header := template.StreamHeader()

	journalPath := *journal
	if journalPath == "" && *out != "" {
		journalPath = *out + ".journal"
	}
	if *resume && journalPath == "" {
		fatalf("sweepd: -resume needs a journal (-journal, or -out to derive one)")
	}

	var resumeRecs []census.PairResult
	var journalW *census.StreamWriter
	var journalFile *os.File
	if journalPath != "" {
		if *resume {
			// Repair, not just scan: a run killed mid-write leaves a
			// partial last line, and appending onto it would glue the
			// next record into one undecodable line, hiding everything
			// after it from every future scan.
			h, recs, err := census.RepairStreamFile(journalPath)
			if err != nil {
				fatalf("sweepd: -resume: %v", err)
			}
			if h.Stream == 0 {
				// The previous run died before its header write: the
				// repair truncated the journal to empty, so this run
				// starts it fresh — nothing to resume, nothing to lose.
				f, err := os.OpenFile(journalPath, os.O_WRONLY, 0o644)
				if err != nil {
					fatalf("sweepd: %v", err)
				}
				sw, err := census.NewStreamWriter(f, header)
				if err != nil {
					fatalf("sweepd: %v", err)
				}
				journalFile, journalW = f, sw
			} else {
				if err := h.SameCensus(header); err != nil {
					fatalf("sweepd: journal %s does not match this sweep: %v", journalPath, err)
				}
				resumeRecs = recs
				f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					fatalf("sweepd: %v", err)
				}
				journalFile, journalW = f, census.NewStreamAppender(f)
			}
		} else {
			f, err := os.Create(journalPath)
			if err != nil {
				fatalf("sweepd: %v", err)
			}
			sw, err := census.NewStreamWriter(f, header)
			if err != nil {
				fatalf("sweepd: %v", err)
			}
			journalFile, journalW = f, sw
		}
	}

	var worker driver.Worker
	if *sweepBin != "" {
		args := []string{
			"-n", fmt.Sprint(*n),
			"-maxdim", fmt.Sprint(*maxDim),
			fmt.Sprintf("-metrics=%t", *metrics),
			fmt.Sprintf("-congestion=%t", *congestion),
			"-threshold", fmt.Sprint(*threshold),
		}
		if journalPath != "" {
			// Workers scan the live journal themselves, so a retried
			// shard skips every pair that already made it to disk.
			args = append(args, "-resume", journalPath)
		}
		sub := driver.Subprocess{Bin: *sweepBin, Args: args}
		if *injectFail > 0 {
			fi := &failInjector{base: sub}
			fi.remaining.Store(int64(*injectFail))
			worker = fi
		} else {
			worker = sub
		}
	} else {
		worker = driver.InProcess{}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var halted atomic.Bool
	var journalErr atomic.Value // error from the journal hook
	plan := driver.Plan{
		Config:          template,
		Shards:          *shards,
		Workers:         *workers,
		Worker:          worker,
		Retries:         *retries,
		StragglerFactor: *stragglerFactor,
		Resume:          resumeRecs,
		Registry:        obs.Default(),
		OnResult: func(r *census.PairResult) {
			if journalW == nil || journalErr.Load() != nil {
				return
			}
			if err := journalW.Write(r); err != nil {
				journalErr.Store(err)
				cancel()
			}
		},
		OnShardDone: func(shard, done, total int) {
			fmt.Fprintf(os.Stderr, "sweepd: shard %d complete (%d/%d)\n", shard, done, total)
			if *haltAfter > 0 && done >= *haltAfter && !halted.Swap(true) {
				cancel()
			}
		},
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
		},
	}
	d, err := driver.New(plan)
	if err != nil {
		fatalf("sweepd: %v", err)
	}
	var statusSrv *http.Server
	if *status != "" {
		ln, err := net.Listen("tcp", *status)
		if err != nil {
			fatalf("sweepd: -status: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/progress", d.StatusHandler())
		mux.Handle("/", d.StatusHandler())
		obs.Mount(mux, d.Registry(), *withPprof)
		statusSrv = &http.Server{Handler: mux}
		fmt.Fprintf(os.Stderr, "sweepd: status on http://%s\n", ln.Addr())
		go func() {
			if err := statusSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "sweepd: status server: %v\n", err)
			}
		}()
	}
	c, err := d.Run(ctx)
	if statusSrv != nil {
		// The listener is scoped to the run; the final snapshot stays
		// queryable through Progress until close.
		statusSrv.Close()
	}
	if journalFile != nil {
		if cerr := journalFile.Close(); cerr != nil && err == nil {
			fatalf("sweepd: close journal: %v", cerr)
		}
	}
	if jerr, _ := journalErr.Load().(error); jerr != nil {
		fatalf("sweepd: journal write: %v", jerr)
	}
	if err != nil {
		if halted.Load() {
			fmt.Fprintf(os.Stderr, "sweepd: halted by -halt-after %d (testing hook); journal %s holds the partial census, rerun with -resume\n",
				*haltAfter, journalPath)
			os.Exit(exitHalted)
		}
		fatalf("sweepd: %v", err)
	}

	if *out != "" {
		if err := c.WriteFile(*out); err != nil {
			fatalf("sweepd: %v", err)
		}
	}
	summarize(c, *shards, *workers)
	if *timing {
		fmt.Printf("swept in %s\n", c.Elapsed)
	}
	if c.VerifyFailures > 0 {
		os.Exit(exitVerifyFailures)
	}
}

// summarize prints the merged census's coverage summary: sweepd is an
// orchestrator, so the full per-strategy table stays with `sweep`
// (point it at the -out artifact via -merge for the long report).
func summarize(c *census.Census, shards, workers int) {
	fmt.Printf("size %d: %d pairs over %d shard(s), %d concurrent worker(s)\n",
		c.Size, c.Pairs, shards, workers)
	pct := 0.0
	if c.Pairs > 0 {
		pct = 100 * float64(c.Embeddable) / float64(c.Pairs)
	}
	fmt.Printf("embeddable: %d (%.1f%%), no construction applies: %d, verification failures: %d\n",
		c.Embeddable, pct, c.ConstructFailures, c.VerifyFailures)
	keys := make([]string, 0, len(c.ByStrategy))
	for k := range c.ByStrategy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-20s %d\n", k, c.ByStrategy[k])
	}
}

// failInjector crashes the first N subprocess attempts mid-stream by
// handing them sweep's -worker-abort hook — the CI stand-in for a
// worker machine dying partway through its shard.
type failInjector struct {
	base      driver.Subprocess
	remaining atomic.Int64
}

func (f *failInjector) Run(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
	w := f.base
	if f.remaining.Add(-1) >= 0 {
		w.Args = append(append([]string(nil), w.Args...), "-worker-abort", "2")
	}
	return w.Run(ctx, job, emit)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}
