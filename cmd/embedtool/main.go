// Command embedtool constructs an embedding between two toruses/meshes
// and reports its strategy, guarantee and measured dilation. With -table
// it prints the full node map.
//
// Usage:
//
//	embedtool -from ring:24 -to mesh:4x2x3 [-table] [-verify]
//	embedtool -from torus:8x8 -to mesh:2x2x2x2x2x2
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"torusmesh"
)

func main() {
	from := flag.String("from", "", "guest spec, e.g. ring:24, torus:4x2x3, mesh:6x9")
	to := flag.String("to", "", "host spec, e.g. mesh:4x2x3")
	showTable := flag.Bool("table", false, "print the full node map")
	draw := flag.Bool("draw", false, "draw the host labelled by guest indices (Figure 10 style)")
	jsonOut := flag.String("json", "", "write the embedding as JSON to this file ('-' for stdout)")
	verify := flag.Bool("verify", true, "verify injectivity and the dilation guarantee")
	threshold := flag.Int("threshold", torusmesh.MaterializeThreshold(),
		"guest-size cutoff for kernel table materialization (<= 0 disables)")
	timing := flag.Bool("time", false, "report wall time of the batch measurement")
	flag.Parse()
	if *from == "" || *to == "" {
		flag.Usage()
		os.Exit(2)
	}
	torusmesh.SetMaterializeThreshold(*threshold)
	if err := run(*from, *to, *showTable, *draw, *verify, *timing, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "embedtool:", err)
		os.Exit(1)
	}
}

func run(fromStr, toStr string, showTable, draw, verify, timing bool, jsonOut string) error {
	g, err := torusmesh.ParseSpec(fromStr)
	if err != nil {
		return err
	}
	h, err := torusmesh.ParseSpec(toStr)
	if err != nil {
		return err
	}
	e, err := torusmesh.Embed(g, h)
	if err != nil {
		return err
	}
	fmt.Printf("guest:      %s (%d nodes)\n", g, g.Size())
	fmt.Printf("host:       %s (%d nodes)\n", h, h.Size())
	fmt.Printf("strategy:   %s\n", e.Strategy)
	fmt.Printf("guarantee:  dilation <= %d\n", e.Predicted)
	if verify {
		start := time.Now()
		if err := e.Verify(); err != nil {
			return err
		}
		d, err := e.CheckPredicted()
		if err != nil {
			return err
		}
		avg := e.AverageDilation()
		elapsed := time.Since(start)
		fmt.Printf("measured:   dilation = %d (average %.3f)\n", d, avg)
		fmt.Printf("lower bound: %d\n", torusmesh.DilationLowerBound(g, h))
		if timing {
			fmt.Printf("measured in: %s (batch kernel, %d nodes)\n", elapsed, g.Size())
		}
	}
	if showTable {
		tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "guest node\thost node")
		for x := 0; x < g.Size(); x++ {
			node := g.Shape.NodeAt(x)
			fmt.Fprintf(tw, "%s\t%s\n", node, e.Map(node))
		}
		tw.Flush()
	}
	if draw {
		fmt.Println("host layout (cells are guest row-major indices):")
		fmt.Print(torusmesh.RenderEmbedding(e))
	}
	if jsonOut != "" {
		data, err := torusmesh.ExportEmbedding(e)
		if err != nil {
			return err
		}
		if jsonOut == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
