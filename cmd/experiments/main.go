// Command experiments regenerates every figure and quantitative claim of
// Ma & Tao's "Embeddings Among Toruses and Meshes" as text tables. Run
// without arguments for the full suite, or pass experiment ids (E01..E21)
// to run a subset. The experiment index is documented in DESIGN.md and
// the recorded outputs in EXPERIMENTS.md.
//
// With -bench the command instead runs the reproducible benchmark
// suite over the annealing evaluation kernels (LoadState construction,
// congestion, striped edge dilation, per-move swaps) at one worker and
// at the machine's full worker count, and writes a versioned
// BENCH.json to -bench-out ("-" for stdout) — the repo's recorded perf
// trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"torusmesh/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and titles")
	bench := flag.Bool("bench", false, "run the kernel benchmark suite and write BENCH.json")
	benchOut := flag.String("bench-out", "BENCH.json", "benchmark report destination (\"-\" for stdout)")
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}
	if *bench {
		out := os.Stdout
		if *benchOut != "-" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := experiments.WriteBench(out); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		e, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
