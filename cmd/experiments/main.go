// Command experiments regenerates every figure and quantitative claim of
// Ma & Tao's "Embeddings Among Toruses and Meshes" as text tables. Run
// without arguments for the full suite, or pass experiment ids (E01..E21)
// to run a subset. The experiment index is documented in DESIGN.md and
// the recorded outputs in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"torusmesh/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and titles")
	flag.Parse()
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range ids {
		e, ok := experiments.Find(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
