// Command place is the CLI of the congestion-aware placement engine:
// for one (guest, host) pair it searches over candidate embeddings —
// base strategies composed with axis permutations, digit rotations and
// rotations of the prime refinement's intermediate stage — and reports
// the Pareto front over (dilation, peak congestion, avg link load)
// together with the candidate minimizing the objective
//
//	score = α·dilation + β·peakCongestion + γ·avgLinkLoad
//
// next to the paper baseline, optionally writing a versioned JSON
// artifact whose bytes are deterministic for a given invocation
// (independent of scheduling and GOMAXPROCS).
//
// Usage:
//
//	place -from torus:8x2 -to mesh:4x4
//	place -from torus:12x3 -to torus:9x4 -pareto            # render the front
//	place -from torus:12x3 -to torus:9x4 -objective 1,2,0.5 -budget 256
//	place -from mesh:6x4 -to mesh:8x3 -json best.json
//	place -from torus:8x2 -to mesh:4x4 -cap=false   # allow dilation above baseline
//	place -from ring:16 -to torus:4x4 -anneal -seed 7       # annealing refinement
//
// The -objective flag takes the three comma-separated weights α,β,γ.
// With -cap (the default) candidates whose measured dilation exceeds
// the baseline's are discarded, so the winner trades congestion at
// equal or better dilation. -pareto prints the full non-dominated set
// (it is always part of the JSON artifact). -anneal adds a seeded,
// deterministic simulated-annealing refinement, evaluated
// incrementally so it scales to pairs of any size; -seed picks the RNG
// seed (same seed, same artifact), -anneal-steps the per-run move
// budget, and -anneal-moves the repertoire ("swap" for node swaps
// only, "all" to mix in segment reversals and axis-plane swaps).
// Annealing runs execute concurrently (one per seed) with results
// admitted in seed order, so the artifact is still scheduling-
// independent, and use compact int32 placement tables on hosts whose
// ranks fit — -wide-tables forces the historical []int form (identical
// results). With -time, each run's wall time and steps/sec are
// reported.
//
// Exit codes: 0 = success; 1 = internal inconsistency (the search
// returned a winner worse than its own baseline — a library bug);
// 2 = usage or validation errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/place"
)

const (
	exitInconsistent = 1
	exitUsage        = 2
)

func main() {
	guest := flag.String("from", "", "guest spec, e.g. torus:8x2 or ring:24")
	host := flag.String("to", "", "host spec, e.g. mesh:4x4")
	objective := flag.String("objective", "1,1,0", "objective weights α,β,γ for dilation, peak link load, mean link load")
	budget := flag.Int("budget", place.DefaultBudget, "max candidates constructed and scored")
	cap := flag.Bool("cap", true, "discard candidates dilating worse than the baseline")
	rotations := flag.Bool("rotations", true, "include digit-rotation candidates (mesh sides)")
	pareto := flag.Bool("pareto", false, "render the full Pareto front, not just baseline and winner")
	anneal := flag.Bool("anneal", false, "refine the front by seeded simulated annealing")
	annealSteps := flag.Int("anneal-steps", 0, "move budget per annealing run (0 = default)")
	annealMoves := flag.String("anneal-moves", "", "annealing move repertoire: swap (default) or all")
	seed := flag.Int64("seed", 0, "annealing RNG seed (0 = default); same seed, same artifact")
	wideTables := flag.Bool("wide-tables", false, "force wide []int annealing tables (default: compact int32 when the host fits; results are identical)")
	jsonOut := flag.String("json", "", "write the search artifact to this file")
	timing := flag.Bool("time", false, "report the wall time of the search")
	flag.Parse()

	if *guest == "" || *host == "" {
		fatalf("place: both -from and -to are required")
	}
	if !*anneal && (*annealSteps != 0 || *seed != 0 || *annealMoves != "" || *wideTables) {
		// Silently ignoring these would let a user believe the seed
		// shaped the result.
		fatalf("place: -seed, -anneal-steps, -anneal-moves and -wide-tables require -anneal")
	}
	g, err := grid.ParseSpec(*guest)
	if err != nil {
		fatalf("place: %v", err)
	}
	h, err := grid.ParseSpec(*host)
	if err != nil {
		fatalf("place: %v", err)
	}
	obj, err := place.ParseObjective(*objective)
	if err != nil {
		fatalf("place: %v", err)
	}

	res, err := place.Search(place.Config{
		Guest:       g,
		Host:        h,
		Objective:   obj,
		Budget:      *budget,
		CapDilation: *cap,
		Rotations:   *rotations,
		Anneal:      *anneal,
		AnnealSteps: *annealSteps,
		AnnealMoves: *annealMoves,
		Seed:        *seed,
		WideTables:  *wideTables,
		Strategies:  place.DefaultStrategies(),
	})
	if err != nil {
		fatalf("%v", err) // Search errors already carry the place: prefix
	}

	report(res, *pareto)
	if *timing {
		fmt.Printf("searched in %s across %d worker(s), %d congestion scoring(s) pruned\n",
			res.Elapsed, par.Workers(), res.Pruned)
		for _, run := range res.AnnealRuns {
			line := fmt.Sprintf("anneal run from #%d: %d steps in %s", run.SeedIndex, run.Steps, run.Elapsed)
			if run.Elapsed > 0 {
				line += fmt.Sprintf(" (%.0f steps/sec)", float64(run.Steps)/run.Elapsed.Seconds())
			}
			fmt.Println(line)
		}
	}
	if *jsonOut != "" {
		if err := res.WriteFile(*jsonOut); err != nil {
			fatalf("place: %v", err)
		}
	}
	// The baseline is always a scored candidate, so the winner can
	// never be worse; a violation is a search bug, reported distinctly
	// from usage errors (and relied on by the CI smoke).
	if res.Best.Score > res.Baseline.Score {
		fmt.Fprintf(os.Stderr, "place: INTERNAL ERROR: best score %g worse than baseline %g\n",
			res.Best.Score, res.Baseline.Score)
		os.Exit(exitInconsistent)
	}
}

func report(res *place.Result, pareto bool) {
	fmt.Printf("place %s -> %s: minimize %g·dilation + %g·peak + %g·avg-link\n",
		res.Guest, res.Host, res.Objective.Alpha, res.Objective.Beta, res.Objective.Gamma)
	fmt.Printf("space %d candidates, %d within budget, %d unbuildable, %d invalid, %d capped",
		res.Space, res.Candidates, res.Unbuildable, res.Invalid, res.Capped)
	if res.CapDilation > 0 {
		fmt.Printf(" (dilation cap %d)", res.CapDilation)
	}
	if res.Annealed > 0 {
		fmt.Printf(", %d annealing run(s), %d win(s)", res.Annealed, res.AnnealWins)
		if res.AnnealSeedsSkipped > 0 {
			fmt.Printf(", %d seed(s) beyond the cap", res.AnnealSeedsSkipped)
		}
	}
	fmt.Println()
	line := func(label string, c place.Candidate) {
		fmt.Printf("%s %-28s dilation %d  avg %.3f  peak %d  avg-link %.3f  score %g\n",
			label, c.Desc(), c.Dilation, c.AvgDilation, c.Peak, c.AvgLink, c.Score)
		fmt.Printf("          via %s\n", c.EmbedStrategy)
	}
	line("baseline:", res.Baseline)
	line("best:    ", res.Best)
	if pareto {
		fmt.Printf("pareto front (%d non-dominated placement(s), dilation vs congestion):\n", len(res.Front))
		for _, c := range res.Front {
			marker := " "
			if c.Index == res.Best.Index {
				marker = "*"
			}
			fmt.Printf(" %s d=%d peak=%d avg-link=%.3f score=%-6g %s\n",
				marker, c.Dilation, c.Peak, c.AvgLink, c.Score, c.Desc())
		}
	}
	if res.Improved() {
		fmt.Printf("improved: peak %d -> %d, dilation %d -> %d, score %g -> %g\n",
			res.Baseline.Peak, res.Best.Peak,
			res.Baseline.Dilation, res.Best.Dilation,
			res.Baseline.Score, res.Best.Score)
	} else {
		fmt.Println("the paper baseline is already optimal within the searched space")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitUsage)
}
