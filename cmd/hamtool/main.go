// Command hamtool constructs and verifies Hamiltonian circuits and paths
// of toruses and meshes, implementing Corollaries 18, 25 and 29 of
// Ma & Tao.
//
// Usage:
//
//	hamtool -spec torus:4x2x3            # circuit (always exists)
//	hamtool -spec mesh:3x4               # circuit (even size)
//	hamtool -spec mesh:3x3               # reports non-existence
//	hamtool -spec mesh:3x3 -path         # Hamiltonian path instead
package main

import (
	"flag"
	"fmt"
	"os"

	"torusmesh"
)

func main() {
	specStr := flag.String("spec", "", "graph spec, e.g. torus:4x2x3 or mesh:3x4")
	path := flag.Bool("path", false, "construct a Hamiltonian path instead of a circuit")
	quiet := flag.Bool("quiet", false, "suppress the node sequence, print only the verdict")
	flag.Parse()
	if *specStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	sp, err := torusmesh.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hamtool:", err)
		os.Exit(1)
	}
	if *path {
		seq := torusmesh.HamiltonianPath(sp)
		if err := torusmesh.VerifyHamiltonianPath(sp, seq); err != nil {
			fmt.Fprintln(os.Stderr, "hamtool: internal error:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: Hamiltonian path with %d nodes (f_L, Theorem 13)\n", sp, len(seq))
		if !*quiet {
			printSeq(seq)
		}
		return
	}
	if !torusmesh.HasHamiltonianCircuit(sp) {
		fmt.Printf("%s: no Hamiltonian circuit exists", sp)
		if sp.Kind == torusmesh.KindMesh && sp.Size()%2 == 1 {
			fmt.Print(" (odd-size mesh, Corollary 18)")
		}
		fmt.Println()
		return
	}
	seq, err := torusmesh.HamiltonianCircuit(sp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hamtool:", err)
		os.Exit(1)
	}
	if err := torusmesh.VerifyHamiltonianCircuit(sp, seq); err != nil {
		fmt.Fprintln(os.Stderr, "hamtool: internal error:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: Hamiltonian circuit with %d nodes (h_L, Corollaries 25/29)\n", sp, len(seq))
	if !*quiet {
		printSeq(seq)
	}
}

func printSeq(seq []torusmesh.Node) {
	for i, node := range seq {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(node)
	}
	fmt.Println()
}
