// Package torusmesh implements the embedding constructions of Eva Ma and
// Lixin Tao, "Embeddings Among Toruses and Meshes" (ICPP 1987; UPenn TR
// MS-CIS-88-63): minimum-dilation injections between d-dimensional
// toruses and meshes of equal size, built from a generalization of Gray
// codes to mixed-radix numbering systems.
//
// # Quick start
//
//	g := torusmesh.Ring(24)            // a 24-node ring task graph
//	h := torusmesh.Mesh(4, 2, 3)       // a 4x2x3 mesh machine
//	e, err := torusmesh.Embed(g, h)    // dilation-1 embedding (Theorem 24)
//	if err != nil { ... }
//	fmt.Println(e.Dilation())          // 1
//	fmt.Println(e.Map(torusmesh.Node{7})) // host coordinates of ring node 7
//
// # What you get
//
//   - Embed: the universal dispatcher covering every case the paper
//     solves — basic embeddings of lines and rings (Section 3),
//     expansion embeddings for increasing dimension (Section 4.1),
//     simple and general reductions for lowering dimension (Section
//     4.2), and the always-applicable constructions for square graphs
//     (Section 5). Each returned Embedding carries the paper's dilation
//     guarantee in Predicted and measures its true cost with Dilation.
//   - Gray-code sequences: F, G, H, R, TN — the mixed-radix sequences of
//     Definitions 9, 14, 15, 20 and 22, with inverses.
//   - Hamiltonian circuits and paths of toruses and meshes (Corollaries
//     18, 25, 29).
//   - Ground truth: exact minimum dilation by branch-and-bound for tiny
//     instances, ball-counting and degree lower bounds (Theorem 47), and
//     the literature baselines the paper compares against (Fitzgerald,
//     Ma & Narahari, Harper).
//   - A miniature interconnection-network simulator demonstrating that
//     dilation drives communication latency when task graphs are placed
//     on torus/mesh machines — the paper's motivating application.
//
// # The batch engine
//
// Embeddings carry two evaluation forms. Map is the per-node closure of
// Definition 1. Kernel is the compiled, index-native form: a batch
// evaluator over row-major ranks. Every construction in the paper is
// digit-separable — each guest coordinate independently determines a
// fixed set of host digits — so the engine compiles it into a
// per-digit contribution table (host rank = Σ_i contrib[i][digit_i]),
// and guests up to SetMaterializeThreshold nodes materialize into flat
// lookup tables whose compositions fuse into a single table. The
// measurement paths (Dilation, AverageDilation, Verify) enumerate guest
// edges in rank blocks striped across GOMAXPROCS workers and use
// rank-native distance reductions, making them several times faster
// than the per-node walks (kept as DilationPerNode and friends) with
// near-zero steady-state allocation. MapRanks exposes bulk evaluation
// for runtime systems that store placements as rank tables; the netsim
// routing and congestion pipelines run on the same worker pool.
//
// # The census engine
//
// The repo measures itself with a sharded coverage census
// (internal/census, CLI: cmd/sweep): for one size, every ordered pair
// of canonical torus/mesh shapes in both kind combinations is embedded,
// verified, and measured — strategy, dilation, average dilation,
// optional peak-link congestion under dimension-ordered routing, and
// the failure reason split into "no construction applies" versus "a
// construction broke its guarantee". Pairs are striped across the
// worker pool, and the pair space partitions deterministically into
// shards (pair i belongs to shard i mod m), so production-scale sweeps
// split across processes:
//
//	sweep -n 360 -maxdim 4 -shard 0/2 -json s0.json
//	sweep -n 360 -maxdim 4 -shard 1/2 -json s1.json
//	sweep -merge -json full.json s0.json s1.json
//
// Censuses serialize to versioned JSON artifacts whose encoding is
// deterministic (fixed field order, sorted map keys, wall times
// excluded): {version, size, maxdim, shard, shards, metrics,
// congestion, placed, place_spec, shapes, space_pairs, pairs, embeddable,
// construct_failures, verify_failures, by_strategy, histograms,
// results[]}, where histograms maps each strategy to its per-dilation
// and per-peak-congestion pair counts and each results entry carries
// {index, guest, host, strategy, predicted, dilation, avg_dilation,
// congestion, place, failure, failure_stage}.
// census.Merge validates size/maxdim/version/flag compatibility,
// demands each shard exactly once, and reproduces the unsharded census
// bit for bit — the invariant CI re-checks on every push. The schema
// is pinned by a golden-file test; changing the serialized form
// requires bumping census.ArtifactVersion.
//
// # The placement engine
//
// The paper's constructions minimize dilation; the placement engine
// (internal/place, CLI: cmd/place) additionally minimizes congestion —
// the second classic embedding cost, decided by symmetries the
// constructions leave free. Place searches candidate embeddings (base
// strategies composed with guest/host axis permutations, mesh digit
// rotations, and rotations of the prime refinement's intermediate
// stage) and returns the Pareto front over (dilation, peakLinkLoad,
// meanUsedLinkLoad) — Result.Front — plus the front member minimizing
// a configurable objective
//
//	score = α·dilation + β·peakLinkLoad + γ·meanUsedLinkLoad
//
// with congestion computed by the netsim routing engine, candidates
// scored concurrently on the shared worker pool (one shared
// construction per base, host symmetries post-composed as table
// fusions), and Pareto-safe pruning that skips congestion scoring of
// candidates that can no longer join the front. Both the front and the
// winner are deterministic and reported next to the paper baseline; by
// default the winner is constrained to dilate no worse
// (PlacementOptions.CapDilation), and PlacementOptions.Anneal adds a
// seeded simulated-annealing refinement that admits a placement only
// when it strictly dominates its seed. Sweeps can record best-found
// placements per pair with `sweep -place`.
//
// # The distributed driver
//
// Above the census sits the distributed sweep driver (internal/driver,
// CLI: cmd/sweepd): one census runs as a fleet of shard workers —
// in-process for the library form (RunDistributed), or subprocesses
// exec'ing `sweep -worker`, each streaming its shard as NDJSON (a
// versioned header line, then one result line per finished pair). The
// driver folds the streams incrementally with census.Merge semantics,
// validates records structurally as they arrive, retries failed and
// short attempts with exponential backoff, re-issues stragglers, and
// journals every folded record so a killed run resumes (-resume) by
// skipping the pairs already on disk. Whatever the completion order,
// retry history, or resume split, the final artifact is byte-identical
// to a single unsharded run.
//
// # The placement service
//
// The fifth engine (internal/serve, CLI: cmd/placed) fronts the
// placement search as a long-running HTTP server answering "place
// guest G on host H" at interactive latency: requests normalize to
// their canonical pair (guest relabelings that provably share a
// Pareto front share one cache entry), concurrent cold misses
// singleflight into exactly one background search, the paper-baseline
// construction answers instantly while the search runs, and entries
// persist as the same versioned artifacts `place -json` writes — a
// warm cache directory and batch output are interchangeable, and
// census artifacts bulk-seed the cache (`placed -warm`, POST /warm).
//
// All public entry points are thin veneers over the internal packages;
// see ARCHITECTURE.md for the engine and module map, README.md for CLI
// usage, and internal/experiments (cmd/experiments) for the
// reproduction of every figure and claim in the paper.
package torusmesh
