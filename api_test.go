package torusmesh_test

import (
	"testing"

	"torusmesh"
)

func TestQuickstartFlow(t *testing.T) {
	g := torusmesh.Ring(24)
	h := torusmesh.Mesh(4, 2, 3)
	e, err := torusmesh.Embed(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
	img := e.Map(torusmesh.Node{7})
	if len(img) != 3 {
		t.Errorf("image %v has wrong dimension", img)
	}
}

func TestSpecConstructors(t *testing.T) {
	if torusmesh.Hypercube(4).Size() != 16 {
		t.Error("Hypercube size wrong")
	}
	if torusmesh.SquareTorus(3, 5).Size() != 125 {
		t.Error("SquareTorus size wrong")
	}
	if torusmesh.SquareMesh(2, 4).String() != "mesh(4x4)" {
		t.Error("SquareMesh string wrong")
	}
	sp, err := torusmesh.ParseSpec("torus:3x3")
	if err != nil || sp.Kind != torusmesh.KindTorus {
		t.Errorf("ParseSpec: %v %v", sp, err)
	}
	if _, err := torusmesh.ParseSpec("nope"); err == nil {
		t.Error("bad spec accepted")
	}
	shape, err := torusmesh.ParseShape("4x2x3")
	if err != nil || shape.Size() != 24 {
		t.Errorf("ParseShape: %v %v", shape, err)
	}
}

func TestMustEmbedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEmbed did not panic on size mismatch")
		}
	}()
	torusmesh.MustEmbed(torusmesh.Ring(5), torusmesh.Line(6))
}

func TestSequencesAPI(t *testing.T) {
	L := torusmesh.Shape{4, 2, 3}
	n := L.Size()
	seen := map[string]bool{}
	for x := 0; x < n; x++ {
		v := torusmesh.GrayF(L, x)
		if torusmesh.GrayFInv(L, v) != x {
			t.Fatalf("GrayFInv broken at %d", x)
		}
		seen[v.String()] = true
		g := torusmesh.GrayG(L, x)
		if torusmesh.GrayGInv(L, g) != x {
			t.Fatalf("GrayGInv broken at %d", x)
		}
		h := torusmesh.GrayH(L, x)
		if torusmesh.GrayHInv(L, h) != x {
			t.Fatalf("GrayHInv broken at %d", x)
		}
	}
	if len(seen) != n {
		t.Errorf("GrayF visited %d distinct nodes, want %d", len(seen), n)
	}
	if torusmesh.CyclicT(6, 1) != 2 || torusmesh.CyclicTInv(6, 2) != 1 {
		t.Error("CyclicT wrong")
	}
	if got := len(torusmesh.GraySequence(L)); got != n {
		t.Errorf("GraySequence length %d", got)
	}
}

func TestHamiltonianAPI(t *testing.T) {
	sp := torusmesh.Torus(3, 5)
	circuit, err := torusmesh.HamiltonianCircuit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := torusmesh.VerifyHamiltonianCircuit(sp, circuit); err != nil {
		t.Fatal(err)
	}
	if !torusmesh.HasHamiltonianCircuit(sp) {
		t.Error("torus misclassified")
	}
	odd := torusmesh.Mesh(3, 5)
	if torusmesh.HasHamiltonianCircuit(odd) {
		t.Error("odd mesh misclassified")
	}
	if _, err := torusmesh.HamiltonianCircuit(odd); err == nil {
		t.Error("odd mesh circuit built")
	}
	path := torusmesh.HamiltonianPath(odd)
	if err := torusmesh.VerifyHamiltonianPath(odd, path); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisAPI(t *testing.T) {
	opt, err := torusmesh.MinDilation(torusmesh.Ring(9), torusmesh.Mesh(3, 3), 16)
	if err != nil || opt != 2 {
		t.Errorf("MinDilation = %d, %v; want 2", opt, err)
	}
	if lb := torusmesh.DilationLowerBound(torusmesh.SquareMesh(2, 4), torusmesh.Line(16)); lb < 2 {
		t.Errorf("lower bound = %d, want >= 2", lb)
	}
	if c, ok := torusmesh.FitzgeraldMeshLine(3, 4); !ok || c != 14 {
		t.Errorf("Fitzgerald 3D = %d, %v", c, ok)
	}
	if _, ok := torusmesh.FitzgeraldMeshLine(4, 4); ok {
		t.Error("Fitzgerald accepted d=4")
	}
	if torusmesh.HarperHypercubeLine(4) != 7 {
		t.Error("Harper wrong")
	}
	if torusmesh.Epsilon(3).String() != "7/8" {
		t.Errorf("Epsilon(3) = %s", torusmesh.Epsilon(3))
	}
	rm, err := torusmesh.RowMajorEmbedding(torusmesh.Ring(24), torusmesh.Mesh(4, 2, 3))
	if err != nil || rm.Verify() != nil {
		t.Errorf("RowMajorEmbedding: %v", err)
	}
	if p, err := torusmesh.PredictedDilation(torusmesh.Ring(9), torusmesh.Mesh(3, 3)); err != nil || p != 2 {
		t.Errorf("PredictedDilation = %d, %v", p, err)
	}
	a, b := torusmesh.Node{0, 0, 1}, torusmesh.Node{3, 0, 0}
	if torusmesh.Distance(torusmesh.Torus(4, 2, 3), a, b) != 2 {
		t.Error("torus distance wrong")
	}
	if torusmesh.Distance(torusmesh.Mesh(4, 2, 3), a, b) != 4 {
		t.Error("mesh distance wrong")
	}
}

func TestSimAPI(t *testing.T) {
	machine := torusmesh.Torus(4, 6)
	nw := torusmesh.NewNetwork(machine)
	tg := torusmesh.RingPipeline(24)
	e := torusmesh.MustEmbed(torusmesh.Ring(24), machine)
	ours, err := torusmesh.Simulate(nw, tg, torusmesh.PlacementFromEmbedding(e))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := torusmesh.Simulate(nw, tg, torusmesh.IdentityPlacement(24))
	if err != nil {
		t.Fatal(err)
	}
	if ours.MaxHops != 1 {
		t.Errorf("embedding placement max hops = %d, want 1", ours.MaxHops)
	}
	if naive.Cycles < ours.Cycles {
		t.Errorf("naive %d cycles beat embedding %d", naive.Cycles, ours.Cycles)
	}
	for _, tg := range []*torusmesh.TaskGraph{
		torusmesh.Pipeline(5), torusmesh.Stencil2D(2, 3), torusmesh.Stencil3D(2, 2, 2),
		torusmesh.HaloExchange2D(3, 3), torusmesh.HypercubeExchange(3),
		torusmesh.TaskGraphFromSpec(torusmesh.Mesh(2, 2)),
	} {
		if err := tg.Validate(); err != nil {
			t.Errorf("%s: %v", tg.Name, err)
		}
	}
}
