package torusmesh

import (
	"context"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/driver"
	"torusmesh/internal/par"
)

// Census is the mergeable, serializable outcome of a coverage census:
// one PairResult per ordered (shape, kind) pair of a size, plus the
// derived aggregates and per-strategy histograms. Its JSON encoding is
// deterministic, so equal censuses produce equal bytes.
type Census = census.Census

// CensusPair is one census record: the strategy that carried the pair
// and its measured costs, or the failure reason split by stage.
type CensusPair = census.PairResult

// DistributedOptions tunes RunDistributed. The zero value is a
// sensible fleet: metrics on, one shard and one worker slot per CPU,
// the driver's default retry policy.
type DistributedOptions struct {
	// MaxDim caps the shape dimension during enumeration (0 = unlimited).
	MaxDim int
	// Shards is how many stripes the pair space splits into
	// (0 = GOMAXPROCS).
	Shards int
	// Workers is how many shard attempts run concurrently
	// (0 = min(Shards, GOMAXPROCS)).
	Workers int
	// Retries is the per-shard retry budget after the first attempt
	// (0 = the driver default, negative = none).
	Retries int
	// StragglerFactor re-issues attempts running past this multiple of
	// the median shard wall time (0 = off).
	StragglerFactor float64
	// Congestion additionally routes every embeddable pair's edges
	// through its host and records the peak directed-link load.
	Congestion bool
}

// RunDistributed runs the full coverage census of one size under the
// distributed sweep driver with in-process shard workers: the pair
// space splits into shards, shards evaluate concurrently with retries
// and optional straggler re-issue, and the folded result is
// byte-identical to a single unsharded census — the library form of
// `cmd/sweepd`. For multi-process fleets (subprocess workers streaming
// NDJSON, journals, resume), use sweepd or internal/driver directly.
func RunDistributed(ctx context.Context, size int, opts DistributedOptions) (*Census, error) {
	workers := opts.Workers
	shards := opts.Shards
	if shards == 0 {
		shards = par.Workers()
	}
	if workers == 0 {
		workers = min(shards, par.Workers())
	}
	d, err := driver.New(driver.Plan{
		Config: census.Config{
			Size:       size,
			MaxDim:     opts.MaxDim,
			Shapes:     catalog.CanonicalShapesOfSize(size, opts.MaxDim),
			Metrics:    true,
			Congestion: opts.Congestion,
			Embed:      core.Embed,
		},
		Shards:          shards,
		Workers:         workers,
		Worker:          driver.InProcess{},
		Retries:         opts.Retries,
		StragglerFactor: opts.StragglerFactor,
	})
	if err != nil {
		return nil, err
	}
	return d.Run(ctx)
}
