package torusmesh

import "torusmesh/internal/contract"

// ManyToOne is a many-to-one simulation of a larger guest on a smaller
// host: each host node simulates exactly Load guest nodes. This is the
// relaxation of embeddings the paper contrasts with Kosaraju & Atallah's
// mesh simulations.
type ManyToOne = contract.Simulation

// SimulateManyToOne builds a constant-load simulation of guest on host.
// The guest's size must be a multiple of the host's; equal sizes fall
// back to a plain embedding with load 1. The construction contracts
// blocks of the guest onto an intermediate graph of the host's size,
// then embeds that intermediate with the paper's constructions, so the
// dilation is the embedding's dilation and the load is the size ratio.
func SimulateManyToOne(guest, host Spec) (*ManyToOne, error) {
	return contract.Simulate(guest, host)
}

// BlockContraction builds the direct dilation-1, load-(size ratio)
// contraction when the host shape divides the guest shape
// component-wise (equal dimensions).
func BlockContraction(guest, host Spec) (*ManyToOne, error) {
	return contract.BlockContraction(guest, host)
}
