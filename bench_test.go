package torusmesh_test

// The benchmark harness regenerates every experiment (one benchmark per
// table/figure of the paper, E01..E19 per DESIGN.md), and adds
// micro-benchmarks for the core operations and the ablation comparisons
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
import (
	"io"
	"testing"

	"torusmesh"
	"torusmesh/internal/experiments"
)

// benchExperiment times the full regeneration of one experiment table.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE01Preliminaries(b *testing.B)       { benchExperiment(b, "E01") }
func BenchmarkE02SpreadExample(b *testing.B)       { benchExperiment(b, "E02") }
func BenchmarkE03ReflectionAblation(b *testing.B)  { benchExperiment(b, "E03") }
func BenchmarkE04BasicSequences(b *testing.B)      { benchExperiment(b, "E04") }
func BenchmarkE05LineRingInMesh(b *testing.B)      { benchExperiment(b, "E05") }
func BenchmarkE06BasicMatrix(b *testing.B)         { benchExperiment(b, "E06") }
func BenchmarkE07Hamiltonian(b *testing.B)         { benchExperiment(b, "E07") }
func BenchmarkE08ExpansionExample(b *testing.B)    { benchExperiment(b, "E08") }
func BenchmarkE09IncreasingMatrix(b *testing.B)    { benchExperiment(b, "E09") }
func BenchmarkE10Hypercube(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11SimpleReduction(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12GeneralReduction(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13SquareLoweringDiv(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14SquareLoweringChain(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15SquareIncreasing(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16Literature(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17Epsilon(b *testing.B)             { benchExperiment(b, "E17") }
func BenchmarkE18Netsim(b *testing.B)              { benchExperiment(b, "E18") }
func BenchmarkE19LowerBounds(b *testing.B)         { benchExperiment(b, "E19") }
func BenchmarkE20Census(b *testing.B)              { benchExperiment(b, "E20") }
func BenchmarkE21Contraction(b *testing.B)         { benchExperiment(b, "E21") }

// --- Micro-benchmarks: the basic sequences -------------------------------

func BenchmarkGrayFPoint(b *testing.B) {
	L := torusmesh.Shape{8, 8, 8, 8}
	n := L.Size()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = torusmesh.GrayF(L, i%n)
	}
}

func BenchmarkGrayFInv(b *testing.B) {
	L := torusmesh.Shape{8, 8, 8, 8}
	n := L.Size()
	nodes := make([]torusmesh.Node, n)
	for x := 0; x < n; x++ {
		nodes[x] = torusmesh.GrayF(L, x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = torusmesh.GrayFInv(L, nodes[i%n])
	}
}

func BenchmarkGrayGPoint(b *testing.B) {
	L := torusmesh.Shape{8, 8, 8, 8}
	n := L.Size()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = torusmesh.GrayG(L, i%n)
	}
}

func BenchmarkGrayHPoint(b *testing.B) {
	L := torusmesh.Shape{8, 8, 8, 8}
	n := L.Size()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = torusmesh.GrayH(L, i%n)
	}
}

// --- Micro-benchmarks: embedding construction and measurement ------------

func BenchmarkEmbedConstructRingMesh(b *testing.B) {
	g := torusmesh.Ring(4096)
	h := torusmesh.Mesh(16, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := torusmesh.Embed(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedConstructSquareChain(b *testing.B) {
	g := torusmesh.SquareMesh(5, 4)
	h := torusmesh.SquareMesh(2, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := torusmesh.Embed(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedMapEval(b *testing.B) {
	em := torusmesh.MustEmbed(torusmesh.Ring(24), torusmesh.Mesh(4, 2, 3))
	node := torusmesh.Node{7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node[0] = i % 24
		_ = em.Map(node)
	}
}

// BenchmarkEmbedMapEvalChain evaluates a node through the composed
// Theorem 51 chain (three general-reduction hops).
func BenchmarkEmbedMapEvalChain(b *testing.B) {
	em := torusmesh.MustEmbed(torusmesh.SquareMesh(5, 4), torusmesh.SquareMesh(2, 32))
	node := torusmesh.Node{1, 2, 3, 0, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node[0] = i % 4
		_ = em.Map(node)
	}
}

func BenchmarkDilationMeasure4096(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.Ring(4096), torusmesh.Mesh(16, 16, 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.Dilation(); d != 1 {
			b.Fatalf("dilation %d", d)
		}
	}
}

// BenchmarkDilationPerNodeTorus32 vs BenchmarkDilationBatchTorus32: the
// per-node closure walk against the compiled batch kernel on a
// 32x32x32 torus-into-mesh embedding (32768 nodes, 98304 edges). The
// batch path must be at least 2x faster with at least 10x fewer
// allocs/op.
func BenchmarkDilationPerNodeTorus32(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.SquareTorus(3, 32), torusmesh.SquareMesh(3, 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.DilationPerNode(); d != 2 {
			b.Fatalf("dilation %d", d)
		}
	}
}

func BenchmarkDilationBatchTorus32(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.SquareTorus(3, 32), torusmesh.SquareMesh(3, 32))
	e.Kernel() // materialize outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.Dilation(); d != 2 {
			b.Fatalf("dilation %d", d)
		}
	}
}

func BenchmarkVerify4096(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.Ring(4096), torusmesh.Mesh(16, 16, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationRowMajorDilation vs BenchmarkAblationGrayDilation:
// measuring the dilation of the naive and reflected placements of a ring
// in a large mesh (the measured costs differ; the work is the same).
func BenchmarkAblationRowMajorDilation(b *testing.B) {
	rm, err := torusmesh.RowMajorEmbedding(torusmesh.Ring(4096), torusmesh.Mesh(16, 16, 16))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rm.Dilation()
	}
}

func BenchmarkAblationGrayDilation(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.Ring(4096), torusmesh.Mesh(16, 16, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Dilation()
	}
}

// --- Substrates -----------------------------------------------------------

func BenchmarkHamiltonianCircuit(b *testing.B) {
	sp := torusmesh.Torus(16, 16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := torusmesh.HamiltonianCircuit(sp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimRingOnTorus(b *testing.B) {
	machine := torusmesh.Torus(16, 16)
	nw := torusmesh.NewNetwork(machine)
	tg := torusmesh.RingPipeline(256)
	p := torusmesh.PlacementFromEmbedding(torusmesh.MustEmbed(torusmesh.Ring(256), machine))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := torusmesh.Simulate(nw, tg, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinDilationBruteForce(b *testing.B) {
	g := torusmesh.Ring(9)
	h := torusmesh.Mesh(3, 3)
	for i := 0; i < b.N; i++ {
		if _, err := torusmesh.MinDilation(g, h, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBoundBall(b *testing.B) {
	g := torusmesh.SquareMesh(4, 4)
	h := torusmesh.SquareMesh(2, 16)
	for i := 0; i < b.N; i++ {
		_ = torusmesh.DilationLowerBound(g, h)
	}
}

func BenchmarkManyToOneSimulation(b *testing.B) {
	g := torusmesh.Mesh(32, 24)
	h := torusmesh.Mesh(4, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := torusmesh.SimulateManyToOne(g, h)
		if err != nil {
			b.Fatal(err)
		}
		if sim.Load != 32 {
			b.Fatalf("load %d", sim.Load)
		}
	}
}

func BenchmarkRenderEmbedding(b *testing.B) {
	e := torusmesh.MustEmbed(torusmesh.Ring(24), torusmesh.Mesh(4, 2, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = torusmesh.RenderEmbedding(e)
	}
}
