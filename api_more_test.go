package torusmesh_test

import (
	"strings"
	"testing"

	"torusmesh"
)

func TestManyToOneAPI(t *testing.T) {
	sim, err := torusmesh.SimulateManyToOne(torusmesh.Torus(16, 16), torusmesh.Torus(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 4 {
		t.Errorf("load = %d, want 4", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
	bc, err := torusmesh.BlockContraction(torusmesh.Mesh(8, 6), torusmesh.Mesh(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if bc.Load != 4 || bc.Dilation() != 1 {
		t.Errorf("block contraction load %d dilation %d", bc.Load, bc.Dilation())
	}
	if _, err := torusmesh.SimulateManyToOne(torusmesh.Mesh(5, 5), torusmesh.Mesh(2, 6)); err == nil {
		t.Error("non-multiple sizes accepted")
	}
}

func TestOptimalEmbeddingAPI(t *testing.T) {
	e, err := torusmesh.OptimalEmbedding(torusmesh.Ring(9), torusmesh.Mesh(3, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 2 {
		t.Errorf("optimal embedding dilation = %d, want 2", d)
	}
	if _, err := torusmesh.OptimalEmbedding(torusmesh.Ring(100), torusmesh.Mesh(10, 10), 16); err == nil {
		t.Error("node limit not enforced")
	}
}

func TestExportImportAPI(t *testing.T) {
	e := torusmesh.MustEmbed(torusmesh.Ring(24), torusmesh.Mesh(4, 2, 3))
	data, err := torusmesh.ExportEmbedding(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := torusmesh.ImportEmbedding(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dilation() != e.Dilation() {
		t.Errorf("round trip changed dilation: %d vs %d", back.Dilation(), e.Dilation())
	}
}

func TestCongestionAPI(t *testing.T) {
	machine := torusmesh.Torus(4, 4)
	nw := torusmesh.NewNetwork(machine)
	tg := torusmesh.RingPipeline(16)
	p := torusmesh.PlacementFromEmbedding(torusmesh.MustEmbed(torusmesh.Ring(16), machine))
	c, err := torusmesh.Congestion(nw, tg, p)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-dilation ring placement: 32 directed routes of one hop each,
	// all distinct links.
	if c.MaxLink != 1 || c.TotalHops != 32 || c.UsedLinks != 32 {
		t.Errorf("congestion = %+v, want max 1, total 32, links 32", c)
	}
	if _, err := torusmesh.Congestion(nw, tg, torusmesh.Placement{0}); err == nil {
		t.Error("bad placement accepted")
	}
}

func TestRenderAPI(t *testing.T) {
	e := torusmesh.MustEmbed(torusmesh.Line(6), torusmesh.Mesh(2, 3))
	out := torusmesh.RenderEmbedding(e)
	if !strings.Contains(out, "0") || !strings.Contains(out, "5") {
		t.Errorf("render missing labels:\n%s", out)
	}
	circuit, err := torusmesh.HamiltonianCircuit(torusmesh.Torus(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	out2 := torusmesh.RenderCircuit(torusmesh.Torus(3, 3), circuit)
	if len(strings.Fields(out2)) != 9 {
		t.Errorf("circuit render has %d cells:\n%s", len(strings.Fields(out2)), out2)
	}
	out3 := torusmesh.RenderGrid(torusmesh.Shape{2, 2}, func(n torusmesh.Node) string { return "x" })
	if strings.Count(out3, "x") != 4 {
		t.Errorf("grid render wrong:\n%s", out3)
	}
}

func TestHamiltonianPathRender(t *testing.T) {
	sp := torusmesh.Mesh(3, 3)
	path := torusmesh.HamiltonianPath(sp)
	out := torusmesh.RenderCircuit(sp, path)
	// The f_L path snakes through the mesh: position 0 at (0,0) (bottom
	// left in the drawing) and position 8 at (2,0) (top left).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("render:\n%s", out)
	}
	if strings.Fields(lines[2])[0] != "0" {
		t.Errorf("bottom-left should be position 0:\n%s", out)
	}
	// Row 2 of the mesh holds positions 6,7,8 left to right (the third
	// segment of the snake is unreflected: ⌊6/3⌋ = 2 is even).
	if strings.Fields(lines[0])[0] != "6" {
		t.Errorf("top-left should be position 6:\n%s", out)
	}
}
