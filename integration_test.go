package torusmesh_test

import (
	"testing"

	"torusmesh"
)

// TestEverythingEmbedsEverything sweeps a catalogue of same-size shape
// pairs across all kind combinations, embedding each pair in both
// directions whenever a construction exists, verifying injectivity and
// the recorded dilation guarantee. This is the end-to-end contract of
// the library: if Embed succeeds, the result is a valid embedding whose
// measured dilation never exceeds its guarantee.
func TestEverythingEmbedsEverything(t *testing.T) {
	families := [][]torusmesh.Shape{
		// size 24
		{{24}, {4, 6}, {2, 12}, {4, 2, 3}, {2, 2, 6}, {2, 2, 2, 3}, {3, 8}, {6, 4}},
		// size 16
		{{16}, {4, 4}, {2, 8}, {2, 2, 4}, {2, 2, 2, 2}},
		// size 36
		{{36}, {6, 6}, {4, 9}, {3, 3, 4}, {2, 3, 6}, {2, 18}, {2, 2, 9}, {3, 12}},
		// size 64
		{{64}, {8, 8}, {4, 4, 4}, {2, 2, 2, 2, 2, 2}, {4, 16}, {2, 4, 8}},
		// odd size 27
		{{27}, {3, 9}, {3, 3, 3}},
	}
	kinds := []torusmesh.Kind{torusmesh.KindMesh, torusmesh.KindTorus}
	embedded, skipped := 0, 0
	for _, family := range families {
		for _, gs := range family {
			for _, hs := range family {
				for _, gk := range kinds {
					for _, hk := range kinds {
						g := torusmesh.Spec{Kind: gk, Shape: gs}
						h := torusmesh.Spec{Kind: hk, Shape: hs}
						e, err := torusmesh.Embed(g, h)
						if err != nil {
							skipped++ // no construction for this pair
							continue
						}
						embedded++
						if err := e.Verify(); err != nil {
							t.Errorf("%s -> %s: %v", g, h, err)
							continue
						}
						if d, err := e.CheckPredicted(); err != nil {
							t.Errorf("%s -> %s: %v (measured %d)", g, h, err, d)
						}
					}
				}
			}
		}
	}
	if embedded < 300 {
		t.Errorf("only %d pairs embedded (%d skipped); catalogue unexpectedly thin", embedded, skipped)
	}
	t.Logf("embedded %d pairs, no construction for %d pairs", embedded, skipped)
}

// TestOptimalityClaims verifies, by exhaustive search on tiny instances,
// every optimality statement in the paper's abstract: basic embeddings
// are optimal; increasing-dimension embeddings are optimal except
// even-size torus into mesh (where they still achieve 2, and 1 under the
// even-first condition).
func TestOptimalityClaims(t *testing.T) {
	cases := []struct {
		g, h torusmesh.Spec
	}{
		// Basic embeddings (Section 3) - all optimal.
		{torusmesh.Line(12), torusmesh.Mesh(3, 4)},
		{torusmesh.Line(12), torusmesh.Torus(3, 4)},
		{torusmesh.Ring(12), torusmesh.Torus(3, 4)},
		{torusmesh.Ring(12), torusmesh.Mesh(3, 4)},
		{torusmesh.Ring(15), torusmesh.Mesh(3, 5)},
		{torusmesh.Ring(12), torusmesh.Line(12)},
		// Increasing dimension (Theorem 32) - optimal.
		{torusmesh.Mesh(4, 4), torusmesh.Torus(2, 2, 4)},
		{torusmesh.Mesh(4, 4), torusmesh.Mesh(2, 2, 4)},
		{torusmesh.Torus(4, 4), torusmesh.Torus(2, 2, 4)},
		// Same shape (Lemma 36) - optimal.
		{torusmesh.Torus(3, 5), torusmesh.Mesh(3, 5)},
	}
	for _, c := range cases {
		e, err := torusmesh.Embed(c.g, c.h)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		ours := e.Dilation()
		opt, err := torusmesh.MinDilation(c.g, c.h, 16)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if ours != opt {
			t.Errorf("%s -> %s: ours %d != optimal %d (%s)", c.g, c.h, ours, opt, e.Strategy)
		}
	}
}

// TestEmbeddingsComposeAcrossLayers chains line -> mesh -> torus ->
// hypercube through the public API, verifying composition preserves
// validity end to end.
func TestEmbeddingsComposeAcrossLayers(t *testing.T) {
	// line(16) -> mesh(4,4) -> torus(2,2,4)... embed stepwise and check
	// the final positions by hand-composing the maps.
	e1 := torusmesh.MustEmbed(torusmesh.Line(16), torusmesh.Mesh(4, 4))
	e2 := torusmesh.MustEmbed(torusmesh.Mesh(4, 4), torusmesh.Torus(2, 2, 4))
	e3 := torusmesh.MustEmbed(torusmesh.Torus(2, 2, 4), torusmesh.Hypercube(4))
	seen := map[string]bool{}
	prev := torusmesh.Node(nil)
	maxJump := 0
	for x := 0; x < 16; x++ {
		node := e3.Map(e2.Map(e1.Map(torusmesh.Node{x})))
		if seen[node.String()] {
			t.Fatalf("composition collides at %d", x)
		}
		seen[node.String()] = true
		if prev != nil {
			d := torusmesh.Distance(torusmesh.Hypercube(4), prev, node)
			if d > maxJump {
				maxJump = d
			}
		}
		prev = node
	}
	// Each layer has dilation 1, so the composed walk moves at most
	// 1*1*1 hops per step.
	if maxJump != 1 {
		t.Errorf("composed dilation = %d, want 1", maxJump)
	}
}

// TestNetworkLatencyTracksDilation runs the motivating experiment at a
// slightly larger scale: a 64-stage ring pipeline on an 8x8 torus
// machine under three placements.
func TestNetworkLatencyTracksDilation(t *testing.T) {
	machine := torusmesh.Torus(8, 8)
	nw := torusmesh.NewNetwork(machine)
	tg := torusmesh.RingPipeline(64)
	good := torusmesh.PlacementFromEmbedding(torusmesh.MustEmbed(torusmesh.Ring(64), machine))
	naive := torusmesh.IdentityPlacement(64)
	rm, err := torusmesh.RowMajorEmbedding(torusmesh.Ring(64), machine)
	if err != nil {
		t.Fatal(err)
	}
	rowMajor := torusmesh.PlacementFromEmbedding(rm)

	rGood, err := torusmesh.Simulate(nw, tg, good)
	if err != nil {
		t.Fatal(err)
	}
	rNaive, err := torusmesh.Simulate(nw, tg, naive)
	if err != nil {
		t.Fatal(err)
	}
	rRM, err := torusmesh.Simulate(nw, tg, rowMajor)
	if err != nil {
		t.Fatal(err)
	}
	if rGood.MaxHops != 1 {
		t.Errorf("embedding placement has max hops %d, want 1", rGood.MaxHops)
	}
	if rGood.Cycles > rNaive.Cycles || rGood.Cycles > rRM.Cycles {
		t.Errorf("embedding placement (%d cycles) should not lose to naive (%d) or row-major (%d)",
			rGood.Cycles, rNaive.Cycles, rRM.Cycles)
	}
}
