// Hypercube example: the Chan & Saad scenario the paper generalizes.
// Multigrid solvers walk a hierarchy of 2D grids; embedding every grid of
// the hierarchy into the same hypercube with unit dilation keeps all
// neighbor communication between directly-wired processors. Corollary 34
// guarantees unit dilation for every power-of-two mesh or torus.
package main

import (
	"fmt"
	"log"

	"torusmesh"
)

func main() {
	const dim = 6 // a 64-processor hypercube
	cube := torusmesh.Hypercube(dim)
	fmt.Printf("machine: hypercube with %d processors\n\n", cube.Size())

	// The multigrid hierarchy: 8x8, then coarser grids simulated on
	// subsets - here we embed the finest few same-size variants.
	guests := []torusmesh.Spec{
		torusmesh.Mesh(8, 8),
		torusmesh.Mesh(4, 16),
		torusmesh.Mesh(2, 32),
		torusmesh.Mesh(4, 4, 4),
		torusmesh.Mesh(2, 4, 8),
		torusmesh.Torus(8, 8),
		torusmesh.Torus(4, 4, 4),
		torusmesh.Line(64),
		torusmesh.Ring(64),
	}
	fmt.Println("guest -> hypercube(6): dilation (Corollary 34 claims 1 for all)")
	for _, g := range guests {
		e, err := torusmesh.Embed(g, cube)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.Verify(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s dilation %d via %s\n", g.String(), e.Dilation(), e.Strategy)
	}

	// Gray codes are the 1-dimensional slice of the machinery: the
	// binary reflected Gray code is f_L for the all-twos shape.
	fmt.Println("\nbinary reflected Gray code from f_L over shape 2x2x2:")
	L := torusmesh.Shape{2, 2, 2}
	for x := 0; x < 8; x++ {
		fmt.Printf("  %d -> %v\n", x, torusmesh.GrayF(L, x))
	}

	// And the converse direction: the hypercube embeds in a square mesh
	// of the same size with dilation m/2 (Corollary 49).
	e, err := torusmesh.Embed(cube, torusmesh.Mesh(8, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhypercube(6) -> mesh(8x8): dilation %d (Corollary 49: m/2 = 4)\n", e.Dilation())
}
