// Squares example: Section 5 of the paper. Square toruses and meshes can
// always be embedded into one another; lowering dimension goes through a
// chain of intermediate shapes, each step a general reduction. This
// example lowers a 5-dimensional 4x4x4x4x4 mesh onto a 32x32 mesh and
// raises an 8x8 torus into a 4x4x4 torus, printing what happens inside.
package main

import (
	"fmt"
	"log"

	"torusmesh"
)

func main() {
	// Lowering: d=5 -> c=2 with side 4. gcd(5,2)=1, u=5, v=2,
	// root = 4^{1/2} = 2; the chain multiplies the two leading sides by
	// 2 at every step while dropping one trailing dimension.
	g := torusmesh.SquareMesh(5, 4)
	h := torusmesh.SquareMesh(2, 32)
	e, err := torusmesh.Embed(g, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -> %s\n", g, h)
	fmt.Printf("strategy: %s\n", e.Strategy)
	fmt.Printf("guarantee: dilation <= %d  (Theorem 51: l^((d-c)/c) = 4^(3/2) = 8)\n", e.Predicted)
	fmt.Printf("measured: %d\n", e.Dilation())
	fmt.Printf("lower bound (Theorem 47 ball argument): %d\n\n", torusmesh.DilationLowerBound(g, h))

	// The same lowering for a torus pays a factor 2 into a mesh
	// (Lemma 36 penalty at the last hop) but not into a torus.
	gt := torusmesh.SquareTorus(5, 4)
	for _, host := range []torusmesh.Spec{torusmesh.SquareTorus(2, 32), torusmesh.SquareMesh(2, 32)} {
		e, err := torusmesh.Embed(gt, host)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s: guarantee %d, measured %d\n", gt, host, e.Predicted, e.Dilation())
	}

	// Increasing dimension: an 8x8 torus into a 4x4x4 torus is not an
	// expansion (4*4 != 8) - Theorem 53 routes through an intermediate
	// 2^6 hypercube.
	fmt.Println()
	g2 := torusmesh.SquareTorus(2, 8)
	h2 := torusmesh.SquareTorus(3, 4)
	e2, err := torusmesh.Embed(g2, h2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s -> %s\n", g2, h2)
	fmt.Printf("strategy: %s\n", e2.Strategy)
	fmt.Printf("guarantee: dilation <= %d  (Theorem 53: l^((d-a)/c) = 8^(1/3) = 2)\n", e2.Predicted)
	fmt.Printf("measured: %d\n", e2.Dilation())

	// Divisible increasing dimension is simply optimal (Theorem 52).
	fmt.Println()
	for _, c := range []struct {
		g, h torusmesh.Spec
	}{
		{torusmesh.SquareMesh(2, 9), torusmesh.SquareMesh(4, 3)},
		{torusmesh.SquareTorus(2, 9), torusmesh.SquareMesh(4, 3)}, // odd torus: optimal 2
		{torusmesh.SquareTorus(2, 4), torusmesh.SquareMesh(4, 2)}, // even torus: 1
	} {
		e, err := torusmesh.Embed(c.g, c.h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s: dilation %d (%s)\n", c.g, c.h, e.Dilation(), e.Strategy)
	}
}
