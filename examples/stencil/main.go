// Stencil example: the paper's motivating application. A 2D Jacobi
// stencil (5-point) runs on machines whose topology does not match the
// task graph; the quality of the task-to-processor mapping - its
// dilation - shows up directly as communication latency in a simulated
// machine.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"torusmesh"
)

func main() {
	// The application: an 8x8 grid of subdomains exchanging halos.
	task := torusmesh.Mesh(8, 8)
	tg := torusmesh.Stencil2D(8, 8)
	fmt.Printf("task graph: %s (%d tasks, %d halo pairs)\n\n", tg.Name, tg.N, len(tg.Edges))

	machines := []torusmesh.Spec{
		torusmesh.Torus(8, 8),    // perfectly matching torus
		torusmesh.Hypercube(6),   // 64-node hypercube
		torusmesh.Torus(4, 2, 8), // skewed 3D torus (expansion of 8x8)
		torusmesh.Mesh(4, 4, 4),  // 3D mesh (square, Theorem 53)
		torusmesh.Ring(64),       // worst case: a ring
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\tplacement\tdilation\tavg hops\tphase cycles\tpeak link load")
	for _, machine := range machines {
		nw := torusmesh.NewNetwork(machine)
		e, err := torusmesh.Embed(task, machine)
		if err != nil {
			log.Fatalf("%s: %v", machine, err)
		}
		rm, err := torusmesh.RowMajorEmbedding(task, machine)
		if err != nil {
			log.Fatal(err)
		}
		for _, pl := range []struct {
			label string
			p     torusmesh.Placement
		}{
			{"paper embedding", torusmesh.PlacementFromEmbedding(e)},
			{"row-major", torusmesh.PlacementFromEmbedding(rm)},
		} {
			r, err := torusmesh.Simulate(nw, tg, pl.p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%d\n",
				machine, pl.label, r.MaxHops, r.AvgHops, r.Cycles, r.MaxLinkLoad)
		}
	}
	tw.Flush()

	fmt.Println("\nthe paper's embeddings keep halo exchanges between near-neighbors even on")
	fmt.Println("mismatched topologies; on the ring the dilation lower bound (Theorem 47)")
	fmt.Printf("is %d - no placement can do much better.\n",
		torusmesh.DilationLowerBound(task, torusmesh.Ring(64)))
}
