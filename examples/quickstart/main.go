// Quickstart: embed a 24-node ring in a 4x2x3 mesh with unit dilation
// (Theorem 24 of Ma & Tao) and inspect the result.
package main

import (
	"fmt"
	"log"

	"torusmesh"
)

func main() {
	ring := torusmesh.Ring(24)
	mesh := torusmesh.Mesh(4, 2, 3)

	e, err := torusmesh.Embed(ring, mesh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding %s in %s\n", ring, mesh)
	fmt.Printf("strategy:  %s\n", e.Strategy)
	fmt.Printf("dilation:  %d (guaranteed <= %d)\n", e.Dilation(), e.Predicted)

	// Walk the ring and print where each node lands: consecutive ring
	// nodes land on adjacent mesh nodes, all the way around.
	fmt.Println("\nring node -> mesh node")
	var prev torusmesh.Node
	for x := 0; x < ring.Size(); x++ {
		img := e.Map(torusmesh.Node{x})
		marker := ""
		if prev != nil {
			if torusmesh.Distance(mesh, prev, img) != 1 {
				marker = "  <- NOT adjacent (bug!)"
			}
		}
		fmt.Printf("  %2d -> %s%s\n", x, img, marker)
		prev = img
	}
	wrap := torusmesh.Distance(mesh, e.Map(torusmesh.Node{23}), e.Map(torusmesh.Node{0}))
	fmt.Printf("wrap-around edge 23-0 maps to mesh distance %d\n", wrap)

	// The same ring in an odd mesh can only achieve dilation 2
	// (Theorem 17) - the library knows this is optimal.
	odd, err := torusmesh.Embed(torusmesh.Ring(15), torusmesh.Mesh(3, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nring(15) in mesh(3x5): dilation %d via %s (optimal: no odd mesh has a Hamiltonian circuit)\n",
		odd.Dilation(), odd.Strategy)
}
