package torusmesh

import "torusmesh/internal/ham"

// HamiltonianPath returns a Hamiltonian path of the torus or mesh: the
// node order f_L(0), ..., f_L(n-1) (Theorem 13 read as a path).
func HamiltonianPath(sp Spec) []Node { return ham.Path(sp) }

// HasHamiltonianCircuit reports the paper's classification: every torus
// has a Hamiltonian circuit (Corollary 29); a mesh has one exactly when
// its size is even and its dimension is at least 2 (Corollaries 18, 25).
func HasHamiltonianCircuit(sp Spec) bool { return ham.HasCircuit(sp) }

// HamiltonianCircuit returns a Hamiltonian circuit of the graph, or an
// error when none exists (odd meshes and lines).
func HamiltonianCircuit(sp Spec) ([]Node, error) { return ham.Circuit(sp) }

// VerifyHamiltonianCircuit checks that seq visits every node exactly
// once with cyclically adjacent consecutive nodes.
func VerifyHamiltonianCircuit(sp Spec, seq []Node) error { return ham.VerifyCircuit(sp, seq) }

// VerifyHamiltonianPath checks that seq is a Hamiltonian path.
func VerifyHamiltonianPath(sp Spec, seq []Node) error { return ham.VerifyPath(sp, seq) }
