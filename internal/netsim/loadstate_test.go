package netsim

import (
	"math/rand"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/taskgraph"
)

// congestionRef is the pre-dense congestion measurement: per-link loads
// in a map keyed by endpoint pair, routes materialized via routeInto.
// Kept as the reference implementation the dense path is tested and
// benchmarked against.
func congestionRef(nw *Network, tg *taskgraph.Graph, p Placement) CongestionStats {
	load := map[linkKey]int{}
	cur := make(grid.Node, nw.shape.Dim())
	target := make(grid.Node, nw.shape.Dim())
	stats := CongestionStats{}
	var buf []int
	count := func(src, dst int) {
		buf = nw.routeInto(buf[:0], src, dst, cur, target)
		stats.TotalHops += len(buf) - 1
		for i := 0; i+1 < len(buf); i++ {
			load[linkKey{buf[i], buf[i+1]}]++
		}
	}
	for _, e := range tg.Edges {
		count(p[e[0]], p[e[1]])
		count(p[e[1]], p[e[0]])
	}
	for _, v := range load {
		stats.UsedLinks++
		if v > stats.MaxLink {
			stats.MaxLink = v
		}
	}
	return stats
}

var parityCases = []struct {
	host  grid.Spec
	guest grid.Spec
}{
	{grid.TorusSpec(4, 4), grid.MustSpec(grid.Torus, grid.Shape{16})},
	{grid.MeshSpec(3, 5), grid.TorusSpec(5, 3)},
	{grid.TorusSpec(2, 3, 4), grid.MeshSpec(4, 6)},
	{grid.MeshSpec(2, 2, 2, 3), grid.TorusSpec(6, 4)},
	{grid.RingSpec(9), grid.MeshSpec(3, 3)},
}

// TestCongestionMatchesReference pins the dense link-rank accumulator to
// the map-based reference on scrambled placements across kinds and
// dimensions — including wrap routes, where the rank bookkeeping is
// easiest to get wrong.
func TestCongestionMatchesReference(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 4; trial++ {
			p := Placement(rng.Perm(nw.Size())[:tg.N])
			got, err := Congestion(nw, tg, p)
			if err != nil {
				t.Fatal(err)
			}
			if want := congestionRef(nw, tg, p); got != want {
				t.Fatalf("%s on %s trial %d: dense %+v, reference %+v",
					tc.guest, tc.host, trial, got, want)
			}
		}
	}
}

// TestLoadStateMatchesBatch checks a freshly built LoadState against the
// batch measurements it must reproduce bit-for-bit.
func TestLoadStateMatchesBatch(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rd := tc.host.NewRankDistancer()
		rng := rand.New(rand.NewSource(11))
		p := Placement(rng.Perm(nw.Size())[:tg.N])
		ls, err := NewLoadState(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		assertParity(t, ls, nw, tg, tc.guest, rd)
	}
}

// TestLoadStateIncrementalParity drives a LoadState through random
// swaps and multi-node permutations and checks after every move that
// all incrementally maintained aggregates equal a from-scratch
// measurement — the property the annealing pass's correctness rests on.
func TestLoadStateIncrementalParity(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rd := tc.host.NewRankDistancer()
		rng := rand.New(rand.NewSource(23))
		p := Placement(rng.Perm(nw.Size())[:tg.N])
		ls, err := NewLoadState(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		moves := 60
		if testing.Short() {
			moves = 15
		}
		for m := 0; m < moves; m++ {
			if rng.Intn(3) > 0 {
				u := rng.Intn(tg.N)
				v := rng.Intn(tg.N - 1)
				if v >= u {
					v++
				}
				ls.Swap(u, v)
				if ls.GuestAt(ls.Table()[u]) != u || ls.GuestAt(ls.Table()[v]) != v {
					t.Fatalf("%s on %s: inverse map broken after swap", tc.guest, tc.host)
				}
			} else {
				// Rotate a random handful of guests through each other's
				// hosts — the shape of the reversal/block moves.
				k := 2 + rng.Intn(4)
				guests := make([]int32, 0, k)
				seen := map[int32]bool{}
				for len(guests) < k {
					g := int32(rng.Intn(tg.N))
					if !seen[g] {
						seen[g] = true
						guests = append(guests, g)
					}
				}
				hosts := make([]int32, k)
				for i, g := range guests {
					hosts[i] = int32(ls.Table()[guests[(i+1)%k]])
					_ = g
				}
				ls.Permute(guests, hosts)
			}
			assertParity(t, ls, nw, tg, tc.guest, rd)
			if t.Failed() {
				t.Fatalf("%s on %s: diverged at move %d", tc.guest, tc.host, m)
			}
		}
		if err := ls.Recheck(); err != nil {
			t.Fatal(err)
		}
	}
}

func assertParity(t *testing.T, ls *LoadState, nw *Network, tg *taskgraph.Graph, guest grid.Spec, rd *grid.RankDistancer) {
	t.Helper()
	tab := ls.Table()
	want, err := Congestion(nw, tg, Placement(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Stats(); got != want {
		t.Errorf("stats: incremental %+v, full %+v", got, want)
	}
	ha := make([]int, grid.DefaultEdgeBlock)
	hb := make([]int, grid.DefaultEdgeBlock)
	wantMax, wantAvg := guest.EdgeDilation(tab, rd, ha, hb)
	gotMax, gotAvg := ls.Dilation()
	if gotMax != wantMax || gotAvg != wantAvg {
		t.Errorf("dilation: incremental (%d, %v), full (%d, %v)", gotMax, gotAvg, wantMax, wantAvg)
	}
}

func TestLoadStateRejectsBadInput(t *testing.T) {
	nw := New(grid.LineSpec(4))
	tg := taskgraph.Pipeline(3)
	if _, err := NewLoadState(nw, tg, Placement{0, 1}); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := NewLoadState(nw, &taskgraph.Graph{Name: "bad", N: 2, Edges: [][2]int{{0, 9}}}, Placement{0, 1}); err == nil {
		t.Error("bad task graph accepted")
	}
	ls, err := NewLoadState(nw, tg, Placement{2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ls.GuestAt(1) != -1 {
		t.Errorf("empty host slot reports guest %d, want -1", ls.GuestAt(1))
	}
}

// BenchmarkCongestion compares the dense link-rank accumulator against
// the retired map-based measurement on a mid-size pair.
func BenchmarkCongestion(b *testing.B) {
	nw := New(grid.TorusSpec(16, 16))
	tg := taskgraph.FromSpec(grid.MeshSpec(16, 16))
	rng := rand.New(rand.NewSource(3))
	p := Placement(rng.Perm(nw.Size()))
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Congestion(nw, tg, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			congestionRef(nw, tg, p)
		}
	})
}
