package netsim

import (
	"math/rand"
	"strings"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/taskgraph"
)

// congestionRef is the pre-dense congestion measurement: per-link loads
// in a map keyed by endpoint pair, routes materialized via routeInto.
// Kept as the reference implementation the dense path is tested and
// benchmarked against.
func congestionRef(nw *Network, tg *taskgraph.Graph, p Placement) CongestionStats {
	load := map[linkKey]int{}
	cur := make(grid.Node, nw.shape.Dim())
	target := make(grid.Node, nw.shape.Dim())
	stats := CongestionStats{}
	var buf []int
	count := func(src, dst int) {
		buf = nw.routeInto(buf[:0], src, dst, cur, target)
		stats.TotalHops += len(buf) - 1
		for i := 0; i+1 < len(buf); i++ {
			load[linkKey{buf[i], buf[i+1]}]++
		}
	}
	for _, e := range tg.Edges {
		count(p[e[0]], p[e[1]])
		count(p[e[1]], p[e[0]])
	}
	for _, v := range load {
		stats.UsedLinks++
		if v > stats.MaxLink {
			stats.MaxLink = v
		}
	}
	return stats
}

var parityCases = []struct {
	host  grid.Spec
	guest grid.Spec
}{
	{grid.TorusSpec(4, 4), grid.MustSpec(grid.Torus, grid.Shape{16})},
	{grid.MeshSpec(3, 5), grid.TorusSpec(5, 3)},
	{grid.TorusSpec(2, 3, 4), grid.MeshSpec(4, 6)},
	{grid.MeshSpec(2, 2, 2, 3), grid.TorusSpec(6, 4)},
	{grid.RingSpec(9), grid.MeshSpec(3, 3)},
}

// TestCongestionMatchesReference pins the dense link-rank accumulator to
// the map-based reference on scrambled placements across kinds and
// dimensions — including wrap routes, where the rank bookkeeping is
// easiest to get wrong.
func TestCongestionMatchesReference(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 4; trial++ {
			p := Placement(rng.Perm(nw.Size())[:tg.N])
			got, err := Congestion(nw, tg, p)
			if err != nil {
				t.Fatal(err)
			}
			if want := congestionRef(nw, tg, p); got != want {
				t.Fatalf("%s on %s trial %d: dense %+v, reference %+v",
					tc.guest, tc.host, trial, got, want)
			}
		}
	}
}

// TestLoadStateMatchesBatch checks a freshly built LoadState against the
// batch measurements it must reproduce bit-for-bit.
func TestLoadStateMatchesBatch(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rd := tc.host.NewRankDistancer()
		rng := rand.New(rand.NewSource(11))
		p := Placement(rng.Perm(nw.Size())[:tg.N])
		ls, err := NewLoadState(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		assertParity(t, ls, nw, tg, tc.guest, rd)
	}
}

// TestLoadStateIncrementalParity drives a LoadState through random
// swaps and multi-node permutations and checks after every move that
// all incrementally maintained aggregates equal a from-scratch
// measurement — the property the annealing pass's correctness rests on.
func TestLoadStateIncrementalParity(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rd := tc.host.NewRankDistancer()
		rng := rand.New(rand.NewSource(23))
		p := Placement(rng.Perm(nw.Size())[:tg.N])
		ls, err := NewLoadState(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		moves := 60
		if testing.Short() {
			moves = 15
		}
		for m := 0; m < moves; m++ {
			if rng.Intn(3) > 0 {
				u := rng.Intn(tg.N)
				v := rng.Intn(tg.N - 1)
				if v >= u {
					v++
				}
				ls.Swap(u, v)
				if ls.GuestAt(ls.HostOf(u)) != u || ls.GuestAt(ls.HostOf(v)) != v {
					t.Fatalf("%s on %s: inverse map broken after swap", tc.guest, tc.host)
				}
			} else {
				// Rotate a random handful of guests through each other's
				// hosts — the shape of the reversal/block moves.
				k := 2 + rng.Intn(4)
				guests := make([]int32, 0, k)
				seen := map[int32]bool{}
				for len(guests) < k {
					g := int32(rng.Intn(tg.N))
					if !seen[g] {
						seen[g] = true
						guests = append(guests, g)
					}
				}
				hosts := make([]int32, k)
				for i, g := range guests {
					hosts[i] = int32(ls.HostOf(int(guests[(i+1)%k])))
					_ = g
				}
				ls.Permute(guests, hosts)
			}
			assertParity(t, ls, nw, tg, tc.guest, rd)
			if t.Failed() {
				t.Fatalf("%s on %s: diverged at move %d", tc.guest, tc.host, m)
			}
		}
		if err := ls.Recheck(); err != nil {
			t.Fatal(err)
		}
	}
}

func assertParity(t *testing.T, ls *LoadState, nw *Network, tg *taskgraph.Graph, guest grid.Spec, rd *grid.RankDistancer) {
	t.Helper()
	tab := make([]int, tg.N)
	ls.CopyTableInto(tab)
	want, err := Congestion(nw, tg, Placement(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Stats(); got != want {
		t.Errorf("stats: incremental %+v, full %+v", got, want)
	}
	ha := make([]int, grid.DefaultEdgeBlock)
	hb := make([]int, grid.DefaultEdgeBlock)
	wantMax, wantAvg := guest.EdgeDilation(tab, rd, ha, hb)
	gotMax, gotAvg := ls.Dilation()
	if gotMax != wantMax || gotAvg != wantAvg {
		t.Errorf("dilation: incremental (%d, %v), full (%d, %v)", gotMax, gotAvg, wantMax, wantAvg)
	}
}

func TestLoadStateRejectsBadInput(t *testing.T) {
	nw := New(grid.LineSpec(4))
	tg := taskgraph.Pipeline(3)
	if _, err := NewLoadState(nw, tg, Placement{0, 1}); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := NewLoadState(nw, &taskgraph.Graph{Name: "bad", N: 2, Edges: [][2]int{{0, 9}}}, Placement{0, 1}); err == nil {
		t.Error("bad task graph accepted")
	}
	ls, err := NewLoadState(nw, tg, Placement{2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ls.GuestAt(1) != -1 {
		t.Errorf("empty host slot reports guest %d, want -1", ls.GuestAt(1))
	}
}

// TestLoadStateHistogramGrowth drives both bucket arrays — per-load
// link counts and per-distance edge counts — past their initial 8
// buckets: ten edges folded across a 20-node line all cross the middle
// link (load 10), and the outermost edge routes 19 hops. The aggregates
// must stay exact through the growth, both at construction and through
// a later move.
func TestLoadStateHistogramGrowth(t *testing.T) {
	nw := New(grid.LineSpec(20))
	tg := &taskgraph.Graph{Name: "folded", N: 20}
	for i := 0; i < 10; i++ {
		tg.Edges = append(tg.Edges, [2]int{i, 19 - i})
	}
	ls, err := NewLoadState(nw, tg, IdentityPlacement(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.loadHist) <= 8 || len(ls.distHist) <= 8 {
		t.Fatalf("histograms did not grow: loadHist %d buckets, distHist %d buckets",
			len(ls.loadHist), len(ls.distHist))
	}
	if got := ls.Stats(); got.MaxLink != 10 {
		t.Fatalf("MaxLink = %d, want 10 (all edges cross the middle link)", got.MaxLink)
	}
	if max, _ := ls.Dilation(); max != 19 {
		t.Fatalf("max distance = %d, want 19", max)
	}
	if err := ls.Recheck(); err != nil {
		t.Fatal(err)
	}
	// Unfold one long edge and re-fold it: growth bookkeeping must
	// survive decrements back below the original array sizes.
	ls.Swap(0, 19)
	ls.Swap(0, 19)
	if err := ls.Recheck(); err != nil {
		t.Fatal(err)
	}
	if max, _ := ls.Dilation(); max != 19 {
		t.Fatalf("max distance after swaps = %d, want 19", max)
	}
}

// TestLoadStateCompactGuard pins the 32-bit overflow guard: forcing the
// compact table on a host at or past 2^31 nodes must fail with a clear
// error before any host-sized allocation, while ordinary hosts default
// to compact and can be forced wide.
func TestLoadStateCompactGuard(t *testing.T) {
	huge := New(grid.MeshSpec(1<<16, 1<<16)) // 2^32 nodes
	tg := taskgraph.Pipeline(3)
	_, err := NewLoadStateMode(huge, tg, Placement{0, 1, 2}, ModeCompact)
	if err == nil {
		t.Fatal("ModeCompact accepted a 2^32-node host")
	}
	if want := "2^31"; !strings.Contains(err.Error(), want) {
		t.Fatalf("guard error %q does not mention %q", err, want)
	}

	small := New(grid.LineSpec(8))
	auto, err := NewLoadState(small, tg, Placement{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Compact() {
		t.Error("ModeAuto picked the wide table on an 8-node host")
	}
	wide, err := NewLoadStateMode(small, tg, Placement{0, 1, 2}, ModeWide)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Compact() {
		t.Error("ModeWide produced a compact table")
	}
	if wb, cb := wide.TableBytes(), auto.TableBytes(); cb*2 != wb {
		t.Errorf("table bytes: compact %d, wide %d, want exactly half", cb, wb)
	}
}

// TestLoadStateCompactWideParity drives a compact and a wide LoadState
// through the same randomized move sequence and requires bit-identical
// aggregates and tables after every move — the property that makes the
// table width invisible to the annealing pass.
func TestLoadStateCompactWideParity(t *testing.T) {
	nw := New(grid.TorusSpec(4, 4))
	tg := taskgraph.FromSpec(grid.MeshSpec(4, 4))
	rng := rand.New(rand.NewSource(41))
	p := Placement(rng.Perm(nw.Size()))
	compact, err := NewLoadStateMode(nw, tg, p, ModeCompact)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewLoadStateMode(nw, tg, p, ModeWide)
	if err != nil {
		t.Fatal(err)
	}
	if !compact.Compact() || wide.Compact() {
		t.Fatal("modes not honored")
	}
	tabC := make([]int, tg.N)
	tabW := make([]int, tg.N)
	check := func(m int) {
		t.Helper()
		if cs, ws := compact.Stats(), wide.Stats(); cs != ws {
			t.Fatalf("move %d: stats diverged: compact %+v, wide %+v", m, cs, ws)
		}
		cm, ca := compact.Dilation()
		wm, wa := wide.Dilation()
		if cm != wm || ca != wa {
			t.Fatalf("move %d: dilation diverged: compact (%d, %v), wide (%d, %v)", m, cm, ca, wm, wa)
		}
		compact.CopyTableInto(tabC)
		wide.CopyTableInto(tabW)
		for g := range tabC {
			if tabC[g] != tabW[g] {
				t.Fatalf("move %d: table diverged at guest %d: compact %d, wide %d", m, g, tabC[g], tabW[g])
			}
		}
	}
	check(-1)
	for m := 0; m < 50; m++ {
		if rng.Intn(2) == 0 {
			u := rng.Intn(tg.N)
			v := rng.Intn(tg.N - 1)
			if v >= u {
				v++
			}
			compact.Swap(u, v)
			wide.Swap(u, v)
		} else {
			k := 2 + rng.Intn(4)
			perm := rng.Perm(tg.N)[:k]
			guests := make([]int32, k)
			hosts := make([]int32, k)
			for i, g := range perm {
				guests[i] = int32(g)
			}
			for i := range guests {
				hosts[i] = int32(compact.HostOf(int(guests[(i+1)%k])))
			}
			compact.Permute(guests, hosts)
			wide.Permute(guests, hosts)
		}
		check(m)
	}
	if err := compact.Recheck(); err != nil {
		t.Fatal(err)
	}
	if err := wide.Recheck(); err != nil {
		t.Fatal(err)
	}
}

// TestLoadStateStripedInitParity builds a LoadState large enough to take
// the striped construction path (>= loadStripeMinEdges) and pins it to
// the full batch measurements — the bit-for-bit identity of the
// parallel merge.
func TestLoadStateStripedInitParity(t *testing.T) {
	host := grid.MeshSpec(16, 16, 16)
	guest := grid.TorusSpec(16, 16, 16)
	nw := New(host)
	tg := taskgraph.FromSpec(guest)
	if len(tg.Edges) < loadStripeMinEdges {
		t.Fatalf("test pair has %d edges, below the striping threshold %d", len(tg.Edges), loadStripeMinEdges)
	}
	rd := host.NewRankDistancer()
	rng := rand.New(rand.NewSource(31))
	p := Placement(rng.Perm(nw.Size()))
	ls, err := NewLoadState(nw, tg, p)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, ls, nw, tg, guest, rd)
}

// TestCongestionHops pins the route-length histogram against per-edge
// distances measured directly, and its stats against Congestion.
func TestCongestionHops(t *testing.T) {
	for _, tc := range parityCases {
		nw := New(tc.host)
		tg := taskgraph.FromSpec(tc.guest)
		rng := rand.New(rand.NewSource(17))
		p := Placement(rng.Perm(nw.Size())[:tg.N])
		stats, hist, err := CongestionHops(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Congestion(nw, tg, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats != plain {
			t.Fatalf("%s on %s: stats with histogram %+v, without %+v", tc.guest, tc.host, stats, plain)
		}
		want := map[int]int{}
		cur := make(grid.Node, nw.shape.Dim())
		target := make(grid.Node, nw.shape.Dim())
		for _, e := range tg.Edges {
			want[nw.walkLinks(p[e[0]], p[e[1]], cur, target, func(int) {})]++
		}
		if len(hist) != len(want) {
			t.Fatalf("%s on %s: histogram %v, want %v", tc.guest, tc.host, hist, want)
		}
		for d, n := range want {
			if hist[d] != n {
				t.Fatalf("%s on %s: hist[%d] = %d, want %d", tc.guest, tc.host, d, hist[d], n)
			}
		}
	}
}

// BenchmarkCongestion compares the dense link-rank accumulator against
// the retired map-based measurement on a mid-size pair.
func BenchmarkCongestion(b *testing.B) {
	nw := New(grid.TorusSpec(16, 16))
	tg := taskgraph.FromSpec(grid.MeshSpec(16, 16))
	rng := rand.New(rand.NewSource(3))
	p := Placement(rng.Perm(nw.Size()))
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Congestion(nw, tg, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			congestionRef(nw, tg, p)
		}
	})
}
