// LoadState is the incremental form of the static congestion and
// dilation measurement: the guest's edges are routed once into a dense
// per-directed-link load array, and from then on a node move re-routes
// only the O(degree) edges incident to the moved nodes instead of the
// whole graph. It exists for the placement engine's annealing pass,
// where the same placement is perturbed hundreds of thousands of times
// and full re-measurement per move (O(|E|·distance)) is the scaling
// wall.
//
// All aggregates are maintained exactly, in integers, so a LoadState
// driven through any move sequence reports bit-identical stats to a
// fresh Congestion + EdgeDilation measurement of the same table (the
// delta-vs-full parity tests pin this):
//
//   - per-link loads live in a flat []int32 indexed by link rank
//     (grid.LinkRanker), with MaxLink maintained through a bucket count
//     per load value — a max that decreases in O(1) amortized instead
//     of a rescan;
//   - TotalHops and UsedLinks update as routes are added/removed;
//   - per-edge routed distances feed the same bucket scheme for the
//     max-dilation counter, plus a running sum for average dilation.
//
// Construction is the remaining O(|E|·distance) cost, so the initial
// routing stripes edge blocks across the internal/par pool: each worker
// walks its edges into a pooled per-worker load slab plus a local
// distance histogram (the pattern the dense Congestion accumulator
// uses), the slabs merge by link rank, and the load-value bucket
// counters are derived from the merged array — integer sums commute, so
// the built state is bit-identical to a serial walk at any worker
// count.
//
// The placement table itself comes in two widths. Hosts whose node
// ranks fit int32 — every host below 2³¹ nodes — default to a compact
// []int32 table, halving the table bytes of the 10⁵-node-scale
// placements the annealing pass runs at; ModeWide keeps the historical
// []int form, and the two modes are move-for-move bit-identical (the
// compact-vs-wide parity test pins this).
//
// After construction a LoadState is single-goroutine state: moves are
// sequential by design (the annealing pass is deterministic), so
// nothing is locked.
package netsim

import (
	"fmt"
	"math"
	"sync"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// Mode selects the placement-table representation of a LoadState.
type Mode int

const (
	// ModeAuto picks the compact table whenever the host's ranks fit
	// int32, the wide one otherwise — the default.
	ModeAuto Mode = iota
	// ModeWide forces the historical []int table.
	ModeWide
	// ModeCompact forces the []int32 table; construction fails on hosts
	// at or past 2³¹ nodes, whose ranks the representation cannot hold.
	ModeCompact
)

// compactLimit is the largest host rank the compact table addresses.
const compactLimit = math.MaxInt32

// loadStripeMinEdges is the edge count below which the initial routing
// stays serial: striping pays for pooled slabs and a merge, which a
// small graph never amortizes. Either path builds bit-identical state.
const loadStripeMinEdges = 4096

// LoadState holds the incrementally maintained routing state of one
// placement. Build one with NewLoadState; mutate it with Swap and
// Permute; read costs with Stats and Dilation.
type LoadState struct {
	nw  *Network
	tg  *taskgraph.Graph
	p   []int     // wide guest rank -> host rank table (nil in compact mode)
	p32 []int32   // compact table (nil in wide mode)
	inv []int32   // host rank -> guest rank, -1 when unoccupied
	inc [][]int32 // per-guest incident edge indices (taskgraph.Incidence)

	load     []int32 // per directed link, indexed by link rank
	loadHist []int32 // loadHist[v] = links currently at load v (v >= 1)
	maxLink  int
	used     int
	hops     int

	distHist []int32 // distHist[d] = edges currently routed at distance d (d >= 1)
	maxDist  int
	distSum  int64

	cur, target grid.Node // walk scratch
	stamp       []int32   // per-edge epoch marks of the current move
	epoch       int32
	touched     []int32 // edge indices the current move re-routes
}

// NewLoadState validates the placement and routes every task edge once
// (striped across the internal/par pool on large graphs), building the
// dense load array and the bucket counters. The table representation is
// ModeAuto's pick. The placement is copied; the caller's slice is not
// retained.
func NewLoadState(nw *Network, tg *taskgraph.Graph, p Placement) (*LoadState, error) {
	return NewLoadStateMode(nw, tg, p, ModeAuto)
}

// NewLoadStateMode is NewLoadState with an explicit table mode —
// benchmarks and parity tests force ModeWide/ModeCompact; everything
// else wants ModeAuto.
func NewLoadStateMode(nw *Network, tg *taskgraph.Graph, p Placement, mode Mode) (*LoadState, error) {
	if err := tg.Validate(); err != nil {
		return nil, err
	}
	// The mode guard runs before placement validation: validation
	// allocates host-sized scratch, which on the >2³¹-node hosts the
	// guard exists for is exactly the allocation to refuse.
	compact := nw.n <= compactLimit
	switch mode {
	case ModeWide:
		compact = false
	case ModeCompact:
		if !compact {
			return nil, fmt.Errorf("netsim: compact tables address host ranks below 2^31, but host %s has %d nodes; use ModeWide", nw.Spec, nw.n)
		}
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return nil, err
	}
	ls := &LoadState{
		nw:       nw,
		tg:       tg,
		inv:      make([]int32, nw.n),
		inc:      tg.Incidence(),
		load:     make([]int32, nw.LinkSlots()),
		loadHist: make([]int32, 8),
		distHist: make([]int32, 8),
		cur:      make(grid.Node, nw.shape.Dim()),
		target:   make(grid.Node, nw.shape.Dim()),
		stamp:    make([]int32, len(tg.Edges)),
	}
	if compact {
		ls.p32 = make([]int32, len(p))
		for g, h := range p {
			ls.p32[g] = int32(h)
		}
	} else {
		ls.p = append([]int(nil), p...)
	}
	for i := range ls.inv {
		ls.inv[i] = -1
	}
	for g := range p {
		ls.inv[p[g]] = int32(g)
	}
	ls.routeInitial()
	return ls, nil
}

// host and setHost are the width-erasing table accessors of the hot
// paths — one nil check against two routed walks per edge.
func (ls *LoadState) host(g int) int {
	if ls.p32 != nil {
		return int(ls.p32[g])
	}
	return ls.p[g]
}

func (ls *LoadState) setHost(g, h int) {
	if ls.p32 != nil {
		ls.p32[g] = int32(h)
		return
	}
	ls.p[g] = h
}

func (ls *LoadState) tasks() int {
	if ls.p32 != nil {
		return len(ls.p32)
	}
	return len(ls.p)
}

// Compact reports whether the placement table is in the compact int32
// representation.
func (ls *LoadState) Compact() bool { return ls.p32 != nil }

// TableBytes returns the bytes backing the placement table — the
// memory the compact mode halves.
func (ls *LoadState) TableBytes() int {
	if ls.p32 != nil {
		return 4 * len(ls.p32)
	}
	return 8 * len(ls.p)
}

// HostOf returns the host rank guest g is currently placed on.
func (ls *LoadState) HostOf(g int) int { return ls.host(g) }

// CopyTableInto writes the current placement table into dst, which must
// have length tg.N — the snapshot form consumers take when they need
// the whole table (re-validation, best-visited bookkeeping) rather than
// single lookups.
func (ls *LoadState) CopyTableInto(dst []int) {
	if ls.p32 != nil {
		for g, h := range ls.p32 {
			dst[g] = int(h)
		}
		return
	}
	copy(dst, ls.p)
}

// GuestAt returns the guest placed on host rank h, or -1 when the slot
// is unoccupied (placements smaller than the host leave holes).
func (ls *LoadState) GuestAt(h int) int { return int(ls.inv[h]) }

// Stats returns the congestion aggregates of the current placement —
// bit-identical to Congestion on the same table.
func (ls *LoadState) Stats() CongestionStats {
	return CongestionStats{MaxLink: ls.maxLink, TotalHops: ls.hops, UsedLinks: ls.used}
}

// Dilation returns the maximum and mean routed edge distance of the
// current placement — bit-identical to grid.Spec.EdgeDilation of the
// guest over the same table (dimension-ordered routing is minimal, so
// routed length equals graph distance).
func (ls *LoadState) Dilation() (max int, avg float64) {
	if len(ls.tg.Edges) > 0 {
		avg = float64(ls.distSum) / float64(len(ls.tg.Edges))
	}
	return ls.maxDist, avg
}

// Swap exchanges the host images of guests u and v — the annealing
// pass's basic move — re-routing only their incident edges.
func (ls *LoadState) Swap(u, v int) {
	ls.beginMove()
	ls.touch(u)
	ls.touch(v)
	ls.removeTouched()
	hu, hv := ls.host(u), ls.host(v)
	ls.setHost(u, hv)
	ls.setHost(v, hu)
	ls.inv[hv] = int32(u)
	ls.inv[hu] = int32(v)
	ls.addTouched()
}

// Permute moves each guests[i] to hosts[i], where hosts must be a
// permutation of the guests' current images (so injectivity is
// preserved by construction) — the generic move behind segment
// reversals and axis-block swaps. Only the edges incident to the moved
// guests are re-routed. Undo by calling Permute again with the previous
// images.
func (ls *LoadState) Permute(guests []int32, hosts []int32) {
	ls.beginMove()
	for _, g := range guests {
		ls.touch(int(g))
	}
	ls.removeTouched()
	for _, g := range guests {
		ls.inv[ls.host(int(g))] = -1
	}
	for i, g := range guests {
		ls.setHost(int(g), int(hosts[i]))
		ls.inv[hosts[i]] = g
	}
	ls.addTouched()
}

// Recheck re-measures the placement from scratch and reports whether
// the incremental aggregates drifted — the safety net behind the
// annealing pass's periodic re-validation.
func (ls *LoadState) Recheck() error {
	tab := ls.p
	if ls.p32 != nil {
		tab = make([]int, len(ls.p32))
		ls.CopyTableInto(tab)
	}
	want, err := Congestion(ls.nw, ls.tg, Placement(tab))
	if err != nil {
		return err
	}
	if got := ls.Stats(); got != want {
		return fmt.Errorf("netsim: incremental congestion drifted: have %+v, full measurement %+v", got, want)
	}
	return nil
}

// initScratch is the pooled per-worker state of the striped initial
// routing: a slots-sized load slab, a local distance histogram, and the
// coordinate scratch of the walks.
type initScratch struct {
	load        []int32
	distHist    []int32
	cur, target grid.Node
}

// routeInitial routes every task edge of the starting placement. Large
// graphs stripe edge blocks across the par pool: per-worker slabs merge
// by link rank and local distance histograms merge by bucket (integer
// sums, so the merge commutes), and the load-value bucket counters are
// then derived from the merged load array — the exact state the serial
// per-edge walk builds.
func (ls *LoadState) routeInitial() {
	edges := len(ls.tg.Edges)
	if edges < loadStripeMinEdges || par.Workers() == 1 {
		for e := 0; e < edges; e++ {
			ls.routeEdge(e, +1)
		}
		return
	}
	slots := len(ls.load)
	dim := ls.nw.shape.Dim()
	scratch := sync.Pool{New: func() any {
		return &initScratch{
			load:     make([]int32, slots),
			distHist: make([]int32, 8),
			cur:      make(grid.Node, dim),
			target:   make(grid.Node, dim),
		}
	}}
	var mu sync.Mutex
	par.Blocks(edges, par.Grain(edges, 256), func(lo, hi int) {
		sc := scratch.Get().(*initScratch)
		bumpLoad := func(rank int) { sc.load[rank]++ }
		localHops := 0
		var localSum int64
		for i := lo; i < hi; i++ {
			ed := ls.tg.Edges[i]
			a, b := ls.host(ed[0]), ls.host(ed[1])
			d := ls.nw.walkLinks(a, b, sc.cur, sc.target, bumpLoad)
			ls.nw.walkLinks(b, a, sc.cur, sc.target, bumpLoad)
			localHops += 2 * d
			localSum += int64(d)
			if d > 0 {
				sc.distHist = bump(sc.distHist, d)
			}
		}
		mu.Lock()
		ls.hops += localHops
		ls.distSum += localSum
		for k, v := range sc.load {
			if v != 0 {
				ls.load[k] += v
				sc.load[k] = 0
			}
		}
		for d, v := range sc.distHist {
			if v != 0 {
				for d >= len(ls.distHist) {
					ls.distHist = append(ls.distHist, make([]int32, len(ls.distHist))...)
				}
				ls.distHist[d] += v
				sc.distHist[d] = 0
			}
		}
		mu.Unlock()
		scratch.Put(sc)
	})
	// Derive the load-value bucket counters — loadHist[v] counts links
	// at load v — from the merged loads; they depend only on the final
	// array, not on the merge order.
	for _, v := range ls.load {
		if v > 0 {
			ls.used++
			ls.loadHist = bump(ls.loadHist, int(v))
			if int(v) > ls.maxLink {
				ls.maxLink = int(v)
			}
		}
	}
	for d := len(ls.distHist) - 1; d > 0; d-- {
		if ls.distHist[d] != 0 {
			ls.maxDist = d
			break
		}
	}
}

// beginMove starts a new move epoch for the touched-edge dedup.
func (ls *LoadState) beginMove() {
	ls.epoch++
	ls.touched = ls.touched[:0]
	if ls.epoch == 0 { // int32 wrap: invalidate every stale stamp
		for i := range ls.stamp {
			ls.stamp[i] = -1
		}
		ls.epoch = 1
	}
}

// touch marks every edge incident to guest g for re-routing, once per
// move even when both endpoints moved.
func (ls *LoadState) touch(g int) {
	for _, e := range ls.inc[g] {
		if ls.stamp[e] != ls.epoch {
			ls.stamp[e] = ls.epoch
			ls.touched = append(ls.touched, e)
		}
	}
}

func (ls *LoadState) removeTouched() {
	for _, e := range ls.touched {
		ls.routeEdge(int(e), -1)
	}
}

func (ls *LoadState) addTouched() {
	for _, e := range ls.touched {
		ls.routeEdge(int(e), +1)
	}
}

// routeEdge adds (delta +1) or removes (delta -1) the two directed
// routes of task edge e under the current placement, maintaining the
// load array, the bucket counters, and the dilation aggregates.
// Removal re-walks the same deterministic route the addition walked:
// routes depend only on the endpoints, so the decrements mirror the
// increments exactly.
func (ls *LoadState) routeEdge(e int, delta int32) {
	ed := ls.tg.Edges[e]
	a, b := ls.host(ed[0]), ls.host(ed[1])
	d := ls.walk(a, b, delta)
	ls.walk(b, a, delta)
	ls.hops += int(delta) * 2 * d
	ls.distSum += int64(delta) * int64(d)
	if d > 0 {
		if delta > 0 {
			ls.distHist = bump(ls.distHist, d)
			if d > ls.maxDist {
				ls.maxDist = d
			}
		} else {
			ls.distHist[d]--
			if d == ls.maxDist && ls.distHist[d] == 0 {
				for ls.maxDist > 0 && ls.distHist[ls.maxDist] == 0 {
					ls.maxDist--
				}
			}
		}
	}
}

// walk applies delta to every link of the dimension-ordered route
// src -> dst, maintaining per-load bucket counts, UsedLinks and the
// cheap-decrease MaxLink, and returns the hop count.
func (ls *LoadState) walk(src, dst int, delta int32) int {
	return ls.nw.walkLinks(src, dst, ls.cur, ls.target, func(rank int) {
		old := ls.load[rank]
		nu := old + delta
		ls.load[rank] = nu
		if delta > 0 {
			if old == 0 {
				ls.used++
			} else {
				ls.loadHist[old]--
			}
			ls.loadHist = bump(ls.loadHist, int(nu))
			if int(nu) > ls.maxLink {
				ls.maxLink = int(nu)
			}
		} else {
			ls.loadHist[old]--
			if nu == 0 {
				ls.used--
			} else {
				ls.loadHist[nu]++
			}
			if int(old) == ls.maxLink && ls.loadHist[old] == 0 {
				for ls.maxLink > 0 && ls.loadHist[ls.maxLink] == 0 {
					ls.maxLink--
				}
			}
		}
	})
}

// bump increments hist[v], growing the bucket array as needed.
func bump(hist []int32, v int) []int32 {
	for v >= len(hist) {
		hist = append(hist, make([]int32, len(hist))...)
	}
	hist[v]++
	return hist
}
