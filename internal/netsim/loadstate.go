// LoadState is the incremental form of the static congestion and
// dilation measurement: the guest's edges are routed once into a dense
// per-directed-link load array, and from then on a node move re-routes
// only the O(degree) edges incident to the moved nodes instead of the
// whole graph. It exists for the placement engine's annealing pass,
// where the same placement is perturbed hundreds of thousands of times
// and full re-measurement per move (O(|E|·distance)) is the scaling
// wall.
//
// All aggregates are maintained exactly, in integers, so a LoadState
// driven through any move sequence reports bit-identical stats to a
// fresh Congestion + EdgeDilation measurement of the same table (the
// delta-vs-full parity tests pin this):
//
//   - per-link loads live in a flat []int32 indexed by link rank
//     (grid.LinkRanker), with MaxLink maintained through a bucket count
//     per load value — a max that decreases in O(1) amortized instead
//     of a rescan;
//   - TotalHops and UsedLinks update as routes are added/removed;
//   - per-edge routed distances feed the same bucket scheme for the
//     max-dilation counter, plus a running sum for average dilation.
//
// A LoadState is single-goroutine state: moves are sequential by
// design (the annealing pass is deterministic), so nothing is locked.
package netsim

import (
	"fmt"

	"torusmesh/internal/grid"
	"torusmesh/internal/taskgraph"
)

// LoadState holds the incrementally maintained routing state of one
// placement. Build one with NewLoadState; mutate it with Swap and
// Permute; read costs with Stats and Dilation.
type LoadState struct {
	nw  *Network
	tg  *taskgraph.Graph
	p   []int     // guest rank -> host rank (owned copy)
	inv []int32   // host rank -> guest rank, -1 when unoccupied
	inc [][]int32 // per-guest incident edge indices (taskgraph.Incidence)

	load     []int32 // per directed link, indexed by link rank
	loadHist []int32 // loadHist[v] = links currently at load v (v >= 1)
	maxLink  int
	used     int
	hops     int

	distHist []int32 // distHist[d] = edges currently routed at distance d (d >= 1)
	maxDist  int
	distSum  int64

	cur, target grid.Node // walk scratch
	stamp       []int32   // per-edge epoch marks of the current move
	epoch       int32
	touched     []int32 // edge indices the current move re-routes
}

// NewLoadState validates the placement and routes every task edge once,
// building the dense load array and the bucket counters. The placement
// is copied; the caller's slice is not retained.
func NewLoadState(nw *Network, tg *taskgraph.Graph, p Placement) (*LoadState, error) {
	if err := tg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return nil, err
	}
	ls := &LoadState{
		nw:       nw,
		tg:       tg,
		p:        append([]int(nil), p...),
		inv:      make([]int32, nw.n),
		inc:      tg.Incidence(),
		load:     make([]int32, nw.LinkSlots()),
		loadHist: make([]int32, 8),
		distHist: make([]int32, 8),
		cur:      make(grid.Node, nw.shape.Dim()),
		target:   make(grid.Node, nw.shape.Dim()),
		stamp:    make([]int32, len(tg.Edges)),
	}
	for i := range ls.inv {
		ls.inv[i] = -1
	}
	for g, h := range ls.p {
		ls.inv[h] = int32(g)
	}
	for e := range tg.Edges {
		ls.routeEdge(e, +1)
	}
	return ls, nil
}

// Table returns the live placement table. It is owned by the LoadState:
// callers must treat it as read-only and copy it if retained across
// moves.
func (ls *LoadState) Table() []int { return ls.p }

// GuestAt returns the guest placed on host rank h, or -1 when the slot
// is unoccupied (placements smaller than the host leave holes).
func (ls *LoadState) GuestAt(h int) int { return int(ls.inv[h]) }

// Stats returns the congestion aggregates of the current placement —
// bit-identical to Congestion on the same table.
func (ls *LoadState) Stats() CongestionStats {
	return CongestionStats{MaxLink: ls.maxLink, TotalHops: ls.hops, UsedLinks: ls.used}
}

// Dilation returns the maximum and mean routed edge distance of the
// current placement — bit-identical to grid.Spec.EdgeDilation of the
// guest over the same table (dimension-ordered routing is minimal, so
// routed length equals graph distance).
func (ls *LoadState) Dilation() (max int, avg float64) {
	if len(ls.tg.Edges) > 0 {
		avg = float64(ls.distSum) / float64(len(ls.tg.Edges))
	}
	return ls.maxDist, avg
}

// Swap exchanges the host images of guests u and v — the annealing
// pass's basic move — re-routing only their incident edges.
func (ls *LoadState) Swap(u, v int) {
	ls.beginMove()
	ls.touch(u)
	ls.touch(v)
	ls.removeTouched()
	ls.p[u], ls.p[v] = ls.p[v], ls.p[u]
	ls.inv[ls.p[u]] = int32(u)
	ls.inv[ls.p[v]] = int32(v)
	ls.addTouched()
}

// Permute moves each guests[i] to hosts[i], where hosts must be a
// permutation of the guests' current images (so injectivity is
// preserved by construction) — the generic move behind segment
// reversals and axis-block swaps. Only the edges incident to the moved
// guests are re-routed. Undo by calling Permute again with the previous
// images.
func (ls *LoadState) Permute(guests []int32, hosts []int32) {
	ls.beginMove()
	for _, g := range guests {
		ls.touch(int(g))
	}
	ls.removeTouched()
	for _, g := range guests {
		ls.inv[ls.p[g]] = -1
	}
	for i, g := range guests {
		ls.p[g] = int(hosts[i])
		ls.inv[hosts[i]] = g
	}
	ls.addTouched()
}

// Recheck re-measures the placement from scratch and reports whether
// the incremental aggregates drifted — the safety net behind the
// annealing pass's periodic re-validation.
func (ls *LoadState) Recheck() error {
	want, err := Congestion(ls.nw, ls.tg, Placement(ls.p))
	if err != nil {
		return err
	}
	if got := ls.Stats(); got != want {
		return fmt.Errorf("netsim: incremental congestion drifted: have %+v, full measurement %+v", got, want)
	}
	return nil
}

// beginMove starts a new move epoch for the touched-edge dedup.
func (ls *LoadState) beginMove() {
	ls.epoch++
	ls.touched = ls.touched[:0]
	if ls.epoch == 0 { // int32 wrap: invalidate every stale stamp
		for i := range ls.stamp {
			ls.stamp[i] = -1
		}
		ls.epoch = 1
	}
}

// touch marks every edge incident to guest g for re-routing, once per
// move even when both endpoints moved.
func (ls *LoadState) touch(g int) {
	for _, e := range ls.inc[g] {
		if ls.stamp[e] != ls.epoch {
			ls.stamp[e] = ls.epoch
			ls.touched = append(ls.touched, e)
		}
	}
}

func (ls *LoadState) removeTouched() {
	for _, e := range ls.touched {
		ls.routeEdge(int(e), -1)
	}
}

func (ls *LoadState) addTouched() {
	for _, e := range ls.touched {
		ls.routeEdge(int(e), +1)
	}
}

// routeEdge adds (delta +1) or removes (delta -1) the two directed
// routes of task edge e under the current placement, maintaining the
// load array, the bucket counters, and the dilation aggregates.
// Removal re-walks the same deterministic route the addition walked:
// routes depend only on the endpoints, so the decrements mirror the
// increments exactly.
func (ls *LoadState) routeEdge(e int, delta int32) {
	ed := ls.tg.Edges[e]
	a, b := ls.p[ed[0]], ls.p[ed[1]]
	d := ls.walk(a, b, delta)
	ls.walk(b, a, delta)
	ls.hops += int(delta) * 2 * d
	ls.distSum += int64(delta) * int64(d)
	if d > 0 {
		if delta > 0 {
			ls.distHist = bump(ls.distHist, d)
			if d > ls.maxDist {
				ls.maxDist = d
			}
		} else {
			ls.distHist[d]--
			if d == ls.maxDist && ls.distHist[d] == 0 {
				for ls.maxDist > 0 && ls.distHist[ls.maxDist] == 0 {
					ls.maxDist--
				}
			}
		}
	}
}

// walk applies delta to every link of the dimension-ordered route
// src -> dst, maintaining per-load bucket counts, UsedLinks and the
// cheap-decrease MaxLink, and returns the hop count.
func (ls *LoadState) walk(src, dst int, delta int32) int {
	return ls.nw.walkLinks(src, dst, ls.cur, ls.target, func(rank int) {
		old := ls.load[rank]
		nu := old + delta
		ls.load[rank] = nu
		if delta > 0 {
			if old == 0 {
				ls.used++
			} else {
				ls.loadHist[old]--
			}
			ls.loadHist = bump(ls.loadHist, int(nu))
			if int(nu) > ls.maxLink {
				ls.maxLink = int(nu)
			}
		} else {
			ls.loadHist[old]--
			if nu == 0 {
				ls.used--
			} else {
				ls.loadHist[nu]++
			}
			if int(old) == ls.maxLink && ls.loadHist[old] == 0 {
				for ls.maxLink > 0 && ls.loadHist[ls.maxLink] == 0 {
					ls.maxLink--
				}
			}
		}
	})
}

// bump increments hist[v], growing the bucket array as needed.
func bump(hist []int32, v int) []int32 {
	for v >= len(hist) {
		hist = append(hist, make([]int32, len(hist))...)
	}
	hist[v]++
	return hist
}
