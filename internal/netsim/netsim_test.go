package netsim

import (
	"testing"

	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/radix"
	"torusmesh/internal/taskgraph"
)

// TestRouteLengthEqualsDistance verifies that dimension-ordered routing
// is minimal: the routed path length equals the closed-form graph
// distance for both families.
func TestRouteLengthEqualsDistance(t *testing.T) {
	specs := []grid.Spec{
		grid.TorusSpec(4, 2, 3), grid.MeshSpec(4, 2, 3),
		grid.TorusSpec(5, 5), grid.MeshSpec(5, 5),
		grid.RingSpec(7), grid.LineSpec(7),
	}
	for _, sp := range specs {
		nw := New(sp)
		n := sp.Size()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				path := nw.Route(src, dst)
				want := sp.Distance(sp.Shape.NodeAt(src), sp.Shape.NodeAt(dst))
				if len(path)-1 != want {
					t.Fatalf("%s: route %d->%d has %d hops, distance %d", sp, src, dst, len(path)-1, want)
				}
				// Consecutive routers must be adjacent.
				for i := 1; i < len(path); i++ {
					a := sp.Shape.NodeAt(path[i-1])
					b := sp.Shape.NodeAt(path[i])
					if sp.Distance(a, b) != 1 {
						t.Fatalf("%s: route %d->%d hops between non-neighbors %s %s", sp, src, dst, a, b)
					}
				}
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("%s: route endpoints wrong", sp)
				}
			}
		}
	}
}

func TestSimulateSinglePacketLatency(t *testing.T) {
	// Two tasks on a line: a single edge at distance d takes exactly d
	// cycles under store-and-forward with no contention.
	nw := New(grid.LineSpec(8))
	tg := &taskgraph.Graph{Name: "pair", N: 2, Edges: [][2]int{{0, 1}}}
	p := Placement{0, 5}
	r, err := Simulate(nw, tg, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 5 || r.MaxHops != 5 || r.Packets != 2 {
		t.Errorf("result = %+v, want 5 cycles, 5 hops, 2 packets", r)
	}
}

func TestSimulateColocatedDeliversInstantly(t *testing.T) {
	nw := New(grid.LineSpec(4))
	tg := taskgraph.Pipeline(4)
	r, err := Simulate(nw, tg, IdentityPlacement(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxHops != 1 {
		t.Errorf("identity pipeline max hops = %d, want 1", r.MaxHops)
	}
	if r.Cycles != 1 {
		t.Errorf("identity pipeline cycles = %d, want 1 (all links disjoint)", r.Cycles)
	}
}

// TestDilationDrivesLatency is the paper's motivation in miniature: the
// same ring task graph on the same mesh machine finishes faster under
// the unit-dilation h_L placement than under the naive row-major one.
func TestDilationDrivesLatency(t *testing.T) {
	machine := grid.MeshSpec(4, 2, 3)
	nw := New(machine)
	tg := taskgraph.RingPipeline(24)

	// Naive: task i on router i.
	naive, err := Simulate(nw, tg, IdentityPlacement(24))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: unit-dilation ring embedding (Theorem 24 via ham circuit is
	// equivalent; build placement from the h_L table directly).
	placement := make(Placement, 24)
	for x := 0; x < 24; x++ {
		placement[x] = x
	}
	// Use the embedding machinery via the public-ish route: the ring
	// (guest) into the mesh with h: importing internal/core here would be
	// circular in spirit; instead use gray directly.
	for x := 0; x < 24; x++ {
		placement[x] = machineIndexOfH(machine, x)
	}
	ours, err := Simulate(nw, tg, placement)
	if err != nil {
		t.Fatal(err)
	}
	if ours.MaxHops != 1 {
		t.Errorf("h_L placement max hops = %d, want 1", ours.MaxHops)
	}
	if naive.MaxHops <= ours.MaxHops {
		t.Errorf("naive placement should have higher dilation: naive %d vs ours %d", naive.MaxHops, ours.MaxHops)
	}
	if naive.Cycles <= ours.Cycles {
		t.Errorf("naive placement should be slower: naive %d cycles vs ours %d", naive.Cycles, ours.Cycles)
	}
}

func TestCompare(t *testing.T) {
	machine := grid.MeshSpec(4, 2, 3)
	nw := New(machine)
	tg := taskgraph.RingPipeline(24)
	ours := make(Placement, 24)
	for x := 0; x < 24; x++ {
		ours[x] = machineIndexOfH(machine, x)
	}
	results, err := Compare(nw, tg, map[string]Placement{
		"row-major": IdentityPlacement(24),
		"gray-h":    ours,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Label != "gray-h" {
		t.Errorf("Compare order wrong: %+v", results)
	}
}

func TestPlacementValidate(t *testing.T) {
	nw := New(grid.LineSpec(4))
	if err := (Placement{0, 1, 2}).Validate(nw, 4); err == nil {
		t.Error("short placement accepted")
	}
	if err := (Placement{0, 1, 2, 7}).Validate(nw, 4); err == nil {
		t.Error("out-of-range placement accepted")
	}
	if err := (Placement{0, 1, 2, 2}).Validate(nw, 4); err == nil {
		t.Error("colliding placement accepted")
	}
	if err := IdentityPlacement(4).Validate(nw, 4); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
}

func TestTaskGraphGenerators(t *testing.T) {
	graphs := []*taskgraph.Graph{
		taskgraph.Pipeline(8), taskgraph.RingPipeline(8),
		taskgraph.Stencil2D(3, 4), taskgraph.Stencil3D(2, 3, 2),
		taskgraph.HaloExchange2D(3, 3), taskgraph.Hypercube(3),
	}
	wantEdges := []int{7, 8, 17, 20, 18, 12}
	for i, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if len(g.Edges) != wantEdges[i] {
			t.Errorf("%s: %d edges, want %d", g.Name, len(g.Edges), wantEdges[i])
		}
	}
	if taskgraph.Stencil2D(3, 3).MaxDegree() != 4 {
		t.Error("stencil2d max degree wrong")
	}
	if taskgraph.Hypercube(3).MaxDegree() != 3 {
		t.Error("hypercube max degree wrong")
	}
}

// machineIndexOfH gives the row-major index of h_L(x) in the machine's
// shape (the unit-spread cyclic sequence of Definition 22).
func machineIndexOfH(machine grid.Spec, x int) int {
	node := gray.H(radix.Base(machine.Shape), x)
	return machine.Shape.Index(node)
}
