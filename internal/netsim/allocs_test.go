package netsim

import (
	"math/rand"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/taskgraph"
)

// The allocs/op gates of the annealing hot paths. These are regression
// tripwires, not benchmarks: a change that makes the steady-state move
// loop allocate, or lets a whole-placement measurement allocate per
// edge instead of per call, fails deterministically in CI.

// TestSwapSteadyStateAllocs: after warmup (touched-list growth,
// histogram bucket growth), a swap plus the aggregate reads of an
// acceptance decision must not allocate at all — the property that
// keeps anneal steps at ~10⁵/sec.
func TestSwapSteadyStateAllocs(t *testing.T) {
	nw := New(grid.TorusSpec(16, 16))
	tg := taskgraph.FromSpec(grid.MeshSpec(16, 16))
	rng := rand.New(rand.NewSource(19))
	ls, err := NewLoadState(nw, tg, Placement(rng.Perm(nw.Size())))
	if err != nil {
		t.Fatal(err)
	}
	n := tg.N
	pairs := make([][2]int, 64)
	for i := range pairs {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		pairs[i] = [2]int{u, v}
	}
	for _, p := range pairs { // warmup: grow scratch and histograms
		ls.Swap(p[0], p[1])
	}
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		p := pairs[k%len(pairs)]
		k++
		ls.Swap(p[0], p[1])
		_ = ls.Stats()
		ls.Dilation()
	})
	if allocs != 0 {
		t.Errorf("steady-state swap allocates %.1f objects/op, want 0", allocs)
	}
}

// TestCongestionAllocsBounded: the dense congestion pass allocates a
// small per-call constant (the merged slab, the pooled worker slabs and
// coordinate scratch) — never per edge. The bound is loose on purpose;
// the regression it catches is O(|E|) allocation creep.
func TestCongestionAllocsBounded(t *testing.T) {
	nw := New(grid.TorusSpec(16, 16))
	tg := taskgraph.FromSpec(grid.MeshSpec(16, 16)) // 512 edges
	rng := rand.New(rand.NewSource(29))
	p := Placement(rng.Perm(nw.Size()))
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Congestion(nw, tg, p); err != nil {
			t.Fatal(err)
		}
	})
	if limit := 64.0; allocs > limit {
		t.Errorf("Congestion allocates %.1f objects/op, want <= %.0f (edges: %d)", allocs, limit, len(tg.Edges))
	}
}

// TestLoadStateInitAllocsBounded: construction allocates the state
// itself plus pooled striping scratch — again never per edge. The pair
// is large enough to take the striped path.
func TestLoadStateInitAllocsBounded(t *testing.T) {
	nw := New(grid.MeshSpec(16, 16, 16))
	tg := taskgraph.FromSpec(grid.TorusSpec(16, 16, 16)) // 12288 edges
	rng := rand.New(rand.NewSource(37))
	p := Placement(rng.Perm(nw.Size()))
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := NewLoadState(nw, tg, p); err != nil {
			t.Fatal(err)
		}
	})
	if limit := 256.0; allocs > limit {
		t.Errorf("NewLoadState allocates %.1f objects/op, want <= %.0f (edges: %d)", allocs, limit, len(tg.Edges))
	}
}
