// Package netsim is a synchronous interconnection-network simulator used
// to demonstrate the practical content of the paper's dilation metric:
// when a task graph is placed on a torus or mesh machine, the latency of
// a communication phase grows with the maximum hop count of any task
// edge — exactly the dilation of the placement viewed as an embedding.
//
// The model is deliberately simple (the paper's contribution is the
// embeddings, not router microarchitecture): store-and-forward routing,
// one packet per link per cycle, deterministic dimension-ordered paths,
// FIFO arbitration. It is enough to expose both dilation (path length)
// and congestion (link contention) effects.
//
// Two entry points serve the two kinds of consumers. Simulate runs a
// timed communication phase (cycles to drain, with link arbitration) —
// the demonstration path of the experiments. Congestion skips time and
// statically counts how many task-edge routes cross each directed link
// on the internal/par pool — the measurement path behind the census's
// congestion column and the scoring backend of the placement search
// (internal/place), which calls it once per candidate embedding.
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// Network is a torus or mesh machine with one router per node.
type Network struct {
	Spec    grid.Spec
	n       int
	shape   grid.Shape
	strides []int           // row-major rank deltas per dimension
	lr      grid.LinkRanker // dense directed-link ranking
}

// New builds a network from a spec.
func New(sp grid.Spec) *Network {
	return &Network{
		Spec:    sp,
		n:       sp.Size(),
		shape:   sp.Shape,
		strides: sp.Shape.Strides(),
		lr:      sp.NewLinkRanker(),
	}
}

// Size returns the number of routers.
func (nw *Network) Size() int { return nw.n }

// LinkSlots returns the size of a dense per-directed-link accumulator
// for this network — the index space walkLinks ranks into.
func (nw *Network) LinkSlots() int { return nw.lr.Slots(nw.n) }

// Route returns the dimension-ordered path from src to dst (inclusive of
// both endpoints) as router indices. In each dimension the torus variant
// walks around the shorter way; the mesh variant walks monotonically.
// Dimension-ordered routing on these topologies is minimal, so the path
// length equals the graph distance of Lemmas 5 and 6.
func (nw *Network) Route(src, dst int) []int {
	return nw.routeInto(nil, src, dst, make(grid.Node, nw.shape.Dim()), make(grid.Node, nw.shape.Dim()))
}

// routeInto is Route with caller-provided scratch: the path is appended
// to buf (which may be nil), and cur/target are reusable coordinate
// buffers, so parallel route precomputation allocates only the retained
// paths.
func (nw *Network) routeInto(buf []int, src, dst int, cur, target grid.Node) []int {
	nw.shape.NodeInto(cur, src)
	nw.shape.NodeInto(target, dst)
	path := append(buf, src)
	for j, l := range nw.shape {
		for cur[j] != target[j] {
			step := 1
			diff := target[j] - cur[j]
			if nw.Spec.Kind == grid.Torus {
				// Choose the shorter wrap direction; break ties toward
				// increasing coordinates.
				forward := (target[j] - cur[j] + l) % l
				if forward <= l-forward {
					step = 1
				} else {
					step = -1
				}
			} else if diff < 0 {
				step = -1
			}
			cur[j] = (cur[j] + step + l) % l
			path = append(path, nw.shape.Index(cur))
		}
	}
	return path
}

// walkLinks traverses the dimension-ordered route from src to dst —
// the exact hop sequence of routeInto — calling visit once per directed
// link with its dense rank (grid.LinkRanker over this network), and
// returns the hop count. Unlike routeInto it never materializes the
// path: ranks are maintained incrementally from the strides, which is
// what makes it the shared inner loop of the dense congestion
// accumulator and the incremental LoadState. cur and target are
// caller-provided coordinate scratch of length Dim.
func (nw *Network) walkLinks(src, dst int, cur, target grid.Node, visit func(rank int)) int {
	nw.shape.NodeInto(cur, src)
	nw.shape.NodeInto(target, dst)
	hops := 0
	x := src
	for j, l := range nw.shape {
		stride := nw.strides[j]
		for cur[j] != target[j] {
			step := 1
			diff := target[j] - cur[j]
			if nw.Spec.Kind == grid.Torus {
				// Choose the shorter wrap direction; break ties toward
				// increasing coordinates — routeInto's rule exactly.
				forward := (diff + l) % l
				if forward <= l-forward {
					step = 1
				} else {
					step = -1
				}
			} else if diff < 0 {
				step = -1
			}
			visit(nw.lr.Rank(x, j, step < 0))
			c := cur[j] + step
			switch {
			case c < 0: // wrap below: the -1 step lands on coordinate l-1
				c = l - 1
				x += (l - 1) * stride
			case c >= l: // wrap above: the +1 step lands on coordinate 0
				c = 0
				x -= (l - 1) * stride
			default:
				x += step * stride
			}
			cur[j] = c
			hops++
		}
	}
	return hops
}

// Placement maps task index to router index.
type Placement []int

// PlacementFromEmbedding converts an embedding (guest = task graph's
// source topology, host = the machine) into a placement table.
func PlacementFromEmbedding(e *embed.Embedding) Placement {
	return Placement(e.Table())
}

// IdentityPlacement places task i on router i.
func IdentityPlacement(n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate checks that the placement is an injection into the network.
func (p Placement) Validate(nw *Network, tasks int) error {
	if len(p) != tasks {
		return fmt.Errorf("netsim: placement covers %d tasks, want %d", len(p), tasks)
	}
	seen := make([]bool, nw.n)
	for t, r := range p {
		if r < 0 || r >= nw.n {
			return fmt.Errorf("netsim: task %d placed on invalid router %d", t, r)
		}
		if seen[r] {
			return fmt.Errorf("netsim: router %d hosts two tasks", r)
		}
		seen[r] = true
	}
	return nil
}

// Result aggregates one simulated communication phase.
type Result struct {
	// Cycles is the number of cycles until every packet arrived.
	Cycles int
	// Packets is the number of packets exchanged (two per task edge, one
	// each way).
	Packets int
	// MaxHops is the longest routed path (the dilation of the placement
	// when routing is minimal).
	MaxHops int
	// AvgHops is the mean routed path length.
	AvgHops float64
	// MaxLinkLoad is the largest number of packets crossing any single
	// directed link during the phase (congestion).
	MaxLinkLoad int
}

// linkKey identifies a directed link by its endpoints.
type linkKey struct{ from, to int }

// packet is an in-flight message with a precomputed route.
type packet struct {
	path []int
	pos  int // index of the router currently holding the packet
}

// routeAll precomputes the two directed routes of every task edge,
// striping edges across workers: packet slots 2i and 2i+1 belong to
// edge i, so writes are disjoint and only the retained paths allocate.
func (nw *Network) routeAll(tg *taskgraph.Graph, p Placement) (packets []*packet, totalHops, maxHops int) {
	packets = make([]*packet, 2*len(tg.Edges))
	var mu sync.Mutex
	par.Blocks(len(tg.Edges), par.Grain(len(tg.Edges), 256), func(lo, hi int) {
		cur := make(grid.Node, nw.shape.Dim())
		target := make(grid.Node, nw.shape.Dim())
		localTotal, localMax := 0, 0
		for i := lo; i < hi; i++ {
			e := tg.Edges[i]
			a, b := p[e[0]], p[e[1]]
			fwd := nw.routeInto(nil, a, b, cur, target)
			bwd := nw.routeInto(nil, b, a, cur, target)
			packets[2*i] = &packet{path: fwd}
			packets[2*i+1] = &packet{path: bwd}
			localTotal += (len(fwd) - 1) + (len(bwd) - 1)
			if h := len(fwd) - 1; h > localMax {
				localMax = h
			}
			if h := len(bwd) - 1; h > localMax {
				localMax = h
			}
		}
		mu.Lock()
		totalHops += localTotal
		if localMax > maxHops {
			maxHops = localMax
		}
		mu.Unlock()
	})
	return packets, totalHops, maxHops
}

// Simulate runs one communication phase of the task graph under the
// placement: every task edge sends one packet in each direction; each
// cycle a directed link transfers at most one packet (FIFO by packet
// id); the phase ends when every packet is delivered.
func Simulate(nw *Network, tg *taskgraph.Graph, p Placement) (Result, error) {
	if err := tg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return Result{}, err
	}
	packets, totalHops, maxHops := nw.routeAll(tg, p)
	res := Result{Packets: len(packets), MaxHops: maxHops}
	if len(packets) > 0 {
		res.AvgHops = float64(totalHops) / float64(len(packets))
	}

	linkLoad := map[linkKey]int{}
	for _, pk := range packets {
		for i := 0; i+1 < len(pk.path); i++ {
			k := linkKey{pk.path[i], pk.path[i+1]}
			linkLoad[k]++
			if linkLoad[k] > res.MaxLinkLoad {
				res.MaxLinkLoad = linkLoad[k]
			}
		}
	}

	// Cycle loop: each directed link carries one packet per cycle; lower
	// packet ids win arbitration (FIFO by injection order).
	pending := len(packets)
	for _, pk := range packets {
		if len(pk.path) == 1 {
			pending-- // co-located tasks deliver instantly
		}
	}
	cycles := 0
	const safety = 1 << 20
	for pending > 0 {
		cycles++
		if cycles > safety {
			return res, fmt.Errorf("netsim: simulation did not converge (livelock?)")
		}
		claimed := map[linkKey]bool{}
		for _, pk := range packets {
			if pk.pos >= len(pk.path)-1 {
				continue // delivered
			}
			k := linkKey{pk.path[pk.pos], pk.path[pk.pos+1]}
			if claimed[k] {
				continue // link busy this cycle
			}
			claimed[k] = true
			pk.pos++
			if pk.pos == len(pk.path)-1 {
				pending--
			}
		}
	}
	res.Cycles = cycles
	return res, nil
}

// CompareResult pairs a placement label with its simulation outcome, for
// the experiment reports.
type CompareResult struct {
	Label  string
	Result Result
}

// Compare simulates the same task graph under several placements and
// returns results sorted by cycles (fastest first).
func Compare(nw *Network, tg *taskgraph.Graph, placements map[string]Placement) ([]CompareResult, error) {
	out := make([]CompareResult, 0, len(placements))
	for label, p := range placements {
		r, err := Simulate(nw, tg, p)
		if err != nil {
			return nil, fmt.Errorf("placement %q: %v", label, err)
		}
		out = append(out, CompareResult{Label: label, Result: r})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Result.Cycles != out[j].Result.Cycles {
			return out[i].Result.Cycles < out[j].Result.Cycles
		}
		return out[i].Label < out[j].Label
	})
	return out, nil
}
