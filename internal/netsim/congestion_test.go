package netsim

import (
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/taskgraph"
)

// TestContentionSerializesSharedLinks builds a star task graph whose
// packets all funnel into one hub over shared line links: the phase must
// take longer than the longest individual path because links carry one
// packet per cycle.
func TestContentionSerializesSharedLinks(t *testing.T) {
	nw := New(grid.LineSpec(6))
	star := &taskgraph.Graph{
		Name:  "star",
		N:     4,
		Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}},
	}
	// Hub at line node 0; leaves strung out to the right so all inbound
	// packets share the link 1 -> 0.
	p := Placement{0, 1, 2, 3}
	r, err := Simulate(nw, star, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxHops != 3 {
		t.Fatalf("max hops = %d, want 3", r.MaxHops)
	}
	// Three packets cross link 1->0 (from tasks 1, 2, 3); the last can
	// finish no earlier than cycle 5 (arrive at node 1 by cycle 2, then
	// wait for two earlier crossings).
	if r.Cycles <= r.MaxHops {
		t.Errorf("cycles = %d, want > max hops %d (contention must serialize)", r.Cycles, r.MaxHops)
	}
	if r.MaxLinkLoad != 3 {
		t.Errorf("peak link load = %d, want 3", r.MaxLinkLoad)
	}
}

// TestNoContentionMatchesDistance verifies the complement: disjoint
// paths finish in exactly max-hops cycles.
func TestNoContentionMatchesDistance(t *testing.T) {
	nw := New(grid.LineSpec(8))
	pairs := &taskgraph.Graph{
		Name:  "pairs",
		N:     4,
		Edges: [][2]int{{0, 1}, {2, 3}},
	}
	p := Placement{0, 2, 5, 7}
	r, err := Simulate(nw, pairs, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != r.MaxHops {
		t.Errorf("cycles = %d, maxHops = %d; disjoint paths should not wait", r.Cycles, r.MaxHops)
	}
}

// TestCongestionStats checks the static congestion computation against
// the star scenario above.
func TestCongestionStats(t *testing.T) {
	nw := New(grid.LineSpec(6))
	star := &taskgraph.Graph{
		Name:  "star",
		N:     4,
		Edges: [][2]int{{0, 1}, {0, 2}, {0, 3}},
	}
	p := Placement{0, 1, 2, 3}
	c, err := Congestion(nw, star, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxLink != 3 {
		t.Errorf("MaxLink = %d, want 3 (all three inbound routes share 1->0)", c.MaxLink)
	}
	if c.TotalHops != 12 {
		t.Errorf("TotalHops = %d, want 12 (1+2+3 each way)", c.TotalHops)
	}
	if c.UsedLinks != 6 {
		t.Errorf("UsedLinks = %d, want 6 (three links, both directions)", c.UsedLinks)
	}
	if _, err := Congestion(nw, star, Placement{0}); err == nil {
		t.Error("bad placement accepted")
	}
	bad := &taskgraph.Graph{Name: "bad", N: 2, Edges: [][2]int{{0, 5}}}
	if _, err := Congestion(nw, bad, Placement{0, 1}); err == nil {
		t.Error("bad task graph accepted")
	}
	if nw.Size() != 6 {
		t.Errorf("Size = %d", nw.Size())
	}
}

// TestTorusWrapRouting checks that torus routing uses the short way
// around and that the resulting load spreads across both directions.
func TestTorusWrapRouting(t *testing.T) {
	nw := New(grid.RingSpec(8))
	path := nw.Route(7, 1)
	if len(path)-1 != 2 {
		t.Fatalf("route 7->1 on ring(8) has %d hops, want 2 (wrap)", len(path)-1)
	}
	if path[1] != 0 {
		t.Errorf("route 7->1 should pass through 0, got %v", path)
	}
}

func TestAvgLink(t *testing.T) {
	if got := (CongestionStats{}).AvgLink(); got != 0 {
		t.Errorf("empty AvgLink = %v, want 0", got)
	}
	s := CongestionStats{TotalHops: 12, UsedLinks: 6, MaxLink: 3}
	if got := s.AvgLink(); got != 2 {
		t.Errorf("AvgLink = %v, want 2", got)
	}
}
