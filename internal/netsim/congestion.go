package netsim

import "torusmesh/internal/taskgraph"

// CongestionStats summarizes static link congestion: how many task edges
// route over each directed link under dimension-ordered routing, without
// simulating time. Congestion is the second classic embedding cost
// besides dilation; a placement can have unit dilation yet overload a
// link when many guest edges share it.
type CongestionStats struct {
	// MaxLink is the largest number of task-edge routes crossing any
	// single directed link.
	MaxLink int
	// TotalHops is the sum of route lengths over all task edges (both
	// directions), i.e. the total traffic volume.
	TotalHops int
	// UsedLinks is the number of directed links carrying at least one
	// route.
	UsedLinks int
}

// Congestion computes static congestion of a placement: every task edge
// contributes its two directed routes.
func Congestion(nw *Network, tg *taskgraph.Graph, p Placement) (CongestionStats, error) {
	if err := tg.Validate(); err != nil {
		return CongestionStats{}, err
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return CongestionStats{}, err
	}
	load := map[linkKey]int{}
	stats := CongestionStats{}
	for _, e := range tg.Edges {
		for _, pair := range [2][2]int{{p[e[0]], p[e[1]]}, {p[e[1]], p[e[0]]}} {
			path := nw.Route(pair[0], pair[1])
			stats.TotalHops += len(path) - 1
			for i := 0; i+1 < len(path); i++ {
				k := linkKey{path[i], path[i+1]}
				load[k]++
				if load[k] > stats.MaxLink {
					stats.MaxLink = load[k]
				}
			}
		}
	}
	stats.UsedLinks = len(load)
	return stats, nil
}
