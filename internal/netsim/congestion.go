package netsim

import (
	"sync"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// CongestionStats summarizes static link congestion: how many task edges
// route over each directed link under dimension-ordered routing, without
// simulating time. Congestion is the second classic embedding cost
// besides dilation; a placement can have unit dilation yet overload a
// link when many guest edges share it.
//
// The struct is deliberately comparable (==): the incremental
// LoadState's Recheck and the parity tests compare whole stats at once.
type CongestionStats struct {
	// MaxLink is the largest number of task-edge routes crossing any
	// single directed link.
	MaxLink int
	// TotalHops is the sum of route lengths over all task edges (both
	// directions), i.e. the total traffic volume.
	TotalHops int
	// UsedLinks is the number of directed links carrying at least one
	// route.
	UsedLinks int
}

// AvgLink returns the mean load of the links that carry any traffic —
// TotalHops spread over UsedLinks. Together with MaxLink it separates
// "traffic is heavy everywhere" from "one link is a hotspot": the
// placement search's objective weighs both.
func (s CongestionStats) AvgLink() float64 {
	if s.UsedLinks == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.UsedLinks)
}

// Congestion computes static congestion of a placement: every task edge
// contributes its two directed routes. Loads accumulate in dense
// per-directed-link arrays indexed by link rank (grid.LinkRanker) — a
// flat int32 slice per worker, merged by index — instead of hash maps,
// so the batch measurement path allocates a couple of slabs per call
// and the inner loop is an array increment. Edges are striped across
// workers on the internal/par pool; int32 merges commute, so the stats
// are independent of scheduling.
func Congestion(nw *Network, tg *taskgraph.Graph, p Placement) (CongestionStats, error) {
	stats, _, err := congestion(nw, tg, p, false)
	return stats, err
}

// CongestionHops is Congestion plus the route-length distribution: a
// histogram mapping routed distance (hops one way; 0 for co-located
// endpoints) to the number of task edges routed at that distance. The
// census artifact's hop_hist column comes from here — the same fused
// edge pass that already walks every route, so the histogram is free
// beyond a per-worker bucket array. It is returned separately rather
// than as a CongestionStats field to keep the stats comparable with ==.
func CongestionHops(nw *Network, tg *taskgraph.Graph, p Placement) (CongestionStats, map[int]int, error) {
	return congestion(nw, tg, p, true)
}

func congestion(nw *Network, tg *taskgraph.Graph, p Placement, wantHist bool) (CongestionStats, map[int]int, error) {
	if err := tg.Validate(); err != nil {
		return CongestionStats{}, nil, err
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return CongestionStats{}, nil, err
	}
	slots := nw.LinkSlots()
	load := make([]int32, slots)
	stats := CongestionStats{}
	var distHist []int32
	var mu sync.Mutex
	// Per-span scratch comes from a pool local to this call: spans reuse
	// the slabs of earlier spans (zeroed during the merge) instead of
	// allocating slots-sized arrays per span.
	scratch := sync.Pool{New: func() any {
		s := make([]int32, slots)
		return &s
	}}
	par.Blocks(len(tg.Edges), par.Grain(len(tg.Edges), 256), func(lo, hi int) {
		cur := make(grid.Node, nw.shape.Dim())
		target := make(grid.Node, nw.shape.Dim())
		localp := scratch.Get().(*[]int32)
		local := *localp
		bumpLoad := func(rank int) { local[rank]++ }
		var localHist []int32
		if wantHist {
			localHist = make([]int32, 8)
		}
		localHops := 0
		for i := lo; i < hi; i++ {
			e := tg.Edges[i]
			d := nw.walkLinks(p[e[0]], p[e[1]], cur, target, bumpLoad)
			localHops += d + nw.walkLinks(p[e[1]], p[e[0]], cur, target, bumpLoad)
			if wantHist {
				localHist = bump(localHist, d)
			}
		}
		mu.Lock()
		stats.TotalHops += localHops
		for k, v := range local {
			if v != 0 {
				load[k] += v
				local[k] = 0
			}
		}
		if wantHist {
			for d, v := range localHist {
				if v != 0 {
					for d >= len(distHist) {
						distHist = append(distHist, make([]int32, len(distHist)+1)...)
					}
					distHist[d] += v
				}
			}
		}
		mu.Unlock()
		scratch.Put(localp)
	})
	for _, v := range load {
		if v > 0 {
			stats.UsedLinks++
			if int(v) > stats.MaxLink {
				stats.MaxLink = int(v)
			}
		}
	}
	var hist map[int]int
	if wantHist {
		hist = make(map[int]int)
		for d, v := range distHist {
			if v != 0 {
				hist[d] = int(v)
			}
		}
		// Edge case: zero-edge graphs keep the histogram present but
		// empty, matching the distribution of "no routes".
	}
	return stats, hist, nil
}
