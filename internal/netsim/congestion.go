package netsim

import (
	"sync"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// CongestionStats summarizes static link congestion: how many task edges
// route over each directed link under dimension-ordered routing, without
// simulating time. Congestion is the second classic embedding cost
// besides dilation; a placement can have unit dilation yet overload a
// link when many guest edges share it.
type CongestionStats struct {
	// MaxLink is the largest number of task-edge routes crossing any
	// single directed link.
	MaxLink int
	// TotalHops is the sum of route lengths over all task edges (both
	// directions), i.e. the total traffic volume.
	TotalHops int
	// UsedLinks is the number of directed links carrying at least one
	// route.
	UsedLinks int
}

// AvgLink returns the mean load of the links that carry any traffic —
// TotalHops spread over UsedLinks. Together with MaxLink it separates
// "traffic is heavy everywhere" from "one link is a hotspot": the
// placement search's objective weighs both.
func (s CongestionStats) AvgLink() float64 {
	if s.UsedLinks == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.UsedLinks)
}

// Congestion computes static congestion of a placement: every task edge
// contributes its two directed routes. Edges are striped across workers
// that accumulate per-worker link loads, merged at the end — the
// parallel half of the batch measurement pipeline (Dilation being the
// other half).
func Congestion(nw *Network, tg *taskgraph.Graph, p Placement) (CongestionStats, error) {
	if err := tg.Validate(); err != nil {
		return CongestionStats{}, err
	}
	if err := p.Validate(nw, tg.N); err != nil {
		return CongestionStats{}, err
	}
	load := map[linkKey]int{}
	stats := CongestionStats{}
	var mu sync.Mutex
	par.Blocks(len(tg.Edges), par.Grain(len(tg.Edges), 256), func(lo, hi int) {
		cur := make(grid.Node, nw.shape.Dim())
		target := make(grid.Node, nw.shape.Dim())
		var path []int
		localLoad := map[linkKey]int{}
		localHops := 0
		for i := lo; i < hi; i++ {
			e := tg.Edges[i]
			for _, pair := range [2][2]int{{p[e[0]], p[e[1]]}, {p[e[1]], p[e[0]]}} {
				path = nw.routeInto(path[:0], pair[0], pair[1], cur, target)
				localHops += len(path) - 1
				for k := 0; k+1 < len(path); k++ {
					localLoad[linkKey{path[k], path[k+1]}]++
				}
			}
		}
		mu.Lock()
		stats.TotalHops += localHops
		for k, v := range localLoad {
			load[k] += v
			if load[k] > stats.MaxLink {
				stats.MaxLink = load[k]
			}
		}
		mu.Unlock()
	})
	stats.UsedLinks = len(load)
	return stats, nil
}
