package place

import (
	"math/rand"
	"testing"

	"torusmesh/internal/grid"
)

// TestAnnealCounterAllocs gates the per-step instrumentation pattern:
// every annealing-path increment must be a zero-alloc atomic add, or
// the hot loop starts paying for its own observability.
func TestAnnealCounterAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		annealSteps.Inc()
		annealAccepted.Inc()
		annealRejected.Inc()
	}); n != 0 {
		t.Fatalf("anneal counter increments allocate %v/op, want 0", n)
	}
}

// TestAnnealCountersExact: one annealing run moves the process counters
// by exactly its step budget, with every step accounted as accepted or
// rejected — the instrumentation observes the run, it never samples it.
func TestAnnealCountersExact(t *testing.T) {
	guest := grid.Spec{Kind: grid.Torus, Shape: grid.Shape{4, 4}}
	host := grid.Spec{Kind: grid.Mesh, Shape: grid.Shape{4, 4}}
	s, tab, start := annealSearcher(t, guest, host, DefaultAnnealMoves)

	runs0 := annealRuns.Value()
	steps0 := annealSteps.Value()
	acc0 := annealAccepted.Value()
	rej0 := annealRejected.Value()
	const steps = 200
	if _, _, err := s.annealRun(tab, start, steps, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if got := annealRuns.Value() - runs0; got != 1 {
		t.Errorf("runs moved by %d, want 1", got)
	}
	if got := annealSteps.Value() - steps0; got != steps {
		t.Errorf("steps moved by %d, want %d", got, steps)
	}
	acc, rej := annealAccepted.Value()-acc0, annealRejected.Value()-rej0
	if acc+rej != steps {
		t.Errorf("accepted %d + rejected %d = %d, want %d", acc, rej, acc+rej, steps)
	}
}
