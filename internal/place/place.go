// Package place is the congestion-aware placement engine: it turns the
// repo's measurement stack (embed kernels for construction, netsim for
// routing, par for parallelism) into an optimizer that searches, for one
// (guest, host) pair, over a space of candidate embeddings and returns
// the Pareto front over the three placement costs
//
//	(dilation, peakLinkLoad, meanUsedLinkLoad)
//
// together with the scalarized winner minimizing
//
//	score = α·dilation + β·peakLinkLoad + γ·meanUsedLinkLoad
//
// where dilation is the measured worst edge stretch, peakLinkLoad the
// largest number of guest-edge routes crossing any directed host link
// under dimension-ordered routing (netsim.Congestion), and
// meanUsedLinkLoad the traffic volume spread over the links that carry
// any (CongestionStats.AvgLink).
//
// # The candidate space
//
// The paper's constructions minimize dilation; congestion is decided by
// symmetries they leave free. Candidates are generated as
//
//	post ∘ base(gσ → hσ) ∘ pre
//
// from five deterministic generators:
//
//   - Strategies: alternative base constructions for the pair. The
//     first strategy is the paper baseline (core.Embed's pick); callers
//     typically add core.EmbedViaPrimes, whose route through the
//     all-primes intermediate spreads guest edges across host
//     dimensions differently.
//   - Host axis permutations: embed into the axis-permuted host hσ,
//     then permute back. The permutation back is an isometry — dilation
//     is unchanged — but it reorders the dimensions that
//     dimension-ordered routing corrects first, which redistributes
//     link load. The full permutation group matters here (swapping two
//     equal-length host axes swaps XY- for YX-routing), so the
//     generator enumerates perm.All, not just distinct orderings.
//   - Guest axis permutations: relabel the guest's axes before
//     construction. Unlike the host side this changes which
//     construction variant fires and hence the dilation too; only
//     distinct orderings are enumerated (catalog.AxisOrderings),
//     because permutations of equal-length guest axes differ by a guest
//     automorphism, which maps the guest edge set onto itself and
//     leaves every metric unchanged.
//   - Digit rotations: pre/post-compose a per-axis cyclic coordinate
//     rotation (embed.Rotate). On toruses rotations are automorphisms
//     that commute with dimension-ordered routing — metric-invariant —
//     so the generator emits them only for mesh guests and mesh hosts,
//     where they are genuine (if usually dilation-hostile) candidates.
//   - Intermediate rotations: strategies that route through an
//     intermediate stage (the prime refinement's all-primes graph)
//     rebuild around a rotated intermediate (core.EmbedViaPrimesMid),
//     changing which intermediate nodes the second stage coarsens
//     together — genuinely new embeddings, enumerated for torus
//     intermediates too.
//
// Generators are tiered — strategies, then host permutations, then
// guest permutations, then rotations, then intermediate rotations, then
// the permutation cross product — so a small Budget still samples every
// generator before the cross product exhausts it.
//
// # Evaluation
//
// Candidates are scored concurrently on the internal/par pool, but the
// construction half is shared: each distinct (strategy, guest
// symmetries, intermediate rotation, permuted host shape) is built and
// materialized once, and host-side symmetries — pure relabelings of
// host ranks — are post-composed onto the cached base as a single
// table fusion (embed.PostCompose). On hosts with equal-length axes the
// whole host-permutation tier shares one construction.
//
// Each worker validates its candidate (strategies are caller-injected,
// so a broken construction is discarded and counted, not fatal — only
// the baseline is load-bearing), measures dilation and average dilation
// in one fused pass over the guest's edge blocks, and only then routes
// the guest's edges for congestion — the expensive half. Two gates skip
// that half early: a candidate whose measured dilation exceeds the cap
// (CapDilation pins the cap to the baseline's measured dilation) is
// discarded, and a candidate whose best conceivable cost vector
// (dilation, 1, 1) is already strictly dominated by a fully scored
// candidate is pruned — it can neither join the front nor win. Pruning
// depends on scheduling, but never changes the result: the front — the
// non-dominated set over the scored candidates, identical cost vectors
// represented by the lowest (earliest-tier) index — is deterministic,
// the scalarized winner is the front member with the lowest score (ties
// to the lowest index), and so is the JSON artifact (volatile counters
// are excluded).
//
// # Annealing refinement
//
// With Config.Anneal, the pair additionally gets a seeded,
// deterministic simulated-annealing pass (anneal.go), evaluated
// incrementally on netsim.LoadState so it scales to pairs of any size;
// seeds are drawn from the scored candidates (front members first). A
// refined placement is admitted only when it strictly dominates its
// seed, so annealing can only grow the front inward, never degrade it.
// Annealing also disables the congestion pruning gate: the pruned set
// depends on worker scheduling, and the seed selection must see a
// deterministic scored set.
//
// The baseline candidate (first strategy, identity permutations) is
// always fully scored and verified, and reported next to the winner, so
// callers can see the dilation/congestion trade the search made.
package place

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// EmbedFunc builds a base embedding for one pair — typically core.Embed
// or core.EmbedViaPrimes. It must be safe for concurrent calls.
type EmbedFunc func(g, h grid.Spec) (*embed.Embedding, error)

// Strategy is a named base construction the search composes symmetry
// variants around.
type Strategy struct {
	Name  string
	Embed EmbedFunc
	// Mid, when set with EmbedMidRot, exposes the construction's
	// intermediate stage for the pair (ok=false when it has none) and
	// enables the intermediate-rotation generator: EmbedMidRot rebuilds
	// the construction with a per-axis rotation of that intermediate
	// (core.PrimeIntermediate / core.EmbedViaPrimesMid for the prime
	// refinement). Both must be set together.
	Mid         func(g, h grid.Spec) (grid.Spec, bool)
	EmbedMidRot func(g, h grid.Spec, rot []int) (*embed.Embedding, error)
}

// Objective weighs the three placement costs. All weights must be
// non-negative and at least one positive; the zero value is replaced by
// DefaultObjective.
type Objective struct {
	// Alpha weighs the measured dilation (worst edge stretch).
	Alpha float64 `json:"alpha"`
	// Beta weighs the peak directed-link load (netsim congestion).
	Beta float64 `json:"beta"`
	// Gamma weighs the mean load of the links carrying any traffic.
	Gamma float64 `json:"gamma"`
}

// DefaultObjective weighs dilation and peak congestion equally and
// ignores mean link load.
func DefaultObjective() Objective { return Objective{Alpha: 1, Beta: 1} }

// Score evaluates the objective.
func (o Objective) Score(dilation, peak int, avgLink float64) float64 {
	return o.Alpha*float64(dilation) + o.Beta*float64(peak) + o.Gamma*avgLink
}

// ParseObjective parses the CLI weight form "α,β,γ", allowing "α,β"
// with γ = 0 — shared by the place and sweep commands.
func ParseObjective(s string) (Objective, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return Objective{}, fmt.Errorf("objective must look like 1,1 or 1,2,0.5, got %q", s)
	}
	weights := make([]float64, 3)
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Objective{}, fmt.Errorf("bad objective weight %q: %v", p, err)
		}
		weights[i] = w
	}
	return Objective{Alpha: weights[0], Beta: weights[1], Gamma: weights[2]}, nil
}

func (o Objective) validate() error {
	if o.Alpha < 0 || o.Beta < 0 || o.Gamma < 0 {
		return fmt.Errorf("place: objective weights must be non-negative, got (%g, %g, %g)", o.Alpha, o.Beta, o.Gamma)
	}
	return nil
}

// DefaultBudget caps the number of candidates a search constructs when
// the config does not say otherwise.
const DefaultBudget = 128

// Config describes one placement search.
type Config struct {
	// Guest and Host must have the same size. They are the pair's
	// identity, recorded separately in the artifact, not a search
	// setting — so they are deliberately outside Spec().
	//torusmesh:nospec
	Guest, Host grid.Spec
	// Objective is the score being minimized; the zero value means
	// DefaultObjective.
	Objective Objective
	// Budget caps how many candidates are constructed and measured
	// (the deterministic enumeration is truncated after Budget entries;
	// the baseline is always first). <= 0 means DefaultBudget.
	Budget int
	// CapDilation discards every candidate whose measured dilation
	// exceeds the baseline's, so the winner trades congestion at equal
	// or better dilation (and the front spans only dilations up to the
	// baseline's).
	CapDilation bool
	// Rotations includes the digit-rotation generator (mesh sides
	// only; torus rotations are metric-invariant automorphisms).
	Rotations bool
	// Anneal adds the simulated-annealing refinement pass: scored
	// candidates (front members first) seed deterministic annealing
	// runs, evaluated incrementally so the pass scales to pairs of any
	// size, and refined placements that strictly dominate their seed
	// join the front.
	Anneal bool
	// AnnealSteps budgets each annealing run (<= 0 means
	// DefaultAnnealSteps).
	AnnealSteps int
	// AnnealMoves selects the move repertoire: DefaultAnnealMoves
	// ("swap", also the empty value) proposes node swaps only, with the
	// same RNG stream as the pre-incremental engine; AnnealMovesAll
	// ("all") mixes in host-axis segment reversals and axis-plane
	// swaps.
	AnnealMoves string
	// Seed seeds the deterministic annealing RNG (0 means
	// DefaultAnnealSeed). Two searches with equal configs — seed
	// included — produce identical artifacts.
	Seed int64
	// WideTables forces the annealing pass's placement tables into the
	// historical []int representation. By default the pass uses compact
	// int32 tables whenever the host's ranks fit (always, for any host
	// below 2³¹ nodes), halving table memory. The two representations
	// are bit-for-bit identical in results, so this knob exists for
	// benchmarks and escape-hatch debugging and is deliberately NOT part
	// of Config.Spec(): artifacts do not depend on it.
	//torusmesh:nospec
	WideTables bool
	// Clock substitutes the wall clock behind Result.Elapsed and the
	// per-run AnnealRuns timings. Nil means time.Now. Wall times
	// serialize as json:"-" and never enter artifacts, so the clock is
	// measurement-only and deliberately outside Spec().
	//torusmesh:nospec
	Clock func() time.Time
	// Strategies are the base constructions; Strategies[0] is the
	// baseline the search reports against. At least one is required.
	Strategies []Strategy
}

func (cfg *Config) validate() error {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if err := cfg.Guest.Shape.Validate(); err != nil {
		return fmt.Errorf("place: guest: %v", err)
	}
	if err := cfg.Host.Shape.Validate(); err != nil {
		return fmt.Errorf("place: host: %v", err)
	}
	if cfg.Guest.Size() != cfg.Host.Size() {
		return fmt.Errorf("place: guest %s has %d nodes but host %s has %d; sizes must match",
			cfg.Guest, cfg.Guest.Size(), cfg.Host, cfg.Host.Size())
	}
	if len(cfg.Strategies) == 0 {
		return fmt.Errorf("place: at least one strategy is required")
	}
	for _, s := range cfg.Strategies {
		if s.Name == "" || s.Embed == nil {
			return fmt.Errorf("place: every strategy needs a name and an embed function")
		}
		if (s.Mid == nil) != (s.EmbedMidRot == nil) {
			return fmt.Errorf("place: strategy %s must set Mid and EmbedMidRot together", s.Name)
		}
	}
	if err := cfg.Objective.validate(); err != nil {
		return err
	}
	if (cfg.Objective == Objective{}) {
		cfg.Objective = DefaultObjective()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.Anneal {
		if cfg.AnnealSteps <= 0 {
			cfg.AnnealSteps = DefaultAnnealSteps
		}
		if cfg.Seed == 0 {
			cfg.Seed = DefaultAnnealSeed
		}
		switch cfg.AnnealMoves {
		case "":
			cfg.AnnealMoves = DefaultAnnealMoves
		case DefaultAnnealMoves, AnnealMovesAll:
		default:
			return fmt.Errorf("place: anneal moves must be %q or %q, got %q",
				DefaultAnnealMoves, AnnealMovesAll, cfg.AnnealMoves)
		}
	}
	return nil
}

// Spec renders everything that determines a pair's search result — the
// engine version, objective, budget, cap, generators, annealing knobs
// and strategy names — as one canonical string, with the zero-value
// defaults applied the way Search applies them. The census records it
// in its artifact so Merge refuses to combine shards searched under
// different settings, and resume refuses journals from a different
// engine (mixing either would silently break the bit-for-bit
// merge/resume invariant). The engine token tracks ArtifactVersion:
// the candidate space and winner selection changed with the Pareto
// engine, so pre-upgrade shard artifacts must not fold into
// post-upgrade searches even at identical settings. The annealing
// tokens appear only when annealing is on.
func (cfg Config) Spec() string {
	if (cfg.Objective == Objective{}) {
		cfg.Objective = DefaultObjective()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	names := make([]string, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		names[i] = s.Name
	}
	spec := fmt.Sprintf("engine=%d objective=%g,%g,%g budget=%d cap=%t rotations=%t strategies=%s",
		ArtifactVersion, cfg.Objective.Alpha, cfg.Objective.Beta, cfg.Objective.Gamma,
		cfg.Budget, cfg.CapDilation, cfg.Rotations, strings.Join(names, "+"))
	if cfg.Anneal {
		steps := cfg.AnnealSteps
		if steps <= 0 {
			steps = DefaultAnnealSteps
		}
		seed := cfg.Seed
		if seed == 0 {
			seed = DefaultAnnealSeed
		}
		moves := cfg.AnnealMoves
		if moves == "" {
			moves = DefaultAnnealMoves
		}
		spec += fmt.Sprintf(" anneal=%d seed=%d moves=%s", steps, seed, moves)
	}
	return spec
}

// Candidate is one fully scored placement candidate: the symmetry
// variant that produced it and its measured costs.
type Candidate struct {
	// Index is the candidate's position in the deterministic
	// enumeration (0 is the baseline); annealed candidates extend the
	// enumeration past the last constructed variant. It breaks score
	// ties.
	Index int `json:"index"`
	// Strategy is the name of the base construction strategy ("anneal"
	// for annealed candidates).
	Strategy string `json:"strategy"`
	// GuestPerm/HostPerm are the axis permutations applied around the
	// base construction (absent = identity).
	GuestPerm []int `json:"guest_perm,omitempty"`
	HostPerm  []int `json:"host_perm,omitempty"`
	// GuestRot/HostRot are the per-axis coordinate rotations (absent =
	// none).
	GuestRot []int `json:"guest_rot,omitempty"`
	HostRot  []int `json:"host_rot,omitempty"`
	// MidRot is the per-axis rotation of the strategy's intermediate
	// stage (absent = none).
	MidRot []int `json:"mid_rot,omitempty"`
	// Annealed marks a candidate produced by the annealing refinement
	// pass; AnnealedFrom is the index of the front member it refined.
	Annealed     bool `json:"annealed,omitempty"`
	AnnealedFrom int  `json:"annealed_from,omitempty"`
	// EmbedStrategy names the construction chain of the composite
	// embedding.
	EmbedStrategy string `json:"embed_strategy"`
	// Dilation and AvgDilation are measured over every guest edge.
	Dilation    int     `json:"dilation"`
	AvgDilation float64 `json:"avg_dilation"`
	// Peak and AvgLink are the congestion costs under dimension-ordered
	// routing.
	Peak    int     `json:"peak"`
	AvgLink float64 `json:"avg_link"`
	// Score is the objective value.
	Score float64 `json:"score"`
}

// Desc renders the symmetry variant compactly, e.g.
// "paper hperm=[1 0] grot=[0 2]".
func (c Candidate) Desc() string {
	s := c.Strategy
	if len(c.GuestPerm) > 0 {
		s += fmt.Sprintf(" gperm=%v", c.GuestPerm)
	}
	if len(c.HostPerm) > 0 {
		s += fmt.Sprintf(" hperm=%v", c.HostPerm)
	}
	if len(c.GuestRot) > 0 {
		s += fmt.Sprintf(" grot=%v", c.GuestRot)
	}
	if len(c.HostRot) > 0 {
		s += fmt.Sprintf(" hrot=%v", c.HostRot)
	}
	if len(c.MidRot) > 0 {
		s += fmt.Sprintf(" midrot=%v", c.MidRot)
	}
	if c.Annealed {
		s += fmt.Sprintf(" from=%d", c.AnnealedFrom)
	}
	return s
}

// dominatesTriple is the single home of the Pareto dominance rule on
// the (dilation, peak, avg-link) cost triple: no coordinate worse, at
// least one strictly better. Candidate dominance and the annealing
// pass's tableCosts dominance are both defined through it, so the rule
// cannot drift between front membership and annealing admission.
func dominatesTriple(aDil, aPeak int, aAvg float64, bDil, bPeak int, bAvg float64) bool {
	if aDil > bDil || aPeak > bPeak || aAvg > bAvg {
		return false
	}
	return aDil < bDil || aPeak < bPeak || aAvg < bAvg
}

// dominates reports whether a Pareto-dominates b on (dilation, peak,
// avg-link).
func dominates(a, b Candidate) bool {
	return dominatesTriple(a.Dilation, a.Peak, a.AvgLink, b.Dilation, b.Peak, b.AvgLink)
}

// sameCosts reports whether two candidates carry identical cost
// vectors.
func sameCosts(a, b Candidate) bool {
	return a.Dilation == b.Dilation && a.Peak == b.Peak && a.AvgLink == b.AvgLink
}

// paretoFront filters the scored candidates to their non-dominated
// subset. Identical cost vectors are represented by the lowest index,
// and the result is sorted by (dilation, peak, avg-link, index) — the
// deterministic artifact order. The input is not modified.
func paretoFront(scored []Candidate) []Candidate {
	var front []Candidate
	for _, c := range scored {
		keep := true
		for _, o := range scored {
			if o.Index == c.Index {
				continue
			}
			if dominates(o, c) || (sameCosts(o, c) && o.Index < c.Index) {
				keep = false
				break
			}
		}
		if keep {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.Dilation != b.Dilation {
			return a.Dilation < b.Dilation
		}
		if a.Peak != b.Peak {
			return a.Peak < b.Peak
		}
		if a.AvgLink != b.AvgLink {
			return a.AvgLink < b.AvgLink
		}
		return a.Index < b.Index
	})
	return front
}

// bestOf returns the front member minimizing the objective, ties to the
// lowest index. Weak dominance implies a score no worse under
// non-negative weights, so the front's minimum equals the minimum over
// every scored candidate — deriving the winner from the front loses
// nothing.
func bestOf(front []Candidate) Candidate {
	best := front[0]
	for _, c := range front[1:] {
		if c.Score < best.Score || (c.Score == best.Score && c.Index < best.Index) {
			best = c
		}
	}
	return best
}

// Result is the (serializable) outcome of one search. Every serialized
// field is deterministic for a given Config; fields that depend on
// scheduling or wall time are excluded from the artifact.
type Result struct {
	Version   int       `json:"version"`
	Guest     string    `json:"guest"`
	Host      string    `json:"host"`
	Objective Objective `json:"objective"`
	Budget    int       `json:"budget"`
	// CapDilation is the effective dilation cap (0 = none; otherwise
	// the baseline's measured dilation).
	CapDilation int `json:"cap_dilation"`
	// Space is the size of the full candidate space; Candidates is the
	// number enumerated within the budget.
	Space      int `json:"space"`
	Candidates int `json:"candidates"`
	// Unbuildable counts candidates whose base construction failed;
	// Invalid counts candidates whose construction produced a broken
	// (out-of-range or non-injective) embedding; Capped counts
	// candidates discarded by the dilation cap. All are deterministic.
	Unbuildable int `json:"unbuildable"`
	Invalid     int `json:"invalid"`
	Capped      int `json:"capped"`
	// Annealed counts the annealing refinement runs; AnnealWins counts
	// the annealed members of the final front — refined placements that
	// strictly dominated their seed and survived the front's dedup.
	// AnnealSeedsSkipped counts the eligible seeds the per-search seed
	// cap dropped, so wide searches can see the pass was truncated.
	// All are zero without Config.Anneal and deterministic with it.
	Annealed           int `json:"annealed,omitempty"`
	AnnealWins         int `json:"anneal_wins,omitempty"`
	AnnealSeedsSkipped int `json:"anneal_seeds_skipped,omitempty"`
	// Seed is the effective annealing seed (0 without annealing).
	Seed int64 `json:"seed,omitempty"`
	// Baseline is the paper pick (first strategy, identity symmetries),
	// always fully scored; Best is the objective winner, always a
	// member of Front.
	Baseline Candidate `json:"baseline"`
	Best     Candidate `json:"best"`
	// Front is the Pareto front: every scored candidate not dominated
	// by another on (dilation, peak, avg-link), sorted by those costs.
	// It always holds at least one member (the winner), and is
	// independent of scheduling and GOMAXPROCS.
	Front []Candidate `json:"front"`

	// Pruned counts candidates whose congestion scoring was skipped
	// because their best conceivable cost vector was already dominated.
	// It depends on worker scheduling and is excluded from the
	// artifact, like Elapsed.
	Pruned  int           `json:"-"`
	Elapsed time.Duration `json:"-"`
	// AnnealRuns reports per-run annealing telemetry in seed order —
	// what the CLI's steps/sec line is computed from. Run wall times
	// depend on scheduling, so the field is excluded from the artifact.
	AnnealRuns []AnnealRunStat `json:"-"`
	// BestEmbedding is the verified winning embedding, for callers
	// that want to use the placement rather than just read its costs.
	BestEmbedding *embed.Embedding `json:"-"`
}

// AnnealRunStat is one annealing run's telemetry: the index of the
// scored candidate it refined, its move budget, and its wall time
// (scheduling-dependent; never serialized).
type AnnealRunStat struct {
	SeedIndex int
	Steps     int
	Elapsed   time.Duration
}

// Improved reports whether the search found a candidate with a strictly
// better objective score than the paper baseline.
func (r *Result) Improved() bool { return r.Best.Score < r.Baseline.Score }

// searcher carries the immutable per-search state the candidate workers
// share, plus the construction caches.
type searcher struct {
	cfg     *Config
	tg      *taskgraph.Graph    // guest edge list, routed through the host
	nw      *netsim.Network     // the host machine
	rd      *grid.RankDistancer // compiled host distance
	cap     int                 // dilation cap (0 = none)
	scratch sync.Pool           // *measureBufs

	// bases caches the construction half of variants (buildBase) per
	// baseKey; posts caches the host-side relabeling tables per
	// (hperm, hrot). Both are filled lazily under concurrent access.
	baseMu sync.Mutex
	bases  map[string]*baseEntry
	postMu sync.Mutex
	posts  map[string]*postEntry
}

// baseEntry is one lazily built shared base construction.
type baseEntry struct {
	once sync.Once
	e    *embed.Embedding
	err  error
}

// postEntry is one lazily built host-side relabeling table.
type postEntry struct {
	once sync.Once
	t    embed.Table
	name string
	err  error
}

// measureBufs is the per-worker scratch of the candidate pipeline: the
// gather buffer pair of the fused measurement pass and the bitset of
// the injectivity scan.
type measureBufs struct {
	a, b []int
	seen []uint32
}

func newSearcher(cfg *Config) *searcher {
	s := &searcher{
		cfg:   cfg,
		tg:    taskgraph.FromSpec(cfg.Guest),
		nw:    netsim.New(cfg.Host),
		rd:    cfg.Host.NewRankDistancer(),
		bases: map[string]*baseEntry{},
		posts: map[string]*postEntry{},
	}
	// Materialized (division-free) decode only pays off on the table
	// fast path, which kernels take when the guest is at or below the
	// materialization threshold; above it every candidate measures via
	// the embedding's own paths and the tables would be dead weight
	// (same gate as the census engine).
	if cfg.Guest.Size() <= embed.MaterializeThreshold() {
		s.rd.Materialize()
	}
	words := (cfg.Guest.Size() + 31) / 32
	s.scratch.New = func() any {
		return &measureBufs{
			a:    make([]int, grid.DefaultEdgeBlock),
			b:    make([]int, grid.DefaultEdgeBlock),
			seen: make([]uint32, words),
		}
	}
	return s
}

// build constructs a variant's composite embedding through the caches:
// the base construction is built (and its kernel materialized) at most
// once per baseKey, and host-side symmetries are post-composed as one
// table fusion. Produces embeddings rank-identical to buildVariant.
func (s *searcher) build(v variantSpec) (*embed.Embedding, error) {
	hp := permutedHost(s.cfg.Host, v.hperm)
	key := v.baseKey(hp)
	s.baseMu.Lock()
	be := s.bases[key]
	if be == nil {
		be = &baseEntry{}
		s.bases[key] = be
	}
	s.baseMu.Unlock()
	be.once.Do(func() { be.e, be.err = buildBase(s.cfg, v, hp) })
	if be.err != nil {
		return nil, be.err
	}
	if v.hperm == nil && v.hrot == nil {
		return be.e, nil
	}
	post, err := s.post(v)
	if err != nil {
		return nil, err
	}
	return embed.PostCompose(be.e, s.cfg.Host, be.e.Strategy+" ∘ "+post.name, 0, post.t)
}

// post returns the cached host-side relabeling of a variant.
func (s *searcher) post(v variantSpec) (*postEntry, error) {
	key := fmt.Sprintf("%v|%v", v.hperm, v.hrot)
	s.postMu.Lock()
	pe := s.posts[key]
	if pe == nil {
		pe = &postEntry{}
		s.posts[key] = pe
	}
	s.postMu.Unlock()
	pe.once.Do(func() { pe.t, pe.name, pe.err = postParts(s.cfg, v) })
	if pe.err != nil {
		return nil, pe.err
	}
	return pe, nil
}

// validate rejects malformed candidate embeddings — an image out of the
// host's rank range or two guest nodes sharing one — before they reach
// the distance kernels, which index by host rank and would panic.
// Strategies are caller-injected, so the engine treats construction
// output as fallible, the way the census does.
func (s *searcher) validate(e *embed.Embedding) error {
	table, _ := e.Kernel().(embed.Table)
	if table == nil {
		return e.Verify()
	}
	sc := s.scratch.Get().(*measureBufs)
	defer s.scratch.Put(sc)
	if bad := table.CheckInjection(s.cfg.Guest.Size(), sc.seen); bad != nil {
		if bad.OutOfBounds {
			return fmt.Errorf("%s: image of guest rank %d (host rank %d) out of bounds for %s",
				e.Strategy, bad.GuestRank, bad.HostRank, s.cfg.Host)
		}
		return fmt.Errorf("%s: host rank %d has two pre-images (one is guest rank %d)",
			e.Strategy, bad.HostRank, bad.GuestRank)
	}
	return nil
}

// measure returns the dilation and average dilation of the embedding in
// one fused pass over the guest's edge blocks when the kernel is
// materialized, falling back to the embedding's own parallel paths.
func (s *searcher) measure(e *embed.Embedding) (int, float64) {
	table, _ := e.Kernel().(embed.Table)
	if table == nil {
		return e.Dilation(), e.AverageDilation()
	}
	sc := s.scratch.Get().(*measureBufs)
	defer s.scratch.Put(sc)
	return s.cfg.Guest.EdgeDilation(table, s.rd, sc.a, sc.b)
}

// congest routes the guest's edges through the host under the
// embedding's placement — the expensive half of scoring.
func (s *searcher) congest(e *embed.Embedding) (netsim.CongestionStats, error) {
	var p netsim.Placement
	if table, ok := e.Kernel().(embed.Table); ok {
		p = netsim.Placement(table)
	} else {
		p = netsim.PlacementFromEmbedding(e)
	}
	return netsim.Congestion(s.nw, s.tg, p)
}

// score finishes evaluating one candidate from its already-measured
// dilation costs: the congestion pass and the objective. Both the
// baseline and the worker loop go through here, so every candidate is
// scored on the same objective.
func (s *searcher) score(idx int, v variantSpec, e *embed.Embedding, dil int, avg float64) (Candidate, error) {
	c := v.describe(idx, s.cfg)
	c.EmbedStrategy = e.Strategy
	c.Dilation, c.AvgDilation = dil, avg
	stats, err := s.congest(e)
	if err != nil {
		return Candidate{}, err
	}
	c.Peak = stats.MaxLink
	c.AvgLink = stats.AvgLink()
	c.Score = s.cfg.Objective.Score(c.Dilation, c.Peak, c.AvgLink)
	return c, nil
}

// unitFloor tracks the lowest dilation among fully scored candidates
// that hit the congestion floor (peak 1, avg-link <= 1). A candidate
// whose dilation strictly exceeds that floor is Pareto-dominated by it
// — every reachable vector (d, >=1, >=1) loses on dilation and cannot
// improve on peak or avg-link — so its congestion pass is skipped.
// Pruning is strict on dilation, which keeps the front independent of
// scheduling: the floor candidate itself can never be pruned, so a
// candidate pruned under one schedule is dominated under every
// schedule.
type unitFloor struct {
	mu  sync.Mutex
	dil int
	ok  bool
}

func (u *unitFloor) observe(c Candidate) {
	if c.Peak != 1 || c.AvgLink > 1 {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if !u.ok || c.Dilation < u.dil {
		u.dil, u.ok = c.Dilation, true
	}
}

func (u *unitFloor) prunes(dil int) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.ok && u.dil < dil
}

// Search enumerates the candidate space of the config's pair, scores
// candidates concurrently with Pareto-safe pruning, optionally refines
// the front by simulated annealing, and returns the deterministic
// Pareto front with the scalarized winner next to the paper baseline.
// It fails when the pair is invalid or the baseline strategy cannot
// embed it.
func Search(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := cfg.Clock()
	variants, space := enumerate(&cfg)
	s := newSearcher(&cfg)

	base, err := s.build(variants[0])
	if err != nil {
		return nil, fmt.Errorf("place: baseline strategy %s failed for %s -> %s: %v",
			cfg.Strategies[0].Name, cfg.Guest, cfg.Host, err)
	}
	if err := s.validate(base); err != nil {
		return nil, fmt.Errorf("place: baseline embedding is broken: %v", err)
	}
	baseDil, baseAvg := s.measure(base)
	baseline, err := s.score(0, variants[0], base, baseDil, baseAvg)
	if err != nil {
		return nil, fmt.Errorf("place: baseline scoring failed: %v", err)
	}
	if cfg.CapDilation {
		s.cap = baseline.Dilation
	}

	floor := &unitFloor{}
	floor.observe(baseline)
	scored := make([]Candidate, 1, len(variants))
	scored[0] = baseline
	var mu sync.Mutex
	unbuildable, invalid, capped, pruned := 0, 0, 0, 0
	var firstErr error
	par.Blocks(len(variants)-1, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			idx := k + 1
			v := variants[idx]
			e, err := s.build(v)
			if err != nil {
				mu.Lock()
				unbuildable++
				mu.Unlock()
				continue
			}
			// A broken candidate is discarded, not fatal: only the
			// baseline is load-bearing.
			if err := s.validate(e); err != nil {
				mu.Lock()
				invalid++
				mu.Unlock()
				continue
			}
			dil, avg := s.measure(e)
			if s.cap > 0 && dil > s.cap {
				mu.Lock()
				capped++
				mu.Unlock()
				continue
			}
			// A candidate whose best conceivable vector (dil, 1, 1) is
			// already strictly dominated can neither join the front nor
			// win; skip the routing pass. With annealing on, every
			// candidate is scored instead: the pruned set depends on
			// worker scheduling, and annealing's seed selection draws
			// from the whole scored set, which must be deterministic.
			if !cfg.Anneal && floor.prunes(dil) {
				mu.Lock()
				pruned++
				mu.Unlock()
				continue
			}
			c, err := s.score(idx, v, e, dil, avg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("place: candidate %d: %v", idx, err)
				}
				mu.Unlock()
				continue
			}
			floor.observe(c)
			mu.Lock()
			scored = append(scored, c)
			mu.Unlock()
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	// The front is computed over an index-sorted copy so it (and every
	// tie-break inside it) is independent of completion order.
	sort.Slice(scored, func(i, j int) bool { return scored[i].Index < scored[j].Index })
	front := paretoFront(scored)

	res := &Result{
		Version:     ArtifactVersion,
		Guest:       cfg.Guest.String(),
		Host:        cfg.Host.String(),
		Objective:   cfg.Objective,
		Budget:      cfg.Budget,
		CapDilation: s.cap,
		Space:       space,
		Candidates:  len(variants),
		Unbuildable: unbuildable,
		Invalid:     invalid,
		Capped:      capped,
		Baseline:    baseline,
		Pruned:      pruned,
	}

	annealTables := map[int]embed.Table{}
	if cfg.Anneal {
		res.Seed = cfg.Seed
		front, err = s.annealFront(variants, scored, front, res, annealTables)
		if err != nil {
			return nil, err
		}
	}
	res.Front = front
	res.Best = bestOf(front)

	best := base
	if res.Best.Index != 0 {
		if t, ok := annealTables[res.Best.Index]; ok {
			best, err = embed.FromTable(cfg.Guest, cfg.Host, res.Best.EmbedStrategy, 0, t)
		} else {
			best, err = s.build(variants[res.Best.Index])
		}
		if err != nil {
			return nil, fmt.Errorf("place: rebuilding winner %d: %v", res.Best.Index, err)
		}
		if err := s.validate(best); err != nil {
			return nil, fmt.Errorf("place: winning embedding is broken: %v", err)
		}
	}
	res.BestEmbedding = best
	res.Elapsed = cfg.Clock().Sub(start)
	return res, nil
}
