// Package place is the congestion-aware placement engine: it turns the
// repo's measurement stack (embed kernels for construction, netsim for
// routing, par for parallelism) into an optimizer that searches, for one
// (guest, host) pair, over a space of candidate embeddings and returns
// the one minimizing a configurable objective
//
//	score = α·dilation + β·peakLinkLoad + γ·meanUsedLinkLoad
//
// where dilation is the measured worst edge stretch, peakLinkLoad the
// largest number of guest-edge routes crossing any directed host link
// under dimension-ordered routing (netsim.Congestion), and
// meanUsedLinkLoad the traffic volume spread over the links that carry
// any (CongestionStats.AvgLink).
//
// # The candidate space
//
// The paper's constructions minimize dilation; congestion is decided by
// symmetries they leave free. Candidates are generated as
//
//	post ∘ base(gσ → hσ) ∘ pre
//
// from four deterministic generators:
//
//   - Strategies: alternative base constructions for the pair. The
//     first strategy is the paper baseline (core.Embed's pick); callers
//     typically add core.EmbedViaPrimes, whose route through the
//     all-primes intermediate spreads guest edges across host
//     dimensions differently.
//   - Host axis permutations: embed into the axis-permuted host hσ,
//     then permute back. The permutation back is an isometry — dilation
//     is unchanged — but it reorders the dimensions that
//     dimension-ordered routing corrects first, which redistributes
//     link load. The full permutation group matters here (swapping two
//     equal-length host axes swaps XY- for YX-routing), so the
//     generator enumerates perm.All, not just distinct orderings.
//   - Guest axis permutations: relabel the guest's axes before
//     construction. Unlike the host side this changes which
//     construction variant fires and hence the dilation too; only
//     distinct orderings are enumerated (catalog.AxisOrderings),
//     because permutations of equal-length guest axes differ by a guest
//     automorphism, which maps the guest edge set onto itself and
//     leaves every metric unchanged.
//   - Digit rotations: pre/post-compose a per-axis cyclic coordinate
//     rotation (embed.Rotate). On toruses rotations are automorphisms
//     that commute with dimension-ordered routing — metric-invariant —
//     so the generator emits them only for mesh guests and mesh hosts,
//     where they are genuine (if usually dilation-hostile) candidates.
//
// Generators are tiered — strategies, then host permutations, then
// guest permutations, then rotations, then the permutation cross
// product — so a small Budget still samples every generator before the
// cross product exhausts it.
//
// # Evaluation
//
// Candidates are scored concurrently on the internal/par pool. Each
// worker constructs the composite embedding, validates it (strategies
// are caller-injected, so a broken construction is discarded and
// counted, not fatal — only the baseline is load-bearing), measures
// dilation and average dilation in one fused pass over the guest's
// edge blocks (grid.EdgeDilation on the materialized kernel table),
// and only then routes the guest's edges for congestion — the
// expensive half.
// Two gates skip that half early: a candidate whose measured dilation
// exceeds the cap (CapDilation pins the cap to the baseline's measured
// dilation) is discarded, and a candidate whose dilation-only score
// lower bound α·d + β + γ already exceeds the incumbent best score is
// pruned. Pruning depends on scheduling, but never changes the result:
// a pruned candidate's true score is strictly worse than the incumbent
// it was compared against, so the best candidate — lowest score, ties
// broken toward the lowest (earliest-tier) index — is deterministic,
// and so is the JSON artifact (volatile counters are excluded).
//
// The baseline candidate (first strategy, identity permutations) is
// always fully scored and verified, and reported next to the winner, so
// callers can see the dilation/congestion trade the search made.
package place

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// EmbedFunc builds a base embedding for one pair — typically core.Embed
// or core.EmbedViaPrimes. It must be safe for concurrent calls.
type EmbedFunc func(g, h grid.Spec) (*embed.Embedding, error)

// Strategy is a named base construction the search composes symmetry
// variants around.
type Strategy struct {
	Name  string
	Embed EmbedFunc
}

// Objective weighs the three placement costs. All weights must be
// non-negative and at least one positive; the zero value is replaced by
// DefaultObjective.
type Objective struct {
	// Alpha weighs the measured dilation (worst edge stretch).
	Alpha float64 `json:"alpha"`
	// Beta weighs the peak directed-link load (netsim congestion).
	Beta float64 `json:"beta"`
	// Gamma weighs the mean load of the links carrying any traffic.
	Gamma float64 `json:"gamma"`
}

// DefaultObjective weighs dilation and peak congestion equally and
// ignores mean link load.
func DefaultObjective() Objective { return Objective{Alpha: 1, Beta: 1} }

// Score evaluates the objective.
func (o Objective) Score(dilation, peak int, avgLink float64) float64 {
	return o.Alpha*float64(dilation) + o.Beta*float64(peak) + o.Gamma*avgLink
}

// ParseObjective parses the CLI weight form "α,β,γ", allowing "α,β"
// with γ = 0 — shared by the place and sweep commands.
func ParseObjective(s string) (Objective, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return Objective{}, fmt.Errorf("objective must look like 1,1 or 1,2,0.5, got %q", s)
	}
	weights := make([]float64, 3)
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Objective{}, fmt.Errorf("bad objective weight %q: %v", p, err)
		}
		weights[i] = w
	}
	return Objective{Alpha: weights[0], Beta: weights[1], Gamma: weights[2]}, nil
}

// lowerBound is the cheapest score a candidate with the given dilation
// can still reach. Adjacent guest nodes have distinct images, so every
// embeddable pair has dilation >= 1, at least one used link, and mean
// used-link load >= 1.
func (o Objective) lowerBound(dilation int) float64 { return o.Score(dilation, 1, 1) }

func (o Objective) validate() error {
	if o.Alpha < 0 || o.Beta < 0 || o.Gamma < 0 {
		return fmt.Errorf("place: objective weights must be non-negative, got (%g, %g, %g)", o.Alpha, o.Beta, o.Gamma)
	}
	return nil
}

// DefaultBudget caps the number of candidates a search constructs when
// the config does not say otherwise.
const DefaultBudget = 128

// Config describes one placement search.
type Config struct {
	// Guest and Host must have the same size.
	Guest, Host grid.Spec
	// Objective is the score being minimized; the zero value means
	// DefaultObjective.
	Objective Objective
	// Budget caps how many candidates are constructed and measured
	// (the deterministic enumeration is truncated after Budget entries;
	// the baseline is always first). <= 0 means DefaultBudget.
	Budget int
	// CapDilation discards every candidate whose measured dilation
	// exceeds the baseline's, so the winner trades congestion at equal
	// or better dilation.
	CapDilation bool
	// Rotations includes the digit-rotation generator (mesh sides
	// only; torus rotations are metric-invariant automorphisms).
	Rotations bool
	// Strategies are the base constructions; Strategies[0] is the
	// baseline the search reports against. At least one is required.
	Strategies []Strategy
}

func (cfg *Config) validate() error {
	if err := cfg.Guest.Shape.Validate(); err != nil {
		return fmt.Errorf("place: guest: %v", err)
	}
	if err := cfg.Host.Shape.Validate(); err != nil {
		return fmt.Errorf("place: host: %v", err)
	}
	if cfg.Guest.Size() != cfg.Host.Size() {
		return fmt.Errorf("place: guest %s has %d nodes but host %s has %d; sizes must match",
			cfg.Guest, cfg.Guest.Size(), cfg.Host, cfg.Host.Size())
	}
	if len(cfg.Strategies) == 0 {
		return fmt.Errorf("place: at least one strategy is required")
	}
	for _, s := range cfg.Strategies {
		if s.Name == "" || s.Embed == nil {
			return fmt.Errorf("place: every strategy needs a name and an embed function")
		}
	}
	if err := cfg.Objective.validate(); err != nil {
		return err
	}
	if (cfg.Objective == Objective{}) {
		cfg.Objective = DefaultObjective()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	return nil
}

// Spec renders the settings that determine a pair's search result —
// objective, budget, cap, rotation generator and strategy names — as
// one canonical string, with the zero-value defaults applied the way
// Search applies them. The census records it in its artifact so Merge
// refuses to combine shards searched under different settings (mixed
// settings would silently break the bit-for-bit merge invariant).
func (cfg Config) Spec() string {
	if (cfg.Objective == Objective{}) {
		cfg.Objective = DefaultObjective()
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	names := make([]string, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		names[i] = s.Name
	}
	return fmt.Sprintf("objective=%g,%g,%g budget=%d cap=%t rotations=%t strategies=%s",
		cfg.Objective.Alpha, cfg.Objective.Beta, cfg.Objective.Gamma,
		cfg.Budget, cfg.CapDilation, cfg.Rotations, strings.Join(names, "+"))
}

// Candidate is one fully scored placement candidate: the symmetry
// variant that produced it and its measured costs.
type Candidate struct {
	// Index is the candidate's position in the deterministic
	// enumeration (0 is the baseline); it breaks score ties.
	Index int `json:"index"`
	// Strategy is the name of the base construction strategy.
	Strategy string `json:"strategy"`
	// GuestPerm/HostPerm are the axis permutations applied around the
	// base construction (absent = identity).
	GuestPerm []int `json:"guest_perm,omitempty"`
	HostPerm  []int `json:"host_perm,omitempty"`
	// GuestRot/HostRot are the per-axis coordinate rotations (absent =
	// none).
	GuestRot []int `json:"guest_rot,omitempty"`
	HostRot  []int `json:"host_rot,omitempty"`
	// EmbedStrategy names the construction chain of the composite
	// embedding.
	EmbedStrategy string `json:"embed_strategy"`
	// Dilation and AvgDilation are measured over every guest edge.
	Dilation    int     `json:"dilation"`
	AvgDilation float64 `json:"avg_dilation"`
	// Peak and AvgLink are the congestion costs under dimension-ordered
	// routing.
	Peak    int     `json:"peak"`
	AvgLink float64 `json:"avg_link"`
	// Score is the objective value.
	Score float64 `json:"score"`
}

// Desc renders the symmetry variant compactly, e.g.
// "paper hperm=[1 0] grot=[0 2]".
func (c Candidate) Desc() string {
	s := c.Strategy
	if len(c.GuestPerm) > 0 {
		s += fmt.Sprintf(" gperm=%v", c.GuestPerm)
	}
	if len(c.HostPerm) > 0 {
		s += fmt.Sprintf(" hperm=%v", c.HostPerm)
	}
	if len(c.GuestRot) > 0 {
		s += fmt.Sprintf(" grot=%v", c.GuestRot)
	}
	if len(c.HostRot) > 0 {
		s += fmt.Sprintf(" hrot=%v", c.HostRot)
	}
	return s
}

// Result is the (serializable) outcome of one search. Every serialized
// field is deterministic for a given Config; fields that depend on
// scheduling or wall time are excluded from the artifact.
type Result struct {
	Version   int       `json:"version"`
	Guest     string    `json:"guest"`
	Host      string    `json:"host"`
	Objective Objective `json:"objective"`
	Budget    int       `json:"budget"`
	// CapDilation is the effective dilation cap (0 = none; otherwise
	// the baseline's measured dilation).
	CapDilation int `json:"cap_dilation"`
	// Space is the size of the full candidate space; Candidates is the
	// number enumerated within the budget.
	Space      int `json:"space"`
	Candidates int `json:"candidates"`
	// Unbuildable counts candidates whose base construction failed;
	// Invalid counts candidates whose construction produced a broken
	// (out-of-range or non-injective) embedding; Capped counts
	// candidates discarded by the dilation cap. All are deterministic.
	Unbuildable int `json:"unbuildable"`
	Invalid     int `json:"invalid"`
	Capped      int `json:"capped"`
	// Baseline is the paper pick (first strategy, identity symmetries),
	// always fully scored; Best is the objective winner.
	Baseline Candidate `json:"baseline"`
	Best     Candidate `json:"best"`

	// Pruned counts candidates whose congestion scoring was skipped
	// because their dilation-only bound already lost to the incumbent.
	// It depends on worker scheduling and is excluded from the
	// artifact, like Elapsed.
	Pruned  int           `json:"-"`
	Elapsed time.Duration `json:"-"`
	// BestEmbedding is the verified winning embedding, for callers
	// that want to use the placement rather than just read its costs.
	BestEmbedding *embed.Embedding `json:"-"`
}

// Improved reports whether the search found a candidate with a strictly
// better objective score than the paper baseline.
func (r *Result) Improved() bool { return r.Best.Score < r.Baseline.Score }

// searcher carries the immutable per-search state the candidate workers
// share.
type searcher struct {
	cfg     *Config
	tg      *taskgraph.Graph    // guest edge list, routed through the host
	nw      *netsim.Network     // the host machine
	rd      *grid.RankDistancer // compiled host distance
	cap     int                 // dilation cap (0 = none)
	scratch sync.Pool           // *measureBufs
}

// measureBufs is the per-worker scratch of the candidate pipeline: the
// gather buffer pair of the fused measurement pass and the bitset of
// the injectivity scan.
type measureBufs struct {
	a, b []int
	seen []uint32
}

func newSearcher(cfg *Config) *searcher {
	s := &searcher{
		cfg: cfg,
		tg:  taskgraph.FromSpec(cfg.Guest),
		nw:  netsim.New(cfg.Host),
		rd:  cfg.Host.NewRankDistancer(),
	}
	// Materialized (division-free) decode only pays off on the table
	// fast path, which kernels take when the guest is at or below the
	// materialization threshold; above it every candidate measures via
	// the embedding's own paths and the tables would be dead weight
	// (same gate as the census engine).
	if cfg.Guest.Size() <= embed.MaterializeThreshold() {
		s.rd.Materialize()
	}
	words := (cfg.Guest.Size() + 31) / 32
	s.scratch.New = func() any {
		return &measureBufs{
			a:    make([]int, grid.DefaultEdgeBlock),
			b:    make([]int, grid.DefaultEdgeBlock),
			seen: make([]uint32, words),
		}
	}
	return s
}

// validate rejects malformed candidate embeddings — an image out of the
// host's rank range or two guest nodes sharing one — before they reach
// the distance kernels, which index by host rank and would panic.
// Strategies are caller-injected, so the engine treats construction
// output as fallible, the way the census does.
func (s *searcher) validate(e *embed.Embedding) error {
	table, _ := e.Kernel().(embed.Table)
	if table == nil {
		return e.Verify()
	}
	sc := s.scratch.Get().(*measureBufs)
	defer s.scratch.Put(sc)
	if bad := table.CheckInjection(s.cfg.Guest.Size(), sc.seen); bad != nil {
		if bad.OutOfBounds {
			return fmt.Errorf("%s: image of guest rank %d (host rank %d) out of bounds for %s",
				e.Strategy, bad.GuestRank, bad.HostRank, s.cfg.Host)
		}
		return fmt.Errorf("%s: host rank %d has two pre-images (one is guest rank %d)",
			e.Strategy, bad.HostRank, bad.GuestRank)
	}
	return nil
}

// measure returns the dilation and average dilation of the embedding in
// one fused pass over the guest's edge blocks when the kernel is
// materialized, falling back to the embedding's own parallel paths.
func (s *searcher) measure(e *embed.Embedding) (int, float64) {
	table, _ := e.Kernel().(embed.Table)
	if table == nil {
		return e.Dilation(), e.AverageDilation()
	}
	sc := s.scratch.Get().(*measureBufs)
	defer s.scratch.Put(sc)
	return s.cfg.Guest.EdgeDilation(table, s.rd, sc.a, sc.b)
}

// congest routes the guest's edges through the host under the
// embedding's placement — the expensive half of scoring.
func (s *searcher) congest(e *embed.Embedding) (netsim.CongestionStats, error) {
	var p netsim.Placement
	if table, ok := e.Kernel().(embed.Table); ok {
		p = netsim.Placement(table)
	} else {
		p = netsim.PlacementFromEmbedding(e)
	}
	return netsim.Congestion(s.nw, s.tg, p)
}

// score finishes evaluating one candidate from its already-measured
// dilation costs: the congestion pass and the objective. Both the
// baseline and the worker loop go through here, so every candidate is
// scored on the same objective.
func (s *searcher) score(idx int, v variantSpec, e *embed.Embedding, dil int, avg float64) (Candidate, error) {
	c := v.describe(idx, s.cfg)
	c.EmbedStrategy = e.Strategy
	c.Dilation, c.AvgDilation = dil, avg
	stats, err := s.congest(e)
	if err != nil {
		return Candidate{}, err
	}
	c.Peak = stats.MaxLink
	c.AvgLink = stats.AvgLink()
	c.Score = s.cfg.Objective.Score(c.Dilation, c.Peak, c.AvgLink)
	return c, nil
}

// incumbent is the best fully scored candidate so far; ties go to the
// lowest index, so earlier tiers (and the baseline above all) win draws.
type incumbent struct {
	mu   sync.Mutex
	cand Candidate
}

func (in *incumbent) bound() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cand.Score
}

func (in *incumbent) offer(c Candidate) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if c.Score < in.cand.Score || (c.Score == in.cand.Score && c.Index < in.cand.Index) {
		in.cand = c
	}
}

// Search enumerates the candidate space of the config's pair, scores
// candidates concurrently with early pruning, and returns the
// deterministic best next to the paper baseline. It fails when the pair
// is invalid or the baseline strategy cannot embed it.
func Search(cfg Config) (*Result, error) {
	start := time.Now()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	variants, space := enumerate(&cfg)
	s := newSearcher(&cfg)

	base, err := buildVariant(&cfg, variants[0])
	if err != nil {
		return nil, fmt.Errorf("place: baseline strategy %s failed for %s -> %s: %v",
			cfg.Strategies[0].Name, cfg.Guest, cfg.Host, err)
	}
	if err := s.validate(base); err != nil {
		return nil, fmt.Errorf("place: baseline embedding is broken: %v", err)
	}
	baseDil, baseAvg := s.measure(base)
	baseline, err := s.score(0, variants[0], base, baseDil, baseAvg)
	if err != nil {
		return nil, fmt.Errorf("place: baseline scoring failed: %v", err)
	}
	if cfg.CapDilation {
		s.cap = baseline.Dilation
	}

	inc := &incumbent{cand: baseline}
	var mu sync.Mutex
	unbuildable, invalid, capped, pruned := 0, 0, 0, 0
	var firstErr error
	par.Blocks(len(variants)-1, 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			idx := k + 1
			v := variants[idx]
			e, err := buildVariant(&cfg, v)
			if err != nil {
				mu.Lock()
				unbuildable++
				mu.Unlock()
				continue
			}
			// A broken candidate is discarded, not fatal: only the
			// baseline is load-bearing.
			if err := s.validate(e); err != nil {
				mu.Lock()
				invalid++
				mu.Unlock()
				continue
			}
			dil, avg := s.measure(e)
			if s.cap > 0 && dil > s.cap {
				mu.Lock()
				capped++
				mu.Unlock()
				continue
			}
			// A candidate whose cheapest possible score is already
			// strictly worse than the incumbent cannot win or tie; skip
			// the routing pass. Strictness keeps the winner independent
			// of scheduling.
			if cfg.Objective.lowerBound(dil) > inc.bound() {
				mu.Lock()
				pruned++
				mu.Unlock()
				continue
			}
			c, err := s.score(idx, v, e, dil, avg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("place: candidate %d: %v", idx, err)
				}
				mu.Unlock()
				continue
			}
			inc.offer(c)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{
		Version:     ArtifactVersion,
		Guest:       cfg.Guest.String(),
		Host:        cfg.Host.String(),
		Objective:   cfg.Objective,
		Budget:      cfg.Budget,
		CapDilation: s.cap,
		Space:       space,
		Candidates:  len(variants),
		Unbuildable: unbuildable,
		Invalid:     invalid,
		Capped:      capped,
		Baseline:    baseline,
		Best:        inc.cand,
		Pruned:      pruned,
	}
	best := base
	if res.Best.Index != 0 {
		best, err = buildVariant(&cfg, variants[res.Best.Index])
		if err != nil {
			return nil, fmt.Errorf("place: rebuilding winner %d: %v", res.Best.Index, err)
		}
		if err := s.validate(best); err != nil {
			return nil, fmt.Errorf("place: winning embedding is broken: %v", err)
		}
	}
	res.BestEmbedding = best
	res.Elapsed = time.Since(start)
	return res, nil
}
