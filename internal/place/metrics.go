// Package-level instrumentation of the search engine, on the process
// default registry (the engine is a library: callers that want scoped
// counters run it in their own process, as the CLIs do). Every
// increment on the annealing path is a single lock-free atomic add —
// no locks, no allocation — so instrumented runs stay bit-identical
// in output and indistinguishable in profile from uninstrumented ones;
// the allocs gate and the obs-overhead benchmark both pin that.
package place

import "torusmesh/internal/obs"

var (
	annealRuns          = obs.Default().Counter("place_anneal_runs_total")
	annealSteps         = obs.Default().Counter("place_anneal_steps_total")
	annealAccepted      = obs.Default().Counter("place_anneal_moves_accepted_total")
	annealRejected      = obs.Default().Counter("place_anneal_moves_rejected_total")
	annealRevalidations = obs.Default().Counter("place_anneal_revalidations_total")
)

func init() {
	obs.Default().Describe("place_anneal_runs_total", "Annealing runs started.")
	obs.Default().Describe("place_anneal_steps_total", "Annealing steps proposed across all runs.")
	obs.Default().Describe("place_anneal_moves_accepted_total", "Annealing moves accepted (downhill or Metropolis).")
	obs.Default().Describe("place_anneal_moves_rejected_total", "Annealing moves rejected and undone.")
	obs.Default().Describe("place_anneal_revalidations_total", "Incremental-cost re-validations against a full measurement.")
}
