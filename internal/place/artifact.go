// Artifact serialization. A search result serializes to a versioned
// JSON document whose encoding is deterministic for a given Config —
// struct field order is fixed, and the fields that depend on worker
// scheduling (pruned count) or wall time are excluded — so repeated
// searches of the same pair produce identical bytes, the property the
// CI smoke diff relies on.

package place

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ArtifactVersion is the schema version stamped into every artifact.
// Decode rejects artifacts from other versions.
//
// Version history:
//
//	1: single scalarized winner (baseline + best).
//	2: Pareto-front search — the "front" block (non-dominated
//	   candidates over dilation/peak/avg-link in cost order), the
//	   mid-rotation candidate fields ("mid_rot"), and the annealing
//	   refinement fields ("annealed", "anneal_wins", "seed", and the
//	   per-candidate "annealed"/"annealed_from" provenance).
//	3: incremental annealing engine — seeds drawn from the whole
//	   scored set (front first; "anneal_seeds_skipped" reports cap
//	   truncation), the size gate lifted, the "moves" repertoire
//	   token in the search spec, and congestion pruning disabled
//	   under annealing. Fronts from annealed searches are not
//	   comparable across the bump, so pre-upgrade journals and shard
//	   artifacts must not fold into post-upgrade searches.
const ArtifactVersion = 3

// Encode writes the result as deterministic, human-readable JSON.
func Encode(w io.Writer, r *Result) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("place: encode: %v", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// EncodeBytes returns the result's artifact encoding.
func (r *Result) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile saves the artifact to path.
func (r *Result) WriteFile(path string) error {
	data, err := r.EncodeBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode reads one artifact, rejecting incompatible schema versions.
// Decoded results carry costs only — the winning embedding itself is
// not serialized and must be rebuilt by a fresh Search.
func Decode(r io.Reader) (*Result, error) {
	var res Result
	if err := json.NewDecoder(r).Decode(&res); err != nil {
		return nil, fmt.Errorf("place: decode: %v", err)
	}
	if res.Version != ArtifactVersion {
		return nil, fmt.Errorf("place: artifact version %d is incompatible (want %d)", res.Version, ArtifactVersion)
	}
	return &res, nil
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return res, nil
}
