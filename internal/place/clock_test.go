package place

import (
	"sync/atomic"
	"testing"
	"time"

	"torusmesh/internal/grid"
)

// TestClockInjection proves Config.Clock substitutes the wall clock
// behind Result.Elapsed and the per-run annealing timings: with a
// stepping fake, Elapsed spans exactly the first-to-last clock reads
// and every AnnealRuns duration is a whole number of ticks. The fake
// must be goroutine-safe — annealing runs read it from par.Blocks.
func TestClockInjection(t *testing.T) {
	const tick = time.Minute
	var reads atomic.Int64
	base := time.Unix(0, 0)
	res, err := Search(Config{
		Guest:       grid.TorusSpec(8, 2),
		Host:        grid.MeshSpec(4, 4),
		Budget:      8,
		Anneal:      true,
		AnnealSteps: 64,
		Strategies:  DefaultStrategies(),
		Clock: func() time.Time {
			return base.Add(time.Duration(reads.Add(1)) * tick)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Search's start read is the first, its Elapsed read the last.
	want := time.Duration(reads.Load()-1) * tick
	if res.Elapsed != want {
		t.Errorf("Elapsed = %v, want %v (%d clock reads)", res.Elapsed, want, reads.Load())
	}
	if len(res.AnnealRuns) == 0 {
		t.Fatal("no annealing runs recorded")
	}
	for _, ar := range res.AnnealRuns {
		if ar.Elapsed <= 0 || ar.Elapsed%tick != 0 {
			t.Errorf("anneal seed %d: Elapsed = %v, not a positive tick multiple", ar.SeedIndex, ar.Elapsed)
		}
	}
}
