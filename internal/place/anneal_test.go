package place

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
)

// annealRunFull is the pre-incremental annealing loop, preserved as the
// reference the incremental engine is pinned against: every step fully
// re-measures the swapped placement with evalTable. It mutates tab.
func (s *searcher) annealRunFull(tab embed.Table, start tableCosts, steps int, rng *rand.Rand) (embed.Table, tableCosts, error) {
	n := len(tab)
	cur := start
	bestTab := append(embed.Table(nil), tab...)
	best := start
	t0 := 1 + 0.1*start.score
	const tEnd = 0.01
	for step := 0; step < steps; step++ {
		temp := t0 * math.Pow(tEnd/t0, float64(step)/float64(steps))
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		tab[i], tab[j] = tab[j], tab[i]
		c, err := s.evalTable(tab)
		if err != nil {
			return nil, tableCosts{}, err
		}
		delta := c.score - cur.score
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = c
			if c.score < best.score || c.dominatesCosts(best) {
				best = c
				copy(bestTab, tab)
			}
		} else {
			tab[i], tab[j] = tab[j], tab[i]
		}
	}
	return bestTab, best, nil
}

// annealSearcher builds a validated searcher plus a scrambled start
// table and its exact costs for direct annealRun tests.
func annealSearcher(t testing.TB, guest, host grid.Spec, moves string) (*searcher, embed.Table, tableCosts) {
	t.Helper()
	cfg := Config{
		Guest:       guest,
		Host:        host,
		Anneal:      true,
		AnnealMoves: moves,
		Strategies:  DefaultStrategies(),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	s := newSearcher(&cfg)
	n := guest.Size()
	tab := make(embed.Table, n)
	for i := range tab {
		tab[i] = (i * 5) % n // gcd(5, n) = 1 for the test sizes: a bijection
	}
	start, err := s.evalTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	return s, tab, start
}

// TestAnnealIncrementalMatchesFull: with the default swap repertoire,
// the incremental engine consumes the RNG exactly as the full
// re-measurement loop did, so a fixed seed and step budget must
// reproduce the reference's best table and costs bit-for-bit.
func TestAnnealIncrementalMatchesFull(t *testing.T) {
	cases := []struct {
		guest, host grid.Spec
		steps       int
	}{
		{grid.MustSpec(grid.Torus, grid.Shape{16}), grid.TorusSpec(4, 4), 512},
		{grid.MeshSpec(6, 4), grid.MeshSpec(8, 3), 512},
		{grid.TorusSpec(16, 16), grid.MeshSpec(16, 16), 96},
	}
	for _, tc := range cases {
		s, tab, start := annealSearcher(t, tc.guest, tc.host, DefaultAnnealMoves)
		for seed := int64(1); seed <= 3; seed++ {
			gotTab, got, err := s.annealRun(append(embed.Table(nil), tab...), start, tc.steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			wantTab, want, err := s.annealRunFull(append(embed.Table(nil), tab...), start, tc.steps, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s -> %s seed %d: incremental best %+v, full-eval best %+v",
					tc.guest, tc.host, seed, got, want)
			}
			for i := range wantTab {
				if gotTab[i] != wantTab[i] {
					t.Fatalf("%s -> %s seed %d: best tables diverge at guest %d: %d vs %d",
						tc.guest, tc.host, seed, i, gotTab[i], wantTab[i])
				}
			}
		}
	}
}

// TestStateCostsMatchEval drives a load state through random swaps,
// segment reversals and plane swaps, checking after every move that the
// incrementally derived cost vector — score included — equals a full
// evalTable measurement exactly. This is the engine-level delta-vs-full
// property the annealing acceptance decisions depend on.
func TestStateCostsMatchEval(t *testing.T) {
	s, tab, _ := annealSearcher(t, grid.TorusSpec(6, 4), grid.MeshSpec(4, 6), AnnealMovesAll)
	ls, err := netsim.NewLoadState(s.nw, s.tg, netsim.Placement(tab))
	if err != nil {
		t.Fatal(err)
	}
	ms := s.newMoveScratch()
	rng := rand.New(rand.NewSource(5))
	n := len(tab)
	moves := 80
	if testing.Short() {
		moves = 20
	}
	for m := 0; m < moves; m++ {
		switch rng.Intn(3) {
		case 0:
			i := rng.Intn(n)
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ls.Swap(i, j)
		case 1:
			if !ms.reverseSegment(ls, rng, n) {
				t.Fatal("reverseSegment refused a multi-node host")
			}
			ls.Permute(ms.guests, ms.newHosts)
		default:
			if !ms.planeSwap(ls, rng, n) {
				t.Fatal("planeSwap refused a multi-node host")
			}
			ls.Permute(ms.guests, ms.newHosts)
		}
		snap := make(embed.Table, n)
		ls.CopyTableInto(snap)
		want, err := s.evalTable(snap)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.stateCosts(ls); got != want {
			t.Fatalf("move %d: incremental costs %+v, evalTable %+v", m, got, want)
		}
	}
}

// TestAnnealExtendedMoves: the extended repertoire must run its
// internal revalidation clean and keep the admission invariant — every
// annealed front member strictly dominates its seed.
func TestAnnealExtendedMoves(t *testing.T) {
	res, err := Search(Config{
		Guest:       grid.MustSpec(grid.Torus, grid.Shape{16}),
		Host:        grid.TorusSpec(4, 4),
		Budget:      8,
		Anneal:      true,
		AnnealSteps: 512,
		AnnealMoves: AnnealMovesAll,
		Strategies:  DefaultStrategies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Annealed == 0 {
		t.Fatal("no annealing runs with the extended repertoire")
	}
	byIndex := map[int]Candidate{}
	for _, c := range res.Front {
		byIndex[c.Index] = c
	}
	for _, c := range res.Front {
		if c.Annealed {
			if seed, ok := byIndex[c.AnnealedFrom]; ok && !dominates(c, seed) {
				t.Errorf("annealed candidate %d does not dominate its seed %d", c.Index, c.AnnealedFrom)
			}
		}
	}
}

// TestAnnealMovesValidation: unknown repertoires are rejected; the spec
// string carries the moves token.
func TestAnnealMovesValidation(t *testing.T) {
	cfg := Config{
		Guest:       grid.MustSpec(grid.Torus, grid.Shape{16}),
		Host:        grid.TorusSpec(4, 4),
		Anneal:      true,
		AnnealMoves: "jumble",
		Strategies:  DefaultStrategies(),
	}
	if _, err := Search(cfg); err == nil {
		t.Error("unknown anneal move repertoire accepted")
	}
	cfg.AnnealMoves = ""
	spec := cfg.Spec()
	if !bytes.Contains([]byte(spec), []byte("moves=swap")) {
		t.Errorf("spec %q lacks the default moves token", spec)
	}
}

// TestAnnealLargePairDeterministic: the lifted size gate must hold in
// practice — a 4096-node pair anneals to completion, and the artifact
// is bit-identical across runs and GOMAXPROCS settings.
func TestAnnealLargePairDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("large pair in -short mode")
	}
	cfg := Config{
		Guest:       grid.TorusSpec(16, 16, 16),
		Host:        grid.MeshSpec(16, 16, 16),
		Budget:      4,
		Anneal:      true,
		AnnealSteps: 128,
		AnnealMoves: AnnealMovesAll,
		Strategies:  DefaultStrategies(),
	}
	encode := func() []byte {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Annealed == 0 {
			t.Fatal("no annealing runs on the large pair — the size gate is back?")
		}
		data, err := res.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := encode()
	if got := encode(); !bytes.Equal(first, got) {
		t.Fatalf("second run produced a different artifact:\n%s\nvs\n%s", first, got)
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := encode(); !bytes.Equal(first, got) {
		t.Fatalf("GOMAXPROCS=2 produced a different artifact:\n%s\nvs\n%s", first, got)
	}
}

// TestAnnealWideTablesParity: the table width is pure representation —
// a search with WideTables must produce the byte-identical artifact of
// the default compact mode (and Config.Spec must not change, so shard
// merges across the two are legal).
func TestAnnealWideTablesParity(t *testing.T) {
	cfg := Config{
		Guest:       grid.TorusSpec(6, 4),
		Host:        grid.MeshSpec(4, 6),
		Budget:      8,
		Anneal:      true,
		AnnealSteps: 256,
		AnnealMoves: AnnealMovesAll,
		Strategies:  DefaultStrategies(),
	}
	encode := func(cfg Config) []byte {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	compact := encode(cfg)
	wideCfg := cfg
	wideCfg.WideTables = true
	if wide := encode(wideCfg); !bytes.Equal(compact, wide) {
		t.Fatalf("wide tables changed the artifact:\n%s\nvs\n%s", compact, wide)
	}
	if cfg.Spec() != wideCfg.Spec() {
		t.Fatalf("WideTables leaked into Config.Spec: %q vs %q", cfg.Spec(), wideCfg.Spec())
	}
}

// TestAnnealSeedsFromScored: seed selection starts with the front and
// tops up from the scored set by (score, index); the skipped count
// reports cap truncation.
func TestAnnealSeedsFromScored(t *testing.T) {
	mk := func(idx int, dil, peak int, score float64) Candidate {
		return Candidate{Index: idx, Dilation: dil, Peak: peak, Score: score}
	}
	scored := []Candidate{
		mk(0, 1, 3, 4), mk(1, 2, 2, 4.5), mk(2, 3, 1, 5),
		mk(3, 3, 3, 6), mk(4, 2, 4, 3.9),
	}
	front := []Candidate{scored[0], scored[1], scored[2]}
	seeds, skipped := annealSeeds(scored, front)
	if skipped != 0 {
		t.Errorf("skipped = %d, want 0 (5 eligible, cap 8)", skipped)
	}
	wantOrder := []int{0, 1, 2, 4, 3} // front order, then rest by score
	if len(seeds) != len(wantOrder) {
		t.Fatalf("got %d seeds, want %d", len(seeds), len(wantOrder))
	}
	for i, idx := range wantOrder {
		if seeds[i].Index != idx {
			t.Errorf("seed %d has index %d, want %d", i, seeds[i].Index, idx)
		}
	}
	// Overflow: 10 scored, cap 8 -> 2 skipped.
	for i := 5; i < 10; i++ {
		scored = append(scored, mk(i, 4, 4, 10+float64(i)))
	}
	seeds, skipped = annealSeeds(scored, front)
	if len(seeds) != annealMaxSeeds || skipped != 2 {
		t.Errorf("got %d seeds with %d skipped, want %d and 2", len(seeds), skipped, annealMaxSeeds)
	}
}

// BenchmarkAnnealStep compares the per-move cost of the incremental
// engine against the retired full re-measurement loop on a 256-node
// pair — the speedup that lifted the anneal size gate.
func BenchmarkAnnealStep(b *testing.B) {
	run := func(b *testing.B, full bool) {
		s, tab, start := annealSearcher(b, grid.TorusSpec(16, 16), grid.MeshSpec(16, 16), DefaultAnnealMoves)
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		var err error
		if full {
			_, _, err = s.annealRunFull(append(embed.Table(nil), tab...), start, b.N, rng)
		} else {
			_, _, err = s.annealRun(append(embed.Table(nil), tab...), start, b.N, rng)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, false) })
	b.Run("full", func(b *testing.B) { run(b, true) })
}
