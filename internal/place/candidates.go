// Candidate enumeration: the deterministic, tiered generation of
// symmetry variants around the base strategies, and the construction of
// one variant's composite embedding
//
//	hostRot ∘ hostPermBack ∘ base(guestPerm(G) → hostPerm(H)) ∘ guestPerm ∘ guestRot.
//
// The enumeration order is the contract the budget and the score
// tie-break rely on: index 0 is the paper baseline, earlier tiers hold
// the cheaper/simpler variants, and a truncated budget still samples
// every generator before the permutation cross product.

package place

import (
	"fmt"

	"torusmesh/internal/catalog"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// maxPermDim caps the dimension up to which axis permutations are
// enumerated: beyond it the factorial group would dwarf any budget, so
// only the identity ordering is kept.
const maxPermDim = 7

// variantSpec describes one candidate before construction. nil perms
// and rotations mean identity/none.
type variantSpec struct {
	strategy     int // index into Config.Strategies
	gperm, hperm perm.Perm
	grot, hrot   []int
}

// key is the dedup identity of a variant.
func (v variantSpec) key() string {
	return fmt.Sprintf("%d|%v|%v|%v|%v", v.strategy, v.gperm, v.hperm, v.grot, v.hrot)
}

// describe fills the serializable form of the variant.
func (v variantSpec) describe(idx int, cfg *Config) Candidate {
	c := Candidate{Index: idx, Strategy: cfg.Strategies[v.strategy].Name}
	c.GuestPerm = append([]int(nil), v.gperm...)
	c.HostPerm = append([]int(nil), v.hperm...)
	c.GuestRot = append([]int(nil), v.grot...)
	c.HostRot = append([]int(nil), v.hrot...)
	return c
}

// guestPerms returns the guest-side permutation generator: distinct
// axis orderings only, since equal-length guest axis swaps are
// automorphisms that leave every metric unchanged.
func guestPerms(s grid.Shape) []perm.Perm {
	if s.Dim() > maxPermDim {
		return []perm.Perm{perm.Identity(s.Dim())}
	}
	return catalog.AxisOrderings(s)
}

// hostPerms returns the host-side permutation generator: the full
// permutation group, because even an equal-length host axis swap
// reorders dimension-ordered routing and changes congestion.
func hostPerms(s grid.Shape) []perm.Perm {
	if s.Dim() > maxPermDim {
		return []perm.Perm{perm.Identity(s.Dim())}
	}
	return perm.All(s.Dim())
}

// rotOffsets returns the rotation amounts tried on one axis of length
// l: a unit twist, the half turn, and the inverse unit twist.
func rotOffsets(l int) []int {
	out := []int{1}
	if h := l / 2; h > 1 {
		out = append(out, h)
	}
	if l-1 > l/2 && l-1 > 1 {
		out = append(out, l-1)
	}
	return out
}

// isIdentity reports whether p maps every position to itself.
func isIdentity(p perm.Perm) bool {
	for j, v := range p {
		if v != j {
			return false
		}
	}
	return true
}

// rotationSide returns the single-axis rotation count of one side of
// the pair: zero for toruses, where rotations are metric-invariant.
func rotationSide(sp grid.Spec) int {
	if sp.Kind != grid.Mesh {
		return 0
	}
	n := 0
	for _, l := range sp.Shape {
		n += len(rotOffsets(l))
	}
	return n
}

// enumerate generates the budget-truncated candidate list and the size
// of the full space. The baseline (first strategy, identity
// symmetries) is always entry 0. Generation stops as soon as the
// budget is filled — the space size is computed arithmetically, so a
// small budget never pays for a factorial cross product — and the
// deduped tier walk makes both the list and the count independent of
// the budget prefix they share.
func enumerate(cfg *Config) ([]variantSpec, int) {
	gps := guestPerms(cfg.Guest.Shape)
	hps := hostPerms(cfg.Host.Shape)
	// Tiers 0-2 are subsets of the tier-4 cross product, and rotation
	// variants never collide with permutation variants, so the deduped
	// space is exactly:
	rotations := 0
	if cfg.Rotations {
		rotations = rotationSide(cfg.Guest) + rotationSide(cfg.Host)
	}
	space := len(cfg.Strategies) * (len(gps)*len(hps) + rotations)

	all := make([]variantSpec, 0, min(cfg.Budget, space))
	seen := map[string]bool{}
	full := func() bool { return len(all) >= cfg.Budget }
	add := func(v variantSpec) {
		k := v.key()
		if seen[k] {
			return
		}
		seen[k] = true
		all = append(all, v)
	}
	norm := func(p perm.Perm) perm.Perm {
		if isIdentity(p) {
			return nil
		}
		return p
	}

	// Tier 0: every strategy at identity symmetries (baseline first).
	for si := range cfg.Strategies {
		if full() {
			return all, space
		}
		add(variantSpec{strategy: si})
	}
	// Tier 1: host axis permutations — the congestion lever that keeps
	// dilation intact.
	for si := range cfg.Strategies {
		for _, hp := range hps {
			if full() {
				return all, space
			}
			add(variantSpec{strategy: si, hperm: norm(hp)})
		}
	}
	// Tier 2: guest axis permutations — changes the construction
	// variant, hence possibly the dilation too.
	for si := range cfg.Strategies {
		for _, gp := range gps {
			if full() {
				return all, space
			}
			add(variantSpec{strategy: si, gperm: norm(gp)})
		}
	}
	// Tier 3: single-axis digit rotations, mesh sides only (torus
	// rotations are metric-invariant automorphisms).
	if cfg.Rotations {
		for si := range cfg.Strategies {
			if cfg.Guest.Kind == grid.Mesh {
				for j, l := range cfg.Guest.Shape {
					for _, r := range rotOffsets(l) {
						if full() {
							return all, space
						}
						rot := make([]int, cfg.Guest.Dim())
						rot[j] = r
						add(variantSpec{strategy: si, grot: rot})
					}
				}
			}
			if cfg.Host.Kind == grid.Mesh {
				for j, l := range cfg.Host.Shape {
					for _, r := range rotOffsets(l) {
						if full() {
							return all, space
						}
						rot := make([]int, cfg.Host.Dim())
						rot[j] = r
						add(variantSpec{strategy: si, hrot: rot})
					}
				}
			}
		}
	}
	// Tier 4: the guest × host permutation cross product.
	for si := range cfg.Strategies {
		for _, gp := range gps {
			for _, hp := range hps {
				if full() {
					return all, space
				}
				add(variantSpec{strategy: si, gperm: norm(gp), hperm: norm(hp)})
			}
		}
	}
	return all, space
}

// buildVariant constructs the composite embedding of one variant. Every
// step is injective, so the composition is; Search verifies the
// baseline and the winner as a safety net.
func buildVariant(cfg *Config, v variantSpec) (*embed.Embedding, error) {
	g, h := cfg.Guest, cfg.Host
	var steps []*embed.Embedding
	if v.grot != nil {
		rot, err := embed.Rotate(g, v.grot)
		if err != nil {
			return nil, err
		}
		steps = append(steps, rot)
	}
	cur := g
	if v.gperm != nil {
		p, err := embed.Permute(cur, v.gperm, cur.Kind)
		if err != nil {
			return nil, err
		}
		steps = append(steps, p)
		cur = p.To
	}
	hp := h
	if v.hperm != nil {
		hp = grid.Spec{Kind: h.Kind, Shape: grid.Shape(perm.Apply(v.hperm, h.Shape))}
	}
	base, err := cfg.Strategies[v.strategy].Embed(cur, hp)
	if err != nil {
		return nil, err
	}
	steps = append(steps, base)
	if v.hperm != nil {
		back, err := embed.Permute(hp, perm.Perm(v.hperm).Inverse(), h.Kind)
		if err != nil {
			return nil, err
		}
		if !back.To.Shape.Equal(h.Shape) {
			return nil, fmt.Errorf("place: internal error: host permutation %v does not invert for %s", v.hperm, h)
		}
		steps = append(steps, back)
	}
	if v.hrot != nil {
		rot, err := embed.Rotate(h, v.hrot)
		if err != nil {
			return nil, err
		}
		steps = append(steps, rot)
	}
	return embed.ComposeAll(steps...)
}
