// Candidate enumeration: the deterministic, tiered generation of
// symmetry variants around the base strategies, and the construction of
// one variant's composite embedding
//
//	hostRot ∘ hostPermBack ∘ base(guestPerm(G) → hostPerm(H)) ∘ guestPerm ∘ guestRot
//
// where base is the strategy's construction, optionally rebuilt around
// a rotation of its intermediate stage (mid-rotation variants).
//
// The enumeration order is the contract the budget and the score
// tie-break rely on: index 0 is the paper baseline, earlier tiers hold
// the cheaper/simpler variants, and a truncated budget still samples
// every generator before the permutation cross product.
//
// Construction is split in two so candidates stay cheap: everything up
// to and including the base construction (buildBase) is cached per
// distinct (strategy, guest symmetries, mid rotation, permuted host
// shape), and the host-side symmetries — the permutation back from the
// permuted host and the host rotation — are pure relabelings of host
// ranks, post-composed onto the cached base as a single table fusion
// (embed.PostCompose). On hosts with equal-length axes every member of
// the host permutation group targets the same permuted shape, so the
// whole tier shares one construction.

package place

import (
	"fmt"

	"torusmesh/internal/catalog"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// maxPermDim caps the dimension up to which axis permutations are
// enumerated: beyond it the factorial group would dwarf any budget, so
// only the identity ordering is kept.
const maxPermDim = 7

// variantSpec describes one candidate before construction. nil perms
// and rotations mean identity/none.
type variantSpec struct {
	strategy     int // index into Config.Strategies
	gperm, hperm perm.Perm
	grot, hrot   []int
	midrot       []int // rotation of the strategy's intermediate stage
}

// key is the dedup identity of a variant.
func (v variantSpec) key() string {
	return fmt.Sprintf("%d|%v|%v|%v|%v|%v", v.strategy, v.gperm, v.hperm, v.grot, v.hrot, v.midrot)
}

// describe fills the serializable form of the variant.
func (v variantSpec) describe(idx int, cfg *Config) Candidate {
	c := Candidate{Index: idx, Strategy: cfg.Strategies[v.strategy].Name}
	c.GuestPerm = append([]int(nil), v.gperm...)
	c.HostPerm = append([]int(nil), v.hperm...)
	c.GuestRot = append([]int(nil), v.grot...)
	c.HostRot = append([]int(nil), v.hrot...)
	c.MidRot = append([]int(nil), v.midrot...)
	return c
}

// guestPerms returns the guest-side permutation generator: distinct
// axis orderings only, since equal-length guest axis swaps are
// automorphisms that leave every metric unchanged.
func guestPerms(s grid.Shape) []perm.Perm {
	if s.Dim() > maxPermDim {
		return []perm.Perm{perm.Identity(s.Dim())}
	}
	return catalog.AxisOrderings(s)
}

// hostPerms returns the host-side permutation generator: the full
// permutation group, because even an equal-length host axis swap
// reorders dimension-ordered routing and changes congestion.
func hostPerms(s grid.Shape) []perm.Perm {
	if s.Dim() > maxPermDim {
		return []perm.Perm{perm.Identity(s.Dim())}
	}
	return perm.All(s.Dim())
}

// rotOffsets returns the rotation amounts tried on one axis of length
// l: a unit twist, the half turn, and the inverse unit twist.
func rotOffsets(l int) []int {
	out := []int{1}
	if h := l / 2; h > 1 {
		out = append(out, h)
	}
	if l-1 > l/2 && l-1 > 1 {
		out = append(out, l-1)
	}
	return out
}

// isIdentity reports whether p maps every position to itself.
func isIdentity(p perm.Perm) bool {
	for j, v := range p {
		if v != j {
			return false
		}
	}
	return true
}

// rotationSide returns the single-axis rotation count of one side of
// the pair: zero for toruses, where rotations are metric-invariant.
func rotationSide(sp grid.Spec) int {
	if sp.Kind != grid.Mesh {
		return 0
	}
	n := 0
	for _, l := range sp.Shape {
		n += len(rotOffsets(l))
	}
	return n
}

// midRotations returns the single-axis rotations of a strategy's
// intermediate stage for the pair, or nil when the strategy exposes no
// intermediate. Unlike host/guest rotations these are enumerated for
// torus intermediates too: rotating the intermediate changes which of
// its nodes the second stage coarsens together, so the composite is a
// new embedding even when the rotation is an automorphism of the
// intermediate itself.
func midRotations(cfg *Config, si int) [][]int {
	st := cfg.Strategies[si]
	if st.Mid == nil {
		return nil
	}
	mid, ok := st.Mid(cfg.Guest, cfg.Host)
	if !ok {
		return nil
	}
	var out [][]int
	for j, l := range mid.Shape {
		for _, r := range rotOffsets(l) {
			rot := make([]int, mid.Dim())
			rot[j] = r
			out = append(out, rot)
		}
	}
	return out
}

// enumerate generates the budget-truncated candidate list and the size
// of the full space. The baseline (first strategy, identity
// symmetries) is always entry 0. Generation stops as soon as the
// budget is filled — the space size is computed arithmetically, so a
// small budget never pays for a factorial cross product — and the
// deduped tier walk makes both the list and the count independent of
// the budget prefix they share.
func enumerate(cfg *Config) ([]variantSpec, int) {
	gps := guestPerms(cfg.Guest.Shape)
	hps := hostPerms(cfg.Host.Shape)
	// Tiers 0-2 are subsets of the tier-5 cross product, and rotation /
	// mid-rotation variants never collide with permutation variants, so
	// the deduped space is exactly:
	rotations := 0
	if cfg.Rotations {
		rotations = rotationSide(cfg.Guest) + rotationSide(cfg.Host)
	}
	space := 0
	midrots := make([][][]int, len(cfg.Strategies))
	for si := range cfg.Strategies {
		midrots[si] = midRotations(cfg, si)
		space += len(gps)*len(hps) + rotations + len(midrots[si])
	}

	all := make([]variantSpec, 0, min(cfg.Budget, space))
	seen := map[string]bool{}
	full := func() bool { return len(all) >= cfg.Budget }
	add := func(v variantSpec) {
		k := v.key()
		if seen[k] {
			return
		}
		seen[k] = true
		all = append(all, v)
	}
	norm := func(p perm.Perm) perm.Perm {
		if isIdentity(p) {
			return nil
		}
		return p
	}

	// Tier 0: every strategy at identity symmetries (baseline first).
	for si := range cfg.Strategies {
		if full() {
			return all, space
		}
		add(variantSpec{strategy: si})
	}
	// Tier 1: host axis permutations — the congestion lever that keeps
	// dilation intact.
	for si := range cfg.Strategies {
		for _, hp := range hps {
			if full() {
				return all, space
			}
			add(variantSpec{strategy: si, hperm: norm(hp)})
		}
	}
	// Tier 2: guest axis permutations — changes the construction
	// variant, hence possibly the dilation too.
	for si := range cfg.Strategies {
		for _, gp := range gps {
			if full() {
				return all, space
			}
			add(variantSpec{strategy: si, gperm: norm(gp)})
		}
	}
	// Tier 3: single-axis digit rotations, mesh sides only (torus
	// rotations are metric-invariant automorphisms).
	if cfg.Rotations {
		for si := range cfg.Strategies {
			if cfg.Guest.Kind == grid.Mesh {
				for j, l := range cfg.Guest.Shape {
					for _, r := range rotOffsets(l) {
						if full() {
							return all, space
						}
						rot := make([]int, cfg.Guest.Dim())
						rot[j] = r
						add(variantSpec{strategy: si, grot: rot})
					}
				}
			}
			if cfg.Host.Kind == grid.Mesh {
				for j, l := range cfg.Host.Shape {
					for _, r := range rotOffsets(l) {
						if full() {
							return all, space
						}
						rot := make([]int, cfg.Host.Dim())
						rot[j] = r
						add(variantSpec{strategy: si, hrot: rot})
					}
				}
			}
		}
	}
	// Tier 4: rotations of each strategy's intermediate stage —
	// genuinely new base embeddings, not symmetry variants of old ones.
	for si := range cfg.Strategies {
		for _, rot := range midrots[si] {
			if full() {
				return all, space
			}
			add(variantSpec{strategy: si, midrot: rot})
		}
	}
	// Tier 5: the guest × host permutation cross product.
	for si := range cfg.Strategies {
		for _, gp := range gps {
			for _, hp := range hps {
				if full() {
					return all, space
				}
				add(variantSpec{strategy: si, gperm: norm(gp), hperm: norm(hp)})
			}
		}
	}
	return all, space
}

// permutedHost returns the host the variant's construction targets: the
// axis-permuted host, or the host itself.
func permutedHost(h grid.Spec, hperm perm.Perm) grid.Spec {
	if hperm == nil {
		return h
	}
	return grid.Spec{Kind: h.Kind, Shape: grid.Shape(perm.Apply(hperm, h.Shape))}
}

// baseKey identifies the construction half of a variant: the strategy,
// the guest-side pre-symmetries, the mid rotation, and the permuted
// host shape the construction targets. Variants sharing a key share
// one constructed (and materialized) embedding.
func (v variantSpec) baseKey(hp grid.Spec) string {
	return fmt.Sprintf("%d|%v|%v|%v|%s", v.strategy, v.gperm, v.grot, v.midrot, hp.Shape)
}

// buildBase constructs the cached half of a variant: guest rotation,
// guest permutation, then the strategy's construction into the permuted
// host (around a rotated intermediate for mid-rotation variants).
func buildBase(cfg *Config, v variantSpec, hp grid.Spec) (*embed.Embedding, error) {
	g := cfg.Guest
	var steps []*embed.Embedding
	if v.grot != nil {
		rot, err := embed.Rotate(g, v.grot)
		if err != nil {
			return nil, err
		}
		steps = append(steps, rot)
	}
	cur := g
	if v.gperm != nil {
		p, err := embed.Permute(cur, v.gperm, cur.Kind)
		if err != nil {
			return nil, err
		}
		steps = append(steps, p)
		cur = p.To
	}
	st := cfg.Strategies[v.strategy]
	var base *embed.Embedding
	var err error
	if v.midrot != nil {
		base, err = st.EmbedMidRot(cur, hp, v.midrot)
	} else {
		base, err = st.Embed(cur, hp)
	}
	if err != nil {
		return nil, err
	}
	steps = append(steps, base)
	return embed.ComposeAll(steps...)
}

// postParts returns the host-side relabeling of a variant as a rank
// table over the host plus its strategy-chain suffix, or (nil, "") for
// the identity. The table is the fused permute-back ∘ host-rotation
// map — a pure bijection of host ranks.
func postParts(cfg *Config, v variantSpec) (embed.Table, string, error) {
	h := cfg.Host
	var post embed.Table
	var name string
	if v.hperm != nil {
		hp := permutedHost(h, v.hperm)
		back, err := embed.Permute(hp, perm.Perm(v.hperm).Inverse(), h.Kind)
		if err != nil {
			return nil, "", err
		}
		if !back.To.Shape.Equal(h.Shape) {
			return nil, "", fmt.Errorf("place: internal error: host permutation %v does not invert for %s", v.hperm, h)
		}
		post = append(embed.Table(nil), embed.Materialize(back.Kernel(), h.Size())...)
		name = back.Strategy
	}
	if v.hrot != nil {
		rot, err := embed.Rotate(h, v.hrot)
		if err != nil {
			return nil, "", err
		}
		rt := embed.Materialize(rot.Kernel(), h.Size())
		if post == nil {
			post = append(embed.Table(nil), rt...)
			name = rot.Strategy
		} else {
			post = embed.FuseTables(post, rt)
			name += " ∘ " + rot.Strategy
		}
	}
	return post, name, nil
}

// buildVariant constructs the composite embedding of one variant from
// scratch — the uncached reference builder. The searcher's cached
// build path must produce rank-identical embeddings (pinned by
// TestCachedBuildMatchesReference); tests and one-off callers use this
// form. Every step is injective, so the composition is; Search
// verifies the baseline and the winner as a safety net.
func buildVariant(cfg *Config, v variantSpec) (*embed.Embedding, error) {
	hp := permutedHost(cfg.Host, v.hperm)
	base, err := buildBase(cfg, v, hp)
	if err != nil {
		return nil, err
	}
	if v.hperm == nil && v.hrot == nil {
		return base, nil
	}
	post, name, err := postParts(cfg, v)
	if err != nil {
		return nil, err
	}
	return embed.PostCompose(base, cfg.Host, base.Strategy+" ∘ "+name, 0, post)
}
