// The simulated-annealing refinement pass: a budgeted, seeded local
// search that runs after the enumerated candidate space has been
// scored. Seeds are drawn from the scored candidates — front members
// first, then the best remaining by score — and a refined placement is
// admitted to the front only when it strictly Pareto-dominates its
// seed, so the pass can tighten the front but never degrade or perturb
// it. With a fixed Config.Seed the whole pass is deterministic: runs
// are sequential, the RNG is derived from the seed and the run number,
// and no wall-clock or scheduling state is read.
//
// Moves are evaluated incrementally on a netsim.LoadState: the seed
// placement is routed once, and from then on each move re-routes only
// the O(degree) task edges incident to the moved nodes, with every
// aggregate (dilation, peak, avg-link) maintained exactly — the
// incremental costs are bit-identical to a full re-measurement, which
// the periodic evalTable re-validation (and the final check on the
// returned best) enforces at runtime. That is what lets the pass run
// on pairs of any size: the old full-re-measurement loop was gated to
// a few hundred nodes.
//
// The default move set ("swap") is the full swap neighborhood of the
// placement bijection: two guest ranks exchange their host images,
// which preserves injectivity by construction — and consumes RNG draws
// exactly as the pre-incremental engine did, so a fixed seed
// reproduces its trajectories. The extended set ("all") mixes in two
// larger rearrangements that single swaps reach only through many
// uphill steps: reversing a segment of a host-axis line, and swapping
// two parallel hyperplanes of the host.

package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/par"
)

const (
	// DefaultAnnealSteps budgets each annealing run when
	// Config.AnnealSteps is zero.
	DefaultAnnealSteps = 256
	// DefaultAnnealSeed seeds the annealing RNG when Config.Seed is
	// zero.
	DefaultAnnealSeed = 1
	// DefaultAnnealMoves is the swap-only move repertoire — the one
	// whose RNG consumption matches the pre-incremental engine.
	DefaultAnnealMoves = "swap"
	// AnnealMovesAll enables the extended repertoire: swaps plus
	// host-axis segment reversals and axis-plane swaps.
	AnnealMovesAll = "all"
	// annealMaxSeeds caps how many scored candidates seed annealing
	// runs, bounding the pass on wide fronts; Result.AnnealSeedsSkipped
	// reports how many eligible seeds the cap dropped.
	annealMaxSeeds = 8
	// annealRevalidateEvery is the step cadence at which a run's
	// incremental costs are re-checked against a full evalTable
	// measurement; any drift aborts the search rather than silently
	// corrupting the front.
	annealRevalidateEvery = 4096
)

// tableCosts is the exact cost vector of one placement table.
type tableCosts struct {
	dil     int
	avg     float64
	peak    int
	avgLink float64
	score   float64
}

// dominatesCosts is Pareto dominance on the cost vector — the
// tableCosts twin of dominates on Candidate, sharing the same rule.
func (c tableCosts) dominatesCosts(o tableCosts) bool {
	return dominatesTriple(c.dil, c.peak, c.avgLink, o.dil, o.peak, o.avgLink)
}

// evalTable measures a placement table exactly: the fused dilation pass
// and the congestion routing — the same measurements every enumerated
// candidate gets, with the dilation pass striped over edge blocks on
// the par pool (EdgeDilationStriped is bit-identical to the serial
// pass) so the per-4096-step re-validations inside an anneal run scale
// with workers instead of stalling the run. It is the annealing pass's
// ground truth: the incremental costs are validated against it.
func (s *searcher) evalTable(tab embed.Table) (tableCosts, error) {
	dil, avg := s.cfg.Guest.EdgeDilationStriped(tab, s.rd)
	stats, err := netsim.Congestion(s.nw, s.tg, netsim.Placement(tab))
	if err != nil {
		return tableCosts{}, err
	}
	c := tableCosts{dil: dil, avg: avg, peak: stats.MaxLink, avgLink: stats.AvgLink()}
	c.score = s.cfg.Objective.Score(c.dil, c.peak, c.avgLink)
	return c, nil
}

// stateCosts reads the cost vector off the incrementally maintained
// load state. The integer aggregates and the divisions that produce the
// float costs are identical to evalTable's, so the two agree
// bit-for-bit on every placement.
func (s *searcher) stateCosts(ls *netsim.LoadState) tableCosts {
	stats := ls.Stats()
	dil, avg := ls.Dilation()
	c := tableCosts{dil: dil, avg: avg, peak: stats.MaxLink, avgLink: stats.AvgLink()}
	c.score = s.cfg.Objective.Score(c.dil, c.peak, c.avgLink)
	return c
}

// moveKind tags the rearrangement a step applied, so rejection undoes
// it the right way.
type moveKind int

const (
	moveSwap moveKind = iota
	movePermute
)

// moveScratch holds the reusable buffers of the extended move
// repertoire: the guests a move displaces and their hosts before and
// after. Permute-style moves undo by replaying prevHosts.
type moveScratch struct {
	shape     grid.Shape
	strides   []int
	guests    []int32
	newHosts  []int32
	prevHosts []int32
}

func (s *searcher) newMoveScratch() *moveScratch {
	return &moveScratch{
		shape:   s.cfg.Host.Shape,
		strides: s.cfg.Host.Shape.Strides(),
	}
}

func (ms *moveScratch) reset() {
	ms.guests = ms.guests[:0]
	ms.newHosts = ms.newHosts[:0]
	ms.prevHosts = ms.prevHosts[:0]
}

// add records one guest displacement: g moves from its current host to
// host h.
func (ms *moveScratch) add(ls *netsim.LoadState, g int32, h int32) {
	ms.guests = append(ms.guests, g)
	ms.prevHosts = append(ms.prevHosts, int32(ls.HostOf(int(g))))
	ms.newHosts = append(ms.newHosts, h)
}

// reverseSegment proposes reversing the placement along a random
// segment of a host-axis line: the guests on hosts a..b of the line
// trade places end-for-end. Returns false when every host axis is too
// short to hold a segment.
func (ms *moveScratch) reverseSegment(ls *netsim.LoadState, rng *rand.Rand, n int) bool {
	j := rng.Intn(len(ms.shape))
	l := ms.shape[j]
	if l < 2 {
		return false
	}
	stride := ms.strides[j]
	anchor := rng.Intn(n)
	base := anchor - ((anchor/stride)%l)*stride // the line through anchor along axis j
	a := rng.Intn(l)
	b := rng.Intn(l - 1)
	if b >= a {
		b++
	}
	if a > b {
		a, b = b, a
	}
	ms.reset()
	for k := a; k <= b; k++ {
		h := base + k*stride
		ms.add(ls, int32(ls.GuestAt(h)), int32(base+(a+b-k)*stride))
	}
	return true
}

// planeSwap proposes exchanging two parallel hyperplanes of the host:
// every guest at coordinate c1 along a random axis trades hosts with
// its projection at coordinate c2. Returns false when every host axis
// is too short.
func (ms *moveScratch) planeSwap(ls *netsim.LoadState, rng *rand.Rand, n int) bool {
	j := rng.Intn(len(ms.shape))
	l := ms.shape[j]
	if l < 2 {
		return false
	}
	stride := ms.strides[j]
	c1 := rng.Intn(l)
	c2 := rng.Intn(l - 1)
	if c2 >= c1 {
		c2++
	}
	off := (c2 - c1) * stride
	ms.reset()
	for h := 0; h < n; h++ {
		if (h/stride)%l != c1 {
			continue
		}
		g1, g2 := int32(ls.GuestAt(h)), int32(ls.GuestAt(h+off))
		ms.add(ls, g1, int32(h+off))
		ms.add(ls, g2, int32(h))
	}
	return true
}

// annealRun refines one placement table by simulated annealing and
// returns the best table visited with its costs. Deterministic for a
// given table, step budget, move repertoire and RNG state. start must
// be the table's exact measured costs: the run re-derives them from the
// load state and fails loudly on any disagreement, and re-validates the
// incremental costs against evalTable every annealRevalidateEvery
// steps and once more on the returned best.
func (s *searcher) annealRun(tab embed.Table, start tableCosts, steps int, rng *rand.Rand) (embed.Table, tableCosts, error) {
	annealRuns.Inc()
	n := len(tab)
	mode := netsim.ModeAuto
	if s.cfg.WideTables {
		mode = netsim.ModeWide
	}
	ls, err := netsim.NewLoadStateMode(s.nw, s.tg, netsim.Placement(tab), mode)
	if err != nil {
		return nil, tableCosts{}, err
	}
	cur := s.stateCosts(ls)
	if cur != start {
		return nil, tableCosts{}, fmt.Errorf("incremental seed costs %+v disagree with measured %+v", cur, start)
	}
	bestTab := append(embed.Table(nil), tab...)
	best := start
	extended := s.cfg.AnnealMoves == AnnealMovesAll
	var ms *moveScratch
	if extended {
		ms = s.newMoveScratch()
	}
	// Geometric cooling from a temperature that makes early uphill
	// moves of about a tenth of the seed score likely, down to
	// effectively greedy.
	t0 := 1 + 0.1*start.score
	const tEnd = 0.01
	var i, j int
	var snap embed.Table // revalidation table snapshot, allocated on first use
	for step := 0; step < steps; step++ {
		temp := t0 * math.Pow(tEnd/t0, float64(step)/float64(steps))
		// Propose: swaps draw (i, j) exactly as the pre-incremental
		// engine did; the extended repertoire draws the move kind first,
		// keeping the swap-only RNG stream untouched under the default.
		kind := moveSwap
		if extended {
			switch k := rng.Intn(8); {
			case k == 6:
				if ms.reverseSegment(ls, rng, n) {
					kind = movePermute
				}
			case k == 7:
				if ms.planeSwap(ls, rng, n) {
					kind = movePermute
				}
			}
		}
		if kind == moveSwap {
			i = rng.Intn(n)
			j = rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ls.Swap(i, j)
		} else {
			ls.Permute(ms.guests, ms.newHosts)
		}
		annealSteps.Inc()
		c := s.stateCosts(ls)
		delta := c.score - cur.score
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			annealAccepted.Inc()
			cur = c
			// Best-visited advances on a strictly lower score, or on
			// Pareto dominance at a tied score: a zero-weighted cost
			// (e.g. avg-link under the default 1,1,0 objective) ties
			// the score but still dominates — exactly the improvement
			// the admission gate accepts.
			if c.score < best.score || c.dominatesCosts(best) {
				best = c
				ls.CopyTableInto(bestTab)
			}
		} else if kind == moveSwap {
			annealRejected.Inc()
			ls.Swap(i, j) // reject: undo the swap
		} else {
			annealRejected.Inc()
			ls.Permute(ms.guests, ms.prevHosts) // reject: replay the old hosts
		}
		if (step+1)%annealRevalidateEvery == 0 {
			annealRevalidations.Inc()
			if snap == nil {
				snap = make(embed.Table, n)
			}
			ls.CopyTableInto(snap)
			full, err := s.evalTable(snap)
			if err != nil {
				return nil, tableCosts{}, err
			}
			if full != cur {
				return nil, tableCosts{}, fmt.Errorf("step %d: incremental costs %+v drifted from full measurement %+v", step, cur, full)
			}
		}
	}
	full, err := s.evalTable(bestTab)
	if err != nil {
		return nil, tableCosts{}, err
	}
	if full != best {
		return nil, tableCosts{}, fmt.Errorf("best costs %+v drifted from full measurement %+v", best, full)
	}
	return bestTab, best, nil
}

// annealSeeds selects which scored candidates seed annealing runs:
// every front member first (in front order), then the best remaining
// scored candidates by (score, index), up to annealMaxSeeds in total.
// The returned skipped count is how many eligible seeds the cap
// dropped. Deterministic: with annealing on, Search disables the
// scheduling-dependent congestion pruning, so the scored set — not
// just the front — is a pure function of the config.
func annealSeeds(scored, front []Candidate) (seeds []Candidate, skipped int) {
	inFront := make(map[int]bool, len(front))
	for _, c := range front {
		inFront[c.Index] = true
	}
	seeds = append(seeds, front...)
	rest := make([]Candidate, 0, len(scored))
	for _, c := range scored {
		if !inFront[c.Index] {
			rest = append(rest, c)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Score != rest[j].Score {
			return rest[i].Score < rest[j].Score
		}
		return rest[i].Index < rest[j].Index
	})
	seeds = append(seeds, rest...)
	if len(seeds) > annealMaxSeeds {
		skipped = len(seeds) - annealMaxSeeds
		seeds = seeds[:annealMaxSeeds]
	}
	return seeds, skipped
}

// annealOutcome is one seed's finished run, parked until the ordered
// admission loop reaches its position.
type annealOutcome struct {
	tab     embed.Table
	got     tableCosts
	elapsed time.Duration
	err     error
}

// annealFront runs the refinement pass: each selected seed (annealSeeds
// over the scored cross product) gets one annealing run, refined
// placements strictly dominating their seed become annealed candidates
// (indices continuing past the enumerated variants), and the front is
// recomputed over the union. Counters and tables are recorded on res /
// tables for the caller.
//
// Runs execute concurrently on the par pool — each is a self-contained
// LoadState with its own RNG derived from (Config.Seed, seed position),
// so no state is shared — but everything order-dependent happens in a
// second, strictly seed-ordered loop over the parked outcomes: error
// selection (the lowest seed position wins, as when runs were
// sequential), run counting, and admission. The result is therefore
// independent of scheduling and GOMAXPROCS; the determinism tests pin
// it.
func (s *searcher) annealFront(variants []variantSpec, scored, front []Candidate, res *Result, tables map[int]embed.Table) ([]Candidate, error) {
	cfg := s.cfg
	seeds, skipped := annealSeeds(scored, front)
	res.AnnealSeedsSkipped = skipped
	noun := "swaps"
	if cfg.AnnealMoves == AnnealMovesAll {
		noun = "moves"
	}
	outs := make([]annealOutcome, len(seeds))
	par.Blocks(len(seeds), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			seed := seeds[k]
			t0 := cfg.Clock()
			e, err := s.build(variants[seed.Index])
			if err != nil {
				outs[k] = annealOutcome{err: fmt.Errorf("place: anneal: rebuilding seed %d: %v", seed.Index, err)}
				continue
			}
			start := tableCosts{dil: seed.Dilation, avg: seed.AvgDilation, peak: seed.Peak, avgLink: seed.AvgLink, score: seed.Score}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
			tab, got, err := s.annealRun(embed.Table(e.Table()), start, cfg.AnnealSteps, rng)
			if err != nil {
				outs[k] = annealOutcome{err: fmt.Errorf("place: anneal: seed %d: %v", seed.Index, err)}
				continue
			}
			outs[k] = annealOutcome{tab: tab, got: got, elapsed: cfg.Clock().Sub(t0)}
		}
	})
	var refined []Candidate
	for k, seed := range seeds {
		out := outs[k]
		if out.err != nil {
			return nil, out.err
		}
		got := out.got
		res.Annealed++
		res.AnnealRuns = append(res.AnnealRuns, AnnealRunStat{
			SeedIndex: seed.Index,
			Steps:     cfg.AnnealSteps,
			Elapsed:   out.elapsed,
		})
		c := Candidate{
			Index:         len(variants) + k,
			Strategy:      "anneal",
			Annealed:      true,
			AnnealedFrom:  seed.Index,
			EmbedStrategy: fmt.Sprintf("anneal[%d %s from #%d]", cfg.AnnealSteps, noun, seed.Index),
			Dilation:      got.dil,
			AvgDilation:   got.avg,
			Peak:          got.peak,
			AvgLink:       got.avgLink,
			Score:         got.score,
		}
		// Admission is strict dominance over the seed: an annealed
		// placement never replaces an equal or incomparable one, so the
		// pass cannot degrade the front — and never emits a point its
		// own seed dominates.
		if !dominates(c, seed) {
			continue
		}
		tables[c.Index] = out.tab
		refined = append(refined, c)
	}
	if len(refined) == 0 {
		return front, nil
	}
	out := paretoFront(append(append([]Candidate(nil), front...), refined...))
	// Wins are counted on the final front, after the dedup of identical
	// cost vectors: an admitted candidate that ties another refined
	// placement exactly did not add a front member.
	for _, c := range out {
		if c.Annealed {
			res.AnnealWins++
		}
	}
	return out, nil
}
