// The simulated-annealing refinement pass: a budgeted, seeded local
// search over node-swap moves that runs after the enumerated candidate
// space has been scored. Every front member of a small pair seeds one
// annealing run; a refined placement is admitted to the front only when
// it strictly Pareto-dominates its seed, so the pass can tighten the
// front but never degrade or perturb it — and with a fixed Config.Seed
// the whole pass is deterministic (runs are sequential, the RNG is
// derived from the seed and the run number, and no wall-clock or
// scheduling state is read).
//
// The move set is the full swap neighborhood of the placement
// bijection: two guest ranks exchange their host images, which
// preserves injectivity by construction. Each move is evaluated
// exactly — one fused dilation pass plus one congestion routing of the
// guest's edges — which is why the pass is gated to pairs of at most
// AnnealMaxNodes guest nodes.

package place

import (
	"fmt"
	"math"
	"math/rand"

	"torusmesh/internal/embed"
	"torusmesh/internal/netsim"
)

const (
	// DefaultAnnealSteps budgets each annealing run when
	// Config.AnnealSteps is zero: every step fully re-measures the
	// swapped placement.
	DefaultAnnealSteps = 256
	// DefaultAnnealSeed seeds the annealing RNG when Config.Seed is
	// zero.
	DefaultAnnealSeed = 1
	// AnnealMaxNodes gates the pass to small pairs: full re-measurement
	// per move does not scale past a few hundred nodes.
	AnnealMaxNodes = 256
	// annealMaxSeeds caps how many front members seed annealing runs
	// (in front order), bounding the pass on wide fronts.
	annealMaxSeeds = 8
)

// tableCosts is the exact cost vector of one placement table.
type tableCosts struct {
	dil     int
	avg     float64
	peak    int
	avgLink float64
	score   float64
}

// dominatesCosts is Pareto dominance on the cost vector — the
// tableCosts twin of dominates on Candidate, sharing the same rule.
func (c tableCosts) dominatesCosts(o tableCosts) bool {
	return dominatesTriple(c.dil, c.peak, c.avgLink, o.dil, o.peak, o.avgLink)
}

// evalTable measures a placement table exactly: the fused dilation pass
// and the congestion routing — the same measurements every enumerated
// candidate gets.
func (s *searcher) evalTable(tab embed.Table) (tableCosts, error) {
	sc := s.scratch.Get().(*measureBufs)
	dil, avg := s.cfg.Guest.EdgeDilation(tab, s.rd, sc.a, sc.b)
	s.scratch.Put(sc)
	stats, err := netsim.Congestion(s.nw, s.tg, netsim.Placement(tab))
	if err != nil {
		return tableCosts{}, err
	}
	c := tableCosts{dil: dil, avg: avg, peak: stats.MaxLink, avgLink: stats.AvgLink()}
	c.score = s.cfg.Objective.Score(c.dil, c.peak, c.avgLink)
	return c, nil
}

// annealRun refines one placement table by simulated annealing over
// node-swap moves and returns the best table visited with its costs.
// Deterministic for a given table, step budget and RNG state.
func (s *searcher) annealRun(tab embed.Table, start tableCosts, steps int, rng *rand.Rand) (embed.Table, tableCosts, error) {
	n := len(tab)
	cur := start
	bestTab := append(embed.Table(nil), tab...)
	best := start
	// Geometric cooling from a temperature that makes early uphill
	// moves of about a tenth of the seed score likely, down to
	// effectively greedy.
	t0 := 1 + 0.1*start.score
	const tEnd = 0.01
	for step := 0; step < steps; step++ {
		temp := t0 * math.Pow(tEnd/t0, float64(step)/float64(steps))
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		tab[i], tab[j] = tab[j], tab[i]
		c, err := s.evalTable(tab)
		if err != nil {
			return nil, tableCosts{}, err
		}
		delta := c.score - cur.score
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur = c
			// Best-visited advances on a strictly lower score, or on
			// Pareto dominance at a tied score: a zero-weighted cost
			// (e.g. avg-link under the default 1,1,0 objective) ties
			// the score but still dominates — exactly the improvement
			// the admission gate accepts.
			if c.score < best.score || c.dominatesCosts(best) {
				best = c
				copy(bestTab, tab)
			}
		} else {
			tab[i], tab[j] = tab[j], tab[i] // reject: undo the swap
		}
	}
	return bestTab, best, nil
}

// annealFront runs the refinement pass over the front: each of the
// first annealMaxSeeds front members seeds one run, refined placements
// strictly dominating their seed become annealed candidates (indices
// continuing past the enumerated variants), and the front is
// recomputed over the union. Counters and tables are recorded on res /
// tables for the caller.
func (s *searcher) annealFront(variants []variantSpec, front []Candidate, res *Result, tables map[int]embed.Table) ([]Candidate, error) {
	cfg := s.cfg
	if cfg.Guest.Size() > AnnealMaxNodes {
		return front, nil
	}
	seeds := front
	if len(seeds) > annealMaxSeeds {
		seeds = seeds[:annealMaxSeeds]
	}
	var refined []Candidate
	for k, seed := range seeds {
		e, err := s.build(variants[seed.Index])
		if err != nil {
			return nil, fmt.Errorf("place: anneal: rebuilding seed %d: %v", seed.Index, err)
		}
		start := tableCosts{dil: seed.Dilation, avg: seed.AvgDilation, peak: seed.Peak, avgLink: seed.AvgLink, score: seed.Score}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
		tab, got, err := s.annealRun(embed.Table(e.Table()), start, cfg.AnnealSteps, rng)
		if err != nil {
			return nil, fmt.Errorf("place: anneal: seed %d: %v", seed.Index, err)
		}
		res.Annealed++
		c := Candidate{
			Index:         len(variants) + k,
			Strategy:      "anneal",
			Annealed:      true,
			AnnealedFrom:  seed.Index,
			EmbedStrategy: fmt.Sprintf("anneal[%d swaps from #%d]", cfg.AnnealSteps, seed.Index),
			Dilation:      got.dil,
			AvgDilation:   got.avg,
			Peak:          got.peak,
			AvgLink:       got.avgLink,
			Score:         got.score,
		}
		// Admission is strict dominance over the seed: an annealed
		// placement never replaces an equal or incomparable one, so the
		// pass cannot degrade the front — and never emits a point its
		// own seed dominates.
		if !dominates(c, seed) {
			continue
		}
		tables[c.Index] = tab
		refined = append(refined, c)
	}
	if len(refined) == 0 {
		return front, nil
	}
	out := paretoFront(append(append([]Candidate(nil), front...), refined...))
	// Wins are counted on the final front, after the dedup of identical
	// cost vectors: an admitted candidate that ties another refined
	// placement exactly did not add a front member.
	for _, c := range out {
		if c.Annealed {
			res.AnnealWins++
		}
	}
	return out, nil
}
