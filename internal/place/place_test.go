package place

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/taskgraph"
)

// TestSearchBeatsBaseline pins the repo's acceptance pair: for
// torus(8x2) -> mesh(4x4) the search must find a placement with
// strictly lower peak congestion than the paper baseline at equal or
// better dilation.
func TestSearchBeatsBaseline(t *testing.T) {
	res, err := Search(Config{
		Guest:       grid.TorusSpec(8, 2),
		Host:        grid.MeshSpec(4, 4),
		CapDilation: true,
		Rotations:   true,
		Budget:      96,
		Strategies:  DefaultStrategies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Peak >= res.Baseline.Peak {
		t.Errorf("best peak %d does not beat baseline peak %d", res.Best.Peak, res.Baseline.Peak)
	}
	if res.Best.Dilation > res.Baseline.Dilation {
		t.Errorf("best dilation %d worse than baseline %d despite cap", res.Best.Dilation, res.Baseline.Dilation)
	}
	if !res.Improved() {
		t.Errorf("Improved() = false for a strictly better candidate")
	}
	if res.BestEmbedding == nil {
		t.Fatal("missing BestEmbedding")
	}
	// The reported costs must be the costs of the returned embedding.
	if err := res.BestEmbedding.Verify(); err != nil {
		t.Fatalf("winning embedding: %v", err)
	}
	if d := res.BestEmbedding.DilationPerNode(); d != res.Best.Dilation {
		t.Errorf("reported dilation %d, embedding measures %d", res.Best.Dilation, d)
	}
	stats, err := netsim.Congestion(netsim.New(res.BestEmbedding.To),
		taskgraph.FromSpec(res.BestEmbedding.From),
		netsim.PlacementFromEmbedding(res.BestEmbedding))
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxLink != res.Best.Peak {
		t.Errorf("reported peak %d, netsim measures %d", res.Best.Peak, stats.MaxLink)
	}
}

// TestSearchDeterministic: repeated searches of the same config must
// produce bit-identical artifacts even though candidate scoring (and
// hence pruning) is scheduled concurrently.
func TestSearchDeterministic(t *testing.T) {
	cfg := Config{
		Guest:      grid.TorusSpec(12, 3),
		Host:       grid.TorusSpec(9, 4),
		Rotations:  true,
		Budget:     64,
		Strategies: DefaultStrategies(),
	}
	var first []byte
	for i := 0; i < 3; i++ {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("run %d produced a different artifact:\n%s\nvs\n%s", i, first, data)
		}
	}
}

// TestArtifactRoundTrip: decode(encode(r)) re-encodes to the same
// bytes, and incompatible versions are rejected.
func TestArtifactRoundTrip(t *testing.T) {
	res, err := Search(Config{
		Guest:      grid.MeshSpec(6, 4),
		Host:       grid.MeshSpec(8, 3),
		Budget:     32,
		Strategies: DefaultStrategies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	again, err := dec.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("artifact did not round-trip:\n%s\nvs\n%s", data, again)
	}
	bad := *res
	bad.Version = ArtifactVersion + 1
	badData, err := bad.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(badData)); err == nil {
		t.Error("decode accepted an incompatible artifact version")
	}
}

// TestTiesGoToBaseline: when nothing strictly beats the paper pick, the
// baseline itself must win (lowest index on equal scores), so reported
// improvements are never scheduling artifacts.
func TestTiesGoToBaseline(t *testing.T) {
	res, err := Search(Config{
		Guest:      grid.RingSpec(16),
		Host:       grid.TorusSpec(4, 4),
		Rotations:  true,
		Strategies: DefaultStrategies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A ring routes along a Hamiltonian circuit: dilation 1, every
	// link carrying one route. Nothing can do better.
	if res.Baseline.Dilation != 1 || res.Baseline.Peak != 1 {
		t.Fatalf("baseline = d%d/p%d, want 1/1", res.Baseline.Dilation, res.Baseline.Peak)
	}
	if res.Best.Index != 0 {
		t.Errorf("tie broken away from the baseline: best index %d (score %v vs %v)",
			res.Best.Index, res.Best.Score, res.Baseline.Score)
	}
}

// TestCapDilation: with the cap on, the winner can never dilate worse
// than the paper baseline, whatever the objective weights say.
func TestCapDilation(t *testing.T) {
	for _, pair := range [][2]grid.Spec{
		{grid.TorusSpec(8, 2), grid.MeshSpec(4, 4)},
		{grid.MeshSpec(12, 2), grid.TorusSpec(6, 4)},
		{grid.TorusSpec(9, 2, 2), grid.TorusSpec(6, 6)},
	} {
		res, err := Search(Config{
			Guest:       pair[0],
			Host:        pair[1],
			Objective:   Objective{Beta: 1}, // congestion only
			CapDilation: true,
			Rotations:   true,
			Budget:      64,
			Strategies:  DefaultStrategies(),
		})
		if err != nil {
			t.Fatalf("%s -> %s: %v", pair[0], pair[1], err)
		}
		if res.Best.Dilation > res.Baseline.Dilation {
			t.Errorf("%s -> %s: cap violated: best dilation %d > baseline %d",
				pair[0], pair[1], res.Best.Dilation, res.Baseline.Dilation)
		}
		if res.CapDilation != res.Baseline.Dilation {
			t.Errorf("%s -> %s: effective cap %d, want baseline dilation %d",
				pair[0], pair[1], res.CapDilation, res.Baseline.Dilation)
		}
	}
}

// TestEnumerationContract: the baseline is entry 0, entries are unique,
// and the budget truncates the space deterministically.
func TestEnumerationContract(t *testing.T) {
	cfg := Config{
		Guest:      grid.TorusSpec(6, 3, 2),
		Host:       grid.TorusSpec(9, 4),
		Rotations:  true,
		Budget:     10,
		Strategies: DefaultStrategies(),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	vs, space := enumerate(&cfg)
	if len(vs) != 10 {
		t.Fatalf("budget 10 enumerated %d candidates", len(vs))
	}
	if space <= 10 {
		t.Fatalf("space %d should exceed the budget for this pair", space)
	}
	v0 := vs[0]
	if v0.strategy != 0 || v0.gperm != nil || v0.hperm != nil || v0.grot != nil || v0.hrot != nil {
		t.Fatalf("entry 0 is not the baseline: %+v", v0)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.key()] {
			t.Fatalf("duplicate candidate %s", v.key())
		}
		seen[v.key()] = true
	}
	// The full run records the same numbers.
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 10 || res.Space != space {
		t.Errorf("result reports %d/%d, want 10/%d", res.Candidates, res.Space, space)
	}
	// The arithmetic space size must agree with an exhaustive
	// enumeration (generation stops at the budget, the count must not).
	wide := cfg
	wide.Budget = 1 << 20
	vsAll, spaceAll := enumerate(&wide)
	if spaceAll != space || len(vsAll) != space {
		t.Errorf("space formula %d disagrees with exhaustive enumeration %d/%d", space, spaceAll, len(vsAll))
	}
	if len(vsAll) < 10 {
		t.Fatalf("exhaustive enumeration too small: %d", len(vsAll))
	}
	for i, v := range vsAll[:10] {
		if v.key() != vs[i].key() {
			t.Errorf("budget prefix diverges at %d: %s vs %s", i, v.key(), vs[i].key())
		}
	}
	// Same formula-vs-enumeration agreement with mesh sides, where the
	// rotation generator contributes to the space.
	meshCfg := Config{
		Guest:      grid.MeshSpec(6, 4),
		Host:       grid.MeshSpec(8, 3),
		Rotations:  true,
		Budget:     1 << 20,
		Strategies: DefaultStrategies(),
	}
	if err := meshCfg.validate(); err != nil {
		t.Fatal(err)
	}
	vsMesh, spaceMesh := enumerate(&meshCfg)
	if len(vsMesh) != spaceMesh {
		t.Errorf("mesh pair: space formula %d disagrees with exhaustive enumeration %d", spaceMesh, len(vsMesh))
	}
}

// TestMeasureMatchesPerNode: the fused table measurement path must
// agree with the per-node reference walk for composite candidates.
func TestMeasureMatchesPerNode(t *testing.T) {
	cfg := Config{
		Guest:      grid.TorusSpec(8, 2),
		Host:       grid.MeshSpec(4, 4),
		Rotations:  true,
		Budget:     32,
		Strategies: DefaultStrategies(),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	vs, _ := enumerate(&cfg)
	s := newSearcher(&cfg)
	checked := 0
	for _, v := range vs {
		e, err := buildVariant(&cfg, v)
		if err != nil {
			continue
		}
		dil, avg := s.measure(e)
		if want := e.DilationPerNode(); dil != want {
			t.Errorf("%s: fused dilation %d, per-node %d", v.key(), dil, want)
		}
		if want := e.AverageDilationPerNode(); avg != want {
			t.Errorf("%s: fused avg %v, per-node %v", v.key(), avg, want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d candidates were buildable", checked)
	}
}

// TestConfigValidation rejects the misconfigurations.
func TestConfigValidation(t *testing.T) {
	good := func() Config {
		return Config{
			Guest:      grid.RingSpec(6),
			Host:       grid.MeshSpec(3, 2),
			Strategies: DefaultStrategies(),
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"size mismatch", func(c *Config) { c.Host = grid.MeshSpec(4, 2) }},
		{"no strategies", func(c *Config) { c.Strategies = nil }},
		{"anonymous strategy", func(c *Config) { c.Strategies = []Strategy{{Embed: core.Embed}} }},
		{"negative weight", func(c *Config) { c.Objective = Objective{Alpha: -1} }},
	}
	for _, tc := range cases {
		cfg := good()
		tc.mutate(&cfg)
		if _, err := Search(cfg); err == nil {
			t.Errorf("%s: Search accepted the config", tc.name)
		}
	}
	// The zero objective and budget take defaults.
	cfg := good()
	res, err := Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != DefaultObjective() {
		t.Errorf("zero objective not defaulted: %+v", res.Objective)
	}
	if res.Budget != DefaultBudget {
		t.Errorf("zero budget not defaulted: %d", res.Budget)
	}
}

// TestRotationInvariance documents why the torus generator is skipped:
// rotating a torus host is an automorphism that commutes with
// dimension-ordered routing, so dilation and congestion are unchanged.
func TestRotationInvariance(t *testing.T) {
	g, h := grid.RingSpec(12), grid.TorusSpec(4, 3)
	base, err := core.Embed(g, h)
	if err != nil {
		t.Fatal(err)
	}
	rot, err := embed.Rotate(h, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := embed.Compose(base, rot)
	if err != nil {
		t.Fatal(err)
	}
	tg := taskgraph.FromSpec(g)
	nw := netsim.New(h)
	s1, err := netsim.Congestion(nw, tg, netsim.PlacementFromEmbedding(base))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := netsim.Congestion(nw, tg, netsim.PlacementFromEmbedding(rotated))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("torus rotation changed congestion: %+v vs %+v", s1, s2)
	}
	if d1, d2 := base.DilationPerNode(), rotated.DilationPerNode(); d1 != d2 {
		t.Errorf("torus rotation changed dilation: %d vs %d", d1, d2)
	}
}

// TestBrokenStrategyIsDiscarded: strategies are caller-injected, so a
// construction that returns a non-injective or out-of-range embedding
// must be counted and skipped — never panic the distance kernels or
// fail the search (only the baseline is load-bearing).
func TestBrokenStrategyIsDiscarded(t *testing.T) {
	g, h := grid.TorusSpec(8, 2), grid.MeshSpec(4, 4)
	n := g.Size()
	collapse := make([]int, n) // every node onto host rank 0: not injective
	outOfRange := make([]int, n)
	for i := range outOfRange {
		outOfRange[i] = n + i
	}
	broken := func(table []int) EmbedFunc {
		return func(gs, hs grid.Spec) (*embed.Embedding, error) {
			if !gs.Shape.Equal(g.Shape) || !hs.Shape.Equal(h.Shape) {
				// Permuted variants: refuse, so only the identity
				// variant exercises the broken table.
				return nil, fmt.Errorf("broken strategy only handles the base pair")
			}
			return embed.FromTable(gs, hs, "broken", 0, table)
		}
	}
	for name, table := range map[string][]int{"collapsing": collapse, "out-of-range": outOfRange} {
		res, err := Search(Config{
			Guest:  g,
			Host:   h,
			Budget: 16,
			Strategies: []Strategy{
				DefaultStrategies()[0],
				{Name: "bad", Embed: broken(table)},
			},
		})
		if err != nil {
			t.Fatalf("%s: search failed instead of discarding the broken candidate: %v", name, err)
		}
		if res.Invalid == 0 {
			t.Errorf("%s: broken candidate was not counted invalid", name)
		}
		if res.Best.Strategy == "bad" {
			t.Errorf("%s: a broken candidate won", name)
		}
		if err := res.BestEmbedding.Verify(); err != nil {
			t.Errorf("%s: winner does not verify: %v", name, err)
		}
	}
}

// TestParetoFront pins the acceptance pair torus(12x3) -> torus(9x4):
// the front must hold at least two mutually non-dominated embeddings,
// the scalarized winner must be a member of the front, and the front
// must be sorted by cost.
func TestParetoFront(t *testing.T) {
	res, err := Search(Config{
		Guest:       grid.TorusSpec(12, 3),
		Host:        grid.TorusSpec(9, 4),
		CapDilation: true,
		Rotations:   true,
		Budget:      96,
		Strategies:  DefaultStrategies(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) < 2 {
		t.Fatalf("front has %d member(s), want >= 2: %+v", len(res.Front), res.Front)
	}
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i == j {
				continue
			}
			if dominates(a, b) {
				t.Errorf("front member %d (d%d p%d a%g) dominates member %d (d%d p%d a%g)",
					a.Index, a.Dilation, a.Peak, a.AvgLink, b.Index, b.Dilation, b.Peak, b.AvgLink)
			}
			if sameCosts(a, b) {
				t.Errorf("front members %d and %d carry identical cost vectors", a.Index, b.Index)
			}
		}
		if i > 0 {
			p := res.Front[i-1]
			if a.Dilation < p.Dilation {
				t.Errorf("front not sorted by dilation at %d", i)
			}
		}
	}
	member := false
	for _, c := range res.Front {
		if c.Index == res.Best.Index {
			if !sameCosts(c, res.Best) {
				t.Errorf("best diverges from its front entry: %+v vs %+v", res.Best, c)
			}
			member = true
		}
	}
	if !member {
		t.Errorf("best (index %d) is not a member of the front", res.Best.Index)
	}
	// The winner's score is the minimum over the front, ties to the
	// lowest index.
	for _, c := range res.Front {
		if c.Score < res.Best.Score || (c.Score == res.Best.Score && c.Index < res.Best.Index) {
			t.Errorf("front member %d (score %g) beats the reported best %d (score %g)",
				c.Index, c.Score, res.Best.Index, res.Best.Score)
		}
	}
}

// TestFrontDeterministic: the front (and hence the artifact) must be
// bit-identical across repeated runs and across GOMAXPROCS settings,
// even though scoring and pruning are scheduled concurrently.
func TestFrontDeterministic(t *testing.T) {
	cfg := Config{
		Guest:      grid.MeshSpec(6, 4),
		Host:       grid.MeshSpec(8, 3),
		Rotations:  true,
		Anneal:     true,
		Budget:     64,
		Strategies: DefaultStrategies(),
	}
	encode := func() []byte {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.EncodeBytes()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := encode()
	for i := 0; i < 2; i++ {
		if got := encode(); !bytes.Equal(first, got) {
			t.Fatalf("run %d produced a different artifact:\n%s\nvs\n%s", i, first, got)
		}
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if got := encode(); !bytes.Equal(first, got) {
		t.Fatalf("GOMAXPROCS=1 produced a different artifact:\n%s\nvs\n%s", first, got)
	}
	runtime.GOMAXPROCS(2)
	if got := encode(); !bytes.Equal(first, got) {
		t.Fatalf("GOMAXPROCS=2 produced a different artifact:\n%s\nvs\n%s", first, got)
	}
}

// TestCachedBuildMatchesReference: the searcher's cached build path —
// one base construction per key, host symmetries post-composed as
// table fusions — must produce embeddings rank-identical to the
// uncached reference builder for every variant of a pair.
func TestCachedBuildMatchesReference(t *testing.T) {
	cfg := Config{
		Guest:      grid.TorusSpec(8, 2),
		Host:       grid.MeshSpec(4, 4),
		Rotations:  true,
		Budget:     1 << 20,
		Strategies: DefaultStrategies(),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	vs, _ := enumerate(&cfg)
	s := newSearcher(&cfg)
	built := 0
	for _, v := range vs {
		want, refErr := buildVariant(&cfg, v)
		got, cacheErr := s.build(v)
		if (refErr == nil) != (cacheErr == nil) {
			t.Fatalf("%s: reference err %v, cached err %v", v.key(), refErr, cacheErr)
		}
		if refErr != nil {
			continue
		}
		wt, gt := want.Table(), got.Table()
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("%s: cached table diverges at %d: %d vs %d", v.key(), i, gt[i], wt[i])
			}
		}
		if want.Strategy != got.Strategy {
			t.Errorf("%s: strategy chain %q vs %q", v.key(), got.Strategy, want.Strategy)
		}
		built++
	}
	if built < 10 {
		t.Fatalf("only %d variants were buildable", built)
	}
	// The cache must actually share constructions: the 4x4 host's full
	// permutation group targets one permuted shape per guest variant,
	// so there are far fewer bases than variants.
	if len(s.bases) >= built {
		t.Errorf("cache held %d bases for %d built variants — no sharing", len(s.bases), built)
	}
}

// TestMidRotCandidates: the intermediate-rotation generator enumerates
// genuinely new prime-refinement embeddings, and they are buildable,
// valid candidates.
func TestMidRotCandidates(t *testing.T) {
	cfg := Config{
		Guest:      grid.TorusSpec(8, 2),
		Host:       grid.MeshSpec(4, 4),
		Budget:     1 << 20,
		Strategies: DefaultStrategies(),
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	vs, space := enumerate(&cfg)
	if len(vs) != space {
		t.Fatalf("exhaustive enumeration %d disagrees with space %d", len(vs), space)
	}
	plain, err := buildVariant(&cfg, variantSpec{strategy: 1})
	if err != nil {
		t.Fatal(err)
	}
	plainT := plain.Table()
	s := newSearcher(&cfg)
	seen, fresh := 0, 0
	for _, v := range vs {
		if v.midrot == nil {
			continue
		}
		seen++
		e, err := s.build(v)
		if err != nil {
			t.Fatalf("%s: %v", v.key(), err)
		}
		if err := s.validate(e); err != nil {
			t.Fatalf("%s: %v", v.key(), err)
		}
		for i, r := range e.Table() {
			if r != plainT[i] {
				fresh++
				break
			}
		}
	}
	// The all-primes intermediate of 16 is 2x2x2x2: one unit rotation
	// per axis for the primes strategy, none for the paper strategy.
	if seen != 4 {
		t.Errorf("enumerated %d mid-rotation variants, want 4", seen)
	}
	if fresh == 0 {
		t.Error("no mid-rotation produced a new embedding")
	}
}

// TestAnnealDominatesSeed: annealed candidates are admitted only when
// they strictly dominate their seed — so the pass can never emit a
// point its seed dominates, and a deliberately bad baseline must be
// strictly improved on every cost.
func TestAnnealDominatesSeed(t *testing.T) {
	g, h := grid.RingSpec(16), grid.TorusSpec(4, 4)
	n := g.Size()
	tab := make([]int, n)
	for i := range tab {
		tab[i] = (i * 5) % n // a congestion-hostile bijection
	}
	scramble := func(gs, hs grid.Spec) (*embed.Embedding, error) {
		if !gs.Shape.Equal(g.Shape) || !hs.Shape.Equal(h.Shape) {
			return nil, fmt.Errorf("scramble only handles the base pair")
		}
		return embed.FromTable(gs, hs, "scramble", 0, tab)
	}
	res, err := Search(Config{
		Guest:      g,
		Host:       h,
		Anneal:     true,
		Budget:     8,
		Strategies: []Strategy{{Name: "scramble", Embed: scramble}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Annealed == 0 {
		t.Fatal("no annealing runs on a small pair with Anneal set")
	}
	if res.AnnealWins == 0 {
		t.Fatalf("annealing failed to dominate a scrambled ring placement (baseline d%d p%d)",
			res.Baseline.Dilation, res.Baseline.Peak)
	}
	byIndex := map[int]Candidate{res.Baseline.Index: res.Baseline}
	for _, c := range res.Front {
		byIndex[c.Index] = c
	}
	for _, c := range res.Front {
		if !c.Annealed {
			continue
		}
		seed, ok := byIndex[c.AnnealedFrom]
		if ok && dominates(seed, c) {
			t.Errorf("annealed candidate %d is dominated by its seed %d", c.Index, c.AnnealedFrom)
		}
		if c.Dilation > res.Baseline.Dilation || c.Peak > res.Baseline.Peak {
			t.Errorf("annealed candidate %d (d%d p%d) worse than its scrambled baseline (d%d p%d)",
				c.Index, c.Dilation, c.Peak, res.Baseline.Dilation, res.Baseline.Peak)
		}
	}
	if res.BestEmbedding == nil {
		t.Fatal("missing BestEmbedding")
	}
	if err := res.BestEmbedding.Verify(); err != nil {
		t.Fatalf("annealed winner does not verify: %v", err)
	}
	if d := res.BestEmbedding.DilationPerNode(); d != res.Best.Dilation {
		t.Errorf("reported dilation %d, embedding measures %d", res.Best.Dilation, d)
	}
	// The annealing pass is deterministic: same config, same bytes.
	again, err := Search(Config{
		Guest:      g,
		Host:       h,
		Anneal:     true,
		Budget:     8,
		Strategies: []Strategy{{Name: "scramble", Embed: scramble}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := again.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("annealing is not deterministic:\n%s\nvs\n%s", a, b)
	}
	// A different seed is a different (still deterministic) search and
	// is recorded in the artifact.
	if res.Seed == 0 {
		t.Error("effective seed not recorded")
	}
}

// TestAnnealDominatingTie: the annealing best-visited tracker must
// advance on Pareto dominance at a tied score — a zero-weighted cost
// (avg-link under the default objective) ties the score but still
// dominates, and the admission gate accepts exactly that — and the
// pass must win under an objective that zero-weights the costs it
// improves.
func TestAnnealDominatingTie(t *testing.T) {
	a := tableCosts{dil: 3, peak: 2, avgLink: 1.5, score: 5}
	b := tableCosts{dil: 3, peak: 2, avgLink: 1.2, score: 5} // same score, better avg-link
	if !b.dominatesCosts(a) {
		t.Error("a dominating tie was not recognized")
	}
	if a.dominatesCosts(b) || a.dominatesCosts(a) {
		t.Error("dominance is not strict")
	}
	worse := tableCosts{dil: 2, peak: 3, avgLink: 1.2, score: 5}
	if worse.dominatesCosts(a) || a.dominatesCosts(worse) {
		t.Error("incomparable vectors reported as dominated")
	}
	// Peak-only objective: dilation and avg-link are zero-weighted, so
	// annealing wins must be possible regardless.
	g, h := grid.RingSpec(16), grid.TorusSpec(4, 4)
	n := g.Size()
	tab := make([]int, n)
	for i := range tab {
		tab[i] = (i * 5) % n
	}
	scramble := func(gs, hs grid.Spec) (*embed.Embedding, error) {
		if !gs.Shape.Equal(g.Shape) || !hs.Shape.Equal(h.Shape) {
			return nil, fmt.Errorf("scramble only handles the base pair")
		}
		return embed.FromTable(gs, hs, "scramble", 0, tab)
	}
	res, err := Search(Config{
		Guest:      g,
		Host:       h,
		Anneal:     true,
		Budget:     4,
		Objective:  Objective{Beta: 1},
		Strategies: []Strategy{{Name: "scramble", Embed: scramble}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnnealWins == 0 {
		t.Error("annealing failed to win under a peak-only objective")
	}
	for _, c := range res.Front {
		if c.Annealed && dominates(res.Baseline, c) {
			t.Errorf("annealed front member %d dominated by the baseline", c.Index)
		}
	}
}
