// The census adapter: internal/census stays independent of the
// placement engine (it takes an opaque PlaceFunc, the way it takes an
// opaque EmbedFunc), and this file provides the one canonical way to
// wire a Search template into it — shared by cmd/sweep, the top-level
// torusmesh API and the golden artifact test.

package place

import (
	"torusmesh/internal/census"
	"torusmesh/internal/grid"
)

// Summary converts a scored candidate into the census column form.
func Summary(c Candidate) *census.PlaceSummary {
	return &census.PlaceSummary{
		Desc:     c.Desc(),
		Strategy: c.EmbedStrategy,
		Dilation: c.Dilation,
		Peak:     c.Peak,
		AvgLink:  c.AvgLink,
		Score:    c.Score,
	}
}

// CensusFunc returns a census.PlaceFunc that runs Search with the
// template config — Guest and Host are overwritten per pair — and
// summarizes the winner, plus the template's canonical Spec string for
// census.Config.PlaceSpec. Search is deterministic per pair, so
// censuses built with it keep the bit-for-bit shard-merge property;
// the spec string is how Merge tells same-settings shards apart.
func CensusFunc(template Config) (census.PlaceFunc, string) {
	fn := func(g, h grid.Spec) (*census.PlaceSummary, error) {
		cfg := template
		cfg.Guest, cfg.Host = g, h
		res, err := Search(cfg)
		if err != nil {
			return nil, err
		}
		return Summary(res.Best), nil
	}
	return fn, template.Spec()
}
