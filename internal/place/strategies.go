package place

import (
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// DefaultStrategies is the canonical base-construction list shared by
// cmd/place, `sweep -place` and the torusmesh.Place veneer, so all
// three search the same candidate space for a pair: the paper
// dispatcher's pick, and the always-applicable all-primes refinement,
// whose different spread of guest edges across host dimensions often
// wins on congestion. The refinement additionally exposes its
// all-primes intermediate stage, so the search enumerates rotated
// intermediates (core.EmbedViaPrimesMid) — genuinely new embeddings,
// not symmetry variants of old ones. Strategies stay injectable
// (Config.Strategies) for callers that want a different space.
func DefaultStrategies() []Strategy {
	return []Strategy{
		{Name: "paper", Embed: core.Embed},
		{
			Name:  "primes",
			Embed: core.EmbedViaPrimes,
			Mid: func(g, h grid.Spec) (grid.Spec, bool) {
				return core.PrimeIntermediate(g, h), true
			},
			EmbedMidRot: func(g, h grid.Spec, rot []int) (*embed.Embedding, error) {
				return core.EmbedViaPrimesMid(g, h, func(mid grid.Spec) (*embed.Embedding, error) {
					return embed.Rotate(mid, rot)
				})
			},
		},
	}
}
