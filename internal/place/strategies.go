package place

import "torusmesh/internal/core"

// DefaultStrategies is the canonical base-construction list shared by
// cmd/place, `sweep -place` and the torusmesh.Place veneer, so all
// three search the same candidate space for a pair: the paper
// dispatcher's pick, and the always-applicable all-primes refinement,
// whose different spread of guest edges across host dimensions often
// wins on congestion. Strategies stay injectable (Config.Strategies)
// for callers that want a different space.
func DefaultStrategies() []Strategy {
	return []Strategy{
		{Name: "paper", Embed: core.Embed},
		{Name: "primes", Embed: core.EmbedViaPrimes},
	}
}
