// Package perm implements the list-permutation operator of Section 2 of
// Ma & Tao: given a permutation π of [k]+ and a list (i1,...,ik), the
// paper writes π((i1,...,ik)) for (i_{π(1)},...,i_{π(k)}). We use 0-based
// indices throughout: Apply(p, a)[j] = a[p[j]].
//
// Permutation embeddings built on this operator are graph isomorphisms
// between toruses (or meshes) whose shapes are permutations of one
// another, and are the glue steps of the paper's composite embeddings.
package perm

import (
	"fmt"
	"sort"
)

// Perm is a permutation of [k] in image form: the value at position j is
// the source index p[j].
type Perm []int

// Identity returns the identity permutation of [k].
func Identity(k int) Perm {
	p := make(Perm, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate checks that p is a permutation of [len(p)].
func (p Perm) Validate() error {
	seen := make([]bool, len(p))
	for j, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("perm: position %d holds %d, out of range [0,%d)", j, v, len(p))
		}
		if seen[v] {
			return fmt.Errorf("perm: value %d appears twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Apply returns the list (a[p[0]], a[p[1]], ...). It panics if lengths
// differ.
func Apply[T any](p Perm, a []T) []T {
	if len(p) != len(a) {
		panic(fmt.Sprintf("perm: applying permutation of length %d to list of length %d", len(p), len(a)))
	}
	out := make([]T, len(a))
	for j, src := range p {
		out[j] = a[src]
	}
	return out
}

// ApplyInto writes (a[p[0]], a[p[1]], ...) into dst, which must have the
// same length as p. It avoids allocation in hot paths.
func ApplyInto(p Perm, a, dst []int) {
	for j, src := range p {
		dst[j] = a[src]
	}
}

// Inverse returns q with q[p[j]] = j, so Apply(q, Apply(p, a)) = a.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for j, src := range p {
		q[src] = j
	}
	return q
}

// Compose returns the permutation r with Apply(r, a) = Apply(p, Apply(q, a)).
// Applying q first rearranges a, then p rearranges the result, so
// r[j] = q[p[j]].
func Compose(p, q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: composing permutations of different lengths")
	}
	r := make(Perm, len(p))
	for j := range p {
		r[j] = q[p[j]]
	}
	return r
}

// Find returns a permutation p with to[j] = from[p[j]] for all j, or
// false if from and to are not permutations of each other (as multisets).
// When several permutations work, the one matching equal values in
// left-to-right order is returned (stable).
func Find(from, to []int) (Perm, bool) {
	if len(from) != len(to) {
		return nil, false
	}
	// Bucket the positions of each value in from, then consume them in
	// order as values appear in to.
	pos := make(map[int][]int, len(from))
	for i, v := range from {
		pos[v] = append(pos[v], i)
	}
	p := make(Perm, len(to))
	for j, v := range to {
		bucket := pos[v]
		if len(bucket) == 0 {
			return nil, false
		}
		p[j] = bucket[0]
		pos[v] = bucket[1:]
	}
	return p, true
}

// All returns every permutation of [k] in lexicographic order of their
// image form. k must be small (the call is O(k!·k)); the placement
// search caps the dimensions it enumerates. All(0) is empty.
func All(k int) []Perm {
	if k <= 0 {
		return nil
	}
	var out []Perm
	cur := make(Perm, 0, k)
	used := make([]bool, k)
	var rec func()
	rec = func() {
		if len(cur) == k {
			out = append(out, append(Perm(nil), cur...))
			return
		}
		for v := 0; v < k; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

// SameMultiset reports whether a and b contain the same values with the
// same multiplicities.
func SameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
