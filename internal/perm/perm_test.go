package perm

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(4)
	a := []int{10, 20, 30, 40}
	got := Apply(p, a)
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("identity moved element %d", i)
		}
	}
}

func TestApplyMatchesPaperOperator(t *testing.T) {
	// π((i1,...,ik)) = (i_{π(1)},...,i_{π(k)}): with p = (2,0,1) the list
	// (a,b,c) becomes (c,a,b).
	p := Perm{2, 0, 1}
	got := Apply(p, []string{"a", "b", "c"})
	want := []string{"c", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		p := pseudoShuffle(5, seed)
		q := p.Inverse()
		a := []int{1, 2, 3, 4, 5}
		b := Apply(q, Apply(p, a))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCompose(t *testing.T) {
	err := quick.Check(func(s1, s2 uint32) bool {
		p := pseudoShuffle(6, s1)
		q := pseudoShuffle(6, s2)
		a := []int{7, 1, 4, 9, 2, 5}
		lhs := Apply(Compose(p, q), a)
		rhs := Apply(p, Apply(q, a))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFind(t *testing.T) {
	from := []int{6, 8, 80}
	to := []int{80, 6, 8}
	p, ok := Find(from, to)
	if !ok {
		t.Fatal("Find failed")
	}
	got := Apply(p, from)
	for i := range to {
		if got[i] != to[i] {
			t.Fatalf("Apply(Find(...)) = %v, want %v", got, to)
		}
	}
	// Duplicates.
	p, ok = Find([]int{2, 2, 3}, []int{3, 2, 2})
	if !ok {
		t.Fatal("Find with duplicates failed")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Not a permutation.
	if _, ok := Find([]int{2, 3}, []int{3, 3}); ok {
		t.Error("Find accepted mismatched multisets")
	}
	if _, ok := Find([]int{2, 3}, []int{2}); ok {
		t.Error("Find accepted different lengths")
	}
}

func TestValidate(t *testing.T) {
	if err := (Perm{0, 1, 2}).Validate(); err != nil {
		t.Errorf("valid perm rejected: %v", err)
	}
	if err := (Perm{0, 0, 2}).Validate(); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (Perm{0, 3}).Validate(); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]int{2, 3, 2}, []int{3, 2, 2}) {
		t.Error("equal multisets rejected")
	}
	if SameMultiset([]int{2, 3}, []int{2, 2}) {
		t.Error("unequal multisets accepted")
	}
	if SameMultiset([]int{2}, []int{2, 2}) {
		t.Error("different lengths accepted")
	}
}

// pseudoShuffle builds a deterministic permutation of [k] from a seed via
// a linear congruential walk (no math/rand needed in tests).
func pseudoShuffle(k int, seed uint32) Perm {
	p := Identity(k)
	state := seed
	for i := k - 1; i > 0; i-- {
		state = state*1664525 + 1013904223
		j := int(state % uint32(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func TestAll(t *testing.T) {
	if got := All(0); got != nil {
		t.Errorf("All(0) = %v, want nil", got)
	}
	perms := All(3)
	if len(perms) != 6 {
		t.Fatalf("All(3) has %d permutations, want 6", len(perms))
	}
	if fmt.Sprint(perms[0]) != fmt.Sprint(Identity(3)) {
		t.Errorf("All(3)[0] = %v, want identity", perms[0])
	}
	seen := map[string]bool{}
	for i, p := range perms {
		if err := p.Validate(); err != nil {
			t.Errorf("All(3)[%d] = %v: %v", i, p, err)
		}
		key := fmt.Sprint(p)
		if seen[key] {
			t.Errorf("All(3) repeats %v", p)
		}
		seen[key] = true
		if i > 0 && !lexLess(perms[i-1], p) {
			t.Errorf("All(3) not lexicographic at %d: %v then %v", i, perms[i-1], p)
		}
	}
}

func lexLess(a, b Perm) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
