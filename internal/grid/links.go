package grid

// Link ranking: a dense index over the directed links of a torus or
// mesh, so per-link accumulators can be flat arrays instead of maps.
//
// Every directed link leaves some node along some dimension in one of
// two directions, so (from, dim, dir) identifies it uniquely and the
// rank from·2d + 2·dim + dir is injective into [0, Size·2d). Mesh
// boundary slots (and the backward slots of length-2 torus dimensions)
// are simply never produced by dimension-ordered routing; the handful
// of dead slots is the price of a branch-free rank that needs no
// per-spec tables. The slot count is linear in nodes: even a 10⁵-node
// 3-dimensional host ranks its links into fewer than 10⁶ int32 slots.

// LinkRanker maps the directed links of a shape of known dimension to
// dense ranks. The zero value is not meaningful; build one with
// Spec.NewLinkRanker.
type LinkRanker struct {
	dirs int // 2·Dim: rank stride per node
}

// NewLinkRanker returns the link ranker of the spec's dimension.
func (sp Spec) NewLinkRanker() LinkRanker {
	return LinkRanker{dirs: 2 * sp.Dim()}
}

// Slots returns the size of a dense per-link array for a graph with n
// nodes: one slot per (node, dimension, direction).
func (lr LinkRanker) Slots(n int) int { return n * lr.dirs }

// Rank returns the dense rank of the directed link leaving node rank
// from along dimension dim, in the decreasing-coordinate direction when
// neg is set.
func (lr LinkRanker) Rank(from, dim int, neg bool) int {
	r := from*lr.dirs + 2*dim
	if neg {
		r++
	}
	return r
}

// Unrank inverts Rank — the debugging/test form.
func (lr LinkRanker) Unrank(rank int) (from, dim int, neg bool) {
	return rank / lr.dirs, (rank % lr.dirs) / 2, rank%2 == 1
}
