package grid

import (
	"fmt"
	"testing"
)

var batchSpecs = []Spec{
	MustSpec(Torus, Shape{5}),
	MustSpec(Mesh, Shape{7}),
	MustSpec(Torus, Shape{2, 2, 2}),
	MustSpec(Mesh, Shape{2, 2, 2}),
	MustSpec(Torus, Shape{4, 2, 3}),
	MustSpec(Mesh, Shape{4, 2, 3}),
	MustSpec(Torus, Shape{3, 5}),
	MustSpec(Mesh, Shape{6, 9}),
	MustSpec(Torus, Shape{2, 6}),
}

func TestStrides(t *testing.T) {
	s := Shape{4, 2, 3}
	w := s.Strides()
	want := []int{6, 3, 1}
	for j := range want {
		if w[j] != want[j] {
			t.Fatalf("Strides(%s) = %v, want %v", s, w, want)
		}
	}
	for x := 0; x < s.Size(); x++ {
		n := s.NodeAt(x)
		sum := 0
		for j, v := range n {
			sum += v * w[j]
		}
		if sum != x {
			t.Fatalf("stride reconstruction of %d gave %d", x, sum)
		}
	}
}

func TestDistanceRankMatchesDistance(t *testing.T) {
	for _, sp := range batchSpecs {
		n := sp.Size()
		for a := 0; a < n; a++ {
			na := sp.Shape.NodeAt(a)
			for b := 0; b < n; b++ {
				nb := sp.Shape.NodeAt(b)
				if got, want := sp.DistanceRank(a, b), sp.Distance(na, nb); got != want {
					t.Fatalf("%s: DistanceRank(%d,%d) = %d, want %d", sp, a, b, got, want)
				}
			}
		}
	}
}

func TestRankDistancerMatchesDistance(t *testing.T) {
	// Both the power-of-two (shift/mask) and the generic (division)
	// decode paths must agree with the closed-form node distance.
	specs := append([]Spec{
		MustSpec(Torus, Shape{4, 2, 8}),
		MustSpec(Mesh, Shape{4, 2, 8}),
		MustSpec(Torus, Shape{2, 2, 2, 2}),
	}, batchSpecs...)
	for _, sp := range specs {
		rd := sp.NewRankDistancer()
		n := sp.Size()
		var ha, hb []int
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := sp.Distance(sp.Shape.NodeAt(a), sp.Shape.NodeAt(b))
				if got := rd.Max([]int{a}, []int{b}); got != want {
					t.Fatalf("%s: RankDistancer.Max(%d,%d) = %d, want %d", sp, a, b, got, want)
				}
				ha = append(ha, a)
				hb = append(hb, b)
			}
		}
		var wantSum int64
		for i := range ha {
			wantSum += int64(sp.DistanceRank(ha[i], hb[i]))
		}
		if got := rd.Sum(ha, hb); got != wantSum {
			t.Fatalf("%s: RankDistancer.Sum = %d, want %d", sp, got, wantSum)
		}
	}
}

func TestVisitEdgesBatchMatchesVisitEdges(t *testing.T) {
	for _, sp := range batchSpecs {
		for _, blockSize := range []int{1, 3, 0, 1 << 20} {
			t.Run(fmt.Sprintf("%s/block=%d", sp, blockSize), func(t *testing.T) {
				var wantA, wantB []int
				sp.VisitEdges(func(a, b Node) {
					wantA = append(wantA, sp.Shape.Index(a))
					wantB = append(wantB, sp.Shape.Index(b))
				})
				var gotA, gotB []int
				sp.VisitEdgesBatch(blockSize, func(a, b []int) {
					gotA = append(gotA, a...)
					gotB = append(gotB, b...)
				})
				if len(gotA) != len(wantA) || len(gotA) != sp.EdgeCount() {
					t.Fatalf("edge count %d, want %d (EdgeCount %d)", len(gotA), len(wantA), sp.EdgeCount())
				}
				for i := range wantA {
					if gotA[i] != wantA[i] || gotB[i] != wantB[i] {
						t.Fatalf("edge %d: got (%d,%d), want (%d,%d)", i, gotA[i], gotB[i], wantA[i], wantB[i])
					}
				}
			})
		}
	}
}

func TestVisitEdgesBatchRangePartition(t *testing.T) {
	for _, sp := range batchSpecs {
		n := sp.Size()
		// Split [0,n) into three uneven ranges; together they must cover
		// every edge exactly once, in order within each range.
		cuts := []int{0, n / 3, 2*n/3 + 1, n}
		total := 0
		seen := map[[2]int]bool{}
		for i := 0; i+1 < len(cuts); i++ {
			sp.VisitEdgesBatchRange(cuts[i], cuts[i+1], 4, func(a, b []int) {
				for k := range a {
					e := [2]int{a[k], b[k]}
					if seen[e] {
						t.Fatalf("%s: edge %v delivered twice", sp, e)
					}
					seen[e] = true
					total++
				}
			})
		}
		if total != sp.EdgeCount() {
			t.Fatalf("%s: partition delivered %d edges, want %d", sp, total, sp.EdgeCount())
		}
		if got := sp.EdgeCountRange(0, n); got != sp.EdgeCount() {
			t.Fatalf("%s: EdgeCountRange(0,n) = %d, want %d", sp, got, sp.EdgeCount())
		}
	}
}

// TestVisitEdgesBatchRange32Parity: the compact iterator must deliver
// exactly the edges of the wide one, in the same order, across kinds,
// dimensions and sub-ranges.
func TestVisitEdgesBatchRange32Parity(t *testing.T) {
	for _, sp := range batchSpecs {
		n := sp.Size()
		ranges := [][2]int{{0, n}, {0, n / 2}, {n / 2, n}, {1, n - 1}}
		for _, r := range ranges {
			var wide [][2]int
			sp.VisitEdgesBatchRange(r[0], r[1], 3, func(a, b []int) {
				for i := range a {
					wide = append(wide, [2]int{a[i], b[i]})
				}
			})
			var compact [][2]int
			sp.VisitEdgesBatchRange32(r[0], r[1], 3, func(a, b []int32) {
				for i := range a {
					compact = append(compact, [2]int{int(a[i]), int(b[i])})
				}
			})
			if len(wide) != len(compact) {
				t.Fatalf("%s range %v: %d wide edges, %d compact", sp, r, len(wide), len(compact))
			}
			for i := range wide {
				if wide[i] != compact[i] {
					t.Fatalf("%s range %v: edge %d is %v wide, %v compact", sp, r, i, wide[i], compact[i])
				}
			}
		}
	}
}

// TestEdgeDilationStripedParity: the striped parallel pass must agree
// bit-for-bit with the serial EdgeDilation on scrambled tables — the
// property that lets the annealing engine re-validate in parallel.
func TestEdgeDilationStripedParity(t *testing.T) {
	for _, sp := range batchSpecs {
		n := sp.Size()
		rd := sp.NewRankDistancer()
		// A deterministic scramble: reversal composed with a stride walk.
		table := make([]int, n)
		for i := range table {
			table[i] = (i*7 + 3) % n
		}
		wantMax, wantAvg := sp.EdgeDilation(table, rd, make([]int, DefaultEdgeBlock), make([]int, DefaultEdgeBlock))
		gotMax, gotAvg := sp.EdgeDilationStriped(table, rd)
		if gotMax != wantMax || gotAvg != wantAvg {
			t.Fatalf("%s: striped (%d, %v), serial (%d, %v)", sp, gotMax, gotAvg, wantMax, wantAvg)
		}
	}
}

func TestFitsInt32(t *testing.T) {
	if !MustSpec(Torus, Shape{4, 4}).FitsInt32() {
		t.Error("a 16-node torus should fit int32 ranks")
	}
	defer func() {
		if recover() == nil {
			t.Error("VisitEdgesBatchRange32 accepted a shape beyond int32 ranks")
		}
	}()
	big := Spec{Kind: Mesh, Shape: Shape{1 << 16, 1 << 16}}
	if big.FitsInt32() {
		t.Fatal("2^32-node mesh reported as fitting int32")
	}
	big.VisitEdgesBatchRange32(0, 1, 8, func(a, b []int32) {})
}
