package grid

import (
	"testing"
	"testing/quick"
)

func TestParseShape(t *testing.T) {
	cases := []struct {
		in   string
		want Shape
		ok   bool
	}{
		{"4x2x3", Shape{4, 2, 3}, true},
		{"4,2,3", Shape{4, 2, 3}, true},
		{" 8 ", Shape{8}, true},
		{"2x2x2x2", Shape{2, 2, 2, 2}, true},
		{"", nil, false},
		{"4x1x3", nil, false},
		{"4xax3", nil, false},
		{"0", nil, false},
	}
	for _, c := range cases {
		got, err := ParseShape(c.in)
		if c.ok && (err != nil || !got.Equal(c.want)) {
			t.Errorf("ParseShape(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseShape(%q) succeeded with %v; want error", c.in, got)
		}
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{4, 2, 3}
	if s.Size() != 24 {
		t.Fatalf("Size = %d, want 24", s.Size())
	}
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", s.Dim())
	}
	if s.IsSquare() {
		t.Error("4x2x3 reported square")
	}
	if !Square(3, 5).IsSquare() {
		t.Error("5x5x5 not reported square")
	}
	if !Hypercube(4).IsHypercube() {
		t.Error("2x2x2x2 not reported hypercube")
	}
	if (Shape{2, 3}).IsHypercube() {
		t.Error("2x3 reported hypercube")
	}
	if s.String() != "4x2x3" {
		t.Errorf("String = %q", s.String())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	shapes := []Shape{{4, 2, 3}, {5}, {2, 2, 2, 2}, {3, 7}, {6, 4, 2, 3}}
	for _, s := range shapes {
		for x := 0; x < s.Size(); x++ {
			n := s.NodeAt(x)
			if !n.InBounds(s) {
				t.Fatalf("%s: NodeAt(%d) = %s out of bounds", s, x, n)
			}
			if got := s.Index(n); got != x {
				t.Fatalf("%s: Index(NodeAt(%d)) = %d", s, x, got)
			}
		}
	}
}

// TestPaperExampleDistances reproduces the worked distances below
// Figures 1 and 2 of the paper: in the (4,2,3)-torus the distance between
// (0,0,1) and (3,0,0) is 2, in the (4,2,3)-mesh it is 4.
func TestPaperExampleDistances(t *testing.T) {
	s := Shape{4, 2, 3}
	a := Node{0, 0, 1}
	b := Node{3, 0, 0}
	if d := DistanceTorus(s, a, b); d != 2 {
		t.Errorf("torus distance = %d, want 2", d)
	}
	if d := DistanceMesh(s, a, b); d != 4 {
		t.Errorf("mesh distance = %d, want 4", d)
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	specs := []Spec{
		TorusSpec(4, 2, 3),
		MeshSpec(4, 2, 3),
		TorusSpec(5, 5),
		MeshSpec(5, 5),
		RingSpec(7),
		LineSpec(7),
		TorusSpec(2, 2, 2),
		MeshSpec(2, 2, 2),
		TorusSpec(3, 2),
		MeshSpec(2, 6),
	}
	for _, sp := range specs {
		if err := Build(sp).CheckDistances(); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

func TestDeltaTLEDeltaM(t *testing.T) {
	// δt never exceeds δm for the same shape (Section 2).
	err := quick.Check(func(raw [3]uint8, ai, bi uint16) bool {
		s := Shape{int(raw[0]%4) + 2, int(raw[1]%4) + 2, int(raw[2]%4) + 2}
		a := s.NodeAt(int(ai) % s.Size())
		b := s.NodeAt(int(bi) % s.Size())
		return DistanceTorus(s, a, b) <= DistanceMesh(s, a, b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	// Symmetry and identity for both distance measures.
	err := quick.Check(func(raw [3]uint8, ai, bi uint16) bool {
		s := Shape{int(raw[0]%5) + 2, int(raw[1]%5) + 2, int(raw[2]%5) + 2}
		a := s.NodeAt(int(ai) % s.Size())
		b := s.NodeAt(int(bi) % s.Size())
		if DistanceTorus(s, a, b) != DistanceTorus(s, b, a) {
			return false
		}
		if DistanceMesh(s, a, b) != DistanceMesh(s, b, a) {
			return false
		}
		if DistanceTorus(s, a, a) != 0 || DistanceMesh(s, a, a) != 0 {
			return false
		}
		if !a.Equal(b) && (DistanceTorus(s, a, b) == 0 || DistanceMesh(s, a, b) == 0) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	// Interior node of a mesh has 2d neighbors; corners have d.
	m := MeshSpec(4, 4, 4)
	if got := len(m.Neighbors(Node{1, 1, 1}, nil)); got != 6 {
		t.Errorf("interior mesh node: %d neighbors, want 6", got)
	}
	if got := len(m.Neighbors(Node{0, 0, 0}, nil)); got != 3 {
		t.Errorf("corner mesh node: %d neighbors, want 3", got)
	}
	// Every torus node has the same degree; length-2 dimensions
	// contribute a single neighbor.
	tor := TorusSpec(4, 2, 3)
	if got := len(tor.Neighbors(Node{0, 0, 0}, nil)); got != 5 {
		t.Errorf("torus node: %d neighbors, want 5", got)
	}
	// Neighbors really are at distance 1.
	for _, sp := range []Spec{m, tor, RingSpec(5), LineSpec(5)} {
		node := sp.Shape.NodeAt(sp.Size() / 2)
		for _, nb := range sp.Neighbors(node, nil) {
			if d := sp.Distance(node, nb); d != 1 {
				t.Errorf("%s: neighbor %s of %s at distance %d", sp, nb, node, d)
			}
		}
	}
}

func TestEdgeCountMatchesVisit(t *testing.T) {
	specs := []Spec{
		TorusSpec(4, 2, 3), MeshSpec(4, 2, 3),
		TorusSpec(2, 2), MeshSpec(2, 2),
		RingSpec(6), LineSpec(6), TorusSpec(3, 3, 3), MeshSpec(5, 2),
	}
	for _, sp := range specs {
		count := 0
		sp.VisitEdges(func(a, b Node) {
			if sp.Distance(a, b) != 1 {
				t.Errorf("%s: visited non-edge %s-%s", sp, a, b)
			}
			count++
		})
		if count != sp.EdgeCount() {
			t.Errorf("%s: visited %d edges, EdgeCount=%d", sp, count, sp.EdgeCount())
		}
	}
}

func TestEdgeCountAgainstAdjacency(t *testing.T) {
	specs := []Spec{TorusSpec(4, 2, 3), MeshSpec(3, 3), TorusSpec(2, 2, 2), RingSpec(2)}
	for _, sp := range specs {
		g := Build(sp)
		half := 0
		for _, adj := range g.Adj {
			half += len(adj)
		}
		if half%2 != 0 {
			t.Fatalf("%s: odd adjacency sum %d", sp, half)
		}
		if got := half / 2; got != sp.EdgeCount() {
			t.Errorf("%s: adjacency says %d edges, EdgeCount=%d", sp, got, sp.EdgeCount())
		}
	}
}

func TestDegrees(t *testing.T) {
	// A hypercube of dimension d is d-regular.
	h := TorusSpec(2, 2, 2, 2)
	if got := h.MaxDegree(); got != 4 {
		t.Errorf("hypercube max degree = %d, want 4", got)
	}
	if got := MeshSpec(2, 2, 2, 2).MaxDegree(); got != 4 {
		t.Errorf("hypercube-as-mesh max degree = %d, want 4", got)
	}
	if got := TorusSpec(5, 5).MaxDegree(); got != 4 {
		t.Errorf("5x5 torus max degree = %d, want 4", got)
	}
	if got := MeshSpec(5, 5).MaxDegree(); got != 4 {
		t.Errorf("5x5 mesh max degree = %d, want 4", got)
	}
	if got := MeshSpec(5, 5).Degree(Node{0, 0}); got != 2 {
		t.Errorf("5x5 mesh corner degree = %d, want 2", got)
	}
}

func TestSpecParse(t *testing.T) {
	sp, err := ParseSpec("torus:4x2x3")
	if err != nil || sp.Kind != Torus || !sp.Shape.Equal(Shape{4, 2, 3}) {
		t.Errorf("ParseSpec(torus:4x2x3) = %v, %v", sp, err)
	}
	if _, err := ParseSpec("ring:3x3"); err == nil {
		t.Error("ring:3x3 should fail (rings are 1-dimensional)")
	}
	if _, err := ParseSpec("blob:3x3"); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := ParseSpec("mesh"); err == nil {
		t.Error("missing shape should fail")
	}
	if got := RingSpec(8).String(); got != "ring(8)" {
		t.Errorf("RingSpec String = %q", got)
	}
	if got := MeshSpec(4, 2).String(); got != "mesh(4x2)" {
		t.Errorf("MeshSpec String = %q", got)
	}
}

func TestGraphConnected(t *testing.T) {
	for _, sp := range []Spec{TorusSpec(4, 2, 3), MeshSpec(2, 2, 2), RingSpec(5), LineSpec(2)} {
		if !Build(sp).Connected() {
			t.Errorf("%s not connected", sp)
		}
	}
}
