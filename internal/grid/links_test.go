package grid

import "testing"

// TestLinkRankerDense: ranks are unique over every (node, dim, dir)
// triple, stay inside Slots, and Unrank inverts Rank.
func TestLinkRankerDense(t *testing.T) {
	for _, sp := range []Spec{TorusSpec(4, 3), MeshSpec(2, 5, 3), RingSpec(7)} {
		lr := sp.NewLinkRanker()
		n := sp.Size()
		seen := make([]bool, lr.Slots(n))
		for from := 0; from < n; from++ {
			for dim := 0; dim < sp.Dim(); dim++ {
				for _, neg := range []bool{false, true} {
					r := lr.Rank(from, dim, neg)
					if r < 0 || r >= len(seen) {
						t.Fatalf("%s: rank(%d,%d,%t) = %d out of [0,%d)", sp, from, dim, neg, r, len(seen))
					}
					if seen[r] {
						t.Fatalf("%s: rank %d assigned twice", sp, r)
					}
					seen[r] = true
					gf, gd, gn := lr.Unrank(r)
					if gf != from || gd != dim || gn != neg {
						t.Fatalf("%s: unrank(%d) = (%d,%d,%t), want (%d,%d,%t)", sp, r, gf, gd, gn, from, dim, neg)
					}
				}
			}
		}
		for r, ok := range seen {
			if !ok {
				t.Fatalf("%s: slot %d never ranked — the index is not dense", sp, r)
			}
		}
	}
}
