package grid

import "testing"

func TestNodeStringAndConcat(t *testing.T) {
	n := Node{1, 2, 3}
	if n.String() != "(1,2,3)" {
		t.Errorf("Node.String = %q", n.String())
	}
	c := Concat(Node{1, 2}, Node{3}, Node{})
	if !c.Equal(Node{1, 2, 3}) {
		t.Errorf("Concat = %v", c)
	}
	if n.Equal(Node{1, 2}) {
		t.Error("Equal accepted different lengths")
	}
	clone := n.Clone()
	clone[0] = 9
	if n[0] == 9 {
		t.Error("Clone aliases the original")
	}
}

func TestSpecIsHypercube(t *testing.T) {
	if !TorusSpec(2, 2, 2).IsHypercube() {
		t.Error("2x2x2 torus not hypercube")
	}
	if MeshSpec(2, 3).IsHypercube() {
		t.Error("2x3 mesh reported hypercube")
	}
}

func TestKindString(t *testing.T) {
	if Torus.String() != "torus" || Mesh.String() != "mesh" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "torus" {
		t.Error("invalid kind stringified as torus")
	}
	if Kind(9).Valid() {
		t.Error("invalid kind accepted")
	}
	if _, err := ParseKind("array"); err != nil {
		t.Error("array alias rejected")
	}
	if _, err := ParseKind("grid"); err != nil {
		t.Error("grid alias rejected")
	}
}

func TestNewSpecValidation(t *testing.T) {
	if _, err := NewSpec(Kind(7), Shape{2, 2}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSpec(Torus, Shape{2, 1}); err == nil {
		t.Error("invalid shape accepted")
	}
	sp, err := NewSpec(Mesh, Shape{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// NewSpec clones the shape.
	orig := Shape{2, 3}
	sp2, _ := NewSpec(Mesh, orig)
	orig[0] = 9
	if sp2.Shape[0] == 9 {
		t.Error("NewSpec aliases the caller's shape")
	}
	_ = sp
}

func TestMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpec did not panic")
		}
	}()
	MustSpec(Torus, Shape{0})
}

func TestGraphAllPairsAndIsEdge(t *testing.T) {
	g := Build(RingSpec(5))
	d := g.AllPairs()
	if d[0][2] != 2 || d[0][4] != 1 {
		t.Errorf("AllPairs distances wrong: %v", d[0])
	}
	if !g.IsEdge(0, 1) || g.IsEdge(0, 2) {
		t.Error("IsEdge wrong")
	}
	if !g.Connected() {
		t.Error("ring disconnected")
	}
}

func TestInBoundsEdges(t *testing.T) {
	s := Shape{3, 3}
	if (Node{1}).InBounds(s) {
		t.Error("short node in bounds")
	}
	if (Node{1, 3}).InBounds(s) {
		t.Error("overflow coordinate in bounds")
	}
	if (Node{-1, 0}).InBounds(s) {
		t.Error("negative coordinate in bounds")
	}
}
