package grid

import "testing"

func TestNodeStringAndConcat(t *testing.T) {
	n := Node{1, 2, 3}
	if n.String() != "(1,2,3)" {
		t.Errorf("Node.String = %q", n.String())
	}
	c := Concat(Node{1, 2}, Node{3}, Node{})
	if !c.Equal(Node{1, 2, 3}) {
		t.Errorf("Concat = %v", c)
	}
	if n.Equal(Node{1, 2}) {
		t.Error("Equal accepted different lengths")
	}
	clone := n.Clone()
	clone[0] = 9
	if n[0] == 9 {
		t.Error("Clone aliases the original")
	}
}

func TestSpecIsHypercube(t *testing.T) {
	if !TorusSpec(2, 2, 2).IsHypercube() {
		t.Error("2x2x2 torus not hypercube")
	}
	if MeshSpec(2, 3).IsHypercube() {
		t.Error("2x3 mesh reported hypercube")
	}
}

func TestKindString(t *testing.T) {
	if Torus.String() != "torus" || Mesh.String() != "mesh" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "torus" {
		t.Error("invalid kind stringified as torus")
	}
	if Kind(9).Valid() {
		t.Error("invalid kind accepted")
	}
	if _, err := ParseKind("array"); err != nil {
		t.Error("array alias rejected")
	}
	if _, err := ParseKind("grid"); err != nil {
		t.Error("grid alias rejected")
	}
}

func TestNewSpecValidation(t *testing.T) {
	if _, err := NewSpec(Kind(7), Shape{2, 2}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSpec(Torus, Shape{2, 1}); err == nil {
		t.Error("invalid shape accepted")
	}
	sp, err := NewSpec(Mesh, Shape{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// NewSpec clones the shape.
	orig := Shape{2, 3}
	sp2, _ := NewSpec(Mesh, orig)
	orig[0] = 9
	if sp2.Shape[0] == 9 {
		t.Error("NewSpec aliases the caller's shape")
	}
	_ = sp
}

func TestMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpec did not panic")
		}
	}()
	MustSpec(Torus, Shape{0})
}

func TestGraphAllPairsAndIsEdge(t *testing.T) {
	g := Build(RingSpec(5))
	d := g.AllPairs()
	if d[0][2] != 2 || d[0][4] != 1 {
		t.Errorf("AllPairs distances wrong: %v", d[0])
	}
	if !g.IsEdge(0, 1) || g.IsEdge(0, 2) {
		t.Error("IsEdge wrong")
	}
	if !g.Connected() {
		t.Error("ring disconnected")
	}
}

func TestInBoundsEdges(t *testing.T) {
	s := Shape{3, 3}
	if (Node{1}).InBounds(s) {
		t.Error("short node in bounds")
	}
	if (Node{1, 3}).InBounds(s) {
		t.Error("overflow coordinate in bounds")
	}
	if (Node{-1, 0}).InBounds(s) {
		t.Error("negative coordinate in bounds")
	}
}

// TestRankDistancerMaterializeParity: the division-free materialized
// decode must agree with the on-the-fly decode (and with the coordinate
// Distance) on every rank pair of assorted specs.
func TestRankDistancerMaterializeParity(t *testing.T) {
	specs := []Spec{
		MeshSpec(4, 3, 2),
		TorusSpec(5, 4),
		TorusSpec(2, 3, 2),
		MeshSpec(24),
		RingSpec(7),
	}
	for _, sp := range specs {
		plain := sp.NewRankDistancer()
		mat := sp.NewRankDistancer().Materialize()
		n := sp.Size()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := sp.Distance(sp.Shape.NodeAt(a), sp.Shape.NodeAt(b))
				if got := plain.Distance(a, b); got != want {
					t.Fatalf("%s: plain Distance(%d,%d) = %d, want %d", sp, a, b, got, want)
				}
				if got := mat.Distance(a, b); got != want {
					t.Fatalf("%s: materialized Distance(%d,%d) = %d, want %d", sp, a, b, got, want)
				}
			}
		}
	}
	// Power-of-two shapes keep the shift/mask path; Materialize is a
	// no-op that must not disturb it.
	sp := TorusSpec(4, 8)
	rd := sp.NewRankDistancer().Materialize()
	for a := 0; a < sp.Size(); a += 3 {
		for b := 0; b < sp.Size(); b += 5 {
			if got, want := rd.Distance(a, b), sp.Distance(sp.Shape.NodeAt(a), sp.Shape.NodeAt(b)); got != want {
				t.Fatalf("%s: pow2 Distance(%d,%d) = %d, want %d", sp, a, b, got, want)
			}
		}
	}
}

// TestRankDistancerMaxSum: the fused reduction agrees with Max and Sum.
func TestRankDistancerMaxSum(t *testing.T) {
	sp := TorusSpec(5, 3, 2)
	rd := sp.NewRankDistancer().Materialize()
	var ha, hb []int
	for a := 0; a < sp.Size(); a++ {
		ha = append(ha, a)
		hb = append(hb, (a*7+3)%sp.Size())
	}
	max, sum := rd.MaxSum(ha, hb)
	if wantMax := rd.Max(ha, hb); max != wantMax {
		t.Errorf("MaxSum max = %d, Max = %d", max, wantMax)
	}
	if wantSum := rd.Sum(ha, hb); sum != wantSum {
		t.Errorf("MaxSum sum = %d, Sum = %d", sum, wantSum)
	}
}
