package grid

import "fmt"

// Graph is an explicit adjacency-list representation of a torus or mesh,
// used as ground truth for the closed-form distance expressions and by the
// exhaustive search modules. Nodes are identified by row-major index
// (Shape.Index).
type Graph struct {
	Spec Spec
	Adj  [][]int
}

// Build constructs the explicit graph for a spec. Intended for small
// graphs (verification, exhaustive search, simulation); the embedding
// algorithms themselves never materialize adjacency.
func Build(sp Spec) *Graph {
	n := sp.Size()
	g := &Graph{Spec: sp, Adj: make([][]int, n)}
	var buf []Node
	for x := 0; x < n; x++ {
		node := sp.Shape.NodeAt(x)
		buf = sp.Neighbors(node, buf[:0])
		adj := make([]int, 0, len(buf))
		for _, nb := range buf {
			adj = append(adj, sp.Shape.Index(nb))
		}
		g.Adj[x] = adj
	}
	return g
}

// Size returns the number of nodes.
func (g *Graph) Size() int { return len(g.Adj) }

// BFS returns the distance from src to every node (-1 if unreachable,
// which never happens for valid specs since toruses and meshes are
// connected).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, len(g.Adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, len(g.Adj))
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairs returns the full distance matrix by running BFS from every
// node. Quadratic in graph size; use only on small instances.
func (g *Graph) AllPairs() [][]int {
	d := make([][]int, g.Size())
	for i := range d {
		d[i] = g.BFS(i)
	}
	return d
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	if g.Size() == 0 {
		return false
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// CheckDistances verifies that the closed-form distance of the spec
// matches BFS distance for every pair of nodes. Returns the first
// discrepancy found, or nil.
func (g *Graph) CheckDistances() error {
	n := g.Size()
	for i := 0; i < n; i++ {
		bfs := g.BFS(i)
		a := g.Spec.Shape.NodeAt(i)
		for j := 0; j < n; j++ {
			b := g.Spec.Shape.NodeAt(j)
			if got, want := g.Spec.Distance(a, b), bfs[j]; got != want {
				return fmt.Errorf("grid: %s distance(%s,%s) formula=%d bfs=%d", g.Spec, a, b, got, want)
			}
		}
	}
	return nil
}

// IsEdge reports whether x and y are adjacent.
func (g *Graph) IsEdge(x, y int) bool {
	for _, w := range g.Adj[x] {
		if w == y {
			return true
		}
	}
	return false
}
