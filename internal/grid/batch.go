package grid

import (
	"math"
	"sync"

	"torusmesh/internal/par"
)

// This file is the index-native substrate of the batch embedding
// engine: row-major strides, a rank-level distance function, and a
// blocked edge iterator that enumerates the same edges as VisitEdges
// but delivers them as parallel slices of endpoint ranks, sliceable
// into disjoint node ranges for parallel measurement. Edge blocks come
// in two widths: the historical []int form, and a compact []int32 form
// (VisitEdgesBatchRange32) for shapes whose ranks fit int32 — half the
// bytes per pooled block, which is every torus and mesh below 2³¹
// nodes.

// DefaultEdgeBlock is the default number of edges per block handed to
// VisitEdgesBatch callbacks. Large enough to amortize the callback and
// keep kernels in their tight loops, small enough to stay cache-warm.
const DefaultEdgeBlock = 8192

// edgeBufs is a pooled pair of default-block-size endpoint buffers for
// VisitEdgesBatchRange; edgeBufs32 is its compact twin.
type edgeBufs struct{ a, b []int }

type edgeBufs32 struct{ a, b []int32 }

var edgeBufPool = sync.Pool{New: func() any {
	return &edgeBufs{
		a: make([]int, DefaultEdgeBlock),
		b: make([]int, DefaultEdgeBlock),
	}
}}

var edgeBuf32Pool = sync.Pool{New: func() any {
	return &edgeBufs32{
		a: make([]int32, DefaultEdgeBlock),
		b: make([]int32, DefaultEdgeBlock),
	}
}}

// FitsInt32 reports whether every node rank of the spec fits an int32 —
// the gate for the compact edge-block and table representations. Hosts
// at or past 2³¹ nodes must stay on the wide []int paths.
func (sp Spec) FitsInt32() bool { return sp.Size() <= math.MaxInt32 }

// Strides returns the row-major weights of the shape: Strides()[j] is
// the rank delta of incrementing coordinate j, so
// Index(n) = Σ n[j]·Strides()[j]. (These are the radix weights w of
// Definition 7, without the leading w0 = n.)
func (s Shape) Strides() []int {
	d := len(s)
	w := make([]int, d)
	acc := 1
	for j := d - 1; j >= 0; j-- {
		w[j] = acc
		acc *= s[j]
	}
	return w
}

// NodeInto writes the row-major coordinates of rank x into dst, the
// allocation-free form of NodeAt for batch consumers. dst must have
// length Dim().
func (s Shape) NodeInto(dst Node, x int) {
	idxToNode(s, x, dst)
}

// DistanceRank returns the graph distance between the nodes with
// row-major ranks a and b without materializing coordinates — the
// rank-native form of Lemmas 5 and 6. One-off convenience form of
// RankDistancer; block consumers should compile a RankDistancer once.
func (sp Spec) DistanceRank(a, b int) int {
	return sp.NewRankDistancer().one(a, b)
}

// RankDistancer is a compiled block reducer over rank-pair distances:
// construction hoists the shape, kind, and — when every dimension
// length is a power of two (hypercubes and the Theorem 33 family) — the
// shift/mask digit decode out of the per-edge loop, replacing the
// serial division chain with independent shifts. Materialize trades
// O(dim·Size) memory for division-free decode on arbitrary radices.
type RankDistancer struct {
	shape Shape
	torus bool
	pow2  bool
	shift []uint    // shift[j]: trailing zero count of stride j
	mask  []int     // mask[j]: shape[j]-1
	dig   [][]int32 // dig[j][r]: digit j of rank r, when materialized
}

// NewRankDistancer compiles the distance reduction for the spec.
func (sp Spec) NewRankDistancer() *RankDistancer {
	rd := &RankDistancer{shape: sp.Shape, torus: sp.Kind == Torus, pow2: true}
	for _, l := range sp.Shape {
		if l&(l-1) != 0 {
			rd.pow2 = false
			break
		}
	}
	if rd.pow2 {
		d := sp.Dim()
		rd.shift = make([]uint, d)
		rd.mask = make([]int, d)
		var acc uint
		for j := d - 1; j >= 0; j-- {
			rd.shift[j] = acc
			rd.mask[j] = sp.Shape[j] - 1
			l := sp.Shape[j]
			for l > 1 {
				acc++
				l >>= 1
			}
		}
	}
	return rd
}

// Materialize precomputes the digit decode of every rank of the shape
// into per-dimension tables, so that non-power-of-two distances become
// table lookups instead of division chains. Worth it when the distancer
// will be driven over many more rank pairs than the shape has nodes —
// the census engine's regime. Power-of-two shapes already decode with
// shifts and are left untouched. Returns the receiver for chaining;
// afterwards both ranks of every query must lie in [0, Size()).
func (rd *RankDistancer) Materialize() *RankDistancer {
	if rd.pow2 || rd.dig != nil {
		return rd
	}
	d := len(rd.shape)
	n := rd.shape.Size()
	rd.dig = make([][]int32, d)
	for j := range rd.dig {
		rd.dig[j] = make([]int32, n)
	}
	coord := make(Node, d)
	for r := 0; r < n; r++ {
		for j := 0; j < d; j++ {
			rd.dig[j][r] = int32(coord[j])
		}
		for j := d - 1; j >= 0; j-- {
			coord[j]++
			if coord[j] < rd.shape[j] {
				break
			}
			coord[j] = 0
		}
	}
	return rd
}

// Distance returns the graph distance between the nodes with ranks a
// and b — the exported form of the compiled reduction, for consumers
// that gather their own rank pairs (e.g. many-to-one simulations).
func (rd *RankDistancer) Distance(a, b int) int { return rd.one(a, b) }

// one returns the distance between ranks a and b.
func (rd *RankDistancer) one(a, b int) int {
	dist := 0
	if rd.dig != nil {
		for j := len(rd.dig) - 1; j >= 0; j-- {
			dj := rd.dig[j]
			diff := int(dj[a]) - int(dj[b])
			if diff < 0 {
				diff = -diff
			}
			if rd.torus {
				if w := rd.shape[j] - diff; w < diff {
					diff = w
				}
			}
			dist += diff
		}
		return dist
	}
	if rd.pow2 {
		for j := len(rd.shape) - 1; j >= 0; j-- {
			mask := rd.mask[j]
			diff := (a>>rd.shift[j])&mask - (b>>rd.shift[j])&mask
			if diff < 0 {
				diff = -diff
			}
			if rd.torus {
				if w := mask + 1 - diff; w < diff {
					diff = w
				}
			}
			dist += diff
		}
		return dist
	}
	ua, ub := uint(a), uint(b)
	for j := len(rd.shape) - 1; j >= 0; j-- {
		l := uint(rd.shape[j])
		diff := int(ua%l) - int(ub%l)
		ua /= l
		ub /= l
		if diff < 0 {
			diff = -diff
		}
		if rd.torus {
			if w := int(l) - diff; w < diff {
				diff = w
			}
		}
		dist += diff
	}
	return dist
}

// Max returns the maximum distance over a block of rank pairs — the
// inner reduction of the batch dilation path.
func (rd *RankDistancer) Max(ha, hb []int) int {
	max := 0
	for i := range ha {
		if d := rd.one(ha[i], hb[i]); d > max {
			max = d
		}
	}
	return max
}

// Sum returns the summed distance over a block of rank pairs — the
// inner reduction of the batch average-dilation path.
func (rd *RankDistancer) Sum(ha, hb []int) int64 {
	var sum int64
	for i := range ha {
		sum += int64(rd.one(ha[i], hb[i]))
	}
	return sum
}

// MaxSum fuses Max and Sum into a single pass over a block of rank
// pairs, so consumers that want both dilation and average dilation (the
// census engine) decode each pair once instead of twice.
func (rd *RankDistancer) MaxSum(ha, hb []int) (max int, sum int64) {
	return maxSum(rd, ha, hb)
}

// MaxSum32 is MaxSum over compact rank blocks — the reduction behind
// the striped dilation pass on int32-sized hosts.
func (rd *RankDistancer) MaxSum32(ha, hb []int32) (max int, sum int64) {
	return maxSum(rd, ha, hb)
}

func maxSum[T int | int32](rd *RankDistancer, ha, hb []T) (max int, sum int64) {
	for i := range ha {
		d := rd.one(int(ha[i]), int(hb[i]))
		if d > max {
			max = d
		}
		sum += int64(d)
	}
	return max, sum
}

// EdgeDilation returns the maximum and mean distance, under rd, between
// the relabeled endpoints table[a] and table[b] of every edge (a, b) of
// the graph — the fused single-pass measurement of a placement table's
// dilation and average dilation, shared by the census and placement
// engines. ha and hb are caller-provided gather buffers of at least
// DefaultEdgeBlock entries (both engines pool them). Every table entry
// must be a valid rank for rd; callers validate the table first.
func (sp Spec) EdgeDilation(table []int, rd *RankDistancer, ha, hb []int) (max int, avg float64) {
	sum, edges := int64(0), int64(0)
	sp.VisitEdgesBatchRange(0, sp.Size(), DefaultEdgeBlock, func(a, b []int) {
		ga, gb := ha[:len(a)], hb[:len(b)]
		for i := range a {
			ga[i] = table[a[i]]
			gb[i] = table[b[i]]
		}
		m, s := rd.MaxSum(ga, gb)
		if m > max {
			max = m
		}
		sum += s
		edges += int64(len(a))
	})
	if edges > 0 {
		avg = float64(sum) / float64(edges)
	}
	return max, avg
}

// EdgeDilationStriped is the parallel form of EdgeDilation: source-rank
// ranges stripe across the internal/par pool, each worker reducing its
// own edge blocks with pooled gather buffers, and the per-range
// (max, sum, edges) triples merge commutatively — so the result is
// bit-identical to EdgeDilation regardless of worker count or
// scheduling. When both the guest's ranks and the host's (rd's shape)
// fit int32, the blocks and gather buffers take the compact int32 form,
// halving the per-worker buffer bytes. This is the re-validation pass
// of the annealing engine, where the table is large and the check sits
// on the serial path of the anneal loop.
func (sp Spec) EdgeDilationStriped(table []int, rd *RankDistancer) (max int, avg float64) {
	n := sp.Size()
	var mu sync.Mutex
	var sum, edges int64
	compact := sp.FitsInt32() && rd.shape.Size() <= math.MaxInt32
	merge := func(m int, s, e int64) {
		mu.Lock()
		if m > max {
			max = m
		}
		sum += s
		edges += e
		mu.Unlock()
	}
	par.Blocks(n, par.Grain(n, 4096), func(lo, hi int) {
		lmax, lsum, ledges := 0, int64(0), int64(0)
		if compact {
			bufs := edgeBuf32Pool.Get().(*edgeBufs32)
			sp.VisitEdgesBatchRange32(lo, hi, DefaultEdgeBlock, func(a, b []int32) {
				ga, gb := bufs.a[:len(a)], bufs.b[:len(b)]
				for i := range a {
					ga[i] = int32(table[a[i]])
					gb[i] = int32(table[b[i]])
				}
				m, s := rd.MaxSum32(ga, gb)
				if m > lmax {
					lmax = m
				}
				lsum += s
				ledges += int64(len(a))
			})
			edgeBuf32Pool.Put(bufs)
		} else {
			bufs := edgeBufPool.Get().(*edgeBufs)
			sp.VisitEdgesBatchRange(lo, hi, DefaultEdgeBlock, func(a, b []int) {
				ga, gb := bufs.a[:len(a)], bufs.b[:len(b)]
				for i := range a {
					ga[i] = table[a[i]]
					gb[i] = table[b[i]]
				}
				m, s := rd.MaxSum(ga, gb)
				if m > lmax {
					lmax = m
				}
				lsum += s
				ledges += int64(len(a))
			})
			edgeBufPool.Put(bufs)
		}
		merge(lmax, lsum, ledges)
	})
	if edges > 0 {
		avg = float64(sum) / float64(edges)
	}
	return max, avg
}

// EdgeCountRange returns the number of edges VisitEdgesBatchRange
// enumerates for source ranks in [lo, hi).
func (sp Spec) EdgeCountRange(lo, hi int) int {
	count := 0
	sp.VisitEdgesBatchRange(lo, hi, DefaultEdgeBlock, func(a, b []int) {
		count += len(a)
	})
	return count
}

// VisitEdgesBatch enumerates every edge of the graph in blocks: fn is
// called with parallel slices a, b holding the row-major ranks of the
// endpoints of up to blockSize edges. The slices are reused between
// calls; copy them if retained. The edges and their order are exactly
// those of VisitEdges. blockSize <= 0 selects DefaultEdgeBlock.
func (sp Spec) VisitEdgesBatch(blockSize int, fn func(a, b []int)) {
	sp.VisitEdgesBatchRange(0, sp.Size(), blockSize, fn)
}

// VisitEdgesBatchRange enumerates the edges whose canonical source node
// (the lower endpoint in VisitEdges order) has rank in [lo, hi). The
// ranges {[r_i, r_{i+1})} of a partition of [0, Size()) enumerate every
// edge exactly once between them, which is what lets the measurement
// paths stripe edge blocks across workers without coordination.
func (sp Spec) VisitEdgesBatchRange(lo, hi, blockSize int, fn func(a, b []int)) {
	// Default-sized endpoint buffers come from a pool: callers like the
	// census engine enumerate the edges of thousands of graphs back to
	// back, and a fresh 2x64KiB allocation per graph is pure GC churn.
	var bufA, bufB []int
	if blockSize <= 0 {
		blockSize = DefaultEdgeBlock
	}
	if blockSize <= DefaultEdgeBlock {
		bufs := edgeBufPool.Get().(*edgeBufs)
		defer edgeBufPool.Put(bufs)
		bufA, bufB = bufs.a, bufs.b
	} else {
		bufA = make([]int, blockSize)
		bufB = make([]int, blockSize)
	}
	visitEdgesRange(sp, lo, hi, blockSize, bufA, bufB, fn)
}

// VisitEdgesBatchRange32 is VisitEdgesBatchRange with compact endpoint
// blocks: the same edges in the same order, delivered as []int32 pairs
// from a pool of half-width buffers. The spec must satisfy FitsInt32;
// callers gate on it (the panic catches a missed gate, which is a
// programmer error, not an input error).
func (sp Spec) VisitEdgesBatchRange32(lo, hi, blockSize int, fn func(a, b []int32)) {
	if !sp.FitsInt32() {
		panic("grid: VisitEdgesBatchRange32 on a shape with ranks beyond int32")
	}
	var bufA, bufB []int32
	if blockSize <= 0 {
		blockSize = DefaultEdgeBlock
	}
	if blockSize <= DefaultEdgeBlock {
		bufs := edgeBuf32Pool.Get().(*edgeBufs32)
		defer edgeBuf32Pool.Put(bufs)
		bufA, bufB = bufs.a, bufs.b
	} else {
		bufA = make([]int32, blockSize)
		bufB = make([]int32, blockSize)
	}
	visitEdgesRange(sp, lo, hi, blockSize, bufA, bufB, fn)
}

// visitEdgesRange is the single home of the blocked edge enumeration,
// generic over the endpoint width. bufA and bufB are caller-provided
// block buffers of at least blockSize entries.
func visitEdgesRange[T int | int32](sp Spec, lo, hi, blockSize int, bufA, bufB []T, fn func(a, b []T)) {
	n := sp.Size()
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return
	}
	d := sp.Dim()
	strides := sp.Shape.Strides()
	torus := sp.Kind == Torus
	// Odometer decode of lo once, then O(1) amortized increments.
	coord := make(Node, d)
	sp.Shape.NodeInto(coord, lo)
	bufA, bufB = bufA[:0], bufB[:0]
	for x := lo; x < hi; x++ {
		for j := 0; j < d; j++ {
			l := sp.Shape[j]
			c := coord[j]
			// Right neighbor covers every mesh edge once; for toruses
			// the wrap edge (l-1 -> 0) is also a "right" step, skipped
			// for l == 2 where it would duplicate the 0 -> 1 edge.
			if c+1 < l {
				bufA = append(bufA, T(x))
				bufB = append(bufB, T(x+strides[j]))
			} else if torus && l > 2 {
				bufA = append(bufA, T(x))
				bufB = append(bufB, T(x-(l-1)*strides[j]))
			}
			if len(bufA) >= blockSize {
				fn(bufA, bufB)
				bufA = bufA[:0]
				bufB = bufB[:0]
			}
		}
		// Advance the odometer to rank x+1.
		for j := d - 1; j >= 0; j-- {
			coord[j]++
			if coord[j] < sp.Shape[j] {
				break
			}
			coord[j] = 0
		}
	}
	if len(bufA) > 0 {
		fn(bufA, bufB)
	}
}
