// Package grid defines the two graph families studied by Ma & Tao
// (Embeddings Among Toruses and Meshes, ICPP 1987): d-dimensional toruses
// and meshes. It provides shapes, node coordinates, closed-form distance
// functions (Lemmas 5 and 6 of the paper), neighbor enumeration, and
// explicit adjacency graphs with BFS used as ground truth in tests.
//
// Terminology follows the paper: an (l1,...,ld)-torus has nodes
// (i1,...,id) with ij in [lj], and wrap-around neighbors in every
// dimension; an (l1,...,ld)-mesh omits the wrap-around edges. A ring is a
// 1-dimensional torus, a line a 1-dimensional mesh, and a hypercube a
// graph whose shape is all twos (it is simultaneously a torus and a mesh).
package grid

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind distinguishes the two graph families.
type Kind int

const (
	// Torus is the family with wrap-around edges in every dimension.
	Torus Kind = iota
	// Mesh is the family without wrap-around edges.
	Mesh
)

// String returns "torus" or "mesh".
func (k Kind) String() string {
	switch k {
	case Torus:
		return "torus"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is one of the two defined kinds.
func (k Kind) Valid() bool { return k == Torus || k == Mesh }

// ParseKind parses "torus", "mesh", "ring" (1-d torus) or "line" (1-d
// mesh). Ring and line parse to their family; the dimension is carried by
// the shape.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "torus", "ring":
		return Torus, nil
	case "mesh", "line", "array", "grid":
		return Mesh, nil
	default:
		return 0, fmt.Errorf("grid: unknown kind %q (want torus or mesh)", s)
	}
}

// Shape is the list (l1,...,ld) of dimension lengths. Every length must be
// at least 2 (Definition 2 and 3 of the paper).
type Shape []int

// Dim returns the dimension d of the shape.
func (s Shape) Dim() int { return len(s) }

// Size returns the number of nodes, the product of all dimension lengths.
func (s Shape) Size() int {
	n := 1
	for _, l := range s {
		n *= l
	}
	return n
}

// Validate checks that the shape is non-empty and every length is >= 2.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return errors.New("grid: empty shape")
	}
	for i, l := range s {
		if l < 2 {
			return fmt.Errorf("grid: dimension %d has length %d; every length must be >= 2", i+1, l)
		}
	}
	return nil
}

// IsSquare reports whether all dimension lengths are equal.
func (s Shape) IsSquare() bool {
	for _, l := range s {
		if l != s[0] {
			return false
		}
	}
	return len(s) > 0
}

// IsHypercube reports whether every dimension has length 2. A hypercube is
// simultaneously a torus and a mesh (Definition 4).
func (s Shape) IsHypercube() bool {
	for _, l := range s {
		if l != 2 {
			return false
		}
	}
	return len(s) > 0
}

// Equal reports element-wise equality.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as "l1xl2x...xld".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, l := range s {
		parts[i] = strconv.Itoa(l)
	}
	return strings.Join(parts, "x")
}

// ParseShape parses "4x2x3" (also accepting "," as a separator).
func ParseShape(str string) (Shape, error) {
	str = strings.TrimSpace(str)
	if str == "" {
		return nil, errors.New("grid: empty shape string")
	}
	str = strings.ReplaceAll(str, ",", "x")
	parts := strings.Split(str, "x")
	s := make(Shape, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("grid: bad shape component %q: %v", p, err)
		}
		s = append(s, v)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Square returns the square shape with d dimensions of length l.
func Square(d, l int) Shape {
	s := make(Shape, d)
	for i := range s {
		s[i] = l
	}
	return s
}

// Hypercube returns the shape of the hypercube with 2^d nodes.
func Hypercube(d int) Shape { return Square(d, 2) }

// Node is a coordinate list (i1,...,id) with ij in [lj].
type Node []int

// Clone returns a copy of the node.
func (n Node) Clone() Node {
	c := make(Node, len(n))
	copy(c, n)
	return c
}

// Equal reports element-wise equality.
func (n Node) Equal(m Node) bool {
	if len(n) != len(m) {
		return false
	}
	for i := range n {
		if n[i] != m[i] {
			return false
		}
	}
	return true
}

// String renders the node as "(i1,i2,...)".
func (n Node) String() string {
	parts := make([]string, len(n))
	for i, v := range n {
		parts[i] = strconv.Itoa(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// InBounds reports whether the node is a valid coordinate of shape s.
func (n Node) InBounds(s Shape) bool {
	if len(n) != len(s) {
		return false
	}
	for i, v := range n {
		if v < 0 || v >= s[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation n ∘ m (the paper's list-concatenation
// operator from Section 2).
func Concat(lists ...Node) Node {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make(Node, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// Index converts a node to its row-major index in [Size()). The leftmost
// coordinate is the most significant digit, matching the radix-L
// representation of Definition 7.
func (s Shape) Index(n Node) int {
	x := 0
	for j, v := range n {
		x = x*s[j] + v
	}
	return x
}

// NodeAt converts a row-major index back to a node.
func (s Shape) NodeAt(x int) Node {
	n := make(Node, len(s))
	for j := len(s) - 1; j >= 0; j-- {
		n[j] = x % s[j]
		x /= s[j]
	}
	return n
}

// abs returns the absolute value of v.
func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DistanceTorus is the δt distance of Lemma 5:
// Σ_k min(|i_k − i'_k|, l_k − |i_k − i'_k|).
func DistanceTorus(s Shape, a, b Node) int {
	d := 0
	for k := range s {
		diff := abs(a[k] - b[k])
		if w := s[k] - diff; w < diff {
			diff = w
		}
		d += diff
	}
	return d
}

// DistanceMesh is the δm distance of Lemma 6: Σ_k |i_k − i'_k|.
func DistanceMesh(s Shape, a, b Node) int {
	d := 0
	for k := range s {
		d += abs(a[k] - b[k])
	}
	return d
}

// Spec identifies a concrete graph: a kind plus a shape.
type Spec struct {
	Kind  Kind
	Shape Shape
}

// NewSpec validates and constructs a Spec.
func NewSpec(kind Kind, shape Shape) (Spec, error) {
	if !kind.Valid() {
		return Spec{}, fmt.Errorf("grid: invalid kind %d", int(kind))
	}
	if err := shape.Validate(); err != nil {
		return Spec{}, err
	}
	return Spec{Kind: kind, Shape: shape.Clone()}, nil
}

// MustSpec is NewSpec but panics on error; intended for tests and fixed
// literals.
func MustSpec(kind Kind, shape Shape) Spec {
	sp, err := NewSpec(kind, shape)
	if err != nil {
		panic(err)
	}
	return sp
}

// TorusSpec returns the torus with the given shape.
func TorusSpec(shape ...int) Spec { return MustSpec(Torus, Shape(shape)) }

// MeshSpec returns the mesh with the given shape.
func MeshSpec(shape ...int) Spec { return MustSpec(Mesh, Shape(shape)) }

// RingSpec returns the ring (1-dimensional torus) of size n.
func RingSpec(n int) Spec { return MustSpec(Torus, Shape{n}) }

// LineSpec returns the line (1-dimensional mesh) of size n.
func LineSpec(n int) Spec { return MustSpec(Mesh, Shape{n}) }

// Size returns the number of nodes.
func (sp Spec) Size() int { return sp.Shape.Size() }

// Dim returns the dimension.
func (sp Spec) Dim() int { return sp.Shape.Dim() }

// IsHypercube reports whether the spec is a hypercube (all lengths 2), in
// which case torus and mesh coincide.
func (sp Spec) IsHypercube() bool { return sp.Shape.IsHypercube() }

// String renders e.g. "torus(4x2x3)", or "ring(8)"/"line(8)" for
// 1-dimensional graphs.
func (sp Spec) String() string {
	if sp.Dim() == 1 {
		if sp.Kind == Torus {
			return fmt.Sprintf("ring(%d)", sp.Shape[0])
		}
		return fmt.Sprintf("line(%d)", sp.Shape[0])
	}
	return fmt.Sprintf("%s(%s)", sp.Kind, sp.Shape)
}

// ParseSpec parses "torus:4x2x3", "mesh:6x9", "ring:24" or "line:24".
func ParseSpec(str string) (Spec, error) {
	parts := strings.SplitN(str, ":", 2)
	if len(parts) != 2 {
		return Spec{}, fmt.Errorf("grid: spec %q must look like kind:shape, e.g. torus:4x2x3", str)
	}
	kind, err := ParseKind(parts[0])
	if err != nil {
		return Spec{}, err
	}
	shape, err := ParseShape(parts[1])
	if err != nil {
		return Spec{}, err
	}
	low := strings.ToLower(strings.TrimSpace(parts[0]))
	if (low == "ring" || low == "line") && shape.Dim() != 1 {
		return Spec{}, fmt.Errorf("grid: %s must be 1-dimensional, got shape %s", low, shape)
	}
	return NewSpec(kind, shape)
}

// Distance returns the graph distance between two nodes using the
// closed-form expressions of Lemmas 5 and 6.
func (sp Spec) Distance(a, b Node) int {
	if sp.Kind == Torus {
		return DistanceTorus(sp.Shape, a, b)
	}
	return DistanceMesh(sp.Shape, a, b)
}

// Degree returns the degree of node n.
func (sp Spec) Degree(n Node) int {
	if sp.Kind == Torus {
		deg := 0
		for _, l := range sp.Shape {
			if l == 2 {
				deg++ // left and right neighbor coincide
			} else {
				deg += 2
			}
		}
		return deg
	}
	deg := 0
	for j, l := range sp.Shape {
		if n[j] > 0 {
			deg++
		}
		if n[j] < l-1 {
			deg++
		}
	}
	return deg
}

// MaxDegree returns the maximum node degree in the graph.
func (sp Spec) MaxDegree() int {
	if sp.Kind == Torus {
		return sp.Degree(nil)
	}
	deg := 0
	for _, l := range sp.Shape {
		if l > 2 {
			deg += 2
		} else {
			deg++
		}
	}
	// Interior nodes have two neighbors per dimension when l >= 3; a
	// dimension of length 2 contributes one edge endpoint everywhere.
	return deg
}

// Neighbors appends the neighbors of node n to dst and returns it. Each
// neighbor is a fresh Node. For a torus dimension of length 2 the left and
// right neighbors coincide and are reported once.
func (sp Spec) Neighbors(n Node, dst []Node) []Node {
	for j, l := range sp.Shape {
		if sp.Kind == Torus {
			right := n.Clone()
			right[j] = (n[j] + 1) % l
			dst = append(dst, right)
			if l > 2 {
				left := n.Clone()
				left[j] = (n[j] - 1 + l) % l
				dst = append(dst, left)
			}
			continue
		}
		if n[j]+1 < l {
			right := n.Clone()
			right[j]++
			dst = append(dst, right)
		}
		if n[j] > 0 {
			left := n.Clone()
			left[j]--
			dst = append(dst, left)
		}
	}
	return dst
}

// EdgeCount returns the number of edges in the graph.
func (sp Spec) EdgeCount() int {
	n := sp.Size()
	total := 0
	for _, l := range sp.Shape {
		perLine := l - 1 // mesh edges along one line of this dimension
		if sp.Kind == Torus {
			if l == 2 {
				perLine = 1 // wrap edge coincides with the line edge
			} else {
				perLine = l
			}
		}
		total += perLine * (n / l)
	}
	return total
}

// VisitEdges calls fn once for every edge (a, b) of the graph. Nodes are
// reused between calls; clone them if retained. Each undirected edge is
// visited exactly once.
func (sp Spec) VisitEdges(fn func(a, b Node)) {
	n := sp.Size()
	a := make(Node, sp.Dim())
	b := make(Node, sp.Dim())
	for x := 0; x < n; x++ {
		idxToNode(sp.Shape, x, a)
		for j, l := range sp.Shape {
			orig := a[j]
			// Right neighbor covers every mesh edge once. For toruses the
			// wrap edge (l-1 -> 0) is also a "right" step; skip it for
			// l == 2 where it would duplicate the 0 -> 1 edge.
			if orig+1 < l {
				copy(b, a)
				b[j] = orig + 1
				fn(a, b)
			} else if sp.Kind == Torus && l > 2 {
				copy(b, a)
				b[j] = 0
				fn(a, b)
			}
		}
	}
}

// idxToNode writes the row-major coordinates of x into dst.
func idxToNode(s Shape, x int, dst Node) {
	for j := len(s) - 1; j >= 0; j-- {
		dst[j] = x % s[j]
		x /= s[j]
	}
}
