package experiments

import (
	"fmt"
	"io"

	"torusmesh/internal/core"
	"torusmesh/internal/expand"
	"torusmesh/internal/grid"
	"torusmesh/internal/reduce"
)

// E08ExpansionExample reproduces Figure 11: the embedding functions F_V,
// G_V and H_V for L = (4,6), M = (2,2,2,3), V = ((2,2),(2,3)).
func E08ExpansionExample(w io.Writer) error {
	f := expand.Factor{{2, 2}, {2, 3}}
	L := grid.Shape{4, 6}
	M := grid.Shape{2, 2, 2, 3}
	if err := f.Validate(L, M); err != nil {
		return err
	}
	fv, gv, hv := expand.FV(f), expand.GV(f), expand.HV(f)
	tw := table(w)
	fmt.Fprintln(tw, "(i1,i2)\tF_V\tG_V\tH_V")
	for i1 := 0; i1 < 4; i1++ {
		for i2 := 0; i2 < 6; i2++ {
			n := grid.Node{i1, i2}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", n, fv(n.Clone()), gv(n.Clone()), hv(n.Clone()))
		}
	}
	tw.Flush()
	// Dilations for the three maps, measured as embeddings.
	cases := []struct {
		name   string
		gk, hk grid.Kind
	}{
		{"F_V: mesh(4x6) -> mesh(2x2x2x3)", grid.Mesh, grid.Mesh},
		{"H_V: torus(4x6) -> torus(2x2x2x3)", grid.Torus, grid.Torus},
		{"G_V: torus(4x6) -> mesh(2x2x2x3)", grid.Torus, grid.Mesh},
	}
	for _, c := range cases {
		e, err := expand.WithFactor(grid.MustSpec(c.gk, L), grid.MustSpec(c.hk, M), f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: dilation %d (guarantee %d)\n", c.name, e.Dilation(), e.Predicted)
	}
	return nil
}

// E09IncreasingMatrix sweeps Theorem 32 across kind combinations and
// reports the Section 4.1 factor-choice ablation.
func E09IncreasingMatrix(w io.Writer) error {
	pairs := []struct{ L, M grid.Shape }{
		{grid.Shape{4, 6}, grid.Shape{2, 2, 2, 3}},
		{grid.Shape{8, 9}, grid.Shape{2, 4, 3, 3}},
		{grid.Shape{6, 12}, grid.Shape{6, 3, 2, 2}},
		{grid.Shape{9, 25}, grid.Shape{3, 3, 5, 5}},
		{grid.Shape{12}, grid.Shape{3, 4}},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tstrategy\tguarantee\tmeasured")
	for _, p := range pairs {
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			for _, hk := range []grid.Kind{grid.Mesh, grid.Torus} {
				g, h := grid.MustSpec(gk, p.L), grid.MustSpec(hk, p.M)
				e, err := expand.Embed(g, h)
				if err != nil {
					return err
				}
				if err := e.Verify(); err != nil {
					return err
				}
				fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\n", g, h, e.Strategy, e.Predicted, e.Dilation())
			}
		}
	}
	tw.Flush()
	// Ablation from Section 4.1: the (6,12)-torus into the (6,3,2,2)-mesh.
	g := grid.TorusSpec(6, 12)
	h := grid.MeshSpec(6, 3, 2, 2)
	bad, err := expand.WithFactor(g, h, expand.Factor{{6}, {3, 2, 2}})
	if err != nil {
		return err
	}
	good, err := expand.WithFactor(g, h, expand.Factor{{2, 3}, {6, 2}})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "factor ablation (6,12)-torus -> (6,3,2,2)-mesh: ((6),(3,2,2)) gives %d; even-first ((2,3),(6,2)) gives %d  [paper: 2 vs 1]\n",
		bad.Dilation(), good.Dilation())
	return nil
}

// E10Hypercube reproduces Theorem 33 / Corollary 34: every torus or mesh
// of power-of-two size embeds in the hypercube with unit dilation.
func E10Hypercube(w io.Writer) error {
	shapes := []grid.Shape{
		{4, 8}, {2, 16}, {4, 4, 2}, {8, 4}, {32}, {2, 2, 8}, {16, 4},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tdilation (Corollary 34 claims 1)")
	for _, L := range shapes {
		f, ok := expand.HypercubeFactor(L)
		if !ok {
			return fmt.Errorf("shape %v is not power-of-two", L)
		}
		d := 0
		for _, v := range f {
			d += len(v)
		}
		h := grid.MustSpec(grid.Torus, grid.Hypercube(d))
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			g := grid.MustSpec(gk, L)
			e, err := core.Embed(g, h)
			if err != nil {
				return err
			}
			if err := e.Verify(); err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\thypercube(%d)\t%d\n", g, d, e.Dilation())
		}
	}
	tw.Flush()
	return nil
}

// E11SimpleReduction reproduces Theorem 39 and Corollary 40, including
// the grouping-order ablation (non-increasing groups minimize the bound).
func E11SimpleReduction(w io.Writer) error {
	pairs := []struct{ L, M grid.Shape }{
		{grid.Shape{4, 2, 3}, grid.Shape{4, 6}},
		{grid.Shape{2, 2, 2, 2}, grid.Shape{4, 4}},
		{grid.Shape{2, 2, 2, 2, 2, 2}, grid.Shape{8, 8}},
		{grid.Shape{3, 3, 3}, grid.Shape{9, 3}},
		{grid.Shape{4, 4}, grid.Shape{16}},
		{grid.Shape{5, 2, 2}, grid.Shape{10, 2}},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tfactor\tbound max m_k/l_vk\tmeasured (mesh->mesh)\tmeasured (torus->mesh)")
	for _, p := range pairs {
		f, ok := reduce.FindSimple(p.L, p.M)
		if !ok {
			return fmt.Errorf("no simple reduction of %v into %v", p.L, p.M)
		}
		mm, err := reduce.EmbedSimple(grid.MustSpec(grid.Mesh, p.L), grid.MustSpec(grid.Mesh, p.M))
		if err != nil {
			return err
		}
		tm, err := reduce.EmbedSimple(grid.MustSpec(grid.Torus, p.L), grid.MustSpec(grid.Mesh, p.M))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%v\t%v\t%v\t%d\t%d\t%d (bound %d)\n",
			p.L, p.M, f, f.Dilation(), mm.Dilation(), tm.Dilation(), 2*f.Dilation())
	}
	tw.Flush()
	// Grouping ablation: best vs worst ordering for (6,2,2,3) -> (12,6).
	best, _ := reduce.FindSimple(grid.Shape{6, 2, 2, 3}, grid.Shape{12, 6})
	worst := reduce.SimpleFactor{{3, 2, 2}, {6}}
	fmt.Fprintf(w, "grouping ablation (6,2,2,3) -> (12,6): best factor %v bound %d; naive factor %v bound %d\n",
		best, best.Dilation(), worst, worst.Dilation())
	// Corollary 40: hypercube into square torus/mesh costs max{m_i}/2.
	hyper := grid.MustSpec(grid.Torus, grid.Hypercube(6))
	for _, hk := range []grid.Kind{grid.Torus, grid.Mesh} {
		h := grid.MustSpec(hk, grid.Shape{8, 8})
		e, err := core.Embed(hyper, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "hypercube(6) -> %s: dilation %d  [Corollary 40/49: m/2 = 4]\n", h, e.Dilation())
	}
	return nil
}

// E12GeneralReduction reproduces Figure 12 and Theorem 43.
func E12GeneralReduction(w io.Writer) error {
	// Figure 12: (3,3,6)-mesh -> (6,9)-mesh with dilation 3.
	g := grid.MeshSpec(3, 3, 6)
	h := grid.MeshSpec(6, 9)
	f, ok := reduce.FindGeneral(g.Shape, h.Shape)
	if !ok {
		return fmt.Errorf("FindGeneral failed for Figure 12")
	}
	e, err := reduce.WithGeneralFactor(g, h, f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 12: %s -> %s via L'=%v L''=%v S=%v: dilation %d  [paper: 3]\n",
		g, h, f.LPrime, f.LDouble, f.S, e.Dilation())

	pairs := []struct{ L, M grid.Shape }{
		{grid.Shape{3, 3, 6}, grid.Shape{6, 9}},
		{grid.Shape{2, 2, 4}, grid.Shape{4, 4}},
		{grid.Shape{3, 4, 4}, grid.Shape{6, 8}},
		{grid.Shape{5, 5, 4}, grid.Shape{10, 10}},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tmax s_i\tmesh->mesh\tmesh->torus\ttorus->torus\ttorus->mesh (bound 2·max s)")
	for _, p := range pairs {
		f, ok := reduce.FindGeneral(p.L, p.M)
		if !ok {
			return fmt.Errorf("no general reduction of %v into %v", p.L, p.M)
		}
		var cells []int
		for _, kinds := range [][2]grid.Kind{
			{grid.Mesh, grid.Mesh}, {grid.Mesh, grid.Torus}, {grid.Torus, grid.Torus}, {grid.Torus, grid.Mesh},
		} {
			e, err := reduce.EmbedGeneral(grid.MustSpec(kinds[0], p.L), grid.MustSpec(kinds[1], p.M))
			if err != nil {
				return err
			}
			cells = append(cells, e.Dilation())
		}
		fmt.Fprintf(tw, "%v\t%v\t%d\t%d\t%d\t%d\t%d\n", p.L, p.M, f.MaxS(), cells[0], cells[1], cells[2], cells[3])
	}
	tw.Flush()
	return nil
}
