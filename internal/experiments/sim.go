package experiments

import (
	"fmt"
	"io"

	"torusmesh/internal/baseline"
	"torusmesh/internal/core"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/optimal"
	"torusmesh/internal/taskgraph"
)

// E18Netsim demonstrates the paper's motivation: placing a task graph on
// a machine with a low-dilation embedding reduces communication latency.
// Ring pipelines and stencils are placed on torus/mesh machines under
// the paper's embedding, the row-major baseline, and (for the stencil) a
// same-shape identity reference.
func E18Netsim(w io.Writer) error {
	type scenario struct {
		name    string
		machine grid.Spec
		guest   grid.Spec
		tg      *taskgraph.Graph
	}
	scenarios := []scenario{
		{"64-ring pipeline on 8x8 torus", grid.TorusSpec(8, 8), grid.RingSpec(64), taskgraph.RingPipeline(64)},
		{"64-ring pipeline on 4x4x4 mesh", grid.MeshSpec(4, 4, 4), grid.RingSpec(64), taskgraph.RingPipeline(64)},
		{"8x8 stencil on hypercube(6)", grid.MustSpec(grid.Torus, grid.Hypercube(6)), grid.MeshSpec(8, 8), taskgraph.Stencil2D(8, 8)},
		{"4x4x4 halo exchange on 8x8 torus", grid.TorusSpec(8, 8), grid.TorusSpec(4, 4, 4), taskgraph.FromSpec(grid.TorusSpec(4, 4, 4))},
	}
	tw := table(w)
	fmt.Fprintln(tw, "scenario\tplacement\tdilation (max hops)\tavg hops\tcycles\tpeak link load")
	for _, sc := range scenarios {
		nw := netsim.New(sc.machine)
		ours, err := core.Embed(sc.guest, sc.machine)
		if err != nil {
			return fmt.Errorf("%s: %v", sc.name, err)
		}
		rm, err := baseline.RowMajor(sc.guest, sc.machine)
		if err != nil {
			return err
		}
		placements := []struct {
			label string
			p     netsim.Placement
		}{
			{"paper embedding (" + ours.Strategy + ")", netsim.PlacementFromEmbedding(ours)},
			{"row-major baseline", netsim.PlacementFromEmbedding(rm)},
		}
		for _, pl := range placements {
			r, err := netsim.Simulate(nw, sc.tg, pl.p)
			if err != nil {
				return fmt.Errorf("%s/%s: %v", sc.name, pl.label, err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%d\n", sc.name, pl.label, r.MaxHops, r.AvgHops, r.Cycles, r.MaxLinkLoad)
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "lower dilation -> fewer cycles per communication phase: the embedding quality is directly observable in the machine")
	return nil
}

// E19LowerBounds compares, on tiny instances, the true optimum (branch
// and bound) with the Theorem 47 ball bound, the degree bound, and our
// construction's dilation.
func E19LowerBounds(w io.Writer) error {
	pairs := []struct{ g, h grid.Spec }{
		{grid.MeshSpec(3, 3), grid.LineSpec(9)},
		{grid.MeshSpec(4, 2), grid.LineSpec(8)},
		{grid.MeshSpec(2, 2, 2), grid.LineSpec(8)},
		{grid.TorusSpec(3, 3), grid.RingSpec(9)},
		{grid.MeshSpec(2, 2, 3), grid.MeshSpec(4, 3)},
		{grid.RingSpec(9), grid.MeshSpec(3, 3)},
		{grid.TorusSpec(3, 3), grid.MeshSpec(3, 3)},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tball LB\tdegree LB\toptimal (B&B)\tours")
	for _, p := range pairs {
		opt, err := optimal.MinDilation(p.g, p.h, 16)
		if err != nil {
			return err
		}
		e, err := core.Embed(p.g, p.h)
		if err != nil {
			return err
		}
		ball := optimal.LowerBoundBall(p.g, p.h)
		deg := optimal.LowerBoundDegree(p.g, p.h)
		if ball > opt || deg > opt {
			return fmt.Errorf("%s -> %s: lower bound exceeds optimum", p.g, p.h)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\n", p.g, p.h, ball, deg, opt, e.Dilation())
	}
	tw.Flush()
	fmt.Fprintln(w, "bounds never exceed the optimum; our constructions meet it on every optimal case above")
	return nil
}
