// The reproducible benchmark runner behind `experiments -bench`: it
// drives the performance-critical kernels of the annealing evaluation
// stack — LoadState construction, dense congestion, striped edge
// dilation, and the per-move swap — through testing.Benchmark at one
// worker and at the machine's full worker count, and renders the
// results as a versioned BENCH.json. The artifact is the repo's
// recorded perf trajectory: CI runs the runner as a smoke (the numbers
// themselves are machine-dependent; the alloc gates live in the test
// suites), and a committed BENCH.json documents the shape of the
// scaling claims next to the code that makes them.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/obs"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// BenchVersion is the schema version stamped into BENCH.json. Bump it
// when the result fields or the benchmark set change meaning.
const BenchVersion = 1

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	// Name identifies the kernel and configuration, e.g.
	// "loadstate-init/torus:16x16x16->mesh:16x16x16/workers=8".
	Name string `json:"name"`
	// N is the iteration count testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp, AllocsPerOp and BytesPerOp are the standard Go benchmark
	// outputs.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries benchmark-specific gauges (e.g. table bytes of
	// the compact vs wide representations).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the BENCH.json document.
type BenchReport struct {
	Version    int           `json:"version"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxWorkers int           `json:"max_workers"`
	Results    []BenchResult `json:"results"`
}

// benchPair is the fixed workload: a 4096-node pair whose 12288 guest
// edges sit above the LoadState striping threshold, so the parallel
// construction path is what gets measured.
func benchPair() (*netsim.Network, *taskgraph.Graph, grid.Spec, netsim.Placement) {
	host := grid.MeshSpec(16, 16, 16)
	guest := grid.TorusSpec(16, 16, 16)
	nw := netsim.New(host)
	rng := rand.New(rand.NewSource(9))
	p := netsim.Placement(rng.Perm(nw.Size()))
	return nw, taskgraph.FromSpec(guest), guest, p
}

// withWorkers runs fn under a temporary GOMAXPROCS.
func withWorkers(n int, fn func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// runOne executes fn under testing.Benchmark and records it.
func runOne(report *BenchReport, name string, fn func(b *testing.B)) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	report.Results = append(report.Results, BenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	})
}

// runScaling runs the kernel at one worker and at the full worker
// count, which is what makes the striping speedups visible in the
// artifact.
func runScaling(report *BenchReport, name string, fn func(b *testing.B)) {
	counts := []int{1}
	if report.MaxWorkers > 1 {
		counts = append(counts, report.MaxWorkers)
	}
	for _, workers := range counts {
		label := fmt.Sprintf("%s/workers=%d", name, workers)
		withWorkers(workers, func() { runOne(report, label, fn) })
	}
}

// RunBench measures the annealing evaluation kernels and returns the
// report.
func RunBench() (*BenchReport, error) {
	nw, tg, guest, p := benchPair()
	pairName := fmt.Sprintf("%s->%s", guest, nw.Spec)
	rd := nw.Spec.NewRankDistancer()
	report := &BenchReport{
		Version:    BenchVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		MaxWorkers: par.Workers(),
	}

	runScaling(report, "loadstate-init/"+pairName, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.NewLoadState(nw, tg, p); err != nil {
				b.Fatal(err)
			}
		}
	})

	runScaling(report, "congestion/"+pairName, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.Congestion(nw, tg, p); err != nil {
				b.Fatal(err)
			}
		}
	})

	tab := []int(p)
	runScaling(report, "edge-dilation-striped/"+pairName, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			guest.EdgeDilationStriped(tab, rd)
		}
	})

	// The per-move kernel of an anneal step: one swap plus the aggregate
	// reads an acceptance decision needs. Steady state must not allocate
	// — the alloc gates in internal/netsim pin that to zero.
	ls, err := netsim.NewLoadState(nw, tg, p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(13))
	n := tg.N
	runOne(report, "anneal-move/swap/"+pairName, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n - 1)
			if v >= u {
				v++
			}
			ls.Swap(u, v)
			_ = ls.Stats()
			ls.Dilation()
		}
	})

	// The same per-move kernel with the counter increments the
	// instrumented annealing loop performs per step (one step counter,
	// one accept-or-reject counter) — the obs-overhead benchmark. The
	// delta against anneal-move/swap is the price of observability, and
	// the alloc column must stay identical: counting is atomic adds,
	// never allocation.
	obsReg := obs.NewRegistry()
	obsSteps := obsReg.Counter("bench_anneal_steps_total")
	obsAccepted := obsReg.Counter("bench_anneal_moves_accepted_total")
	obsRejected := obsReg.Counter("bench_anneal_moves_rejected_total")
	runOne(report, "anneal-move/swap+obs/"+pairName, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n - 1)
			if v >= u {
				v++
			}
			ls.Swap(u, v)
			_ = ls.Stats()
			ls.Dilation()
			obsSteps.Inc()
			if i&1 == 0 {
				obsAccepted.Inc()
			} else {
				obsRejected.Inc()
			}
		}
	})

	// Memory gauge: the table bytes of the two representations — the
	// halving the compact mode claims.
	compact, err := netsim.NewLoadStateMode(nw, tg, p, netsim.ModeCompact)
	if err != nil {
		return nil, err
	}
	wide, err := netsim.NewLoadStateMode(nw, tg, p, netsim.ModeWide)
	if err != nil {
		return nil, err
	}
	report.Results = append(report.Results, BenchResult{
		Name: "table-bytes/" + pairName,
		Metrics: map[string]float64{
			"compact_bytes": float64(compact.TableBytes()),
			"wide_bytes":    float64(wide.TableBytes()),
		},
	})
	return report, nil
}

// WriteBench runs the benchmark suite and writes BENCH.json to w.
func WriteBench(w io.Writer) error {
	report, err := RunBench()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
