package experiments

import (
	"fmt"
	"io"

	"torusmesh/internal/core"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/ham"
	"torusmesh/internal/optimal"
	"torusmesh/internal/radix"
	"torusmesh/internal/render"
)

// E01Preliminaries reproduces the worked facts around Figures 1 and 2:
// the (4,2,3)-torus and (4,2,3)-mesh, their sizes, degrees, edge counts,
// and the example distances δt((0,0,1),(3,0,0)) = 2, δm = 4.
func E01Preliminaries(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "graph\tnodes\tedges\tmax degree")
	for _, sp := range []grid.Spec{grid.TorusSpec(4, 2, 3), grid.MeshSpec(4, 2, 3)} {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", sp, sp.Size(), sp.EdgeCount(), sp.MaxDegree())
	}
	tw.Flush()
	a, b := grid.Node{0, 0, 1}, grid.Node{3, 0, 0}
	fmt.Fprintf(w, "distance %s-%s: torus (Lemma 5) = %d, mesh (Lemma 6) = %d  [paper: 2 and 4]\n",
		a, b, grid.DistanceTorus(grid.Shape{4, 2, 3}, a, b), grid.DistanceMesh(grid.Shape{4, 2, 3}, a, b))
	// Formula vs BFS on both graphs.
	for _, sp := range []grid.Spec{grid.TorusSpec(4, 2, 3), grid.MeshSpec(4, 2, 3)} {
		if err := grid.Build(sp).CheckDistances(); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "closed-form distances match BFS on both graphs: ok")
	return nil
}

// E02SpreadExample reproduces the structure of Figure 3: a bijection
// f : [9] -> Ω(3,3) whose acyclic spreads are (δm 2, δt 1) and cyclic
// spreads are (δm 3, δt 2).
func E02SpreadExample(w io.Writer) error {
	L := radix.Base{3, 3}
	seq := radix.Sequence{
		{0, 0}, {0, 1}, {0, 2}, {2, 2}, {2, 0}, {2, 1}, {1, 1}, {1, 0}, {1, 2},
	}
	if err := radix.CheckBijection(L, seq); err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "i\tf(i)\tδm(f(i),f(i+1 mod 9))\tδt(f(i),f(i+1 mod 9))")
	for i, v := range seq {
		next := seq[(i+1)%len(seq)]
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\n", i, v, radix.DeltaM(L, v, next), radix.DeltaT(L, v, next))
	}
	tw.Flush()
	fmt.Fprintf(w, "acyclic spreads: δm=%d δt=%d   cyclic spreads: δm=%d δt=%d  [paper: 2,1 and 3,2]\n",
		radix.SpreadAcyclicM(L, seq), radix.SpreadAcyclicT(L, seq),
		radix.SpreadCyclicM(L, seq), radix.SpreadCyclicT(L, seq))
	return nil
}

// E03ReflectionAblation reproduces Figure 4: the naive radix sequence P
// for L=(4,2,3) has δm-spread > 1; reflecting the odd segments (P' = f_L)
// brings the spread to 1.
func E03ReflectionAblation(w io.Writer) error {
	L := radix.Base{4, 2, 3}
	p := gray.PSeq(L)
	f := gray.FSeq(L)
	tw := table(w)
	fmt.Fprintln(tw, "x\tP(x)\tP'(x)=f_L(x)")
	for x := range p {
		fmt.Fprintf(tw, "%d\t%s\t%s\n", x, p[x], f[x])
	}
	tw.Flush()
	fmt.Fprintf(w, "acyclic δm-spread: P = %d, P' = %d  [reflection repairs the carry jumps]\n",
		radix.SpreadAcyclicM(L, p), radix.SpreadAcyclicM(L, f))
	return nil
}

// E04BasicSequences reproduces Figure 9: the three sequences for
// L = (4,2,3), n = 24, with their spreads.
func E04BasicSequences(w io.Writer) error {
	L := radix.Base{4, 2, 3}
	f, g, h := gray.FSeq(L), gray.GSeq(L), gray.HSeq(L)
	tw := table(w)
	fmt.Fprintln(tw, "x\tf_L(x)\tg_L(x)\th_L(x)")
	for x := range f {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", x, f[x], g[x], h[x])
	}
	tw.Flush()
	fmt.Fprintf(w, "f_L: acyclic δm=%d δt=%d (Lemmas 11-12 claim 1,1)\n",
		radix.SpreadAcyclicM(L, f), radix.SpreadAcyclicT(L, f))
	fmt.Fprintf(w, "g_L: cyclic δm=%d (Lemma 16 claims <=2)\n", radix.SpreadCyclicM(L, g))
	fmt.Fprintf(w, "h_L: cyclic δm=%d δt=%d (Lemmas 23/27 claim 1,1 for even l1)\n",
		radix.SpreadCyclicM(L, h), radix.SpreadCyclicT(L, h))

	// Figure 5: r_(4,3) walks down the first column then sweeps the
	// remaining (4,2)-mesh with f; drawn as sequence positions.
	fmt.Fprintln(w, "\nFigure 5 — r_L for L=(4,3), even l1 (cells are sequence positions):")
	fmt.Fprint(w, renderSequence(radix.Base{4, 3}, gray.R))
	// Figure 8: for odd l1 the cyclic wrap of r_L uses the torus edge
	// between the top of the first and last columns.
	fmt.Fprintln(w, "Figure 8 — r_L for L=(3,3), odd l1 (positions 0 and 8 are torus neighbors):")
	fmt.Fprint(w, renderSequence(radix.Base{3, 3}, gray.R))
	return nil
}

// renderSequence draws a 2-dimensional base with each node labelled by
// its position in the sequence.
func renderSequence(L radix.Base, seq func(radix.Base, int) grid.Node) string {
	n := grid.Shape(L).Size()
	pos := make(map[int]int, n)
	for x := 0; x < n; x++ {
		pos[grid.Shape(L).Index(seq(L, x))] = x
	}
	return render.Grid(grid.Shape(L), func(node grid.Node) string {
		return fmt.Sprintf("%d", pos[grid.Shape(L).Index(node)])
	})
}

// E05LineRingInMesh reproduces Figure 10: embedding a line and a ring of
// size 24 in the (4,2,3)-mesh.
func E05LineRingInMesh(w io.Writer) error {
	mesh := grid.MeshSpec(4, 2, 3)
	tw := table(w)
	fmt.Fprintln(tw, "guest\tstrategy\tdilation\tpaper")
	line, err := core.Embed(grid.LineSpec(24), mesh)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "line(24)\t%s\t%d\t1 (Theorem 13)\n", line.Strategy, line.Dilation())
	ring, err := core.Embed(grid.RingSpec(24), mesh)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "ring(24)\t%s\t%d\t1 (Theorem 24)\n", ring.Strategy, ring.Dilation())
	// The g_L embedding achieves 2 (Figure 10e).
	gl, err := core.Embed(grid.RingSpec(15), grid.MeshSpec(3, 5))
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "ring(15) in mesh(3x5)\t%s\t%d\t2 (Theorem 17, optimal for odd size)\n", gl.Strategy, gl.Dilation())
	tw.Flush()
	// The layout drawings of Figure 10(d) and 10(f): host nodes labelled
	// by their guest pre-image.
	fmt.Fprintln(w, "\nFigure 10(d) — line via f_L (planes are the third coordinate):")
	fmt.Fprint(w, render.Embedding(line))
	fmt.Fprintln(w, "Figure 10(f) — ring via π∘h_L*:")
	fmt.Fprint(w, render.Embedding(ring))
	return nil
}

// E06BasicMatrix sweeps the Section 3 cases: guest line/ring into every
// host kind, with brute-force optima for tiny instances.
func E06BasicMatrix(w io.Writer) error {
	type row struct {
		g, h grid.Spec
	}
	rows := []row{
		{grid.LineSpec(12), grid.MeshSpec(3, 4)},
		{grid.LineSpec(12), grid.TorusSpec(3, 4)},
		{grid.LineSpec(15), grid.MeshSpec(3, 5)},
		{grid.RingSpec(12), grid.TorusSpec(3, 4)},
		{grid.RingSpec(15), grid.TorusSpec(3, 5)},
		{grid.RingSpec(12), grid.MeshSpec(3, 4)},
		{grid.RingSpec(15), grid.MeshSpec(3, 5)},
		{grid.RingSpec(12), grid.LineSpec(12)},
		{grid.RingSpec(16), grid.MeshSpec(2, 2, 4)},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tstrategy\tguarantee\tmeasured\toptimal(tiny)")
	for _, r := range rows {
		e, err := core.Embed(r.g, r.h)
		if err != nil {
			return err
		}
		if err := e.Verify(); err != nil {
			return err
		}
		optStr := "-"
		if r.g.Size() <= 16 {
			if opt, err := optimal.MinDilation(r.g, r.h, 16); err == nil {
				optStr = fmt.Sprintf("%d", opt)
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\n", r.g, r.h, e.Strategy, e.Predicted, e.Dilation(), optStr)
	}
	tw.Flush()
	return nil
}

// E07Hamiltonian reproduces Corollaries 18, 25 and 29: construction and
// verification of circuits, plus exhaustive cross-checks on small
// instances.
func E07Hamiltonian(w io.Writer) error {
	specs := []grid.Spec{
		grid.TorusSpec(3, 3), grid.TorusSpec(4, 2, 3), grid.TorusSpec(3, 3, 3),
		grid.RingSpec(7), grid.MeshSpec(4, 2, 3), grid.MeshSpec(3, 4),
		grid.MeshSpec(3, 3), grid.MeshSpec(3, 5), grid.LineSpec(6),
		grid.MeshSpec(2, 2, 3),
	}
	tw := table(w)
	fmt.Fprintln(tw, "graph\thas circuit (classification)\tconstructed\texhaustive check")
	for _, sp := range specs {
		has := ham.HasCircuit(sp)
		constructed := "-"
		if circuit, err := ham.Circuit(sp); err == nil {
			if err := ham.VerifyCircuit(sp, circuit); err != nil {
				return fmt.Errorf("%s: %v", sp, err)
			}
			constructed = "valid"
		} else if has {
			return fmt.Errorf("%s: classified as Hamiltonian but construction failed: %v", sp, err)
		}
		exh := "-"
		if sp.Size() <= 24 {
			_, found := ham.ExhaustiveCircuit(sp)
			if found != has {
				return fmt.Errorf("%s: exhaustive=%v disagrees with classification=%v", sp, found, has)
			}
			exh = fmt.Sprintf("agrees (%v)", found)
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\t%s\n", sp, has, constructed, exh)
	}
	tw.Flush()
	fmt.Fprintln(w, "every torus: circuit (Cor 29); even mesh dim>1: circuit (Cor 25); odd mesh: none (Cor 18)")
	return nil
}
