package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment end to end; each one
// internally cross-checks its claims and returns an error on any
// discrepancy with the paper.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E04"); !ok {
		t.Error("E04 not found")
	}
	if _, ok := Find("E99"); ok {
		t.Error("E99 found")
	}
}

// TestExpectedContent spot-checks that headline numbers from the paper
// appear in the generated tables.
func TestExpectedContent(t *testing.T) {
	checks := map[string][]string{
		"E01": {"torus (Lemma 5) = 2, mesh (Lemma 6) = 4"},
		"E02": {"δm=2 δt=1", "δm=3 δt=2"},
		"E03": {"P = 4, P' = 1"},
		"E05": {"1 (Theorem 13)", "1 (Theorem 24)"},
		"E09": {"((6),(3,2,2)) gives 2; even-first ((2,3),(6,2)) gives 1"},
		"E12": {"dilation 3"},
		"E17": {"7/8"},
	}
	for id, wants := range checks {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, want := range wants {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("%s output missing %q", id, want)
			}
		}
	}
}

// BenchmarkHook keeps io.Discard referenced for the root bench harness.
var _ = io.Discard
