package experiments

import (
	"fmt"
	"io"

	"torusmesh/internal/baseline"
	"torusmesh/internal/core"
	"torusmesh/internal/grid"
	"torusmesh/internal/optimal"
	"torusmesh/internal/square"
)

// E13SquareLoweringDivisible reproduces Theorem 48: square lowering with
// c | d has dilation l^{(d-c)/c} (doubled for torus into mesh), optimal
// to within a constant by the Theorem 47 ball bound.
func E13SquareLoweringDivisible(w io.Writer) error {
	cases := []struct{ d, c, l int }{
		{2, 1, 3}, {2, 1, 4}, {2, 1, 5}, {4, 2, 2}, {4, 2, 3}, {6, 3, 2}, {6, 2, 2}, {3, 1, 3},
	}
	tw := table(w)
	fmt.Fprintln(tw, "d\tc\tl\tguest->host\tguarantee l^((d-c)/c)\tmeasured m->m\tmeasured t->m\tball lower bound")
	for _, c := range cases {
		m := square.IntPow(c.l, c.d/c.c)
		g := grid.MustSpec(grid.Mesh, grid.Square(c.d, c.l))
		h := grid.MustSpec(grid.Mesh, grid.Square(c.c, m))
		base, err := square.Predicted(grid.Mesh, grid.Mesh, c.d, c.c, c.l)
		if err != nil {
			return err
		}
		em, err := square.Embed(g, h)
		if err != nil {
			return err
		}
		et, err := square.Embed(grid.MustSpec(grid.Torus, grid.Square(c.d, c.l)), h)
		if err != nil {
			return err
		}
		lb := optimal.LowerBoundBall(g, h)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s->%s\t%d\t%d\t%d\t%d\n",
			c.d, c.c, c.l, grid.Shape(grid.Square(c.d, c.l)), grid.Shape(grid.Square(c.c, m)),
			base, em.Dilation(), et.Dilation(), lb)
	}
	tw.Flush()
	fmt.Fprintln(w, "ratio measured/lower-bound stays bounded for fixed d,c as l grows (Theorem 48 optimality)")
	return nil
}

// E14SquareLoweringChain reproduces Theorem 51: lowering through chains
// of general reductions when c does not divide d.
func E14SquareLoweringChain(w io.Writer) error {
	cases := []struct{ d, c, l int }{
		{3, 2, 4}, {3, 2, 9}, {5, 2, 4}, {4, 3, 8}, {5, 3, 8},
	}
	tw := table(w)
	fmt.Fprintln(tw, "d\tc\tl\tchain\tguarantee\tmeasured m->m\tmeasured t->m")
	for _, c := range cases {
		shapes, err := square.ChainShapes(c.l, c.d, c.c)
		if err != nil {
			return err
		}
		chain := ""
		for i, s := range shapes {
			if i > 0 {
				chain += " -> "
			}
			chain += s.String()
		}
		base, err := square.Predicted(grid.Mesh, grid.Mesh, c.d, c.c, c.l)
		if err != nil {
			return err
		}
		m := shapes[len(shapes)-1][0]
		h := grid.MustSpec(grid.Mesh, grid.Square(c.c, m))
		em, err := square.Embed(grid.MustSpec(grid.Mesh, grid.Square(c.d, c.l)), h)
		if err != nil {
			return err
		}
		et, err := square.Embed(grid.MustSpec(grid.Torus, grid.Square(c.d, c.l)), h)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\t%d\n", c.d, c.c, c.l, chain, base, em.Dilation(), et.Dilation())
	}
	tw.Flush()
	return nil
}

// E15SquareIncreasing reproduces Theorems 52 and 53: square increasing
// dimension, divisible (optimal 1 or 2) and non-divisible (l^{(d-a)/c}).
func E15SquareIncreasing(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "case\tguest\thost\tguarantee\tmeasured")
	div := []struct {
		gk      grid.Kind
		d, c, l int
	}{
		{grid.Mesh, 2, 4, 4}, {grid.Torus, 2, 4, 4}, {grid.Torus, 2, 4, 9}, {grid.Mesh, 1, 3, 8}, {grid.Torus, 3, 6, 4},
	}
	for _, c := range div {
		m, _ := square.IntRoot(square.IntPow(c.l, c.d), c.c)
		g := grid.MustSpec(c.gk, grid.Square(c.d, c.l))
		h := grid.MustSpec(grid.Mesh, grid.Square(c.c, m))
		e, err := core.Embed(g, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "Thm 52 (d|c)\t%s\t%s\t%d\t%d\n", g, h, e.Predicted, e.Dilation())
	}
	nondiv := []struct {
		gk      grid.Kind
		d, c, l int
	}{
		{grid.Mesh, 2, 3, 8}, {grid.Torus, 2, 3, 8}, {grid.Torus, 2, 3, 27}, {grid.Mesh, 3, 4, 16},
	}
	for _, c := range nondiv {
		m, _ := square.IntRoot(square.IntPow(c.l, c.d), c.c)
		g := grid.MustSpec(c.gk, grid.Square(c.d, c.l))
		h := grid.MustSpec(grid.Mesh, grid.Square(c.c, m))
		e, err := core.Embed(g, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "Thm 53 (d∤c)\t%s\t%s\t%d\t%d\n", g, h, e.Predicted, e.Dilation())
	}
	tw.Flush()
	return nil
}

// E16Literature reproduces the Section 5 comparison table: our dilation
// vs the known optimal results of Fitzgerald, Ma & Narahari and Harper.
func E16Literature(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "case\tl or d\toptimal (literature)\tours\tratio")
	for _, l := range []int{2, 3, 4, 5, 6} {
		g := grid.MustSpec(grid.Mesh, grid.Square(2, l))
		e, err := core.Embed(g, grid.LineSpec(l*l))
		if err != nil {
			return err
		}
		opt := baseline.Fitzgerald2D(l)
		fmt.Fprintf(tw, "(l,l)-mesh -> line [Fit74]\t%d\t%d\t%d\t%.3f\n", l, opt, e.Dilation(), float64(e.Dilation())/float64(opt))
	}
	for _, l := range []int{2, 3, 4, 5} {
		g := grid.MustSpec(grid.Mesh, grid.Square(3, l))
		e, err := core.Embed(g, grid.LineSpec(l*l*l))
		if err != nil {
			return err
		}
		opt := baseline.Fitzgerald3D(l)
		fmt.Fprintf(tw, "(l,l,l)-mesh -> line [Fit74]\t%d\t%d\t%d\t%.3f\n", l, opt, e.Dilation(), float64(e.Dilation())/float64(opt))
	}
	for _, l := range []int{3, 4, 5, 6} {
		g := grid.MustSpec(grid.Torus, grid.Square(2, l))
		e, err := core.Embed(g, grid.RingSpec(l*l))
		if err != nil {
			return err
		}
		opt := baseline.MNTorusRing(l)
		fmt.Fprintf(tw, "(l,l)-torus -> ring [MN86]\t%d\t%d\t%d\t%.3f\n", l, opt, e.Dilation(), float64(e.Dilation())/float64(opt))
	}
	for d := 1; d <= 6; d++ {
		g := grid.MustSpec(grid.Mesh, grid.Hypercube(d))
		e, err := core.Embed(g, grid.LineSpec(1<<d))
		if err != nil {
			return err
		}
		opt := baseline.HarperHypercubeLine(d)
		fmt.Fprintf(tw, "hypercube 2^d -> line [Har66]\t%d\t%d\t%d\t%.3f\n", d, opt, e.Dilation(), float64(e.Dilation())/float64(opt))
	}
	tw.Flush()
	fmt.Fprintln(w, "paper: 2D mesh and torus cases truly optimal; 3D mesh within 4/3; hypercube optimal for d<=3, ratio 1/ε_{d-1} afterwards")
	return nil
}

// E17Epsilon reproduces the appendix: the ε_m sequence, its recurrence,
// and the Harper connection.
func E17Epsilon(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "m\tε_m (exact)\tε_m (float)\tε_m·2^m = Σ C(k,⌊k/2⌋)\tours/optimal for d=m+1")
	for m := 0; m <= 16; m++ {
		eps := baseline.Epsilon(m)
		f, _ := eps.Float64()
		harper := baseline.HarperHypercubeLine(m + 1)
		ours := baseline.OurHypercubeLine(m + 1)
		fmt.Fprintf(tw, "%d\t%s\t%.6f\t%d\t%.4f\n", m, eps.RatString(), f, harper, float64(ours)/float64(harper))
	}
	tw.Flush()
	fmt.Fprintln(w, "ε₀ = ε₁ = ε₂ = 1; strictly decreasing for m >= 3 (appendix Propositions 1-3)")
	return nil
}
