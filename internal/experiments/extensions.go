package experiments

import (
	"bytes"
	"fmt"
	"io"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/contract"
	"torusmesh/internal/core"
	"torusmesh/internal/grid"
)

// E20Census measures how much of the same-size embedding space the
// library covers: for each size, every ordered pair of canonical shapes
// and kinds is run through the sharded census engine — every
// construction verified, its dilation measured against the paper's
// guarantee. With the prime-refinement extension the coverage is total;
// the table also shows how often each of the paper's explicit
// constructions carries the load. As a standing cross-check of the
// engine's merge contract, each census is additionally run as two
// shards and merged, and the merged artifact must match the unsharded
// one bit for bit.
func E20Census(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "size\tcanonical shapes\tordered pairs\tembeddable\tcoverage\tworst dilation")
	sizes := []int{16, 24, 36, 60, 64}
	censuses := make([]*census.Census, 0, len(sizes))
	for _, n := range sizes {
		cfg := census.Config{
			Size:    n,
			Shapes:  catalog.CanonicalShapesOfSize(n, 0),
			Metrics: true,
			Embed:   core.Embed,
		}
		c, err := census.Run(cfg)
		if err != nil {
			return err
		}
		if c.VerifyFailures > 0 {
			return fmt.Errorf("size %d: %d constructions failed verification", n, c.VerifyFailures)
		}
		if err := checkShardMerge(cfg, c); err != nil {
			return err
		}
		censuses = append(censuses, c)
		worst := 0
		for i := range c.Results {
			if c.Results[i].Dilation > worst {
				worst = c.Results[i].Dilation
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f%%\t%d\n", c.Size, len(c.Shapes), c.Pairs, c.Embeddable,
			100*float64(c.Embeddable)/float64(c.Pairs), worst)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nstrategy share (all sizes pooled):")
	pooled := map[string]int{}
	total := 0
	for _, c := range censuses {
		for k, v := range c.ByStrategy {
			pooled[k] += v
			total += v
		}
	}
	tw = table(w)
	fmt.Fprintln(tw, "strategy\tpairs\tshare")
	for _, k := range sortedKeys(pooled) {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", k, pooled[k], 100*float64(pooled[k])/float64(total))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nshard/merge cross-check: every census re-run as two shards merged bit-for-bit equal")
	return nil
}

// checkShardMerge re-runs the census as two shards and demands that the
// merged artifact reproduces the unsharded one exactly.
func checkShardMerge(cfg census.Config, full *census.Census) error {
	parts := make([]*census.Census, 2)
	for s := range parts {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, len(parts)
		c, err := census.Run(scfg)
		if err != nil {
			return err
		}
		parts[s] = c
	}
	merged, err := census.Merge(parts...)
	if err != nil {
		return err
	}
	want, err := full.EncodeBytes()
	if err != nil {
		return err
	}
	got, err := merged.EncodeBytes()
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("size %d: merged shard censuses differ from the unsharded census", cfg.Size)
	}
	return nil
}

// E21Contraction demonstrates the many-to-one extension (the KA88-style
// simulations the paper contrasts with): larger guests simulated on
// smaller hosts by block contraction composed with the paper's
// embeddings, keeping constant load and small dilation.
func E21Contraction(w io.Writer) error {
	cases := []struct{ guest, host grid.Spec }{
		{grid.MeshSpec(8, 6), grid.MeshSpec(4, 3)},
		{grid.TorusSpec(16, 16), grid.TorusSpec(8, 8)},
		{grid.MeshSpec(16, 12), grid.MeshSpec(4, 2, 3)},
		{grid.MeshSpec(32, 32), grid.MeshSpec(2, 2, 2, 2, 2, 2)},
		{grid.TorusSpec(12, 12), grid.RingSpec(36)},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tload\tdilation\tstrategy")
	for _, c := range cases {
		sim, err := contract.Simulate(c.guest, c.host)
		if err != nil {
			return fmt.Errorf("%s -> %s: %v", c.guest, c.host, err)
		}
		if err := sim.Verify(); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\n", c.guest, c.host, sim.Load, sim.Dilation(), sim.Strategy)
	}
	tw.Flush()
	fmt.Fprintln(w, "constant load with small dilation: the many-to-one relaxation of Definition 1 the paper attributes to KA88")
	return nil
}
