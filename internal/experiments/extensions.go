package experiments

import (
	"fmt"
	"io"

	"torusmesh/internal/catalog"
	"torusmesh/internal/contract"
	"torusmesh/internal/core"
	"torusmesh/internal/grid"
)

// E20Census measures how much of the same-size embedding space the
// library covers: for each size, every ordered pair of canonical shapes
// and kinds is attempted, and the strategies are tallied. With the
// prime-refinement extension the coverage is total; the table also shows
// how often each of the paper's explicit constructions carries the load.
func E20Census(w io.Writer) error {
	embedFn := func(g, h grid.Spec) (string, error) {
		e, err := core.Embed(g, h)
		if err != nil {
			return "", err
		}
		if verr := e.Verify(); verr != nil {
			return "", fmt.Errorf("%s -> %s: %v", g, h, verr)
		}
		if _, perr := e.CheckPredicted(); perr != nil {
			return "", perr
		}
		return e.Strategy, nil
	}
	tw := table(w)
	fmt.Fprintln(tw, "size\tcanonical shapes\tordered pairs\tembeddable\tcoverage")
	sizes := []int{16, 24, 36, 60, 64}
	censuses := make([]catalog.Census, 0, len(sizes))
	for _, n := range sizes {
		c := catalog.Coverage(n, 0, embedFn)
		censuses = append(censuses, c)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f%%\n", c.Size, c.Shapes, c.Pairs, c.Embeddable,
			100*float64(c.Embeddable)/float64(c.Pairs))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nstrategy share (all sizes pooled):")
	pooled := map[string]int{}
	total := 0
	for _, c := range censuses {
		for k, v := range c.ByStrategy {
			pooled[k] += v
			total += v
		}
	}
	tw = table(w)
	fmt.Fprintln(tw, "strategy\tpairs\tshare")
	for _, k := range sortedKeys(pooled) {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", k, pooled[k], 100*float64(pooled[k])/float64(total))
	}
	tw.Flush()
	return nil
}

// E21Contraction demonstrates the many-to-one extension (the KA88-style
// simulations the paper contrasts with): larger guests simulated on
// smaller hosts by block contraction composed with the paper's
// embeddings, keeping constant load and small dilation.
func E21Contraction(w io.Writer) error {
	cases := []struct{ guest, host grid.Spec }{
		{grid.MeshSpec(8, 6), grid.MeshSpec(4, 3)},
		{grid.TorusSpec(16, 16), grid.TorusSpec(8, 8)},
		{grid.MeshSpec(16, 12), grid.MeshSpec(4, 2, 3)},
		{grid.MeshSpec(32, 32), grid.MeshSpec(2, 2, 2, 2, 2, 2)},
		{grid.TorusSpec(12, 12), grid.RingSpec(36)},
	}
	tw := table(w)
	fmt.Fprintln(tw, "guest\thost\tload\tdilation\tstrategy")
	for _, c := range cases {
		sim, err := contract.Simulate(c.guest, c.host)
		if err != nil {
			return fmt.Errorf("%s -> %s: %v", c.guest, c.host, err)
		}
		if err := sim.Verify(); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%s\n", c.guest, c.host, sim.Load, sim.Dilation(), sim.Strategy)
	}
	tw.Flush()
	fmt.Fprintln(w, "constant load with small dilation: the many-to-one relaxation of Definition 1 the paper attributes to KA88")
	return nil
}
