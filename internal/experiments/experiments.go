// Package experiments regenerates every figure and quantitative claim of
// Ma & Tao as text tables: the worked figures (1-12), the dilation
// guarantees of each theorem (measured against the implementation), the
// Section 5 comparison with known optimal results, the appendix ε table,
// and the network-simulation demonstration of the paper's motivation.
// The experiment index lives in DESIGN.md; outputs are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Experiment pairs an id (E01..E19) with a title and a generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E01", "Figures 1-2: the (4,2,3)-torus and (4,2,3)-mesh", E01Preliminaries},
		{"E02", "Figure 3: δm/δt distances and spreads of a sequence over Ω(3,3)", E02SpreadExample},
		{"E03", "Figure 4: naive sequence P vs reflected P' for L=(4,2,3)", E03ReflectionAblation},
		{"E04", "Figure 9: the sequences f_L, g_L, h_L for L=(4,2,3)", E04BasicSequences},
		{"E05", "Figure 10: line and ring of size 24 in the (4,2,3)-mesh", E05LineRingInMesh},
		{"E06", "Theorems 13/17/24/28: basic embedding dilation matrix", E06BasicMatrix},
		{"E07", "Corollaries 18/25/29: Hamiltonian circuits", E07Hamiltonian},
		{"E08", "Figure 11: F_V, G_V, H_V for L=(4,6), M=(2,2,2,3)", E08ExpansionExample},
		{"E09", "Theorem 32: increasing-dimension matrix and factor ablation", E09IncreasingMatrix},
		{"E10", "Theorem 33 / Corollary 34: embeddings into hypercubes", E10Hypercube},
		{"E11", "Theorem 39 / Corollary 40: simple reductions", E11SimpleReduction},
		{"E12", "Figure 12 / Theorem 43: general reductions", E12GeneralReduction},
		{"E13", "Theorem 48: square lowering, divisible dimensions", E13SquareLoweringDivisible},
		{"E14", "Theorem 51: square lowering via chains", E14SquareLoweringChain},
		{"E15", "Theorems 52/53: square increasing dimension", E15SquareIncreasing},
		{"E16", "Section 5: comparison with known optimal results", E16Literature},
		{"E17", "Appendix: the ε_m sequence", E17Epsilon},
		{"E18", "Section 1 motivation: dilation drives network latency", E18Netsim},
		{"E19", "Theorem 47: lower bounds vs optimal vs ours", E19LowerBounds},
		{"E20", "Extension: coverage census over all same-size shape pairs", E20Census},
		{"E21", "Extension: many-to-one simulations (KA88 contrast)", E21Contraction},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll writes every experiment to w, separated by headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %v", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table starts a tabwriter over w.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
