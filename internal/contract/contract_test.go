package contract

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestBlockContractionMesh(t *testing.T) {
	guest := grid.MeshSpec(8, 6)
	host := grid.MeshSpec(4, 3)
	sim, err := BlockContraction(guest, host)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 4 {
		t.Errorf("load = %d, want 4", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1 (KA88-style constant)", d)
	}
}

func TestBlockContractionTorus(t *testing.T) {
	guest := grid.TorusSpec(9, 4)
	host := grid.TorusSpec(3, 2)
	sim, err := BlockContraction(guest, host)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 6 {
		t.Errorf("load = %d, want 6", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
}

func TestBlockContractionRejects(t *testing.T) {
	if _, err := BlockContraction(grid.MeshSpec(8, 6), grid.MeshSpec(4, 4)); err == nil {
		t.Error("non-dividing host accepted")
	}
	if _, err := BlockContraction(grid.MeshSpec(8, 6), grid.MeshSpec(4)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := BlockContraction(grid.TorusSpec(8, 6), grid.MeshSpec(4, 3)); err == nil {
		t.Error("torus-onto-mesh contraction accepted (wrap edges break)")
	}
}

func TestSimulateComposed(t *testing.T) {
	// A 16x12 mesh simulated on a 4x2x3 mesh machine: load 8, and the
	// dilation comes from the embedding of the contracted 8x... shape.
	guest := grid.MeshSpec(16, 12)
	host := grid.MeshSpec(4, 2, 3)
	sim, err := Simulate(guest, host)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 8 {
		t.Errorf("load = %d, want 8", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d < 1 || d > 4 {
		t.Errorf("dilation = %d, expected a small constant", d)
	}
}

func TestSimulateEqualSizesFallsBackToEmbedding(t *testing.T) {
	sim, err := Simulate(grid.RingSpec(24), grid.MeshSpec(4, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 1 {
		t.Errorf("load = %d, want 1", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
}

func TestSimulateTorusOnTorus(t *testing.T) {
	guest := grid.TorusSpec(16, 16)
	host := grid.TorusSpec(8, 8)
	sim, err := Simulate(guest, host)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Load != 4 {
		t.Errorf("load = %d, want 4", sim.Load)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := sim.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1", d)
	}
}

func TestSimulateRejectsNonMultiple(t *testing.T) {
	if _, err := Simulate(grid.MeshSpec(5, 5), grid.MeshSpec(2, 6)); err == nil {
		t.Error("non-multiple sizes accepted")
	}
}

func TestShrinkShape(t *testing.T) {
	out, ok := shrinkShape(grid.Shape{16, 12}, 8)
	if !ok || out.Size() != 24 {
		t.Errorf("shrinkShape = %v, %v", out, ok)
	}
	// Cannot shrink 2x2 by 3.
	if _, ok := shrinkShape(grid.Shape{2, 2}, 3); ok {
		t.Error("impossible shrink accepted")
	}
	// Cannot shrink below length 2: 2x2 by factor 2 would need a length-1
	// dimension.
	if _, ok := shrinkShape(grid.Shape{2, 2}, 2); ok {
		t.Error("shrink below minimum length accepted")
	}
	// Prime factor walk: 36 by 6 -> 2x3 remains.
	out, ok = shrinkShape(grid.Shape{6, 6}, 6)
	if !ok || out.Size() != 6 {
		t.Errorf("shrinkShape(6x6, 6) = %v, %v", out, ok)
	}
}

func TestPrimeFactors(t *testing.T) {
	got := primeFactors(60)
	want := []int{5, 3, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("primeFactors(60) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primeFactors(60) = %v, want %v", got, want)
		}
	}
}

// TestDilationMatchesPerEdgeWalk pins the batch edge-block Dilation to
// the retired per-node reference: a sequential VisitEdges walk through
// the map closure.
func TestDilationMatchesPerEdgeWalk(t *testing.T) {
	cases := []struct{ guest, host grid.Spec }{
		{grid.MeshSpec(8, 6), grid.MeshSpec(4, 3)},
		{grid.TorusSpec(9, 4), grid.TorusSpec(3, 2)},
		{grid.MeshSpec(16, 12), grid.MeshSpec(4, 2, 3)},
		{grid.TorusSpec(12, 12), grid.RingSpec(36)},
		{grid.RingSpec(24), grid.MeshSpec(4, 2, 3)},
		{grid.MeshSpec(32, 32), grid.MeshSpec(2, 2, 2, 2, 2, 2)},
	}
	for _, tc := range cases {
		sim, err := Simulate(tc.guest, tc.host)
		if err != nil {
			t.Fatalf("%s -> %s: %v", tc.guest, tc.host, err)
		}
		want := 0
		sim.From.VisitEdges(func(a, b grid.Node) {
			if d := sim.To.Distance(sim.mapFn(a.Clone()), sim.mapFn(b.Clone())); d > want {
				want = d
			}
		})
		if got := sim.Dilation(); got != want {
			t.Errorf("%s -> %s: batch dilation %d, per-edge walk %d", tc.guest, tc.host, got, want)
		}
	}
}
