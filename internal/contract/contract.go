// Package contract implements many-to-one simulations of toruses and
// meshes, the relaxation of embeddings the paper contrasts with
// Kosaraju & Atallah [KA88]: a simulation maps a constant number of
// guest nodes onto each host node (the load), and its dilation is the
// maximum host distance between images of adjacent guest nodes.
//
// The basic construction is block contraction: a guest of shape
// (b1·m1, ..., bd·md) contracts onto a host of shape (m1, ..., md) by
// integer-dividing each coordinate by its block length. Adjacent guest
// nodes land on equal or adjacent host nodes, so the dilation is 1 and
// the load is Π b_i — matching the KA88 observation that constant-load
// simulations between matching-dimension grids cost O(1) dilation.
// Composing a contraction with any embedding from this library extends
// the paper's same-size results to guests larger than the host.
package contract

import (
	"fmt"
	"sync"

	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/par"
)

// Simulation is a many-to-one map from guest nodes to host nodes.
type Simulation struct {
	From, To grid.Spec
	// Load is the exact number of guest nodes per host node.
	Load int
	// Strategy names the construction.
	Strategy string
	// mapFn must be a pure function safe for concurrent calls that
	// neither mutates nor retains its argument — the same contract as
	// embed.Embedding.Map, which Dilation's parallel walk relies on.
	mapFn func(grid.Node) grid.Node
}

// Map returns the host image of a guest node.
func (s *Simulation) Map(n grid.Node) grid.Node { return s.mapFn(n) }

// Dilation measures the maximum host distance between images of
// adjacent guest nodes (0 when every edge collapses into single nodes).
// It runs on the batch path: guest edge blocks (VisitEdgesBatchRange)
// are striped across an internal/par worker pool, endpoint ranks decode
// into reused coordinate buffers, and host distances reduce through a
// compiled rank-native distancer.
func (s *Simulation) Dilation() int {
	n := s.From.Size()
	rd := s.To.NewRankDistancer()
	hostShape := s.To.Shape
	var mu sync.Mutex
	max := 0
	par.Blocks(n, par.Grain(n, 2048), func(lo, hi int) {
		a := make(grid.Node, s.From.Dim())
		b := make(grid.Node, s.From.Dim())
		local := 0
		s.From.VisitEdgesBatchRange(lo, hi, grid.DefaultEdgeBlock, func(ra, rb []int) {
			for i := range ra {
				s.From.Shape.NodeInto(a, ra[i])
				s.From.Shape.NodeInto(b, rb[i])
				ia := hostShape.Index(s.mapFn(a))
				ib := hostShape.Index(s.mapFn(b))
				if d := rd.Distance(ia, ib); d > local {
					local = d
				}
			}
		})
		mu.Lock()
		if local > max {
			max = local
		}
		mu.Unlock()
	})
	return max
}

// Verify checks that the map is onto the host with uniform load.
func (s *Simulation) Verify() error {
	counts := make([]int, s.To.Size())
	n := s.From.Size()
	for x := 0; x < n; x++ {
		img := s.mapFn(s.From.Shape.NodeAt(x))
		if !img.InBounds(s.To.Shape) {
			return fmt.Errorf("contract: image %s out of bounds for %s", img, s.To)
		}
		counts[s.To.Shape.Index(img)]++
	}
	for i, c := range counts {
		if c != s.Load {
			return fmt.Errorf("contract: host node %s simulates %d guest nodes, want %d",
				s.To.Shape.NodeAt(i), c, s.Load)
		}
	}
	return nil
}

// Blocks returns the per-dimension block lengths b_i = l_i / m_i when
// the host shape divides the guest shape component-wise, or false.
func Blocks(guest, host grid.Shape) ([]int, bool) {
	if len(guest) != len(host) {
		return nil, false
	}
	blocks := make([]int, len(guest))
	for i := range guest {
		if guest[i]%host[i] != 0 {
			return nil, false
		}
		blocks[i] = guest[i] / host[i]
	}
	return blocks, true
}

// BlockContraction builds the dilation-1 block contraction of guest onto
// host. The shapes must have equal dimension with host dividing guest
// component-wise, and for a torus guest the host must also be a torus
// (collapsing wrap edges into a mesh would cost the full mesh span).
func BlockContraction(guest, host grid.Spec) (*Simulation, error) {
	blocks, ok := Blocks(guest.Shape, host.Shape)
	if !ok {
		return nil, fmt.Errorf("contract: %s does not divide %s component-wise", host.Shape, guest.Shape)
	}
	if guest.Kind == grid.Torus && host.Kind == grid.Mesh && !guest.IsHypercube() {
		return nil, fmt.Errorf("contract: torus guest onto mesh host breaks wrap edges; contract onto a torus and embed it instead")
	}
	load := 1
	for _, b := range blocks {
		load *= b
	}
	bs := append([]int(nil), blocks...)
	return &Simulation{
		From:     guest,
		To:       host,
		Load:     load,
		Strategy: "block-contraction",
		mapFn: func(n grid.Node) grid.Node {
			out := make(grid.Node, len(n))
			for i, v := range n {
				out[i] = v / bs[i]
			}
			return out
		},
	}, nil
}

// Simulate builds a many-to-one simulation of guest on host for guests
// whose size is a multiple of the host's: it contracts the guest onto an
// intermediate graph of the guest's kind whose shape component-wise
// divides it and matches the host's size, then embeds that intermediate
// in the host with the paper's constructions. The resulting dilation is
// the embedding's dilation; the load is size(guest)/size(host).
func Simulate(guest, host grid.Spec) (*Simulation, error) {
	if guest.Size()%host.Size() != 0 {
		return nil, fmt.Errorf("contract: guest size %d is not a multiple of host size %d", guest.Size(), host.Size())
	}
	factor := guest.Size() / host.Size()
	if factor == 1 {
		e, err := core.Embed(guest, host)
		if err != nil {
			return nil, err
		}
		return fromEmbedding(e), nil
	}
	midShape, ok := shrinkShape(guest.Shape, factor)
	if !ok {
		return nil, fmt.Errorf("contract: cannot split a block factor of %d off shape %s", factor, guest.Shape)
	}
	midKind := guest.Kind
	mid := grid.Spec{Kind: midKind, Shape: midShape}
	con, err := BlockContraction(guest, mid)
	if err != nil {
		return nil, err
	}
	e, err := core.Embed(mid, host)
	if err != nil {
		return nil, fmt.Errorf("contract: intermediate %s does not embed in %s: %v", mid, host, err)
	}
	return &Simulation{
		From:     guest,
		To:       host,
		Load:     con.Load,
		Strategy: "block-contraction ∘ " + e.Strategy,
		mapFn: func(n grid.Node) grid.Node {
			return e.Map(con.Map(n))
		},
	}, nil
}

// fromEmbedding wraps a one-to-one embedding as a load-1 simulation.
func fromEmbedding(e *embed.Embedding) *Simulation {
	return &Simulation{
		From:     e.From,
		To:       e.To,
		Load:     1,
		Strategy: e.Strategy,
		mapFn:    e.Map,
	}
}

// shrinkShape divides factor out of the shape one prime at a time,
// always shrinking the currently largest divisible dimension, keeping
// every length at least 2. Returns false when factor does not divide out
// cleanly.
func shrinkShape(s grid.Shape, factor int) (grid.Shape, bool) {
	out := s.Clone()
	for _, p := range primeFactors(factor) {
		best := -1
		for i, l := range out {
			if l%p == 0 && l/p >= 2 && (best < 0 || l > out[best]) {
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		out[best] /= p
	}
	return out, true
}

// primeFactors returns the prime factorization of n (with multiplicity),
// largest primes first.
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
