// The NDJSON stream form of the census artifact: a versioned header
// line followed by one PairResult per line. A census too large to hold
// as one JSON document — or still being produced, one shard at a time,
// by the distributed driver — streams record by record instead: writers
// append complete lines as results arrive, and readers fold the lines
// back into a census without ever materializing a second copy.
//
// Two readers exist on purpose. ReadStream is strict: a clean,
// complete stream or an error — the right contract for shard transport
// between a worker process and the driver. ScanStream is the recovery
// reader behind -resume: it accepts a partial artifact (a run that was
// killed mid-write), returning every intact record and silently
// dropping the first damaged line and everything after it; re-running
// the dropped pairs is always safe because pair evaluation is
// deterministic.

package census

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// StreamVersion is the framing version stamped into every stream
// header. It versions the NDJSON layout (header line + record lines);
// the schema of the records themselves is versioned by ArtifactVersion,
// which the header also carries.
const StreamVersion = 1

// streamPrefix is the byte prefix every stream artifact starts with.
// The "stream" field is declared first in StreamHeader precisely so
// that format sniffing (ReadFileAny) is a prefix check, not a parse.
const streamPrefix = `{"stream":`

// ErrTruncatedStream reports a stream artifact that ends in the middle
// of a record line — the signature of a writer killed mid-append.
var ErrTruncatedStream = errors.New("census: stream artifact ends mid-record")

// ErrNoHeader reports a stream artifact with no intact header line: an
// empty file, or one whose writer was killed before the header's
// trailing newline reached disk. RepairStreamFile treats it as a
// repairable empty journal; the strict readers return it as an error.
var ErrNoHeader = errors.New("census: stream has no header line")

// StreamHeader is the first line of an NDJSON census stream: the
// census-level fields of the artifact, minus the aggregates (which are
// derived from the records and recomputed on read).
type StreamHeader struct {
	Stream     int      `json:"stream"` // StreamVersion; must stay the first field (see streamPrefix)
	Version    int      `json:"version"`
	Size       int      `json:"size"`
	MaxDim     int      `json:"maxdim"`
	Shard      int      `json:"shard"`
	Shards     int      `json:"shards"`
	Metrics    bool     `json:"metrics"`
	Congestion bool     `json:"congestion"`
	Placed     bool     `json:"placed"`
	PlaceSpec  string   `json:"place_spec,omitempty"`
	Shapes     []string `json:"shapes"`
	SpacePairs int      `json:"space_pairs"`
}

// StreamHeader returns the census's header line fields.
func (c *Census) StreamHeader() StreamHeader {
	return StreamHeader{
		Stream:     StreamVersion,
		Version:    c.Version,
		Size:       c.Size,
		MaxDim:     c.MaxDim,
		Shard:      c.Shard,
		Shards:     c.Shards,
		Metrics:    c.Metrics,
		Congestion: c.Congestion,
		Placed:     c.Placed,
		PlaceSpec:  c.PlaceSpec,
		Shapes:     c.Shapes,
		SpacePairs: c.SpacePairs,
	}
}

// StreamHeader returns the header a census of this config would carry:
// what a worker stamps on its stream before any pair has finished.
func (cfg *Config) StreamHeader() StreamHeader {
	shard, shards := cfg.Shard, cfg.Shards
	if shards == 0 {
		shards = 1
	}
	specs := 2 * len(cfg.Shapes)
	return StreamHeader{
		Stream:     StreamVersion,
		Version:    ArtifactVersion,
		Size:       cfg.Size,
		MaxDim:     cfg.MaxDim,
		Shard:      shard,
		Shards:     shards,
		Metrics:    cfg.Metrics,
		Congestion: cfg.Congestion,
		Placed:     cfg.Place != nil,
		PlaceSpec:  cfg.PlaceSpec,
		Shapes:     shapeStrings(cfg.Shapes),
		SpacePairs: specs * specs,
	}
}

// Census converts the header into an empty census skeleton; filling in
// Results and recounting yields the census the stream encodes.
func (h StreamHeader) Census() *Census {
	c := &Census{
		Version:    h.Version,
		Size:       h.Size,
		MaxDim:     h.MaxDim,
		Shard:      h.Shard,
		Shards:     h.Shards,
		Metrics:    h.Metrics,
		Congestion: h.Congestion,
		Placed:     h.Placed,
		PlaceSpec:  h.PlaceSpec,
		Shapes:     append([]string(nil), h.Shapes...),
		SpacePairs: h.SpacePairs,
	}
	c.recount()
	return c
}

// validate rejects headers from other framing or schema versions and
// structurally invalid shard labels.
func (h StreamHeader) validate() error {
	if h.Stream != StreamVersion {
		return fmt.Errorf("census: stream version %d is incompatible (want %d)", h.Stream, StreamVersion)
	}
	if h.Version != ArtifactVersion {
		return fmt.Errorf("census: artifact version %d is incompatible (want %d)", h.Version, ArtifactVersion)
	}
	if h.Shards < 1 || h.Shard < 0 || h.Shard >= h.Shards {
		return fmt.Errorf("census: stream header has invalid shard %d/%d", h.Shard, h.Shards)
	}
	return nil
}

// SameCensus reports whether two headers describe the same census
// configuration — everything except the shard labels, so a merged
// (0/1) journal can be compared against a worker's i/m stream. Callers
// that need the shard labels equal too compare them directly.
func (h StreamHeader) SameCensus(o StreamHeader) error {
	a, b := h.Census(), o.Census()
	a.Shard, a.Shards = 0, 1
	b.Shard, b.Shards = 0, 1
	if err := compatible(a, b); err != nil {
		return err
	}
	return nil
}

// StreamWriter appends NDJSON census records to an underlying writer.
// Every record is written as one complete line in a single Write call,
// so a reader of a live or killed-mid-run stream sees only whole lines
// plus at most one truncated tail. Write is safe for concurrent use.
type StreamWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewStreamWriter writes the header line for h and returns a writer
// for its records.
func NewStreamWriter(w io.Writer, h StreamHeader) (*StreamWriter, error) {
	if err := h.validate(); err != nil {
		return nil, err
	}
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("census: encode stream header: %v", err)
	}
	if !bytes.HasPrefix(line, []byte(streamPrefix)) {
		return nil, fmt.Errorf("census: stream header does not start with %q", streamPrefix)
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		return nil, err
	}
	return &StreamWriter{w: w}, nil
}

// NewStreamAppender returns a record writer for a stream whose header
// line already exists — the resume path, where the journal is reopened
// for append and the caller has verified its header.
func NewStreamAppender(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w}
}

// Write appends one record line.
func (sw *StreamWriter) Write(r *PairResult) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("census: encode stream record: %v", err)
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	_, err = sw.w.Write(append(line, '\n'))
	return err
}

// StreamReader reads an NDJSON census stream record by record.
type StreamReader struct {
	// Header is the validated header line, available immediately after
	// NewStreamReader returns.
	Header StreamHeader
	br     *bufio.Reader
	intact int64 // bytes consumed by the header and every decoded record
}

// NewStreamReader reads and validates the stream's header line.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	line, n, err := readLine(br)
	if err != nil {
		if err == io.EOF || err == ErrTruncatedStream {
			return nil, ErrNoHeader
		}
		return nil, err
	}
	var h StreamHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("census: decode stream header: %v", err)
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return &StreamReader{Header: h, br: br, intact: int64(n)}, nil
}

// Read returns the next record, io.EOF at a clean end of stream, or
// ErrTruncatedStream when the stream ends mid-line.
func (sr *StreamReader) Read() (*PairResult, error) {
	line, n, err := readLine(sr.br)
	if err != nil {
		return nil, err
	}
	var r PairResult
	if err := json.Unmarshal(line, &r); err != nil {
		return nil, fmt.Errorf("census: decode stream record: %v", err)
	}
	sr.intact += int64(n)
	return &r, nil
}

// IntactBytes returns how many bytes of the stream held the header and
// the records decoded so far — the offset a damaged stream must be
// truncated to before it can be appended to again (RepairStreamFile).
func (sr *StreamReader) IntactBytes() int64 { return sr.intact }

// readLine returns the next newline-terminated line without its
// terminator, plus the full consumed byte count (terminator included):
// io.EOF at a clean end, ErrTruncatedStream when input ends before the
// terminator.
func readLine(br *bufio.Reader) ([]byte, int, error) {
	line, err := br.ReadBytes('\n')
	if err == io.EOF {
		if len(line) > 0 {
			return nil, 0, ErrTruncatedStream
		}
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, 0, err
	}
	return line[:len(line)-1], len(line), nil
}

// WriteStream writes the census in stream form: header line, then one
// record line per result in stored order. For a census produced by Run
// or Merge the stored order is pair-index order, so equal censuses
// produce equal stream bytes, mirroring Encode.
func WriteStream(w io.Writer, c *Census) error {
	sw, err := NewStreamWriter(w, c.StreamHeader())
	if err != nil {
		return err
	}
	for i := range c.Results {
		if err := sw.Write(&c.Results[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteStreamFile saves the census in stream form to path.
func (c *Census) WriteStreamFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteStream(bw, c); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadStream reads a complete stream artifact strictly: any truncated
// or undecodable line is an error. Aggregates are recomputed from the
// records, so the result is interchangeable with the census the stream
// was written from.
func ReadStream(r io.Reader) (*Census, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	return readStreamRecords(sr)
}

func readStreamRecords(sr *StreamReader) (*Census, error) {
	c := sr.Header.Census()
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		c.Results = append(c.Results, *rec)
	}
	c.recount()
	return c, nil
}

// ScanStream is the tolerant reader behind resume: it returns every
// intact record of a possibly partial stream, stopping (without error)
// at the first truncated or undecodable line. Only the header must be
// intact. Records after a damaged line are dropped too — their pairs
// re-evaluate deterministically, so dropping is always safe.
func ScanStream(r io.Reader) (StreamHeader, []PairResult, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return StreamHeader{}, nil, err
	}
	var out []PairResult
	for {
		rec, err := sr.Read()
		if err != nil {
			// io.EOF is the clean end; anything else is damage at the
			// tail, which resume simply re-evaluates.
			return sr.Header, out, nil
		}
		out = append(out, *rec)
	}
}

// ScanStreamFile is ScanStream over a file. It never modifies the
// file, so it is safe on a journal another process is still appending
// to (workers resuming against a live journal).
func ScanStreamFile(path string) (StreamHeader, []PairResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return StreamHeader{}, nil, err
	}
	defer f.Close()
	h, recs, err := ScanStream(f)
	if err != nil {
		return StreamHeader{}, nil, fmt.Errorf("%s: %v", path, err)
	}
	return h, recs, nil
}

// RepairStreamFile scans a possibly partial stream artifact and
// truncates any damaged tail (a line cut mid-write, and everything
// after it) in place, returning the header and the intact records.
// This is the open-for-resume primitive: after it returns, appending
// record lines to the file yields a well-formed stream again — without
// it, the first appended record would glue onto the partial tail and
// hide every later record from all future scans.
//
// A journal whose writer died before (or during) its header write — an
// empty file, or a lone header line cut before its newline — is not an
// error here: the file is truncated to empty and the zero StreamHeader
// is returned with no records, so the resume path can write a fresh
// header and start over instead of refusing a journal that simply
// never got going. Callers detect this case by the zero header
// (Stream == 0). Never call RepairStreamFile on a journal another
// process is still writing; use ScanStreamFile there.
func RepairStreamFile(path string) (StreamHeader, []PairResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return StreamHeader{}, nil, err
	}
	defer f.Close()
	sr, err := NewStreamReader(f)
	if errors.Is(err, ErrNoHeader) {
		// Only a file that actually looks like a torn journal — empty,
		// or starting with (a prefix of) the stream header prefix — is
		// reset. Anything else is some other newline-less file the
		// caller mistyped a path to; destroying it would be worse than
		// the error.
		head := make([]byte, len(streamPrefix))
		n, rerr := f.ReadAt(head, 0)
		if rerr != nil && rerr != io.EOF {
			return StreamHeader{}, nil, fmt.Errorf("%s: %v", path, rerr)
		}
		head = head[:n]
		prefix := []byte(streamPrefix)
		if n > 0 && !bytes.HasPrefix(head, prefix) && !bytes.HasPrefix(prefix, head) {
			return StreamHeader{}, nil, fmt.Errorf("%s: not a stream journal: %v", path, err)
		}
		if terr := f.Truncate(0); terr != nil {
			return StreamHeader{}, nil, fmt.Errorf("%s: truncate headerless journal: %v", path, terr)
		}
		return StreamHeader{}, nil, nil
	}
	if err != nil {
		return StreamHeader{}, nil, fmt.Errorf("%s: %v", path, err)
	}
	var recs []PairResult
	damaged := false
	for {
		rec, err := sr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			damaged = true
			break
		}
		recs = append(recs, *rec)
	}
	if damaged {
		if err := f.Truncate(sr.IntactBytes()); err != nil {
			return StreamHeader{}, nil, fmt.Errorf("%s: truncate damaged tail: %v", path, err)
		}
	}
	return sr.Header, recs, nil
}

// ReadFileAny loads an artifact from path in either form — the JSON
// document of Encode or the NDJSON stream of WriteStream — sniffing
// the format from the file's first bytes.
func ReadFileAny(path string) (*Census, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(len(streamPrefix))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	var c *Census
	if bytes.Equal(prefix, []byte(streamPrefix)) {
		c, err = ReadStream(br)
	} else {
		c, err = Decode(br)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return c, nil
}
