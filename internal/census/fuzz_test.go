// Fuzz targets for the NDJSON journal readers. The properties pinned
// here are the ones the resume path stakes correctness on:
//
//   - ScanStream (tolerant) accepts a superset of ReadStream (strict):
//     whenever the tolerant reader rejects a stream, so does the
//     strict one.
//   - RepairStreamFile never errors on input ScanStream accepts, and
//     repairs it to exactly the intact prefix (IntactBytes), after
//     which the strict reader accepts the file and appending records
//     yields a well-formed journal again.
//   - Repair is idempotent, and a failed repair leaves the file
//     untouched (it must never destroy a mistyped non-journal path).

package census

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzHeader is a minimal valid stream header for seed corpus
// construction.
func fuzzHeader() StreamHeader {
	return StreamHeader{
		Stream:  StreamVersion,
		Version: ArtifactVersion,
		Size:    8,
		Shards:  1,
		Metrics: true,
		Shapes:  []string{"8", "4x2", "2x2x2"},
	}
}

// fuzzStreamBytes builds a well-formed two-record journal.
func fuzzStreamBytes(tb testing.TB) []byte {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, fuzzHeader())
	if err != nil {
		tb.Fatal(err)
	}
	records := []PairResult{
		{Index: 0, Guest: "torus(4x2)", Host: "mesh(4x2)", Strategy: "torus-to-mesh", Dilation: 2,
			HopHist: map[int]int{1: 10, 2: 2}},
		{Index: 3, Guest: "ring(8)", Host: "torus(2x2x2)", Failure: "no construction", FailureStage: "construct"},
	}
	for i := range records {
		if err := sw.Write(&records[i]); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// addSeedCorpus feeds both fuzz targets the same journal shapes: a
// clean stream, torn tails at several offsets, a header-only journal,
// a header cut before its newline, an empty file, plain garbage, and
// the non-stream census artifact from testdata.
func addSeedCorpus(f *testing.F) {
	valid := fuzzStreamBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])                   // record torn mid-line
	f.Add(valid[:bytes.IndexByte(valid, '\n')+1]) // header only
	f.Add(valid[:bytes.IndexByte(valid, '\n')])   // header cut before its newline
	f.Add([]byte{})
	f.Add([]byte("hello, not a journal\n"))
	f.Add([]byte(`{"stream":9,"version":9}` + "\n")) // wrong versions
	if golden, err := os.ReadFile(filepath.Join("testdata", "census-v4.golden.json")); err == nil {
		f.Add(golden)
	}
}

// readStreamPath is ReadStream over a file — the strict acceptance
// check the fuzz invariants use after repair/append.
func readStreamPath(path string) (*Census, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}

func sameRecords(a, b []PairResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// FuzzScanStream: every input the tolerant scanner accepts must repair
// cleanly to its intact prefix and then satisfy the strict reader.
func FuzzScanStream(f *testing.F) {
	addSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, err := ScanStream(bytes.NewReader(data))
		if err != nil {
			// Tolerant rejection implies strict rejection.
			if _, serr := ReadStream(bytes.NewReader(data)); serr == nil {
				t.Fatal("ScanStream rejected a stream ReadStream accepts")
			}
			return
		}
		if verr := h.validate(); verr != nil {
			t.Fatalf("ScanStream returned an invalid header: %v", verr)
		}

		// IntactBytes marks the scannable prefix: re-scanning it must
		// reproduce the scan, and the strict reader must accept it.
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("NewStreamReader failed on scannable input: %v", err)
		}
		for {
			if _, err := sr.Read(); err != nil {
				break
			}
		}
		ib := sr.IntactBytes()
		if ib < 0 || ib > int64(len(data)) {
			t.Fatalf("IntactBytes %d out of range [0, %d]", ib, len(data))
		}
		ph, precs, perr := ScanStream(bytes.NewReader(data[:ib]))
		if perr != nil {
			t.Fatalf("intact prefix does not scan: %v", perr)
		}
		if !reflect.DeepEqual(ph, h) || !sameRecords(precs, recs) {
			t.Fatal("scanning the intact prefix diverged from scanning the full input")
		}
		strict, serr := ReadStream(bytes.NewReader(data[:ib]))
		if serr != nil {
			t.Fatalf("strict reader rejects the intact prefix: %v", serr)
		}
		if !sameRecords(strict.Results, recs) {
			t.Fatal("strict read of the intact prefix diverged from the scan")
		}

		// Repair truncates to exactly the intact prefix.
		path := filepath.Join(t.TempDir(), "journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rh, rrecs, rerr := RepairStreamFile(path)
		if rerr != nil {
			t.Fatalf("repair errored on scannable input: %v", rerr)
		}
		if !reflect.DeepEqual(rh, h) || !sameRecords(rrecs, recs) {
			t.Fatal("repair returned different header/records than the scan")
		}
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(repaired, data[:ib]) {
			t.Fatalf("repair left %d bytes, want the %d-byte intact prefix", len(repaired), ib)
		}

		// The repaired journal is strictly readable and appendable.
		if _, err := readStreamPath(path); err != nil {
			t.Fatalf("strict read after repair: %v", err)
		}
		fd, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		rec := PairResult{Index: 999, Guest: "ring(8)", Host: "line(8)"}
		if err := NewStreamAppender(fd).Write(&rec); err != nil {
			t.Fatal(err)
		}
		fd.Close()
		after, err := readStreamPath(path)
		if err != nil {
			t.Fatalf("strict read after append: %v", err)
		}
		if len(after.Results) != len(recs)+1 {
			t.Fatalf("append after repair: %d records, want %d", len(after.Results), len(recs)+1)
		}
	})
}

// FuzzRepairStreamFile: repair is idempotent, resets only torn
// journals, and leaves files it rejects untouched.
func FuzzRepairStreamFile(f *testing.F) {
	addSeedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		h, recs, err := RepairStreamFile(path)
		if err != nil {
			// A rejected file must be byte-identical to what it was.
			after, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(after, data) {
				t.Fatal("failed repair modified the file")
			}
			return
		}
		first, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if h.Stream == 0 {
			// The headerless-journal reset: the file must now be empty
			// with no records reported.
			if len(first) != 0 || len(recs) != 0 {
				t.Fatalf("headerless reset left %d bytes, %d records", len(first), len(recs))
			}
		} else if _, err := readStreamPath(path); err != nil {
			t.Fatalf("strict read after repair: %v", err)
		}

		// Idempotence: a second repair changes nothing.
		h2, recs2, err := RepairStreamFile(path)
		if err != nil {
			t.Fatalf("second repair errored: %v", err)
		}
		second, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("repair is not idempotent on file bytes")
		}
		if !reflect.DeepEqual(h, h2) || !sameRecords(recs, recs2) {
			t.Fatal("repair is not idempotent on header/records")
		}
	})
}
