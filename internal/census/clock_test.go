package census_test

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestClockInjection proves Config.Clock fully substitutes the wall
// clock: with a stepping fake, the census Elapsed spans exactly the
// first-to-last clock reads, and every pair Wall is a whole number of
// ticks. The fake must be goroutine-safe — pairs read it from the
// worker pool.
func TestClockInjection(t *testing.T) {
	const tick = time.Hour
	var reads atomic.Int64
	base := time.Unix(0, 0)
	cfg := richConfig(6, 2)
	cfg.Clock = func() time.Time {
		return base.Add(time.Duration(reads.Add(1)) * tick)
	}
	c := mustRun(t, cfg)
	// Run's start read is the first, its Elapsed read the last.
	want := time.Duration(reads.Load()-1) * tick
	if c.Elapsed != want {
		t.Errorf("Elapsed = %v, want %v (%d clock reads)", c.Elapsed, want, reads.Load())
	}
	for _, pr := range c.Results {
		if pr.Wall <= 0 || pr.Wall%tick != 0 {
			t.Errorf("pair %s in %s: Wall = %v, not a positive tick multiple", pr.Guest, pr.Host, pr.Wall)
		}
	}
}
