package census_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// richConfig is the standard metrics-on census of size n.
func richConfig(n, maxDim int) census.Config {
	return census.Config{
		Size:    n,
		MaxDim:  maxDim,
		Shapes:  catalog.CanonicalShapesOfSize(n, maxDim),
		Metrics: true,
		Embed:   core.Embed,
	}
}

func mustRun(t *testing.T, cfg census.Config) *census.Census {
	t.Helper()
	c, err := census.Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return c
}

func encode(t *testing.T, c *census.Census) []byte {
	t.Helper()
	data, err := c.EncodeBytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

// TestShardMergeBitForBit is the core determinism contract: for several
// (size, shard count) configurations, running every shard separately
// and merging the artifacts reproduces the unsharded census bit for
// bit — including with congestion metrics on, and regardless of the
// order the shards are handed to Merge.
func TestShardMergeBitForBit(t *testing.T) {
	cases := []struct {
		n, maxDim, shards int
		congestion        bool
	}{
		{24, 0, 2, false},
		{36, 0, 3, false},
		{16, 0, 4, true},
		{60, 2, 5, false},
		// More shards than pairs: most shards are empty.
		{4, 0, 20, false},
	}
	for _, tc := range cases {
		cfg := richConfig(tc.n, tc.maxDim)
		cfg.Congestion = tc.congestion
		full := mustRun(t, cfg)
		parts := make([]*census.Census, tc.shards)
		for s := 0; s < tc.shards; s++ {
			scfg := cfg
			scfg.Shard, scfg.Shards = s, tc.shards
			parts[s] = mustRun(t, scfg)
		}
		// Hand shards to Merge in rotated order: order must not matter.
		rotated := append(append([]*census.Census(nil), parts[tc.shards/2:]...), parts[:tc.shards/2]...)
		merged, err := census.Merge(rotated...)
		if err != nil {
			t.Fatalf("n=%d shards=%d: merge: %v", tc.n, tc.shards, err)
		}
		want, got := encode(t, full), encode(t, merged)
		if !bytes.Equal(want, got) {
			t.Errorf("n=%d shards=%d: merged census differs from unsharded census", tc.n, tc.shards)
		}
	}
}

// TestShardPartition checks the partition itself: shard pair counts sum
// to the full space and every shard census reports the same space.
func TestShardPartition(t *testing.T) {
	cfg := richConfig(24, 0)
	full := mustRun(t, cfg)
	total := 0
	for s := 0; s < 3; s++ {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 3
		c := mustRun(t, scfg)
		total += c.Pairs
		if c.SpacePairs != full.SpacePairs {
			t.Errorf("shard %d: space %d, want %d", s, c.SpacePairs, full.SpacePairs)
		}
		for i := range c.Results {
			if c.Results[i].Index%3 != s {
				t.Errorf("shard %d holds pair %d", s, c.Results[i].Index)
			}
		}
	}
	if total != full.SpacePairs {
		t.Errorf("shards cover %d pairs, want %d", total, full.SpacePairs)
	}
}

// TestJSONRoundTrip checks that an artifact survives encode/decode
// byte-for-byte and that merges of decoded artifacts still reproduce
// the unsharded census.
func TestJSONRoundTrip(t *testing.T) {
	c := mustRun(t, richConfig(36, 0))
	data := encode(t, c)
	back, err := census.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(data, encode(t, back)) {
		t.Error("artifact changed across a decode/encode round trip")
	}
	if back.Pairs != c.Pairs || back.Embeddable != c.Embeddable || len(back.Results) != len(c.Results) {
		t.Errorf("round trip lost data: %d/%d pairs, %d/%d embeddable",
			back.Pairs, c.Pairs, back.Embeddable, c.Embeddable)
	}
}

// TestDecodeRejectsBadArtifacts covers version and structural checks.
func TestDecodeRejectsBadArtifacts(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"wrong version", `{"version": 999, "shards": 1}`},
		{"zero version", `{"shards": 1}`},
		{"invalid shard", fmt.Sprintf(`{"version": %d, "shard": 5, "shards": 2}`, census.ArtifactVersion)},
		{"not json", `not json at all`},
	}
	for _, tc := range bad {
		if _, err := census.Decode(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: decode accepted %q", tc.name, tc.doc)
		}
	}
}

// TestMergeRejectsIncompatible covers every compatibility axis Merge
// validates.
func TestMergeRejectsIncompatible(t *testing.T) {
	cfg := richConfig(24, 0)
	cfg.Shards = 2
	s0 := mustRun(t, cfg)
	cfg.Shard = 1
	s1 := mustRun(t, cfg)

	if _, err := census.Merge(); err == nil {
		t.Error("merge of nothing succeeded")
	}
	if _, err := census.Merge(s0); err == nil {
		t.Error("merge with missing shard succeeded")
	}
	if _, err := census.Merge(s0, s0); err == nil {
		t.Error("merge with duplicate shard succeeded")
	}
	mutations := []struct {
		name string
		mut  func(c *census.Census)
	}{
		{"size", func(c *census.Census) { c.Size = 25 }},
		{"maxdim", func(c *census.Census) { c.MaxDim = 3 }},
		{"version", func(c *census.Census) { c.Version = census.ArtifactVersion + 1 }},
		{"shard count", func(c *census.Census) { c.Shards = 4 }},
		{"metrics flag", func(c *census.Census) { c.Metrics = false }},
		{"congestion flag", func(c *census.Census) { c.Congestion = true }},
		{"placed flag", func(c *census.Census) { c.Placed = true }},
		{"place settings", func(c *census.Census) { c.PlaceSpec = "other-settings" }},
		{"shape list", func(c *census.Census) { c.Shapes[0] = "9x9" }},
		{"pair space", func(c *census.Census) { c.SpacePairs++ }},
	}
	for _, tc := range mutations {
		broken := *s1
		broken.Shapes = append([]string(nil), s1.Shapes...)
		tc.mut(&broken)
		if _, err := census.Merge(s0, &broken); err == nil {
			t.Errorf("merge accepted artifacts with different %s", tc.name)
		}
	}
	// Overlapping results: same shard labelled differently.
	relabelled := *s0
	relabelled.Shard = 1
	if _, err := census.Merge(s0, &relabelled); err == nil {
		t.Error("merge accepted overlapping pair results")
	}
}

// TestMergeOfFullCensusIsIdempotent: a complete unsharded artifact
// merges with itself alone to the identical artifact.
func TestMergeOfFullCensusIsIdempotent(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	m, err := census.Merge(c)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, m)) {
		t.Error("merging a full census with itself changed it")
	}
}

// TestWriteReadFile exercises the file-level artifact helpers.
func TestWriteReadFile(t *testing.T) {
	c := mustRun(t, richConfig(16, 0))
	path := t.TempDir() + "/census.json"
	if err := c.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := census.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("artifact changed across a file round trip")
	}
	if _, err := census.ReadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("reading a missing artifact succeeded")
	}
}

// TestMetricsContent sanity-checks the per-pair measurements of a rich
// census: every embeddable pair has dilation in [1, predicted] and a
// positive average dilation no larger than the max, and with congestion
// on every embeddable pair carries at least one route per link peak.
func TestMetricsContent(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	c := mustRun(t, cfg)
	if c.Embeddable == 0 {
		t.Fatal("census found nothing embeddable")
	}
	for i := range c.Results {
		r := &c.Results[i]
		if r.FailureStage != "" {
			continue
		}
		if r.Dilation < 1 {
			t.Errorf("pair %d (%s -> %s): dilation %d", r.Index, r.Guest, r.Host, r.Dilation)
		}
		if r.Predicted > 0 && r.Dilation > r.Predicted {
			t.Errorf("pair %d: dilation %d exceeds guarantee %d yet was not failed", r.Index, r.Dilation, r.Predicted)
		}
		if r.AvgDilation <= 0 || r.AvgDilation > float64(r.Dilation) {
			t.Errorf("pair %d: average dilation %f vs max %d", r.Index, r.AvgDilation, r.Dilation)
		}
		if r.Congestion < 1 {
			t.Errorf("pair %d: peak congestion %d", r.Index, r.Congestion)
		}
	}
	hist := c.DilationHistogram()
	total := 0
	for _, byDil := range hist {
		for _, count := range byDil {
			total += count
		}
	}
	if total != c.Embeddable {
		t.Errorf("dilation histogram covers %d pairs, want %d", total, c.Embeddable)
	}
}

// TestStrategyModeMatchesLegacyCoverage: the strategy-only engine mode
// behind catalog.Coverage agrees with the rich mode on coverage counts.
func TestStrategyModeMatchesLegacyCoverage(t *testing.T) {
	rich := mustRun(t, richConfig(36, 0))
	legacy := catalog.Coverage(36, 0, func(g, h grid.Spec) (string, error) {
		e, err := core.Embed(g, h)
		if err != nil {
			return "", err
		}
		return e.Strategy, nil
	})
	if legacy.Pairs != rich.Pairs || legacy.Embeddable != rich.Embeddable {
		t.Errorf("legacy coverage %d/%d, rich census %d/%d",
			legacy.Embeddable, legacy.Pairs, rich.Embeddable, rich.Pairs)
	}
	if len(legacy.ByStrategy) != len(rich.ByStrategy) {
		t.Errorf("strategy keys differ: %v vs %v", legacy.ByStrategy, rich.ByStrategy)
	}
	for k, v := range rich.ByStrategy {
		if legacy.ByStrategy[k] != v {
			t.Errorf("strategy %s: legacy %d, rich %d", k, legacy.ByStrategy[k], v)
		}
	}
}

// TestConfigValidation covers Run's misconfiguration errors.
func TestConfigValidation(t *testing.T) {
	shapes := catalog.CanonicalShapesOfSize(12, 0)
	strategyFn := func(g, h grid.Spec) (string, error) { return "x", nil }
	bad := []struct {
		name string
		cfg  census.Config
	}{
		{"no evaluator", census.Config{Size: 12, Shapes: shapes}},
		{"two evaluators", census.Config{Size: 12, Shapes: shapes, Embed: core.Embed, Strategy: strategyFn}},
		{"metrics with strategy mode", census.Config{Size: 12, Shapes: shapes, Strategy: strategyFn, Metrics: true}},
		{"congestion with strategy mode", census.Config{Size: 12, Shapes: shapes, Strategy: strategyFn, Congestion: true}},
		{"shard out of range", census.Config{Size: 12, Shapes: shapes, Embed: core.Embed, Shard: 3, Shards: 2}},
		{"negative shard", census.Config{Size: 12, Shapes: shapes, Embed: core.Embed, Shard: -1, Shards: 2}},
		{"shape size mismatch", census.Config{Size: 13, Shapes: shapes, Embed: core.Embed}},
	}
	for _, tc := range bad {
		if _, err := census.Run(tc.cfg); err == nil {
			t.Errorf("%s: Run accepted the config", tc.name)
		}
	}
}

// TestFailureStages drives both failure stages through a sabotaged
// evaluator — torus guests are rejected outright (construction
// failures) and mesh-identity pairs get a deliberately non-injective
// table (verification failures) — and checks the stage split, the
// recorded reasons, and that shard merging still reproduces a census
// containing failures bit for bit.
func TestFailureStages(t *testing.T) {
	sabotage := func(g, h grid.Spec) (*embed.Embedding, error) {
		if g.Kind == grid.Torus {
			return nil, fmt.Errorf("sabotage: torus guests rejected")
		}
		if h.Kind == grid.Mesh && g.Shape.Equal(h.Shape) {
			// Every guest node maps to host rank 0: caught by the
			// injectivity scan.
			return embed.FromTable(g, h, "sabotage", 0, make([]int, g.Size()))
		}
		return core.Embed(g, h)
	}
	cfg := richConfig(12, 0)
	cfg.Embed = sabotage
	c := mustRun(t, cfg)
	if c.ConstructFailures == 0 || c.VerifyFailures == 0 {
		t.Fatalf("sabotage produced %d construct and %d verify failures; want both nonzero",
			c.ConstructFailures, c.VerifyFailures)
	}
	if c.Embeddable+c.ConstructFailures+c.VerifyFailures != c.Pairs {
		t.Errorf("stage counts %d+%d+%d do not cover %d pairs",
			c.Embeddable, c.ConstructFailures, c.VerifyFailures, c.Pairs)
	}
	tally := 0
	for _, count := range c.ByStrategy {
		tally += count
	}
	if tally != c.Embeddable {
		t.Errorf("ByStrategy tallies %d pairs, want the %d embeddable ones", tally, c.Embeddable)
	}
	for i := range c.Results {
		r := &c.Results[i]
		switch r.FailureStage {
		case census.StageConstruct:
			if !strings.Contains(r.Failure, "torus guests rejected") {
				t.Errorf("pair %d: construction failure reason %q", r.Index, r.Failure)
			}
		case census.StageVerify:
			if !strings.Contains(r.Failure, "two pre-images") {
				t.Errorf("pair %d: verification failure reason %q", r.Index, r.Failure)
			}
			if r.Strategy != "sabotage" {
				t.Errorf("pair %d: verify failure strategy %q", r.Index, r.Strategy)
			}
		case "":
			if r.Failure != "" {
				t.Errorf("pair %d: failure %q with no stage", r.Index, r.Failure)
			}
		}
	}
	// Failures must survive the shard/merge cycle unchanged.
	parts := make([]*census.Census, 2)
	for s := range parts {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 2
		parts[s] = mustRun(t, scfg)
	}
	merged, err := census.Merge(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, merged)) {
		t.Error("merged census with failures differs from unsharded census")
	}
}

func TestStrategyKey(t *testing.T) {
	cases := map[string]string{
		"expansion/H_V":          "expansion",
		"square-chain[3]":        "square-chain",
		"f_L":                    "f_L",
		"prime-refinement/π ∘ f": "prime-refinement",
		"":                       "",
		"basic[2]/variant":       "basic",
	}
	for in, want := range cases {
		if got := census.StrategyKey(in); got != want {
			t.Errorf("StrategyKey(%q) = %q, want %q", in, got, want)
		}
	}
}

// BenchmarkCensus360 is the acceptance-scale sweep: size 360 capped at
// four dimensions, metrics on.
func BenchmarkCensus360(b *testing.B) {
	shapes := catalog.CanonicalShapesOfSize(360, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := census.Run(census.Config{
			Size: 360, MaxDim: 4, Shapes: shapes, Metrics: true, Embed: core.Embed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMergeNamesOffendingShards: merge diagnostics must name which
// shard indices are missing or duplicated, not just how many.
func TestMergeNamesOffendingShards(t *testing.T) {
	cfg := richConfig(24, 0)
	cfg.Shards = 4
	parts := make([]*census.Census, 4)
	for s := 0; s < 4; s++ {
		scfg := cfg
		scfg.Shard = s
		parts[s] = mustRun(t, scfg)
	}
	_, err := census.Merge(parts[0], parts[3])
	if err == nil {
		t.Fatal("merge with missing shards succeeded")
	}
	if !strings.Contains(err.Error(), "1, 2") {
		t.Errorf("missing-shard error does not name shards 1 and 2: %v", err)
	}
	_, err = census.Merge(parts[0], parts[1], parts[2], parts[3], parts[1], parts[2])
	if err == nil {
		t.Fatal("merge with duplicated shards succeeded")
	}
	if !strings.Contains(err.Error(), "1, 2") {
		t.Errorf("duplicate-shard error does not name shards 1 and 2: %v", err)
	}
}

// TestPlaceColumn: a placement census records the search winner next to
// the baseline columns, and search failures land in the summary's Error
// field without failing the pair.
func TestPlaceColumn(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	cfg.PlaceSpec = "stub-settings"
	cfg.Place = func(g, h grid.Spec) (*census.PlaceSummary, error) {
		if g.Kind == grid.Torus {
			return nil, fmt.Errorf("synthetic failure for %s", g)
		}
		return &census.PlaceSummary{Desc: "stub", Dilation: 1, Peak: 1, Score: 2}, nil
	}
	c := mustRun(t, cfg)
	if !c.Placed {
		t.Fatal("census did not record the placed flag")
	}
	summaries, errors := 0, 0
	for i := range c.Results {
		r := &c.Results[i]
		if r.FailureStage != "" {
			if r.Place != nil {
				t.Errorf("failed pair %s -> %s has a placement", r.Guest, r.Host)
			}
			continue
		}
		if r.Place == nil {
			t.Errorf("embeddable pair %s -> %s has no placement", r.Guest, r.Host)
			continue
		}
		if r.Place.Error != "" {
			errors++
		} else {
			summaries++
		}
	}
	if summaries == 0 || errors == 0 {
		t.Errorf("want both summaries and recorded errors, got %d/%d", summaries, errors)
	}

	// Placement requires the congestion baseline, and the search
	// settings must be recorded so Merge can compare them.
	bad := richConfig(16, 0)
	bad.Place, bad.PlaceSpec = cfg.Place, cfg.PlaceSpec
	if _, err := census.Run(bad); err == nil {
		t.Error("placement census without congestion accepted")
	}
	noSpec := richConfig(16, 0)
	noSpec.Congestion = true
	noSpec.Place = cfg.Place
	if _, err := census.Run(noSpec); err == nil {
		t.Error("placement census without a PlaceSpec accepted")
	}
}

// TestShardMergeWithPlacement: the bit-for-bit merge property must hold
// for placement censuses too (the Placed flag and per-pair summaries
// travel through Merge).
func TestShardMergeWithPlacement(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	cfg.PlaceSpec = "stub-settings"
	cfg.Place = func(g, h grid.Spec) (*census.PlaceSummary, error) {
		return &census.PlaceSummary{Desc: "stub", Dilation: 1, Peak: g.Dim() + h.Dim(), Score: 2}, nil
	}
	full := mustRun(t, cfg)
	if !full.Placed {
		t.Fatal("census did not record the placed flag")
	}
	parts := make([]*census.Census, 3)
	for s := 0; s < 3; s++ {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 3
		parts[s] = mustRun(t, scfg)
	}
	merged, err := census.Merge(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(encode(t, full), encode(t, merged)) {
		t.Error("merged placement census differs from the unsharded run")
	}
}
