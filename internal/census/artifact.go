// Artifact serialization and shard merging. A census serializes to a
// versioned JSON document whose encoding is deterministic (struct field
// order is fixed, map keys are sorted by encoding/json, and volatile
// timing fields are excluded), so equal censuses produce equal bytes —
// the property the shard/merge workflow and its CI diff rely on.

package census

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// intList renders shard indices as "2, 5, 7" for merge diagnostics.
func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ", ")
}

// ArtifactVersion is the schema version stamped into every artifact.
// Decode rejects artifacts from other versions. The serialized form is
// pinned by the golden-file test (testdata/census-v4.golden.json): any
// change to it must bump this constant and regenerate the golden with
// `go test ./internal/census -run Golden -update`.
//
// Version history:
//
//	1: initial schema (metrics, congestion, shard merging).
//	2: placement search columns — top-level "placed" flag and
//	   "place_spec" settings string, per-pair "place" summary {desc,
//	   strategy, dilation, peak, avg_link, score, error}.
//	3: per-strategy "histograms" block (strategy -> {"dilation",
//	   "congestion"} cost-count maps) on metrics/congestion censuses;
//	   the NDJSON stream form (stream.go) carries the same version in
//	   its header line.
//	4: per-pair "hop_hist" route-length distribution (routed distance
//	   -> guest edge count) on congestion censuses.
const ArtifactVersion = 4

// Encode writes the census as deterministic, human-readable JSON.
func Encode(w io.Writer, c *Census) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("census: encode: %v", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// EncodeBytes returns the census's artifact encoding. Two censuses are
// interchangeable exactly when their encodings are equal.
func (c *Census) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile saves the artifact to path.
func (c *Census) WriteFile(path string) error {
	data, err := c.EncodeBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Decode reads one artifact, rejecting incompatible schema versions and
// structurally invalid documents.
func Decode(r io.Reader) (*Census, error) {
	var c Census
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("census: decode: %v", err)
	}
	if c.Version != ArtifactVersion {
		return nil, fmt.Errorf("census: artifact version %d is incompatible (want %d)", c.Version, ArtifactVersion)
	}
	if c.Shards < 1 || c.Shard < 0 || c.Shard >= c.Shards {
		return nil, fmt.Errorf("census: artifact has invalid shard %d/%d", c.Shard, c.Shards)
	}
	if c.ByStrategy == nil {
		c.ByStrategy = map[string]int{}
	}
	return &c, nil
}

// ReadFile loads an artifact from path.
func ReadFile(path string) (*Census, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return c, nil
}

// compatible reports why two artifacts cannot be merged, or nil.
func compatible(a, b *Census) error {
	switch {
	case a.Version != b.Version:
		return fmt.Errorf("versions %d and %d differ", a.Version, b.Version)
	case a.Size != b.Size:
		return fmt.Errorf("sizes %d and %d differ", a.Size, b.Size)
	case a.MaxDim != b.MaxDim:
		return fmt.Errorf("maxdim %d and %d differ", a.MaxDim, b.MaxDim)
	case a.Shards != b.Shards:
		return fmt.Errorf("shard counts %d and %d differ", a.Shards, b.Shards)
	case a.Metrics != b.Metrics:
		return fmt.Errorf("one census has metrics, the other does not")
	case a.Congestion != b.Congestion:
		return fmt.Errorf("one census has congestion, the other does not")
	case a.Placed != b.Placed:
		return fmt.Errorf("one census has placement results, the other does not")
	case a.PlaceSpec != b.PlaceSpec:
		return fmt.Errorf("placement search settings differ (%q vs %q)", a.PlaceSpec, b.PlaceSpec)
	case len(a.Shapes) != len(b.Shapes):
		return fmt.Errorf("shape lists differ")
	}
	for i := range a.Shapes {
		if a.Shapes[i] != b.Shapes[i] {
			return fmt.Errorf("shape lists differ at %d: %s vs %s", i, a.Shapes[i], b.Shapes[i])
		}
	}
	if a.SpacePairs != b.SpacePairs {
		return fmt.Errorf("pair spaces %d and %d differ", a.SpacePairs, b.SpacePairs)
	}
	return nil
}

// Merge combines the shard artifacts of one partitioned census into the
// full census. Every input must come from the same (size, maxdim,
// version, metrics, congestion, shape list) configuration and the same
// shard count m, and together the inputs must cover every shard
// 0..m-1 exactly once. The result is normalized to an unsharded census
// (shard 0/1) with aggregates recomputed, so it is bit-for-bit
// identical to what a single unsharded run would have produced.
func Merge(parts ...*Census) (*Census, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("census: merge of zero artifacts")
	}
	base := parts[0]
	seen := make(map[int]bool, base.Shards)
	var duplicated []int
	total := 0
	for _, p := range parts {
		if err := compatible(base, p); err != nil {
			return nil, fmt.Errorf("census: cannot merge: %v", err)
		}
		if seen[p.Shard] {
			duplicated = append(duplicated, p.Shard)
		}
		seen[p.Shard] = true
		total += len(p.Results)
	}
	// Name the offending shard indices, not just their count: an
	// operator re-driving a large sharded sweep needs to know which
	// shard files to re-run or drop.
	if len(duplicated) > 0 {
		sort.Ints(duplicated)
		return nil, fmt.Errorf("census: cannot merge: shard(s) %s of %d appear more than once",
			intList(duplicated), base.Shards)
	}
	var missing []int
	for s := 0; s < base.Shards; s++ {
		if !seen[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("census: cannot merge: shard(s) %s of %d are missing",
			intList(missing), base.Shards)
	}
	results := make([]PairResult, 0, total)
	for _, p := range parts {
		results = append(results, p.Results...)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	for i := range results {
		if i > 0 && results[i].Index == results[i-1].Index {
			return nil, fmt.Errorf("census: cannot merge: pair %d appears twice", results[i].Index)
		}
		if results[i].Index < 0 || results[i].Index >= base.SpacePairs {
			return nil, fmt.Errorf("census: cannot merge: pair index %d outside space of %d", results[i].Index, base.SpacePairs)
		}
	}
	if len(results) != base.SpacePairs {
		return nil, fmt.Errorf("census: cannot merge: %d pairs cover a space of %d", len(results), base.SpacePairs)
	}
	out := &Census{
		Version:    base.Version,
		Size:       base.Size,
		MaxDim:     base.MaxDim,
		Shard:      0,
		Shards:     1,
		Metrics:    base.Metrics,
		Congestion: base.Congestion,
		Placed:     base.Placed,
		PlaceSpec:  base.PlaceSpec,
		Shapes:     append([]string(nil), base.Shapes...),
		SpacePairs: base.SpacePairs,
		Results:    results,
	}
	out.recount()
	return out, nil
}
