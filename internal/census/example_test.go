package census_test

import (
	"bytes"
	"fmt"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/core"
)

// A metrics census of one size: every ordered pair of canonical
// torus/mesh shapes is embedded, verified and measured.
func ExampleRun() {
	c, err := census.Run(census.Config{
		Size:    12,
		Shapes:  catalog.CanonicalShapesOfSize(12, 0),
		Metrics: true,
		Embed:   core.Embed,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("pairs: %d, embeddable: %d\n", c.Pairs, c.Embeddable)
	fmt.Printf("construct failures: %d, verify failures: %d\n", c.ConstructFailures, c.VerifyFailures)
	// Output:
	// pairs: 64, embeddable: 64
	// construct failures: 0, verify failures: 0
}

// The shard/merge workflow: the pair space partitions deterministically
// (pair i belongs to shard i mod m), each shard runs as its own census
// — typically in its own process via `sweep -shard i/m` — and Merge
// reproduces the unsharded census bit for bit.
func ExampleMerge() {
	cfg := census.Config{
		Size:    12,
		Shapes:  catalog.CanonicalShapesOfSize(12, 0),
		Metrics: true,
		Embed:   core.Embed,
		Shards:  2,
	}
	shard0, err := census.Run(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Shard = 1
	shard1, err := census.Run(cfg)
	if err != nil {
		panic(err)
	}
	merged, err := census.Merge(shard0, shard1)
	if err != nil {
		panic(err)
	}

	cfg.Shard, cfg.Shards = 0, 1
	full, err := census.Run(cfg)
	if err != nil {
		panic(err)
	}
	a, _ := merged.EncodeBytes()
	b, _ := full.EncodeBytes()
	fmt.Println("pairs:", merged.Pairs)
	fmt.Println("bit-for-bit:", bytes.Equal(a, b))
	// Output:
	// pairs: 64
	// bit-for-bit: true
}
