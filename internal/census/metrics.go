// Package-level instrumentation of the census engine, on the process
// default registry: pair throughput and the failure split by stage.
// Counters are incremented once per evaluated pair in the Run loop —
// they observe the results, never influence them, so artifacts stay
// byte-identical with metrics scraped or not.
package census

import "torusmesh/internal/obs"

var (
	pairsEvaluated    = obs.Default().Counter("census_pairs_evaluated_total")
	pairsEmbeddable   = obs.Default().Counter("census_pairs_embeddable_total")
	constructFailures = obs.Default().Counter("census_construct_failures_total")
	verifyFailures    = obs.Default().Counter("census_verify_failures_total")
)

func init() {
	obs.Default().Describe("census_pairs_evaluated_total", "Pairs evaluated across all census runs in this process.")
	obs.Default().Describe("census_pairs_embeddable_total", "Evaluated pairs a construction carried and verification passed.")
	obs.Default().Describe("census_construct_failures_total", "Evaluated pairs no construction covers.")
	obs.Default().Describe("census_verify_failures_total", "Evaluated pairs whose embedding failed verification (a library bug).")
}

// countPair tallies one finished pair by its failure stage.
func countPair(pr *PairResult) {
	pairsEvaluated.Inc()
	switch pr.FailureStage {
	case StageConstruct:
		constructFailures.Inc()
	case StageVerify:
		verifyFailures.Inc()
	default:
		pairsEmbeddable.Inc()
	}
}
