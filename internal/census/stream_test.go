package census_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"torusmesh/internal/census"
)

// streamBytes renders a census in NDJSON stream form.
func streamBytes(t *testing.T, c *census.Census) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := census.WriteStream(&buf, c); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	return buf.Bytes()
}

// TestStreamRoundTrip: a census survives the NDJSON stream byte-for-
// byte (stream bytes are deterministic, and reading them back yields a
// census whose document encoding matches the original's).
func TestStreamRoundTrip(t *testing.T) {
	cfg := richConfig(24, 0)
	cfg.Congestion = true
	c := mustRun(t, cfg)
	data := streamBytes(t, c)
	if !bytes.HasPrefix(data, []byte(`{"stream":`)) {
		t.Errorf("stream does not start with the sniffable header prefix: %.40q", data)
	}
	if again := streamBytes(t, c); !bytes.Equal(data, again) {
		t.Error("stream encoding is not deterministic")
	}
	back, err := census.ReadStream(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("census changed across a stream round trip")
	}
	// One header line plus one line per pair.
	if lines := bytes.Count(data, []byte("\n")); lines != 1+len(c.Results) {
		t.Errorf("stream has %d lines, want %d", lines, 1+len(c.Results))
	}
}

// TestStreamShardedRoundTrip: shard censuses stream too, and merging
// streamed-and-reread shards reproduces the unsharded census.
func TestStreamShardedRoundTrip(t *testing.T) {
	cfg := richConfig(24, 0)
	full := mustRun(t, cfg)
	parts := make([]*census.Census, 3)
	for s := range parts {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 3
		shard := mustRun(t, scfg)
		back, err := census.ReadStream(bytes.NewReader(streamBytes(t, shard)))
		if err != nil {
			t.Fatalf("shard %d: read stream: %v", s, err)
		}
		parts[s] = back
	}
	merged, err := census.Merge(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(encode(t, full), encode(t, merged)) {
		t.Error("merge of streamed shards differs from the unsharded census")
	}
}

// TestStreamTruncation: the strict reader rejects a cut-off stream; the
// tolerant scanner returns exactly the intact prefix records.
func TestStreamTruncation(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)

	// Cut in the middle of the final record.
	cut := data[:len(data)-7]
	if _, err := census.ReadStream(bytes.NewReader(cut)); err == nil {
		t.Error("strict read of a truncated stream succeeded")
	}
	h, recs, err := census.ScanStream(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if h.Size != c.Size || h.SpacePairs != c.SpacePairs {
		t.Errorf("scanned header %+v does not match census", h)
	}
	if len(recs) != len(c.Results)-1 {
		t.Errorf("scan recovered %d records, want %d", len(recs), len(c.Results)-1)
	}
	for i, r := range recs {
		if r.Index != c.Results[i].Index {
			t.Errorf("record %d has index %d, want %d", i, r.Index, c.Results[i].Index)
		}
	}

	// Garbage mid-stream: the scan stops before it and keeps the rest
	// for re-evaluation.
	lines := bytes.SplitAfter(data, []byte("\n"))
	garbled := bytes.Join([][]byte{lines[0], lines[1], []byte("{garbage\n")}, nil)
	garbled = append(garbled, bytes.Join(lines[2:], nil)...)
	_, recs, err = census.ScanStream(bytes.NewReader(garbled))
	if err != nil {
		t.Fatalf("scan of garbled stream: %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("scan recovered %d records before the garbage, want 1", len(recs))
	}
}

// TestRepairStreamFile: repairing a stream with a damaged tail
// truncates exactly to the last intact record, so appended records form
// a well-formed stream again — the resume-after-crash journal cycle.
func TestRepairStreamFile(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	keep := 5
	// Header + keep records + a torn partial line.
	lines := bytes.SplitAfter(data, []byte("\n"))
	partial := append(bytes.Join(lines[:1+keep], nil), lines[1+keep][:len(lines[1+keep])/2]...)
	if err := os.WriteFile(path, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	h, recs, err := census.RepairStreamFile(path)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := h.SameCensus(c.StreamHeader()); err != nil {
		t.Errorf("repaired header differs: %v", err)
	}
	if len(recs) != keep {
		t.Fatalf("repair recovered %d records, want %d", len(recs), keep)
	}
	// Append the remaining records as a resumed run would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	app := census.NewStreamAppender(f)
	for i := keep; i < len(c.Results); i++ {
		if err := app.Write(&c.Results[i]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The repaired-then-appended journal is a complete, intact stream.
	back, err := census.ReadFileAny(path)
	if err != nil {
		t.Fatalf("read repaired journal: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("repaired journal does not round-trip the census")
	}

	// An undamaged file is left byte-identical.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, recs, err := census.RepairStreamFile(path); err != nil || len(recs) != len(c.Results) {
		t.Fatalf("repair of intact stream: %d records, err %v", len(recs), err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, after) {
		t.Error("repair modified an intact stream")
	}
}

// TestRunInterrupt: the Interrupt hook stops a run between pairs and
// surfaces ErrInterrupted instead of a partial census.
func TestRunInterrupt(t *testing.T) {
	cfg := richConfig(24, 0)
	var evaluated atomic.Int64
	cfg.OnResult = func(*census.PairResult) { evaluated.Add(1) }
	cfg.Interrupt = func() bool { return evaluated.Load() >= 3 }
	_, err := census.Run(cfg)
	if err == nil {
		t.Fatal("interrupted run returned a census")
	}
	if !errors.Is(err, census.ErrInterrupted) {
		t.Errorf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if evaluated.Load() >= 64 {
		t.Errorf("interrupt did not stop the run early (%d pairs evaluated)", evaluated.Load())
	}

	// A hook that never fires changes nothing.
	clean := richConfig(24, 0)
	clean.Interrupt = func() bool { return false }
	c := mustRun(t, clean)
	ref := mustRun(t, richConfig(24, 0))
	if !bytes.Equal(encode(t, c), encode(t, ref)) {
		t.Error("a non-firing Interrupt hook changed the census")
	}
}

// TestStreamRejectsBadHeaders covers framing and schema version checks.
func TestStreamRejectsBadHeaders(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"empty", ""},
		{"no newline after header", `{"stream":1,"version":3,"shards":1}`},
		{"wrong stream version", "{\"stream\":99,\"version\":3,\"shards\":1}\n"},
		{"wrong artifact version", "{\"stream\":1,\"version\":1,\"shards\":1}\n"},
		{"invalid shard", "{\"stream\":1,\"version\":3,\"shard\":4,\"shards\":2}\n"},
		{"not json", "hello\n"},
	}
	for _, tc := range bad {
		if _, err := census.NewStreamReader(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: reader accepted %q", tc.name, tc.doc)
		}
	}
}

// TestStreamAppenderResume: the journal pattern — write a header and
// some records, reopen with an appender for the rest — scans back as
// one complete stream.
func TestStreamAppenderResume(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	var buf bytes.Buffer
	sw, err := census.NewStreamWriter(&buf, c.StreamHeader())
	if err != nil {
		t.Fatalf("stream writer: %v", err)
	}
	half := len(c.Results) / 2
	for i := 0; i < half; i++ {
		if err := sw.Write(&c.Results[i]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	app := census.NewStreamAppender(&buf)
	for i := half; i < len(c.Results); i++ {
		if err := app.Write(&c.Results[i]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	back, err := census.ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("appended stream does not round-trip the census")
	}
}

// TestStreamFileAndReadFileAny: both artifact forms load through
// ReadFileAny, and format sniffing picks the right decoder.
func TestStreamFileAndReadFileAny(t *testing.T) {
	c := mustRun(t, richConfig(16, 0))
	dir := t.TempDir()
	docPath := filepath.Join(dir, "census.json")
	streamPath := filepath.Join(dir, "census.ndjson")
	if err := c.WriteFile(docPath); err != nil {
		t.Fatalf("write document: %v", err)
	}
	if err := c.WriteStreamFile(streamPath); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	for _, path := range []string{docPath, streamPath} {
		back, err := census.ReadFileAny(path)
		if err != nil {
			t.Fatalf("ReadFileAny(%s): %v", path, err)
		}
		if !bytes.Equal(encode(t, c), encode(t, back)) {
			t.Errorf("%s: artifact changed across ReadFileAny", path)
		}
	}
	if _, err := census.ReadFileAny(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadFileAny of a missing file succeeded")
	}

	// ScanStreamFile over the stream form recovers everything.
	h, recs, err := census.ScanStreamFile(streamPath)
	if err != nil {
		t.Fatalf("ScanStreamFile: %v", err)
	}
	if err := h.SameCensus(c.StreamHeader()); err != nil {
		t.Errorf("scanned header differs: %v", err)
	}
	if len(recs) != len(c.Results) {
		t.Errorf("scan recovered %d records, want %d", len(recs), len(c.Results))
	}
}

// TestSameCensus: header comparison ignores the shard labels but
// rejects every census-defining axis.
func TestSameCensus(t *testing.T) {
	cfg := richConfig(24, 0)
	full := cfg.StreamHeader()
	shard := cfg
	shard.Shard, shard.Shards = 1, 3
	if err := shard.StreamHeader().SameCensus(full); err != nil {
		t.Errorf("shard labels should not matter: %v", err)
	}
	other := richConfig(36, 0)
	if err := other.StreamHeader().SameCensus(full); err == nil {
		t.Error("different sizes compared equal")
	}
	nometrics := cfg
	nometrics.Metrics = false
	if err := nometrics.StreamHeader().SameCensus(full); err == nil {
		t.Error("different metrics flags compared equal")
	}
}

// TestRunSkipAndOnResult: the resume filter drops exactly the reported
// pairs, and the streaming hook sees every evaluated pair exactly once.
func TestRunSkipAndOnResult(t *testing.T) {
	cfg := richConfig(24, 0)
	full := mustRun(t, cfg)
	seen := map[int]int{}
	cfg.Skip = func(i int) bool { return i%3 == 0 }
	cfg.OnResult = func(r *census.PairResult) { seen[r.Index]++ }
	partial := mustRun(t, cfg)
	wantPairs := 0
	for i := 0; i < full.SpacePairs; i++ {
		if i%3 != 0 {
			wantPairs++
		}
	}
	if partial.Pairs != wantPairs {
		t.Errorf("skipping census has %d pairs, want %d", partial.Pairs, wantPairs)
	}
	if len(seen) != wantPairs {
		t.Errorf("OnResult saw %d pairs, want %d", len(seen), wantPairs)
	}
	for idx, n := range seen {
		if idx%3 == 0 {
			t.Errorf("skipped pair %d was evaluated", idx)
		}
		if n != 1 {
			t.Errorf("pair %d hit OnResult %d times", idx, n)
		}
	}
	// The evaluated pairs carry the same results as the full run.
	byIndex := map[int]census.PairResult{}
	for _, r := range full.Results {
		byIndex[r.Index] = r
	}
	for _, r := range partial.Results {
		want := byIndex[r.Index]
		want.Wall = r.Wall
		if r != want {
			t.Errorf("pair %d differs between full and skipping runs", r.Index)
		}
	}
}

// TestHistogramBlock: the artifact's histogram block exists exactly for
// metric censuses, tallies every embeddable pair, and agrees with the
// derived DilationHistogram/PeakCongestion views.
func TestHistogramBlock(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	c := mustRun(t, cfg)
	if len(c.Histograms) == 0 {
		t.Fatal("metrics census has no histogram block")
	}
	total := 0
	for key, h := range c.Histograms {
		dil, con := 0, 0
		for d, n := range h.Dilation {
			dil += n
			if c.DilationHistogram()[key][d] != n {
				t.Errorf("%s: dilation %d count %d disagrees with the derived histogram", key, d, n)
			}
		}
		for _, n := range h.Congestion {
			con += n
		}
		if dil != con {
			t.Errorf("%s: dilation block tallies %d pairs, congestion block %d", key, dil, con)
		}
		if dil != c.ByStrategy[key] {
			t.Errorf("%s: histogram tallies %d pairs, ByStrategy says %d", key, dil, c.ByStrategy[key])
		}
		peak := 0
		for load := range h.Congestion {
			if load > peak {
				peak = load
			}
		}
		if peak != c.PeakCongestion()[key] {
			t.Errorf("%s: histogram peak %d, PeakCongestion %d", key, peak, c.PeakCongestion()[key])
		}
		total += dil
	}
	if total != c.Embeddable {
		t.Errorf("histogram block covers %d pairs, want %d embeddable", total, c.Embeddable)
	}

	// The block travels through the JSON artifact.
	back, err := census.Decode(bytes.NewReader(encode(t, c)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Histograms) != len(c.Histograms) {
		t.Errorf("decoded artifact has %d histogram strategies, want %d", len(back.Histograms), len(c.Histograms))
	}

	// Metrics-off censuses carry no block.
	plain := richConfig(16, 0)
	plain.Metrics = false
	pc := mustRun(t, plain)
	if pc.Histograms != nil {
		t.Error("metrics-off census has a histogram block")
	}
	var buf bytes.Buffer
	if err := census.Encode(&buf, pc); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "histograms") {
		t.Error("metrics-off artifact serializes a histogram block")
	}
}
