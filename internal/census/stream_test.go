package census_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"torusmesh/internal/census"
)

// streamBytes renders a census in NDJSON stream form.
func streamBytes(t *testing.T, c *census.Census) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := census.WriteStream(&buf, c); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	return buf.Bytes()
}

// TestStreamRoundTrip: a census survives the NDJSON stream byte-for-
// byte (stream bytes are deterministic, and reading them back yields a
// census whose document encoding matches the original's).
func TestStreamRoundTrip(t *testing.T) {
	cfg := richConfig(24, 0)
	cfg.Congestion = true
	c := mustRun(t, cfg)
	data := streamBytes(t, c)
	if !bytes.HasPrefix(data, []byte(`{"stream":`)) {
		t.Errorf("stream does not start with the sniffable header prefix: %.40q", data)
	}
	if again := streamBytes(t, c); !bytes.Equal(data, again) {
		t.Error("stream encoding is not deterministic")
	}
	back, err := census.ReadStream(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("census changed across a stream round trip")
	}
	// One header line plus one line per pair.
	if lines := bytes.Count(data, []byte("\n")); lines != 1+len(c.Results) {
		t.Errorf("stream has %d lines, want %d", lines, 1+len(c.Results))
	}
}

// TestStreamShardedRoundTrip: shard censuses stream too, and merging
// streamed-and-reread shards reproduces the unsharded census.
func TestStreamShardedRoundTrip(t *testing.T) {
	cfg := richConfig(24, 0)
	full := mustRun(t, cfg)
	parts := make([]*census.Census, 3)
	for s := range parts {
		scfg := cfg
		scfg.Shard, scfg.Shards = s, 3
		shard := mustRun(t, scfg)
		back, err := census.ReadStream(bytes.NewReader(streamBytes(t, shard)))
		if err != nil {
			t.Fatalf("shard %d: read stream: %v", s, err)
		}
		parts[s] = back
	}
	merged, err := census.Merge(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !bytes.Equal(encode(t, full), encode(t, merged)) {
		t.Error("merge of streamed shards differs from the unsharded census")
	}
}

// TestStreamTruncation: the strict reader rejects a cut-off stream; the
// tolerant scanner returns exactly the intact prefix records.
func TestStreamTruncation(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)

	// Cut in the middle of the final record.
	cut := data[:len(data)-7]
	if _, err := census.ReadStream(bytes.NewReader(cut)); err == nil {
		t.Error("strict read of a truncated stream succeeded")
	}
	h, recs, err := census.ScanStream(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if h.Size != c.Size || h.SpacePairs != c.SpacePairs {
		t.Errorf("scanned header %+v does not match census", h)
	}
	if len(recs) != len(c.Results)-1 {
		t.Errorf("scan recovered %d records, want %d", len(recs), len(c.Results)-1)
	}
	for i, r := range recs {
		if r.Index != c.Results[i].Index {
			t.Errorf("record %d has index %d, want %d", i, r.Index, c.Results[i].Index)
		}
	}

	// Garbage mid-stream: the scan stops before it and keeps the rest
	// for re-evaluation.
	lines := bytes.SplitAfter(data, []byte("\n"))
	garbled := bytes.Join([][]byte{lines[0], lines[1], []byte("{garbage\n")}, nil)
	garbled = append(garbled, bytes.Join(lines[2:], nil)...)
	_, recs, err = census.ScanStream(bytes.NewReader(garbled))
	if err != nil {
		t.Fatalf("scan of garbled stream: %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("scan recovered %d records before the garbage, want 1", len(recs))
	}
}

// TestRepairStreamFile: repairing a stream with a damaged tail
// truncates exactly to the last intact record, so appended records form
// a well-formed stream again — the resume-after-crash journal cycle.
func TestRepairStreamFile(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	keep := 5
	// Header + keep records + a torn partial line.
	lines := bytes.SplitAfter(data, []byte("\n"))
	partial := append(bytes.Join(lines[:1+keep], nil), lines[1+keep][:len(lines[1+keep])/2]...)
	if err := os.WriteFile(path, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	h, recs, err := census.RepairStreamFile(path)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := h.SameCensus(c.StreamHeader()); err != nil {
		t.Errorf("repaired header differs: %v", err)
	}
	if len(recs) != keep {
		t.Fatalf("repair recovered %d records, want %d", len(recs), keep)
	}
	// Append the remaining records as a resumed run would.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	app := census.NewStreamAppender(f)
	for i := keep; i < len(c.Results); i++ {
		if err := app.Write(&c.Results[i]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The repaired-then-appended journal is a complete, intact stream.
	back, err := census.ReadFileAny(path)
	if err != nil {
		t.Fatalf("read repaired journal: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("repaired journal does not round-trip the census")
	}

	// An undamaged file is left byte-identical.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, recs, err := census.RepairStreamFile(path); err != nil || len(recs) != len(c.Results) {
		t.Fatalf("repair of intact stream: %d records, err %v", len(recs), err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, after) {
		t.Error("repair modified an intact stream")
	}
}

// TestRunInterrupt: the Interrupt hook stops a run between pairs and
// surfaces ErrInterrupted instead of a partial census.
func TestRunInterrupt(t *testing.T) {
	cfg := richConfig(24, 0)
	var evaluated atomic.Int64
	cfg.OnResult = func(*census.PairResult) { evaluated.Add(1) }
	cfg.Interrupt = func() bool { return evaluated.Load() >= 3 }
	_, err := census.Run(cfg)
	if err == nil {
		t.Fatal("interrupted run returned a census")
	}
	if !errors.Is(err, census.ErrInterrupted) {
		t.Errorf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if evaluated.Load() >= 64 {
		t.Errorf("interrupt did not stop the run early (%d pairs evaluated)", evaluated.Load())
	}

	// A hook that never fires changes nothing.
	clean := richConfig(24, 0)
	clean.Interrupt = func() bool { return false }
	c := mustRun(t, clean)
	ref := mustRun(t, richConfig(24, 0))
	if !bytes.Equal(encode(t, c), encode(t, ref)) {
		t.Error("a non-firing Interrupt hook changed the census")
	}
}

// TestStreamRejectsBadHeaders covers framing and schema version checks.
func TestStreamRejectsBadHeaders(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"empty", ""},
		{"no newline after header", `{"stream":1,"version":3,"shards":1}`},
		{"wrong stream version", "{\"stream\":99,\"version\":3,\"shards\":1}\n"},
		{"wrong artifact version", "{\"stream\":1,\"version\":1,\"shards\":1}\n"},
		{"invalid shard", "{\"stream\":1,\"version\":3,\"shard\":4,\"shards\":2}\n"},
		{"not json", "hello\n"},
	}
	for _, tc := range bad {
		if _, err := census.NewStreamReader(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: reader accepted %q", tc.name, tc.doc)
		}
	}
}

// TestStreamAppenderResume: the journal pattern — write a header and
// some records, reopen with an appender for the rest — scans back as
// one complete stream.
func TestStreamAppenderResume(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	var buf bytes.Buffer
	sw, err := census.NewStreamWriter(&buf, c.StreamHeader())
	if err != nil {
		t.Fatalf("stream writer: %v", err)
	}
	half := len(c.Results) / 2
	for i := 0; i < half; i++ {
		if err := sw.Write(&c.Results[i]); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	app := census.NewStreamAppender(&buf)
	for i := half; i < len(c.Results); i++ {
		if err := app.Write(&c.Results[i]); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	back, err := census.ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("appended stream does not round-trip the census")
	}
}

// TestStreamFileAndReadFileAny: both artifact forms load through
// ReadFileAny, and format sniffing picks the right decoder.
func TestStreamFileAndReadFileAny(t *testing.T) {
	c := mustRun(t, richConfig(16, 0))
	dir := t.TempDir()
	docPath := filepath.Join(dir, "census.json")
	streamPath := filepath.Join(dir, "census.ndjson")
	if err := c.WriteFile(docPath); err != nil {
		t.Fatalf("write document: %v", err)
	}
	if err := c.WriteStreamFile(streamPath); err != nil {
		t.Fatalf("write stream: %v", err)
	}
	for _, path := range []string{docPath, streamPath} {
		back, err := census.ReadFileAny(path)
		if err != nil {
			t.Fatalf("ReadFileAny(%s): %v", path, err)
		}
		if !bytes.Equal(encode(t, c), encode(t, back)) {
			t.Errorf("%s: artifact changed across ReadFileAny", path)
		}
	}
	if _, err := census.ReadFileAny(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("ReadFileAny of a missing file succeeded")
	}

	// ScanStreamFile over the stream form recovers everything.
	h, recs, err := census.ScanStreamFile(streamPath)
	if err != nil {
		t.Fatalf("ScanStreamFile: %v", err)
	}
	if err := h.SameCensus(c.StreamHeader()); err != nil {
		t.Errorf("scanned header differs: %v", err)
	}
	if len(recs) != len(c.Results) {
		t.Errorf("scan recovered %d records, want %d", len(recs), len(c.Results))
	}
}

// TestSameCensus: header comparison ignores the shard labels but
// rejects every census-defining axis.
func TestSameCensus(t *testing.T) {
	cfg := richConfig(24, 0)
	full := cfg.StreamHeader()
	shard := cfg
	shard.Shard, shard.Shards = 1, 3
	if err := shard.StreamHeader().SameCensus(full); err != nil {
		t.Errorf("shard labels should not matter: %v", err)
	}
	other := richConfig(36, 0)
	if err := other.StreamHeader().SameCensus(full); err == nil {
		t.Error("different sizes compared equal")
	}
	nometrics := cfg
	nometrics.Metrics = false
	if err := nometrics.StreamHeader().SameCensus(full); err == nil {
		t.Error("different metrics flags compared equal")
	}
}

// TestRunSkipAndOnResult: the resume filter drops exactly the reported
// pairs, and the streaming hook sees every evaluated pair exactly once.
func TestRunSkipAndOnResult(t *testing.T) {
	cfg := richConfig(24, 0)
	full := mustRun(t, cfg)
	seen := map[int]int{}
	cfg.Skip = func(i int) bool { return i%3 == 0 }
	cfg.OnResult = func(r *census.PairResult) { seen[r.Index]++ }
	partial := mustRun(t, cfg)
	wantPairs := 0
	for i := 0; i < full.SpacePairs; i++ {
		if i%3 != 0 {
			wantPairs++
		}
	}
	if partial.Pairs != wantPairs {
		t.Errorf("skipping census has %d pairs, want %d", partial.Pairs, wantPairs)
	}
	if len(seen) != wantPairs {
		t.Errorf("OnResult saw %d pairs, want %d", len(seen), wantPairs)
	}
	for idx, n := range seen {
		if idx%3 == 0 {
			t.Errorf("skipped pair %d was evaluated", idx)
		}
		if n != 1 {
			t.Errorf("pair %d hit OnResult %d times", idx, n)
		}
	}
	// The evaluated pairs carry the same results as the full run.
	byIndex := map[int]census.PairResult{}
	for _, r := range full.Results {
		byIndex[r.Index] = r
	}
	for _, r := range partial.Results {
		want := byIndex[r.Index]
		want.Wall = r.Wall
		if !reflect.DeepEqual(r, want) {
			t.Errorf("pair %d differs between full and skipping runs", r.Index)
		}
	}
}

// TestHistogramBlock: the artifact's histogram block exists exactly for
// metric censuses, tallies every embeddable pair, and agrees with the
// derived DilationHistogram/PeakCongestion views.
func TestHistogramBlock(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	c := mustRun(t, cfg)
	if len(c.Histograms) == 0 {
		t.Fatal("metrics census has no histogram block")
	}
	total := 0
	for key, h := range c.Histograms {
		dil, con := 0, 0
		for d, n := range h.Dilation {
			dil += n
			if c.DilationHistogram()[key][d] != n {
				t.Errorf("%s: dilation %d count %d disagrees with the derived histogram", key, d, n)
			}
		}
		for _, n := range h.Congestion {
			con += n
		}
		if dil != con {
			t.Errorf("%s: dilation block tallies %d pairs, congestion block %d", key, dil, con)
		}
		if dil != c.ByStrategy[key] {
			t.Errorf("%s: histogram tallies %d pairs, ByStrategy says %d", key, dil, c.ByStrategy[key])
		}
		peak := 0
		for load := range h.Congestion {
			if load > peak {
				peak = load
			}
		}
		if peak != c.PeakCongestion()[key] {
			t.Errorf("%s: histogram peak %d, PeakCongestion %d", key, peak, c.PeakCongestion()[key])
		}
		total += dil
	}
	if total != c.Embeddable {
		t.Errorf("histogram block covers %d pairs, want %d embeddable", total, c.Embeddable)
	}

	// The block travels through the JSON artifact.
	back, err := census.Decode(bytes.NewReader(encode(t, c)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Histograms) != len(c.Histograms) {
		t.Errorf("decoded artifact has %d histogram strategies, want %d", len(back.Histograms), len(c.Histograms))
	}

	// Metrics-off censuses carry no block.
	plain := richConfig(16, 0)
	plain.Metrics = false
	pc := mustRun(t, plain)
	if pc.Histograms != nil {
		t.Error("metrics-off census has a histogram block")
	}
	var buf bytes.Buffer
	if err := census.Encode(&buf, pc); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "histograms") {
		t.Error("metrics-off artifact serializes a histogram block")
	}
}

// TestRepairHeaderlessJournal: a journal whose run was killed before
// its first record — leaving an empty file or a header line cut before
// its newline — must repair to an empty journal (zero header, no
// records, file truncated to zero bytes), not error out the resume
// path. A header-only journal with its newline intact repairs to its
// header and zero records.
func TestRepairHeaderlessJournal(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)
	headerLine := data[:bytes.IndexByte(data, '\n')+1]
	dir := t.TempDir()

	for name, content := range map[string][]byte{
		"empty":       nil,
		"torn-header": headerLine[:len(headerLine)-1], // newline never hit disk
	} {
		path := filepath.Join(dir, name+".ndjson")
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		h, recs, err := census.RepairStreamFile(path)
		if err != nil {
			t.Fatalf("%s: repair errored: %v", name, err)
		}
		if h.Stream != 0 || h.Version != 0 || len(h.Shapes) != 0 || len(recs) != 0 {
			t.Fatalf("%s: repair returned header %+v with %d records, want the zero header", name, h, len(recs))
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(after) != 0 {
			t.Fatalf("%s: repaired journal holds %d bytes, want 0", name, len(after))
		}
		// The truncated-to-empty journal restarts cleanly: a fresh
		// header plus records reads back as a well-formed stream.
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := census.NewStreamWriter(f, c.StreamHeader())
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.Results {
			if err := sw.Write(&c.Results[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := census.ReadFileAny(path)
		if err != nil {
			t.Fatalf("%s: restarted journal does not read: %v", name, err)
		}
		if !bytes.Equal(encode(t, c), encode(t, back)) {
			t.Errorf("%s: restarted journal does not round-trip the census", name)
		}
	}

	// Header-only with its newline intact: a real (if empty) journal —
	// kept as is, not truncated, its header returned.
	path := filepath.Join(dir, "header-only.ndjson")
	if err := os.WriteFile(path, headerLine, 0o644); err != nil {
		t.Fatal(err)
	}
	h, recs, err := census.RepairStreamFile(path)
	if err != nil {
		t.Fatalf("header-only: %v", err)
	}
	if err := h.SameCensus(c.StreamHeader()); err != nil {
		t.Errorf("header-only: header differs: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("header-only: %d records, want 0", len(recs))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, headerLine) {
		t.Error("header-only: repair modified an intact header line")
	}
	// The strict readers still refuse headerless streams outright.
	if _, err := census.NewStreamReader(bytes.NewReader(nil)); !errors.Is(err, census.ErrNoHeader) {
		t.Errorf("strict read of an empty stream: %v, want ErrNoHeader", err)
	}
	if _, err := census.ReadStream(bytes.NewReader(headerLine[:8])); !errors.Is(err, census.ErrNoHeader) {
		t.Errorf("strict read of a torn header: %v, want ErrNoHeader", err)
	}
}

// TestTornTailWithoutNewline: a final record line missing its trailing
// newline is a torn tail even when the bytes parse as valid JSON — the
// writer promises one Write per line, so a missing terminator means
// the record may be incomplete (e.g. a truncated number would still
// parse). IntactBytes must exclude it, the tolerant scan must drop it,
// and repair must truncate it so a resumed appender cannot glue a new
// record onto a possibly-partial one and duplicate the pair.
func TestTornTailWithoutNewline(t *testing.T) {
	c := mustRun(t, richConfig(24, 0))
	data := streamBytes(t, c)
	torn := data[:len(data)-1] // strip only the final newline: still valid JSON
	intactLen := bytes.LastIndexByte(torn, '\n') + 1

	sr, err := census.NewStreamReader(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := sr.Read()
		if err != nil {
			if !errors.Is(err, census.ErrTruncatedStream) {
				t.Fatalf("read %d: %v, want ErrTruncatedStream", n, err)
			}
			break
		}
		n++
	}
	if n != len(c.Results)-1 {
		t.Errorf("reader accepted %d records, want %d (the newline-less tail dropped)", n, len(c.Results)-1)
	}
	if got := sr.IntactBytes(); got != int64(intactLen) {
		t.Errorf("IntactBytes = %d, want %d (tail record excluded)", got, intactLen)
	}

	_, recs, err := census.ScanStream(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(c.Results)-1 {
		t.Errorf("scan recovered %d records, want %d", len(recs), len(c.Results)-1)
	}

	path := filepath.Join(t.TempDir(), "torn.ndjson")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err = census.RepairStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(c.Results)-1 {
		t.Errorf("repair recovered %d records, want %d", len(recs), len(c.Results)-1)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn[:intactLen]) {
		t.Errorf("repair left %d bytes, want %d (tail truncated)", len(after), intactLen)
	}
	// Re-appending the dropped record yields the full stream again.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := census.NewStreamAppender(f).Write(&c.Results[len(c.Results)-1]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := census.ReadFileAny(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, c), encode(t, back)) {
		t.Error("repaired-then-appended journal does not round-trip the census")
	}
}

// assertHistogramTopEdges checks the histogram top-edge contract of a
// census (shared with the golden test): for every strategy, the
// largest bucket key equals the strategy's largest measured value —
// the pair sitting exactly on the top boundary lands in the last
// bucket — and every embeddable result is bucketed (counts sum to the
// strategy tally).
func assertHistogramTopEdges(t *testing.T, c *census.Census) {
	t.Helper()
	maxDil, maxCon, count := map[string]int{}, map[string]int{}, map[string]int{}
	for i := range c.Results {
		r := &c.Results[i]
		if r.FailureStage != "" {
			continue
		}
		key := census.StrategyKey(r.Strategy)
		count[key]++
		maxDil[key] = max(maxDil[key], r.Dilation)
		maxCon[key] = max(maxCon[key], r.Congestion)
	}
	if len(count) == 0 {
		t.Fatal("census has no embeddable pairs")
	}
	for key, h := range c.Histograms {
		topDil, sumDil := 0, 0
		for d, n := range h.Dilation {
			sumDil += n
			topDil = max(topDil, d)
		}
		if topDil != maxDil[key] || h.Dilation[maxDil[key]] < 1 {
			t.Errorf("%s: top dilation bucket %d does not hold the boundary value %d", key, topDil, maxDil[key])
		}
		if sumDil != count[key] {
			t.Errorf("%s: dilation buckets tally %d pairs, want %d — a boundary value was dropped", key, sumDil, count[key])
		}
		topCon, sumCon := 0, 0
		for l, n := range h.Congestion {
			sumCon += n
			topCon = max(topCon, l)
		}
		if topCon != maxCon[key] || h.Congestion[maxCon[key]] < 1 {
			t.Errorf("%s: top congestion bucket %d does not hold the boundary value %d", key, topCon, maxCon[key])
		}
		if sumCon != count[key] {
			t.Errorf("%s: congestion buckets tally %d pairs, want %d — a boundary value was dropped", key, sumCon, count[key])
		}
	}
	// Every strategy with embeddable pairs has a histogram entry.
	for key := range count {
		if c.Histograms[key] == nil {
			t.Errorf("%s carried pairs but has no histogram entry", key)
		}
	}
}

// TestHistogramTopEdge: a pair whose measured dilation or congestion
// equals the largest value its strategy reaches — the top bucket
// boundary — must land in that last bucket, not fall off the end of
// the histogram.
func TestHistogramTopEdge(t *testing.T) {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	assertHistogramTopEdges(t, mustRun(t, cfg))
}

// TestRepairRefusesNonJournal: the headerless-repair path resets only
// files that plausibly are torn journals (empty, or starting with a
// prefix of the stream header). A newline-less file that is clearly
// something else — a mistyped -journal path at a pidfile, say — must
// error and stay intact, not be truncated to zero.
func TestRepairRefusesNonJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pidfile")
	content := []byte("12345")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := census.RepairStreamFile(path); err == nil {
		t.Fatal("repair accepted a non-journal file")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatalf("repair modified a non-journal file: %q", after)
	}
	// A genuinely torn header longer than the sniff prefix still
	// repairs.
	torn := filepath.Join(t.TempDir(), "torn.ndjson")
	if err := os.WriteFile(torn, []byte(`{"stream":1,"version":3,"si`), 0o644); err != nil {
		t.Fatal(err)
	}
	h, recs, err := census.RepairStreamFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stream != 0 || len(recs) != 0 {
		t.Fatalf("torn header repaired to %+v with %d records", h, len(recs))
	}
	if after, err := os.ReadFile(torn); err != nil || len(after) != 0 {
		t.Fatalf("torn header journal holds %d bytes after repair (err %v)", len(after), err)
	}
	// And a torn header shorter than the sniff prefix.
	short := filepath.Join(t.TempDir(), "short.ndjson")
	if err := os.WriteFile(short, []byte(`{"str`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := census.RepairStreamFile(short); err != nil {
		t.Fatalf("short torn header: %v", err)
	}
	if after, err := os.ReadFile(short); err != nil || len(after) != 0 {
		t.Fatalf("short torn header holds %d bytes after repair (err %v)", len(after), err)
	}
}
