package census_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"torusmesh/internal/census"
	"torusmesh/internal/place"
)

var update = flag.Bool("update", false, "regenerate the golden census artifact")

// goldenPath names the committed artifact after the schema version it
// pins, so a version bump forces a new file next to the old name.
func goldenPath() string {
	return filepath.Join("testdata", "census-v4.golden.json")
}

// goldenConfig is a small but full-featured census: metrics, congestion
// and the placement search are all on, so every serialized field of the
// schema appears in the golden artifact.
func goldenConfig() census.Config {
	cfg := richConfig(16, 0)
	cfg.Congestion = true
	cfg.Place, cfg.PlaceSpec = place.CensusFunc(place.Config{
		CapDilation: true,
		Rotations:   true,
		Budget:      32,
		Strategies:  place.DefaultStrategies(),
	})
	return cfg
}

// TestGoldenArtifact pins the census artifact schema: the serialized
// form of a fixed census must match the committed golden file byte for
// byte. If this test fails you changed the artifact encoding — bump
// census.ArtifactVersion (see its version history), regenerate with
//
//	go test ./internal/census -run Golden -update
//
// and commit the new golden under the new version's file name.
func TestGoldenArtifact(t *testing.T) {
	c := mustRun(t, goldenConfig())
	got := encode(t, c)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", goldenPath(), len(got))
		return
	}
	want, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden artifact (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("census artifact drifted from %s.\n"+
			"If the schema changed on purpose: bump census.ArtifactVersion, rename the golden for the new version,\n"+
			"and regenerate with `go test ./internal/census -run Golden -update`.\n"+
			"got %d bytes, want %d bytes", goldenPath(), len(got), len(want))
	}
	// The golden also re-decodes under the current schema version.
	dec, err := census.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden artifact does not decode: %v", err)
	}
	if dec.Version != census.ArtifactVersion {
		t.Errorf("golden version %d does not match ArtifactVersion %d", dec.Version, census.ArtifactVersion)
	}
	if !dec.Placed || !dec.Congestion || !dec.Metrics {
		t.Error("golden census should exercise metrics, congestion and placement columns")
	}
	// The golden reflects the histogram top-edge contract: the pair
	// sitting exactly on each strategy's top bucket boundary is in the
	// last bucket, not dropped (shared assertions with
	// TestHistogramTopEdge).
	assertHistogramTopEdges(t, dec)
}
