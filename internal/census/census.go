// Package census is the sharded coverage engine behind the repo's
// central empirical claim: which fraction of same-size torus/mesh pairs
// the paper's constructions embed, and at what cost. Run evaluates the
// ordered (shape, kind) × (shape, kind) pair space of one size —
// shapes enumerated by internal/catalog and passed in via Config — on
// an internal/par worker pool, producing one PairResult per pair:
// strategy, measured dilation, average dilation, optional netsim
// peak-link congestion, wall time, and the failure reason split by
// stage (construction vs verification).
//
// The pair space partitions deterministically into shards (pair i
// belongs to shard i mod m), so production-scale sweeps split across
// processes: each process runs one shard, serializes its census to a
// versioned JSON artifact, and Merge recombines the artifacts into the
// same census a single unsharded run would have produced, bit for bit.
// The serialized schema is pinned by a golden-file test (testdata/);
// changing it requires bumping ArtifactVersion.
//
// A census can additionally carry a placement column: Config.Place
// accepts an opaque PlaceFunc (the package stays independent of the
// placement engine, the way Config.Embed keeps it independent of the
// construction dispatcher), and each embeddable pair then records the
// best congestion-aware placement found next to its paper-baseline
// dilation and congestion. cmd/sweep wires this to internal/place via
// place.CensusFunc.
package census

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/par"
	"torusmesh/internal/taskgraph"
)

// EmbedFunc builds the embedding for one pair — typically core.Embed.
// It must be safe for concurrent calls.
type EmbedFunc func(g, h grid.Spec) (*embed.Embedding, error)

// PlaceFunc runs a congestion-aware placement search for one pair and
// returns the best candidate's summary — typically an adapter around
// place.Search (the census engine stays independent of the placement
// engine; cmd/sweep and the top-level API wire the two together). It
// must be safe for concurrent calls and deterministic for a given pair,
// or merged artifacts stop reproducing unsharded runs bit for bit.
type PlaceFunc func(g, h grid.Spec) (*PlaceSummary, error)

// PlaceSummary records the best placement found for a pair, next to the
// paper-baseline dilation and congestion columns of its PairResult.
type PlaceSummary struct {
	// Desc names the winning candidate's strategy and symmetry variant,
	// e.g. "paper gperm=[1 0]".
	Desc string `json:"desc,omitempty"`
	// Strategy is the construction chain of the winning embedding.
	Strategy string `json:"strategy,omitempty"`
	// Dilation, Peak, AvgLink and Score are the winner's measured costs
	// under the search objective.
	Dilation int     `json:"dilation,omitempty"`
	Peak     int     `json:"peak,omitempty"`
	AvgLink  float64 `json:"avg_link,omitempty"`
	Score    float64 `json:"score,omitempty"`
	// Error records a failed search (the other fields are then zero).
	Error string `json:"error,omitempty"`
}

// StrategyFunc is the legacy strategy-only evaluator of the catalog
// coverage path: it returns the name of the construction that carried
// the pair, or an error when none applies. It must be safe for
// concurrent calls. Strategy-mode censuses record no metrics, and their
// failures cannot be split by stage (they count as construction
// failures).
type StrategyFunc func(g, h grid.Spec) (string, error)

// Config describes one census run.
type Config struct {
	// Size is the number of nodes; every shape must multiply out to it.
	Size int
	// MaxDim is the shape-dimension cap used during enumeration
	// (0 = unlimited). Recorded in the artifact and validated by Merge.
	MaxDim int
	// Shapes is the canonical shape list of the pair space, typically
	// catalog.CanonicalShapesOfSize(Size, MaxDim).
	Shapes []grid.Shape
	// Shard/Shards select the slice of the pair space this run covers:
	// pair i is evaluated iff i mod Shards == Shard. The zero value
	// (0/0) means the whole space.
	Shard, Shards int
	// Metrics measures dilation and average dilation for every
	// embeddable pair and checks the paper's dilation guarantee.
	Metrics bool
	// Congestion additionally routes every embeddable pair's guest
	// edges through the host under dimension-ordered routing and
	// records the peak directed-link load.
	Congestion bool
	// Place, when set, additionally runs a placement search for every
	// embeddable pair and records the best-found candidate next to the
	// baseline columns. Requires Congestion (the baseline peak is the
	// number the search is compared against) and a PlaceSpec.
	Place PlaceFunc
	// PlaceSpec canonically describes the placement search's settings
	// (typically place.Config.Spec(), returned by place.CensusFunc).
	// It is recorded in the artifact and compared by Merge, so shards
	// searched under different settings — which would silently break
	// the bit-for-bit merge invariant — are rejected.
	PlaceSpec string
	// Embed is the rich evaluator; exactly one of Embed and Strategy
	// must be set. Rich-mode pairs are always verified for injectivity.
	Embed EmbedFunc
	// Strategy is the legacy strategy-only evaluator; it implies
	// Metrics == false and Congestion == false.
	Strategy StrategyFunc
	// Skip, when set, drops pairs it reports as already evaluated
	// before they are scheduled — the resume filter. A skipping run
	// covers only part of its stripe, so its census is not a complete
	// shard artifact; it exists to be folded into a partial artifact by
	// the distributed driver or a resumed sweep.
	Skip func(pair int) bool
	// OnResult, when set, is called once per evaluated pair as soon as
	// its result is final — in completion order, not index order, but
	// never concurrently (Run serializes the calls). This is how
	// workers stream NDJSON records while the census is still running.
	// The callback must not retain the pointer past its return.
	OnResult func(*PairResult)
	// Interrupt, when set, is polled between pairs on every worker;
	// once it returns true, no further pairs are evaluated and Run
	// returns ErrInterrupted instead of a partial census. This is how
	// a cancelled context reaches a run already in flight (the
	// distributed driver's in-process workers poll ctx.Err here).
	Interrupt func() bool
	// Clock substitutes the wall clock behind the census's Elapsed and
	// each pair's Wall measurement. Nil means time.Now. Wall times
	// serialize as json:"-" and never enter artifacts, so this is a
	// pure testability knob, aligned with serve.Config's.
	Clock func() time.Time
}

// ErrInterrupted is returned by Run when Config.Interrupt stopped the
// evaluation early.
var ErrInterrupted = errors.New("census: run interrupted")

// Failure stages of a PairResult.
const (
	// StageConstruct marks pairs no construction covers (or, in
	// strategy mode, any evaluator error).
	StageConstruct = "construct"
	// StageVerify marks pairs whose construction succeeded but whose
	// embedding failed verification or broke its dilation guarantee —
	// always a library bug, reported distinctly from mere non-coverage.
	StageVerify = "verify"
)

// PairResult is the outcome of one ordered (guest, host) pair.
type PairResult struct {
	// Index is the pair's position in the deterministic enumeration of
	// the pair space; it determines the pair's shard.
	Index int    `json:"index"`
	Guest string `json:"guest"`
	Host  string `json:"host"`
	// Strategy is the full name of the construction that carried the
	// pair ("" when construction failed).
	Strategy string `json:"strategy,omitempty"`
	// Predicted is the paper's dilation guarantee (0 = none recorded).
	Predicted int `json:"predicted,omitempty"`
	// Dilation and AvgDilation are measured over every guest edge
	// (metrics censuses only).
	Dilation    int     `json:"dilation,omitempty"`
	AvgDilation float64 `json:"avg_dilation,omitempty"`
	// Congestion is the peak directed-link load under dimension-ordered
	// routing (congestion censuses only).
	Congestion int `json:"congestion,omitempty"`
	// HopHist is the route-length distribution of the baseline
	// placement: routed distance (hops one way; 0 for co-located
	// endpoints) -> number of guest edges at that distance. It comes out
	// of the same fused edge pass as Congestion (congestion censuses
	// only).
	HopHist map[int]int `json:"hop_hist,omitempty"`
	// Place is the best placement the search found for the pair
	// (placement censuses only; nil for failed pairs).
	Place *PlaceSummary `json:"place,omitempty"`
	// Failure is the failure reason, with FailureStage saying whether
	// construction or verification failed.
	Failure      string `json:"failure,omitempty"`
	FailureStage string `json:"failure_stage,omitempty"`
	// Wall is the evaluation wall time of the pair. It is deliberately
	// excluded from the JSON artifact so that artifacts are
	// deterministic and shard merges reproduce unsharded censuses bit
	// for bit; report timing out of band.
	Wall time.Duration `json:"-"`
}

// Census is the (mergeable, serializable) outcome of a census run. All
// aggregate fields are derived from Results; Merge recomputes them.
type Census struct {
	Version    int      `json:"version"`
	Size       int      `json:"size"`
	MaxDim     int      `json:"maxdim"`
	Shard      int      `json:"shard"`
	Shards     int      `json:"shards"`
	Metrics    bool     `json:"metrics"`
	Congestion bool     `json:"congestion"`
	Placed     bool     `json:"placed"`
	PlaceSpec  string   `json:"place_spec,omitempty"`
	Shapes     []string `json:"shapes"`
	// SpacePairs is the size of the full pair space; Pairs is the
	// number evaluated in this artifact's shard.
	SpacePairs        int            `json:"space_pairs"`
	Pairs             int            `json:"pairs"`
	Embeddable        int            `json:"embeddable"`
	ConstructFailures int            `json:"construct_failures"`
	VerifyFailures    int            `json:"verify_failures"`
	ByStrategy        map[string]int `json:"by_strategy"`
	// Histograms is the per-strategy cost-distribution block: for each
	// strategy key, how many embeddable pairs it carried at each
	// measured dilation (metrics censuses) and at each peak link load
	// (congestion censuses). Derived from Results like the other
	// aggregates; absent from strategy-only censuses.
	Histograms map[string]*StrategyHistogram `json:"histograms,omitempty"`
	Results    []PairResult                  `json:"results"`
	// Elapsed is the run's wall time, excluded from the artifact for
	// the same determinism reason as PairResult.Wall.
	Elapsed time.Duration `json:"-"`
}

// StrategyKey truncates a strategy name at the first '/' or '[' so
// construction variants group together in coverage tallies — the single
// home of the truncation rule shared by the census aggregates, the
// sweep reports and the legacy catalog coverage path.
func StrategyKey(strategy string) string {
	for i := 0; i < len(strategy); i++ {
		if strategy[i] == '/' || strategy[i] == '[' {
			return strategy[:i]
		}
	}
	return strategy
}

// StrategyHistogram is one strategy's entry in the artifact's
// histogram block. Map keys are the measured cost values; map values
// count the embeddable pairs the strategy carried at that cost.
type StrategyHistogram struct {
	Dilation   map[int]int `json:"dilation,omitempty"`
	Congestion map[int]int `json:"congestion,omitempty"`
}

// kinds is the fixed kind order of the pair space enumeration.
var kinds = [2]grid.Kind{grid.Mesh, grid.Torus}

// Specs returns the (shape, kind) spec list of the config's pair space
// in enumeration order: pair i embeds guest Specs[i/n] into host
// Specs[i%n] where n = len(Specs). The distributed driver validates
// streamed records against this enumeration.
func (cfg *Config) Specs() []grid.Spec { return cfg.specs() }

// specs expands the shape list into the (shape, kind) spec list: each
// shape contributes its mesh then its torus.
func (cfg *Config) specs() []grid.Spec {
	out := make([]grid.Spec, 0, 2*len(cfg.Shapes))
	for _, s := range cfg.Shapes {
		for _, k := range kinds {
			out = append(out, grid.Spec{Kind: k, Shape: s})
		}
	}
	return out
}

// validate normalizes the zero shard spec and rejects misconfiguration.
func (cfg *Config) validate() error {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Shards < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return fmt.Errorf("census: shard %d/%d out of range", cfg.Shard, cfg.Shards)
	}
	if (cfg.Embed == nil) == (cfg.Strategy == nil) {
		return fmt.Errorf("census: exactly one of Embed and Strategy must be set")
	}
	if cfg.Strategy != nil && (cfg.Metrics || cfg.Congestion) {
		return fmt.Errorf("census: metrics and congestion require the rich Embed evaluator")
	}
	if cfg.Place != nil && !cfg.Congestion {
		return fmt.Errorf("census: placement search requires the congestion baseline")
	}
	if (cfg.Place != nil) != (cfg.PlaceSpec != "") {
		return fmt.Errorf("census: Place and PlaceSpec must be set together")
	}
	for _, s := range cfg.Shapes {
		if s.Size() != cfg.Size {
			return fmt.Errorf("census: shape %s has %d nodes, want %d", s, s.Size(), cfg.Size)
		}
	}
	return nil
}

// Run evaluates the config's shard of the pair space and returns its
// census. Pairs are striped across an internal/par worker pool; the
// result is deterministic regardless of worker count or scheduling.
func Run(cfg Config) (*Census, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := cfg.Clock()
	specs := cfg.specs()
	space := len(specs) * len(specs)
	indices := make([]int, 0, (space+cfg.Shards-1)/cfg.Shards)
	for i := cfg.Shard; i < space; i += cfg.Shards {
		if cfg.Skip != nil && cfg.Skip(i) {
			continue
		}
		indices = append(indices, i)
	}
	ev := newEvaluator(&cfg, specs, indices)
	results := make([]PairResult, len(indices))
	var emitMu sync.Mutex
	var interrupted atomic.Bool
	par.Blocks(len(indices), 1, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if cfg.Interrupt != nil && (interrupted.Load() || cfg.Interrupt()) {
				interrupted.Store(true)
				return
			}
			i := indices[k]
			results[k] = ev.pair(i, specs[i/len(specs)], specs[i%len(specs)])
			countPair(&results[k])
			if cfg.OnResult != nil {
				emitMu.Lock()
				cfg.OnResult(&results[k])
				emitMu.Unlock()
			}
		}
	})
	if interrupted.Load() {
		return nil, ErrInterrupted
	}
	c := &Census{
		Version:    ArtifactVersion,
		Size:       cfg.Size,
		MaxDim:     cfg.MaxDim,
		Shard:      cfg.Shard,
		Shards:     cfg.Shards,
		Metrics:    cfg.Metrics,
		Congestion: cfg.Congestion,
		Placed:     cfg.Place != nil,
		PlaceSpec:  cfg.PlaceSpec,
		Shapes:     shapeStrings(cfg.Shapes),
		SpacePairs: space,
		Results:    results,
	}
	c.recount()
	c.Elapsed = cfg.Clock().Sub(start)
	return c, nil
}

func shapeStrings(shapes []grid.Shape) []string {
	out := make([]string, len(shapes))
	for i, s := range shapes {
		out[i] = s.String()
	}
	return out
}

// recount rebuilds every aggregate field from Results, including the
// histogram block of metrics and congestion censuses.
func (c *Census) recount() {
	c.Pairs = len(c.Results)
	c.Embeddable, c.ConstructFailures, c.VerifyFailures = 0, 0, 0
	c.ByStrategy = map[string]int{}
	for i := range c.Results {
		switch c.Results[i].FailureStage {
		case StageConstruct:
			c.ConstructFailures++
		case StageVerify:
			c.VerifyFailures++
		default:
			c.Embeddable++
			c.ByStrategy[StrategyKey(c.Results[i].Strategy)]++
		}
	}
	c.Histograms = nil
	if !c.Metrics && !c.Congestion {
		return
	}
	c.Histograms = map[string]*StrategyHistogram{}
	c.forStrategy(func(key string, r *PairResult) {
		h := c.Histograms[key]
		if h == nil {
			h = &StrategyHistogram{}
			c.Histograms[key] = h
		}
		if c.Metrics {
			if h.Dilation == nil {
				h.Dilation = map[int]int{}
			}
			h.Dilation[r.Dilation]++
		}
		if c.Congestion {
			if h.Congestion == nil {
				h.Congestion = map[int]int{}
			}
			h.Congestion[r.Congestion]++
		}
	})
}

// forStrategy visits every embeddable result under its strategy key —
// the one grouping rule the artifact-level summaries share.
func (c *Census) forStrategy(fn func(key string, r *PairResult)) {
	for i := range c.Results {
		if c.Results[i].FailureStage != "" {
			continue
		}
		fn(StrategyKey(c.Results[i].Strategy), &c.Results[i])
	}
}

// DilationHistogram returns, per strategy key, the distribution of
// measured dilations over the embeddable pairs that strategy carried.
// Meaningful for metrics censuses only.
func (c *Census) DilationHistogram() map[string]map[int]int {
	out := map[string]map[int]int{}
	c.forStrategy(func(key string, r *PairResult) {
		h := out[key]
		if h == nil {
			h = map[int]int{}
			out[key] = h
		}
		h[r.Dilation]++
	})
	return out
}

// PeakCongestion returns the worst peak-link load per strategy key.
// Meaningful for congestion censuses only.
func (c *Census) PeakCongestion() map[string]int {
	out := map[string]int{}
	c.forStrategy(func(key string, r *PairResult) {
		if r.Congestion > out[key] {
			out[key] = r.Congestion
		}
	})
	return out
}

// PlaceImprovements returns, per strategy key, how many embeddable
// pairs the placement search strictly improved: a best-found peak link
// load below the baseline construction's. Meaningful for placement
// censuses only.
func (c *Census) PlaceImprovements() map[string]int {
	out := map[string]int{}
	c.forStrategy(func(key string, r *PairResult) {
		if r.Place != nil && r.Place.Error == "" && r.Place.Peak < r.Congestion {
			out[key]++
		}
	})
	return out
}

// SlowestPair returns the result whose evaluation took the longest, or
// nil for an empty census. Wall times exist only in censuses produced
// by Run in this process — they are not serialized, so decoded or
// merged artifacts report nothing useful here.
func (c *Census) SlowestPair() *PairResult {
	var worst *PairResult
	for i := range c.Results {
		if worst == nil || c.Results[i].Wall > worst.Wall {
			worst = &c.Results[i]
		}
	}
	return worst
}

// evaluator carries the per-run immutable state the pair workers share:
// the config, and — when metrics or congestion are on — per-spec
// compiled distancers and task graphs, built up front so the parallel
// loop stays lock-free.
type evaluator struct {
	cfg        *Config
	distancers map[string]*grid.RankDistancer // host spec string -> compiled distance
	graphs     map[string]*taskgraph.Graph    // guest spec string -> edge list
	scratch    sync.Pool                      // *pairScratch
}

// pairScratch is the reusable per-worker buffer set of the fast
// measurement path.
type pairScratch struct {
	ha, hb []int    // gathered host ranks of one edge block
	seen   []uint32 // bitset of claimed host ranks (verification)
}

func newEvaluator(cfg *Config, specs []grid.Spec, indices []int) *evaluator {
	ev := &evaluator{cfg: cfg}
	words := (cfg.Size + 31) / 32
	ev.scratch.New = func() any {
		return &pairScratch{
			ha:   make([]int, grid.DefaultEdgeBlock),
			hb:   make([]int, grid.DefaultEdgeBlock),
			seen: make([]uint32, words),
		}
	}
	if len(specs) == 0 {
		return ev
	}
	// Only the specs this shard's pair stripe actually touches get a
	// compiled distancer (hosts) or a task graph (guests): a many-way
	// shard of a large space visits a fraction of the spec list, and
	// materialization is O(Size·dim) per spec.
	hostUsed := make([]bool, len(specs))
	guestUsed := make([]bool, len(specs))
	for _, i := range indices {
		guestUsed[i/len(specs)] = true
		hostUsed[i%len(specs)] = true
	}
	// Materialized distancers only pay off on the table fast path, which
	// kernels take when guests sit at or below the materialization
	// threshold; above it (or with materialization disabled) every pair
	// goes through measureSlow and the precompute would be dead weight.
	if cfg.Metrics && cfg.Size <= embed.MaterializeThreshold() {
		ev.distancers = make(map[string]*grid.RankDistancer, len(specs))
		for si, sp := range specs {
			if hostUsed[si] {
				ev.distancers[sp.String()] = sp.NewRankDistancer().Materialize()
			}
		}
	}
	if cfg.Congestion {
		ev.graphs = make(map[string]*taskgraph.Graph, len(specs))
		for si, sp := range specs {
			if guestUsed[si] {
				ev.graphs[sp.String()] = taskgraph.FromSpec(sp)
			}
		}
	}
	return ev
}

// pair evaluates one ordered (guest, host) pair.
func (ev *evaluator) pair(idx int, g, h grid.Spec) PairResult {
	now := ev.cfg.Clock
	start := now()
	pr := PairResult{Index: idx, Guest: g.String(), Host: h.String()}
	if ev.cfg.Strategy != nil {
		strategy, err := ev.cfg.Strategy(g, h)
		if err != nil {
			pr.Failure, pr.FailureStage = err.Error(), StageConstruct
		} else {
			pr.Strategy = strategy
		}
		pr.Wall = now().Sub(start)
		return pr
	}
	e, err := ev.cfg.Embed(g, h)
	if err != nil {
		pr.Failure, pr.FailureStage = err.Error(), StageConstruct
		pr.Wall = now().Sub(start)
		return pr
	}
	pr.Strategy, pr.Predicted = e.Strategy, e.Predicted
	ev.measure(&pr, e, g, h)
	pr.Wall = now().Sub(start)
	return pr
}

// measure verifies the embedding and fills in the requested metrics.
// Guests at or below the materialization threshold take the fast path:
// the kernel's lookup table is scanned directly (plain bitset, no
// atomics — pairs are the unit of parallelism here) and dilation and
// average dilation come from one fused pass over the guest's edge
// blocks. Larger guests fall back to the embedding's own parallel
// measurement paths.
func (ev *evaluator) measure(pr *PairResult, e *embed.Embedding, g, h grid.Spec) {
	table, _ := e.Kernel().(embed.Table)
	if table == nil {
		ev.measureSlow(pr, e, g, h)
		return
	}
	n := g.Size()
	sc := ev.scratch.Get().(*pairScratch)
	defer ev.scratch.Put(sc)
	if bad := table.CheckInjection(n, sc.seen); bad != nil {
		if bad.OutOfBounds {
			pr.Failure = fmt.Sprintf("%s: image of node %s (host rank %d) out of bounds for host %s",
				e.Strategy, g.Shape.NodeAt(bad.GuestRank), bad.HostRank, h)
		} else {
			pr.Failure = fmt.Sprintf("%s: host node %s has two pre-images (one is %s)",
				e.Strategy, h.Shape.NodeAt(bad.HostRank), g.Shape.NodeAt(bad.GuestRank))
		}
		pr.FailureStage = StageVerify
		return
	}
	if ev.cfg.Metrics {
		rd := ev.distancers[h.String()]
		if rd == nil {
			// A table kernel above the materialization threshold (e.g. an
			// explicit FromTable embedding) reaches the fast path without
			// a precomputed distancer; a one-off compile is still cheap.
			rd = h.NewRankDistancer()
		}
		pr.Dilation, pr.AvgDilation = g.EdgeDilation(table, rd, sc.ha, sc.hb)
		if !checkPredicted(pr, e, pr.Dilation, g, h) {
			return
		}
	}
	ev.congest(pr, g, h, netsim.Placement(table))
}

// measureSlow is the above-threshold fallback: the embedding's own
// batch-parallel Verify/Dilation/AverageDilation paths.
func (ev *evaluator) measureSlow(pr *PairResult, e *embed.Embedding, g, h grid.Spec) {
	if err := e.Verify(); err != nil {
		pr.Failure, pr.FailureStage = err.Error(), StageVerify
		return
	}
	if ev.cfg.Metrics {
		d := e.Dilation()
		pr.Dilation = d
		pr.AvgDilation = e.AverageDilation()
		if !checkPredicted(pr, e, d, g, h) {
			return
		}
	}
	if ev.cfg.Congestion {
		// PlacementFromEmbedding materializes a table copy, so only pay
		// for it when congestion is actually measured.
		ev.congest(pr, g, h, netsim.PlacementFromEmbedding(e))
	}
}

// checkPredicted records a verification-stage failure when the measured
// dilation exceeds the paper's recorded guarantee, reporting whether
// the pair survived.
func checkPredicted(pr *PairResult, e *embed.Embedding, measured int, g, h grid.Spec) bool {
	if e.Predicted > 0 && measured > e.Predicted {
		pr.Failure = fmt.Sprintf("%s: measured dilation %d exceeds guaranteed %d for %s -> %s",
			e.Strategy, measured, e.Predicted, g, h)
		pr.FailureStage = StageVerify
		return false
	}
	return true
}

// congest records the peak directed-link load of routing the guest's
// edges through the host under the embedding's placement, plus the
// route-length histogram the same pass computes.
func (ev *evaluator) congest(pr *PairResult, g, h grid.Spec, p netsim.Placement) {
	if !ev.cfg.Congestion {
		return
	}
	stats, hops, err := netsim.CongestionHops(netsim.New(h), ev.graphs[g.String()], p)
	if err != nil {
		pr.Failure, pr.FailureStage = err.Error(), StageVerify
		return
	}
	pr.Congestion = stats.MaxLink
	if len(hops) > 0 {
		pr.HopHist = hops
	}
	ev.place(pr, g, h)
}

// place runs the configured placement search for the pair and records
// the winner next to the baseline columns. A failed search is recorded
// in the summary's Error field rather than failing the pair: the
// baseline embedding is fine, the optimizer just found nothing.
func (ev *evaluator) place(pr *PairResult, g, h grid.Spec) {
	if ev.cfg.Place == nil {
		return
	}
	ps, err := ev.cfg.Place(g, h)
	if err != nil {
		pr.Place = &PlaceSummary{Error: err.Error()}
		return
	}
	pr.Place = ps
}
