// Package optimal provides ground truth for the paper's optimality
// claims: an exact branch-and-bound minimum-dilation search for tiny
// instances, and two computable lower bounds — a degree bound and the
// ball-counting bound behind Theorem 47 (Rosenberg's argument via
// Lemmas 44 and 45).
package optimal

import (
	"fmt"

	"torusmesh/internal/grid"
)

// MinDilation computes the exact minimum dilation cost over all
// embeddings of g in h by branch-and-bound. maxNodes guards against
// accidental use on large instances (the search is factorial).
func MinDilation(g, h grid.Spec, maxNodes int) (int, error) {
	d, _, err := MinDilationWitness(g, h, maxNodes)
	return d, err
}

// MinDilationWitness additionally returns an optimal assignment table
// (guest row-major index to host row-major index). Guest nodes are
// placed in breadth-first order, and a branch is pruned as soon as a
// placed edge reaches the current best.
func MinDilationWitness(g, h grid.Spec, maxNodes int) (int, []int, error) {
	n := g.Size()
	if n != h.Size() {
		return 0, nil, fmt.Errorf("optimal: sizes differ (%d vs %d)", n, h.Size())
	}
	if n > maxNodes {
		return 0, nil, fmt.Errorf("optimal: %d nodes exceeds limit %d for exhaustive search", n, maxNodes)
	}
	gg := grid.Build(g)
	hg := grid.Build(h)
	hdist := hg.AllPairs()

	// Order guest nodes by BFS from node 0 so each new node has at least
	// one already-placed neighbor, making pruning effective.
	order := bfsOrder(gg)
	pos := make([]int, n) // guest node -> index in order
	for i, v := range order {
		pos[v] = i
	}

	assign := make([]int, n) // guest node -> host node
	usedHost := make([]bool, n)
	for i := range assign {
		assign[i] = -1
	}

	best := upperBound(gg, hdist)
	var witness []int
	var dfs func(step, cur int) // cur = max dilation among placed edges
	dfs = func(step, cur int) {
		if cur >= best {
			return
		}
		if step == n {
			best = cur
			witness = append([]int(nil), assign...)
			return
		}
		v := order[step]
		for hNode := 0; hNode < n; hNode++ {
			if usedHost[hNode] {
				continue
			}
			// Symmetry break: the first node goes to host node 0 only.
			// Toruses are vertex-transitive and meshes have at least the
			// corner in node 0's orbit; restricting the first placement
			// never changes the optimum because any embedding can be
			// recentered... only valid for vertex-transitive hosts, so we
			// apply it only to toruses.
			if step == 0 && h.Kind == grid.Torus && hNode != 0 {
				break
			}
			worst := cur
			feasible := true
			for _, w := range gg.Adj[v] {
				if assign[w] < 0 {
					continue
				}
				if d := hdist[hNode][assign[w]]; d > worst {
					worst = d
					if worst >= best {
						feasible = false
						break
					}
				}
			}
			if !feasible {
				continue
			}
			assign[v] = hNode
			usedHost[hNode] = true
			dfs(step+1, worst)
			usedHost[hNode] = false
			assign[v] = -1
		}
	}
	dfs(0, 0)
	return best, witness, nil
}

// upperBound seeds branch-and-bound with the identity-by-index embedding.
func upperBound(gg *grid.Graph, hdist [][]int) int {
	max := 0
	for v, adj := range gg.Adj {
		for _, w := range adj {
			if d := hdist[v][w]; d > max {
				max = d
			}
		}
	}
	return max + 1 // bound is exclusive in the search
}

func bfsOrder(g *grid.Graph) []int {
	n := g.Size()
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// BallSize returns the maximum number of nodes of the graph within
// distance k of any single node. For meshes the maximum is attained at a
// central node; for toruses every node has the same ball. Computed by a
// per-dimension convolution over the distance budget.
func BallSize(sp grid.Spec, k int) int {
	// counts[t] = number of coordinate tuples at total distance exactly t.
	counts := make([]int64, k+1)
	counts[0] = 1
	for _, l := range sp.Shape {
		next := make([]int64, k+1)
		for t := 0; t <= k; t++ {
			if counts[t] == 0 {
				continue
			}
			for step := 0; t+step <= k; step++ {
				ways := int64(waysAtDistance(sp.Kind, l, step))
				if ways == 0 {
					continue
				}
				next[t+step] += counts[t] * ways
			}
		}
		counts = next
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total > int64(sp.Size()) {
		return sp.Size()
	}
	return int(total)
}

// waysAtDistance counts coordinates of one dimension at exactly the given
// distance from the best-centered coordinate.
func waysAtDistance(kind grid.Kind, l, dist int) int {
	if dist == 0 {
		return 1
	}
	if kind == grid.Torus {
		// Around any point: two coordinates at each distance up to
		// floor((l-1)/2); if l is even there is exactly one antipode at
		// distance l/2.
		if 2*dist < l {
			return 2
		}
		if 2*dist == l {
			return 1
		}
		return 0
	}
	// Mesh: center at position c = (l-1)/2 (floor). Coordinates at
	// distance dist are c-dist and c+dist when in range.
	c := (l - 1) / 2
	ways := 0
	if c-dist >= 0 {
		ways++
	}
	if c+dist <= l-1 {
		ways++
	}
	return ways
}

// LowerBoundBall computes the Lemma 45 lower bound on the dilation of
// any embedding of g in h: if an embedding with dilation ρ exists, then
// for every k the k-ball of g fits inside a host ball of radius kρ, so
// ball_g(k) <= ball_h(kρ). The bound is the largest ρ forced over
// k = 1..diameter(g).
func LowerBoundBall(g, h grid.Spec) int {
	if g.Size() != h.Size() {
		return 0
	}
	diam := diameter(g)
	bound := 1
	for k := 1; k <= diam; k++ {
		need := BallSize(g, k)
		// Find the smallest rho with ball_h(k*rho) >= need.
		rho := bound
		for ballH(h, k*rho) < need {
			rho++
		}
		if rho > bound {
			bound = rho
		}
	}
	return bound
}

// ballH is BallSize with the host's maximum ball; for meshes the central
// ball dominates every other, which is exactly what Lemma 45 needs (the
// image of a guest ball lies in *some* host ball of radius kρ, and we
// compare against the largest).
func ballH(sp grid.Spec, k int) int { return BallSize(sp, k) }

func diameter(sp grid.Spec) int {
	d := 0
	for _, l := range sp.Shape {
		if sp.Kind == grid.Torus {
			d += l / 2
		} else {
			d += l - 1
		}
	}
	return d
}

// LowerBoundDegree returns the degree-based lower bound: a guest node of
// degree deg needs its deg neighbors inside a host ball of radius ρ
// around its image, so ball_h(ρ) must exceed deg.
func LowerBoundDegree(g, h grid.Spec) int {
	deg := g.MaxDegree()
	rho := 1
	for BallSize(h, rho)-1 < deg {
		rho++
	}
	return rho
}

// Theorem47Bound evaluates the asymptotic lower bound of Theorem 47 in
// its computable form: any embedding of a d-dimensional guest in a
// c-dimensional host (c < d, equal sizes) has dilation at least
// b·p^{(d-c)/c} for a constant b. We return the concrete ball bound,
// which realizes the same growth: ball_g(k) ~ k^d while host balls grow
// as (2kρ+1)^c.
func Theorem47Bound(g, h grid.Spec) int { return LowerBoundBall(g, h) }
