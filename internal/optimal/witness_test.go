package optimal

import (
	"testing"

	"torusmesh/internal/grid"
)

// TestWitnessAchievesOptimum verifies the returned assignment actually
// realizes the reported minimum dilation.
func TestWitnessAchievesOptimum(t *testing.T) {
	cases := []struct{ g, h grid.Spec }{
		{grid.RingSpec(9), grid.MeshSpec(3, 3)},
		{grid.MeshSpec(3, 3), grid.LineSpec(9)},
		{grid.MeshSpec(2, 2, 2), grid.LineSpec(8)},
		{grid.TorusSpec(3, 3), grid.MeshSpec(3, 3)},
	}
	for _, c := range cases {
		opt, table, err := MinDilationWitness(c.g, c.h, 16)
		if err != nil {
			t.Fatalf("%s -> %s: %v", c.g, c.h, err)
		}
		if table == nil {
			t.Fatalf("%s -> %s: no witness", c.g, c.h)
		}
		// Validate injectivity.
		seen := make([]bool, c.h.Size())
		for _, hIdx := range table {
			if hIdx < 0 || hIdx >= c.h.Size() || seen[hIdx] {
				t.Fatalf("%s -> %s: witness not injective", c.g, c.h)
			}
			seen[hIdx] = true
		}
		// Measure the witness's dilation directly.
		max := 0
		c.g.VisitEdges(func(a, b grid.Node) {
			ha := c.h.Shape.NodeAt(table[c.g.Shape.Index(a)])
			hb := c.h.Shape.NodeAt(table[c.g.Shape.Index(b)])
			if d := c.h.Distance(ha, hb); d > max {
				max = d
			}
		})
		if max != opt {
			t.Errorf("%s -> %s: witness dilation %d != reported optimum %d", c.g, c.h, max, opt)
		}
	}
}
