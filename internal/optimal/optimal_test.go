package optimal

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestMinDilationKnownOptima(t *testing.T) {
	cases := []struct {
		g, h grid.Spec
		want int
	}{
		// Ring into line: optimal 2 for n > 2 (Theorem 17).
		{grid.RingSpec(4), grid.LineSpec(4), 2},
		{grid.RingSpec(6), grid.LineSpec(6), 2},
		// Ring into odd mesh: optimal 2 (Theorem 17).
		{grid.RingSpec(9), grid.MeshSpec(3, 3), 2},
		// Ring into even mesh of dimension 2: optimal 1 (Theorem 24).
		{grid.RingSpec(8), grid.MeshSpec(4, 2), 1},
		{grid.RingSpec(6), grid.MeshSpec(2, 3), 1},
		// Line anywhere: optimal 1 (Theorem 13).
		{grid.LineSpec(9), grid.MeshSpec(3, 3), 1},
		{grid.LineSpec(8), grid.TorusSpec(4, 2), 1},
		// Torus into same-shape mesh: optimal 2 (Lemma 36).
		{grid.TorusSpec(3, 3), grid.MeshSpec(3, 3), 2},
		// Fitzgerald: (l,l)-mesh into line costs l.
		{grid.MeshSpec(2, 2), grid.LineSpec(4), 2},
		{grid.MeshSpec(3, 3), grid.LineSpec(9), 3},
		// Harper: hypercube of size 8 into line costs 4.
		{grid.MeshSpec(2, 2, 2), grid.LineSpec(8), 4},
		// MN86: (l,l)-torus into ring costs l. (2,2) is degenerate — the
		// wrap edges coincide, so it *is* a 4-cycle with optimal cost 1.
		{grid.TorusSpec(2, 2), grid.RingSpec(4), 1},
		{grid.TorusSpec(3, 3), grid.RingSpec(9), 3},
		// Mesh into hypercube: optimal 1 (Corollary 34).
		{grid.MeshSpec(2, 4), grid.TorusSpec(2, 2, 2), 1},
	}
	for _, c := range cases {
		got, err := MinDilation(c.g, c.h, 16)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s -> %s: optimal dilation %d, want %d", c.g, c.h, got, c.want)
		}
	}
}

func TestMinDilationGuards(t *testing.T) {
	if _, err := MinDilation(grid.MeshSpec(4, 4), grid.LineSpec(16), 8); err == nil {
		t.Error("node limit not enforced")
	}
	if _, err := MinDilation(grid.MeshSpec(2, 2), grid.LineSpec(5), 16); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestBallSize(t *testing.T) {
	// Line of 9: ball around center of radius 2 has 5 nodes.
	if got := BallSize(grid.LineSpec(9), 2); got != 5 {
		t.Errorf("line ball = %d, want 5", got)
	}
	// Ring of 8: radius 2 ball has 5 nodes; radius 4 covers all 8.
	if got := BallSize(grid.RingSpec(8), 2); got != 5 {
		t.Errorf("ring ball = %d, want 5", got)
	}
	if got := BallSize(grid.RingSpec(8), 4); got != 8 {
		t.Errorf("ring full ball = %d, want 8", got)
	}
	// 3x3 mesh: radius 1 around center = 5; radius 2 = 9.
	if got := BallSize(grid.MeshSpec(3, 3), 1); got != 5 {
		t.Errorf("mesh ball r1 = %d, want 5", got)
	}
	if got := BallSize(grid.MeshSpec(3, 3), 2); got != 9 {
		t.Errorf("mesh ball r2 = %d, want 9", got)
	}
	// Hypercube d=3: radius 1 ball = 4 nodes.
	if got := BallSize(grid.TorusSpec(2, 2, 2), 1); got != 4 {
		t.Errorf("hypercube ball = %d, want 4", got)
	}
}

// TestBallSizeMatchesBFS cross-checks the convolution against explicit
// BFS ball counting on small graphs.
func TestBallSizeMatchesBFS(t *testing.T) {
	specs := []grid.Spec{
		grid.MeshSpec(3, 4), grid.TorusSpec(3, 4), grid.MeshSpec(2, 3, 2),
		grid.TorusSpec(5, 3), grid.LineSpec(6), grid.RingSpec(7),
	}
	for _, sp := range specs {
		g := grid.Build(sp)
		for k := 0; k <= 5; k++ {
			max := 0
			for v := 0; v < g.Size(); v++ {
				count := 0
				for _, dist := range g.BFS(v) {
					if dist <= k {
						count++
					}
				}
				if count > max {
					max = count
				}
			}
			if got := BallSize(sp, k); got != max {
				t.Errorf("%s k=%d: BallSize=%d, BFS max=%d", sp, k, got, max)
			}
		}
	}
}

func TestLowerBounds(t *testing.T) {
	// The ball bound must never exceed the true optimum.
	pairs := []struct{ g, h grid.Spec }{
		{grid.MeshSpec(3, 3), grid.LineSpec(9)},
		{grid.RingSpec(8), grid.MeshSpec(4, 2)},
		{grid.MeshSpec(2, 2, 2), grid.LineSpec(8)},
		{grid.TorusSpec(2, 2), grid.RingSpec(4)},
	}
	for _, p := range pairs {
		opt, err := MinDilation(p.g, p.h, 16)
		if err != nil {
			t.Fatalf("%s -> %s: %v", p.g, p.h, err)
		}
		if lb := LowerBoundBall(p.g, p.h); lb > opt {
			t.Errorf("%s -> %s: ball bound %d exceeds optimum %d", p.g, p.h, lb, opt)
		}
		if lb := LowerBoundDegree(p.g, p.h); lb > opt {
			t.Errorf("%s -> %s: degree bound %d exceeds optimum %d", p.g, p.h, lb, opt)
		}
	}
	// Lowering dimension forces dilation > 1 (Theorem 47 flavor).
	if lb := LowerBoundBall(grid.MeshSpec(3, 3), grid.LineSpec(9)); lb < 2 {
		t.Errorf("mesh -> line ball bound = %d, want >= 2", lb)
	}
	if lb := LowerBoundDegree(grid.MeshSpec(3, 3), grid.LineSpec(9)); lb < 2 {
		t.Errorf("mesh -> line degree bound = %d, want >= 2", lb)
	}
	// Same-size different-dimension hosts with plenty of room: bound 1.
	if lb := LowerBoundBall(grid.LineSpec(9), grid.MeshSpec(3, 3)); lb != 1 {
		t.Errorf("line -> mesh ball bound = %d, want 1", lb)
	}
}

// TestTheorem47Growth verifies the qualitative content of Theorem 47:
// for square meshes into lines the lower bound grows at least linearly
// with the side (p^{(d-c)/c} = p for d=2, c=1).
func TestTheorem47Growth(t *testing.T) {
	prev := 0
	for _, l := range []int{2, 3, 4, 5, 6, 8, 10} {
		lb := Theorem47Bound(grid.MustSpec(grid.Mesh, grid.Square(2, l)), grid.LineSpec(l*l))
		if lb < prev {
			t.Errorf("l=%d: bound %d decreased from %d", l, lb, prev)
		}
		if lb < l/2 {
			t.Errorf("l=%d: bound %d below p/2; Theorem 47 predicts ~b*p growth", l, lb)
		}
		prev = lb
	}
}
