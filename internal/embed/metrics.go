// Package-level instrumentation of the kernel layer, on the process
// default registry: how many kernels were actually materialized into
// lookup tables (already-Table kernels pass through uncounted).
package embed

import "torusmesh/internal/obs"

var tablesMaterialized = obs.Default().Counter("embed_tables_materialized_total")

func init() {
	obs.Default().Describe("embed_tables_materialized_total", "Kernels materialized into lookup tables.")
}
