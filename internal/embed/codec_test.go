package embed

import (
	"encoding/json"
	"strings"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

func TestExportImportRoundTrip(t *testing.T) {
	e, err := Permute(grid.TorusSpec(4, 2, 3), perm.Perm{2, 0, 1}, grid.Torus)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Export(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.From.String() != e.From.String() || back.To.String() != e.To.String() {
		t.Errorf("specs changed: %s -> %s", back.From, back.To)
	}
	if back.Strategy != e.Strategy || back.Predicted != e.Predicted {
		t.Errorf("metadata changed: %q %d", back.Strategy, back.Predicted)
	}
	for x := 0; x < e.From.Size(); x++ {
		if back.MapIndex(x) != e.MapIndex(x) {
			t.Fatalf("table differs at %d", x)
		}
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	e, _ := Identity(grid.LineSpec(4), grid.LineSpec(4))
	data, err := Export(e)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the table: duplicate an entry.
	var enc Encoded
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	enc.Table[1] = enc.Table[0]
	bad, _ := json.Marshal(enc)
	if _, err := Import(bad); err == nil {
		t.Error("duplicate table imported")
	}
	// Corrupt the measured dilation claim.
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	enc.Measured = 99
	bad2, _ := json.Marshal(enc)
	if _, err := Import(bad2); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Errorf("wrong-dilation file imported: %v", err)
	}
	// Garbage bytes.
	if _, err := Import([]byte("not json")); err == nil {
		t.Error("garbage imported")
	}
	// Bad kind.
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	enc.GuestKind = "blob"
	bad3, _ := json.Marshal(enc)
	if _, err := Import(bad3); err == nil {
		t.Error("bad kind imported")
	}
	// Bad shape.
	if err := json.Unmarshal(data, &enc); err != nil {
		t.Fatal(err)
	}
	enc.HostShape = []int{1}
	bad4, _ := json.Marshal(enc)
	if _, err := Import(bad4); err == nil {
		t.Error("bad shape imported")
	}
}
