package embed

// This file is the compiled, index-native half of the package: instead
// of evaluating an embedding one grid.Node at a time through closures,
// a Kernel maps blocks of guest row-major ranks to host ranks. The
// measurement paths (Dilation, AverageDilation, Verify) and the batch
// consumers (netsim placements, sweeps, codecs) run entirely on ranks,
// which removes the per-node coordinate allocations and lets the work
// stripe across GOMAXPROCS workers.
//
// Three compiled forms cover every construction in the paper:
//
//   - Table: the fully materialized map. Any kernel over a guest of at
//     most MaterializeThreshold() nodes is materialized into a Table on
//     first use, and composing two materialized steps fuses them into a
//     single table instead of chaining evaluations.
//   - DigitKernel: the closed form for every one of Ma & Tao's
//     constructions. Each guest coordinate independently determines a
//     fixed set of host digits, so the host rank is a sum of
//     per-coordinate contributions: host(x) = Σ_i contrib[i][digit_i(x)].
//     CompileSeparable builds the tables by probing the node map once
//     per (dimension, digit value) — Σ l_i probes in total.
//   - chainKernel: composition fallback for oversized intermediates;
//     stages evaluate in place over the same block.

import (
	"fmt"
	"sync/atomic"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
)

// Kernel evaluates an embedding over row-major ranks in batches.
// Implementations must be safe for concurrent EvalBatch calls and must
// tolerate dst and src aliasing the same slice (every implementation
// reads src[i] before writing dst[i]).
type Kernel interface {
	// EvalBatch writes the host rank of guest rank src[i] into dst[i]
	// for every i. len(dst) must equal len(src).
	EvalBatch(dst, src []int)
}

// DefaultMaterializeThreshold is the default guest-size cutoff below
// which kernels are materialized into lookup tables on first use:
// 1<<22 ranks (a 32 MiB table on 64-bit).
const DefaultMaterializeThreshold = 1 << 22

var materializeThreshold atomic.Int64

func init() { materializeThreshold.Store(DefaultMaterializeThreshold) }

// MaterializeThreshold returns the current guest-size cutoff for
// automatic table materialization.
func MaterializeThreshold() int { return int(materializeThreshold.Load()) }

// SetMaterializeThreshold sets the guest-size cutoff for automatic
// table materialization. n <= 0 disables materialization. Embeddings
// that already materialized keep their tables.
func SetMaterializeThreshold(n int) { materializeThreshold.Store(int64(n)) }

// Table is a fully materialized kernel: Table[x] is the host rank of
// guest rank x.
type Table []int

// EvalBatch implements Kernel by lookup.
func (t Table) EvalBatch(dst, src []int) {
	for i, x := range src {
		dst[i] = t[x]
	}
}

// InjectionViolation describes the first way a table fails to be an
// injection into the host's rank range.
type InjectionViolation struct {
	// GuestRank is the offending pre-image, HostRank its image.
	GuestRank, HostRank int
	// OutOfBounds is true for a range violation; otherwise HostRank
	// has a second pre-image below GuestRank.
	OutOfBounds bool
}

// CheckInjection scans the table as a candidate injection into [0, n)
// and returns the first violation, or nil. seen is caller-provided
// bitset scratch of at least (n+31)/32 words (cleared here), so the
// measurement engines — the census fast path and the placement
// search's candidate gate — share one scan without allocating per
// table.
func (t Table) CheckInjection(n int, seen []uint32) *InjectionViolation {
	words := (n + 31) / 32
	clear(seen[:words])
	for i, v := range t {
		if v < 0 || v >= n {
			return &InjectionViolation{GuestRank: i, HostRank: v, OutOfBounds: true}
		}
		w := &seen[v>>5]
		bit := uint32(1) << (v & 31)
		if *w&bit != 0 {
			return &InjectionViolation{GuestRank: i, HostRank: v}
		}
		*w |= bit
	}
	return nil
}

// IndexFunc adapts a pure rank-to-rank function to the Kernel
// interface. The function must be safe for concurrent calls.
type IndexFunc func(int) int

// EvalBatch implements Kernel.
func (f IndexFunc) EvalBatch(dst, src []int) {
	for i, x := range src {
		dst[i] = f(x)
	}
}

// identityKernel maps every rank to itself (identity embeddings and
// the row-major baseline).
type identityKernel struct{}

func (identityKernel) EvalBatch(dst, src []int) { copy(dst, src) }

// DigitKernel is the compiled form of a digit-separable node map: each
// guest coordinate independently determines a fixed set of host
// digits, so the host rank decomposes as
//
//	host(x) = Σ_i contrib[i][digit_i(x)]
//
// where digit_i(x) is the i-th row-major digit of guest rank x. All of
// the paper's construction maps (permutations, T_L, F_V/G_V/H_V, U_V,
// and the general-reduction supernode maps) are of this shape.
type DigitKernel struct {
	lengths []int   // guest dimension lengths, leftmost first
	contrib [][]int // contrib[i][v]: host-rank contribution of digit v at dim i
}

// EvalBatch implements Kernel: decode digits right-to-left and sum the
// per-dimension contributions. Allocation-free.
func (k *DigitKernel) EvalBatch(dst, src []int) {
	lengths, contrib := k.lengths, k.contrib
	for i, x := range src {
		sum := 0
		for j := len(lengths) - 1; j >= 0; j-- {
			l := lengths[j]
			sum += contrib[j][x%l]
			x /= l
		}
		dst[i] = sum
	}
}

// CompileSeparable compiles a digit-separable node map into a
// DigitKernel by probing fn at the all-zeros guest node and at each
// single-coordinate value — Σ_i l_i + 1 evaluations in total. fn MUST
// map each guest coordinate independently to a fixed set of host digit
// positions (true for every construction in the paper); the compiled
// kernel is only guaranteed to agree with fn under that condition, and
// the package's parity tests enforce it for every producer.
func CompileSeparable(from, to grid.Spec, fn func(grid.Node) grid.Node) *DigitKernel {
	d := from.Dim()
	probe := make(grid.Node, d)
	base := to.Shape.Index(fn(probe))
	contrib := make([][]int, d)
	for i, l := range from.Shape {
		row := make([]int, l)
		for v := 1; v < l; v++ {
			probe[i] = v
			row[v] = to.Shape.Index(fn(probe)) - base
		}
		probe[i] = 0
		contrib[i] = row
	}
	// Fold the base offset into dimension 0 so evaluation is a pure sum.
	for v := range contrib[0] {
		contrib[0][v] += base
	}
	return &DigitKernel{lengths: append([]int(nil), from.Shape...), contrib: contrib}
}

// nodeMapKernel adapts a per-node closure to the batch interface: it
// decodes each rank into a reused coordinate buffer, applies the map,
// and re-encodes. Out-of-bounds images encode as rank -1 so Verify
// reports them as such rather than aliasing them onto valid hosts.
// This is the uncompiled fallback for embeddings built with New.
type nodeMapKernel struct {
	from, to grid.Spec
	fn       func(grid.Node) grid.Node
}

func (k nodeMapKernel) EvalBatch(dst, src []int) {
	scratch := make(grid.Node, k.from.Dim()) // one alloc per block, not per node
	shape := k.from.Shape
	for i, x := range src {
		shape.NodeInto(scratch, x)
		img := k.fn(scratch)
		if !img.InBounds(k.to.Shape) {
			dst[i] = -1
			continue
		}
		dst[i] = k.to.Shape.Index(img)
	}
}

// chainKernel evaluates a composition stage by stage over the same
// block. Stage 0 reads src; later stages rewrite dst in place, which
// every Kernel implementation supports. A stage fed the out-of-bounds
// sentinel (-1, produced by nodeMapKernel when a closure maps outside
// the host) must pass it through untouched so Verify can report it
// instead of a lookup panicking on a negative index.
type chainKernel struct{ steps []Kernel }

func (k chainKernel) EvalBatch(dst, src []int) {
	k.steps[0].EvalBatch(dst, src)
	for _, s := range k.steps[1:] {
		clean := true
		for _, v := range dst {
			if v < 0 {
				clean = false
				break
			}
		}
		if clean {
			s.EvalBatch(dst, dst)
			continue
		}
		// Rare (broken-embedding) path: evaluate element-wise, keeping
		// the sentinel.
		var one [1]int
		for i, v := range dst {
			if v < 0 {
				continue
			}
			one[0] = v
			s.EvalBatch(one[:], one[:])
			dst[i] = one[0]
		}
	}
}

// composeKernels chains two kernels, flattening nested chains and
// fusing adjacent materialized tables into one.
func composeKernels(first, second Kernel) Kernel {
	if t1, ok := first.(Table); ok {
		if t2, ok := second.(Table); ok {
			return FuseTables(t1, t2)
		}
	}
	var steps []Kernel
	for _, k := range []Kernel{first, second} {
		if c, ok := k.(chainKernel); ok {
			steps = append(steps, c.steps...)
		} else {
			steps = append(steps, k)
		}
	}
	return chainKernel{steps: steps}
}

// FuseTables collapses two materialized steps into a single table:
// fused[x] = second[first[x]]. Out-of-bounds images in the first step —
// the -1 sentinel, or any rank outside the second table (a broken
// caller-injected construction) — pass through unchanged so Verify and
// CheckInjection can report them instead of a lookup panicking here.
func FuseTables(first, second Table) Table {
	fused := make(Table, len(first))
	par.Blocks(len(first), par.Grain(len(first), 4096), func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if v := first[x]; v >= 0 && v < len(second) {
				fused[x] = second[v]
			} else {
				fused[x] = v
			}
		}
	})
	return fused
}

// PostCompose returns the embedding followed by a pure relabeling of
// the host's ranks: the image of guest rank x becomes post[base(x)].
// post must cover every host rank, and to must have the host's size
// (only the kind and axis labeling may differ — the relabeled host).
//
// This is the cheap half of candidate generation in the placement
// search: a base construction is built (and materialized) once, and
// each host symmetry — an axis permutation back from the permuted
// host, a coordinate rotation — is applied as a single table fusion
// instead of re-running the construction. post is not required to be
// distance-preserving (mesh rotations are not), so no dilation
// guarantee is carried over; predicted records the caller's bound, or
// 0 to force measurement.
func PostCompose(base *Embedding, to grid.Spec, strategy string, predicted int, post Table) (*Embedding, error) {
	if len(post) != base.To.Size() {
		return nil, fmt.Errorf("embed: post-compose table has %d entries, want %d", len(post), base.To.Size())
	}
	if to.Size() != base.To.Size() {
		return nil, fmt.Errorf("embed: post-compose host %s has %d nodes, want %d", to, to.Size(), base.To.Size())
	}
	// composeKernels fuses a materialized base with post into one lookup
	// table — the common placement-search case (Kernel materializes and
	// caches guests under the threshold on first use) — and otherwise
	// chains the stages.
	k := composeKernels(base.Kernel(), post)
	return NewKernel(base.From, to, strategy, predicted, k)
}

// Materialize evaluates k over [0, n) in parallel blocks and returns
// the resulting table. When k is already a Table it is returned as is
// (not copied); callers handing the result to user code must copy.
func Materialize(k Kernel, n int) Table {
	if t, ok := k.(Table); ok {
		return t
	}
	tablesMaterialized.Inc()
	out := make(Table, n)
	par.Blocks(n, par.Grain(n, 4096), func(lo, hi int) {
		src := make([]int, 0, grid.DefaultEdgeBlock)
		for blockLo := lo; blockLo < hi; blockLo += grid.DefaultEdgeBlock {
			blockHi := blockLo + grid.DefaultEdgeBlock
			if blockHi > hi {
				blockHi = hi
			}
			src = src[:blockHi-blockLo]
			for i := range src {
				src[i] = blockLo + i
			}
			k.EvalBatch(out[blockLo:blockHi], src)
		}
	})
	return out
}

// Kernel returns the compiled batch evaluator of the embedding. When
// the guest has at most MaterializeThreshold() nodes the kernel is
// materialized into a Table on first call and cached, so composed
// pipelines collapse to a single lookup per rank.
func (e *Embedding) Kernel() Kernel {
	n := e.From.Size()
	if n <= MaterializeThreshold() {
		e.matOnce.Do(func() {
			e.matTable = Materialize(e.kernel, n)
			e.matDone.Store(true)
		})
		return e.matTable
	}
	return e.kernel
}

// EvalBatch writes the host rank of guest rank src[i] into dst[i] for
// every i, using the compiled kernel.
func (e *Embedding) EvalBatch(dst, src []int) { e.Kernel().EvalBatch(dst, src) }

// NewIndexed builds an embedding directly from a rank-to-rank map. The
// node-level Map is derived from the kernel, so the public surface
// stays identical to closure-built embeddings.
func NewIndexed(from, to grid.Spec, strategy string, predicted int, fn func(int) int) (*Embedding, error) {
	return NewKernel(from, to, strategy, predicted, IndexFunc(fn))
}

// NewKernel builds an embedding from an explicit kernel, deriving the
// per-node Map adapter from it.
func NewKernel(from, to grid.Spec, strategy string, predicted int, k Kernel) (*Embedding, error) {
	e, err := New(from, to, strategy, predicted, nil)
	if err != nil {
		return nil, err
	}
	e.kernel = k
	e.mapFn = func(n grid.Node) grid.Node {
		var dst, src [1]int
		src[0] = from.Shape.Index(n)
		k.EvalBatch(dst[:], src[:])
		return to.Shape.NodeAt(dst[0])
	}
	return e, nil
}

// NewSeparable builds an embedding from a digit-separable node map
// (every construction of the paper is one: each guest coordinate
// independently determines a fixed set of host digits). The map is
// compiled into a DigitKernel by probing — see CompileSeparable — and
// kept as the per-node Map, so Map-vs-kernel parity is testable.
func NewSeparable(from, to grid.Spec, strategy string, predicted int, fn func(grid.Node) grid.Node) (*Embedding, error) {
	e, err := New(from, to, strategy, predicted, fn)
	if err != nil {
		return nil, err
	}
	e.kernel = CompileSeparable(from, to, fn)
	return e, nil
}

// WithSpecs returns an embedding with the same node map and kernel but
// re-labelled guest/host specs — used when a hypercube (simultaneously
// a torus and a mesh) was embedded under one interpretation and the
// caller wants the other. Shapes must match exactly; only kinds may
// differ.
func (e *Embedding) WithSpecs(from, to grid.Spec) (*Embedding, error) {
	if !from.Shape.Equal(e.From.Shape) || !to.Shape.Equal(e.To.Shape) {
		return nil, fmt.Errorf("embed: WithSpecs requires identical shapes, got %s -> %s for %s -> %s",
			from.Shape, to.Shape, e.From.Shape, e.To.Shape)
	}
	out, err := New(from, to, e.Strategy, e.Predicted, e.mapFn)
	if err != nil {
		return nil, err
	}
	out.kernel = e.cachedKernel() // reuse an already-materialized table
	return out, nil
}
