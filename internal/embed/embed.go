// Package embed defines the embedding abstraction of Definition 1 in
// Ma & Tao: an injection of the nodes of a guest graph G into the nodes
// of a host graph H of the same size, together with its dilation cost
// (the maximum host distance between the images of adjacent guest nodes).
// It also provides the composition, identity and coordinate-permutation
// embeddings the paper uses as glue between construction steps.
package embed

import (
	"fmt"

	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// Embedding is an injection from the nodes of From to the nodes of To.
// Map must be a pure function; nodes passed to Map are not retained.
type Embedding struct {
	From, To grid.Spec
	// Strategy names the construction that produced the embedding, e.g.
	// "f_L", "expansion/H_V", "square-chain".
	Strategy string
	// Predicted is the dilation cost guaranteed by the paper's theorem
	// for this construction, or 0 if no guarantee is recorded.
	Predicted int
	mapFn     func(grid.Node) grid.Node
}

// New builds an embedding from a node map. The sizes of the two specs
// must agree (the paper studies same-size embeddings only).
func New(from, to grid.Spec, strategy string, predicted int, fn func(grid.Node) grid.Node) (*Embedding, error) {
	if err := from.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("embed: guest: %v", err)
	}
	if err := to.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("embed: host: %v", err)
	}
	if from.Size() != to.Size() {
		return nil, fmt.Errorf("embed: guest %s has %d nodes but host %s has %d; sizes must match",
			from, from.Size(), to, to.Size())
	}
	return &Embedding{From: from, To: to, Strategy: strategy, Predicted: predicted, mapFn: fn}, nil
}

// Map returns the image of guest node n in the host.
func (e *Embedding) Map(n grid.Node) grid.Node { return e.mapFn(n) }

// MapIndex maps a guest row-major index to the host row-major index.
func (e *Embedding) MapIndex(x int) int {
	return e.To.Shape.Index(e.mapFn(e.From.Shape.NodeAt(x)))
}

// Table materializes the embedding as a slice indexed by guest row-major
// index holding host row-major indices.
func (e *Embedding) Table() []int {
	n := e.From.Size()
	t := make([]int, n)
	for x := 0; x < n; x++ {
		t[x] = e.MapIndex(x)
	}
	return t
}

// Dilation measures the exact dilation cost by walking every edge of the
// guest and taking the maximum host distance between endpoint images
// (closed-form distances of Lemmas 5 and 6).
func (e *Embedding) Dilation() int {
	max := 0
	e.From.VisitEdges(func(a, b grid.Node) {
		d := e.To.Distance(e.mapFn(a.Clone()), e.mapFn(b.Clone()))
		if d > max {
			max = d
		}
	})
	return max
}

// AverageDilation returns the mean host distance over all guest edges, a
// secondary proximity measure used in the experiment reports.
func (e *Embedding) AverageDilation() float64 {
	sum, count := 0, 0
	e.From.VisitEdges(func(a, b grid.Node) {
		sum += e.To.Distance(e.mapFn(a.Clone()), e.mapFn(b.Clone()))
		count++
	})
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Verify checks that the embedding is a well-formed injection: every
// image is in bounds and no two guest nodes share an image. Since guest
// and host have equal size, injectivity implies bijectivity.
func (e *Embedding) Verify() error {
	n := e.From.Size()
	seen := make([]bool, n)
	for x := 0; x < n; x++ {
		img := e.mapFn(e.From.Shape.NodeAt(x))
		if !img.InBounds(e.To.Shape) {
			return fmt.Errorf("embed: %s: image %s of node %s out of bounds for host %s",
				e.Strategy, img, e.From.Shape.NodeAt(x), e.To)
		}
		idx := e.To.Shape.Index(img)
		if seen[idx] {
			return fmt.Errorf("embed: %s: host node %s has two pre-images (second is %s)",
				e.Strategy, img, e.From.Shape.NodeAt(x))
		}
		seen[idx] = true
	}
	return nil
}

// CheckPredicted verifies that the measured dilation does not exceed the
// recorded guarantee. It returns the measured dilation.
func (e *Embedding) CheckPredicted() (int, error) {
	d := e.Dilation()
	if e.Predicted > 0 && d > e.Predicted {
		return d, fmt.Errorf("embed: %s: measured dilation %d exceeds guaranteed %d for %s -> %s",
			e.Strategy, d, e.Predicted, e.From, e.To)
	}
	return d, nil
}

// Compose chains two embeddings: first maps G into an intermediate graph,
// second maps that graph into the final host. The intermediate specs must
// match exactly. Dilation costs multiply (each unit step in G spreads to
// at most first.Predicted steps in the middle graph, each of which
// spreads to at most second.Predicted steps in the host), so the
// composite guarantee is the product when both parts carry one.
func Compose(first, second *Embedding) (*Embedding, error) {
	if first.To.Kind != second.From.Kind || !first.To.Shape.Equal(second.From.Shape) {
		return nil, fmt.Errorf("embed: cannot compose %s -> %s with %s -> %s: intermediate specs differ",
			first.From, first.To, second.From, second.To)
	}
	pred := 0
	if first.Predicted > 0 && second.Predicted > 0 {
		pred = first.Predicted * second.Predicted
	}
	strategy := first.Strategy + " ∘ " + second.Strategy
	return New(first.From, second.To, strategy, pred, func(n grid.Node) grid.Node {
		return second.mapFn(first.mapFn(n))
	})
}

// ComposeAll chains a pipeline of embeddings left to right.
func ComposeAll(steps ...*Embedding) (*Embedding, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("embed: empty composition")
	}
	acc := steps[0]
	for _, next := range steps[1:] {
		var err error
		acc, err = Compose(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Identity returns the identity embedding between two graphs of the same
// shape. Embedding a mesh in the same-shape torus (or any graph in one of
// the identical kind) has unit dilation (Lemma 36's easy direction).
func Identity(from, to grid.Spec) (*Embedding, error) {
	if !from.Shape.Equal(to.Shape) {
		return nil, fmt.Errorf("embed: identity requires equal shapes, got %s and %s", from.Shape, to.Shape)
	}
	return New(from, to, "identity", 1, func(n grid.Node) grid.Node { return n.Clone() })
}

// Permute returns the coordinate-permutation embedding of G into the
// graph of the same kind whose shape is Apply(p, G.Shape). It is a graph
// isomorphism, hence has unit dilation; the paper uses it as the π, α, τ
// and β glue steps of Sections 4 and 5.
func Permute(from grid.Spec, p perm.Perm, toKind grid.Kind) (*Embedding, error) {
	if len(p) != from.Dim() {
		return nil, fmt.Errorf("embed: permutation length %d does not match dimension %d", len(p), from.Dim())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	toShape := grid.Shape(perm.Apply(p, from.Shape))
	to, err := grid.NewSpec(toKind, toShape)
	if err != nil {
		return nil, err
	}
	pc := append(perm.Perm(nil), p...)
	return New(from, to, "permute", 1, func(n grid.Node) grid.Node {
		return grid.Node(perm.Apply(pc, n))
	})
}

// FromTable builds an embedding from an explicit guest-index to
// host-index table.
func FromTable(from, to grid.Spec, strategy string, predicted int, table []int) (*Embedding, error) {
	if len(table) != from.Size() {
		return nil, fmt.Errorf("embed: table has %d entries, want %d", len(table), from.Size())
	}
	t := append([]int(nil), table...)
	return New(from, to, strategy, predicted, func(n grid.Node) grid.Node {
		return to.Shape.NodeAt(t[from.Shape.Index(n)])
	})
}
