// Package embed defines the embedding abstraction of Definition 1 in
// Ma & Tao: an injection of the nodes of a guest graph G into the nodes
// of a host graph H of the same size, together with its dilation cost
// (the maximum host distance between the images of adjacent guest nodes).
// It also provides the composition, identity and coordinate-permutation
// embeddings the paper uses as glue between construction steps.
//
// Every embedding carries two evaluation forms. Map is the per-node
// closure form used by the paper's definitions and by small consumers.
// Kernel is the compiled, index-native form: a batch evaluator over
// row-major ranks (see kernel.go) that the measurement paths — Dilation,
// AverageDilation, Verify — drive over blocked edge enumeration striped
// across GOMAXPROCS workers. Constructions register their closed forms
// with NewSeparable/NewIndexed/NewKernel; closures registered with New
// fall back to a decode-map-encode adapter. Kernels of guests at or
// below MaterializeThreshold() are materialized into lookup tables on
// first use, and composing materialized steps fuses their tables.
package embed

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"torusmesh/internal/grid"
	"torusmesh/internal/par"
	"torusmesh/internal/perm"
)

// Embedding is an injection from the nodes of From to the nodes of To.
// Map must be a pure function safe for concurrent calls; nodes passed
// to Map are not retained or mutated.
type Embedding struct {
	From, To grid.Spec
	// Strategy names the construction that produced the embedding, e.g.
	// "f_L", "expansion/H_V", "square-chain".
	Strategy string
	// Predicted is the dilation cost guaranteed by the paper's theorem
	// for this construction, or 0 if no guarantee is recorded.
	Predicted int
	mapFn     func(grid.Node) grid.Node
	kernel    Kernel

	matOnce  sync.Once
	matDone  atomic.Bool
	matTable Table
}

// New builds an embedding from a node map. The sizes of the two specs
// must agree (the paper studies same-size embeddings only). The batch
// kernel falls back to a decode-map-encode adapter around fn; prefer
// NewSeparable or NewIndexed when a compiled form exists.
func New(from, to grid.Spec, strategy string, predicted int, fn func(grid.Node) grid.Node) (*Embedding, error) {
	if err := from.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("embed: guest: %v", err)
	}
	if err := to.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("embed: host: %v", err)
	}
	if from.Size() != to.Size() {
		return nil, fmt.Errorf("embed: guest %s has %d nodes but host %s has %d; sizes must match",
			from, from.Size(), to, to.Size())
	}
	e := &Embedding{From: from, To: to, Strategy: strategy, Predicted: predicted, mapFn: fn}
	e.kernel = nodeMapKernel{from: from, to: to, fn: fn}
	return e, nil
}

// Map returns the image of guest node n in the host.
func (e *Embedding) Map(n grid.Node) grid.Node { return e.mapFn(n) }

// MapIndex maps a guest row-major index to the host row-major index.
func (e *Embedding) MapIndex(x int) int {
	var dst, src [1]int
	src[0] = x
	e.cachedKernel().EvalBatch(dst[:], src[:])
	return dst[0]
}

// cachedKernel returns the materialized table when one already exists,
// otherwise the raw (unmaterialized) kernel. Unlike Kernel it never
// triggers materialization, so one-off lookups stay cheap.
func (e *Embedding) cachedKernel() Kernel {
	if e.matDone.Load() {
		return e.matTable
	}
	return e.kernel
}

// Table materializes the embedding as a slice indexed by guest row-major
// index holding host row-major indices. The fill runs in parallel
// blocks; the returned slice is a fresh copy the caller may mutate.
func (e *Embedding) Table() []int {
	if t, ok := e.cachedKernel().(Table); ok {
		return append([]int(nil), t...)
	}
	if e.From.Size() <= MaterializeThreshold() {
		if t, ok := e.Kernel().(Table); ok {
			return append([]int(nil), t...)
		}
	}
	// cachedKernel is not a Table here, so Materialize builds a fresh
	// slice rather than returning an internal one.
	return Materialize(e.cachedKernel(), e.From.Size())
}

// rankBufs is a pooled pair of block-sized rank buffers for the
// measurement paths: workers borrow a pair per span instead of
// allocating, so sweeps measuring thousands of embeddings stay at
// near-zero steady-state allocation.
type rankBufs struct{ a, b []int }

var rankBufPool = sync.Pool{New: func() any {
	return &rankBufs{
		a: make([]int, grid.DefaultEdgeBlock),
		b: make([]int, grid.DefaultEdgeBlock),
	}
}}

// Dilation measures the exact dilation cost on the batch path: edge
// blocks of the guest (VisitEdgesBatchRange) are striped across
// workers, endpoint ranks are pushed through the compiled kernel, and
// host distances use the rank-native closed forms of Lemmas 5 and 6.
func (e *Embedding) Dilation() int {
	k := e.Kernel()
	n := e.From.Size()
	rd := e.To.NewRankDistancer()
	var mu sync.Mutex
	max := 0
	par.Blocks(n, par.Grain(n, 2048), func(lo, hi int) {
		local := 0
		bufs := rankBufPool.Get().(*rankBufs)
		ha, hb := bufs.a, bufs.b
		e.From.VisitEdgesBatchRange(lo, hi, grid.DefaultEdgeBlock, func(a, b []int) {
			k.EvalBatch(ha[:len(a)], a)
			k.EvalBatch(hb[:len(b)], b)
			if d := rd.Max(ha[:len(a)], hb[:len(b)]); d > local {
				local = d
			}
		})
		rankBufPool.Put(bufs)
		mu.Lock()
		if local > max {
			max = local
		}
		mu.Unlock()
	})
	return max
}

// DilationPerNode is the reference per-node implementation of Dilation:
// a sequential walk of every guest edge through the Map closure. Kept
// for parity testing, benchmarking against the batch path, and tiny
// shapes where spinning up workers is not worth it.
func (e *Embedding) DilationPerNode() int {
	max := 0
	e.From.VisitEdges(func(a, b grid.Node) {
		// Map neither mutates nor retains its argument, so the reused
		// VisitEdges buffers are passed directly.
		if d := e.To.Distance(e.mapFn(a), e.mapFn(b)); d > max {
			max = d
		}
	})
	return max
}

// AverageDilation returns the mean host distance over all guest edges, a
// secondary proximity measure used in the experiment reports. Runs on
// the batch path with per-worker partial sums.
func (e *Embedding) AverageDilation() float64 {
	k := e.Kernel()
	n := e.From.Size()
	rd := e.To.NewRankDistancer()
	var mu sync.Mutex
	var sum, count int64
	par.Blocks(n, par.Grain(n, 2048), func(lo, hi int) {
		var localSum, localCount int64
		bufs := rankBufPool.Get().(*rankBufs)
		ha, hb := bufs.a, bufs.b
		e.From.VisitEdgesBatchRange(lo, hi, grid.DefaultEdgeBlock, func(a, b []int) {
			k.EvalBatch(ha[:len(a)], a)
			k.EvalBatch(hb[:len(b)], b)
			localSum += rd.Sum(ha[:len(a)], hb[:len(b)])
			localCount += int64(len(a))
		})
		rankBufPool.Put(bufs)
		mu.Lock()
		sum += localSum
		count += localCount
		mu.Unlock()
	})
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// AverageDilationPerNode is the reference per-node implementation of
// AverageDilation, kept alongside DilationPerNode.
func (e *Embedding) AverageDilationPerNode() float64 {
	sum, count := 0, 0
	e.From.VisitEdges(func(a, b grid.Node) {
		sum += e.To.Distance(e.mapFn(a), e.mapFn(b))
		count++
	})
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Verify checks that the embedding is a well-formed injection: every
// image is in bounds and no two guest nodes share an image. Since guest
// and host have equal size, injectivity implies bijectivity. Images are
// evaluated in parallel blocks and claimed in a shared atomic bitset.
func (e *Embedding) Verify() error {
	k := e.Kernel()
	n := e.From.Size()
	words := make([]uint32, (n+31)/32)
	var mu sync.Mutex
	var firstErr error
	var failed atomic.Bool
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	par.Blocks(n, par.Grain(n, 2048), func(lo, hi int) {
		bufs := rankBufPool.Get().(*rankBufs)
		defer rankBufPool.Put(bufs)
		dst, src := bufs.a, bufs.b
		for blockLo := lo; blockLo < hi; blockLo += grid.DefaultEdgeBlock {
			if failed.Load() {
				return
			}
			blockHi := blockLo + grid.DefaultEdgeBlock
			if blockHi > hi {
				blockHi = hi
			}
			s := src[:blockHi-blockLo]
			d := dst[:blockHi-blockLo]
			for i := range s {
				s[i] = blockLo + i
			}
			k.EvalBatch(d, s)
			for i, v := range d {
				if v < 0 || v >= n {
					record(fmt.Errorf("embed: %s: image of node %s (host rank %d) out of bounds for host %s",
						e.Strategy, e.From.Shape.NodeAt(blockLo+i), v, e.To))
					return
				}
				w := &words[v>>5]
				bit := uint32(1) << (v & 31)
				for {
					old := atomic.LoadUint32(w)
					if old&bit != 0 {
						record(fmt.Errorf("embed: %s: host node %s has two pre-images (one is %s)",
							e.Strategy, e.To.Shape.NodeAt(v), e.From.Shape.NodeAt(blockLo+i)))
						return
					}
					if atomic.CompareAndSwapUint32(w, old, old|bit) {
						break
					}
				}
			}
		}
	})
	return firstErr
}

// CheckPredicted verifies that the measured dilation does not exceed the
// recorded guarantee. It returns the measured dilation (batch path).
func (e *Embedding) CheckPredicted() (int, error) {
	d := e.Dilation()
	if e.Predicted > 0 && d > e.Predicted {
		return d, fmt.Errorf("embed: %s: measured dilation %d exceeds guaranteed %d for %s -> %s",
			e.Strategy, d, e.Predicted, e.From, e.To)
	}
	return d, nil
}

// Compose chains two embeddings: first maps G into an intermediate graph,
// second maps that graph into the final host. The intermediate specs must
// match exactly. Dilation costs multiply (each unit step in G spreads to
// at most first.Predicted steps in the middle graph, each of which
// spreads to at most second.Predicted steps in the host), so the
// composite guarantee is the product when both parts carry one. Kernels
// compose too: already-materialized steps fuse into a single table;
// otherwise the stages chain and fuse on first materialization.
func Compose(first, second *Embedding) (*Embedding, error) {
	if first.To.Kind != second.From.Kind || !first.To.Shape.Equal(second.From.Shape) {
		return nil, fmt.Errorf("embed: cannot compose %s -> %s with %s -> %s: intermediate specs differ",
			first.From, first.To, second.From, second.To)
	}
	pred := 0
	if first.Predicted > 0 && second.Predicted > 0 {
		pred = first.Predicted * second.Predicted
	}
	strategy := first.Strategy + " ∘ " + second.Strategy
	f1, f2 := first.mapFn, second.mapFn
	e, err := New(first.From, second.To, strategy, pred, func(n grid.Node) grid.Node {
		return f2(f1(n))
	})
	if err != nil {
		return nil, err
	}
	e.kernel = composeKernels(first.cachedKernel(), second.cachedKernel())
	return e, nil
}

// ComposeAll chains a pipeline of embeddings left to right.
func ComposeAll(steps ...*Embedding) (*Embedding, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("embed: empty composition")
	}
	acc := steps[0]
	for _, next := range steps[1:] {
		var err error
		acc, err = Compose(acc, next)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Identity returns the identity embedding between two graphs of the same
// shape. Embedding a mesh in the same-shape torus (or any graph in one of
// the identical kind) has unit dilation (Lemma 36's easy direction).
func Identity(from, to grid.Spec) (*Embedding, error) {
	if !from.Shape.Equal(to.Shape) {
		return nil, fmt.Errorf("embed: identity requires equal shapes, got %s and %s", from.Shape, to.Shape)
	}
	e, err := New(from, to, "identity", 1, func(n grid.Node) grid.Node { return n.Clone() })
	if err != nil {
		return nil, err
	}
	e.kernel = identityKernel{}
	return e, nil
}

// Permute returns the coordinate-permutation embedding of G into the
// graph of the same kind whose shape is Apply(p, G.Shape). It is a graph
// isomorphism, hence has unit dilation; the paper uses it as the π, α, τ
// and β glue steps of Sections 4 and 5.
func Permute(from grid.Spec, p perm.Perm, toKind grid.Kind) (*Embedding, error) {
	if len(p) != from.Dim() {
		return nil, fmt.Errorf("embed: permutation length %d does not match dimension %d", len(p), from.Dim())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	toShape := grid.Shape(perm.Apply(p, from.Shape))
	to, err := grid.NewSpec(toKind, toShape)
	if err != nil {
		return nil, err
	}
	pc := append(perm.Perm(nil), p...)
	return NewSeparable(from, to, "permute", 1, func(n grid.Node) grid.Node {
		return grid.Node(perm.Apply(pc, n))
	})
}

// Rotate returns the coordinate-rotation embedding of sp into itself:
// node (x1,...,xd) maps to ((x1+r1) mod l1, ..., (xd+rd) mod ld).
// Offsets are normalized modulo the dimension lengths. On a torus every
// rotation is a graph automorphism (unit dilation, and — because
// dimension-ordered routing commutes with rotation — congestion-neutral
// too). On a mesh a nonzero rotation is merely a node bijection: it
// tears the rotated dimension at the boundary, so no dilation guarantee
// is recorded and the caller must measure. The placement search uses
// mesh rotations as genuine new candidates and skips torus rotations as
// metric-invariant.
func Rotate(sp grid.Spec, offsets []int) (*Embedding, error) {
	if len(offsets) != sp.Dim() {
		return nil, fmt.Errorf("embed: rotation of %d offsets does not match dimension %d", len(offsets), sp.Dim())
	}
	r := make([]int, len(offsets))
	zero := true
	for j, v := range offsets {
		l := sp.Shape[j]
		r[j] = ((v % l) + l) % l
		if r[j] != 0 {
			zero = false
		}
	}
	predicted := 0
	if zero || sp.Kind == grid.Torus {
		predicted = 1
	}
	parts := make([]string, len(r))
	for j, v := range r {
		parts[j] = fmt.Sprintf("%d", v)
	}
	strategy := "rotate(" + strings.Join(parts, ",") + ")"
	shape := sp.Shape.Clone()
	return NewSeparable(sp, sp, strategy, predicted, func(n grid.Node) grid.Node {
		out := make(grid.Node, len(n))
		for j, v := range n {
			out[j] = (v + r[j]) % shape[j]
		}
		return out
	})
}

// FromTable builds an embedding from an explicit guest-index to
// host-index table. The table is the kernel.
func FromTable(from, to grid.Spec, strategy string, predicted int, table []int) (*Embedding, error) {
	if len(table) != from.Size() {
		return nil, fmt.Errorf("embed: table has %d entries, want %d", len(table), from.Size())
	}
	t := append(Table(nil), table...)
	return NewKernel(from, to, strategy, predicted, t)
}
