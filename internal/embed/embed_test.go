package embed

import (
	"strings"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

func TestIdentityEmbedding(t *testing.T) {
	from := grid.MeshSpec(3, 4)
	to := grid.TorusSpec(3, 4)
	e, err := Identity(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("mesh -> same-shape torus dilation = %d, want 1", d)
	}
}

func TestIdentityRejectsShapeMismatch(t *testing.T) {
	if _, err := Identity(grid.MeshSpec(3, 4), grid.MeshSpec(4, 3)); err == nil {
		t.Error("identity accepted different shapes")
	}
}

func TestNewRejectsSizeMismatch(t *testing.T) {
	_, err := New(grid.MeshSpec(3, 4), grid.MeshSpec(3, 5), "x", 0, nil)
	if err == nil {
		t.Error("New accepted mismatched sizes")
	}
}

func TestPermuteIsIsomorphism(t *testing.T) {
	from := grid.TorusSpec(4, 2, 3)
	p := perm.Perm{2, 0, 1} // new shape (3,4,2)
	e, err := Permute(from, p, grid.Torus)
	if err != nil {
		t.Fatal(err)
	}
	if !e.To.Shape.Equal(grid.Shape{3, 4, 2}) {
		t.Fatalf("permuted shape = %s", e.To.Shape)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("permutation dilation = %d, want 1", d)
	}
	// Also mesh -> mesh.
	em, err := Permute(grid.MeshSpec(4, 2, 3), p, grid.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	if d := em.Dilation(); d != 1 {
		t.Errorf("mesh permutation dilation = %d, want 1", d)
	}
}

func TestPermuteValidation(t *testing.T) {
	if _, err := Permute(grid.MeshSpec(2, 3), perm.Perm{0}, grid.Mesh); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := Permute(grid.MeshSpec(2, 3), perm.Perm{0, 0}, grid.Mesh); err == nil {
		t.Error("invalid permutation accepted")
	}
}

func TestCompose(t *testing.T) {
	a := grid.MeshSpec(2, 6)
	p := perm.Perm{1, 0}
	e1, err := Permute(a, p, grid.Mesh) // (2,6) -> (6,2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Identity(e1.To, grid.TorusSpec(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compose(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := c.Dilation(); d != 1 {
		t.Errorf("composed dilation = %d, want 1", d)
	}
	if c.Predicted != 1 {
		t.Errorf("composed predicted = %d, want 1", c.Predicted)
	}
	if !strings.Contains(c.Strategy, "∘") {
		t.Errorf("composed strategy = %q", c.Strategy)
	}
	// Mismatched middle spec.
	e3, _ := Identity(grid.MeshSpec(6, 2), grid.MeshSpec(6, 2))
	if _, err := Compose(e2, e3); err == nil {
		t.Error("Compose accepted mismatched middle specs")
	}
}

func TestComposeAll(t *testing.T) {
	a := grid.MeshSpec(2, 3)
	e1, _ := Identity(a, grid.TorusSpec(2, 3))
	e2, _ := Permute(e1.To, perm.Perm{1, 0}, grid.Torus)
	c, err := ComposeAll(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if c.From.String() != a.String() || !c.To.Shape.Equal(grid.Shape{3, 2}) {
		t.Errorf("ComposeAll endpoints wrong: %s -> %s", c.From, c.To)
	}
	if _, err := ComposeAll(); err == nil {
		t.Error("empty ComposeAll accepted")
	}
}

func TestVerifyCatchesCollisions(t *testing.T) {
	from := grid.LineSpec(4)
	to := grid.LineSpec(4)
	e, err := New(from, to, "collision", 0, func(n grid.Node) grid.Node {
		return grid.Node{0} // everything to node 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err == nil {
		t.Error("Verify accepted non-injective map")
	}
}

func TestVerifyCatchesOutOfBounds(t *testing.T) {
	from := grid.LineSpec(3)
	to := grid.LineSpec(3)
	e, _ := New(from, to, "oob", 0, func(n grid.Node) grid.Node {
		return grid.Node{n[0] + 1}
	})
	if err := e.Verify(); err == nil {
		t.Error("Verify accepted out-of-bounds map")
	}
}

func TestDilationOfReversal(t *testing.T) {
	// Reversing a line is an automorphism: dilation 1.
	from := grid.LineSpec(5)
	e, _ := New(from, from, "reverse", 1, func(n grid.Node) grid.Node {
		return grid.Node{4 - n[0]}
	})
	if d := e.Dilation(); d != 1 {
		t.Errorf("reversal dilation = %d, want 1", d)
	}
	// Ring into line by identity has dilation n-1 (the wrap edge).
	ring := grid.RingSpec(5)
	line := grid.LineSpec(5)
	e2, _ := New(ring, line, "id", 0, func(n grid.Node) grid.Node { return n.Clone() })
	if d := e2.Dilation(); d != 4 {
		t.Errorf("ring->line identity dilation = %d, want 4", d)
	}
}

func TestCheckPredicted(t *testing.T) {
	ring := grid.RingSpec(6)
	line := grid.LineSpec(6)
	e, _ := New(ring, line, "bad-claim", 2, func(n grid.Node) grid.Node { return n.Clone() })
	if _, err := e.CheckPredicted(); err == nil {
		t.Error("CheckPredicted accepted dilation 5 against guarantee 2")
	}
	good, _ := New(ring, grid.RingSpec(6), "id", 1, func(n grid.Node) grid.Node { return n.Clone() })
	if d, err := good.CheckPredicted(); err != nil || d != 1 {
		t.Errorf("CheckPredicted = %d, %v", d, err)
	}
}

func TestTableAndMapIndex(t *testing.T) {
	from := grid.MeshSpec(2, 3)
	p := perm.Perm{1, 0}
	e, _ := Permute(from, p, grid.Mesh)
	table := e.Table()
	if len(table) != 6 {
		t.Fatalf("table len = %d", len(table))
	}
	e2, err := FromTable(from, e.To, "table", 1, table)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Verify(); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 6; x++ {
		if e.MapIndex(x) != e2.MapIndex(x) {
			t.Fatalf("table round trip differs at %d", x)
		}
	}
	if _, err := FromTable(from, e.To, "short", 0, table[:3]); err == nil {
		t.Error("FromTable accepted short table")
	}
}

func TestAverageDilation(t *testing.T) {
	ring := grid.RingSpec(4)
	line := grid.LineSpec(4)
	e, _ := New(ring, line, "id", 0, func(n grid.Node) grid.Node { return n.Clone() })
	// Edges 0-1,1-2,2-3 have distance 1; wrap 3-0 has distance 3.
	want := (1.0 + 1 + 1 + 3) / 4
	if got := e.AverageDilation(); got != want {
		t.Errorf("average dilation = %v, want %v", got, want)
	}
}

func TestRotate(t *testing.T) {
	// Torus rotations are automorphisms: unit dilation, verified.
	tor := grid.TorusSpec(4, 3)
	rot, err := Rotate(tor, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rot.Predicted != 1 {
		t.Errorf("torus rotation predicted %d, want 1", rot.Predicted)
	}
	if err := rot.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := rot.Dilation(); d != 1 {
		t.Errorf("torus rotation dilation %d, want 1", d)
	}
	if got := rot.Map(grid.Node{3, 2}); !got.Equal(grid.Node{0, 1}) {
		t.Errorf("Map(3,2) = %v, want (0,1)", got)
	}

	// Offsets normalize modulo the lengths; all-zero is the identity.
	id, err := Rotate(tor, []int{4, -3})
	if err != nil {
		t.Fatal(err)
	}
	if got := id.Map(grid.Node{1, 1}); !got.Equal(grid.Node{1, 1}) {
		t.Errorf("normalized identity moved (1,1) to %v", got)
	}
	if id.Predicted != 1 {
		t.Errorf("identity rotation predicted %d, want 1", id.Predicted)
	}

	// Mesh rotations are bijections but not automorphisms: the seam of
	// the rotated dimension stretches across the whole axis.
	msh := grid.LineSpec(6)
	tear, err := Rotate(msh, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if tear.Predicted != 0 {
		t.Errorf("mesh rotation predicted %d, want 0 (no guarantee)", tear.Predicted)
	}
	if err := tear.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := tear.Dilation(); d != 5 {
		t.Errorf("line rotation dilation %d, want 5 (the seam edge)", d)
	}

	if _, err := Rotate(tor, []int{1}); err == nil {
		t.Error("offset-length mismatch accepted")
	}
}
