package embed

import (
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// Failure-injection tests: deliberately corrupt valid embeddings and
// check the measurement/verification machinery notices.

func TestCorruptedTableRaisesDilation(t *testing.T) {
	from := grid.LineSpec(9)
	to := grid.MeshSpec(3, 3)
	// The f_L-style snake has dilation 1; swapping two distant entries
	// must raise the measured dilation.
	table := []int{0, 1, 2, 5, 4, 3, 6, 7, 8} // boustrophedon over 3x3
	good, err := FromTable(from, to, "snake", 1, table)
	if err != nil {
		t.Fatal(err)
	}
	if d := good.Dilation(); d != 1 {
		t.Fatalf("baseline snake dilation = %d, want 1", d)
	}
	corrupt := append([]int(nil), table...)
	corrupt[0], corrupt[8] = corrupt[8], corrupt[0]
	bad, err := FromTable(from, to, "corrupt", 1, corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if d := bad.Dilation(); d <= 1 {
		t.Errorf("corrupted table still measures dilation %d", d)
	}
	if _, err := bad.CheckPredicted(); err == nil {
		t.Error("CheckPredicted accepted a broken guarantee")
	}
}

func TestDuplicateTableFailsVerify(t *testing.T) {
	from := grid.LineSpec(4)
	to := grid.LineSpec(4)
	e, err := FromTable(from, to, "dup", 0, []int{0, 1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err == nil {
		t.Error("duplicate table entry passed verification")
	}
}

func TestComposePropagatesCorruption(t *testing.T) {
	a := grid.LineSpec(6)
	b := grid.LineSpec(6)
	rev, _ := New(a, b, "reverse", 1, func(n grid.Node) grid.Node {
		return grid.Node{5 - n[0]}
	})
	// A "shift" that is not injective on the composed domain.
	clamp, _ := New(b, b, "clamp", 1, func(n grid.Node) grid.Node {
		v := n[0]
		if v > 3 {
			v = 3
		}
		return grid.Node{v}
	})
	c, err := Compose(rev, clamp)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err == nil {
		t.Error("composed non-injection passed verification")
	}
}

func TestPermutationEmbeddingKindChange(t *testing.T) {
	// Permute can retarget the kind; a torus permuted into a mesh spec
	// is NOT distance-preserving, and Dilation must reflect that.
	from := grid.TorusSpec(5, 2)
	e, err := Permute(from, perm.Identity(2), grid.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 4 {
		t.Errorf("torus(5x2) identity into mesh: dilation %d, want 4 (wrap edge stretches)", d)
	}
}
