package embed

import (
	"testing"

	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

func TestTableKernelEvalBatch(t *testing.T) {
	k := Table{3, 1, 0, 2}
	src := []int{0, 1, 2, 3, 0}
	dst := make([]int, len(src))
	k.EvalBatch(dst, src)
	want := []int{3, 1, 0, 2, 3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
	// Aliased dst/src must work (chain stages evaluate in place).
	k.EvalBatch(src, src)
	for i := range want {
		if src[i] != want[i] {
			t.Fatalf("in-place dst = %v, want %v", src, want)
		}
	}
}

func TestCompileSeparableMatchesMap(t *testing.T) {
	from := grid.MustSpec(grid.Torus, grid.Shape{4, 2, 3})
	to := grid.MustSpec(grid.Mesh, grid.Shape{3, 4, 2})
	p := perm.Perm{2, 0, 1}
	fn := func(n grid.Node) grid.Node { return grid.Node(perm.Apply(p, n)) }
	k := CompileSeparable(from, to, fn)
	n := from.Size()
	src := make([]int, n)
	dst := make([]int, n)
	for x := range src {
		src[x] = x
	}
	k.EvalBatch(dst, src)
	for x := 0; x < n; x++ {
		want := to.Shape.Index(fn(from.Shape.NodeAt(x)))
		if dst[x] != want {
			t.Fatalf("kernel(%d) = %d, want %d", x, dst[x], want)
		}
	}
}

func TestMaterializationAndFusion(t *testing.T) {
	old := MaterializeThreshold()
	defer SetMaterializeThreshold(old)

	a := grid.MustSpec(grid.Mesh, grid.Shape{4, 2, 3})
	b := grid.MustSpec(grid.Mesh, grid.Shape{3, 4, 2})
	e1, err := Permute(a, perm.Perm{2, 0, 1}, grid.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Permute(e1.To, perm.Perm{1, 2, 0}, grid.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	_ = b

	// Under the threshold both steps materialize; composing the
	// materialized steps must fuse them into a single Table kernel.
	SetMaterializeThreshold(1 << 20)
	if _, ok := e1.Kernel().(Table); !ok {
		t.Fatalf("step 1 kernel is %T, want Table", e1.Kernel())
	}
	if _, ok := e2.Kernel().(Table); !ok {
		t.Fatalf("step 2 kernel is %T, want Table", e2.Kernel())
	}
	c, err := Compose(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.cachedKernel().(Table); !ok {
		t.Fatalf("composed kernel is %T, want fused Table", c.cachedKernel())
	}
	for x := 0; x < a.Size(); x++ {
		want := e2.MapIndex(e1.MapIndex(x))
		if got := c.MapIndex(x); got != want {
			t.Fatalf("fused(%d) = %d, want %d", x, got, want)
		}
	}

	// With materialization disabled the composition must chain, not
	// fuse, and still agree.
	SetMaterializeThreshold(0)
	e3, _ := Permute(a, perm.Perm{2, 0, 1}, grid.Mesh)
	e4, _ := Permute(e3.To, perm.Perm{1, 2, 0}, grid.Mesh)
	c2, err := Compose(e3, e4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Kernel().(Table); ok {
		t.Fatal("composition materialized despite a disabled threshold")
	}
	for x := 0; x < a.Size(); x++ {
		if got, want := c2.MapIndex(x), c.MapIndex(x); got != want {
			t.Fatalf("chained(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestBatchMeasurementMatchesPerNode(t *testing.T) {
	from := grid.MustSpec(grid.Torus, grid.Shape{6, 5, 4})
	to := grid.MustSpec(grid.Mesh, grid.Shape{6, 5, 4})
	e, err := NewSeparable(from, to, "T_L", 2, func(n grid.Node) grid.Node {
		out := make(grid.Node, len(n))
		for i, x := range n {
			out[i] = gray.TN(from.Shape[i], x)
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Dilation(), e.DilationPerNode(); got != want {
		t.Fatalf("batch dilation %d != per-node %d", got, want)
	}
	if got, want := e.AverageDilation(), e.AverageDilationPerNode(); got != want {
		t.Fatalf("batch average %v != per-node %v", got, want)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWithSpecsKeepsKernelAndRejectsShapeChange(t *testing.T) {
	from := grid.MustSpec(grid.Mesh, grid.Shape{2, 2, 2})
	to := grid.MustSpec(grid.Torus, grid.Shape{2, 2, 2})
	e, err := Identity(from, to)
	if err != nil {
		t.Fatal(err)
	}
	w, err := e.WithSpecs(grid.MustSpec(grid.Torus, grid.Shape{2, 2, 2}), from)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.kernel.(identityKernel); !ok {
		t.Fatalf("rewrapped kernel is %T, want identityKernel", w.kernel)
	}
	if _, err := e.WithSpecs(grid.MustSpec(grid.Mesh, grid.Shape{4, 2}), to); err == nil {
		t.Fatal("WithSpecs accepted a shape change")
	}
}

func TestVerifyBatchCatchesAliasedOutOfBounds(t *testing.T) {
	// An image out of bounds coordinate-wise whose rank would alias an
	// in-bounds host node: the kernel must not silently alias it.
	from := grid.MustSpec(grid.Mesh, grid.Shape{3, 3})
	e, err := New(from, from, "alias-oob", 0, func(n grid.Node) grid.Node {
		if n[0] == 2 && n[1] == 2 {
			return grid.Node{1, 5} // rank 8 if naively encoded: 1*3+5
		}
		return n.Clone()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err == nil {
		t.Fatal("Verify accepted an out-of-bounds image that aliases a valid rank")
	}
}

func TestTableReturnsFreshCopy(t *testing.T) {
	// Even with materialization disabled (so the kernel itself is the
	// table), Table() must hand out a copy the caller may mutate.
	old := MaterializeThreshold()
	SetMaterializeThreshold(0)
	defer SetMaterializeThreshold(old)
	line := grid.LineSpec(6)
	e, err := FromTable(line, line, "t", 0, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	tab := e.Table()
	tab[0] = 99
	if got := e.MapIndex(0); got != 0 {
		t.Fatalf("mutating Table() result corrupted the embedding: MapIndex(0) = %d", got)
	}
}

func TestComposedOutOfBoundsReportsNotPanics(t *testing.T) {
	// A closure-built first step that maps one node out of host bounds,
	// composed with a compiled (table/digit) second step: the -1
	// sentinel must flow through the chain — and through table fusion —
	// into a Verify error rather than a negative-index panic.
	line := grid.LineSpec(6)
	bad, err := New(line, line, "oob", 0, func(n grid.Node) grid.Node {
		if n[0] == 3 {
			return grid.Node{7} // out of bounds for line(6)
		}
		return n.Clone()
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Permute(line, perm.Perm{0}, grid.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []int{1 << 20, 0} { // fused table and live chain
		old := MaterializeThreshold()
		SetMaterializeThreshold(threshold)
		c, err := Compose(bad, second)
		if err != nil {
			SetMaterializeThreshold(old)
			t.Fatal(err)
		}
		if err := c.Verify(); err == nil {
			SetMaterializeThreshold(old)
			t.Fatalf("threshold %d: composed out-of-bounds embedding passed Verify", threshold)
		}
		SetMaterializeThreshold(old)
	}
}

// --- Benchmarks: per-node closure walk vs compiled batch kernels ---------
//
// The acceptance gate of the engine: on a >= 32^3-node shape the batch
// path must be at least 2x faster with at least 10x fewer allocs/op
// than the per-node path. Run with:
//
//	go test ./internal/embed -bench Dilation -benchmem

func benchEmbedding(b *testing.B) *Embedding {
	b.Helper()
	from := grid.MustSpec(grid.Torus, grid.Shape{32, 32, 32})
	to := grid.MustSpec(grid.Mesh, grid.Shape{32, 32, 32})
	e, err := NewSeparable(from, to, "bench/T_L", 2, func(n grid.Node) grid.Node {
		out := make(grid.Node, len(n))
		for i, x := range n {
			out[i] = gray.TN(from.Shape[i], x)
		}
		return out
	})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkDilationPerNode(b *testing.B) {
	e := benchEmbedding(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.DilationPerNode(); d != 2 {
			b.Fatalf("dilation %d", d)
		}
	}
}

func BenchmarkDilationBatch(b *testing.B) {
	e := benchEmbedding(b)
	e.Kernel() // materialize outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.Dilation(); d != 2 {
			b.Fatalf("dilation %d", d)
		}
	}
}

func BenchmarkVerifyBatch(b *testing.B) {
	e := benchEmbedding(b)
	e.Kernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPostCompose: fusing a host-rank relabeling onto a base embedding
// must agree with the reference composition of the two embeddings, for
// both materialized and chained (above-threshold) bases.
func TestPostCompose(t *testing.T) {
	g := grid.MustSpec(grid.Torus, grid.Shape{8, 2})
	h := grid.MustSpec(grid.Mesh, grid.Shape{4, 4})
	n := g.Size()
	// A simple rank bijection stands in for a base construction.
	tab := make([]int, n)
	for i := range tab {
		tab[i] = (i*3 + 1) % n
	}
	newBase := func() *Embedding {
		base, err := FromTable(g, h, "base", 0, tab)
		if err != nil {
			t.Fatal(err)
		}
		return base
	}
	// The relabeling under test: a rotation of the host, whose table is
	// a pure host-rank permutation.
	rot, err := Rotate(h, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	post := Materialize(rot.Kernel(), h.Size())
	want, err := Compose(newBase(), rot)
	if err != nil {
		t.Fatal(err)
	}
	check := func(got *Embedding) {
		t.Helper()
		wt, gt := want.Table(), got.Table()
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("table[%d] = %d, want %d", i, gt[i], wt[i])
			}
		}
		// The derived per-node Map must agree with the kernel.
		for x := 0; x < n; x++ {
			if r := got.To.Shape.Index(got.Map(g.Shape.NodeAt(x))); r != wt[x] {
				t.Fatalf("Map(%d) = %d, want %d", x, r, wt[x])
			}
		}
	}
	got, err := PostCompose(newBase(), h, "fused", 0, post)
	if err != nil {
		t.Fatal(err)
	}
	check(got)
	if _, ok := got.Kernel().(Table); !ok {
		t.Error("materialized base did not fuse to a single table")
	}
	// Above the materialization threshold the base stays a chain; the
	// fused embedding must still agree.
	old := MaterializeThreshold()
	SetMaterializeThreshold(0)
	defer SetMaterializeThreshold(old)
	fnBase, err := NewIndexed(g, h, "base", 0, func(x int) int { return tab[x] })
	if err != nil {
		t.Fatal(err)
	}
	got2, err := PostCompose(fnBase, h, "chained", 0, post)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got2.cachedKernel().(Table); ok {
		t.Error("above-threshold base should chain, not materialize")
	}
	check(got2)
	// Size mismatches are rejected.
	if _, err := PostCompose(newBase(), h, "bad", 0, post[:4]); err == nil {
		t.Error("short post table accepted")
	}
	if _, err := PostCompose(newBase(), grid.MustSpec(grid.Mesh, grid.Shape{4, 2}), "bad", 0, post); err == nil {
		t.Error("wrong-size host accepted")
	}
}
