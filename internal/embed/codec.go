package embed

import (
	"encoding/json"
	"fmt"

	"torusmesh/internal/grid"
)

// Encoded is the JSON form of an embedding: enough to reconstruct the
// node map without the constructing code. Table holds, for each guest
// row-major index, the host row-major index.
type Encoded struct {
	GuestKind  string `json:"guest_kind"`
	GuestShape []int  `json:"guest_shape"`
	HostKind   string `json:"host_kind"`
	HostShape  []int  `json:"host_shape"`
	Strategy   string `json:"strategy"`
	Predicted  int    `json:"predicted_dilation"`
	Measured   int    `json:"measured_dilation"`
	Table      []int  `json:"table"`
}

// Export serializes the embedding (including its materialized table and
// measured dilation) as JSON.
func Export(e *Embedding) ([]byte, error) {
	enc := Encoded{
		GuestKind:  e.From.Kind.String(),
		GuestShape: e.From.Shape,
		HostKind:   e.To.Kind.String(),
		HostShape:  e.To.Shape,
		Strategy:   e.Strategy,
		Predicted:  e.Predicted,
		Measured:   e.Dilation(),
		Table:      e.Table(),
	}
	return json.MarshalIndent(enc, "", "  ")
}

// Import reconstructs an embedding from its JSON form and verifies it.
func Import(data []byte) (*Embedding, error) {
	var enc Encoded
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("embed: decoding: %v", err)
	}
	gk, err := grid.ParseKind(enc.GuestKind)
	if err != nil {
		return nil, err
	}
	hk, err := grid.ParseKind(enc.HostKind)
	if err != nil {
		return nil, err
	}
	g, err := grid.NewSpec(gk, grid.Shape(enc.GuestShape))
	if err != nil {
		return nil, fmt.Errorf("embed: guest: %v", err)
	}
	h, err := grid.NewSpec(hk, grid.Shape(enc.HostShape))
	if err != nil {
		return nil, fmt.Errorf("embed: host: %v", err)
	}
	e, err := FromTable(g, h, enc.Strategy, enc.Predicted, enc.Table)
	if err != nil {
		return nil, err
	}
	if err := e.Verify(); err != nil {
		return nil, fmt.Errorf("embed: imported table invalid: %v", err)
	}
	if enc.Measured > 0 {
		if d := e.Dilation(); d != enc.Measured {
			return nil, fmt.Errorf("embed: imported table measures dilation %d but file claims %d", d, enc.Measured)
		}
	}
	return e, nil
}
