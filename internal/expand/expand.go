// Package expand implements the paper's generalized embeddings for
// increasing dimension (Section 4.1): embedding a d-dimensional torus or
// mesh G in a c-dimensional torus or mesh H (d < c) whose shape is an
// *expansion* of G's shape (Definition 30). The embedding functions F_V,
// G_V and H_V (Definition 31) stretch each guest coordinate into a block
// of host coordinates using the basic sequences f, g and h, then a
// coordinate permutation π aligns the blocks with H's shape.
//
// Dilation guarantees (Theorem 32):
//
//	G mesh               -> dilation 1 via π ∘ F_V (optimal)
//	G torus, H torus     -> dilation 1 via π ∘ H_V (optimal)
//	G torus, H mesh      -> dilation 2 via π ∘ G_V (optimal for odd size);
//	                        dilation 1 via π ∘ H_V when an expansion factor
//	                        exists whose lists all have >= 2 components
//	                        with an even first component.
//
// Theorem 33: when H is a hypercube of the same power-of-two size, the
// condition of expansion always holds.
package expand

import (
	"fmt"
	"sort"

	"torusmesh/internal/embed"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
	"torusmesh/internal/radix"
)

// Factor is an expansion factor V = (V1, ..., Vd) of L into M: for every
// i, the product of Vi equals l_i, and the concatenation V1∘...∘Vd is a
// permutation of M (Definition 30).
type Factor [][]int

// Flat returns the concatenation V̄ = V1 ∘ V2 ∘ ... ∘ Vd.
func (f Factor) Flat() grid.Shape {
	var out grid.Shape
	for _, v := range f {
		out = append(out, v...)
	}
	return out
}

// Validate checks that f is an expansion factor of L into M.
func (f Factor) Validate(L, M grid.Shape) error {
	if len(f) != len(L) {
		return fmt.Errorf("expand: factor has %d lists for %d dimensions", len(f), len(L))
	}
	for i, v := range f {
		if len(v) == 0 {
			return fmt.Errorf("expand: factor list %d is empty", i+1)
		}
		prod := 1
		for _, c := range v {
			if c < 2 {
				return fmt.Errorf("expand: factor list %d contains %d; components must be > 1", i+1, c)
			}
			prod *= c
		}
		if prod != L[i] {
			return fmt.Errorf("expand: factor list %d has product %d, want l_%d = %d", i+1, prod, i+1, L[i])
		}
	}
	if !perm.SameMultiset(f.Flat(), M) {
		return fmt.Errorf("expand: flattened factor %v is not a permutation of %v", f.Flat(), M)
	}
	return nil
}

// EvenFirst reports whether every list of the factor has at least two
// components and starts with an even one — the condition under which H_V
// embeds an even-size torus in a mesh with unit dilation (Theorem 32 iii).
func (f Factor) EvenFirst() bool {
	for _, v := range f {
		if len(v) < 2 || v[0]%2 != 0 {
			return false
		}
	}
	return true
}

// Find searches for an expansion factor of L into M. It returns false if
// M is not an expansion of L. The search backtracks over sub-multisets of
// M whose product matches each l_i in turn.
func Find(L, M grid.Shape) (Factor, bool) {
	return find(L, M, false)
}

// FindEvenFirst searches for an expansion factor whose lists all have at
// least two components with an even component present, then rotates an
// even component to the front of each list. Used to achieve unit dilation
// for even-size toruses into meshes.
func FindEvenFirst(L, M grid.Shape) (Factor, bool) {
	f, ok := find(L, M, true)
	if !ok {
		return nil, false
	}
	for _, v := range f {
		for j, c := range v {
			if c%2 == 0 {
				v[0], v[j] = v[j], v[0]
				break
			}
		}
	}
	return f, true
}

// find drives the backtracking. pool holds the remaining components of M
// as (value, count) pairs sorted by value.
func find(L, M grid.Shape, evenFirst bool) (Factor, bool) {
	if len(M) < len(L) {
		return nil, false
	}
	type entry struct{ value, count int }
	counts := map[int]int{}
	for _, m := range M {
		counts[m]++
	}
	values := make([]int, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Ints(values)
	pool := make([]entry, len(values))
	for i, v := range values {
		pool[i] = entry{v, counts[v]}
	}

	factor := make(Factor, len(L))
	var pick func(dim int) bool
	var choose func(dim, idx, prod, count, evens int, acc []int) bool

	// choose assembles one list for dimension dim from pool entries at
	// index >= idx whose product reaches L[dim].
	choose = func(dim, idx, prod, count, evens int, acc []int) bool {
		if prod == L[dim] && count > 0 {
			if !evenFirst || (count >= 2 && evens > 0) {
				factor[dim] = append([]int(nil), acc...)
				if pick(dim + 1) {
					return true
				}
			}
		}
		for i := idx; i < len(pool); i++ {
			e := &pool[i]
			if e.count == 0 || prod*e.value > L[dim] || L[dim]%(prod*e.value) != 0 {
				continue
			}
			e.count--
			ev := evens
			if e.value%2 == 0 {
				ev++
			}
			if choose(dim, i, prod*e.value, count+1, ev, append(acc, e.value)) {
				e.count++
				return true
			}
			e.count++
		}
		return false
	}

	pick = func(dim int) bool {
		if dim == len(L) {
			for _, e := range pool {
				if e.count != 0 {
					return false
				}
			}
			return true
		}
		return choose(dim, 0, 1, 0, 0, nil)
	}

	if !pick(0) {
		return nil, false
	}
	return factor, true
}

// HypercubeFactor returns the expansion factor of Theorem 33: when every
// l_i is a power of two, each dimension expands into its binary factors
// (2, 2, ..., 2). Returns false if some l_i is not a power of two.
func HypercubeFactor(L grid.Shape) (Factor, bool) {
	f := make(Factor, len(L))
	for i, l := range L {
		if l < 2 {
			return nil, false
		}
		var v []int
		for l > 1 {
			if l%2 != 0 {
				return nil, false
			}
			v = append(v, 2)
			l /= 2
		}
		f[i] = v
	}
	return f, true
}

// mapper builds the node map (i1,...,id) -> seq_{V1}(i1) ∘ ... ∘ seq_{Vd}(id).
func mapper(f Factor, seq func(radix.Base, int) grid.Node) func(grid.Node) grid.Node {
	bases := make([]radix.Base, len(f))
	total := 0
	for i, v := range f {
		bases[i] = radix.Base(append([]int(nil), v...))
		total += len(v)
	}
	return func(n grid.Node) grid.Node {
		out := make(grid.Node, 0, total)
		for i, b := range bases {
			out = append(out, seq(b, n[i])...)
		}
		return out
	}
}

// FV returns the map F_V of Definition 31 (f-based; for guest meshes).
func FV(f Factor) func(grid.Node) grid.Node { return mapper(f, gray.F) }

// GV returns the map G_V of Definition 31 (g-based; for guest toruses
// into meshes, dilation 2).
func GV(f Factor) func(grid.Node) grid.Node { return mapper(f, gray.G) }

// HV returns the map H_V of Definition 31 (h-based; for guest toruses
// into toruses always, and into meshes when the factor is even-first).
func HV(f Factor) func(grid.Node) grid.Node { return mapper(f, gray.H) }

// WithFactor builds the full Theorem 32 embedding π ∘ map_V of g into h
// using the given, already validated, expansion factor.
func WithFactor(g, h grid.Spec, f Factor) (*embed.Embedding, error) {
	if err := f.Validate(g.Shape, h.Shape); err != nil {
		return nil, err
	}
	flat := f.Flat()
	pi, ok := perm.Find(flat, h.Shape)
	if !ok {
		return nil, fmt.Errorf("expand: no permutation aligns %v with %v", flat, h.Shape)
	}
	var (
		fn        func(grid.Node) grid.Node
		name      string
		predicted int
	)
	switch {
	case g.Kind == grid.Mesh:
		fn, name, predicted = FV(f), "expansion/π∘F_V", 1
	case h.Kind == grid.Torus:
		fn, name, predicted = HV(f), "expansion/π∘H_V", 1
	case f.EvenFirst():
		fn, name, predicted = HV(f), "expansion/π∘H_V", 1
	default:
		fn, name, predicted = GV(f), "expansion/π∘G_V", 2
	}
	// Every Theorem 32 map is digit-separable: guest coordinate i
	// independently determines its block of host digits, so the whole
	// embedding compiles to a per-digit contribution table.
	return embed.NewSeparable(g, h, name, predicted, func(n grid.Node) grid.Node {
		return grid.Node(perm.Apply(pi, fn(n)))
	})
}

// Embed constructs the best Theorem 32 embedding of g in h, searching for
// an expansion factor (preferring an even-first factor when that upgrades
// a torus-into-mesh embedding from dilation 2 to 1). It fails if the
// shapes do not satisfy the condition of expansion.
func Embed(g, h grid.Spec) (*embed.Embedding, error) {
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("expand: sizes differ: %s vs %s", g, h)
	}
	if g.Dim() >= h.Dim() {
		return nil, fmt.Errorf("expand: expansion needs dim(G) < dim(H), got %d >= %d", g.Dim(), h.Dim())
	}
	if g.Kind == grid.Torus && h.Kind == grid.Mesh && g.Size()%2 == 0 {
		if f, ok := FindEvenFirst(g.Shape, h.Shape); ok {
			return WithFactor(g, h, f)
		}
	}
	f, ok := Find(g.Shape, h.Shape)
	if !ok {
		return nil, fmt.Errorf("expand: %s is not an expansion of %s (Definition 30)", h.Shape, g.Shape)
	}
	return WithFactor(g, h, f)
}

// Predicted returns the dilation Theorem 32 guarantees for the kinds of
// g and h, given whether a unit-cost (even-first) factor is available.
func Predicted(gKind, hKind grid.Kind, evenFirstAvailable bool) int {
	if gKind == grid.Torus && hKind == grid.Mesh && !evenFirstAvailable {
		return 2
	}
	return 1
}
