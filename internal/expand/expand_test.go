package expand

import (
	"testing"
	"testing/quick"

	"torusmesh/internal/grid"
)

func TestFactorValidate(t *testing.T) {
	L := grid.Shape{6, 8, 80}
	M := grid.Shape{2, 4, 3, 8, 5, 4}
	// The worked example below Definition 30.
	f := Factor{{2, 3}, {8}, {4, 5, 4}}
	if err := f.Validate(L, M); err != nil {
		t.Fatalf("paper example rejected: %v", err)
	}
	// A second valid factor from the paper.
	f2 := Factor{{3, 2}, {8}, {5, 4, 4}}
	if err := f2.Validate(L, M); err != nil {
		t.Fatalf("second paper factor rejected: %v", err)
	}
	// Wrong product.
	bad := Factor{{2, 4}, {8}, {4, 5, 4}}
	if err := bad.Validate(L, M); err == nil {
		t.Error("factor with wrong product accepted")
	}
	// Not a permutation of M.
	bad2 := Factor{{6}, {8}, {4, 5, 4}}
	if err := bad2.Validate(L, M); err == nil {
		t.Error("factor not matching M accepted")
	}
}

func TestFindPaperExample(t *testing.T) {
	L := grid.Shape{6, 8, 80}
	M := grid.Shape{2, 4, 3, 8, 5, 4}
	f, ok := Find(L, M)
	if !ok {
		t.Fatal("Find failed on the paper's worked example")
	}
	if err := f.Validate(L, M); err != nil {
		t.Fatal(err)
	}
}

func TestFindRejectsNonExpansion(t *testing.T) {
	if _, ok := Find(grid.Shape{6, 6}, grid.Shape{4, 3, 3}); ok {
		t.Error("found a factor where none exists (4*3*3 = 36 but 4 does not divide 6)")
	}
	if _, ok := Find(grid.Shape{5, 7}, grid.Shape{5, 5, 7}); ok {
		t.Error("found a factor despite size mismatch")
	}
}

func TestFindEvenFirst(t *testing.T) {
	// The Section 4.1 example: L = (6,12), M = (6,3,2,2). The factor
	// ((2,3),(6,2)) is even-first; ((6),(3,2,2)) is not.
	L := grid.Shape{6, 12}
	M := grid.Shape{6, 3, 2, 2}
	f, ok := FindEvenFirst(L, M)
	if !ok {
		t.Fatal("FindEvenFirst failed")
	}
	if err := f.Validate(L, M); err != nil {
		t.Fatal(err)
	}
	if !f.EvenFirst() {
		t.Fatalf("factor %v is not even-first", f)
	}
	// No even-first factor exists when a dimension is odd.
	if _, ok := FindEvenFirst(grid.Shape{9, 4}, grid.Shape{3, 3, 2, 2}); ok {
		t.Error("even-first factor found for odd dimension 9")
	}
	// No even-first factor when a dimension must stay whole.
	if _, ok := FindEvenFirst(grid.Shape{2, 6}, grid.Shape{2, 2, 3}); ok {
		t.Error("even-first factor found although l1=2 cannot split into two components")
	}
}

func TestHypercubeFactor(t *testing.T) {
	f, ok := HypercubeFactor(grid.Shape{4, 8, 2})
	if !ok {
		t.Fatal("HypercubeFactor failed on power-of-two shape")
	}
	if err := f.Validate(grid.Shape{4, 8, 2}, grid.Hypercube(6)); err != nil {
		t.Fatal(err)
	}
	if _, ok := HypercubeFactor(grid.Shape{6, 2}); ok {
		t.Error("HypercubeFactor accepted non-power-of-two length 6")
	}
}

// TestFigure11Embeddings verifies the three embedding functions of
// Figure 11: L = (4,6), M = (2,2,2,3), V = ((2,2),(2,3)). Here the flat
// factor equals M so π is the identity.
func TestFigure11Embeddings(t *testing.T) {
	f := Factor{{2, 2}, {2, 3}}
	L := grid.Shape{4, 6}
	M := grid.Shape{2, 2, 2, 3}
	if err := f.Validate(L, M); err != nil {
		t.Fatal(err)
	}
	fv := FV(f)
	// F_V(1,4) = f_(2,2)(1) ∘ f_(2,3)(4) = (0,1) ∘ (1,1).
	if got := fv(grid.Node{1, 4}); !got.Equal(grid.Node{0, 1, 1, 1}) {
		t.Errorf("F_V(1,4) = %s, want (0,1,1,1)", got)
	}
	gv := GV(f)
	// G_V(3,1) = g_(2,2)(3) ∘ g_(2,3)(1). g_(2,2) = f∘t_4: t_4(3)=1,
	// f(1) = (0,1). g_(2,3)(1) = f(t_6(1)) = f(2) = (0,2).
	if got := gv(grid.Node{3, 1}); !got.Equal(grid.Node{0, 1, 0, 2}) {
		t.Errorf("G_V(3,1) = %s, want (0,1,0,2)", got)
	}
	hv := HV(f)
	// H_V(0,0) = h_(2,2)(0) ∘ h_(2,3)(0) = r values: r_(2,2)(0) = (1,0),
	// r_(2,3)(0) = (1,0).
	if got := hv(grid.Node{0, 0}); !got.Equal(grid.Node{1, 0, 1, 0}) {
		t.Errorf("H_V(0,0) = %s, want (1,0,1,0)", got)
	}
}

// TestTheorem32Dilations sweeps guest/host kind combinations over several
// expandable shape pairs and asserts the exact dilation costs of
// Theorem 32.
func TestTheorem32Dilations(t *testing.T) {
	type pair struct{ L, M grid.Shape }
	pairs := []pair{
		{grid.Shape{4, 6}, grid.Shape{2, 2, 2, 3}},
		{grid.Shape{4, 2, 3}, grid.Shape{2, 2, 2, 3}},
		{grid.Shape{8, 9}, grid.Shape{2, 4, 3, 3}},
		{grid.Shape{12}, grid.Shape{3, 4}},
		{grid.Shape{6, 12}, grid.Shape{6, 3, 2, 2}},
		{grid.Shape{16}, grid.Shape{2, 2, 2, 2}},
		{grid.Shape{9, 25}, grid.Shape{3, 3, 5, 5}},
	}
	for _, p := range pairs {
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			for _, hk := range []grid.Kind{grid.Mesh, grid.Torus} {
				g := grid.MustSpec(gk, p.L)
				h := grid.MustSpec(hk, p.M)
				e, err := Embed(g, h)
				if err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				if err := e.Verify(); err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				d := e.Dilation()
				if d > e.Predicted {
					t.Errorf("%s -> %s: dilation %d exceeds prediction %d", g, h, d, e.Predicted)
				}
				switch {
				case gk == grid.Mesh && d != 1:
					t.Errorf("%s -> %s: mesh guest dilation %d, want 1", g, h, d)
				case gk == grid.Torus && hk == grid.Torus && d != 1:
					t.Errorf("%s -> %s: torus->torus dilation %d, want 1", g, h, d)
				case gk == grid.Torus && hk == grid.Mesh && d > 2:
					t.Errorf("%s -> %s: torus->mesh dilation %d, want <= 2", g, h, d)
				}
			}
		}
	}
}

// TestEvenTorusIntoMeshUnitDilation reproduces the Section 4.1 factor
// ablation: a (6,12)-torus embeds in a (6,3,2,2)-mesh with dilation 1
// when the even-first factor is used (and Embed finds it automatically).
func TestEvenTorusIntoMeshUnitDilation(t *testing.T) {
	g := grid.TorusSpec(6, 12)
	h := grid.MeshSpec(6, 3, 2, 2)
	e, err := Embed(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("dilation = %d, want 1 via even-first H_V", d)
	}
	// The non-even-first factor gives dilation 2 (the paper's contrast).
	f := Factor{{6}, {3, 2, 2}}
	e2, err := WithFactor(g, h, f)
	if err != nil {
		t.Fatal(err)
	}
	if d := e2.Dilation(); d != 2 {
		t.Errorf("G_V factor ((6),(3,2,2)) dilation = %d, want 2", d)
	}
}

// TestOddTorusIntoMeshDilation2 checks the optimal dilation-2 case:
// a torus of odd size into a mesh can never achieve dilation 1
// (Theorem 32 iii), and our embedding achieves exactly 2.
func TestOddTorusIntoMeshDilation2(t *testing.T) {
	g := grid.TorusSpec(9, 25)
	h := grid.MeshSpec(3, 3, 5, 5)
	e, err := Embed(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 2 {
		t.Errorf("odd torus -> mesh dilation = %d, want 2", d)
	}
}

func TestEmbedRejections(t *testing.T) {
	if _, err := Embed(grid.MeshSpec(4, 6), grid.MeshSpec(4, 6, 2)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Embed(grid.MeshSpec(2, 2, 2), grid.MeshSpec(4, 2)); err == nil {
		t.Error("dimension-lowering pair accepted by expansion")
	}
	if _, err := Embed(grid.MeshSpec(6, 6), grid.MeshSpec(4, 3, 3)); err == nil {
		t.Error("non-expansion pair accepted")
	}
}

// TestPropertyHypercubeTargets: any mesh with power-of-two lengths embeds
// in the hypercube of the same size with unit dilation (Corollary 34).
func TestPropertyHypercubeTargets(t *testing.T) {
	err := quick.Check(func(raw [3]uint8) bool {
		exps := [3]int{int(raw[0]%2) + 2, int(raw[1]%2) + 2, int(raw[2]%2) + 2}
		L := grid.Shape{1 << exps[0], 1 << exps[1], 1 << exps[2]}
		total := exps[0] + exps[1] + exps[2]
		H := grid.Hypercube(total)
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			e, err := Embed(grid.MustSpec(gk, L), grid.MustSpec(grid.Torus, H))
			if err != nil || e.Verify() != nil || e.Dilation() != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
