package catalog

import (
	"testing"

	"torusmesh/internal/core"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

func TestShapesOfSize(t *testing.T) {
	// 12 = 12 | 2x6 | 6x2 | 3x4 | 4x3 | 2x2x3 | 2x3x2 | 3x2x2.
	shapes := ShapesOfSize(12, 0)
	if len(shapes) != 8 {
		t.Fatalf("ShapesOfSize(12) returned %d shapes: %v", len(shapes), shapes)
	}
	for _, s := range shapes {
		if s.Size() != 12 {
			t.Errorf("shape %s has size %d", s, s.Size())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("shape %s invalid: %v", s, err)
		}
	}
	// Cap at 2 dimensions.
	capped := ShapesOfSize(12, 2)
	if len(capped) != 5 {
		t.Errorf("ShapesOfSize(12, maxDim=2) returned %d shapes: %v", len(capped), capped)
	}
	if got := ShapesOfSize(1, 0); got != nil {
		t.Error("size 1 should return nothing")
	}
	// Primes have exactly one shape.
	if got := ShapesOfSize(7, 0); len(got) != 1 || got[0].Size() != 7 {
		t.Errorf("ShapesOfSize(7) = %v", got)
	}
}

func TestCanonicalShapesOfSize(t *testing.T) {
	// Canonical for 12: 12 | 6x2 | 4x3 | 3x2x2.
	shapes := CanonicalShapesOfSize(12, 0)
	if len(shapes) != 4 {
		t.Fatalf("CanonicalShapesOfSize(12) = %v", shapes)
	}
	for _, s := range shapes {
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1] {
				t.Errorf("shape %s not non-increasing", s)
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	census := Coverage(16, 0, func(g, h grid.Spec) (string, error) {
		e, err := core.Embed(g, h)
		if err != nil {
			return "", err
		}
		return e.Strategy, nil
	})
	if census.Shapes != 5 {
		// 16 | 8x2 | 4x4 | 4x2x2 | 2x2x2x2
		t.Errorf("census shapes = %d, want 5", census.Shapes)
	}
	if census.Pairs != 5*5*4 {
		t.Errorf("census pairs = %d, want 100", census.Pairs)
	}
	// Power-of-two sizes are fully covered: every pair is expandable,
	// reducible or square (hypercube glue).
	if census.Embeddable != census.Pairs {
		t.Errorf("census embeddable = %d of %d; power-of-two families should be total", census.Embeddable, census.Pairs)
	}
	if len(census.ByStrategy) == 0 {
		t.Error("census recorded no strategies")
	}
	total := 0
	for _, c := range census.ByStrategy {
		total += c
	}
	if total != census.Embeddable {
		t.Errorf("strategy counts sum to %d, want %d", total, census.Embeddable)
	}
}

func TestAxisOrderings(t *testing.T) {
	// 4x2x4 has three distinct orderings: (4,2,4), (4,4,2), (2,4,4).
	got := AxisOrderings(grid.Shape{4, 2, 4})
	if len(got) != 3 {
		t.Fatalf("AxisOrderings(4x2x4) has %d entries, want 3", len(got))
	}
	id := perm.Identity(3)
	for i := range id {
		if got[0][i] != id[i] {
			t.Fatalf("AxisOrderings(4x2x4)[0] = %v, want identity", got[0])
		}
	}
	shapes := map[string]bool{}
	for _, p := range got {
		shapes[grid.Shape(perm.Apply(p, grid.Shape{4, 2, 4})).String()] = true
	}
	for _, want := range []string{"4x2x4", "4x4x2", "2x4x4"} {
		if !shapes[want] {
			t.Errorf("ordering %s missing from %v", want, shapes)
		}
	}
	// All-equal shapes collapse to the identity alone.
	if got := AxisOrderings(grid.Shape{2, 2, 2, 2}); len(got) != 1 {
		t.Errorf("AxisOrderings(hypercube) has %d entries, want 1", len(got))
	}
}
