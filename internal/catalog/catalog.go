// Package catalog enumerates torus/mesh shapes of a given size — the
// ordered factorizations of n into parts greater than 1. It powers the
// coverage census (which fraction of same-size shape pairs the paper's
// conditions of expansion/reduction/squareness actually cover) and the
// integration sweeps in the test suite.
package catalog

import (
	"fmt"
	"sort"

	"torusmesh/internal/census"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// ShapesOfSize returns every shape (ordered composition of factors >= 2)
// whose product is n, optionally capped at maxDim dimensions
// (maxDim <= 0 means unlimited). Shapes are returned in deterministic
// order: by dimension, then lexicographically.
func ShapesOfSize(n, maxDim int) []grid.Shape {
	if n < 2 {
		return nil
	}
	var out []grid.Shape
	var cur grid.Shape
	var rec func(rem int)
	rec = func(rem int) {
		if rem == 1 {
			shape := cur.Clone()
			out = append(out, shape)
			return
		}
		if maxDim > 0 && len(cur) == maxDim {
			return
		}
		for f := 2; f <= rem; f++ {
			if rem%f != 0 {
				continue
			}
			cur = append(cur, f)
			rec(rem / f)
			cur = cur[:len(cur)-1]
		}
	}
	rec(n)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// CanonicalShapesOfSize returns one representative per multiset of
// factors (non-increasing order), since permuted shapes are isomorphic
// graphs. Ordered by dimension then lexicographically.
func CanonicalShapesOfSize(n, maxDim int) []grid.Shape {
	all := ShapesOfSize(n, maxDim)
	seen := map[string]bool{}
	var out []grid.Shape
	for _, s := range all {
		c := s.Clone()
		sort.Sort(sort.Reverse(sort.IntSlice(c)))
		key := c.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// AxisOrderings returns one permutation per distinct ordering of the
// shape's dimension lengths, in lexicographic order of the permutations,
// with the identity first. Two permutations that produce the same
// permuted shape differ only by swapping equal-length axes — on the
// guest side of an embedding that is a graph automorphism, which leaves
// every placement metric unchanged, so the placement search enumerates
// only one representative. (On the host side the full permutation group
// matters: swapping equal-length host axes reorders dimension-ordered
// routing and changes congestion; use perm.All there.)
func AxisOrderings(s grid.Shape) []perm.Perm {
	seen := map[string]bool{}
	var out []perm.Perm
	for _, p := range perm.All(s.Dim()) {
		key := grid.Shape(perm.Apply(p, s)).String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}

// Census summarizes how many ordered pairs of canonical shapes of size n
// each embedding strategy covers.
type Census struct {
	Size       int
	Shapes     int
	Pairs      int            // ordered pairs of (canonical shape, kind) x (canonical shape, kind)
	Embeddable int            // pairs for which some construction applies
	ByStrategy map[string]int // strategy prefix -> count
}

// Coverage runs the census for size n using the given embed function
// (typically core.Embed). Strategy names are truncated at the first '/'
// or '[' (census.StrategyKey) so variants group together. It is a thin
// veneer over the sharded census engine: a single-shard, metrics-off
// census.Run whose rich features (sharding, per-pair dilation and
// congestion metrics, mergeable JSON artifacts) live in internal/census.
//
// The engine stripes pairs across a worker pool, so embed is called
// concurrently and must be safe for concurrent use (core.Embed is);
// closures must not mutate shared state without synchronization.
func Coverage(n, maxDim int, embed func(g, h grid.Spec) (string, error)) Census {
	shapes := CanonicalShapesOfSize(n, maxDim)
	c, err := census.Run(census.Config{
		Size:     n,
		MaxDim:   maxDim,
		Shapes:   shapes,
		Strategy: embed,
	})
	if err != nil {
		// Run fails only on misconfiguration, which this veneer cannot
		// produce: the shapes come from the enumeration it validates
		// against.
		panic(fmt.Sprintf("catalog: coverage census misconfigured: %v", err))
	}
	return Census{
		Size:       n,
		Shapes:     len(shapes),
		Pairs:      c.Pairs,
		Embeddable: c.Embeddable,
		ByStrategy: c.ByStrategy,
	}
}
