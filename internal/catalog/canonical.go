// Canonical-pair keying for the placement-serving layer: two requests
// whose (guest, host) pairs differ only by symmetries that provably
// preserve every placement metric must share one cache entry, with a
// recorded permutation to translate placements back to the caller's
// labeling on the way out.
//
// Which symmetries qualify is deliberately asymmetric:
//
//   - Guest axis order is canonicalized (lengths sorted non-increasing,
//     the CanonicalShapesOfSize representative). Relabeling guest axes
//     is a graph isomorphism, so composing a placement with it maps the
//     guest edge set onto the same multiset of (src, dst) host pairs:
//     dilation, every link load, and hence the whole Pareto front carry
//     over exactly.
//   - Hypercube kinds fold to Torus. On all-2 shapes torus and mesh are
//     the same graph (grid deduplicates the coinciding wrap edge), and
//     dimension-ordered routing differs only in which of the two
//     directed links between a coinciding node pair carries the hop
//     (the torus router breaks the length-2 tie toward the + step),
//     a relabeling of links that preserves the load multiset — MaxLink,
//     TotalHops, UsedLinks and the hop histogram are all unchanged.
//   - Host axis order is NOT canonicalized. Dimension-ordered routing
//     corrects host axes in index order, so relabeling host axes
//     genuinely changes link loads — it is the very symmetry the
//     placement search's host-permutation generator enumerates
//     (AxisOrderings' doc note). Folding it into the key would serve
//     congestion numbers the caller's own labeling cannot reproduce.
//
// Canonicalization is idempotent and deterministic, so the key is a
// pure function of the pair and canonicalizing twice equals once — the
// properties FuzzCanonicalPair pins.

package catalog

import (
	"fmt"
	"sort"

	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// canonicalKind folds the hypercube coincidence: on all-2 shapes torus
// and mesh are the same graph, keyed as Torus.
func canonicalKind(sp grid.Spec) grid.Kind {
	if sp.Shape.IsHypercube() {
		return grid.Torus
	}
	return sp.Kind
}

// CanonicalGuest returns the canonical form of a guest spec — axis
// lengths sorted non-increasing, hypercube kind folded to torus — plus
// the normalizing permutation p with
//
//	canonical.Shape = perm.Apply(p, s.Shape).
//
// The sort is stable (equal lengths keep their relative order), so p is
// deterministic and the identity whenever s is already canonical.
func CanonicalGuest(s grid.Spec) (grid.Spec, perm.Perm) {
	d := s.Dim()
	p := make(perm.Perm, d)
	for i := range p {
		p[i] = i
	}
	sort.SliceStable(p, func(a, b int) bool { return s.Shape[p[a]] > s.Shape[p[b]] })
	canon := grid.Spec{Kind: canonicalKind(s), Shape: perm.Apply(p, []int(s.Shape))}
	return canon, p
}

// CanonicalHost returns the canonical form of a host spec: only the
// hypercube kind fold — host axis order is metrically significant (see
// the file comment) and passes through untouched. The returned
// permutation is always the identity, carried so PairKey treats both
// sides uniformly.
func CanonicalHost(s grid.Spec) (grid.Spec, perm.Perm) {
	canon := grid.Spec{Kind: canonicalKind(s), Shape: s.Shape.Clone()}
	return canon, perm.Identity(s.Dim())
}

// PairKey is the canonical identity of one (guest, host) placement pair:
// the canonical specs, plus the normalizing axis permutations that
// translate between the caller's labeling and the canonical one.
// Construct it with CanonicalPair; the fields are exported for tests.
type PairKey struct {
	// Guest and Host are the canonical pair the key denotes — the pair
	// a search actually runs on.
	Guest, Host grid.Spec
	// GuestPerm and HostPerm are the normalizing permutations:
	// Guest.Shape = Apply(GuestPerm, userGuest.Shape), and likewise for
	// the host (where the permutation is currently always the
	// identity).
	GuestPerm, HostPerm perm.Perm
}

// CanonicalPair canonicalizes one placement pair. It fails when either
// shape is invalid or the sizes differ — the same validation a search
// would apply, surfaced before any cache lookup.
func CanonicalPair(g, h grid.Spec) (PairKey, error) {
	if err := g.Shape.Validate(); err != nil {
		return PairKey{}, fmt.Errorf("catalog: guest: %v", err)
	}
	if err := h.Shape.Validate(); err != nil {
		return PairKey{}, fmt.Errorf("catalog: host: %v", err)
	}
	if g.Size() != h.Size() {
		return PairKey{}, fmt.Errorf("catalog: guest %s has %d nodes but host %s has %d; sizes must match",
			g, g.Size(), h, h.Size())
	}
	k := PairKey{}
	k.Guest, k.GuestPerm = CanonicalGuest(g)
	k.Host, k.HostPerm = CanonicalHost(h)
	return k, nil
}

// String renders the cache-key form, e.g. "torus:8x2->mesh:4x4". Two
// pairs share a cache entry exactly when their keys render equally.
func (k PairKey) String() string {
	return fmt.Sprintf("%s:%s->%s:%s", k.Guest.Kind, k.Guest.Shape, k.Host.Kind, k.Host.Shape)
}

// Identity reports whether the key's pair already is canonical — no
// translation needed in either direction.
func (k PairKey) Identity() bool {
	for i, v := range k.GuestPerm {
		if v != i {
			return false
		}
	}
	for i, v := range k.HostPerm {
		if v != i {
			return false
		}
	}
	return true
}

// rankMap returns the rank translation of an axis relabeling: the rank
// in the permuted shape Apply(p, from) of the node holding rank r in
// from.
func rankMap(from grid.Shape, p perm.Perm) func(r int) int {
	to := grid.Shape(perm.Apply(p, []int(from)))
	node := make(grid.Node, from.Dim())
	permuted := make(grid.Node, from.Dim())
	return func(r int) int {
		from.NodeInto(node, r)
		perm.ApplyInto(p, node, permuted)
		return to.Index(permuted)
	}
}

// DenormalizePlacement translates a placement of the canonical pair
// (table[canonical guest rank] = canonical host rank) into the caller's
// original labeling. The result places the caller's guest on the
// caller's host with exactly the costs measured on the canonical pair:
// guest relabeling is a graph isomorphism and the host translation is
// the identity (see the file comment), so the routed (src, dst)
// multiset — and with it dilation, peak and per-link loads — is
// unchanged. NormalizePlacement inverts it.
func (k PairKey) DenormalizePlacement(table []int) []int {
	guestToCanon := rankMap(grid.Shape(perm.Apply(k.GuestPerm.Inverse(), []int(k.Guest.Shape))), k.GuestPerm)
	canonToUserHost := rankMap(k.Host.Shape, k.HostPerm.Inverse())
	out := make([]int, len(table))
	for r := range out {
		out[r] = canonToUserHost(table[guestToCanon(r)])
	}
	return out
}

// NormalizePlacement translates a placement given in the caller's
// labeling into the canonical pair's labeling — the inverse of
// DenormalizePlacement.
func (k PairKey) NormalizePlacement(table []int) []int {
	canonToUserGuest := rankMap(k.Guest.Shape, k.GuestPerm.Inverse())
	userToCanonHost := rankMap(grid.Shape(perm.Apply(k.HostPerm.Inverse(), []int(k.Host.Shape))), k.HostPerm)
	out := make([]int, len(table))
	for r := range out {
		out[r] = userToCanonHost(table[canonToUserGuest(r)])
	}
	return out
}
