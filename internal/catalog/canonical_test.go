package catalog

import (
	"math/rand"
	"reflect"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/perm"
	"torusmesh/internal/taskgraph"
)

func TestCanonicalGuestSortsAxes(t *testing.T) {
	cases := []struct {
		in        grid.Spec
		wantSpec  string
		wantIdent bool
	}{
		{grid.TorusSpec(8, 2), "torus(8x2)", true},
		{grid.TorusSpec(2, 8), "torus(8x2)", false},
		{grid.MeshSpec(3, 4, 2), "mesh(4x3x2)", false},
		{grid.MeshSpec(4, 3, 2), "mesh(4x3x2)", true},
		{grid.TorusSpec(2, 2, 2), "torus(2x2x2)", true},
		{grid.MeshSpec(2, 2, 2), "torus(2x2x2)", false}, // hypercube kind fold
		{grid.RingSpec(16), "ring(16)", true},
	}
	for _, tc := range cases {
		canon, p := CanonicalGuest(tc.in)
		if canon.String() != tc.wantSpec {
			t.Errorf("CanonicalGuest(%s) = %s, want %s", tc.in, canon, tc.wantSpec)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("CanonicalGuest(%s) perm invalid: %v", tc.in, err)
		}
		if got := grid.Shape(perm.Apply(p, []int(tc.in.Shape))); !got.Equal(canon.Shape) {
			t.Errorf("CanonicalGuest(%s): Apply(perm, shape) = %v, want %v", tc.in, got, canon.Shape)
		}
		ident := reflect.DeepEqual(p, perm.Identity(tc.in.Dim())) && tc.in.Kind == canon.Kind
		if ident != tc.wantIdent {
			t.Errorf("CanonicalGuest(%s) identity = %v, want %v (perm %v)", tc.in, ident, tc.wantIdent, p)
		}
	}
}

func TestCanonicalHostKeepsAxisOrder(t *testing.T) {
	h := grid.MeshSpec(2, 4, 2)
	canon, p := CanonicalHost(h)
	if canon.String() != "mesh(2x4x2)" {
		t.Fatalf("CanonicalHost(%s) = %s; host axis order is metrically significant and must not sort", h, canon)
	}
	if !reflect.DeepEqual(p, perm.Identity(3)) {
		t.Fatalf("CanonicalHost perm = %v, want identity", p)
	}
	hc, _ := CanonicalHost(grid.MeshSpec(2, 2, 2))
	if hc.Kind != grid.Torus {
		t.Fatalf("CanonicalHost(mesh(2x2x2)).Kind = %v, want the hypercube fold to torus", hc.Kind)
	}
}

func TestCanonicalPairKeySharing(t *testing.T) {
	base, err := CanonicalPair(grid.TorusSpec(8, 2), grid.MeshSpec(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := base.String(); got != "torus:8x2->mesh:4x4" {
		t.Fatalf("key = %q, want torus:8x2->mesh:4x4", got)
	}
	if !base.Identity() {
		t.Fatal("canonical pair should report Identity()")
	}
	relabeled, err := CanonicalPair(grid.TorusSpec(2, 8), grid.MeshSpec(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if relabeled.String() != base.String() {
		t.Fatalf("guest relabeling changed the key: %q vs %q", relabeled.String(), base.String())
	}
	if relabeled.Identity() {
		t.Fatal("relabeled pair must carry a non-identity guest perm")
	}
	// Host relabelings are distinct keys on purpose.
	hostRelabeled, err := CanonicalPair(grid.TorusSpec(8, 2), grid.MeshSpec(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if hostRelabeled.String() == base.String() {
		t.Fatal("host axis relabeling must NOT share a key (routing is labeling-sensitive)")
	}
}

func TestCanonicalPairRejectsMismatch(t *testing.T) {
	if _, err := CanonicalPair(grid.TorusSpec(8, 2), grid.MeshSpec(4, 2)); err == nil {
		t.Fatal("size mismatch must fail")
	}
	if _, err := CanonicalPair(grid.Spec{Kind: grid.Torus, Shape: grid.Shape{1, 4}}, grid.MeshSpec(2, 2)); err == nil {
		t.Fatal("invalid shape must fail")
	}
}

// TestDenormalizePreservesMetrics is the load-bearing theorem of
// canonical-pair keying: a placement measured on the canonical pair,
// translated back to the caller's labeling, must measure identically
// there — dilation and the full congestion stats.
func TestDenormalizePreservesMetrics(t *testing.T) {
	cases := []struct{ ug, uh grid.Spec }{
		{grid.TorusSpec(2, 8), grid.MeshSpec(4, 4)},       // guest axis sort
		{grid.MeshSpec(3, 2, 4), grid.TorusSpec(6, 4)},    // 3-d guest sort
		{grid.MeshSpec(2, 2, 2, 2), grid.MeshSpec(4, 4)},  // hypercube guest kind fold
		{grid.TorusSpec(4, 4), grid.MeshSpec(2, 2, 2, 2)}, // hypercube host kind fold
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		k, err := CanonicalPair(tc.ug, tc.uh)
		if err != nil {
			t.Fatal(err)
		}
		n := k.Guest.Size()
		for trial := 0; trial < 4; trial++ {
			canonTable := rng.Perm(n)
			userTable := k.DenormalizePlacement(canonTable)
			if got := k.NormalizePlacement(userTable); !reflect.DeepEqual(got, canonTable) {
				t.Fatalf("%s->%s: normalize(denormalize(t)) != t", tc.ug, tc.uh)
			}
			canonStats, err := netsim.Congestion(netsim.New(k.Host), taskgraph.FromSpec(k.Guest), canonTable)
			if err != nil {
				t.Fatal(err)
			}
			userStats, err := netsim.Congestion(netsim.New(tc.uh), taskgraph.FromSpec(tc.ug), userTable)
			if err != nil {
				t.Fatal(err)
			}
			if canonStats != userStats {
				t.Fatalf("%s->%s: congestion drifted across denormalization: canonical %+v, user %+v",
					tc.ug, tc.uh, canonStats, userStats)
			}
			if cd, ud := tableDilation(k.Guest, k.Host, canonTable), tableDilation(tc.ug, tc.uh, userTable); cd != ud {
				t.Fatalf("%s->%s: dilation drifted across denormalization: canonical %d, user %d", tc.ug, tc.uh, cd, ud)
			}
		}
	}
}

// tableDilation measures the worst edge stretch of a placement table
// directly from the grid distance function.
func tableDilation(g, h grid.Spec, table []int) int {
	max := 0
	g.VisitEdges(func(a, b grid.Node) {
		d := h.DistanceRank(table[g.Shape.Index(a)], table[g.Shape.Index(b)])
		if d > max {
			max = d
		}
	})
	return max
}

// fuzzShape decodes a byte slice into a valid small shape: 1..4 axes of
// length 2..9, total size capped so the placement round-trip stays
// cheap.
func fuzzShape(dims []byte) grid.Shape {
	var s grid.Shape
	size := 1
	for _, b := range dims {
		if len(s) == 4 {
			break
		}
		l := 2 + int(b%8)
		if size*l > 2048 {
			break
		}
		s = append(s, l)
		size *= l
	}
	if len(s) == 0 {
		s = grid.Shape{2}
	}
	return s
}

// FuzzCanonicalPair pins the canonical-key algebra: canonicalizing
// twice equals once, every guest axis relabeling (and hypercube kind
// swap) of a pair lands on the same key, and the de-normalizing
// permutation round-trips placements bijectively.
func FuzzCanonicalPair(f *testing.F) {
	f.Add(false, true, []byte{6, 0}, byte(1), int64(1))
	f.Add(true, true, []byte{0, 0, 0}, byte(0), int64(7))
	f.Add(false, false, []byte{2, 1, 3}, byte(5), int64(42))
	f.Fuzz(func(t *testing.T, gTorus, hTorus bool, dims []byte, hostPick byte, seed int64) {
		gShape := fuzzShape(dims)
		hostShapes := ShapesOfSize(gShape.Size(), 3)
		if len(hostShapes) == 0 {
			t.Skip()
		}
		kind := func(torus bool) grid.Kind {
			if torus {
				return grid.Torus
			}
			return grid.Mesh
		}
		g := grid.Spec{Kind: kind(gTorus), Shape: gShape}
		h := grid.Spec{Kind: kind(hTorus), Shape: hostShapes[int(hostPick)%len(hostShapes)]}
		k, err := CanonicalPair(g, h)
		if err != nil {
			t.Fatalf("CanonicalPair(%s, %s): %v", g, h, err)
		}
		// Canonicalize twice = once, with identity perms the second time.
		k2, err := CanonicalPair(k.Guest, k.Host)
		if err != nil {
			t.Fatalf("re-canonicalizing %s failed: %v", k, err)
		}
		if k2.String() != k.String() || !k2.Identity() {
			t.Fatalf("canonicalization not idempotent: %s -> %s (identity=%v)", k, k2, k2.Identity())
		}
		// Every guest axis relabeling shares the key.
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 3; trial++ {
			p := perm.Perm(rng.Perm(g.Dim()))
			rg := grid.Spec{Kind: g.Kind, Shape: perm.Apply(p, []int(g.Shape))}
			rk, err := CanonicalPair(rg, h)
			if err != nil {
				t.Fatalf("CanonicalPair(%s, %s): %v", rg, h, err)
			}
			if rk.String() != k.String() {
				t.Fatalf("guest relabeling %v changed the key: %s vs %s", p, rk, k)
			}
		}
		// Hypercube guests share the key across kinds.
		if g.Shape.IsHypercube() {
			flip := grid.Spec{Kind: kind(!gTorus), Shape: g.Shape}
			fk, err := CanonicalPair(flip, h)
			if err != nil {
				t.Fatal(err)
			}
			if fk.String() != k.String() {
				t.Fatalf("hypercube kind flip changed the key: %s vs %s", fk, k)
			}
		}
		// The de-normalizing permutation round-trips placements and
		// preserves injectivity.
		n := k.Guest.Size()
		canonTable := rng.Perm(n)
		userTable := k.DenormalizePlacement(canonTable)
		seen := make([]bool, n)
		for _, v := range userTable {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("denormalized table is not a bijection: %v", userTable)
			}
			seen[v] = true
		}
		if got := k.NormalizePlacement(userTable); !reflect.DeepEqual(got, canonTable) {
			t.Fatalf("normalize(denormalize(t)) != t for %s", k)
		}
	})
}
