// Package par is the tiny worker-pool substrate behind the batch
// measurement paths: it stripes a half-open index range across
// GOMAXPROCS goroutines in contiguous grains. It exists so that the
// embedding engine, the network simulator and the sweeps all share one
// deterministic-by-construction parallel loop instead of each growing
// an ad-hoc one. Callers must make the per-grain work independent
// (disjoint writes, or commutative merges guarded by the caller).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of goroutines Blocks uses: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Blocks splits [0, n) into contiguous spans of length grain (the last
// span may be shorter) and calls fn(lo, hi) for every span from a pool
// of Workers() goroutines. Spans are claimed with an atomic cursor, so
// the assignment of spans to goroutines is dynamic but the set of spans
// is fixed. fn must be safe for concurrent invocation on disjoint
// spans. When n fits in a single grain, or only one worker is
// available, fn runs inline on the calling goroutine.
func Blocks(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	workers := Workers()
	if n <= grain || workers <= 1 {
		fn(0, n)
		return
	}
	spans := (n + grain - 1) / grain
	if workers > spans {
		workers = spans
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				s := int(cursor.Add(1)) - 1
				if s >= spans {
					return
				}
				lo := s * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Grain picks a span length for striping n items: large enough to
// amortize scheduling (at least min), small enough that every worker
// gets several spans for load balance.
func Grain(n, min int) int {
	if min < 1 {
		min = 1
	}
	g := n / (4 * Workers())
	if g < min {
		g = min
	}
	return g
}
