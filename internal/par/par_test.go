package par

import (
	"sync"
	"testing"
)

func TestBlocksCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4096, 100003} {
		seen := make([]int32, n)
		var mu sync.Mutex
		covered := 0
		Blocks(n, 64, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
				return
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Lock()
			covered += hi - lo
			mu.Unlock()
		})
		if covered != n {
			t.Fatalf("n=%d: covered %d items", n, covered)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestBlocksInlineSmall(t *testing.T) {
	calls := 0
	Blocks(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("want single span [0,10), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("want 1 call, got %d", calls)
	}
}

func TestGrain(t *testing.T) {
	if g := Grain(10, 64); g != 64 {
		t.Fatalf("small n should clamp to min, got %d", g)
	}
	if g := Grain(1<<20, 64); g < 64 {
		t.Fatalf("grain below min: %d", g)
	}
}
