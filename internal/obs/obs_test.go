package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same identity returns the same instrument.
	if r.Counter("x_total") != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestLabelIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("served_total", L("tier", "baseline"))
	b := r.Counter("served_total", L("tier", "searched"))
	if a == b {
		t.Fatalf("distinct label sets shared one counter")
	}
	// Label order must not matter.
	c1 := r.Counter("m_total", L("a", "1"), L("b", "2"))
	c2 := r.Counter("m_total", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Fatalf("label order changed metric identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 102.65 {
		t.Fatalf("sum = %g, want 102.65", got)
	}
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive upper edges).
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a histogram with different buckets did not panic")
		}
	}()
	r.Histogram("h", []float64{1, 3})
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("req_total", "Requests served.")
	r.Counter("req_total", L("tier", "baseline")).Add(3)
	r.Counter("req_total", L("tier", "searched")).Inc()
	r.Gauge("queue_depth").Set(2)
	r.GaugeFunc("uptime_seconds", func() float64 { return 12.5 })
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 5.55
lat_seconds_count 3
# TYPE queue_depth gauge
queue_depth 2
# HELP req_total Requests served.
# TYPE req_total counter
req_total{tier="baseline"} 3
req_total{tier="searched"} 1
# TYPE uptime_seconds gauge
uptime_seconds 12.5
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}

	// Determinism: a second render is byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Fatalf("repeated exposition differs")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", L("k", "v")).Add(2)
	h := r.Histogram("h_seconds", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	snap := r.Snapshot()
	if snap.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version = %d", snap.SchemaVersion)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(snap.Metrics))
	}
	c := snap.Metrics[0]
	if c.Name != "a_total" || c.Kind != "counter" || c.Labels["k"] != "v" || *c.Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", c)
	}
	hs := snap.Metrics[1]
	if hs.Kind != "histogram" || *hs.Count != 2 || *hs.Sum != 3.5 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if len(hs.Buckets) != 2 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 {
		t.Fatalf("histogram buckets wrong: %+v", hs.Buckets)
	}
	// The snapshot must round-trip through JSON.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", L("msg", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `e_total{msg="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped exposition missing:\n%s", b.String())
	}
	snap := r.Snapshot()
	if got := snap.Metrics[0].Labels["msg"]; got != "a\"b\\c\nd" {
		t.Fatalf("snapshot unescape = %q", got)
	}
}

func TestMount(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total").Inc()
	mux := http.NewServeMux()
	Mount(mux, r, true)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "m_total 1") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/statusz"); code != 200 || !strings.Contains(body, `"m_total"`) {
		t.Fatalf("/statusz: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h_seconds", []float64{1, 2})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", []float64{1, 2}).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", []float64{1, 2}).Sum(); got != 12000 {
		t.Fatalf("histogram sum = %g, want 12000", got)
	}
}
