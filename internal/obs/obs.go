// Package obs is the cross-engine observability spine: a small,
// dependency-free metrics subsystem every engine instruments itself
// through. A Registry holds named metrics — monotone Counters, settable
// Gauges, callback Gauges, and fixed-bucket Histograms — and renders
// them in two exposition formats: Prometheus text (the /metrics
// endpoint of cmd/placed and cmd/sweepd) and a versioned JSON snapshot
// (/statusz). Opt-in net/http/pprof wiring rides along on the same
// Mount helper, so every long-running CLI grows profiling and metrics
// with one call.
//
// The design rule that shapes the API is "hot paths stay hot": every
// mutation (Counter.Add, Gauge.Set, Histogram.Observe) is a lock-free
// atomic with zero allocations, gated by the allocs tests next to this
// file, so the annealing move loop and the routing inner loops can be
// instrumented without losing their zero-alloc steady state. All the
// locking lives at registration (once, at startup) and at export
// (rare, human-paced).
//
// Exposition is deterministic: metrics sort by (name, rendered
// labels), label keys sort within a metric, and numbers render in one
// canonical form — which is what lets end-to-end tests pin an exact
// /metrics fixture for a known request sequence.
//
// Naming scheme (documented in ARCHITECTURE.md): every metric is
// prefixed by the engine that owns it (placed_, sweepd_, place_,
// census_, embed_), counters end in _total, histograms of durations
// end in _seconds, and gauges name the instantaneous quantity bare
// (e.g. placed_search_queue_depth). Variants of one logical metric use
// labels, not name suffixes: placed_tier_served_total{tier="baseline"}.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric. Variants of one
// logical metric (tiers, endpoints, shards) share a name and differ in
// labels.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric. All methods
// are lock-free atomics safe for concurrent use; Add and Inc never
// allocate.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they are applied as
// given so the bug is visible rather than masked).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable integer metric. All methods are lock-free
// atomics safe for concurrent use and never allocate.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Observe is a
// lock-free atomic scan over the (small, fixed) bucket bounds with no
// allocations. Bounds are upper bucket edges in increasing order; an
// implicit +Inf bucket catches the tail, and exposition renders the
// Prometheus cumulative form.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; counts[i] = observations in (bounds[i-1], bounds[i]]
	sum    atomic.Uint64  // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper edges (excluding the implicit +Inf).
// The returned slice is shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor — the usual shape for latencies.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefDurationBuckets is the default bucket set for _seconds histograms:
// 1ms to ~4min in powers of 4 — wide enough for both HTTP latencies and
// background search wall times.
func DefDurationBuckets() []float64 { return ExpBuckets(0.001, 4, 10) }

// kind discriminates the metric types in one registry slot.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// metric is one registered slot: a name, rendered labels, and exactly
// one of the typed instruments. Instruments are created under the
// registry mutex and immutable afterwards, so exporters read them
// without holding it; the callback of a GaugeFunc is the one field a
// re-registration may replace, hence the atomic pointer.
type metric struct {
	name   string
	labels string // canonical `key="value",...` rendering, "" for none
	kind   kind

	counter *Counter
	gauge   *Gauge
	fn      atomic.Pointer[func() float64]
	hist    *Histogram
}

// gauge reads the live value of a callback gauge.
func (m *metric) gaugeValue() float64 { return (*m.fn.Load())() }

// Registry is a named set of metrics. Registration methods are
// get-or-create: asking twice for the same (name, labels) identity
// returns the same instrument, so package-level metrics and
// server-level metrics can share one registry without coordination.
// Asking for the same identity as a different kind panics — that is
// always a naming bug, and it would silently corrupt the exposition.
//
// The zero value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // identity (name + labels) -> slot
	help    map[string]string  // name -> HELP text
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: map[string]*metric{},
		help:    map[string]string{},
	}
}

// defaultRegistry is the process-wide registry engine-level metrics
// (place, census, embed) register into; the long-running CLIs expose
// it so background work shows on the same /metrics page as the
// server's own counters.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// renderLabels canonicalizes a label set: keys sorted, values escaped
// the way the Prometheus text format requires.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func identity(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// lookup finds or creates the slot for an identity, enforcing kind
// consistency. init runs under the registry mutex — on the create and
// the get path both — so instrument construction and re-registration
// validation are atomic with the map access (two goroutines racing to
// register one identity must end up sharing one instrument).
func (r *Registry) lookup(name string, labels []Label, k kind, init func(m *metric)) *metric {
	ls := renderLabels(labels)
	id := identity(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metrics[id]
	if m != nil {
		if m.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", id, k, m.kind))
		}
	} else {
		m = &metric{name: name, labels: ls, kind: k}
		r.metrics[id] = m
	}
	init(m)
	return m
}

// Counter returns the counter registered under (name, labels),
// creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	m := r.lookup(name, labels, kindCounter, func(m *metric) {
		if m.counter == nil {
			m.counter = &Counter{}
		}
	})
	return m.counter
}

// Gauge returns the gauge registered under (name, labels), creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	m := r.lookup(name, labels, kindGauge, func(m *metric) {
		if m.gauge == nil {
			m.gauge = &Gauge{}
		}
	})
	return m.gauge
}

// GaugeFunc registers a callback gauge: fn is read at exposition time,
// so the metric always reports the live value (uptimes, queue depths
// derived from other state). Re-registering the same identity replaces
// the callback. fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	r.lookup(name, labels, kindGaugeFunc, func(m *metric) {
		m.fn.Store(&fn)
	})
}

// Histogram returns the histogram registered under (name, labels) with
// the given bucket upper bounds (strictly increasing; an implicit +Inf
// bucket is appended), creating it on first use. Re-registering must
// use equal bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing: %v", name, bounds))
		}
	}
	m := r.lookup(name, labels, kindHistogram, func(m *metric) {
		if m.hist == nil {
			b := append([]float64(nil), bounds...)
			m.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
			return
		}
		if len(m.hist.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
		}
		for i := range bounds {
			if m.hist.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %s re-registered with different buckets", name))
			}
		}
	})
	return m.hist
}

// Describe attaches HELP text to a metric name; the exposition emits
// it once per name.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// sorted returns the registered slots ordered by (name, labels) — the
// deterministic exposition order — plus the help map snapshot.
func (r *Registry) sorted() ([]*metric, map[string]string) {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	return ms, help
}
