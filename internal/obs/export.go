package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// SnapshotSchemaVersion is the /statusz JSON schema token; bump on any
// incompatible change.
const SnapshotSchemaVersion = 1

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic for a
// fixed metric state: metrics sort by (name, labels), HELP/TYPE lines
// are emitted once per name group, and histograms render the
// cumulative _bucket/_sum/_count form.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ms, help := r.sorted()
	var b strings.Builder
	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			if h := help[m.name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			writeSample(&b, m.name, m.labels, "", float64(m.counter.Value()))
		case kindGauge:
			writeSample(&b, m.name, m.labels, "", float64(m.gauge.Value()))
		case kindGaugeFunc:
			writeSample(&b, m.name, m.labels, "", m.gaugeValue())
		case kindHistogram:
			writeHistogram(&b, m)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(b *strings.Builder, name, labels, extra string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, m *metric) {
	h := m.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, m.name+"_bucket", m.labels, `le="`+formatValue(bound)+`"`, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, m.name+"_bucket", m.labels, `le="+Inf"`, float64(cum))
	writeSample(b, m.name+"_sum", m.labels, "", h.Sum())
	writeSample(b, m.name+"_count", m.labels, "", float64(cum))
}

// formatValue renders a float in the canonical exposition form:
// integers without a fractional part, everything else via the shortest
// round-trip representation.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SnapshotMetric is one metric in the JSON snapshot.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Kind   string            `json:"kind"`

	// Counter / gauge value (kind "counter" or "gauge").
	Value *float64 `json:"value,omitempty"`

	// Histogram fields (kind "histogram"). Buckets holds the
	// per-bucket (non-cumulative) counts; Bounds the upper edges, with
	// the final +Inf bucket implied.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
	Sum     *float64  `json:"sum,omitempty"`
	Count   *int64    `json:"count,omitempty"`
}

// Snapshot is the /statusz JSON document.
type Snapshot struct {
	SchemaVersion int              `json:"schema_version"`
	Metrics       []SnapshotMetric `json:"metrics"`
}

// Snapshot captures every registered metric in deterministic order.
func (r *Registry) Snapshot() Snapshot {
	ms, _ := r.sorted()
	out := Snapshot{SchemaVersion: SnapshotSchemaVersion, Metrics: make([]SnapshotMetric, 0, len(ms))}
	for _, m := range ms {
		sm := SnapshotMetric{Name: m.name, Kind: m.kind.String(), Labels: parseLabels(m.labels)}
		switch m.kind {
		case kindCounter:
			v := float64(m.counter.Value())
			sm.Value = &v
		case kindGauge:
			v := float64(m.gauge.Value())
			sm.Value = &v
		case kindGaugeFunc:
			v := m.gaugeValue()
			sm.Value = &v
		case kindHistogram:
			h := m.hist
			sm.Bounds = h.Bounds()
			sm.Buckets = make([]int64, len(h.counts))
			var count int64
			for i := range h.counts {
				sm.Buckets[i] = h.counts[i].Load()
				count += sm.Buckets[i]
			}
			sum := h.Sum()
			sm.Sum = &sum
			sm.Count = &count
		}
		out.Metrics = append(out.Metrics, sm)
	}
	return out
}

// parseLabels inverts renderLabels for the JSON snapshot. The rendered
// form is trusted (we produced it); values were escaped, so unescape.
func parseLabels(rendered string) map[string]string {
	if rendered == "" {
		return nil
	}
	out := map[string]string{}
	rest := rendered
	for rest != "" {
		eq := strings.Index(rest, `="`)
		key := rest[:eq]
		rest = rest[eq+2:]
		// Find the closing quote, skipping escaped characters.
		var val strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		out[key] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return out
}

// Handler serves the Prometheus text exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// StatuszHandler serves the JSON snapshot.
func StatuszHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// Mount registers the observability endpoints on mux: /metrics
// (Prometheus text) and /statusz (JSON snapshot), plus the
// /debug/pprof/ suite when withPprof is set. pprof is opt-in because
// it exposes goroutine stacks and heap contents — fine on a loopback
// debug port, not something to ship on by default.
func Mount(mux *http.ServeMux, r *Registry, withPprof bool) {
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/statusz", StatuszHandler(r))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
