package obs

// Allocation regression gates for the instrument hot paths, in the
// same shape as internal/netsim's: these are the operations the anneal
// move loop and the serve request path call per-event, so they must
// stay allocation-free. CI reruns them by name (-run 'Allocs').

import "testing"

func TestCounterIncAllocs(t *testing.T) {
	c := NewRegistry().Counter("c_total")
	c.Inc() // warm
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
}

func TestGaugeSetAllocs(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(1) // warm
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op, want 0", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds", DefDurationBuckets())
	h.Observe(0.01) // warm
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}
