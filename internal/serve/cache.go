// The persistent cache: one place artifact per canonical pair, plus a
// sidecar binding the directory to the search spec that produced it.
// Files are the exact bytes place.Result.EncodeBytes() returns — the
// same bytes `place -json` writes — so a cache directory and a batch
// search's output are interchangeable in both directions.

package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"torusmesh/internal/catalog"
	"torusmesh/internal/grid"
	"torusmesh/internal/place"
)

// specFileName is the sidecar binding a cache directory to one search
// spec. Artifacts do not record every Spec() token (budget and cap
// are in the artifact, annealing knobs are, but strategies are named
// only indirectly), so the sidecar is what makes a mismatched reuse a
// startup error instead of silently served wrong fronts.
const specFileName = "place.spec"

// keyFileReplacer renders a pair key as a filename:
// "torus:8x2->mesh:4x4" becomes "torus-8x2__mesh-4x4.json".
var keyFileReplacer = strings.NewReplacer("->", "__", ":", "-")

func fileName(id string) string { return keyFileReplacer.Replace(id) + ".json" }

// parseArtifactSpec parses the rendered grid.Spec.String() form the
// artifacts record — "torus(8x2)", "ring(24)" — by translating it to
// the colon form grid.ParseSpec accepts.
func parseArtifactSpec(s string) (grid.Spec, error) {
	return grid.ParseSpec(strings.NewReplacer("(", ":", ")", "").Replace(s))
}

// openCache binds the server to its cache directory: creates it,
// writes or verifies the spec sidecar, and restores every stored
// front. Runs before the workers start, so no locking is needed.
func (s *Server) openCache() error {
	dir := s.cfg.CacheDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: cache dir: %v", err)
	}
	specPath := filepath.Join(dir, specFileName)
	switch b, err := os.ReadFile(specPath); {
	case err == nil:
		if got := strings.TrimSpace(string(b)); got != s.spec {
			return fmt.Errorf("serve: cache dir %s holds fronts searched under a different spec\n  cache:  %s\n  server: %s",
				dir, got, s.spec)
		}
	case errors.Is(err, os.ErrNotExist):
		if err := os.WriteFile(specPath, []byte(s.spec+"\n"), 0o644); err != nil {
			return fmt.Errorf("serve: write cache spec: %v", err)
		}
	default:
		return fmt.Errorf("serve: read cache spec: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := s.loadEntry(p); err != nil {
			s.cacheLoadErrors.Add(1)
			s.cfg.Log("serve: skipping cache file %s: %v", p, err)
		}
	}
	return nil
}

// loadEntry restores one stored front as an already-searched entry.
// The pair key is re-derived from the artifact's own guest/host
// fields and must both be canonical and match the filename, so a
// renamed or foreign artifact is skipped instead of shadowing a pair.
func (s *Server) loadEntry(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := place.Decode(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	g, err := parseArtifactSpec(res.Guest)
	if err != nil {
		return err
	}
	h, err := parseArtifactSpec(res.Host)
	if err != nil {
		return err
	}
	key, err := catalog.CanonicalPair(g, h)
	if err != nil {
		return err
	}
	if !key.Identity() {
		return fmt.Errorf("artifact pair %s->%s is not canonical", res.Guest, res.Host)
	}
	if want := fileName(key.String()); want != filepath.Base(path) {
		return fmt.Errorf("file name does not match its pair key (want %s)", want)
	}
	e, err := newEntry(key)
	if err != nil {
		return err
	}
	e.res = res
	e.artifact = raw
	e.state.Store(int32(SearchDone))
	close(e.done)
	s.entries[e.id] = e
	s.cacheLoaded.Add(1)
	return nil
}

// store persists one searched entry's artifact atomically (write to a
// temp file in the directory, then rename): a crash mid-write leaves
// at worst a .tmp file the next load ignores, never a torn artifact.
func (s *Server) store(e *entry) error {
	if s.cfg.CacheDir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.CacheDir, fileName(e.id))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, e.artifact, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
