// Package serve is the serving engine: it turns the batch placement
// pipeline into a long-running service answering "place guest G on
// host H" at interactive latency.
//
// The serving model is two-tier. Every request is first normalized to
// its canonical pair (catalog.CanonicalPair), so all relabelings that
// provably share a Pareto front share one cache entry. A hit returns
// the stored searched front; a miss answers immediately with the
// paper-baseline embedding (the first strategy at identity symmetries
// — the same candidate a search reports as Baseline) while exactly one
// background search per canonical pair runs to upgrade the entry.
// Concurrent misses are deduplicated by the entry map itself: the
// request that creates the entry enqueues the one search, every other
// request joins it.
//
// Entries persist as the versioned place artifact, bit-for-bit the
// bytes `place -pareto -json` writes for the same pair and settings,
// so the cache directory is interchangeable with batch search output.
// A directory is bound to one search spec (place.Config.Spec(), kept
// in a sidecar file); opening it under different settings is refused
// rather than silently serving fronts from another objective.
//
// Every counter the server keeps lives on an obs.Registry — the same
// instruments back both the /status JSON snapshot and the Prometheus
// /metrics exposition, so the two can never disagree. When the
// background search queue exceeds Config.MaxQueue, cold-pair requests
// are refused with ErrBacklogged (HTTP 429 + Retry-After) instead of
// growing the queue without bound.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/obs"
	"torusmesh/internal/place"
	"torusmesh/internal/taskgraph"
)

// Sentinel errors, wrapped by Place so the HTTP layer can map them to
// status codes without string matching.
var (
	// ErrClosed reports a request against a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadPair reports a pair that cannot be canonicalized: invalid
	// shapes or mismatched sizes.
	ErrBadPair = errors.New("serve: invalid pair")
	// ErrUnembeddable reports a pair the baseline strategy cannot
	// embed — there is nothing to serve at either tier.
	ErrUnembeddable = errors.New("serve: pair has no baseline embedding")
	// ErrBacklogged reports a cold-pair request refused because the
	// background search queue is at Config.MaxQueue. The concrete error
	// carries a Retry-After hint; the HTTP layer maps it to 429.
	ErrBacklogged = errors.New("serve: search queue full")
)

// backpressureError is the concrete ErrBacklogged: it remembers the
// Retry-After hint derived from the queue depth at refusal time.
type backpressureError struct {
	depth      int
	retryAfter time.Duration
}

func (e *backpressureError) Error() string {
	return fmt.Sprintf("serve: search queue full (%d queued); retry in %s", e.depth, e.retryAfter)
}

func (e *backpressureError) Is(target error) bool { return target == ErrBacklogged }

// Config describes one server.
type Config struct {
	// Place is the search-settings template: its Guest and Host are
	// overwritten per pair, everything else (objective, budget, cap,
	// generators, annealing knobs, strategies) applies to every search
	// the server runs. Strategies[0] is also the baseline tier.
	Place place.Config
	// CacheDir, when set, persists every searched front as a place
	// artifact and reloads the directory on startup. The directory is
	// bound to Place.Spec() via a sidecar file; a mismatch fails New.
	CacheDir string
	// SearchWorkers is the number of concurrent background searches
	// (<= 0 means 1).
	SearchWorkers int
	// MaxQueue bounds the background search queue: when more than
	// MaxQueue searches are waiting for a worker, cold-pair requests
	// fail with ErrBacklogged instead of enqueuing (<= 0 means
	// unbounded). Census warming is exempt — it is an operator action,
	// not request traffic.
	MaxQueue int
	// Registry receives the server's metrics (and serves /metrics and
	// /statusz on the Handler). Nil means a private registry — tests
	// and embedded servers stay isolated; cmd/placed passes
	// obs.Default() so engine-level metrics share the page.
	Registry *obs.Registry
	// Pprof opts the Handler into the /debug/pprof/ suite.
	Pprof bool
	// Log, when set, receives diagnostic lines (cache skips, search
	// failures, census mismatches). Nil discards them.
	Log func(format string, args ...any)

	// searchFn substitutes the search function in tests; nil means
	// place.Search.
	searchFn func(place.Config) (*place.Result, error)
	// now substitutes the clock in tests; nil means time.Now. Uptime,
	// time-to-upgrade and latency histograms all read it, which is what
	// makes the /metrics exposition exactly reproducible under test.
	now func() time.Time
}

// SearchState is the lifecycle of one entry's background search.
type SearchState int32

const (
	// SearchQueued: the search is enqueued but no worker has picked it
	// up yet.
	SearchQueued SearchState = iota
	// SearchRunning: a worker is searching the pair now.
	SearchRunning
	// SearchDone: the searched front is available (terminal).
	SearchDone
	// SearchFailed: the search failed; the error is cached and the
	// entry keeps serving the baseline tier (terminal — search is
	// deterministic, so retrying cannot help).
	SearchFailed
)

func (s SearchState) String() string {
	switch s {
	case SearchQueued:
		return "queued"
	case SearchRunning:
		return "running"
	case SearchDone:
		return "done"
	case SearchFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Tier labels which answer tier a response carries.
type Tier string

const (
	// TierBaseline is the instant tier: the paper construction,
	// measured but not searched.
	TierBaseline Tier = "baseline"
	// TierSearched is the upgraded tier: the full Pareto front.
	TierSearched Tier = "searched"
)

// entry is one canonical pair's cache slot. The done channel settles
// exactly once — when the background search finishes (either way) or,
// for entries loaded from disk, before the entry is published — and
// res/artifact/searchErr are written strictly before it closes, so
// readers that observed <-done need no lock.
type entry struct {
	key catalog.PairKey // canonical pair, identity perms
	id  string          // key.String()

	// created is when the entry (and so its background search) was
	// enqueued; the time-to-upgrade histogram measures from here.
	created time.Time

	baselineOnce sync.Once
	baseline     *place.Candidate
	baselineErr  error

	state atomic.Int32 // SearchState
	done  chan struct{}

	res       *place.Result
	artifact  []byte
	searchErr error

	// warm is the winner summary recorded by the census this entry was
	// pre-seeded from, when that census ran under the server's exact
	// search spec; the finished search is cross-checked against it.
	warm *census.PlaceSummary

	// table memoizes the winner's canonical placement table (built on
	// demand: entries loaded from disk re-derive it by re-running the
	// deterministic search).
	tableMu sync.Mutex
	table   []int
}

// Server is the cache-backed placement service. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	cfg       Config
	spec      string // cfg.Place.Spec()
	objective place.Objective
	search    func(place.Config) (*place.Result, error)
	now       func() time.Time
	start     time.Time
	reg       *obs.Registry

	mu       sync.Mutex
	entries  map[string]*entry
	pending  []*entry
	cond     *sync.Cond
	inflight int
	closed   bool

	wg       sync.WaitGroup // workers
	searchWG sync.WaitGroup // queued or running searches (Flush)

	// All counters live on reg so /status and /metrics read the same
	// instruments.
	requests        *obs.Counter
	tierBaseline    *obs.Counter
	tierSearched    *obs.Counter
	misses          *obs.Counter
	deduped         *obs.Counter
	backpressure    *obs.Counter
	searches        *obs.Counter
	searchFailures  *obs.Counter
	warmQueued      *obs.Counter
	warmMismatches  *obs.Counter
	cacheLoaded     *obs.Counter
	cacheLoadErrors *obs.Counter
	ttuSeconds      *obs.Histogram
	searchSeconds   *obs.Histogram
}

// New builds a server, loads the persistent cache (when configured)
// and starts the background search workers.
func New(cfg Config) (*Server, error) {
	if len(cfg.Place.Strategies) == 0 {
		return nil, errors.New("serve: at least one strategy is required")
	}
	if cfg.SearchWorkers <= 0 {
		cfg.SearchWorkers = 1
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	search := cfg.searchFn
	if search == nil {
		search = place.Search
	}
	obj := cfg.Place.Objective
	if (obj == place.Objective{}) {
		obj = place.DefaultObjective()
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		spec:      cfg.Place.Spec(),
		objective: obj,
		search:    search,
		now:       now,
		start:     now(),
		reg:       reg,
		entries:   map[string]*entry{},
	}
	s.registerMetrics()
	s.cond = sync.NewCond(&s.mu)
	if cfg.CacheDir != "" {
		if err := s.openCache(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.SearchWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerMetrics creates the server's instruments on its registry.
// Names follow the repo scheme (ARCHITECTURE.md "Observability"):
// placed_ prefix, _total counters, _seconds duration histograms,
// labeled variants for tiers and endpoints.
func (s *Server) registerMetrics() {
	r := s.reg
	r.Describe("placed_requests_total", "Place calls received.")
	s.requests = r.Counter("placed_requests_total")
	r.Describe("placed_tier_served_total", "Answers served, by tier.")
	s.tierBaseline = r.Counter("placed_tier_served_total", obs.L("tier", string(TierBaseline)))
	s.tierSearched = r.Counter("placed_tier_served_total", obs.L("tier", string(TierSearched)))
	r.Describe("placed_cache_misses_total", "Requests that created a cache entry (and its background search).")
	s.misses = r.Counter("placed_cache_misses_total")
	r.Describe("placed_singleflight_dedup_total", "Requests that joined an already-running or queued search instead of starting one.")
	s.deduped = r.Counter("placed_singleflight_dedup_total")
	r.Describe("placed_backpressure_total", "Cold-pair requests refused with 429 because the search queue was full.")
	s.backpressure = r.Counter("placed_backpressure_total")
	r.Describe("placed_searches_total", "Background searches started.")
	s.searches = r.Counter("placed_searches_total")
	r.Describe("placed_search_failures_total", "Background searches that failed.")
	s.searchFailures = r.Counter("placed_search_failures_total")
	r.Describe("placed_warm_queued_total", "Searches enqueued by census warming.")
	s.warmQueued = r.Counter("placed_warm_queued_total")
	r.Describe("placed_warm_mismatches_total", "Warm searches whose winner disagreed with the census's recorded winner.")
	s.warmMismatches = r.Counter("placed_warm_mismatches_total")
	r.Describe("placed_cache_loaded_total", "Entries restored from the cache directory at startup.")
	s.cacheLoaded = r.Counter("placed_cache_loaded_total")
	r.Describe("placed_cache_load_errors_total", "Cache files skipped as unreadable at startup.")
	s.cacheLoadErrors = r.Counter("placed_cache_load_errors_total")
	r.Describe("placed_time_to_upgrade_seconds", "Time from entry creation to searched-tier availability.")
	s.ttuSeconds = r.Histogram("placed_time_to_upgrade_seconds", obs.DefDurationBuckets())
	r.Describe("placed_search_seconds", "Background search wall time.")
	s.searchSeconds = r.Histogram("placed_search_seconds", obs.DefDurationBuckets())

	r.Describe("placed_uptime_seconds", "Seconds since the server started.")
	r.GaugeFunc("placed_uptime_seconds", func() float64 { return s.now().Sub(s.start).Seconds() })
	r.Describe("placed_search_queue_depth", "Searches waiting for a worker.")
	r.GaugeFunc("placed_search_queue_depth", func() float64 {
		s.mu.Lock()
		d := len(s.pending)
		s.mu.Unlock()
		return float64(d)
	})
	r.Describe("placed_searches_inflight", "Searches running right now.")
	r.GaugeFunc("placed_searches_inflight", func() float64 {
		s.mu.Lock()
		d := s.inflight
		s.mu.Unlock()
		return float64(d)
	})
}

// Spec returns the canonical search-settings string every entry of
// this server is produced under.
func (s *Server) Spec() string { return s.spec }

// Registry returns the registry the server's metrics live on.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Answer is one resolved placement request.
type Answer struct {
	// Key is the request's canonical identity, carrying the
	// permutations that translate placements back to the caller's
	// labeling.
	Key catalog.PairKey
	// Tier says which tier answered; State and SearchErr describe the
	// background search either way.
	Tier      Tier
	State     SearchState
	SearchErr error
	// Baseline is set on the baseline tier, Result and Artifact (the
	// exact stored artifact bytes) on the searched tier.
	Baseline *place.Candidate
	Result   *place.Result
	Artifact []byte

	e *entry
}

// Place answers one request. The first request for a cold canonical
// pair creates its entry and enqueues the single background search;
// with wait=false it returns the baseline tier immediately, with
// wait=true it blocks (under ctx) until the search settles. Requests
// for searched pairs return the stored front.
func (s *Server) Place(ctx context.Context, g, h grid.Spec, wait bool) (*Answer, error) {
	s.requests.Inc()
	key, err := catalog.CanonicalPair(g, h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	e, created, err := s.lookup(key)
	if err != nil {
		return nil, err
	}
	if created {
		s.misses.Inc()
	} else if st := SearchState(e.state.Load()); st == SearchQueued || st == SearchRunning {
		s.deduped.Inc()
	}
	if wait {
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if SearchState(e.state.Load()) == SearchDone {
		s.tierSearched.Inc()
		return &Answer{
			Key:      key,
			Tier:     TierSearched,
			State:    SearchDone,
			Result:   e.res,
			Artifact: e.artifact,
			e:        e,
		}, nil
	}
	e.baselineOnce.Do(func() { e.baseline, e.baselineErr = s.buildBaseline(e) })
	if e.baselineErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnembeddable, e.baselineErr)
	}
	s.tierBaseline.Inc()
	a := &Answer{
		Key:      key,
		Tier:     TierBaseline,
		State:    SearchState(e.state.Load()),
		Baseline: e.baseline,
		e:        e,
	}
	if a.State == SearchFailed {
		a.SearchErr = e.searchErr
	}
	return a, nil
}

// lookup returns the entry for a canonical key, creating it — and
// enqueuing its one background search — when absent. The created
// return is true only for the request that created the entry, which
// is what makes the dedup singleflight: every later concurrent caller
// lands on the same entry and no second search exists to join. A
// would-be creation against a full queue is refused with
// ErrBacklogged instead.
func (s *Server) lookup(key catalog.PairKey) (*entry, bool, error) {
	id := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if e := s.entries[id]; e != nil {
		return e, false, nil
	}
	if s.cfg.MaxQueue > 0 && len(s.pending) >= s.cfg.MaxQueue {
		s.backpressure.Inc()
		return nil, false, &backpressureError{
			depth:      len(s.pending),
			retryAfter: s.retryAfterLocked(),
		}
	}
	e, err := newEntry(key)
	if err != nil {
		return nil, false, err
	}
	e.created = s.now()
	s.entries[id] = e
	s.enqueueLocked(e)
	return e, true, nil
}

// retryAfterLocked estimates how long a refused client should wait:
// one queue-drain's worth of searches per worker, floored at a second.
// It is a hint, not a promise — the point is to spread retries.
func (s *Server) retryAfterLocked() time.Duration {
	waves := len(s.pending)/s.cfg.SearchWorkers + 1
	return time.Duration(waves) * time.Second
}

// newEntry builds the cache slot for a key's canonical pair. The
// entry's own key is re-canonicalized so it carries identity
// permutations regardless of the labeling of the request that created
// it.
func newEntry(key catalog.PairKey) (*entry, error) {
	canon, err := catalog.CanonicalPair(key.Guest, key.Host)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	return &entry{key: canon, id: canon.String(), done: make(chan struct{})}, nil
}

func (s *Server) enqueueLocked(e *entry) {
	s.pending = append(s.pending, e)
	s.searchWG.Add(1)
	s.cond.Signal()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		e := s.pending[0]
		s.pending = s.pending[1:]
		s.inflight++
		s.mu.Unlock()
		s.runSearch(e)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
		s.searchWG.Done()
	}
}

// runSearch upgrades one entry: the full placement search on the
// canonical pair, encoded to the artifact bytes the cache persists.
func (s *Server) runSearch(e *entry) {
	started := s.now()
	e.state.Store(int32(SearchRunning))
	s.searches.Inc()
	cfg := s.cfg.Place
	cfg.Guest, cfg.Host = e.key.Guest, e.key.Host
	res, err := s.search(cfg)
	var artifact []byte
	if err == nil {
		artifact, err = res.EncodeBytes()
	}
	if err != nil {
		e.searchErr = err
		e.state.Store(int32(SearchFailed))
		s.searchFailures.Inc()
		s.searchSeconds.Observe(s.now().Sub(started).Seconds())
		s.cfg.Log("serve: search %s failed: %v", e.id, err)
		close(e.done)
		return
	}
	if res.BestEmbedding != nil {
		// Keep the winner's placement table for ?table requests, drop
		// the embedding itself (its kernels can hold materialized
		// tables for the whole candidate cache).
		e.table = res.BestEmbedding.Table()
		res.BestEmbedding = nil
	}
	e.res = res
	e.artifact = artifact
	if e.warm != nil {
		if got := place.Summary(res.Best); *got != *e.warm {
			s.warmMismatches.Inc()
			s.cfg.Log("serve: census winner for %s disagrees with search: census %+v, search %+v",
				e.id, *e.warm, *got)
		}
	}
	e.state.Store(int32(SearchDone))
	now := s.now()
	s.searchSeconds.Observe(now.Sub(started).Seconds())
	s.ttuSeconds.Observe(now.Sub(e.created).Seconds())
	if err := s.store(e); err != nil {
		s.cfg.Log("serve: cache write for %s failed: %v", e.id, err)
	}
	close(e.done)
}

// buildBaseline scores the instant tier: the first strategy at
// identity symmetries, measured exactly the way the search scores its
// Baseline candidate, so the two report identical costs.
func (s *Server) buildBaseline(e *entry) (*place.Candidate, error) {
	strat := s.cfg.Place.Strategies[0]
	emb, err := strat.Embed(e.key.Guest, e.key.Host)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	if err := emb.Verify(); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	dil, avg := emb.Dilation(), emb.AverageDilation()
	stats, err := netsim.Congestion(netsim.New(e.key.Host), taskgraph.FromSpec(e.key.Guest),
		netsim.PlacementFromEmbedding(emb))
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	return &place.Candidate{
		Index:         0,
		Strategy:      strat.Name,
		EmbedStrategy: emb.Strategy,
		Dilation:      dil,
		AvgDilation:   avg,
		Peak:          stats.MaxLink,
		AvgLink:       stats.AvgLink(),
		Score:         s.objective.Score(dil, stats.MaxLink, stats.AvgLink()),
	}, nil
}

// Table returns the answer's placement table in the caller's own
// labeling: table[guest rank] = host rank, with exactly the costs the
// answer reports (the canonical table composed with metric-preserving
// relabelings). Searched-tier tables for entries restored from disk
// re-run the deterministic search once and memoize.
func (s *Server) Table(a *Answer) ([]int, error) {
	var canon []int
	var err error
	if a.Tier == TierSearched {
		canon, err = s.winnerTable(a.e)
	} else {
		canon, err = s.baselineTable(a.e)
	}
	if err != nil {
		return nil, err
	}
	return a.Key.DenormalizePlacement(canon), nil
}

func (s *Server) winnerTable(e *entry) ([]int, error) {
	e.tableMu.Lock()
	defer e.tableMu.Unlock()
	if e.table != nil {
		return e.table, nil
	}
	cfg := s.cfg.Place
	cfg.Guest, cfg.Host = e.key.Guest, e.key.Host
	res, err := s.search(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuild winner for %s: %v", e.id, err)
	}
	if res.BestEmbedding == nil {
		return nil, fmt.Errorf("serve: search returned no winning embedding for %s", e.id)
	}
	e.table = res.BestEmbedding.Table()
	return e.table, nil
}

func (s *Server) baselineTable(e *entry) ([]int, error) {
	strat := s.cfg.Place.Strategies[0]
	emb, err := strat.Embed(e.key.Guest, e.key.Host)
	if err != nil {
		return nil, fmt.Errorf("%w: baseline %s: %v", ErrUnembeddable, strat.Name, err)
	}
	return emb.Table(), nil
}

// Artifact returns the stored artifact bytes for a pair, or ok=false
// while the pair is unknown or its search has not finished.
func (s *Server) Artifact(g, h grid.Spec) ([]byte, error) {
	key, err := catalog.CanonicalPair(g, h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	s.mu.Lock()
	e := s.entries[key.String()]
	s.mu.Unlock()
	if e == nil || SearchState(e.state.Load()) != SearchDone {
		return nil, nil
	}
	return e.artifact, nil
}

// Flush blocks until the background queue is empty and no search is
// running — the warm-then-serve and test helper.
func (s *Server) Flush() { s.searchWG.Wait() }

// Close stops the workers. Queued-but-unstarted searches are failed
// with ErrClosed (unblocking any waiters); the search currently
// running on each worker finishes and is persisted. Close is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	rest := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, e := range rest {
		e.searchErr = ErrClosed
		e.state.Store(int32(SearchFailed))
		close(e.done)
		s.searchWG.Done()
	}
	s.wg.Wait()
	return nil
}

// StatusSchemaVersion versions the Status document (the /status wire
// format). v2 added uptime_seconds and deduped.
const StatusSchemaVersion = 2

// Status is a point-in-time snapshot of the server's cache and
// counters. Every counter is read from the same obs.Registry
// instruments /metrics exposes, so the two views cannot disagree.
type Status struct {
	Schema    int    `json:"schema"`
	PlaceSpec string `json:"place_spec"`
	// UptimeSeconds is how long the server has been running.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Pairs is the number of cache entries; Searched/Failed split them
	// by terminal search state (the remainder are queued or running).
	Pairs    int `json:"pairs"`
	Searched int `json:"searched"`
	Failed   int `json:"failed"`
	// QueueDepth is the number of searches waiting for a worker;
	// Inflight the number running right now.
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// Requests counts Place calls; Misses the ones that created an
	// entry; Hits the ones answered at the searched tier;
	// BaselineServed the ones answered at the baseline tier; Deduped
	// the ones that joined an in-progress search; Backpressured the
	// ones refused because the queue was full.
	Requests       int64 `json:"requests"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	BaselineServed int64 `json:"baseline_served"`
	Deduped        int64 `json:"deduped"`
	Backpressured  int64 `json:"backpressured"`
	// Searches counts started background searches, SearchFailures the
	// failed ones.
	Searches       int64 `json:"searches"`
	SearchFailures int64 `json:"search_failures"`
	// WarmQueued counts searches enqueued by census warming;
	// WarmMismatches counts finished warm searches whose winner
	// disagreed with the census's recorded winner (always a bug —
	// search is deterministic).
	WarmQueued     int64 `json:"warm_queued"`
	WarmMismatches int64 `json:"warm_mismatches"`
	// CacheLoaded counts entries restored from the cache directory at
	// startup; CacheLoadErrors the files skipped as unreadable.
	CacheLoaded     int64 `json:"cache_loaded"`
	CacheLoadErrors int64 `json:"cache_load_errors"`
}

// Status snapshots the server.
func (s *Server) Status() Status {
	st := Status{
		Schema:          StatusSchemaVersion,
		PlaceSpec:       s.spec,
		UptimeSeconds:   s.now().Sub(s.start).Seconds(),
		Requests:        s.requests.Value(),
		Hits:            s.tierSearched.Value(),
		Misses:          s.misses.Value(),
		BaselineServed:  s.tierBaseline.Value(),
		Deduped:         s.deduped.Value(),
		Backpressured:   s.backpressure.Value(),
		Searches:        s.searches.Value(),
		SearchFailures:  s.searchFailures.Value(),
		WarmQueued:      s.warmQueued.Value(),
		WarmMismatches:  s.warmMismatches.Value(),
		CacheLoaded:     s.cacheLoaded.Value(),
		CacheLoadErrors: s.cacheLoadErrors.Value(),
	}
	s.mu.Lock()
	st.Pairs = len(s.entries)
	st.QueueDepth = len(s.pending)
	st.Inflight = s.inflight
	for _, e := range s.entries {
		switch SearchState(e.state.Load()) {
		case SearchDone:
			st.Searched++
		case SearchFailed:
			st.Failed++
		}
	}
	s.mu.Unlock()
	return st
}
