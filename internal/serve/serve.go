// Package serve is the serving engine: it turns the batch placement
// pipeline into a long-running service answering "place guest G on
// host H" at interactive latency.
//
// The serving model is two-tier. Every request is first normalized to
// its canonical pair (catalog.CanonicalPair), so all relabelings that
// provably share a Pareto front share one cache entry. A hit returns
// the stored searched front; a miss answers immediately with the
// paper-baseline embedding (the first strategy at identity symmetries
// — the same candidate a search reports as Baseline) while exactly one
// background search per canonical pair runs to upgrade the entry.
// Concurrent misses are deduplicated by the entry map itself: the
// request that creates the entry enqueues the one search, every other
// request joins it.
//
// Entries persist as the versioned place artifact, bit-for-bit the
// bytes `place -pareto -json` writes for the same pair and settings,
// so the cache directory is interchangeable with batch search output.
// A directory is bound to one search spec (place.Config.Spec(), kept
// in a sidecar file); opening it under different settings is refused
// rather than silently serving fronts from another objective.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/place"
	"torusmesh/internal/taskgraph"
)

// Sentinel errors, wrapped by Place so the HTTP layer can map them to
// status codes without string matching.
var (
	// ErrClosed reports a request against a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadPair reports a pair that cannot be canonicalized: invalid
	// shapes or mismatched sizes.
	ErrBadPair = errors.New("serve: invalid pair")
	// ErrUnembeddable reports a pair the baseline strategy cannot
	// embed — there is nothing to serve at either tier.
	ErrUnembeddable = errors.New("serve: pair has no baseline embedding")
)

// Config describes one server.
type Config struct {
	// Place is the search-settings template: its Guest and Host are
	// overwritten per pair, everything else (objective, budget, cap,
	// generators, annealing knobs, strategies) applies to every search
	// the server runs. Strategies[0] is also the baseline tier.
	Place place.Config
	// CacheDir, when set, persists every searched front as a place
	// artifact and reloads the directory on startup. The directory is
	// bound to Place.Spec() via a sidecar file; a mismatch fails New.
	CacheDir string
	// SearchWorkers is the number of concurrent background searches
	// (<= 0 means 1).
	SearchWorkers int
	// Log, when set, receives diagnostic lines (cache skips, search
	// failures, census mismatches). Nil discards them.
	Log func(format string, args ...any)

	// searchFn substitutes the search function in tests; nil means
	// place.Search.
	searchFn func(place.Config) (*place.Result, error)
}

// SearchState is the lifecycle of one entry's background search.
type SearchState int32

const (
	// SearchQueued: the search is enqueued but no worker has picked it
	// up yet.
	SearchQueued SearchState = iota
	// SearchRunning: a worker is searching the pair now.
	SearchRunning
	// SearchDone: the searched front is available (terminal).
	SearchDone
	// SearchFailed: the search failed; the error is cached and the
	// entry keeps serving the baseline tier (terminal — search is
	// deterministic, so retrying cannot help).
	SearchFailed
)

func (s SearchState) String() string {
	switch s {
	case SearchQueued:
		return "queued"
	case SearchRunning:
		return "running"
	case SearchDone:
		return "done"
	case SearchFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Tier labels which answer tier a response carries.
type Tier string

const (
	// TierBaseline is the instant tier: the paper construction,
	// measured but not searched.
	TierBaseline Tier = "baseline"
	// TierSearched is the upgraded tier: the full Pareto front.
	TierSearched Tier = "searched"
)

// entry is one canonical pair's cache slot. The done channel settles
// exactly once — when the background search finishes (either way) or,
// for entries loaded from disk, before the entry is published — and
// res/artifact/searchErr are written strictly before it closes, so
// readers that observed <-done need no lock.
type entry struct {
	key catalog.PairKey // canonical pair, identity perms
	id  string          // key.String()

	baselineOnce sync.Once
	baseline     *place.Candidate
	baselineErr  error

	state atomic.Int32 // SearchState
	done  chan struct{}

	res       *place.Result
	artifact  []byte
	searchErr error

	// warm is the winner summary recorded by the census this entry was
	// pre-seeded from, when that census ran under the server's exact
	// search spec; the finished search is cross-checked against it.
	warm *census.PlaceSummary

	// table memoizes the winner's canonical placement table (built on
	// demand: entries loaded from disk re-derive it by re-running the
	// deterministic search).
	tableMu sync.Mutex
	table   []int
}

// Server is the cache-backed placement service. Create with New; all
// methods are safe for concurrent use.
type Server struct {
	cfg       Config
	spec      string // cfg.Place.Spec()
	objective place.Objective
	search    func(place.Config) (*place.Result, error)

	mu       sync.Mutex
	entries  map[string]*entry
	pending  []*entry
	cond     *sync.Cond
	inflight int
	closed   bool

	wg       sync.WaitGroup // workers
	searchWG sync.WaitGroup // queued or running searches (Flush)

	requests        atomic.Int64
	hits            atomic.Int64
	misses          atomic.Int64
	baselineServed  atomic.Int64
	searches        atomic.Int64
	searchFailures  atomic.Int64
	warmQueued      atomic.Int64
	warmMismatches  atomic.Int64
	cacheLoaded     atomic.Int64
	cacheLoadErrors atomic.Int64
}

// New builds a server, loads the persistent cache (when configured)
// and starts the background search workers.
func New(cfg Config) (*Server, error) {
	if len(cfg.Place.Strategies) == 0 {
		return nil, errors.New("serve: at least one strategy is required")
	}
	if cfg.SearchWorkers <= 0 {
		cfg.SearchWorkers = 1
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	search := cfg.searchFn
	if search == nil {
		search = place.Search
	}
	obj := cfg.Place.Objective
	if (obj == place.Objective{}) {
		obj = place.DefaultObjective()
	}
	s := &Server{
		cfg:       cfg,
		spec:      cfg.Place.Spec(),
		objective: obj,
		search:    search,
		entries:   map[string]*entry{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.CacheDir != "" {
		if err := s.openCache(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.SearchWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Spec returns the canonical search-settings string every entry of
// this server is produced under.
func (s *Server) Spec() string { return s.spec }

// Answer is one resolved placement request.
type Answer struct {
	// Key is the request's canonical identity, carrying the
	// permutations that translate placements back to the caller's
	// labeling.
	Key catalog.PairKey
	// Tier says which tier answered; State and SearchErr describe the
	// background search either way.
	Tier      Tier
	State     SearchState
	SearchErr error
	// Baseline is set on the baseline tier, Result and Artifact (the
	// exact stored artifact bytes) on the searched tier.
	Baseline *place.Candidate
	Result   *place.Result
	Artifact []byte

	e *entry
}

// Place answers one request. The first request for a cold canonical
// pair creates its entry and enqueues the single background search;
// with wait=false it returns the baseline tier immediately, with
// wait=true it blocks (under ctx) until the search settles. Requests
// for searched pairs return the stored front.
func (s *Server) Place(ctx context.Context, g, h grid.Spec, wait bool) (*Answer, error) {
	s.requests.Add(1)
	key, err := catalog.CanonicalPair(g, h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	e, created, err := s.lookup(key)
	if err != nil {
		return nil, err
	}
	if created {
		s.misses.Add(1)
	}
	if wait {
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if SearchState(e.state.Load()) == SearchDone {
		s.hits.Add(1)
		return &Answer{
			Key:      key,
			Tier:     TierSearched,
			State:    SearchDone,
			Result:   e.res,
			Artifact: e.artifact,
			e:        e,
		}, nil
	}
	e.baselineOnce.Do(func() { e.baseline, e.baselineErr = s.buildBaseline(e) })
	if e.baselineErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnembeddable, e.baselineErr)
	}
	s.baselineServed.Add(1)
	a := &Answer{
		Key:      key,
		Tier:     TierBaseline,
		State:    SearchState(e.state.Load()),
		Baseline: e.baseline,
		e:        e,
	}
	if a.State == SearchFailed {
		a.SearchErr = e.searchErr
	}
	return a, nil
}

// lookup returns the entry for a canonical key, creating it — and
// enqueuing its one background search — when absent. The created
// return is true only for the request that created the entry, which
// is what makes the dedup singleflight: every later concurrent caller
// lands on the same entry and no second search exists to join.
func (s *Server) lookup(key catalog.PairKey) (*entry, bool, error) {
	id := key.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if e := s.entries[id]; e != nil {
		return e, false, nil
	}
	e, err := newEntry(key)
	if err != nil {
		return nil, false, err
	}
	s.entries[id] = e
	s.enqueueLocked(e)
	return e, true, nil
}

// newEntry builds the cache slot for a key's canonical pair. The
// entry's own key is re-canonicalized so it carries identity
// permutations regardless of the labeling of the request that created
// it.
func newEntry(key catalog.PairKey) (*entry, error) {
	canon, err := catalog.CanonicalPair(key.Guest, key.Host)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	return &entry{key: canon, id: canon.String(), done: make(chan struct{})}, nil
}

func (s *Server) enqueueLocked(e *entry) {
	s.pending = append(s.pending, e)
	s.searchWG.Add(1)
	s.cond.Signal()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		e := s.pending[0]
		s.pending = s.pending[1:]
		s.inflight++
		s.mu.Unlock()
		s.runSearch(e)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
		s.searchWG.Done()
	}
}

// runSearch upgrades one entry: the full placement search on the
// canonical pair, encoded to the artifact bytes the cache persists.
func (s *Server) runSearch(e *entry) {
	e.state.Store(int32(SearchRunning))
	s.searches.Add(1)
	cfg := s.cfg.Place
	cfg.Guest, cfg.Host = e.key.Guest, e.key.Host
	res, err := s.search(cfg)
	var artifact []byte
	if err == nil {
		artifact, err = res.EncodeBytes()
	}
	if err != nil {
		e.searchErr = err
		e.state.Store(int32(SearchFailed))
		s.searchFailures.Add(1)
		s.cfg.Log("serve: search %s failed: %v", e.id, err)
		close(e.done)
		return
	}
	if res.BestEmbedding != nil {
		// Keep the winner's placement table for ?table requests, drop
		// the embedding itself (its kernels can hold materialized
		// tables for the whole candidate cache).
		e.table = res.BestEmbedding.Table()
		res.BestEmbedding = nil
	}
	e.res = res
	e.artifact = artifact
	if e.warm != nil {
		if got := place.Summary(res.Best); *got != *e.warm {
			s.warmMismatches.Add(1)
			s.cfg.Log("serve: census winner for %s disagrees with search: census %+v, search %+v",
				e.id, *e.warm, *got)
		}
	}
	e.state.Store(int32(SearchDone))
	if err := s.store(e); err != nil {
		s.cfg.Log("serve: cache write for %s failed: %v", e.id, err)
	}
	close(e.done)
}

// buildBaseline scores the instant tier: the first strategy at
// identity symmetries, measured exactly the way the search scores its
// Baseline candidate, so the two report identical costs.
func (s *Server) buildBaseline(e *entry) (*place.Candidate, error) {
	strat := s.cfg.Place.Strategies[0]
	emb, err := strat.Embed(e.key.Guest, e.key.Host)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	if err := emb.Verify(); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	dil, avg := emb.Dilation(), emb.AverageDilation()
	stats, err := netsim.Congestion(netsim.New(e.key.Host), taskgraph.FromSpec(e.key.Guest),
		netsim.PlacementFromEmbedding(emb))
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", strat.Name, err)
	}
	return &place.Candidate{
		Index:         0,
		Strategy:      strat.Name,
		EmbedStrategy: emb.Strategy,
		Dilation:      dil,
		AvgDilation:   avg,
		Peak:          stats.MaxLink,
		AvgLink:       stats.AvgLink(),
		Score:         s.objective.Score(dil, stats.MaxLink, stats.AvgLink()),
	}, nil
}

// Table returns the answer's placement table in the caller's own
// labeling: table[guest rank] = host rank, with exactly the costs the
// answer reports (the canonical table composed with metric-preserving
// relabelings). Searched-tier tables for entries restored from disk
// re-run the deterministic search once and memoize.
func (s *Server) Table(a *Answer) ([]int, error) {
	var canon []int
	var err error
	if a.Tier == TierSearched {
		canon, err = s.winnerTable(a.e)
	} else {
		canon, err = s.baselineTable(a.e)
	}
	if err != nil {
		return nil, err
	}
	return a.Key.DenormalizePlacement(canon), nil
}

func (s *Server) winnerTable(e *entry) ([]int, error) {
	e.tableMu.Lock()
	defer e.tableMu.Unlock()
	if e.table != nil {
		return e.table, nil
	}
	cfg := s.cfg.Place
	cfg.Guest, cfg.Host = e.key.Guest, e.key.Host
	res, err := s.search(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuild winner for %s: %v", e.id, err)
	}
	if res.BestEmbedding == nil {
		return nil, fmt.Errorf("serve: search returned no winning embedding for %s", e.id)
	}
	e.table = res.BestEmbedding.Table()
	return e.table, nil
}

func (s *Server) baselineTable(e *entry) ([]int, error) {
	strat := s.cfg.Place.Strategies[0]
	emb, err := strat.Embed(e.key.Guest, e.key.Host)
	if err != nil {
		return nil, fmt.Errorf("%w: baseline %s: %v", ErrUnembeddable, strat.Name, err)
	}
	return emb.Table(), nil
}

// Artifact returns the stored artifact bytes for a pair, or ok=false
// while the pair is unknown or its search has not finished.
func (s *Server) Artifact(g, h grid.Spec) ([]byte, error) {
	key, err := catalog.CanonicalPair(g, h)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPair, err)
	}
	s.mu.Lock()
	e := s.entries[key.String()]
	s.mu.Unlock()
	if e == nil || SearchState(e.state.Load()) != SearchDone {
		return nil, nil
	}
	return e.artifact, nil
}

// Flush blocks until the background queue is empty and no search is
// running — the warm-then-serve and test helper.
func (s *Server) Flush() { s.searchWG.Wait() }

// Close stops the workers. Queued-but-unstarted searches are failed
// with ErrClosed (unblocking any waiters); the search currently
// running on each worker finishes and is persisted. Close is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	rest := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, e := range rest {
		e.searchErr = ErrClosed
		e.state.Store(int32(SearchFailed))
		close(e.done)
		s.searchWG.Done()
	}
	s.wg.Wait()
	return nil
}

// StatusSchemaVersion versions the Status document (the /status wire
// format).
const StatusSchemaVersion = 1

// Status is a point-in-time snapshot of the server's cache and
// counters.
type Status struct {
	Schema    int    `json:"schema"`
	PlaceSpec string `json:"place_spec"`
	// Pairs is the number of cache entries; Searched/Failed split them
	// by terminal search state (the remainder are queued or running).
	Pairs    int `json:"pairs"`
	Searched int `json:"searched"`
	Failed   int `json:"failed"`
	// QueueDepth is the number of searches waiting for a worker;
	// Inflight the number running right now.
	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`
	// Requests counts Place calls; Misses the ones that created an
	// entry; Hits the ones answered at the searched tier;
	// BaselineServed the ones answered at the baseline tier.
	Requests       int64 `json:"requests"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	BaselineServed int64 `json:"baseline_served"`
	// Searches counts started background searches, SearchFailures the
	// failed ones.
	Searches       int64 `json:"searches"`
	SearchFailures int64 `json:"search_failures"`
	// WarmQueued counts searches enqueued by census warming;
	// WarmMismatches counts finished warm searches whose winner
	// disagreed with the census's recorded winner (always a bug —
	// search is deterministic).
	WarmQueued     int64 `json:"warm_queued"`
	WarmMismatches int64 `json:"warm_mismatches"`
	// CacheLoaded counts entries restored from the cache directory at
	// startup; CacheLoadErrors the files skipped as unreadable.
	CacheLoaded     int64 `json:"cache_loaded"`
	CacheLoadErrors int64 `json:"cache_load_errors"`
}

// Status snapshots the server.
func (s *Server) Status() Status {
	st := Status{
		Schema:          StatusSchemaVersion,
		PlaceSpec:       s.spec,
		Requests:        s.requests.Load(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		BaselineServed:  s.baselineServed.Load(),
		Searches:        s.searches.Load(),
		SearchFailures:  s.searchFailures.Load(),
		WarmQueued:      s.warmQueued.Load(),
		WarmMismatches:  s.warmMismatches.Load(),
		CacheLoaded:     s.cacheLoaded.Load(),
		CacheLoadErrors: s.cacheLoadErrors.Load(),
	}
	s.mu.Lock()
	st.Pairs = len(s.entries)
	st.QueueDepth = len(s.pending)
	st.Inflight = s.inflight
	for _, e := range s.entries {
		switch SearchState(e.state.Load()) {
		case SearchDone:
			st.Searched++
		case SearchFailed:
			st.Failed++
		}
	}
	s.mu.Unlock()
	return st
}
