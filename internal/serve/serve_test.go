package serve

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"torusmesh/internal/census"
	"torusmesh/internal/grid"
	"torusmesh/internal/netsim"
	"torusmesh/internal/place"
	"torusmesh/internal/taskgraph"
)

// fakeClock is a manually advanced clock injected via Config.now: it
// never moves on its own, so durations (uptime, time-to-upgrade,
// latency histograms) are exactly the Advances the test performs —
// which is what pins the /metrics exposition byte-for-byte.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testConfig is the small deterministic search settings every serve
// test runs under; searches on 8-node pairs finish in milliseconds.
// The clock is frozen so status snapshots and metric expositions are
// reproducible.
func testConfig() Config {
	return Config{
		Place: place.Config{
			Budget:      16,
			CapDilation: true,
			Rotations:   true,
			Strategies:  place.DefaultStrategies(),
		},
		now: newFakeClock().Now,
	}
}

// refSearch runs the reference batch search for a pair under the test
// settings — the bytes the server must serve bit-for-bit.
func refSearch(t *testing.T, g, h grid.Spec) (*place.Result, []byte) {
	t.Helper()
	cfg := testConfig().Place
	cfg.Guest, cfg.Host = g, h
	res, err := place.Search(cfg)
	if err != nil {
		t.Fatalf("reference search: %v", err)
	}
	raw, err := res.EncodeBytes()
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestColdBaselineThenSearched is the serving contract end to end: a
// cold request answers at the baseline tier without waiting, the
// baseline costs equal the search's own Baseline candidate, and once
// the background search lands the same request returns the front with
// artifact bytes bit-identical to the batch search's.
func TestColdBaselineThenSearched(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	srv := newTestServer(t, testConfig())

	a, err := srv.Place(context.Background(), g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier != TierBaseline {
		t.Fatalf("cold request served tier %q, want %q", a.Tier, TierBaseline)
	}
	if a.Baseline == nil || a.Result != nil {
		t.Fatalf("baseline tier must carry Baseline and no Result: %+v", a)
	}

	srv.Flush()
	ref, refBytes := refSearch(t, g, h)
	if !reflect.DeepEqual(*a.Baseline, ref.Baseline) {
		t.Errorf("baseline tier disagrees with the search's baseline:\n tier:   %+v\n search: %+v",
			*a.Baseline, ref.Baseline)
	}

	b, err := srv.Place(context.Background(), g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tier != TierSearched || b.State != SearchDone {
		t.Fatalf("warm request served tier %q state %v, want searched/done", b.Tier, b.State)
	}
	if !bytes.Equal(b.Artifact, refBytes) {
		t.Fatalf("served artifact differs from the batch search artifact (%d vs %d bytes)",
			len(b.Artifact), len(refBytes))
	}

	st := srv.Status()
	if st.Pairs != 1 || st.Searched != 1 || st.Misses != 1 || st.Hits != 1 || st.BaselineServed != 1 {
		t.Fatalf("status counters off: %+v", st)
	}
}

// TestSingleflightConcurrent pins the dedup invariant under -race: N
// concurrent cold requests for one canonical pair — under different
// labelings — run exactly one search, and everyone receives identical
// artifact bytes.
func TestSingleflightConcurrent(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	cfg := testConfig()
	cfg.searchFn = func(pc place.Config) (*place.Result, error) {
		calls.Add(1)
		<-release
		return place.Search(pc)
	}
	srv := newTestServer(t, cfg)

	// Both labelings canonicalize to torus:4x2->mesh:4x2.
	guests := []grid.Spec{grid.TorusSpec(4, 2), grid.TorusSpec(2, 4)}
	host := grid.MeshSpec(4, 2)
	const n = 16
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := srv.Place(context.Background(), guests[i%len(guests)], host, true)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = a.Artifact
		}(i)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("%d concurrent cold requests ran %d searches, want exactly 1", n, got)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("request %d received different artifact bytes", i)
		}
	}
	_, refBytes := refSearch(t, guests[0], host)
	if !bytes.Equal(results[0], refBytes) {
		t.Fatal("concurrent requests' artifact differs from the batch search artifact")
	}
}

// TestWarmCensusParity pins the warm path: a census row pre-seeds a
// search whose artifact is bit-identical to the batch search, the
// census's recorded winner cross-checks clean, and unusable rows are
// skipped.
func TestWarmCensusParity(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	ref, refBytes := refSearch(t, g, h)
	srv := newTestServer(t, testConfig())

	c := &census.Census{
		PlaceSpec: testConfig().Place.Spec(),
		Results: []census.PairResult{
			{Guest: g.String(), Host: h.String(), Place: place.Summary(ref.Best)},
			{Guest: "mesh(4x2)", Host: "mesh(2x4)", Failure: "nope", FailureStage: "construct"},
			{Guest: "torus(2x2x2)", Host: "mesh(8)"}, // no place column
		},
	}
	ws, err := srv.WarmCensus(c)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Queued != 1 || ws.Present != 0 || ws.Skipped != 2 {
		t.Fatalf("warm stats = %+v, want 1 queued / 0 present / 2 skipped", ws)
	}
	srv.Flush()

	got, err := srv.Artifact(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Fatal("census-warmed artifact differs from the batch search artifact")
	}
	if st := srv.Status(); st.WarmMismatches != 0 || st.WarmQueued != 1 {
		t.Fatalf("status = %+v, want warm_queued 1 and no mismatches", st)
	}

	// Re-warming finds everything present.
	ws, err = srv.WarmCensus(c)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Queued != 0 || ws.Present != 1 {
		t.Fatalf("re-warm stats = %+v, want 0 queued / 1 present", ws)
	}
}

// TestWarmCensusMismatchDetected: a census claiming a different winner
// than the deterministic search produces is counted (it can only mean
// a bug or a doctored artifact).
func TestWarmCensusMismatchDetected(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	ref, _ := refSearch(t, g, h)
	srv := newTestServer(t, testConfig())

	doctored := place.Summary(ref.Best)
	doctored.Dilation++
	c := &census.Census{
		PlaceSpec: testConfig().Place.Spec(),
		Results: []census.PairResult{
			{Guest: g.String(), Host: h.String(), Place: doctored},
		},
	}
	if _, err := srv.WarmCensus(c); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if st := srv.Status(); st.WarmMismatches != 1 {
		t.Fatalf("warm_mismatches = %d, want 1", st.WarmMismatches)
	}
}

// TestWarmCensusForeignSpecNotCrossChecked: a census searched under
// different settings still seeds pairs (the search re-runs under the
// server's own settings) but its winners are not comparable and must
// not count as mismatches.
func TestWarmCensusForeignSpecNotCrossChecked(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	ref, refBytes := refSearch(t, g, h)
	srv := newTestServer(t, testConfig())

	doctored := place.Summary(ref.Best)
	doctored.Peak += 7
	c := &census.Census{
		PlaceSpec: "engine=3 objective=9,9,9 budget=1 cap=false rotations=false strategies=other",
		Results: []census.PairResult{
			{Guest: g.String(), Host: h.String(), Place: doctored},
		},
	}
	if _, err := srv.WarmCensus(c); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	got, err := srv.Artifact(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes) {
		t.Fatal("foreign-spec warm must still search under the server's own settings")
	}
	if st := srv.Status(); st.WarmMismatches != 0 {
		t.Fatalf("foreign-spec census cross-checked: warm_mismatches = %d", st.WarmMismatches)
	}
}

// TestCachePersistence: a searched front survives a restart via the
// artifact directory — the reloaded entry serves identical bytes with
// zero new searches — and a directory is refused under different
// search settings.
func TestCachePersistence(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	dir := t.TempDir()

	cfg := testConfig()
	cfg.CacheDir = dir
	srv1 := newTestServer(t, cfg)
	a, err := srv1.Place(context.Background(), g, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tier != TierSearched {
		t.Fatalf("waited request served tier %q", a.Tier)
	}
	srv1.Close()

	var calls atomic.Int32
	cfg2 := testConfig()
	cfg2.CacheDir = dir
	cfg2.searchFn = func(pc place.Config) (*place.Result, error) {
		calls.Add(1)
		return place.Search(pc)
	}
	srv2 := newTestServer(t, cfg2)
	if st := srv2.Status(); st.CacheLoaded != 1 || st.CacheLoadErrors != 0 {
		t.Fatalf("restart status = %+v, want cache_loaded 1", st)
	}
	b, err := srv2.Place(context.Background(), g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Tier != TierSearched {
		t.Fatalf("restarted server served tier %q, want searched", b.Tier)
	}
	if !bytes.Equal(b.Artifact, a.Artifact) {
		t.Fatal("artifact bytes changed across restart")
	}
	if calls.Load() != 0 {
		t.Fatalf("restart re-ran %d searches for a cached pair", calls.Load())
	}

	// The winner table is rebuilt on demand by exactly one re-search.
	if _, err := srv2.Table(b); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("table rebuild ran %d searches, want 1", calls.Load())
	}
	if _, err := srv2.Table(b); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatal("second table request must hit the memoized table")
	}
	srv2.Close()

	cfg3 := testConfig()
	cfg3.CacheDir = dir
	cfg3.Place.Budget = 32
	if _, err := New(cfg3); err == nil {
		t.Fatal("cache dir reopened under different search settings must fail")
	}
}

// TestTableDenormalization: the served placement table, translated to
// the caller's labeling, measures exactly the costs the answer
// reports — for both tiers, on a request whose guest labeling is not
// canonical.
func TestTableDenormalization(t *testing.T) {
	g, h := grid.TorusSpec(2, 4), grid.MeshSpec(4, 2) // guest canonicalizes to torus:4x2
	srv := newTestServer(t, testConfig())

	a, err := srv.Place(context.Background(), g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key.Identity() {
		t.Fatal("test needs a non-canonical guest labeling")
	}
	baseTable, err := srv.Table(a)
	if err != nil {
		t.Fatal(err)
	}
	checkTableCosts(t, g, h, baseTable, a.Baseline.Dilation, a.Baseline.Peak)

	srv.Flush()
	b, err := srv.Place(context.Background(), g, h, false)
	if err != nil {
		t.Fatal(err)
	}
	winTable, err := srv.Table(b)
	if err != nil {
		t.Fatal(err)
	}
	checkTableCosts(t, g, h, winTable, b.Result.Best.Dilation, b.Result.Best.Peak)
}

// checkTableCosts measures a placement table on the caller-labeled
// pair and compares against the served costs.
func checkTableCosts(t *testing.T, g, h grid.Spec, table []int, wantDil, wantPeak int) {
	t.Helper()
	stats, err := netsim.Congestion(netsim.New(h), taskgraph.FromSpec(g), table)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxLink != wantPeak {
		t.Errorf("denormalized table peak = %d, served answer says %d", stats.MaxLink, wantPeak)
	}
	dil := 0
	g.VisitEdges(func(a, b grid.Node) {
		if d := h.DistanceRank(table[g.Shape.Index(a)], table[g.Shape.Index(b)]); d > dil {
			dil = d
		}
	})
	if dil != wantDil {
		t.Errorf("denormalized table dilation = %d, served answer says %d", dil, wantDil)
	}
}

// TestBackpressure: with MaxQueue set, a cold-pair request against a
// full queue is refused with ErrBacklogged (counter-tracked), while
// requests for already-known pairs still answer.
func TestBackpressure(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.MaxQueue = 1
	cfg.searchFn = func(pc place.Config) (*place.Result, error) {
		started <- struct{}{}
		<-release
		return place.Search(pc)
	}
	srv := newTestServer(t, cfg)
	t.Cleanup(func() { close(release) }) // runs before srv.Close

	// Occupy the single worker, then wait until it has actually picked
	// the decoy up so the queue is deterministically empty again.
	if _, err := srv.Place(context.Background(), grid.TorusSpec(4, 2), grid.MeshSpec(4, 2), false); err != nil {
		t.Fatal(err)
	}
	<-started

	// Fill the queue (depth 1 = MaxQueue) ...
	if _, err := srv.Place(context.Background(), grid.TorusSpec(8), grid.TorusSpec(8), false); err != nil {
		t.Fatal(err)
	}
	// ... so the next cold pair is refused.
	_, err := srv.Place(context.Background(), grid.TorusSpec(2, 2, 2), grid.MeshSpec(2, 2, 2), false)
	if !errors.Is(err, ErrBacklogged) {
		t.Fatalf("cold pair against a full queue returned %v, want ErrBacklogged", err)
	}
	var bp *backpressureError
	if !errors.As(err, &bp) || bp.retryAfter <= 0 {
		t.Fatalf("backpressure error carries no retry hint: %#v", err)
	}

	// A known pair still answers — backpressure only guards creations.
	if _, err := srv.Place(context.Background(), grid.TorusSpec(8), grid.TorusSpec(8), false); err != nil {
		t.Fatalf("known pair refused under backpressure: %v", err)
	}

	if st := srv.Status(); st.Backpressured != 1 {
		t.Fatalf("backpressured = %d, want 1", st.Backpressured)
	}
}

// TestStatusUptime: Status reports the injected clock's elapsed time,
// and the registry's uptime gauge agrees with it.
func TestStatusUptime(t *testing.T) {
	clock := newFakeClock()
	cfg := testConfig()
	cfg.now = clock.Now
	srv := newTestServer(t, cfg)
	clock.Advance(90 * time.Second)
	if st := srv.Status(); st.UptimeSeconds != 90 {
		t.Fatalf("uptime = %v, want 90", st.UptimeSeconds)
	}
}

// TestPlaceErrors: canonicalization failures and closed servers
// surface as the typed sentinels the HTTP layer maps to status codes.
func TestPlaceErrors(t *testing.T) {
	srv := newTestServer(t, testConfig())
	_, err := srv.Place(context.Background(), grid.TorusSpec(4, 2), grid.MeshSpec(4, 4), false)
	if !errors.Is(err, ErrBadPair) {
		t.Fatalf("size mismatch returned %v, want ErrBadPair", err)
	}
	srv.Close()
	_, err = srv.Place(context.Background(), grid.TorusSpec(4, 2), grid.MeshSpec(4, 2), false)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server returned %v, want ErrClosed", err)
	}
}
