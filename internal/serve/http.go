// The HTTP surface of the placement service. The service endpoints:
//
//	GET  /place?from=torus:8x2&to=mesh:4x4[&wait=1][&table=1]
//	GET  /artifact?from=...&to=...
//	GET  /status
//	POST /warm          (body: a census artifact, JSON or NDJSON)
//
// plus the observability endpoints mounted from internal/obs: GET
// /metrics (Prometheus text exposition of the server's registry), GET
// /statusz (the same registry as JSON), and — when Config.Pprof is set
// — the /debug/pprof/ suite.
//
// /place answers in the versioned Response schema below; /artifact
// serves the raw stored place artifact (404 until the pair's search
// has finished) so clients and CI can byte-compare against `place
// -json` output; /warm accepts a sweep/sweepd census artifact in
// either encoding and pre-seeds the cache from it. A cold-pair /place
// against a full search queue answers 429 with a Retry-After header.

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"torusmesh/internal/census"
	"torusmesh/internal/grid"
	"torusmesh/internal/obs"
	"torusmesh/internal/place"
)

// ResponseSchemaVersion versions the /place wire format. Bump it on
// any shape change and regenerate the golden (go test ./internal/serve
// -run TestHTTPPlaceGolden -update).
const ResponseSchemaVersion = 1

// Response is one /place answer.
type Response struct {
	Schema int `json:"schema"`
	// Guest and Host echo the request; CanonicalGuest/CanonicalHost
	// are the cache identity actually served, with GuestPerm the axis
	// permutation between the two labelings (absent = identity; host
	// axes are never permuted — see catalog's canonical-pair notes).
	Guest          string `json:"guest"`
	Host           string `json:"host"`
	CanonicalGuest string `json:"canonical_guest"`
	CanonicalHost  string `json:"canonical_host"`
	GuestPerm      []int  `json:"guest_perm,omitempty"`
	// Tier is "baseline" or "searched"; Search reports the background
	// search ("queued", "running", "done", "failed"), with SearchError
	// set when failed.
	Tier        string `json:"tier"`
	Search      string `json:"search"`
	SearchError string `json:"search_error,omitempty"`
	// Baseline is set on the baseline tier; Result — the full search
	// artifact document — on the searched tier.
	Baseline *place.Candidate `json:"baseline,omitempty"`
	Result   *place.Result    `json:"result,omitempty"`
	// Placement (with ?table=1) is the served placement table in the
	// request's own labeling: placement[guest rank] = host rank. On
	// the searched tier it is the front's winning candidate.
	Placement []int `json:"placement,omitempty"`
}

// errorResponse is the JSON error body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP interface: the service endpoints
// (each behind a per-endpoint latency histogram) plus the registry's
// /metrics and /statusz, and /debug/pprof/ when Config.Pprof is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/place", s.timed("place", s.handlePlace))
	mux.HandleFunc("/artifact", s.timed("artifact", s.handleArtifact))
	mux.HandleFunc("/status", s.timed("status", s.handleStatus))
	mux.HandleFunc("/warm", s.timed("warm", s.handleWarm))
	obs.Mount(mux, s.reg, s.cfg.Pprof)
	return mux
}

// timed wraps one endpoint in its latency histogram
// (placed_http_seconds{endpoint=...}), on the server's clock so tests
// can pin exact expositions.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	s.reg.Describe("placed_http_seconds", "HTTP request latency, by endpoint.")
	hist := s.reg.Histogram("placed_http_seconds", obs.DefDurationBuckets(), obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		h(w, r)
		hist.Observe(s.now().Sub(start).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errorCode maps a Place error to its HTTP status.
func errorCode(err error) int {
	switch {
	case errors.Is(err, ErrBadPair):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnembeddable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrBacklogged):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// setRetryAfter adds the Retry-After header a backpressure refusal
// carries (whole seconds, rounded up).
func setRetryAfter(w http.ResponseWriter, err error) {
	var bp *backpressureError
	if errors.As(err, &bp) {
		secs := int(math.Ceil(bp.retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
}

// pairParams parses the from/to query parameters shared by /place and
// /artifact.
func pairParams(r *http.Request) (g, h grid.Spec, err error) {
	q := r.URL.Query()
	from, to := q.Get("from"), q.Get("to")
	if from == "" || to == "" {
		return g, h, errors.New("both from and to are required, e.g. ?from=torus:8x2&to=mesh:4x4")
	}
	if g, err = grid.ParseSpec(from); err != nil {
		return g, h, err
	}
	if h, err = grid.ParseSpec(to); err != nil {
		return g, h, err
	}
	return g, h, nil
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g, h, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	a, err := s.Place(r.Context(), g, h, boolParam(r, "wait"))
	if err != nil {
		setRetryAfter(w, err)
		writeError(w, errorCode(err), "%v", err)
		return
	}
	resp := &Response{
		Schema:         ResponseSchemaVersion,
		Guest:          g.String(),
		Host:           h.String(),
		CanonicalGuest: a.Key.Guest.String(),
		CanonicalHost:  a.Key.Host.String(),
		Tier:           string(a.Tier),
		Search:         a.State.String(),
		Baseline:       a.Baseline,
		Result:         a.Result,
	}
	if !a.Key.Identity() {
		resp.GuestPerm = a.Key.GuestPerm
	}
	if a.SearchErr != nil {
		resp.SearchError = a.SearchErr.Error()
	}
	if boolParam(r, "table") {
		table, err := s.Table(a)
		if err != nil {
			writeError(w, errorCode(err), "%v", err)
			return
		}
		resp.Placement = table
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g, h, err := pairParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	artifact, err := s.Artifact(g, h)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	if artifact == nil {
		writeError(w, http.StatusNotFound, "no searched front for this pair yet; request /place to start one")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(artifact)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}

// censusStreamPrefix mirrors the census package's stream sniff: every
// NDJSON stream artifact opens with this header prefix.
const censusStreamPrefix = `{"stream":`

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a census artifact (JSON or NDJSON stream)")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var c *census.Census
	if bytes.HasPrefix(body, []byte(censusStreamPrefix)) {
		c, err = census.ReadStream(bytes.NewReader(body))
	} else {
		c, err = census.Decode(bytes.NewReader(body))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ws, err := s.WarmCensus(c)
	if err != nil {
		writeError(w, errorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ws)
}
