// The bulk warm path: pre-seeding the cache from sweep/sweepd census
// artifacts. A placement census already names every embeddable pair
// of a size and records each pair's searched winner; warming turns
// that into background searches so the full fronts are cached before
// the first request arrives. When the census ran under the server's
// exact search spec, its recorded winner doubles as a cross-check on
// the warm search's result (both are deterministic, so any difference
// is a bug, counted in warm_mismatches).

package serve

import (
	"torusmesh/internal/catalog"
	"torusmesh/internal/census"
)

// WarmStats reports one warming pass.
type WarmStats struct {
	// Queued counts pairs whose background search was enqueued;
	// Present counts pairs the cache already had (including duplicates
	// within the census itself — relabelings folding to one canonical
	// pair); Skipped counts rows with no usable placement (failed
	// pairs, rows without a place column, unparsable specs).
	Queued  int `json:"queued"`
	Present int `json:"present"`
	Skipped int `json:"skipped"`
}

// WarmCensus enqueues a background search for every placed pair of
// the census the cache does not hold yet. It returns after enqueuing
// (searches proceed on the background workers); call Flush to block
// until the cache is fully warm.
func (s *Server) WarmCensus(c *census.Census) (WarmStats, error) {
	var ws WarmStats
	specMatches := c.PlaceSpec == s.spec
	for i := range c.Results {
		r := &c.Results[i]
		if r.Place == nil || r.Place.Error != "" || r.Failure != "" {
			ws.Skipped++
			continue
		}
		g, err := parseArtifactSpec(r.Guest)
		if err != nil {
			ws.Skipped++
			continue
		}
		h, err := parseArtifactSpec(r.Host)
		if err != nil {
			ws.Skipped++
			continue
		}
		key, err := catalog.CanonicalPair(g, h)
		if err != nil {
			ws.Skipped++
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ws, ErrClosed
		}
		if _, ok := s.entries[key.String()]; ok {
			s.mu.Unlock()
			ws.Present++
			continue
		}
		e, err := newEntry(key)
		if err != nil {
			s.mu.Unlock()
			ws.Skipped++
			continue
		}
		e.created = s.now()
		if specMatches {
			e.warm = r.Place
		}
		s.entries[e.id] = e
		s.enqueueLocked(e)
		s.mu.Unlock()
		ws.Queued++
		s.warmQueued.Add(1)
	}
	return ws, nil
}
