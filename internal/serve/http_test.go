package serve

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"torusmesh/internal/census"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
	"torusmesh/internal/place"
)

// update regenerates the golden wire-format files:
//
//	go test ./internal/serve -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden byte-compares a response body against its pinned golden
// file, so any wire-format drift is a reviewed diff (the same pattern
// as the census artifact golden).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/serve -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden pin.\nIf the change is intentional, bump the schema version and regenerate with -update.\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// get fetches a path and returns status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHTTPSearchedGolden pins the searched-tier /place response and
// the /status document for the README's worked example pair,
// torus(8x2) -> mesh(4x4).
func TestHTTPSearchedGolden(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/place?from=torus:8x2&to=mesh:4x4&wait=1&table=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	checkGolden(t, "placed-v1-searched.golden.json", body)

	srv.Flush() // settle the worker's counters before snapshotting
	code, body = get(t, ts, "/status")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	checkGolden(t, "placed-v2-status.golden.json", body)
}

// TestHTTPMetricsGolden pins the full Prometheus /metrics exposition
// for a known request sequence on a manual clock. The choreography —
// one parked worker, explicit clock advances between phases — makes
// every counter, histogram bucket and duration exact:
//
//	t+0s  cold A (baseline tier, search picked up immediately)
//	t+2s  A again (singleflight dedup), cold B (queued), cold C
//	      refused 429 (MaxQueue=1) with a Retry-After hint
//	t+3s  A's search finishes: search 3s, time-to-upgrade 3s
//	t+4s  B's search finishes: search 1s, time-to-upgrade 2s
//	      A served at the searched tier, then /metrics scraped
func TestHTTPMetricsGolden(t *testing.T) {
	clock := newFakeClock()
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.now = clock.Now
	cfg.MaxQueue = 1
	cfg.searchFn = func(pc place.Config) (*place.Result, error) {
		started <- struct{}{}
		<-release
		return place.Search(pc)
	}
	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	place_ := func(query string, want int) []byte {
		t.Helper()
		code, body := get(t, ts, "/place?"+query)
		if code != want {
			t.Fatalf("GET /place?%s = %d (%s), want %d", query, code, body, want)
		}
		return body
	}

	// t+0: cold A answers baseline; wait until the worker holds it so
	// the queue is deterministically empty.
	place_("from=torus:8x2&to=mesh:4x4", http.StatusOK)
	<-started

	clock.Advance(2 * time.Second)
	// t+2: A again joins the running search; cold B queues; cold C is
	// refused — the queue is at MaxQueue.
	place_("from=torus:8x2&to=mesh:4x4", http.StatusOK)
	place_("from=torus:4x2&to=mesh:4x2", http.StatusOK)
	resp, err := http.Get(ts.URL + "/place?from=torus:2x2x2&to=mesh:2x2x2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold pair against a full queue = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\" (one 2-wave queue drain)", ra)
	}

	// t+3: release A (3s search, 3s to upgrade); the worker moves on
	// to B.
	clock.Advance(time.Second)
	release <- struct{}{}
	<-started
	// t+4: release B (1s search, 2s to upgrade since its creation).
	clock.Advance(time.Second)
	release <- struct{}{}
	srv.Flush()

	// A now serves the searched tier.
	place_("from=torus:8x2&to=mesh:4x4", http.StatusOK)

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	checkGolden(t, "placed-metrics.golden.txt", body)

	// The JSON snapshot view of the same registry must stay consistent.
	code, body = get(t, ts, "/statusz")
	if code != http.StatusOK || !strings.Contains(string(body), `"placed_requests_total"`) {
		t.Fatalf("/statusz = %d: %s", code, body)
	}
}

// TestHTTPBaselineGolden pins the baseline-tier response: the single
// search worker is parked on a decoy pair, so the requested pair's
// search is deterministically still queued when the response renders.
func TestHTTPBaselineGolden(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig()
	cfg.searchFn = func(pc place.Config) (*place.Result, error) {
		<-release
		return place.Search(pc)
	}
	srv := newTestServer(t, cfg)
	t.Cleanup(func() { close(release) }) // runs before srv.Close

	// Park the worker: the decoy is enqueued first, so the golden
	// pair's search sits behind it in the FIFO queue.
	if _, err := srv.Place(context.Background(), grid.TorusSpec(4, 2), grid.MeshSpec(4, 2), false); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := get(t, ts, "/place?from=torus:8x2&to=mesh:4x4&table=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	checkGolden(t, "placed-v1-baseline.golden.json", body)
}

// TestHTTPArtifactParity: /artifact 404s until the search lands, then
// serves the exact bytes `place -json` writes for the pair.
func TestHTTPArtifactParity(t *testing.T) {
	srv := newTestServer(t, testConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := get(t, ts, "/artifact?from=torus:8x2&to=mesh:4x4"); code != http.StatusNotFound {
		t.Fatalf("cold artifact fetch returned %d, want 404", code)
	}
	if code, body := get(t, ts, "/place?from=torus:8x2&to=mesh:4x4&wait=1"); code != http.StatusOK {
		t.Fatalf("place returned %d: %s", code, body)
	}
	_, refBytes := refSearch(t, grid.TorusSpec(8, 2), grid.MeshSpec(4, 4))
	code, body := get(t, ts, "/artifact?from=torus:8x2&to=mesh:4x4")
	if code != http.StatusOK {
		t.Fatalf("artifact fetch returned %d", code)
	}
	if !bytes.Equal(body, refBytes) {
		t.Fatal("/artifact bytes differ from the batch search artifact")
	}
	// A relabeled guest shares the canonical entry.
	code, relabeled := get(t, ts, "/artifact?from=torus:2x8&to=mesh:4x4")
	if code != http.StatusOK || !bytes.Equal(relabeled, refBytes) {
		t.Fatalf("relabeled guest did not hit the canonical entry (status %d)", code)
	}
}

// TestHTTPWarmEndpoint: POST /warm accepts the census artifact in
// both encodings and pre-seeds the cache.
func TestHTTPWarmEndpoint(t *testing.T) {
	g, h := grid.TorusSpec(4, 2), grid.MeshSpec(4, 2)
	ref, refBytes := refSearch(t, g, h)
	warmCensus := &census.Census{
		Version:   census.ArtifactVersion,
		Size:      8,
		Shards:    1,
		Placed:    true,
		PlaceSpec: testConfig().Place.Spec(),
		Results: []census.PairResult{
			{Guest: g.String(), Host: h.String(), Place: place.Summary(ref.Best)},
		},
	}

	encodings := map[string]func() []byte{
		"json": func() []byte {
			b, err := warmCensus.EncodeBytes()
			if err != nil {
				t.Fatal(err)
			}
			return b
		},
		"stream": func() []byte {
			var buf bytes.Buffer
			if err := census.WriteStream(&buf, warmCensus); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
	}
	for name, encode := range encodings {
		t.Run(name, func(t *testing.T) {
			srv := newTestServer(t, testConfig())
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp, err := http.Post(ts.URL+"/warm", "application/json", bytes.NewReader(encode()))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("warm returned %d: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), `"queued": 1`) {
				t.Fatalf("warm response = %s, want 1 queued", body)
			}
			srv.Flush()
			code, artifact := get(t, ts, fmt.Sprintf("/artifact?from=torus:4x2&to=mesh:4x2"))
			if code != http.StatusOK || !bytes.Equal(artifact, refBytes) {
				t.Fatalf("warmed artifact differs (status %d)", code)
			}
		})
	}
}

// TestHTTPErrors maps the failure modes to their status codes.
func TestHTTPErrors(t *testing.T) {
	cfg := testConfig()
	// An always-failing baseline makes every pair unembeddable.
	broken := cfg
	broken.Place.Strategies = []place.Strategy{{
		Name:  "never",
		Embed: func(g, h grid.Spec) (*embed.Embedding, error) { return nil, fmt.Errorf("never embeds") },
	}}

	srv := newTestServer(t, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		want int
	}{
		{"/place", http.StatusBadRequest},                            // missing params
		{"/place?from=bogus&to=mesh:4x4", http.StatusBadRequest},     // unparsable spec
		{"/place?from=torus:4x2&to=mesh:4x4", http.StatusBadRequest}, // size mismatch
		{"/artifact?from=torus:9x9&to=torus:9x9", http.StatusNotFound},
		{"/warm", http.StatusMethodNotAllowed}, // GET on a POST endpoint
	}
	for _, tc := range cases {
		if code, body := get(t, ts, tc.path); code != tc.want {
			t.Errorf("GET %s = %d (%s), want %d", tc.path, code, body, tc.want)
		}
	}
	resp, err := http.Post(ts.URL+"/place?from=torus:4x2&to=mesh:4x2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /place = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/warm", "application/json", strings.NewReader("not a census"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /warm garbage = %d, want 400", resp.StatusCode)
	}

	bsrv := newTestServer(t, broken)
	bts := httptest.NewServer(bsrv.Handler())
	defer bts.Close()
	if code, body := get(t, bts, "/place?from=torus:4x2&to=mesh:4x2"); code != http.StatusUnprocessableEntity {
		t.Errorf("unembeddable pair = %d (%s), want 422", code, body)
	}
}
