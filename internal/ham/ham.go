// Package ham derives the Hamiltonian-circuit corollaries of Ma & Tao
// from the basic embedding sequences: every torus has a Hamiltonian
// circuit (Corollary 29, from h_L); every mesh of even size and dimension
// greater than 1 has one (Corollary 25, from π ∘ h_{L*}); and no mesh of
// odd size has one (Corollary 18, the parity argument). Hamiltonian
// paths always exist in both families via f_L (Theorem 13).
package ham

import (
	"fmt"

	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
	"torusmesh/internal/radix"
)

// Path returns a Hamiltonian path of the given torus or mesh: the node
// sequence f_L(0), f_L(1), ..., f_L(n-1), whose successive nodes are
// adjacent in both families (Lemmas 11 and 12).
func Path(sp grid.Spec) []grid.Node {
	n := sp.Size()
	out := make([]grid.Node, n)
	for x := 0; x < n; x++ {
		out[x] = gray.F(radix.Base(sp.Shape), x)
	}
	return out
}

// HasCircuit reports whether the graph has a Hamiltonian circuit,
// applying the paper's classification: toruses always do (Corollary 29);
// meshes do exactly when they have even size and dimension at least 2
// (Corollaries 18 and 25), or are the trivial 2-node line's bigger
// sibling — a 1-dimensional mesh (line) of size > 2 never has one.
func HasCircuit(sp grid.Spec) bool {
	if sp.Kind == grid.Torus {
		return true
	}
	if sp.Dim() < 2 {
		// A line of size 2 is a single edge; a circuit needs at least
		// one cycle, which no line has.
		return false
	}
	return sp.Size()%2 == 0
}

// Circuit returns a Hamiltonian circuit of the graph as a node sequence
// whose consecutive nodes (including last back to first) are adjacent.
// For toruses it is h_L directly; for meshes of even size and dimension
// at least 2 it is π ∘ h_{L*} with an even length permuted to the front
// (Theorem 24). It returns an error when no circuit exists.
func Circuit(sp grid.Spec) ([]grid.Node, error) {
	n := sp.Size()
	L := radix.Base(sp.Shape)
	if sp.Kind == grid.Torus {
		out := make([]grid.Node, n)
		for x := 0; x < n; x++ {
			out[x] = gray.H(L, x)
		}
		return out, nil
	}
	if !HasCircuit(sp) {
		if sp.Dim() < 2 {
			return nil, fmt.Errorf("ham: a line has no Hamiltonian circuit")
		}
		return nil, fmt.Errorf("ham: no mesh of odd size has a Hamiltonian circuit (Corollary 18)")
	}
	// Find an even length and build L* with it in front.
	evenIdx := -1
	for i, l := range sp.Shape {
		if l%2 == 0 {
			evenIdx = i
			break
		}
	}
	if evenIdx < 0 {
		return nil, fmt.Errorf("ham: even-size mesh with all-odd lengths is impossible")
	}
	lStar := sp.Shape.Clone()
	lStar[0], lStar[evenIdx] = lStar[evenIdx], lStar[0]
	// π maps L*-coordinates back to L-coordinates: it swaps the same two
	// positions.
	pi, ok := perm.Find(lStar, sp.Shape)
	if !ok {
		return nil, fmt.Errorf("ham: internal error: %v is not a permutation of %v", lStar, sp.Shape)
	}
	out := make([]grid.Node, n)
	for x := 0; x < n; x++ {
		out[x] = grid.Node(perm.Apply(pi, gray.H(radix.Base(lStar), x)))
	}
	return out, nil
}

// VerifyCircuit checks that seq is a Hamiltonian circuit of the graph:
// it visits every node exactly once and every consecutive pair (cyclically)
// is adjacent.
func VerifyCircuit(sp grid.Spec, seq []grid.Node) error {
	if err := verifyCover(sp, seq); err != nil {
		return err
	}
	for i := range seq {
		next := seq[(i+1)%len(seq)]
		if d := sp.Distance(seq[i], next); d != 1 {
			return fmt.Errorf("ham: consecutive nodes %s and %s at distance %d in %s", seq[i], next, d, sp)
		}
	}
	return nil
}

// VerifyPath checks that seq is a Hamiltonian path of the graph.
func VerifyPath(sp grid.Spec, seq []grid.Node) error {
	if err := verifyCover(sp, seq); err != nil {
		return err
	}
	for i := 1; i < len(seq); i++ {
		if d := sp.Distance(seq[i-1], seq[i]); d != 1 {
			return fmt.Errorf("ham: successive nodes %s and %s at distance %d in %s", seq[i-1], seq[i], d, sp)
		}
	}
	return nil
}

func verifyCover(sp grid.Spec, seq []grid.Node) error {
	n := sp.Size()
	if len(seq) != n {
		return fmt.Errorf("ham: sequence has %d nodes, graph has %d", len(seq), n)
	}
	seen := make([]bool, n)
	for _, node := range seq {
		if !node.InBounds(sp.Shape) {
			return fmt.Errorf("ham: node %s out of bounds for %s", node, sp)
		}
		idx := sp.Shape.Index(node)
		if seen[idx] {
			return fmt.Errorf("ham: node %s visited twice", node)
		}
		seen[idx] = true
	}
	return nil
}

// ExhaustiveCircuit searches for a Hamiltonian circuit by backtracking
// over the explicit graph. Exponential; intended only to cross-check
// HasCircuit on small instances (the Corollary 18 impossibility proof).
// Returns the circuit as node indices, or false.
func ExhaustiveCircuit(sp grid.Spec) ([]int, bool) {
	g := grid.Build(sp)
	n := g.Size()
	if n == 1 {
		return nil, false
	}
	visited := make([]bool, n)
	path := make([]int, 0, n)
	visited[0] = true
	path = append(path, 0)
	var dfs func(v int) bool
	dfs = func(v int) bool {
		if len(path) == n {
			return g.IsEdge(v, 0)
		}
		for _, w := range g.Adj[v] {
			if visited[w] {
				continue
			}
			visited[w] = true
			path = append(path, w)
			if dfs(w) {
				return true
			}
			path = path[:len(path)-1]
			visited[w] = false
		}
		return false
	}
	if dfs(0) {
		return path, true
	}
	return nil, false
}
