package ham

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestPathAlwaysExists(t *testing.T) {
	specs := []grid.Spec{
		grid.MeshSpec(4, 2, 3), grid.TorusSpec(4, 2, 3),
		grid.MeshSpec(3, 3), grid.TorusSpec(3, 3),
		grid.LineSpec(7), grid.RingSpec(7),
		grid.MeshSpec(2, 2, 2, 2), grid.MeshSpec(5, 3),
	}
	for _, sp := range specs {
		if err := VerifyPath(sp, Path(sp)); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

// TestTorusCircuits verifies Corollary 29: every torus has a Hamiltonian
// circuit, including toruses of odd size.
func TestTorusCircuits(t *testing.T) {
	specs := []grid.Spec{
		grid.TorusSpec(4, 2, 3), grid.TorusSpec(3, 3), grid.TorusSpec(3, 5),
		grid.RingSpec(5), grid.TorusSpec(3, 3, 3), grid.TorusSpec(2, 2),
		grid.TorusSpec(5, 7), grid.TorusSpec(2, 3, 2),
	}
	for _, sp := range specs {
		circuit, err := Circuit(sp)
		if err != nil {
			t.Errorf("%s: %v", sp, err)
			continue
		}
		if err := VerifyCircuit(sp, circuit); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

// TestEvenMeshCircuits verifies Corollary 25: every mesh of even size and
// dimension > 1 has a Hamiltonian circuit, including meshes whose first
// dimension is odd (handled by the π ∘ h_{L*} permutation).
func TestEvenMeshCircuits(t *testing.T) {
	specs := []grid.Spec{
		grid.MeshSpec(4, 2, 3), grid.MeshSpec(2, 3), grid.MeshSpec(3, 4),
		grid.MeshSpec(3, 2, 3), grid.MeshSpec(5, 2), grid.MeshSpec(3, 3, 4),
		grid.MeshSpec(2, 2, 2, 2), grid.MeshSpec(7, 4),
	}
	for _, sp := range specs {
		if sp.Size()%2 != 0 {
			t.Fatalf("bad test case %s: odd size", sp)
		}
		circuit, err := Circuit(sp)
		if err != nil {
			t.Errorf("%s: %v", sp, err)
			continue
		}
		if err := VerifyCircuit(sp, circuit); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

// TestOddMeshNoCircuit verifies Corollary 18 constructively on small
// instances: the exhaustive search agrees that odd meshes have no
// Hamiltonian circuit, and Circuit refuses to build one.
func TestOddMeshNoCircuit(t *testing.T) {
	specs := []grid.Spec{
		grid.MeshSpec(3, 3), grid.MeshSpec(3, 5),
	}
	if !testing.Short() {
		// The 27-node exhaustive refutation dominates this package's
		// wall time (several seconds under -race); the 2D cases keep
		// the property covered in -short runs.
		specs = append(specs, grid.MeshSpec(3, 3, 3))
	}
	for _, sp := range specs {
		if _, err := Circuit(sp); err == nil {
			t.Errorf("%s: Circuit built one for an odd mesh", sp)
		}
		if _, found := ExhaustiveCircuit(sp); found {
			t.Errorf("%s: exhaustive search found a circuit; Corollary 18 violated", sp)
		}
	}
}

func TestLineNoCircuit(t *testing.T) {
	if _, err := Circuit(grid.LineSpec(5)); err == nil {
		t.Error("line accepted")
	}
	if HasCircuit(grid.LineSpec(4)) {
		t.Error("HasCircuit true for a line")
	}
}

// TestHasCircuitMatchesExhaustive cross-checks the classification
// against brute force on every small spec.
func TestHasCircuitMatchesExhaustive(t *testing.T) {
	specs := []grid.Spec{
		grid.MeshSpec(2, 2), grid.MeshSpec(2, 3), grid.MeshSpec(3, 3),
		grid.MeshSpec(2, 5), grid.MeshSpec(2, 2, 2), grid.MeshSpec(2, 2, 3),
		grid.TorusSpec(2, 2), grid.TorusSpec(2, 3), grid.TorusSpec(3, 3),
		grid.RingSpec(4), grid.RingSpec(5), grid.LineSpec(4),
		grid.MeshSpec(3, 4), grid.TorusSpec(2, 2, 3),
	}
	for _, sp := range specs {
		_, found := ExhaustiveCircuit(sp)
		if found != HasCircuit(sp) {
			t.Errorf("%s: exhaustive=%v but HasCircuit=%v", sp, found, HasCircuit(sp))
		}
	}
}

func TestVerifyCircuitRejections(t *testing.T) {
	sp := grid.TorusSpec(2, 2)
	good, err := Circuit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := VerifyCircuit(sp, good[:3]); err == nil {
		t.Error("short sequence accepted")
	}
	// Duplicate node.
	dup := append([]grid.Node{}, good...)
	dup[1] = dup[0]
	if err := VerifyCircuit(sp, dup); err == nil {
		t.Error("duplicate accepted")
	}
	// Non-adjacent consecutive pair: swap two nodes of a 2x3 mesh circuit.
	sp2 := grid.MeshSpec(2, 3)
	c2, err := Circuit(sp2)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]grid.Node{}, c2...)
	bad[1], bad[3] = bad[3], bad[1]
	if err := VerifyCircuit(sp2, bad); err == nil {
		t.Error("non-adjacent pair accepted")
	}
}
