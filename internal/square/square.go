// Package square implements Section 5 of Ma & Tao: embeddings among
// *square* toruses and meshes, which always exist and compose the
// generalized embeddings of Section 4.
//
// Lowering dimension (c < d), Theorem 48 (c divides d): the host shape is
// a simple reduction of the guest shape; dilation ℓ^{(d−c)/c}, doubled
// for a torus into a mesh, optimal to within a constant (Theorem 47).
//
// Lowering dimension, Theorem 51 (c does not divide d): a chain of
// general reductions through the intermediate shapes
// (ℓ^{(v+k)/v} × av, ℓ × a(u−v−k)), k = 0..u−v, where a = gcd(d, c),
// u = d/a, v = c/a; same dilation.
//
// Increasing dimension (d < c), Theorem 52 (d divides c): expansion with
// factor lists (m, ..., m); dilation 1, or 2 for an odd-size torus into a
// mesh — both optimal.
//
// Increasing dimension, Theorem 53 (d does not divide c): expansion into
// an intermediate square graph of dimension v·d with side ℓ^{1/v}, then a
// simple reduction down to dimension c; dilation ℓ^{(d−a)/c}, doubled for
// an odd-size torus into a mesh.
package square

import (
	"fmt"

	"torusmesh/internal/embed"
	"torusmesh/internal/expand"
	"torusmesh/internal/grid"
	"torusmesh/internal/reduce"
)

// Gcd returns the greatest common divisor of two positive integers.
func Gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// IntPow returns base^exp for non-negative exp.
func IntPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// IntRoot returns the exact integer k-th root of x, or false when x is
// not a perfect k-th power. Lemma 50 guarantees the roots needed by
// Theorems 51 and 53 exist whenever the host graph does.
func IntRoot(x, k int) (int, bool) {
	if x < 1 || k < 1 {
		return 0, false
	}
	if k == 1 || x == 1 {
		return x, true
	}
	lo, hi := 1, x
	for lo <= hi {
		mid := lo + (hi-lo)/2
		// Compute mid^k with overflow guard by capping at > x.
		p, over := 1, false
		for i := 0; i < k; i++ {
			p *= mid
			if p > x || p < 0 {
				over = true
				break
			}
		}
		switch {
		case !over && p == x:
			return mid, true
		case over || p > x:
			hi = mid - 1
		default:
			lo = mid + 1
		}
	}
	return 0, false
}

// Predicted returns the dilation cost Section 5 guarantees for embedding
// a square d-dimensional graph of side l in a square c-dimensional graph
// of the same size, for the given kinds. It mirrors Theorems 48/51/52/53
// and Lemma 36 (d == c).
func Predicted(gKind, hKind grid.Kind, d, c, l int) (int, error) {
	torusIntoMesh := gKind == grid.Torus && hKind == grid.Mesh
	switch {
	case d == c:
		if torusIntoMesh && l > 2 {
			return 2, nil
		}
		return 1, nil
	case d > c: // lowering
		a := Gcd(d, c)
		u, v := d/a, c/a
		root, ok := IntRoot(l, v)
		if !ok {
			return 0, fmt.Errorf("square: side %d has no integer %d-th root; no square host of dimension %d exists", l, v, c)
		}
		base := IntPow(root, u-v) // = l^{(d-c)/c}
		if torusIntoMesh {
			return 2 * base, nil
		}
		return base, nil
	default: // increasing
		if c%d == 0 {
			if torusIntoMesh && IntPow(l, d)%2 == 1 {
				return 2, nil
			}
			return 1, nil
		}
		a := Gcd(d, c)
		u, v := d/a, c/a
		root, ok := IntRoot(l, v)
		if !ok {
			return 0, fmt.Errorf("square: side %d has no integer %d-th root; no square host of dimension %d exists", l, v, c)
		}
		base := IntPow(root, u-1) // = l^{(d-a)/c}
		if torusIntoMesh && IntPow(l, d)%2 == 1 {
			return 2 * base, nil
		}
		return base, nil
	}
}

// ChainShapes returns the Theorem 51 intermediate shapes I_0 = guest,
// ..., I_{u-v} = host for lowering a square d-dimensional graph of side l
// to dimension c (c < d, c does not divide d). Shape k is
// (ℓ^{(v+k)/v} × av, ℓ × a(u−v−k)).
func ChainShapes(l, d, c int) ([]grid.Shape, error) {
	a := Gcd(d, c)
	u, v := d/a, c/a
	if v < 2 {
		return nil, fmt.Errorf("square: chain needs c not dividing d, got d=%d c=%d", d, c)
	}
	root, ok := IntRoot(l, v)
	if !ok {
		return nil, fmt.Errorf("square: side %d is not a perfect %d-th power", l, v)
	}
	shapes := make([]grid.Shape, 0, u-v+1)
	for k := 0; k <= u-v; k++ {
		q := IntPow(root, v+k)
		shape := make(grid.Shape, 0, a*(u-k))
		shape = append(shape, grid.Square(a*v, q)...)
		shape = append(shape, grid.Square(a*(u-v-k), l)...)
		shapes = append(shapes, shape)
	}
	return shapes, nil
}

// chainStepFactor builds the general-reduction factor for step k of the
// Theorem 51 chain: L' keeps the av grown dimensions and all but a of the
// side-ℓ dimensions; L” is a copies of ℓ, each factored into v copies of
// root. The host shape of the factor is exactly the next chain shape, so
// both α and β are identities.
func chainStepFactor(l, root, a, u, v, k int) *reduce.GeneralFactor {
	q := IntPow(root, v+k)
	lPrime := make(grid.Shape, 0, a*(u-k-1))
	lPrime = append(lPrime, grid.Square(a*v, q)...)
	lPrime = append(lPrime, grid.Square(a*(u-v-k-1), l)...)
	s := make([][]int, a)
	for i := range s {
		s[i] = grid.Square(v, root)
	}
	return &reduce.GeneralFactor{
		LPrime:  lPrime,
		LDouble: grid.Square(a, l),
		S:       s,
	}
}

// embedLoweringChain builds the Theorem 51 embedding as a composition of
// general reductions along the chain shapes. Intermediates share the
// guest's kind; only the final step lands in the host's kind (a torus
// cannot be subdivided into smaller toruses, so a torus chain stays torus
// until the last hop).
func embedLoweringChain(g, h grid.Spec) (*embed.Embedding, error) {
	l, d, c := g.Shape[0], g.Dim(), h.Dim()
	a := Gcd(d, c)
	u, v := d/a, c/a
	root, ok := IntRoot(l, v)
	if !ok {
		return nil, fmt.Errorf("square: side %d is not a perfect %d-th power", l, v)
	}
	shapes, err := ChainShapes(l, d, c)
	if err != nil {
		return nil, err
	}
	steps := make([]*embed.Embedding, 0, len(shapes)-1)
	for k := 0; k+1 < len(shapes); k++ {
		fromKind := g.Kind
		toKind := g.Kind
		if k+2 == len(shapes) {
			toKind = h.Kind
		}
		from := grid.Spec{Kind: fromKind, Shape: shapes[k]}
		to := grid.Spec{Kind: toKind, Shape: shapes[k+1]}
		step, err := reduce.WithGeneralFactor(from, to, chainStepFactor(l, root, a, u, v, k))
		if err != nil {
			return nil, fmt.Errorf("square: chain step %d (%s -> %s): %v", k, from, to, err)
		}
		steps = append(steps, step)
	}
	e, err := embed.ComposeAll(steps...)
	if err != nil {
		return nil, err
	}
	e.Strategy = fmt.Sprintf("square-chain[%d steps]", len(steps))
	if pred, perr := Predicted(g.Kind, h.Kind, d, c, l); perr == nil {
		e.Predicted = pred
	}
	return e, nil
}

// embedIncreasingViaIntermediate builds the Theorem 53 embedding:
// expansion into a square graph of dimension v·d with side ℓ^{1/v},
// followed by a simple reduction down to dimension c (v·d is divisible
// by c).
func embedIncreasingViaIntermediate(g, h grid.Spec) (*embed.Embedding, error) {
	l, d, c := g.Shape[0], g.Dim(), h.Dim()
	a := Gcd(d, c)
	v := c / a
	root, ok := IntRoot(l, v)
	if !ok {
		return nil, fmt.Errorf("square: side %d is not a perfect %d-th power", l, v)
	}
	// G' is a torus only when both endpoints are toruses; otherwise a
	// mesh intermediate keeps the second hop free of the torus-into-mesh
	// penalty.
	midKind := grid.Mesh
	if g.Kind == grid.Torus && h.Kind == grid.Torus {
		midKind = grid.Torus
	}
	mid := grid.Spec{Kind: midKind, Shape: grid.Square(v*d, root)}
	factor := make(expand.Factor, d)
	for i := range factor {
		factor[i] = grid.Square(v, root)
	}
	e1, err := expand.WithFactor(g, mid, factor)
	if err != nil {
		return nil, fmt.Errorf("square: expansion into %s: %v", mid, err)
	}
	e2, err := reduce.EmbedSimple(mid, h)
	if err != nil {
		return nil, fmt.Errorf("square: reduction %s -> %s: %v", mid, h, err)
	}
	e, err := embed.Compose(e1, e2)
	if err != nil {
		return nil, err
	}
	e.Strategy = "square-increasing[expand ∘ simple-reduce]"
	if pred, perr := Predicted(g.Kind, h.Kind, d, c, l); perr == nil {
		e.Predicted = pred
	}
	return e, nil
}

// Embed constructs the Section 5 embedding between two square graphs of
// the same size. All four kind combinations and all dimension
// relationships are supported.
func Embed(g, h grid.Spec) (*embed.Embedding, error) {
	if !g.Shape.IsSquare() || !h.Shape.IsSquare() {
		return nil, fmt.Errorf("square: both graphs must be square, got %s and %s", g, h)
	}
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("square: sizes differ: %s has %d nodes, %s has %d", g, g.Size(), h, h.Size())
	}
	d, c := g.Dim(), h.Dim()
	switch {
	case d == c:
		return reduce.SameShape(g, h)
	case d > c:
		if d%c == 0 {
			return reduce.EmbedSimple(g, h)
		}
		return embedLoweringChain(g, h)
	default:
		if c%d == 0 {
			return expand.Embed(g, h)
		}
		return embedIncreasingViaIntermediate(g, h)
	}
}
