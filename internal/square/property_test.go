package square

import (
	"testing"

	"torusmesh/internal/grid"
)

// TestSweepAllSquarePairs enumerates every (d, c, l) with l^d <= 5000
// for which a square host exists, and verifies the Section 5 guarantee
// for all four kind combinations — the exhaustive version of the
// hand-picked embedCase tests.
func TestSweepAllSquarePairs(t *testing.T) {
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	checked := 0
	for d := 1; d <= 7; d++ {
		for _, l := range []int{2, 3, 4, 5, 8, 9, 16, 25, 27} {
			size := 1
			overflow := false
			for i := 0; i < d; i++ {
				size *= l
				if size > 5000 {
					overflow = true
					break
				}
			}
			if overflow {
				continue
			}
			for c := 1; c <= 7; c++ {
				if c == d {
					continue
				}
				m, ok := IntRoot(size, c)
				if !ok || m < 2 {
					continue
				}
				for _, gk := range kinds {
					for _, hk := range kinds {
						g := grid.MustSpec(gk, grid.Square(d, l))
						h := grid.MustSpec(hk, grid.Square(c, m))
						e, err := Embed(g, h)
						if err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						if err := e.Verify(); err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						want, err := Predicted(gk, hk, d, c, l)
						if err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						if got := e.Dilation(); got > want {
							t.Fatalf("%s -> %s: dilation %d exceeds guarantee %d (%s)", g, h, got, want, e.Strategy)
						}
						checked++
					}
				}
			}
		}
	}
	if checked < 100 {
		t.Errorf("sweep covered only %d pairs", checked)
	}
	t.Logf("verified %d square pairs", checked)
}
