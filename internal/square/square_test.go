package square

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestGcdIntPowIntRoot(t *testing.T) {
	if Gcd(12, 18) != 6 || Gcd(7, 5) != 1 || Gcd(9, 3) != 3 {
		t.Error("Gcd wrong")
	}
	if IntPow(3, 4) != 81 || IntPow(5, 0) != 1 || IntPow(2, 10) != 1024 {
		t.Error("IntPow wrong")
	}
	cases := []struct {
		x, k, root int
		ok         bool
	}{
		{64, 2, 8, true}, {64, 3, 4, true}, {64, 6, 2, true},
		{81, 4, 3, true}, {12, 2, 0, false}, {8, 2, 0, false},
		{7, 1, 7, true}, {1, 5, 1, true}, {1024, 10, 2, true},
	}
	for _, c := range cases {
		got, ok := IntRoot(c.x, c.k)
		if ok != c.ok || (ok && got != c.root) {
			t.Errorf("IntRoot(%d,%d) = %d,%v; want %d,%v", c.x, c.k, got, ok, c.root, c.ok)
		}
	}
}

func TestChainShapes(t *testing.T) {
	// ℓ=4, d=5, c=2: a=1, u=5, v=2, root=2.
	shapes, err := ChainShapes(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []grid.Shape{
		{4, 4, 4, 4, 4}, {8, 8, 4, 4}, {16, 16, 4}, {32, 32},
	}
	if len(shapes) != len(want) {
		t.Fatalf("chain length %d, want %d", len(shapes), len(want))
	}
	for i := range want {
		if !shapes[i].Equal(want[i]) {
			t.Errorf("shape %d = %s, want %s", i, shapes[i], want[i])
		}
		if shapes[i].Size() != want[0].Size() {
			t.Errorf("shape %d changes size", i)
		}
	}
	if _, err := ChainShapes(4, 4, 2); err == nil {
		t.Error("ChainShapes accepted divisible dimensions")
	}
	if _, err := ChainShapes(8, 3, 2); err == nil {
		t.Error("ChainShapes accepted non-perfect-square side 8 with v=2")
	}
}

func TestPredictedFormulas(t *testing.T) {
	cases := []struct {
		gk, hk  grid.Kind
		d, c, l int
		want    int
	}{
		// Same dimension (Lemma 36).
		{grid.Mesh, grid.Mesh, 2, 2, 5, 1},
		{grid.Torus, grid.Mesh, 2, 2, 5, 2},
		{grid.Torus, grid.Mesh, 3, 3, 2, 1}, // hypercube: torus = mesh
		{grid.Mesh, grid.Torus, 2, 2, 5, 1},
		// Lowering, divisible (Theorem 48): l^{(d-c)/c}.
		{grid.Mesh, grid.Mesh, 4, 2, 2, 2},
		{grid.Torus, grid.Mesh, 4, 2, 2, 4},
		{grid.Torus, grid.Torus, 4, 2, 2, 2},
		{grid.Mesh, grid.Mesh, 2, 1, 4, 4},
		{grid.Torus, grid.Torus, 2, 1, 4, 4}, // MN86: (4,4)-torus -> ring
		// Lowering, non-divisible (Theorem 51): l^{(d-c)/c} via chain.
		{grid.Mesh, grid.Mesh, 3, 2, 4, 2},
		{grid.Torus, grid.Mesh, 3, 2, 4, 4},
		{grid.Mesh, grid.Mesh, 5, 2, 4, 8},
		{grid.Mesh, grid.Mesh, 3, 2, 9, 3},
		// Increasing, divisible (Theorem 52).
		{grid.Mesh, grid.Mesh, 2, 4, 4, 1},
		{grid.Torus, grid.Mesh, 2, 4, 9, 2}, // odd torus into mesh
		{grid.Torus, grid.Mesh, 2, 4, 4, 1}, // even torus into mesh
		{grid.Torus, grid.Torus, 2, 4, 9, 1},
		// Increasing, non-divisible (Theorem 53): l^{(d-a)/c}.
		{grid.Mesh, grid.Mesh, 2, 3, 8, 2},
		{grid.Torus, grid.Mesh, 2, 3, 27, 6}, // odd: 2*27^{1/3}... 2*3
		{grid.Torus, grid.Mesh, 2, 3, 8, 2},  // even: no doubling
		{grid.Torus, grid.Torus, 2, 3, 8, 2},
	}
	for _, c := range cases {
		got, err := Predicted(c.gk, c.hk, c.d, c.c, c.l)
		if err != nil {
			t.Errorf("Predicted(%v,%v,d=%d,c=%d,l=%d): %v", c.gk, c.hk, c.d, c.c, c.l, err)
			continue
		}
		if got != c.want {
			t.Errorf("Predicted(%v,%v,d=%d,c=%d,l=%d) = %d, want %d", c.gk, c.hk, c.d, c.c, c.l, got, c.want)
		}
	}
	if _, err := Predicted(grid.Mesh, grid.Mesh, 3, 2, 8); err == nil {
		t.Error("Predicted accepted side 8 with v=2 (no integer root)")
	}
}

// embedCase runs Embed for all four kind combinations and checks
// verification plus the Theorem 48/51/52/53 dilation guarantees.
func embedCase(t *testing.T, d, c, l int) {
	t.Helper()
	for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
		for _, hk := range []grid.Kind{grid.Mesh, grid.Torus} {
			g := grid.MustSpec(gk, grid.Square(d, l))
			mlen, ok := IntRoot(IntPow(l, d), c)
			if !ok {
				t.Fatalf("bad test case: %d^%d has no %d-th root", l, d, c)
			}
			h := grid.MustSpec(hk, grid.Square(c, mlen))
			e, err := Embed(g, h)
			if err != nil {
				t.Errorf("%s -> %s: %v", g, h, err)
				continue
			}
			if err := e.Verify(); err != nil {
				t.Errorf("%s -> %s: %v", g, h, err)
				continue
			}
			want, err := Predicted(gk, hk, d, c, l)
			if err != nil {
				t.Errorf("%s -> %s: %v", g, h, err)
				continue
			}
			if got := e.Dilation(); got > want {
				t.Errorf("%s -> %s: dilation %d exceeds Section 5 guarantee %d (strategy %s)",
					g, h, got, want, e.Strategy)
			}
		}
	}
}

func TestEmbedSameDimension(t *testing.T)          { embedCase(t, 2, 2, 4) }
func TestEmbedLoweringDivisible(t *testing.T)      { embedCase(t, 4, 2, 2) }
func TestEmbedLoweringDivisibleBig(t *testing.T)   { embedCase(t, 2, 1, 5) }
func TestEmbedLoweringChain32(t *testing.T)        { embedCase(t, 3, 2, 4) }
func TestEmbedLoweringChain52(t *testing.T)        { embedCase(t, 5, 2, 4) }
func TestEmbedLoweringChain43(t *testing.T)        { embedCase(t, 4, 3, 8) }
func TestEmbedLoweringChainOdd(t *testing.T)       { embedCase(t, 3, 2, 9) }
func TestEmbedIncreasingDivisible(t *testing.T)    { embedCase(t, 2, 4, 4) }
func TestEmbedIncreasingDivisibleOdd(t *testing.T) { embedCase(t, 2, 4, 9) }
func TestEmbedIncreasingChain23(t *testing.T)      { embedCase(t, 2, 3, 8) }
func TestEmbedIncreasingChain23Odd(t *testing.T)   { embedCase(t, 2, 3, 27) }
func TestEmbedIncreasingChain34(t *testing.T)      { embedCase(t, 3, 4, 16) }

// TestEmbedExactCosts pins cases where the guarantee is met exactly,
// demonstrating the guarantees are tight for these instances.
func TestEmbedExactCosts(t *testing.T) {
	cases := []struct {
		g, h grid.Spec
		want int
	}{
		{grid.MustSpec(grid.Mesh, grid.Square(2, 4)), grid.LineSpec(16), 4},          // Fitzgerald 2D
		{grid.MustSpec(grid.Torus, grid.Square(2, 4)), grid.RingSpec(16), 4},         // MN86
		{grid.MustSpec(grid.Mesh, grid.Square(3, 2)), grid.LineSpec(8), 4},           // hypercube -> line: 2^{d-1}
		{grid.MustSpec(grid.Mesh, grid.Square(3, 4)), grid.MeshSpec(8, 8), 2},        // chain d=3,c=2
		{grid.MustSpec(grid.Torus, grid.Square(2, 9)), grid.MeshSpec(3, 3, 3, 3), 2}, // odd torus raise
	}
	for _, c := range cases {
		e, err := Embed(c.g, c.h)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if err := e.Verify(); err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if got := e.Dilation(); got != c.want {
			t.Errorf("%s -> %s: dilation %d, want exactly %d", c.g, c.h, got, c.want)
		}
	}
}

func TestEmbedRejections(t *testing.T) {
	if _, err := Embed(grid.MeshSpec(3, 4), grid.MeshSpec(12)); err == nil {
		t.Error("non-square guest accepted")
	}
	if _, err := Embed(grid.MeshSpec(4, 4), grid.MeshSpec(15)); err == nil {
		t.Error("size mismatch accepted")
	}
}
