// Package radix implements the mixed-radix numbering systems of
// Definition 7 in Ma & Tao: given a radix-base L = (l1,...,ld), the set
// Ω_L of radix-L numbers is the set of digit lists (x̂1,...,x̂d) with
// x̂j in [lj]. The bijection u_L maps [n] (n = Πlj) to Ω_L and u_L⁻¹ maps
// back. The package also provides the δm and δt distance measures between
// radix-L numbers (inherited from the corresponding mesh and torus) and
// the spread of acyclic and cyclic sequences (Definition 8).
package radix

import (
	"fmt"

	"torusmesh/internal/grid"
)

// Base is a radix-base L = (l1,...,ld); every component must be > 1.
// It is structurally identical to a grid.Shape because the paper
// deliberately identifies radix-L numbers with torus/mesh nodes.
type Base = grid.Shape

// Weights returns the weights (w0, w1, ..., wd) of the radix-L
// representation: wi = Π_{k=i+1..d} lk, so wd = 1 and w0 = n.
func Weights(L Base) []int {
	d := len(L)
	w := make([]int, d+1)
	w[d] = 1
	for i := d - 1; i >= 0; i-- {
		w[i] = w[i+1] * L[i]
	}
	return w
}

// ToDigits is u_L: it returns the radix-L representation (x̂1,...,x̂d) of
// x, where x̂j = ⌊x/wj⌋ mod lj. x must be in [n].
func ToDigits(L Base, x int) grid.Node {
	d := len(L)
	digits := make(grid.Node, d)
	for j := d - 1; j >= 0; j-- {
		digits[j] = x % L[j]
		x /= L[j]
	}
	return digits
}

// FromDigits is u_L⁻¹: it returns Σ x̂k·wk for a radix-L number.
func FromDigits(L Base, digits grid.Node) int {
	x := 0
	for j, v := range digits {
		x = x*L[j] + v
	}
	return x
}

// DeltaM is the δm-distance between two radix-L numbers: the distance
// between the corresponding nodes of the (l1,...,ld)-mesh.
func DeltaM(L Base, a, b grid.Node) int { return grid.DistanceMesh(L, a, b) }

// DeltaT is the δt-distance between two radix-L numbers: the distance
// between the corresponding nodes of the (l1,...,ld)-torus. It never
// exceeds DeltaM.
func DeltaT(L Base, a, b grid.Node) int { return grid.DistanceTorus(L, a, b) }

// Sequence is a bijection f: [n] -> Ω_L materialized as the list
// f(0), f(1), ..., f(n-1).
type Sequence []grid.Node

// SequenceOf materializes fn over [n].
func SequenceOf(n int, fn func(int) grid.Node) Sequence {
	s := make(Sequence, n)
	for x := range s {
		s[x] = fn(x)
	}
	return s
}

// SpreadAcyclicM returns the δm-spread of the acyclic sequence: the
// maximum δm-distance among successive elements.
func SpreadAcyclicM(L Base, s Sequence) int { return spread(L, s, false, DeltaM) }

// SpreadAcyclicT returns the δt-spread of the acyclic sequence.
func SpreadAcyclicT(L Base, s Sequence) int { return spread(L, s, false, DeltaT) }

// SpreadCyclicM returns the δm-spread of the cyclic sequence: successive
// elements include the pair (last, first).
func SpreadCyclicM(L Base, s Sequence) int { return spread(L, s, true, DeltaM) }

// SpreadCyclicT returns the δt-spread of the cyclic sequence.
func SpreadCyclicT(L Base, s Sequence) int { return spread(L, s, true, DeltaT) }

func spread(L Base, s Sequence, cyclic bool, dist func(Base, grid.Node, grid.Node) int) int {
	max := 0
	for i := 1; i < len(s); i++ {
		if d := dist(L, s[i-1], s[i]); d > max {
			max = d
		}
	}
	if cyclic && len(s) > 1 {
		if d := dist(L, s[len(s)-1], s[0]); d > max {
			max = d
		}
	}
	return max
}

// CheckBijection verifies that s enumerates every radix-L number exactly
// once. Returns nil on success.
func CheckBijection(L Base, s Sequence) error {
	n := 1
	for _, l := range L {
		n *= l
	}
	if len(s) != n {
		return fmt.Errorf("radix: sequence has %d elements, want %d", len(s), n)
	}
	seen := make([]bool, n)
	for i, digits := range s {
		if !digits.InBounds(grid.Shape(L)) {
			return fmt.Errorf("radix: element %d = %s out of bounds for base %s", i, digits, grid.Shape(L))
		}
		x := FromDigits(L, digits)
		if seen[x] {
			return fmt.Errorf("radix: element %d = %s repeats value %d", i, digits, x)
		}
		seen[x] = true
	}
	return nil
}
