package radix

import (
	"testing"
	"testing/quick"

	"torusmesh/internal/grid"
)

// TestWeightsExample checks the worked example below Definition 7:
// for L = (4,2,3), w1 = 6, w2 = 3, w3 = 1, and w0 = n = 24.
func TestWeightsExample(t *testing.T) {
	w := Weights(Base{4, 2, 3})
	want := []int{24, 6, 3, 1}
	if len(w) != len(want) {
		t.Fatalf("Weights len = %d, want %d", len(w), len(want))
	}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("w[%d] = %d, want %d", i, w[i], want[i])
		}
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	bases := []Base{{4, 2, 3}, {7}, {2, 2, 2, 2}, {3, 5, 2}}
	for _, L := range bases {
		n := grid.Shape(L).Size()
		for x := 0; x < n; x++ {
			d := ToDigits(L, x)
			if got := FromDigits(L, d); got != x {
				t.Fatalf("base %v: FromDigits(ToDigits(%d)) = %d", L, x, got)
			}
		}
	}
}

func TestDigitsRoundTripProperty(t *testing.T) {
	err := quick.Check(func(raw [4]uint8, xi uint16) bool {
		L := Base{int(raw[0]%5) + 2, int(raw[1]%5) + 2, int(raw[2]%5) + 2, int(raw[3]%5) + 2}
		n := grid.Shape(L).Size()
		x := int(xi) % n
		return FromDigits(L, ToDigits(L, x)) == x
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDigitsMatchWeightsDefinition(t *testing.T) {
	// Definition 7: x̂_j = ⌊x/w_j⌋ mod l_j.
	L := Base{4, 2, 3}
	w := Weights(L)
	n := grid.Shape(L).Size()
	for x := 0; x < n; x++ {
		d := ToDigits(L, x)
		for j, l := range L {
			if want := (x / w[j+1]) % l; d[j] != want {
				t.Fatalf("x=%d digit %d = %d, want %d", x, j, d[j], want)
			}
		}
	}
}

// exampleSpread is a hand-built f : [9] -> Ω(3,3) reproducing the spread
// structure of Figure 3: acyclic δm-spread 2 and δt-spread 1, cyclic
// δm-spread 3 and δt-spread 2.
var exampleSpread = Sequence{
	{0, 0}, {0, 1}, {0, 2}, {2, 2}, {2, 0}, {2, 1}, {1, 1}, {1, 0}, {1, 2},
}

func TestSpreadFigure3(t *testing.T) {
	L := Base{3, 3}
	if err := CheckBijection(L, exampleSpread); err != nil {
		t.Fatal(err)
	}
	if got := SpreadAcyclicM(L, exampleSpread); got != 2 {
		t.Errorf("acyclic δm-spread = %d, want 2", got)
	}
	if got := SpreadAcyclicT(L, exampleSpread); got != 1 {
		t.Errorf("acyclic δt-spread = %d, want 1", got)
	}
	if got := SpreadCyclicM(L, exampleSpread); got != 3 {
		t.Errorf("cyclic δm-spread = %d, want 3", got)
	}
	if got := SpreadCyclicT(L, exampleSpread); got != 2 {
		t.Errorf("cyclic δt-spread = %d, want 2", got)
	}
}

func TestSpreadDegenerate(t *testing.T) {
	L := Base{2}
	single := Sequence{{0}}
	if got := SpreadAcyclicM(L, single); got != 0 {
		t.Errorf("single-element acyclic spread = %d, want 0", got)
	}
	if got := SpreadCyclicM(L, single); got != 0 {
		t.Errorf("single-element cyclic spread = %d, want 0", got)
	}
}

func TestCheckBijectionFailures(t *testing.T) {
	L := Base{2, 2}
	if err := CheckBijection(L, Sequence{{0, 0}}); err == nil {
		t.Error("short sequence accepted")
	}
	dup := Sequence{{0, 0}, {0, 1}, {0, 0}, {1, 1}}
	if err := CheckBijection(L, dup); err == nil {
		t.Error("duplicate accepted")
	}
	oob := Sequence{{0, 0}, {0, 1}, {1, 0}, {1, 2}}
	if err := CheckBijection(L, oob); err == nil {
		t.Error("out-of-bounds accepted")
	}
	good := Sequence{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if err := CheckBijection(L, good); err != nil {
		t.Errorf("valid bijection rejected: %v", err)
	}
}

func TestDeltaTNeverExceedsDeltaM(t *testing.T) {
	err := quick.Check(func(raw [3]uint8, ai, bi uint16) bool {
		L := Base{int(raw[0]%4) + 2, int(raw[1]%4) + 2, int(raw[2]%4) + 2}
		n := grid.Shape(L).Size()
		a := ToDigits(L, int(ai)%n)
		b := ToDigits(L, int(bi)%n)
		return DeltaT(L, a, b) <= DeltaM(L, a, b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSequenceOf(t *testing.T) {
	L := Base{2, 3}
	s := SequenceOf(6, func(x int) grid.Node { return ToDigits(L, x) })
	if err := CheckBijection(L, s); err != nil {
		t.Fatal(err)
	}
	if got := SpreadAcyclicM(L, s); got != 3 {
		// The naive sequence wraps (0,2) -> (1,0): |1-0| + |0-2| = 3.
		t.Errorf("naive sequence δm-spread = %d, want 3", got)
	}
}
