package gray

import (
	"testing"
	"testing/quick"

	"torusmesh/internal/grid"
	"torusmesh/internal/radix"
)

// baseFromRaw derives a small radix base from raw bytes: dimension 1..4,
// lengths 2..5. Used to drive property tests over structured inputs.
func baseFromRaw(raw []uint8, dims int) radix.Base {
	L := make(radix.Base, dims)
	for i := range L {
		L[i] = int(raw[i]%4) + 2
	}
	return L
}

var testBases = []radix.Base{
	{4, 2, 3}, {2, 3}, {3, 2}, {5}, {2}, {2, 2}, {2, 2, 2, 2},
	{3, 3}, {4, 6}, {3, 3, 3}, {2, 2, 3}, {6, 2}, {4, 4}, {5, 3, 2},
	{2, 5}, {3, 4, 5}, {7, 2}, {2, 7},
}

// TestFSeqFigure9 pins the full table of f_L for L = (4,2,3) from
// Figure 9 of the paper.
func TestFSeqFigure9(t *testing.T) {
	want := []grid.Node{
		{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 1, 2}, {0, 1, 1}, {0, 1, 0},
		{1, 1, 0}, {1, 1, 1}, {1, 1, 2}, {1, 0, 2}, {1, 0, 1}, {1, 0, 0},
		{2, 0, 0}, {2, 0, 1}, {2, 0, 2}, {2, 1, 2}, {2, 1, 1}, {2, 1, 0},
		{3, 1, 0}, {3, 1, 1}, {3, 1, 2}, {3, 0, 2}, {3, 0, 1}, {3, 0, 0},
	}
	L := radix.Base{4, 2, 3}
	for x, w := range want {
		if got := F(L, x); !got.Equal(w) {
			t.Errorf("f(%d) = %s, want %s", x, got, w)
		}
	}
}

// TestHSeqFigure9 pins the full table of h_L for L = (4,2,3) from
// Figure 9: forward pass through three 4x2 planes filling 7 nodes each
// (reversed in the middle plane), then a backward pass filling the last
// node of each plane.
func TestHSeqFigure9(t *testing.T) {
	want := []grid.Node{
		{3, 0, 0}, {2, 0, 0}, {1, 0, 0}, {0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {2, 1, 0},
		{2, 1, 1}, {1, 1, 1}, {0, 1, 1}, {0, 0, 1}, {1, 0, 1}, {2, 0, 1}, {3, 0, 1},
		{3, 0, 2}, {2, 0, 2}, {1, 0, 2}, {0, 0, 2}, {0, 1, 2}, {1, 1, 2}, {2, 1, 2},
		{3, 1, 2}, {3, 1, 1}, {3, 1, 0},
	}
	L := radix.Base{4, 2, 3}
	for x, w := range want {
		if got := H(L, x); !got.Equal(w) {
			t.Errorf("h(%d) = %s, want %s", x, got, w)
		}
	}
}

// TestGSpotFigure9 checks g_L = f_L ∘ t_n values for L = (4,2,3).
func TestGSpotFigure9(t *testing.T) {
	L := radix.Base{4, 2, 3}
	cases := []struct {
		x    int
		want grid.Node
	}{
		{0, grid.Node{0, 0, 0}},  // f(0)
		{1, grid.Node{0, 0, 2}},  // f(2)
		{11, grid.Node{3, 0, 1}}, // f(22)
		{12, grid.Node{3, 0, 0}}, // f(23)
		{13, grid.Node{3, 0, 2}}, // f(21)
		{23, grid.Node{0, 0, 1}}, // f(1)
	}
	for _, c := range cases {
		if got := G(L, c.x); !got.Equal(c.want) {
			t.Errorf("g(%d) = %s, want %s", c.x, got, c.want)
		}
	}
}

// TestFigure11Sequences pins the component sequences used in Figure 11:
// f, g and h over the bases (2,2) and (2,3).
func TestFigure11Sequences(t *testing.T) {
	f22 := []grid.Node{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for x, w := range f22 {
		if got := F(radix.Base{2, 2}, x); !got.Equal(w) {
			t.Errorf("f_(2,2)(%d) = %s, want %s", x, got, w)
		}
	}
	f23 := []grid.Node{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 1}, {1, 0}}
	for x, w := range f23 {
		if got := F(radix.Base{2, 3}, x); !got.Equal(w) {
			t.Errorf("f_(2,3)(%d) = %s, want %s", x, got, w)
		}
	}
	g23 := []grid.Node{{0, 0}, {0, 2}, {1, 1}, {1, 0}, {1, 2}, {0, 1}}
	for x, w := range g23 {
		if got := G(radix.Base{2, 3}, x); !got.Equal(w) {
			t.Errorf("g_(2,3)(%d) = %s, want %s", x, got, w)
		}
	}
	h23 := []grid.Node{{1, 0}, {0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 1}}
	for x, w := range h23 {
		if got := H(radix.Base{2, 3}, x); !got.Equal(w) {
			t.Errorf("h_(2,3)(%d) = %s, want %s", x, got, w)
		}
	}
}

func TestFBijectiveAndUnitSpread(t *testing.T) {
	for _, L := range testBases {
		s := FSeq(L)
		if err := radix.CheckBijection(L, s); err != nil {
			t.Errorf("f_%v: %v", L, err)
			continue
		}
		n := grid.Shape(L).Size()
		if n > 1 {
			if got := radix.SpreadAcyclicM(L, s); got != 1 {
				t.Errorf("f_%v: acyclic δm-spread = %d, want 1 (Lemma 11)", L, got)
			}
			if got := radix.SpreadAcyclicT(L, s); got != 1 {
				t.Errorf("f_%v: acyclic δt-spread = %d, want 1 (Lemma 12)", L, got)
			}
		}
	}
}

func TestFInv(t *testing.T) {
	for _, L := range testBases {
		n := grid.Shape(L).Size()
		for x := 0; x < n; x++ {
			if got := FInv(L, F(L, x)); got != x {
				t.Fatalf("f_%v: FInv(F(%d)) = %d", L, x, got)
			}
		}
	}
}

// TestLemma19 verifies f_L(n-1) = (l1-1, 0, ..., 0) when l1 is even.
func TestLemma19(t *testing.T) {
	for _, L := range testBases {
		if L[0]%2 != 0 {
			continue
		}
		n := grid.Shape(L).Size()
		got := F(L, n-1)
		if got[0] != L[0]-1 {
			t.Errorf("f_%v(n-1) = %s: first digit %d, want %d", L, got, got[0], L[0]-1)
		}
		for j := 1; j < len(L); j++ {
			if got[j] != 0 {
				t.Errorf("f_%v(n-1) = %s: digit %d nonzero (Lemma 19)", L, got, j)
			}
		}
	}
}

func TestTNCyclicSpread2(t *testing.T) {
	for n := 1; n <= 40; n++ {
		seen := make([]bool, n)
		for x := 0; x < n; x++ {
			y := TN(n, x)
			if y < 0 || y >= n || seen[y] {
				t.Fatalf("t_%d not a bijection at x=%d (y=%d)", n, x, y)
			}
			seen[y] = true
			if got := TNInv(n, y); got != x {
				t.Fatalf("t_%d: TNInv(TN(%d)) = %d", n, x, got)
			}
		}
		for x := 0; x < n; x++ {
			diff := TN(n, x) - TN(n, (x+1)%n)
			if diff < 0 {
				diff = -diff
			}
			if diff > 2 {
				t.Fatalf("t_%d: |t(%d) - t(%d)| = %d > 2", n, x, (x+1)%n, diff)
			}
		}
	}
}

func TestGCyclicSpreadAtMost2(t *testing.T) {
	for _, L := range testBases {
		s := GSeq(L)
		if err := radix.CheckBijection(L, s); err != nil {
			t.Errorf("g_%v: %v", L, err)
			continue
		}
		if got := radix.SpreadCyclicM(L, s); got > 2 {
			t.Errorf("g_%v: cyclic δm-spread = %d, want <= 2 (Lemma 16)", L, got)
		}
	}
}

func TestGInv(t *testing.T) {
	for _, L := range testBases {
		n := grid.Shape(L).Size()
		for x := 0; x < n; x++ {
			if got := GInv(L, G(L, x)); got != x {
				t.Fatalf("g_%v: GInv(G(%d)) = %d", L, x, got)
			}
		}
	}
}

func TestRSpreads(t *testing.T) {
	for _, L := range testBases {
		if len(L) != 2 {
			continue
		}
		s := RSeq(L)
		if err := radix.CheckBijection(L, s); err != nil {
			t.Errorf("r_%v: %v", L, err)
			continue
		}
		if got := radix.SpreadCyclicT(L, s); got != 1 {
			t.Errorf("r_%v: cyclic δt-spread = %d, want 1 (Lemma 26)", L, got)
		}
		if L[0]%2 == 0 {
			if got := radix.SpreadCyclicM(L, s); got != 1 {
				t.Errorf("r_%v: cyclic δm-spread = %d, want 1 (Lemma 21)", L, got)
			}
		}
	}
}

func TestRInv(t *testing.T) {
	for _, L := range testBases {
		if len(L) != 2 {
			continue
		}
		n := grid.Shape(L).Size()
		for x := 0; x < n; x++ {
			if got := RInv(L, R(L, x)); got != x {
				t.Fatalf("r_%v: RInv(R(%d)) = %d", L, x, got)
			}
		}
	}
}

func TestHSpreads(t *testing.T) {
	for _, L := range testBases {
		s := HSeq(L)
		if err := radix.CheckBijection(L, s); err != nil {
			t.Errorf("h_%v: %v", L, err)
			continue
		}
		if got := radix.SpreadCyclicT(L, s); got > 1 && grid.Shape(L).Size() > 1 {
			t.Errorf("h_%v: cyclic δt-spread = %d, want 1 (Lemma 27)", L, got)
		}
		if len(L) >= 2 && L[0]%2 == 0 {
			if got := radix.SpreadCyclicM(L, s); got != 1 {
				t.Errorf("h_%v: cyclic δm-spread = %d, want 1 (Lemma 23)", L, got)
			}
		}
	}
}

func TestHInv(t *testing.T) {
	for _, L := range testBases {
		n := grid.Shape(L).Size()
		for x := 0; x < n; x++ {
			if got := HInv(L, H(L, x)); got != x {
				t.Fatalf("h_%v: HInv(H(%d)) = %d", L, x, got)
			}
		}
	}
}

// TestPNaiveSpread verifies the ablation claim of Section 3.1: the naive
// sequence P has δm-spread greater than 1 for every base of dimension
// greater than 1 (its spread reaches max over the wrapping digits), while
// the reflected sequence f fixes it.
func TestPNaiveSpread(t *testing.T) {
	for _, L := range testBases {
		if len(L) < 2 {
			continue
		}
		s := PSeq(L)
		if got := radix.SpreadAcyclicM(L, s); got <= 1 {
			t.Errorf("P_%v: acyclic δm-spread = %d, want > 1", L, got)
		}
	}
}

func TestPropertyFGHBijectiveRandomBases(t *testing.T) {
	err := quick.Check(func(raw [4]uint8, dsel uint8) bool {
		dims := int(dsel%4) + 1
		L := baseFromRaw(raw[:], dims)
		if err := radix.CheckBijection(L, FSeq(L)); err != nil {
			return false
		}
		if err := radix.CheckBijection(L, GSeq(L)); err != nil {
			return false
		}
		if err := radix.CheckBijection(L, HSeq(L)); err != nil {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertySpreadsRandomBases(t *testing.T) {
	err := quick.Check(func(raw [4]uint8, dsel uint8) bool {
		dims := int(dsel%4) + 1
		L := baseFromRaw(raw[:], dims)
		n := grid.Shape(L).Size()
		if n <= 1 {
			return true
		}
		if radix.SpreadAcyclicM(L, FSeq(L)) != 1 {
			return false
		}
		if radix.SpreadCyclicM(L, GSeq(L)) > 2 {
			return false
		}
		if radix.SpreadCyclicT(L, HSeq(L)) != 1 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestBrgcMatchesF verifies that for all-twos bases the mixed-radix
// reflected sequence coincides with the classic binary reflected Gray
// code.
func TestBrgcMatchesF(t *testing.T) {
	for d := 1; d <= 6; d++ {
		L := radix.Base(grid.Hypercube(d))
		n := 1 << d
		for x := 0; x < n; x++ {
			v := F(L, x)
			bits := 0
			for _, b := range v {
				bits = bits<<1 | b
			}
			if bits != Brgc(x) {
				t.Fatalf("d=%d x=%d: f digits %v != brgc %b", d, x, v, Brgc(x))
			}
			if BrgcInv(Brgc(x)) != x {
				t.Fatalf("BrgcInv(Brgc(%d)) != %d", x, x)
			}
		}
	}
}

func TestRPanicsOnWrongDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("R accepted a 3-dimensional base")
		}
	}()
	R(radix.Base{2, 2, 2}, 0)
}
