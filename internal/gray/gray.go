// Package gray implements the generalized Gray-code sequences at the core
// of Ma & Tao's embedding constructions: the reflected mixed-radix
// sequence f_L (Definition 9), the spread-2 cyclic index sequence t_n
// (Definition 14), the ring-in-mesh sequence g_L (Definition 15), the
// two-dimensional cyclic sequence r_L (Definition 20), and the general
// cyclic sequence h_L (Definition 22). Each sequence is exposed both as a
// point function (value at position x) and as an inverse (position of a
// value); all are bijections between [n] and the radix-L numbers Ω_L.
//
// Guarantees proved in the paper and enforced by this package's tests:
//
//	f_L: unit acyclic δm-spread and δt-spread (Lemmas 11, 12).
//	g_L: cyclic δm-spread at most 2 (Lemma 16).
//	r_L: unit cyclic δt-spread (Lemma 26); unit cyclic δm-spread when l1
//	     is even (Lemma 21).
//	h_L: unit cyclic δt-spread (Lemma 27); unit cyclic δm-spread when l1
//	     is even and d >= 2 (Lemma 23).
package gray

import (
	"fmt"

	"torusmesh/internal/grid"
	"torusmesh/internal/radix"
)

// P returns the naive radix-L representation of x (the sequence P of
// Section 3.1, before reflection). Successive elements can differ by up
// to max(l_i) - 1 in a single coordinate, which is why the reflected
// sequence F exists. Kept as an explicit ablation baseline.
func P(L radix.Base, x int) grid.Node { return radix.ToDigits(L, x) }

// F is the reflected mixed-radix Gray sequence f_L of Definition 9:
// digit i of f_L(x) equals the i-th radix-L digit x̂_i of x when
// ⌊x/w_{i-1}⌋ is even and l_i - x̂_i - 1 when it is odd. The prefix value
// ⌊x/w_{i-1}⌋ is exactly the integer formed by the first i-1 true digits,
// which lets us compute the whole list in one left-to-right pass.
func F(L radix.Base, x int) grid.Node {
	digits := radix.ToDigits(L, x)
	prefix := 0
	for j, l := range L {
		hat := digits[j]
		if prefix%2 == 1 {
			digits[j] = l - hat - 1
		}
		prefix = prefix*l + hat
	}
	return digits
}

// FInv returns the position x with F(L, x) equal to v.
func FInv(L radix.Base, v grid.Node) int {
	prefix := 0
	for j, l := range L {
		hat := v[j]
		if prefix%2 == 1 {
			hat = l - hat - 1
		}
		prefix = prefix*l + hat
	}
	return prefix
}

// TN is the cyclic index sequence t_n of Definition 14: the cyclic
// sequence 0, 2, 4, ..., 5, 3, 1 of all numbers in [n] whose successive
// elements (including the wrap-around pair) differ by at most 2.
func TN(n, x int) int {
	if 2*x <= n-1 {
		return 2 * x
	}
	return 2*(n-x) - 1
}

// TNInv returns the position of value y in the sequence t_n.
func TNInv(n, y int) int {
	if y%2 == 0 {
		return y / 2
	}
	return n - (y+1)/2
}

// G is the cyclic sequence g_L = f_L ∘ t_n of Definition 15. Its cyclic
// δm-spread is at most 2, giving a dilation-2 embedding of a ring in a
// mesh (Theorem 17), optimal when the mesh has odd size or is a line of
// size greater than 2.
func G(L radix.Base, x int) grid.Node {
	n := grid.Shape(L).Size()
	return F(L, TN(n, x))
}

// GInv returns the position x with G(L, x) equal to v.
func GInv(L radix.Base, v grid.Node) int {
	n := grid.Shape(L).Size()
	return TNInv(n, FInv(L, v))
}

// R is the two-dimensional cyclic sequence r_L of Definition 20 for
// L = (l1, l2): march down the first column from (l1-1, 0) to (0, 0),
// then sweep the remaining (l1, l2-1)-mesh with f. Unit cyclic δt-spread
// always; unit cyclic δm-spread when l1 is even.
func R(L radix.Base, x int) grid.Node {
	if len(L) != 2 {
		panic(fmt.Sprintf("gray: R requires a 2-dimensional base, got %v", L))
	}
	l1, l2 := L[0], L[1]
	if x < l1 {
		return grid.Node{l1 - 1 - x, 0}
	}
	if l2 == 2 {
		return grid.Node{x - l1, 1}
	}
	v := F(radix.Base{l1, l2 - 1}, x-l1)
	return grid.Node{v[0], v[1] + 1}
}

// RInv returns the position x with R(L, x) equal to v.
func RInv(L radix.Base, v grid.Node) int {
	l1, l2 := L[0], L[1]
	if v[1] == 0 {
		return l1 - 1 - v[0]
	}
	if l2 == 2 {
		return l1 + v[0]
	}
	return l1 + FInv(radix.Base{l1, l2 - 1}, grid.Node{v[0], v[1] - 1})
}

// H is the cyclic sequence h_L of Definition 22. For d >= 3 it marches
// through the (l3,...,ld) "planes" ordered by f_{L”}: a forward pass
// fills l1·l2 - 1 nodes per plane following r_{L'} (reversed on
// odd-numbered planes), then a backward pass fills the last node
// r_{L'}(l1·l2 - 1) of each plane. For d = 2 it is r_L; for d = 1 the
// identity. Unit cyclic δt-spread always (Theorem 28: a ring embeds in
// any torus of the same size with dilation 1); unit cyclic δm-spread when
// l1 is even (Theorem 24 after permuting an even length to the front).
func H(L radix.Base, x int) grid.Node {
	switch len(L) {
	case 1:
		return grid.Node{x}
	case 2:
		return R(L, x)
	}
	lp := radix.Base{L[0], L[1]}
	lpp := radix.Base(L[2:])
	plane := L[0] * L[1]
	m := grid.Shape(lpp).Size()
	n := plane * m
	seg := plane - 1
	if x < m*seg {
		a, b := x/seg, x%seg
		if a%2 == 1 {
			b = plane - b - 2
		}
		return grid.Concat(R(lp, b), F(lpp, a))
	}
	return grid.Concat(R(lp, plane-1), F(lpp, n-x-1))
}

// HInv returns the position x with H(L, x) equal to v.
func HInv(L radix.Base, v grid.Node) int {
	switch len(L) {
	case 1:
		return v[0]
	case 2:
		return RInv(L, v)
	}
	lp := radix.Base{L[0], L[1]}
	lpp := radix.Base(L[2:])
	plane := L[0] * L[1]
	m := grid.Shape(lpp).Size()
	n := plane * m
	seg := plane - 1
	p := RInv(lp, grid.Node(v[:2]))
	a := FInv(lpp, grid.Node(v[2:]))
	if p == plane-1 {
		return n - a - 1 // backward pass
	}
	b := p
	if a%2 == 1 {
		b = plane - p - 2
	}
	return a*seg + b
}

// Sequences materialized over the whole domain.

// PSeq returns the naive sequence P for L.
func PSeq(L radix.Base) radix.Sequence {
	return radix.SequenceOf(grid.Shape(L).Size(), func(x int) grid.Node { return P(L, x) })
}

// FSeq returns the full sequence f_L.
func FSeq(L radix.Base) radix.Sequence {
	return radix.SequenceOf(grid.Shape(L).Size(), func(x int) grid.Node { return F(L, x) })
}

// GSeq returns the full cyclic sequence g_L.
func GSeq(L radix.Base) radix.Sequence {
	return radix.SequenceOf(grid.Shape(L).Size(), func(x int) grid.Node { return G(L, x) })
}

// RSeq returns the full cyclic sequence r_L (L must be 2-dimensional).
func RSeq(L radix.Base) radix.Sequence {
	return radix.SequenceOf(grid.Shape(L).Size(), func(x int) grid.Node { return R(L, x) })
}

// HSeq returns the full cyclic sequence h_L.
func HSeq(L radix.Base) radix.Sequence {
	return radix.SequenceOf(grid.Shape(L).Size(), func(x int) grid.Node { return H(L, x) })
}

// Brgc returns the classic binary reflected Gray code value x XOR (x>>1).
// For the all-twos base, F coincides with this code digit-for-digit
// (the paper's Section 2 observation that Gray codes are the radix-2
// special case of unit-spread sequences).
func Brgc(x int) int { return x ^ (x >> 1) }

// BrgcInv inverts Brgc.
func BrgcInv(g int) int {
	x := 0
	for ; g != 0; g >>= 1 {
		x ^= g
	}
	return x
}
