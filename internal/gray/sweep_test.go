package gray

import (
	"testing"

	"torusmesh/internal/catalog"
	"torusmesh/internal/grid"
	"torusmesh/internal/radix"
)

// TestSweepAllShapes exhaustively verifies every sequence property of
// Section 3 over every shape (ordered factorization) of every size up to
// 48: bijectivity, the exact spreads of Lemmas 11, 12, 16, 21, 23, 26
// and 27, the endpoint property of Lemma 19, and all inverses.
func TestSweepAllShapes(t *testing.T) {
	for n := 4; n <= 48; n++ {
		for _, shape := range catalog.ShapesOfSize(n, 0) {
			L := radix.Base(shape)
			verifyShape(t, L)
		}
	}
}

func verifyShape(t *testing.T, L radix.Base) {
	t.Helper()
	n := grid.Shape(L).Size()

	f := FSeq(L)
	if err := radix.CheckBijection(L, f); err != nil {
		t.Fatalf("f_%v: %v", L, err)
	}
	if got := radix.SpreadAcyclicM(L, f); got != 1 {
		t.Fatalf("f_%v: acyclic δm-spread %d (Lemma 11)", L, got)
	}
	if got := radix.SpreadAcyclicT(L, f); got != 1 {
		t.Fatalf("f_%v: acyclic δt-spread %d (Lemma 12)", L, got)
	}
	if L[0]%2 == 0 {
		end := f[n-1]
		if end[0] != L[0]-1 {
			t.Fatalf("f_%v(n-1) = %v (Lemma 19)", L, end)
		}
		for j := 1; j < len(L); j++ {
			if end[j] != 0 {
				t.Fatalf("f_%v(n-1) = %v (Lemma 19)", L, end)
			}
		}
	}

	g := GSeq(L)
	if err := radix.CheckBijection(L, g); err != nil {
		t.Fatalf("g_%v: %v", L, err)
	}
	if got := radix.SpreadCyclicM(L, g); got > 2 {
		t.Fatalf("g_%v: cyclic δm-spread %d (Lemma 16)", L, got)
	}

	h := HSeq(L)
	if err := radix.CheckBijection(L, h); err != nil {
		t.Fatalf("h_%v: %v", L, err)
	}
	if got := radix.SpreadCyclicT(L, h); got != 1 {
		t.Fatalf("h_%v: cyclic δt-spread %d (Lemma 27)", L, got)
	}
	if len(L) >= 2 && L[0]%2 == 0 {
		if got := radix.SpreadCyclicM(L, h); got != 1 {
			t.Fatalf("h_%v: cyclic δm-spread %d (Lemma 23)", L, got)
		}
	}
	if len(L) == 2 {
		r := RSeq(L)
		if err := radix.CheckBijection(L, r); err != nil {
			t.Fatalf("r_%v: %v", L, err)
		}
		if got := radix.SpreadCyclicT(L, r); got != 1 {
			t.Fatalf("r_%v: cyclic δt-spread %d (Lemma 26)", L, got)
		}
		if L[0]%2 == 0 {
			if got := radix.SpreadCyclicM(L, r); got != 1 {
				t.Fatalf("r_%v: cyclic δm-spread %d (Lemma 21)", L, got)
			}
		}
	}

	for x := 0; x < n; x++ {
		if FInv(L, f[x]) != x {
			t.Fatalf("f_%v inverse broken at %d", L, x)
		}
		if GInv(L, g[x]) != x {
			t.Fatalf("g_%v inverse broken at %d", L, x)
		}
		if HInv(L, h[x]) != x {
			t.Fatalf("h_%v inverse broken at %d", L, x)
		}
	}
}

// TestSweepLargerSpotShapes covers a few larger, higher-dimensional
// bases beyond the exhaustive range.
func TestSweepLargerSpotShapes(t *testing.T) {
	for _, L := range []radix.Base{
		{6, 5, 4, 3}, {2, 3, 4, 5}, {7, 7, 2}, {10, 10}, {3, 3, 3, 3},
		{2, 2, 2, 2, 2, 2, 2}, {12, 11}, {4, 4, 4, 4},
	} {
		verifyShape(t, L)
	}
}
