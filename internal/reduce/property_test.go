package reduce

import (
	"testing"
	"testing/quick"

	"torusmesh/internal/grid"
)

// TestPropertySimpleReduction generates random guest shapes and random
// groupings, then checks Theorem 39's bound for every kind combination.
func TestPropertySimpleReduction(t *testing.T) {
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	err := quick.Check(func(raw [5]uint8, cuts uint8) bool {
		// Guest: 3..5 dimensions with lengths 2..5.
		d := int(raw[4]%3) + 3
		L := make(grid.Shape, d)
		for i := range L {
			L[i] = int(raw[i]%4) + 2
		}
		// Host: partition L's positions into c contiguous groups using
		// the cuts bitmask (at least one cut so c < d).
		var M grid.Shape
		prod := L[0]
		for i := 1; i < d; i++ {
			if cuts&(1<<uint(i)) != 0 {
				M = append(M, prod)
				prod = L[i]
			} else {
				prod *= L[i]
			}
		}
		M = append(M, prod)
		if len(M) >= d || len(M) < 1 {
			return true // grouping degenerated; skip
		}
		f, ok := FindSimple(L, M)
		if !ok {
			return false // a contiguous grouping exists by construction
		}
		bound := f.Dilation()
		for _, gk := range kinds {
			for _, hk := range kinds {
				e, err := EmbedSimple(grid.Spec{Kind: gk, Shape: L}, grid.Spec{Kind: hk, Shape: M})
				if err != nil {
					return false
				}
				if err := e.Verify(); err != nil {
					return false
				}
				want := bound
				if gk == grid.Torus && hk == grid.Mesh {
					want *= 2
				}
				if e.Dilation() > want {
					t.Logf("L=%v M=%v %v->%v: dilation %d > bound %d", L, M, gk, hk, e.Dilation(), want)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyGeneralReduction generates random general-reduction pairs
// by construction (multiply b leading multiplicands by factors of the
// multipliers) and checks Theorem 43's bound.
func TestPropertyGeneralReduction(t *testing.T) {
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	err := quick.Check(func(raw [4]uint8) bool {
		// L' has c = 3 components 2..4; L'' has one component s1*s2 with
		// s1, s2 in 2..3; M multiplies the first two of L'.
		lp := grid.Shape{int(raw[0]%3) + 2, int(raw[1]%3) + 2, int(raw[2]%3) + 2}
		s1 := int(raw[3]%2) + 2
		s2 := int(raw[3]/2%2) + 2
		L := append(lp.Clone(), s1*s2)
		M := grid.Shape{lp[0] * s1, lp[1] * s2, lp[2]}
		maxS := s1
		if s2 > maxS {
			maxS = s2
		}
		f, ok := FindGeneral(L, M)
		if !ok {
			t.Logf("no factor found for L=%v M=%v", L, M)
			return false
		}
		if f.MaxS() > maxS {
			// The search may have found a different but valid split with
			// a worse bound only if ours is impossible; by construction
			// ours exists, so the minimum cannot exceed maxS.
			t.Logf("L=%v M=%v: found MaxS %d > constructed %d", L, M, f.MaxS(), maxS)
			return false
		}
		for _, gk := range kinds {
			for _, hk := range kinds {
				e, err := EmbedGeneral(grid.Spec{Kind: gk, Shape: L}, grid.Spec{Kind: hk, Shape: M})
				if err != nil {
					return false
				}
				want := f.MaxS()
				if gk == grid.Torus && hk == grid.Mesh {
					want *= 2
				}
				if e.Dilation() > want {
					t.Logf("L=%v M=%v %v->%v: dilation %d > bound %d", L, M, gk, hk, e.Dilation(), want)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}
