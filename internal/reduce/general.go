package reduce

import (
	"fmt"
	"sort"

	"torusmesh/internal/embed"
	"torusmesh/internal/expand"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
)

// GeneralFactor describes a general reduction of L into M per
// Definition 41: L splits (up to permutation) into a multiplicant sublist
// L' of length c and a multiplier sublist L” of length d−c; each l”_i
// factors into the list S_i of integers > 1; and M is (up to permutation)
// [S̄ ∘ 1] × L', i.e. the first b = |S̄| components of L' each multiplied
// by one factor. The supernode reading: G is an L'-grid of L”-grid
// supernodes, H is an L'-grid of S̄-mesh supernodes, and S̄'s shape is an
// expansion of L”.
type GeneralFactor struct {
	LPrime  grid.Shape // multiplicant sublist, length c; first B entries get multiplied
	LDouble grid.Shape // multiplier sublist, length d-c
	S       [][]int    // S_i factors l''_i; components > 1
}

// FlatS returns S̄ = S1 ∘ S2 ∘ ... ∘ S_{d-c}.
func (f *GeneralFactor) FlatS() []int {
	var out []int
	for _, s := range f.S {
		out = append(out, s...)
	}
	return out
}

// B returns b, the length of S̄.
func (f *GeneralFactor) B() int { return len(f.FlatS()) }

// MaxS returns max{s_1, ..., s_b}, the Theorem 43 dilation bound.
func (f *GeneralFactor) MaxS() int {
	max := 0
	for _, s := range f.S {
		for _, v := range s {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// HostShape returns [S̄ ∘ 1] × L'.
func (f *GeneralFactor) HostShape() grid.Shape {
	flatS := f.FlatS()
	out := f.LPrime.Clone()
	for j, s := range flatS {
		out[j] *= s
	}
	return out
}

// Validate checks that f is a general-reduction factor of L into M.
func (f *GeneralFactor) Validate(L, M grid.Shape) error {
	d, c := len(L), len(M)
	if !(c < d && d < 2*c) {
		return fmt.Errorf("reduce: general reduction needs c < d < 2c, got d=%d c=%d", d, c)
	}
	if len(f.LPrime) != c || len(f.LDouble) != d-c || len(f.S) != d-c {
		return fmt.Errorf("reduce: factor sublist lengths %d/%d/%d inconsistent with d=%d c=%d",
			len(f.LPrime), len(f.LDouble), len(f.S), d, c)
	}
	if !perm.SameMultiset(append(f.LPrime.Clone(), f.LDouble...), L) {
		return fmt.Errorf("reduce: L'∘L'' = %v ∘ %v is not a permutation of %v", f.LPrime, f.LDouble, L)
	}
	for i, s := range f.S {
		prod := 1
		for _, v := range s {
			if v < 2 {
				return fmt.Errorf("reduce: S_%d contains %d; factors must be > 1", i+1, v)
			}
			prod *= v
		}
		if prod != f.LDouble[i] {
			return fmt.Errorf("reduce: S_%d has product %d, want l''_%d = %d", i+1, prod, i+1, f.LDouble[i])
		}
	}
	b := f.B()
	if !(d-c < b && b <= c) {
		return fmt.Errorf("reduce: need d-c < b <= c, got b=%d d-c=%d c=%d", b, d-c, c)
	}
	if !perm.SameMultiset(f.HostShape(), M) {
		return fmt.Errorf("reduce: [S̄∘1]×L' = %v is not a permutation of %v", f.HostShape(), M)
	}
	return nil
}

// expansionFactor views S as an expansion factor of L” into the shape S̄.
func (f *GeneralFactor) expansionFactor() expand.Factor {
	ef := make(expand.Factor, len(f.S))
	for i, s := range f.S {
		ef[i] = append([]int(nil), s...)
	}
	return ef
}

// WithGeneralFactor builds the Theorem 43 embedding of g in h through
// the supernode maps of Definition 42: β ∘ F'_S ∘ α for guest meshes,
// β ∘ G'_S ∘ α for torus into torus, and β ∘ G”_S ∘ α for torus into
// mesh.
func WithGeneralFactor(g, h grid.Spec, f *GeneralFactor) (*embed.Embedding, error) {
	if err := f.Validate(g.Shape, h.Shape); err != nil {
		return nil, err
	}
	c := h.Dim()
	alpha, ok := perm.Find(g.Shape, append(f.LPrime.Clone(), f.LDouble...))
	if !ok {
		return nil, fmt.Errorf("reduce: no permutation α aligns %v with %v∘%v", g.Shape, f.LPrime, f.LDouble)
	}
	beta, ok := perm.Find(f.HostShape(), h.Shape)
	if !ok {
		return nil, fmt.Errorf("reduce: no permutation β aligns %v with %v", f.HostShape(), h.Shape)
	}
	flatS := f.FlatS()
	b := len(flatS)
	ef := f.expansionFactor()
	lPrime := f.LPrime.Clone()

	var (
		offsetOf func(grid.Node) grid.Node
		name     string
		dilation int
		useT     bool
	)
	switch {
	case g.Kind == grid.Mesh:
		offsetOf, name, dilation = expand.FV(ef), "general-reduction/β∘F'_S∘α", f.MaxS()
	case h.Kind == grid.Torus:
		offsetOf, name, dilation = expand.GV(ef), "general-reduction/β∘G'_S∘α", f.MaxS()
	default: // torus into mesh
		offsetOf, name, dilation, useT = expand.GV(ef), "general-reduction/β∘G''_S∘α", 2*f.MaxS(), true
	}

	fn := func(n grid.Node) grid.Node {
		aligned := perm.Apply(alpha, n)
		base := aligned[:c]
		if useT {
			shifted := make([]int, c)
			for j := 0; j < c; j++ {
				shifted[j] = gray.TN(lPrime[j], base[j])
			}
			base = shifted
		}
		offset := offsetOf(grid.Node(aligned[c:]))
		out := make(grid.Node, c)
		for j := 0; j < b; j++ {
			out[j] = flatS[j]*base[j] + offset[j]
		}
		for j := b; j < c; j++ {
			out[j] = base[j]
		}
		return grid.Node(perm.Apply(beta, []int(out)))
	}
	// Each host coordinate is flatS[j]*base[j] + offset[j] (or base[j]),
	// where base[j] depends on one guest coordinate and every offset
	// digit comes from the expansion of a single multiplier coordinate —
	// so the host rank is a sum of per-guest-digit contributions and the
	// map compiles to a DigitKernel.
	return embed.NewSeparable(g, h, name, dilation, fn)
}

// FindGeneral searches for a general-reduction factor of L into M,
// minimizing the dilation bound max{s_i}. Returns false if M is not a
// general reduction of L.
func FindGeneral(L, M grid.Shape) (*GeneralFactor, bool) {
	d, c := len(L), len(M)
	if !(c < d && d < 2*c) {
		return nil, false
	}
	var best *GeneralFactor
	bestCost := -1

	idx := make([]int, 0, d-c)
	var subsets func(start int)
	subsets = func(start int) {
		if len(idx) == d-c {
			tryDoubleChoice(L, M, idx, &best, &bestCost)
			return
		}
		for i := start; i < d; i++ {
			idx = append(idx, i)
			subsets(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	subsets(0)
	if best == nil {
		return nil, false
	}
	return best, true
}

// tryDoubleChoice fixes which positions of L form L” and explores
// factorizations and matchings.
func tryDoubleChoice(L, M grid.Shape, doubleIdx []int, best **GeneralFactor, bestCost *int) {
	d, c := len(L), len(M)
	inDouble := make([]bool, d)
	for _, i := range doubleIdx {
		inDouble[i] = true
	}
	var lDouble, lPrimePool grid.Shape
	for i, l := range L {
		if inDouble[i] {
			lDouble = append(lDouble, l)
		} else {
			lPrimePool = append(lPrimePool, l)
		}
	}
	// Enumerate factorizations of each l'' into >= 1 factors, all > 1.
	options := make([][][]int, len(lDouble))
	for i, l := range lDouble {
		options[i] = factorizations(l, 2)
		if len(options[i]) == 0 {
			return
		}
	}
	chosen := make([][]int, len(lDouble))
	var pickFactors func(i int)
	pickFactors = func(i int) {
		if i == len(lDouble) {
			b := 0
			maxS := 0
			for _, s := range chosen {
				b += len(s)
				for _, v := range s {
					if v > maxS {
						maxS = v
					}
				}
			}
			if !(d-c < b && b <= c) {
				return
			}
			if *bestCost >= 0 && maxS >= *bestCost {
				return // cannot improve
			}
			matchFactor(M, lDouble, chosen, lPrimePool, maxS, best, bestCost)
			return
		}
		for _, s := range options[i] {
			chosen[i] = s
			pickFactors(i + 1)
		}
		chosen[i] = nil
	}
	pickFactors(0)
}

// matchFactor assigns each factor of S̄ a distinct multiplicand from the
// L' pool so that the multiset of products plus leftover multiplicands
// equals M. On success it records the factor if it beats bestCost.
func matchFactor(M, lDouble grid.Shape, S [][]int, pool grid.Shape, maxS int, best **GeneralFactor, bestCost *int) {
	var flatS []int
	for _, s := range S {
		flatS = append(flatS, s...)
	}
	b := len(flatS)
	remM := multiset(M)
	remPool := multiset(pool)
	// Stable, sorted list of distinct multiplicand values; counts live in
	// remPool so the maps are only read/written, never ranged over while
	// mutated.
	distinct := make([]int, 0, len(remPool))
	for v := range remPool {
		distinct = append(distinct, v)
	}
	sort.Ints(distinct)
	assigned := make([]int, b) // multiplicand chosen for factor j

	var assign func(j int) bool
	assign = func(j int) bool {
		if j == b {
			// Leftover multiplicands must exactly cover the rest of M.
			for v, cnt := range remPool {
				if remM[v] != cnt {
					return false
				}
			}
			for v, cnt := range remM {
				if remPool[v] != cnt {
					return false
				}
			}
			return true
		}
		s := flatS[j]
		for _, v := range distinct {
			if remPool[v] == 0 {
				continue
			}
			prod := s * v
			if remM[prod] == 0 {
				continue
			}
			remPool[v]--
			remM[prod]--
			assigned[j] = v
			if assign(j + 1) {
				remPool[v]++
				remM[prod]++
				return true
			}
			remPool[v]++
			remM[prod]++
		}
		return false
	}
	if !assign(0) {
		return
	}
	// Build L': assigned multiplicands first (in factor order), leftovers
	// after. Recompute leftovers from the pool minus assignments.
	leftover := multiset(pool)
	lPrime := make(grid.Shape, 0, len(pool))
	for _, v := range assigned {
		lPrime = append(lPrime, v)
		leftover[v]--
	}
	for _, v := range pool {
		if leftover[v] > 0 {
			lPrime = append(lPrime, v)
			leftover[v]--
		}
	}
	gf := &GeneralFactor{LPrime: lPrime, LDouble: lDouble.Clone(), S: deepCopy(S)}
	if *bestCost < 0 || maxS < *bestCost {
		*bestCost = maxS
		*best = gf
	}
}

// EmbedGeneral constructs the Theorem 43 embedding of g in h, searching
// for a general-reduction factor with minimal max{s_i}.
func EmbedGeneral(g, h grid.Spec) (*embed.Embedding, error) {
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("reduce: sizes differ: %s vs %s", g, h)
	}
	f, ok := FindGeneral(g.Shape, h.Shape)
	if !ok {
		return nil, fmt.Errorf("reduce: %s is not a general reduction of %s (Definition 41)", h.Shape, g.Shape)
	}
	return WithGeneralFactor(g, h, f)
}

// Embed tries simple reduction first (its dilation bound is usually
// tighter), then general reduction.
func Embed(g, h grid.Spec) (*embed.Embedding, error) {
	if e, err := EmbedSimple(g, h); err == nil {
		return e, nil
	}
	return EmbedGeneral(g, h)
}

// factorizations enumerates all multisets of integers >= minF whose
// product is v, each as a non-decreasing slice. v itself is included as
// the one-element factorization.
func factorizations(v, minF int) [][]int {
	var out [][]int
	if v >= minF {
		out = append(out, []int{v})
	}
	for f := minF; f*f <= v; f++ {
		if v%f != 0 {
			continue
		}
		for _, rest := range factorizations(v/f, f) {
			out = append(out, append([]int{f}, rest...))
		}
	}
	return out
}

func multiset(vals []int) map[int]int {
	m := make(map[int]int, len(vals))
	for _, v := range vals {
		m[v]++
	}
	return m
}

func deepCopy(s [][]int) [][]int {
	out := make([][]int, len(s))
	for i, v := range s {
		out[i] = append([]int(nil), v...)
	}
	return out
}
