// Package reduce implements the paper's generalized embeddings for
// lowering dimension (Section 4.2): embedding a d-dimensional torus or
// mesh G in a c-dimensional torus or mesh H (d > c) whose shape is a
// *simple reduction* (Definition 37) or *general reduction*
// (Definition 41) of G's shape.
//
// Simple reduction groups guest coordinates and reads each group as a
// mixed-radix number (the map U_V of Definition 38); the dilation is
// max_k m_k / l_{v_k} where l_{v_k} is the largest length in group k
// (Theorem 39), doubled when a torus embeds in a mesh via the same-shape
// map T_L of Definition 35.
//
// General reduction views both graphs as grids of supernodes
// (Definition 41, Figure 12): G's supernodes are L”-grids, H's are
// S-meshes whose shape expands L”; the maps F'_S, G'_S and G”_S of
// Definition 42 achieve dilation max{s_i}, doubled for torus into mesh
// (Theorem 43).
package reduce

import (
	"fmt"
	"sort"

	"torusmesh/internal/embed"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
	"torusmesh/internal/radix"
)

// SimpleFactor is a reduction factor V = (V1, ..., Vc) of L into M: the
// lists partition the components of L (as a multiset) and the product of
// Vk is m_k (Definition 37: L is an expansion of M with factor V). Lists
// are kept in non-increasing order, which minimizes the Theorem 39
// dilation bound.
type SimpleFactor [][]int

// Flat returns the concatenation V̄ = V1 ∘ ... ∘ Vc.
func (f SimpleFactor) Flat() grid.Shape {
	var out grid.Shape
	for _, v := range f {
		out = append(out, v...)
	}
	return out
}

// Validate checks that f is a simple-reduction factor of L into M.
func (f SimpleFactor) Validate(L, M grid.Shape) error {
	if len(f) != len(M) {
		return fmt.Errorf("reduce: factor has %d groups for %d host dimensions", len(f), len(M))
	}
	for k, v := range f {
		if len(v) == 0 {
			return fmt.Errorf("reduce: group %d is empty", k+1)
		}
		prod := 1
		for j, c := range v {
			if c < 2 {
				return fmt.Errorf("reduce: group %d contains %d; components must be > 1", k+1, c)
			}
			if j > 0 && v[j] > v[j-1] {
				return fmt.Errorf("reduce: group %d = %v is not non-increasing", k+1, v)
			}
			prod *= c
		}
		if prod != M[k] {
			return fmt.Errorf("reduce: group %d has product %d, want m_%d = %d", k+1, prod, k+1, M[k])
		}
	}
	if !perm.SameMultiset(f.Flat(), L) {
		return fmt.Errorf("reduce: flattened factor %v is not a permutation of %v", f.Flat(), L)
	}
	return nil
}

// Dilation returns the Theorem 39 cost max_k m_k / l_{v_k}: each group
// contributes its product divided by its largest (first) component.
func (f SimpleFactor) Dilation() int {
	max := 0
	for _, v := range f {
		prod := 1
		for _, c := range v {
			prod *= c
		}
		if d := prod / v[0]; d > max {
			max = d
		}
	}
	return max
}

// FindSimple searches for a simple-reduction factor of L into M: a
// partition of L's components into len(M) groups with the prescribed
// products. Among all valid partitions the one minimizing the Theorem 39
// dilation max_k m_k / l_{v_k} is returned, with each group in
// non-increasing order. Returns false if M is not a simple reduction
// of L.
func FindSimple(L, M grid.Shape) (SimpleFactor, bool) {
	if len(L) <= len(M) {
		return nil, false
	}
	type entry struct{ value, count int }
	counts := map[int]int{}
	for _, l := range L {
		counts[l]++
	}
	values := make([]int, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Ints(values)
	pool := make([]entry, len(values))
	for i, v := range values {
		pool[i] = entry{v, counts[v]}
	}

	const budget = 1 << 18 // cap on explored partial states
	explored := 0
	factor := make(SimpleFactor, len(M))
	var best SimpleFactor
	bestCost := -1

	var pick func(k int)
	var choose func(k, idx, prod int, acc []int)

	record := func() {
		cost := 0
		for _, v := range factor {
			prod := 1
			for _, c := range v {
				prod *= c
			}
			// Groups are assembled non-decreasing; the last element is
			// the largest.
			if d := prod / v[len(v)-1]; d > cost {
				cost = d
			}
		}
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			best = make(SimpleFactor, len(factor))
			for k, v := range factor {
				g := append([]int(nil), v...)
				// Reverse into non-increasing order.
				for i, j := 0, len(g)-1; i < j; i, j = i+1, j-1 {
					g[i], g[j] = g[j], g[i]
				}
				best[k] = g
			}
		}
	}

	choose = func(k, idx, prod int, acc []int) {
		if explored++; explored > budget {
			return
		}
		if prod == M[k] && len(acc) > 0 {
			factor[k] = acc
			pick(k + 1)
			factor[k] = nil
		}
		for i := idx; i < len(pool); i++ {
			e := &pool[i]
			if e.count == 0 || prod*e.value > M[k] || M[k]%(prod*e.value) != 0 {
				continue
			}
			e.count--
			choose(k, i, prod*e.value, append(acc, e.value))
			e.count++
		}
	}

	pick = func(k int) {
		if k == len(M) {
			for _, e := range pool {
				if e.count != 0 {
					return
				}
			}
			record()
			return
		}
		choose(k, 0, 1, nil)
	}

	pick(0)
	if bestCost < 0 {
		return nil, false
	}
	return best, true
}

// UV returns the digit-grouping map U_V of Definition 38 from the graph
// of shape V̄ = V1∘...∘Vc to the graph of shape M: the coordinates of
// group k, read as a radix-Vk number, become host coordinate k.
func UV(f SimpleFactor) func(grid.Node) grid.Node {
	bases := make([]radix.Base, len(f))
	for k, v := range f {
		bases[k] = radix.Base(append([]int(nil), v...))
	}
	return func(n grid.Node) grid.Node {
		out := make(grid.Node, len(bases))
		off := 0
		for k, b := range bases {
			out[k] = radix.FromDigits(b, grid.Node(n[off:off+len(b)]))
			off += len(b)
		}
		return out
	}
}

// TL returns the same-shape torus-to-mesh map T_L of Definition 35:
// coordinate i becomes t_{l_i}(x_i). Every pair of torus neighbors lands
// at mesh distance at most 2, which is optimal for non-hypercube shapes
// (Lemma 36).
func TL(L grid.Shape) func(grid.Node) grid.Node {
	return func(n grid.Node) grid.Node {
		out := make(grid.Node, len(n))
		for i, x := range n {
			out[i] = gray.TN(L[i], x)
		}
		return out
	}
}

// SameShape embeds a torus or mesh in a same-shape torus or mesh
// (Lemma 36): identity everywhere except torus into non-hypercube mesh,
// which uses T_L with dilation 2.
func SameShape(g, h grid.Spec) (*embed.Embedding, error) {
	if !g.Shape.Equal(h.Shape) {
		return nil, fmt.Errorf("reduce: SameShape requires equal shapes, got %s and %s", g.Shape, h.Shape)
	}
	if g.Kind == grid.Torus && h.Kind == grid.Mesh && !g.IsHypercube() {
		fn := TL(g.Shape)
		return embed.NewSeparable(g, h, "T_L", 2, fn)
	}
	return embed.Identity(g, h)
}

// WithSimpleFactor builds the full Theorem 39 embedding of g in h using
// the given factor: τ permutes g's coordinates into group order, T_{V̄}
// intervenes when a torus embeds in a mesh, and U_V collapses the groups.
func WithSimpleFactor(g, h grid.Spec, f SimpleFactor) (*embed.Embedding, error) {
	if err := f.Validate(g.Shape, h.Shape); err != nil {
		return nil, err
	}
	flat := f.Flat()
	tau, ok := perm.Find(g.Shape, flat)
	if !ok {
		return nil, fmt.Errorf("reduce: no permutation aligns %v with %v", g.Shape, flat)
	}
	uv := UV(f)
	base := f.Dilation()

	// U_V reads each digit group as a mixed-radix number, so the host
	// rank is linear in the guest digits (with t_n applied digit-wise on
	// the torus-into-mesh path) — digit-separable either way.
	if g.Kind == grid.Torus && h.Kind == grid.Mesh {
		tl := TL(flat)
		return embed.NewSeparable(g, h, "simple-reduction/U_V∘T∘τ", 2*base, func(n grid.Node) grid.Node {
			return uv(tl(grid.Node(perm.Apply(tau, n))))
		})
	}
	return embed.NewSeparable(g, h, "simple-reduction/U_V∘τ", base, func(n grid.Node) grid.Node {
		return uv(grid.Node(perm.Apply(tau, n)))
	})
}

// EmbedSimple constructs the Theorem 39 embedding of g in h, searching
// for a simple-reduction factor. It fails if the shapes do not satisfy
// the condition of simple reduction.
func EmbedSimple(g, h grid.Spec) (*embed.Embedding, error) {
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("reduce: sizes differ: %s vs %s", g, h)
	}
	if g.Dim() <= h.Dim() {
		return nil, fmt.Errorf("reduce: reduction needs dim(G) > dim(H), got %d <= %d", g.Dim(), h.Dim())
	}
	f, ok := FindSimple(g.Shape, h.Shape)
	if !ok {
		return nil, fmt.Errorf("reduce: %s is not a simple reduction of %s (Definition 37)", h.Shape, g.Shape)
	}
	return WithSimpleFactor(g, h, f)
}
