package reduce

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestFindSimpleBasic(t *testing.T) {
	f, ok := FindSimple(grid.Shape{4, 2, 3}, grid.Shape{4, 6})
	if !ok {
		t.Fatal("FindSimple failed")
	}
	if err := f.Validate(grid.Shape{4, 2, 3}, grid.Shape{4, 6}); err != nil {
		t.Fatal(err)
	}
	if d := f.Dilation(); d != 2 {
		t.Errorf("dilation bound = %d, want 2 (groups (4),(3,2))", d)
	}
}

func TestFindSimplePicksBestGrouping(t *testing.T) {
	// L = (6,2,2,3), M = (12,6): grouping ((6,2),(3,2)) has bound
	// max(12/6, 6/3) = 2 while ((3,2,2),(6)) has bound max(12/3, 6/6) = 4.
	// FindSimple must return the bound-2 grouping even though the greedy
	// non-decreasing enumeration meets the bad one first.
	f, ok := FindSimple(grid.Shape{6, 2, 2, 3}, grid.Shape{12, 6})
	if !ok {
		t.Fatal("FindSimple failed")
	}
	if err := f.Validate(grid.Shape{6, 2, 2, 3}, grid.Shape{12, 6}); err != nil {
		t.Fatal(err)
	}
	if d := f.Dilation(); d != 2 {
		t.Errorf("dilation bound = %d, want 2, factor %v", d, f)
	}
}

func TestFindSimpleRejects(t *testing.T) {
	if _, ok := FindSimple(grid.Shape{4, 2}, grid.Shape{4, 2, 3}); ok {
		t.Error("accepted increasing dimension")
	}
	if _, ok := FindSimple(grid.Shape{5, 5}, grid.Shape{10}); ok {
		t.Error("accepted non-partitionable shape (5*5 vs 10)")
	}
	if _, ok := FindSimple(grid.Shape{6, 6}, grid.Shape{9, 4}); ok {
		t.Error("accepted mismatched grouping (no subset of {6,6} multiplies to 9)")
	}
}

func TestSimpleFactorValidateRejects(t *testing.T) {
	L := grid.Shape{4, 2, 3}
	M := grid.Shape{4, 6}
	if err := (SimpleFactor{{4}, {2, 3}}).Validate(L, M); err == nil {
		t.Error("accepted group (2,3) that is not non-increasing")
	}
	if err := (SimpleFactor{{4}, {6}}).Validate(L, M); err == nil {
		t.Error("accepted factor whose flat list is not a permutation of L")
	}
	if err := (SimpleFactor{{4}}).Validate(L, M); err == nil {
		t.Error("accepted wrong group count")
	}
	if err := (SimpleFactor{{4}, {3, 2}}).Validate(L, M); err != nil {
		t.Errorf("rejected valid factor: %v", err)
	}
}

// TestTheorem39Dilations checks measured dilation against the
// max m_k / l_{v_k} bound for all four kind combinations.
func TestTheorem39Dilations(t *testing.T) {
	type pair struct {
		L, M  grid.Shape
		bound int
	}
	pairs := []pair{
		{grid.Shape{4, 2, 3}, grid.Shape{4, 6}, 2},
		{grid.Shape{2, 2, 2, 2}, grid.Shape{4, 4}, 2}, // hypercube -> square
		{grid.Shape{2, 2, 2, 2}, grid.Shape{4, 2, 2}, 2},
		{grid.Shape{3, 4}, grid.Shape{12}, 3}, // to a line/ring
		{grid.Shape{4, 4}, grid.Shape{16}, 4}, // MN86 comparison
		{grid.Shape{3, 3, 3}, grid.Shape{9, 3}, 3},
		{grid.Shape{5, 2, 2}, grid.Shape{10, 2}, 2},
	}
	for _, p := range pairs {
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			for _, hk := range []grid.Kind{grid.Mesh, grid.Torus} {
				g := grid.MustSpec(gk, p.L)
				h := grid.MustSpec(hk, p.M)
				e, err := EmbedSimple(g, h)
				if err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				if err := e.Verify(); err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				d := e.Dilation()
				want := p.bound
				if gk == grid.Torus && hk == grid.Mesh {
					want *= 2
				}
				if d > want {
					t.Errorf("%s -> %s: dilation %d exceeds Theorem 39 bound %d", g, h, d, want)
				}
				if d > e.Predicted {
					t.Errorf("%s -> %s: dilation %d exceeds prediction %d", g, h, d, e.Predicted)
				}
			}
		}
	}
}

// TestMN86TorusIntoRing checks the Section 5 comparison case: an
// (l,l)-torus embeds in a ring of the same size with dilation exactly l,
// matching the optimal result of Ma & Narahari.
func TestMN86TorusIntoRing(t *testing.T) {
	for _, l := range []int{2, 3, 4, 5} {
		g := grid.TorusSpec(l, l)
		h := grid.RingSpec(l * l)
		e, err := EmbedSimple(g, h)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if d := e.Dilation(); d != l {
			t.Errorf("l=%d: dilation = %d, want %d", l, d, l)
		}
	}
}

// TestFitzgerald2DMeshIntoLine checks that an (l,l)-mesh embeds in a line
// with dilation exactly l (truly optimal per Fitzgerald).
func TestFitzgerald2DMeshIntoLine(t *testing.T) {
	for _, l := range []int{2, 3, 4, 5} {
		g := grid.MeshSpec(l, l)
		h := grid.LineSpec(l * l)
		e, err := EmbedSimple(g, h)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if d := e.Dilation(); d != l {
			t.Errorf("l=%d: dilation = %d, want %d", l, d, l)
		}
	}
}

func TestSameShape(t *testing.T) {
	// Torus into same-shape mesh: dilation exactly 2 (Lemma 36).
	e, err := SameShape(grid.TorusSpec(3, 3), grid.MeshSpec(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 2 {
		t.Errorf("torus -> mesh same shape dilation = %d, want 2", d)
	}
	// Hypercube: torus and mesh coincide, identity works.
	e2, err := SameShape(grid.TorusSpec(2, 2, 2), grid.MeshSpec(2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := e2.Dilation(); d != 1 {
		t.Errorf("hypercube same shape dilation = %d, want 1", d)
	}
	// Mesh into torus: identity.
	e3, err := SameShape(grid.MeshSpec(3, 4), grid.TorusSpec(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d := e3.Dilation(); d != 1 {
		t.Errorf("mesh -> torus same shape dilation = %d, want 1", d)
	}
	if _, err := SameShape(grid.MeshSpec(3, 4), grid.MeshSpec(4, 3)); err == nil {
		t.Error("SameShape accepted different shapes")
	}
}

// TestFigure12GeneralReduction reproduces Figure 12: a (3,3,6)-mesh
// embeds in a (6,9)-mesh with dilation exactly 3 by viewing both as
// (3,3)-grids of supernodes.
func TestFigure12GeneralReduction(t *testing.T) {
	g := grid.MeshSpec(3, 3, 6)
	h := grid.MeshSpec(6, 9)
	f, ok := FindGeneral(g.Shape, h.Shape)
	if !ok {
		t.Fatal("FindGeneral failed on Figure 12 shapes")
	}
	if got := f.MaxS(); got != 3 {
		t.Errorf("MaxS = %d, want 3", got)
	}
	e, err := WithGeneralFactor(g, h, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 3 {
		t.Errorf("dilation = %d, want 3", d)
	}
}

// TestGeneralReductionPaperExample validates the worked example below
// Definition 41: M = (4,3,5,28,10,18) is a general reduction of
// L = (2,3,2,10,6,21,5,4) with reduction factor ((5,2),(3,7)).
func TestGeneralReductionPaperExample(t *testing.T) {
	L := grid.Shape{2, 3, 2, 10, 6, 21, 5, 4}
	M := grid.Shape{4, 3, 5, 28, 10, 18}
	paper := &GeneralFactor{
		LPrime:  grid.Shape{2, 6, 4, 2, 3, 5}, // first three get multiplied by 5,2,3... see below
		LDouble: grid.Shape{10, 21},
		S:       [][]int{{5, 2}, {3, 7}},
	}
	// The paper's L' = (2,2,6,4,3,5) with [S∘(1,1)] x L' = (10,4,18,28,3,5).
	paper.LPrime = grid.Shape{2, 2, 6, 4, 3, 5}
	if err := paper.Validate(L, M); err != nil {
		t.Fatalf("paper factor rejected: %v", err)
	}
	found, ok := FindGeneral(L, M)
	if !ok {
		t.Fatal("FindGeneral failed")
	}
	if err := found.Validate(L, M); err != nil {
		t.Fatal(err)
	}
	if got := found.MaxS(); got != 7 {
		t.Errorf("found MaxS = %d, want 7 (21 must split as 3x7)", got)
	}
}

// TestTheorem43Dilations sweeps kind combinations over general-reduction
// pairs and asserts the Theorem 43 bounds.
func TestTheorem43Dilations(t *testing.T) {
	type pair struct {
		L, M grid.Shape
		maxS int
	}
	pairs := []pair{
		{grid.Shape{3, 3, 6}, grid.Shape{6, 9}, 3},
		{grid.Shape{2, 2, 4}, grid.Shape{4, 4}, 2},
		{grid.Shape{3, 4, 4}, grid.Shape{6, 8}, 2},
		{grid.Shape{5, 5, 4}, grid.Shape{10, 10}, 2},
	}
	for _, p := range pairs {
		for _, gk := range []grid.Kind{grid.Mesh, grid.Torus} {
			for _, hk := range []grid.Kind{grid.Mesh, grid.Torus} {
				g := grid.MustSpec(gk, p.L)
				h := grid.MustSpec(hk, p.M)
				e, err := EmbedGeneral(g, h)
				if err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				if err := e.Verify(); err != nil {
					t.Errorf("%s -> %s: %v", g, h, err)
					continue
				}
				d := e.Dilation()
				want := p.maxS
				if gk == grid.Torus && hk == grid.Mesh {
					want *= 2
				}
				if d > want {
					t.Errorf("%s -> %s: dilation %d exceeds Theorem 43 bound %d", g, h, d, want)
				}
			}
		}
	}
}

func TestEmbedDispatch(t *testing.T) {
	// Embed prefers simple reduction when available.
	e, err := Embed(grid.MeshSpec(4, 2, 3), grid.MeshSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if e.Strategy != "simple-reduction/U_V∘τ" {
		t.Errorf("strategy = %q, want simple reduction", e.Strategy)
	}
	// Falls back to general reduction when no partition of L multiplies
	// to M's components: 6 is not a sub-product of {3,4,4}.
	e2, err := Embed(grid.MeshSpec(3, 4, 4), grid.MeshSpec(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Strategy != "general-reduction/β∘F'_S∘α" {
		t.Errorf("strategy = %q, want general reduction", e2.Strategy)
	}
	// Size mismatch is rejected.
	if _, err := Embed(grid.MeshSpec(5, 7), grid.MeshSpec(7, 6)); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Embed(grid.MeshSpec(2, 3, 5), grid.MeshSpec(5, 6)); err != nil {
		// (2,3,5) -> (5,6): simple grouping ((5),(3,2)) exists.
		t.Errorf("(2,3,5) -> (5,6) should embed via simple reduction: %v", err)
	}
}

func TestFactorizations(t *testing.T) {
	got := factorizations(12, 2)
	want := map[string]bool{"[12]": true, "[2 6]": true, "[2 2 3]": true, "[3 4]": true}
	if len(got) != len(want) {
		t.Fatalf("factorizations(12) = %v, want 4 entries", got)
	}
	if len(factorizations(7, 2)) != 1 {
		t.Error("prime should have exactly one factorization")
	}
	if len(factorizations(1, 2)) != 0 {
		t.Error("1 should have no factorization")
	}
}
