// Package core is the top-level embedding engine: given any guest and
// host torus/mesh of the same size, it selects and constructs the
// appropriate embedding from Ma & Tao's toolbox:
//
//   - basic embeddings (guest dimension 1): f_L for lines (Theorem 13),
//     h_L / π∘h_{L*} / g_L for rings (Theorems 17, 24, 28);
//   - same dimension: coordinate permutation plus identity or T_L
//     (Lemma 36);
//   - increasing dimension: expansion embeddings F_V/G_V/H_V
//     (Theorem 32), falling back to the square-graph construction of
//     Theorem 53 when the shapes do not satisfy the condition of
//     expansion;
//   - lowering dimension: simple then general reduction (Theorems 39
//     and 43), falling back to the square-graph chain of Theorem 51.
//
// Hypercubes are both toruses and meshes; the dispatcher exploits this by
// treating a hypercube guest as a mesh and a hypercube host as a torus,
// which always yields the cheaper construction (Theorems 33 and 39's
// corollaries).
package core

import (
	"fmt"

	"torusmesh/internal/embed"
	"torusmesh/internal/expand"
	"torusmesh/internal/gray"
	"torusmesh/internal/grid"
	"torusmesh/internal/perm"
	"torusmesh/internal/radix"
	"torusmesh/internal/reduce"
	"torusmesh/internal/square"
)

// Embed constructs an embedding of g in h with the smallest dilation
// guarantee the paper's constructions offer for the pair. It returns an
// error when the sizes differ or none of the paper's conditions
// (expansion, reduction, squareness, matching shapes) hold.
func Embed(g, h grid.Spec) (*embed.Embedding, error) {
	if err := g.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: guest: %v", err)
	}
	if err := h.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: host: %v", err)
	}
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("core: guest %s has %d nodes but host %s has %d; the paper studies same-size embeddings",
			g, g.Size(), h, h.Size())
	}
	// A hypercube is simultaneously a torus and a mesh: choose the
	// interpretation that yields the cheaper construction.
	eg, eh := g, h
	if eg.Shape.IsHypercube() {
		eg.Kind = grid.Mesh
	}
	if eh.Shape.IsHypercube() {
		eh.Kind = grid.Torus
	}
	e, err := dispatch(eg, eh)
	if err != nil {
		return nil, err
	}
	if eg.Kind == g.Kind && eh.Kind == h.Kind {
		return e, nil
	}
	// Re-wrap with the caller's kinds (same shapes, same adjacency),
	// keeping the compiled kernel.
	return e.WithSpecs(g, h)
}

func dispatch(g, h grid.Spec) (*embed.Embedding, error) {
	d, c := g.Dim(), h.Dim()
	switch {
	case d == 1:
		return embedBasic(g, h)
	case d == c:
		if e, err := embedSameDimension(g, h); err == nil {
			return e, nil
		}
		return embedViaPrimeRefinement(g, h)
	case d < c:
		if e, err := expand.Embed(g, h); err == nil {
			return e, nil
		}
		if g.Shape.IsSquare() && h.Shape.IsSquare() {
			return square.Embed(g, h)
		}
		return embedViaPrimeRefinement(g, h)
	default:
		if e, err := reduce.Embed(g, h); err == nil {
			return e, nil
		}
		if g.Shape.IsSquare() && h.Shape.IsSquare() {
			return square.Embed(g, h)
		}
		return embedViaPrimeRefinement(g, h)
	}
}

// EmbedViaPrimes always routes through the all-primes refinement, even
// for pairs a direct construction covers. Its dilation bound is usually
// weaker than Embed's pick, but the route through the prime-factor
// intermediate distributes guest edges over host dimensions differently,
// so the placement search enumerates it as an alternative strategy and
// lets the congestion objective decide. Sizes must match; it fails only
// when the refinement's own conditions do (never for valid same-size
// pairs).
func EmbedViaPrimes(g, h grid.Spec) (*embed.Embedding, error) {
	if err := g.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: guest: %v", err)
	}
	if err := h.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: host: %v", err)
	}
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("core: guest %s has %d nodes but host %s has %d; the paper studies same-size embeddings",
			g, g.Size(), h, h.Size())
	}
	return embedViaPrimeRefinement(g, h)
}

// MidHook transforms the prime refinement's intermediate stage: given
// the all-primes intermediate spec, it returns an embedding of the
// intermediate into itself (a node relabeling, e.g. embed.Rotate) that
// EmbedViaPrimesMid splices between the refinement's two stages. The
// relabeling changes which intermediate nodes the reduction coarsens
// together, so the composite is a genuinely new embedding of the pair —
// the placement search enumerates intermediate rotations this way.
type MidHook func(mid grid.Spec) (*embed.Embedding, error)

// PrimeIntermediate returns the intermediate spec the prime refinement
// routes g -> h through: the all-primes shape of the size, a torus only
// when both endpoints are toruses. Candidate generators use it to
// enumerate intermediate-stage relabelings without rebuilding the
// refinement.
func PrimeIntermediate(g, h grid.Spec) grid.Spec {
	midKind := grid.Mesh
	if g.Kind == grid.Torus && h.Kind == grid.Torus {
		midKind = grid.Torus
	}
	return grid.Spec{Kind: midKind, Shape: primeShape(g.Size())}
}

// EmbedViaPrimesMid is EmbedViaPrimes with a hook applied to the
// intermediate stage: the composite becomes up ∘ hook(mid) ∘ down. A
// nil hook is EmbedViaPrimes. The hook's embedding must map the
// intermediate spec onto itself.
func EmbedViaPrimesMid(g, h grid.Spec, hook MidHook) (*embed.Embedding, error) {
	if err := g.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: guest: %v", err)
	}
	if err := h.Shape.Validate(); err != nil {
		return nil, fmt.Errorf("core: host: %v", err)
	}
	if g.Size() != h.Size() {
		return nil, fmt.Errorf("core: guest %s has %d nodes but host %s has %d; the paper studies same-size embeddings",
			g, g.Size(), h, h.Size())
	}
	return embedViaPrimeRefinementMid(g, h, hook)
}

// embedViaPrimeRefinement is an extension beyond the paper's explicit
// cases, built purely from its tools: every shape is an expansion of the
// all-primes shape of its size, so G expands into the prime shape X
// (Theorem 32) and X simple-reduces onto H (Theorem 39). This covers
// every same-size pair the explicit conditions miss — e.g. the
// equal-dimension pair (8,2) -> (4,4) — at the cost of a weaker dilation
// bound (the product of the two steps' guarantees). The intermediate is
// a torus only when both endpoints are toruses, so the torus-into-mesh
// penalty is paid at most once.
func embedViaPrimeRefinement(g, h grid.Spec) (*embed.Embedding, error) {
	return embedViaPrimeRefinementMid(g, h, nil)
}

func embedViaPrimeRefinementMid(g, h grid.Spec, hook MidHook) (*embed.Embedding, error) {
	mid := PrimeIntermediate(g, h)

	up, err := refineToPrimes(g, mid)
	if err != nil {
		return nil, err
	}
	steps := []*embed.Embedding{up}
	if hook != nil {
		m, err := hook(mid)
		if err != nil {
			return nil, err
		}
		if !m.From.Shape.Equal(mid.Shape) || !m.To.Shape.Equal(mid.Shape) {
			return nil, fmt.Errorf("core: mid hook must map %s onto itself, got %s -> %s", mid, m.From, m.To)
		}
		steps = append(steps, m)
	}
	down, err := coarsenFromPrimes(mid, h)
	if err != nil {
		return nil, err
	}
	steps = append(steps, down)
	e, err := embed.ComposeAll(steps...)
	if err != nil {
		return nil, err
	}
	chain := up.Strategy
	if hook != nil {
		chain += " ∘ " + steps[1].Strategy
	}
	chain += " ∘ " + down.Strategy
	e.Strategy = "prime-refinement[" + chain + "]"
	return e, nil
}

// refineToPrimes embeds g in the all-primes graph mid (expansion, or a
// permutation when g is already a prime shape).
func refineToPrimes(g, mid grid.Spec) (*embed.Embedding, error) {
	if g.Dim() == mid.Dim() {
		pi, ok := perm.Find(g.Shape, mid.Shape)
		if !ok {
			return nil, fmt.Errorf("core: internal error: %v is not a permutation of the prime shape %v", g.Shape, mid.Shape)
		}
		p, err := embed.Permute(g, pi, g.Kind)
		if err != nil {
			return nil, err
		}
		same, err := reduce.SameShape(p.To, mid)
		if err != nil {
			return nil, err
		}
		return embed.Compose(p, same)
	}
	factor := make(expand.Factor, g.Dim())
	for i, l := range g.Shape {
		primes := primeFactors(l)
		// Put a 2 first when present so H_V applies to even toruses.
		for j, p := range primes {
			if p%2 == 0 {
				primes[0], primes[j] = primes[j], primes[0]
				break
			}
		}
		factor[i] = primes
	}
	return expand.WithFactor(g, mid, factor)
}

// coarsenFromPrimes embeds the all-primes graph mid in h (simple
// reduction, or a permutation when h is already a prime shape).
func coarsenFromPrimes(mid, h grid.Spec) (*embed.Embedding, error) {
	if mid.Dim() == h.Dim() {
		pi, ok := perm.Find(mid.Shape, h.Shape)
		if !ok {
			return nil, fmt.Errorf("core: internal error: prime shape %v is not a permutation of %v", mid.Shape, h.Shape)
		}
		p, err := embed.Permute(mid, pi, mid.Kind)
		if err != nil {
			return nil, err
		}
		same, err := reduce.SameShape(p.To, h)
		if err != nil {
			return nil, err
		}
		return embed.Compose(p, same)
	}
	sf := make(reduce.SimpleFactor, h.Dim())
	for k, m := range h.Shape {
		// primeFactors is already non-increasing, which minimizes the
		// Theorem 39 bound m_k / l_{v_k}.
		sf[k] = primeFactors(m)
	}
	return reduce.WithSimpleFactor(mid, h, sf)
}

// primeShape returns the shape consisting of all prime factors of n in
// non-increasing order.
func primeShape(n int) grid.Shape {
	return grid.Shape(primeFactors(n))
}

// primeFactors returns the prime factorization of n with multiplicity,
// in non-increasing order (shape convention: largest lengths first).
func primeFactors(n int) []int {
	var out []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			out = append(out, p)
			n /= p
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// embedBasic handles guests of dimension 1 (lines and rings), Section 3.
func embedBasic(g, h grid.Spec) (*embed.Embedding, error) {
	L := radix.Base(h.Shape)
	n := g.Size()
	if g.Kind == grid.Mesh {
		// A line embeds anywhere with unit dilation (Theorem 13).
		return embed.NewSeparable(g, h, "basic/f_L", 1, func(node grid.Node) grid.Node {
			return gray.F(L, node[0])
		})
	}
	// Guest is a ring.
	if h.Kind == grid.Torus {
		// Theorem 28: unit dilation into any torus.
		return embed.NewSeparable(g, h, "basic/h_L", 1, func(node grid.Node) grid.Node {
			return gray.H(L, node[0])
		})
	}
	if n%2 == 0 && h.Dim() >= 2 {
		// Theorem 24: even ring into a mesh of dimension >= 2 with unit
		// dilation, permuting an even length to the front.
		evenIdx := -1
		for i, l := range h.Shape {
			if l%2 == 0 {
				evenIdx = i
				break
			}
		}
		lStar := h.Shape.Clone()
		lStar[0], lStar[evenIdx] = lStar[evenIdx], lStar[0]
		pi, ok := perm.Find(lStar, h.Shape)
		if !ok {
			return nil, fmt.Errorf("core: internal error building L* for %s", h)
		}
		base := radix.Base(lStar)
		return embed.NewSeparable(g, h, "basic/π∘h_L*", 1, func(node grid.Node) grid.Node {
			return grid.Node(perm.Apply(pi, gray.H(base, node[0])))
		})
	}
	// Theorem 17: dilation 2, optimal for odd meshes and lines of size > 2.
	return embed.NewSeparable(g, h, "basic/g_L", 2, func(node grid.Node) grid.Node {
		return gray.G(L, node[0])
	})
}

// embedSameDimension handles d == c: the shapes must be permutations of
// each other (the paper's same-shape case composed with the π glue).
func embedSameDimension(g, h grid.Spec) (*embed.Embedding, error) {
	pi, ok := perm.Find(g.Shape, h.Shape)
	if !ok {
		return nil, fmt.Errorf("core: same-dimension shapes %s and %s are not permutations of each other; the paper gives no construction", g.Shape, h.Shape)
	}
	p1, err := embed.Permute(g, pi, g.Kind)
	if err != nil {
		return nil, err
	}
	p2, err := reduce.SameShape(p1.To, h)
	if err != nil {
		return nil, err
	}
	e, err := embed.Compose(p1, p2)
	if err != nil {
		return nil, err
	}
	if g.Kind == grid.Torus && h.Kind == grid.Mesh && !g.IsHypercube() {
		e.Strategy = "same-dim/T_L∘π"
		e.Predicted = 2
	} else {
		e.Strategy = "same-dim/π"
		e.Predicted = 1
	}
	return e, nil
}

// Predicted returns the dilation guarantee Embed would attach for the
// pair without constructing the node map. It mirrors the dispatch logic.
func Predicted(g, h grid.Spec) (int, error) {
	e, err := Embed(g, h)
	if err != nil {
		return 0, err
	}
	return e.Predicted, nil
}
