package core

import (
	"testing"

	"torusmesh/internal/catalog"
	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// Parity tests for the batch engine: for every ordered pair of shapes
// the dispatcher can embed, the compiled kernel (tables, digit kernels,
// chains) must agree exactly with the per-node Map closure, and the
// batch measurement paths must agree with the sequential per-node
// walks. This pins down the digit-separability assumption every
// producer relies on when registering with NewSeparable.

// forEachPair runs fn over every ordered (shape, kind) pair of the
// given sizes, using the full (non-canonical) shape list so the π glue
// and kind re-wrapping paths are exercised.
func forEachPair(t *testing.T, sizes []int, fn func(g, h grid.Spec, e *embed.Embedding)) {
	t.Helper()
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	checked := 0
	for _, n := range sizes {
		shapes := catalog.ShapesOfSize(n, 0)
		for _, gs := range shapes {
			for _, hs := range shapes {
				for _, gk := range kinds {
					for _, hk := range kinds {
						g := grid.Spec{Kind: gk, Shape: gs}
						h := grid.Spec{Kind: hk, Shape: hs}
						e, err := Embed(g, h)
						if err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						fn(g, h, e)
						checked++
					}
				}
			}
		}
	}
	t.Logf("parity checked %d embeddings", checked)
}

func TestKernelMatchesMapAcrossCatalog(t *testing.T) {
	forEachPair(t, []int{12, 16, 18, 24, 27}, func(g, h grid.Spec, e *embed.Embedding) {
		table := e.Table() // batch path: compiled kernel, parallel fill
		n := g.Size()
		for x := 0; x < n; x++ {
			want := h.Shape.Index(e.Map(g.Shape.NodeAt(x)))
			if table[x] != want {
				t.Fatalf("%s -> %s (%s): kernel maps rank %d to %d, Map to %d",
					g, h, e.Strategy, x, table[x], want)
			}
			if got := e.MapIndex(x); got != want {
				t.Fatalf("%s -> %s (%s): MapIndex(%d) = %d, Map gives %d",
					g, h, e.Strategy, x, got, want)
			}
		}
	})
}

func TestBatchMeasurementParityAcrossCatalog(t *testing.T) {
	forEachPair(t, []int{12, 20, 30}, func(g, h grid.Spec, e *embed.Embedding) {
		if batch, perNode := e.Dilation(), e.DilationPerNode(); batch != perNode {
			t.Fatalf("%s -> %s (%s): batch dilation %d != per-node %d",
				g, h, e.Strategy, batch, perNode)
		}
		if batch, perNode := e.AverageDilation(), e.AverageDilationPerNode(); batch != perNode {
			t.Fatalf("%s -> %s (%s): batch average %v != per-node %v",
				g, h, e.Strategy, batch, perNode)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("%s -> %s (%s): batch verify: %v", g, h, e.Strategy, err)
		}
	})
}

// TestKernelParityUnmaterialized repeats the map parity with
// materialization disabled, so chained and digit kernels are exercised
// directly rather than through fused tables.
func TestKernelParityUnmaterialized(t *testing.T) {
	old := embed.MaterializeThreshold()
	embed.SetMaterializeThreshold(0)
	defer embed.SetMaterializeThreshold(old)
	forEachPair(t, []int{16, 24}, func(g, h grid.Spec, e *embed.Embedding) {
		n := g.Size()
		src := make([]int, n)
		dst := make([]int, n)
		for x := range src {
			src[x] = x
		}
		e.EvalBatch(dst, src)
		for x := 0; x < n; x++ {
			want := h.Shape.Index(e.Map(g.Shape.NodeAt(x)))
			if dst[x] != want {
				t.Fatalf("%s -> %s (%s): unmaterialized kernel maps %d to %d, Map to %d",
					g, h, e.Strategy, x, dst[x], want)
			}
		}
		if batch, perNode := e.Dilation(), e.DilationPerNode(); batch != perNode {
			t.Fatalf("%s -> %s (%s): unmaterialized batch dilation %d != per-node %d",
				g, h, e.Strategy, batch, perNode)
		}
	})
}
