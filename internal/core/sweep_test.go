package core

import (
	"testing"

	"torusmesh/internal/catalog"
	"torusmesh/internal/grid"
)

// TestSweepSizes embeds every ordered pair of shapes (not just canonical
// ones — permuted variants exercise the π glue) for several sizes, in
// all four kind combinations, verifying injectivity and the recorded
// guarantee. With the prime-refinement extension every pair must
// succeed.
func TestSweepSizes(t *testing.T) {
	sizes := []int{12, 18, 20, 30}
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	checked := 0
	for _, n := range sizes {
		shapes := catalog.ShapesOfSize(n, 0)
		for _, gs := range shapes {
			for _, hs := range shapes {
				for _, gk := range kinds {
					for _, hk := range kinds {
						g := grid.Spec{Kind: gk, Shape: gs}
						h := grid.Spec{Kind: hk, Shape: hs}
						e, err := Embed(g, h)
						if err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						if err := e.Verify(); err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						if d, err := e.CheckPredicted(); err != nil {
							t.Fatalf("%s -> %s: measured %d: %v", g, h, d, err)
						}
						checked++
					}
				}
			}
		}
	}
	if checked < 1000 {
		t.Errorf("sweep covered only %d pairs", checked)
	}
	t.Logf("sweep verified %d embeddings", checked)
}

// TestSweepOddSizes exercises the all-odd paths (no even dimension means
// no h_L* trick, g_L and G_V must carry rings and toruses).
func TestSweepOddSizes(t *testing.T) {
	kinds := []grid.Kind{grid.Mesh, grid.Torus}
	for _, n := range []int{9, 15, 21, 27, 45} {
		shapes := catalog.ShapesOfSize(n, 0)
		for _, gs := range shapes {
			for _, hs := range shapes {
				for _, gk := range kinds {
					for _, hk := range kinds {
						g := grid.Spec{Kind: gk, Shape: gs}
						h := grid.Spec{Kind: hk, Shape: hs}
						e, err := Embed(g, h)
						if err != nil {
							t.Fatalf("%s -> %s: %v", g, h, err)
						}
						if d, err := e.CheckPredicted(); err != nil {
							t.Fatalf("%s -> %s: measured %d: %v", g, h, d, err)
						}
					}
				}
			}
		}
	}
}

// TestPrimeRefinementEndToEnd pins a few pairs only the extension
// covers and sanity-checks their dilation stays moderate.
func TestPrimeRefinementEndToEnd(t *testing.T) {
	cases := []struct {
		g, h    grid.Spec
		maxCost int
	}{
		{grid.MeshSpec(8, 2), grid.MeshSpec(4, 4), 4},
		{grid.MeshSpec(4, 4), grid.MeshSpec(8, 2), 4},
		{grid.TorusSpec(8, 2), grid.TorusSpec(4, 4), 4},
		{grid.TorusSpec(4, 9), grid.TorusSpec(6, 6), 6},
		{grid.MeshSpec(6, 6), grid.MeshSpec(4, 3, 3), 4},
	}
	for _, c := range cases {
		e, err := Embed(c.g, c.h)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if err := e.Verify(); err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if d := e.Dilation(); d > c.maxCost {
			t.Errorf("%s -> %s: dilation %d exceeds expected ceiling %d (%s)", c.g, c.h, d, c.maxCost, e.Strategy)
		}
	}
}
