package core

import (
	"strings"
	"testing"

	"torusmesh/internal/grid"
	"torusmesh/internal/optimal"
)

// TestBasicEmbeddingsFigure10 reproduces Figure 10: a line of size 24
// embeds in a (4,2,3)-mesh with dilation 1, a ring with dilation 1 via
// h_L (even size), and the g_L fallback achieves 2.
func TestBasicEmbeddingsFigure10(t *testing.T) {
	mesh := grid.MeshSpec(4, 2, 3)
	line, err := Embed(grid.LineSpec(24), mesh)
	if err != nil {
		t.Fatal(err)
	}
	if err := line.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := line.Dilation(); d != 1 {
		t.Errorf("line dilation = %d, want 1", d)
	}
	ring, err := Embed(grid.RingSpec(24), mesh)
	if err != nil {
		t.Fatal(err)
	}
	if d := ring.Dilation(); d != 1 {
		t.Errorf("even ring into mesh dilation = %d, want 1 (Theorem 24)", d)
	}
}

func TestBasicMatrix(t *testing.T) {
	cases := []struct {
		g, h grid.Spec
		want int
	}{
		{grid.LineSpec(24), grid.MeshSpec(4, 2, 3), 1},
		{grid.LineSpec(24), grid.TorusSpec(4, 2, 3), 1},
		{grid.LineSpec(15), grid.MeshSpec(3, 5), 1},
		{grid.RingSpec(24), grid.TorusSpec(4, 2, 3), 1},
		{grid.RingSpec(15), grid.TorusSpec(3, 5), 1}, // odd ring into torus: h_L
		{grid.RingSpec(15), grid.MeshSpec(3, 5), 2},  // odd ring into mesh: optimal 2
		{grid.RingSpec(24), grid.MeshSpec(4, 2, 3), 1},
		{grid.RingSpec(18), grid.MeshSpec(3, 6), 1}, // even length in position 2
		{grid.RingSpec(8), grid.LineSpec(8), 2},     // ring into line: optimal 2
		{grid.RingSpec(2), grid.LineSpec(2), 1},     // degenerate 2-ring
		{grid.LineSpec(8), grid.RingSpec(8), 1},
		{grid.RingSpec(8), grid.RingSpec(8), 1},
		{grid.LineSpec(6), grid.LineSpec(6), 1},
	}
	for _, c := range cases {
		e, err := Embed(c.g, c.h)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if err := e.Verify(); err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if d := e.Dilation(); d != c.want {
			t.Errorf("%s -> %s: dilation %d, want %d (strategy %s)", c.g, c.h, d, c.want, e.Strategy)
		}
	}
}

func TestSameDimensionPermuted(t *testing.T) {
	e, err := Embed(grid.MeshSpec(3, 4, 5), grid.MeshSpec(5, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 1 {
		t.Errorf("permuted mesh dilation = %d, want 1", d)
	}
	e2, err := Embed(grid.TorusSpec(3, 4), grid.MeshSpec(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d := e2.Dilation(); d != 2 {
		t.Errorf("permuted torus->mesh dilation = %d, want 2", d)
	}
	// Equal-dimension non-permutation pairs fall back to the
	// prime-refinement extension: (4,9) -> (2,2,3,3) -> (6,6).
	e3, err := Embed(grid.MeshSpec(4, 9), grid.MeshSpec(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Verify(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e3.Strategy, "prime-refinement") {
		t.Errorf("strategy = %q, want prime-refinement", e3.Strategy)
	}
	if d, err := e3.CheckPredicted(); err != nil {
		t.Errorf("measured %d: %v", d, err)
	}
}

func TestHypercubeNormalization(t *testing.T) {
	// A hypercube guest declared as a torus still gets unit dilation into
	// a same-size mesh (it is treated as a mesh).
	e, err := Embed(grid.TorusSpec(2, 2, 2, 2), grid.MeshSpec(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Dilation(); d != 2 {
		t.Errorf("hypercube -> 4x4 mesh dilation = %d, want 2 (= max m_i / 2, Corollary 40)", d)
	}
	// A hypercube host declared as a mesh accepts a torus guest with unit
	// dilation (treated as a torus).
	e2, err := Embed(grid.TorusSpec(4, 4), grid.MeshSpec(2, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d := e2.Dilation(); d != 1 {
		t.Errorf("torus -> hypercube-as-mesh dilation = %d, want 1", d)
	}
	if e2.From.Kind != grid.Torus || e2.To.Kind != grid.Mesh {
		t.Error("returned embedding does not carry the caller's kinds")
	}
}

func TestDispatchIncreasing(t *testing.T) {
	// Expansion applies.
	e, err := Embed(grid.MeshSpec(4, 6), grid.MeshSpec(2, 2, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Strategy, "expansion") {
		t.Errorf("strategy = %q, want expansion", e.Strategy)
	}
	// Expansion fails but graphs are square: Theorem 53.
	e2, err := Embed(grid.MeshSpec(8, 8), grid.MeshSpec(4, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e2.Dilation(); d > 2 {
		t.Errorf("(8,8) -> (4,4,4) dilation = %d, want <= 2 (Theorem 53)", d)
	}
	// Neither expansion nor squareness applies: the prime-refinement
	// extension still produces a valid embedding.
	e3, err := Embed(grid.MeshSpec(6, 6), grid.MeshSpec(4, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Verify(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e3.Strategy, "prime-refinement") {
		t.Errorf("strategy = %q, want prime-refinement", e3.Strategy)
	}
	if d, err := e3.CheckPredicted(); err != nil {
		t.Errorf("measured %d: %v", d, err)
	}
}

func TestDispatchLowering(t *testing.T) {
	// Simple reduction applies.
	e, err := Embed(grid.MeshSpec(4, 2, 3), grid.MeshSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Strategy, "simple-reduction") {
		t.Errorf("strategy = %q, want simple reduction", e.Strategy)
	}
	// General reduction applies.
	e2, err := Embed(grid.MeshSpec(3, 4, 4), grid.MeshSpec(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e2.Strategy, "general-reduction") {
		t.Errorf("strategy = %q, want general reduction", e2.Strategy)
	}
	// Square chain fallback: (4,4,4) -> (8,8) is actually a general
	// reduction too, so use a case needing the chain: none exists below
	// dimension 2c... all square lowering with c < d < 2c is a general
	// reduction; d >= 2c needs the chain through intermediates, e.g.
	// (4,4,4,4,4) -> (32,32) (d=5, c=2).
	e3, err := Embed(grid.MustSpec(grid.Mesh, grid.Square(5, 4)), grid.MeshSpec(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := e3.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := e3.Dilation(); d > 8 {
		t.Errorf("(4^5) -> (32,32) dilation = %d, want <= 8 (Theorem 51)", d)
	}
}

func TestSizeMismatch(t *testing.T) {
	if _, err := Embed(grid.MeshSpec(4, 4), grid.MeshSpec(4, 5)); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestAgainstBruteForce compares the dispatcher's dilation with the true
// optimum on every tiny pair where the paper claims optimality.
func TestAgainstBruteForce(t *testing.T) {
	cases := []struct{ g, h grid.Spec }{
		{grid.LineSpec(8), grid.MeshSpec(4, 2)},
		{grid.RingSpec(8), grid.MeshSpec(4, 2)},
		{grid.RingSpec(9), grid.MeshSpec(3, 3)},
		{grid.RingSpec(6), grid.LineSpec(6)},
		{grid.TorusSpec(3, 3), grid.MeshSpec(3, 3)},
		{grid.MeshSpec(2, 4), grid.TorusSpec(2, 2, 2)},
		{grid.TorusSpec(2, 4), grid.MeshSpec(2, 2, 2)},
	}
	for _, c := range cases {
		e, err := Embed(c.g, c.h)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		ours := e.Dilation()
		opt, err := optimal.MinDilation(c.g, c.h, 16)
		if err != nil {
			t.Errorf("%s -> %s: %v", c.g, c.h, err)
			continue
		}
		if ours != opt {
			t.Errorf("%s -> %s: ours %d, optimal %d (strategy %s)", c.g, c.h, ours, opt, e.Strategy)
		}
	}
}

func TestPredicted(t *testing.T) {
	p, err := Predicted(grid.RingSpec(15), grid.MeshSpec(3, 5))
	if err != nil || p != 2 {
		t.Errorf("Predicted = %d, %v; want 2", p, err)
	}
	if _, err := Predicted(grid.MeshSpec(4, 4), grid.MeshSpec(4, 5)); err == nil {
		t.Error("Predicted accepted size mismatch")
	}
}
