package core

import (
	"testing"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// TestPrimeRefinementPrimeEndpoints exercises the permutation branches
// of refineToPrimes / coarsenFromPrimes: guests and hosts that already
// are prime shapes.
func TestPrimeRefinementPrimeEndpoints(t *testing.T) {
	// Guest is the prime shape: refine is a pure permutation.
	// (3,2,2) is the prime shape of 12; host (4,3)... wait simple
	// reduction covers that; force refinement with (2,3,2) -> (6,2):
	// FindSimple succeeds there too, so build a genuinely refinement-only
	// pair: equal dimension, non-permutation: (2,2,9) -> (6,6) has d=3,
	// c=2 and simple reduction fails (no subset of {2,2,9} multiplies to
	// 6), general reduction? 9 = 3*3 pairs with the 2s: works. Use a
	// same-dimension pair instead.
	g := grid.TorusSpec(4, 9)
	h := grid.TorusSpec(6, 6)
	e, err := Embed(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	if d, err := e.CheckPredicted(); err != nil {
		t.Fatalf("measured %d: %v", d, err)
	}

	// Host is the prime shape while the guest is not, same dimension:
	// (4,3) -> (2,2,3) is expansion; for the coarsen-permutation branch
	// use a guest whose prime shape equals the host's dimension count:
	// (9,2) -> (3,3,2) is again expansion. The permutation branch of
	// coarsenFromPrimes only triggers when h is prime-shaped AND the
	// pair required refinement, i.e. equal dimensions d == c == #primes:
	// then both are prime shapes and same-dim handles it. So assert the
	// mesh/torus kind change path through refinement instead.
	g2 := grid.TorusSpec(4, 9)
	h2 := grid.MeshSpec(6, 6)
	e2, err := Embed(g2, h2)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Verify(); err != nil {
		t.Fatal(err)
	}
	if d, err := e2.CheckPredicted(); err != nil {
		t.Fatalf("measured %d: %v", d, err)
	}
	// Torus guest into mesh host through refinement pays the factor 2 at
	// most once.
	if d := e2.Dilation(); d > 2*e.Dilation()+2 {
		t.Errorf("torus->mesh refinement dilation %d looks unreasonably high vs torus->torus %d", d, e.Dilation())
	}
}

// TestRefineCoarsenPermutationBranches drives the helper functions
// directly with prime-shaped endpoints. Dispatch never reaches these
// branches (a prime-shaped guest always admits a direct reduction and a
// prime-shaped host a direct expansion), but the helpers stay total so
// future callers cannot trip on them.
func TestRefineCoarsenPermutationBranches(t *testing.T) {
	mid := grid.Spec{Kind: grid.Mesh, Shape: primeShape(12)} // (3,2,2)
	up, err := refineToPrimes(grid.MeshSpec(2, 2, 3), mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := up.Dilation(); d != 1 {
		t.Errorf("prime-shaped refine dilation = %d, want 1", d)
	}
	down, err := coarsenFromPrimes(mid, grid.TorusSpec(2, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := down.Verify(); err != nil {
		t.Fatal(err)
	}
	if d := down.Dilation(); d != 1 {
		t.Errorf("prime-shaped coarsen dilation = %d, want 1", d)
	}
	// Torus prime guest into the mesh intermediate pays Lemma 36's 2.
	up2, err := refineToPrimes(grid.TorusSpec(3, 2, 2), mid)
	if err != nil {
		t.Fatal(err)
	}
	if d := up2.Dilation(); d != 2 {
		t.Errorf("torus prime refine into mesh dilation = %d, want 2", d)
	}
}

// TestPrimeShapeHelpers pins primeShape and primeFactors.
func TestPrimeShapeHelpers(t *testing.T) {
	ps := primeShape(60)
	if !ps.Equal(grid.Shape{5, 3, 2, 2}) {
		t.Errorf("primeShape(60) = %v", ps)
	}
	pf := primeFactors(1)
	if len(pf) != 0 {
		t.Errorf("primeFactors(1) = %v", pf)
	}
	if got := primeFactors(17); len(got) != 1 || got[0] != 17 {
		t.Errorf("primeFactors(17) = %v", got)
	}
}

// TestEmbedViaPrimesMid: the intermediate-stage hook yields genuinely
// new, still-valid embeddings — a rotation of the all-primes stage must
// verify, keep the refinement's size/specs, and differ from the
// unhooked table for at least one rotation of a pinned pair.
func TestEmbedViaPrimesMid(t *testing.T) {
	g, h := grid.TorusSpec(8, 2), grid.MeshSpec(4, 4)
	mid := PrimeIntermediate(g, h)
	if mid.Size() != g.Size() {
		t.Fatalf("intermediate %s has %d nodes, want %d", mid, mid.Size(), g.Size())
	}
	plain, err := EmbedViaPrimesMid(g, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := EmbedViaPrimes(g, h)
	if err != nil {
		t.Fatal(err)
	}
	refT, plainT := ref.Table(), plain.Table()
	for i := range refT {
		if refT[i] != plainT[i] {
			t.Fatalf("nil hook diverges from EmbedViaPrimes at %d", i)
		}
	}
	changed := false
	for axis := 0; axis < mid.Dim(); axis++ {
		rot := make([]int, mid.Dim())
		rot[axis] = 1
		e, err := EmbedViaPrimesMid(g, h, func(m grid.Spec) (*embed.Embedding, error) {
			return embed.Rotate(m, rot)
		})
		if err != nil {
			t.Fatalf("axis %d: %v", axis, err)
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("axis %d: %v", axis, err)
		}
		for i, v := range e.Table() {
			if v != refT[i] {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("no intermediate rotation produced a new embedding")
	}
	// A hook whose embedding does not map the intermediate onto itself
	// is rejected.
	if _, err := EmbedViaPrimesMid(g, h, func(m grid.Spec) (*embed.Embedding, error) {
		return embed.Rotate(g, []int{1, 0})
	}); err == nil {
		t.Error("hook with a non-intermediate embedding accepted")
	}
}
