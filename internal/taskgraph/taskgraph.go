// Package taskgraph generates the communication patterns that motivate
// the paper's embedding problem (Section 1): parallel tasks whose
// communication graphs are lines (pipelines), rings, meshes (stencils),
// toruses (periodic halo exchanges) and hypercubes. A task graph paired
// with a placement onto an interconnection network is the "matching task
// communication to network topology" problem the paper formalizes as
// graph embedding.
package taskgraph

import (
	"fmt"

	"torusmesh/internal/grid"
)

// Graph is an undirected communication graph over tasks 0..N-1.
type Graph struct {
	Name  string
	N     int
	Edges [][2]int
}

// FromSpec converts a torus or mesh spec into a task graph whose tasks
// are the nodes (row-major indexed) and whose edges are the graph edges.
func FromSpec(sp grid.Spec) *Graph {
	g := &Graph{Name: sp.String(), N: sp.Size()}
	sp.VisitEdges(func(a, b grid.Node) {
		g.Edges = append(g.Edges, [2]int{sp.Shape.Index(a), sp.Shape.Index(b)})
	})
	return g
}

// Pipeline returns a line-shaped task graph: stage i talks to stage i+1.
// This is the communication pattern of software pipelines and systolic
// chains.
func Pipeline(n int) *Graph {
	g := &Graph{Name: fmt.Sprintf("pipeline(%d)", n), N: n}
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, i + 1})
	}
	return g
}

// RingPipeline returns a ring-shaped task graph: a pipeline whose last
// stage feeds back to the first (token rings, round-robin reductions).
func RingPipeline(n int) *Graph {
	g := Pipeline(n)
	g.Name = fmt.Sprintf("ring-pipeline(%d)", n)
	if n > 2 {
		g.Edges = append(g.Edges, [2]int{n - 1, 0})
	}
	return g
}

// Stencil2D returns the 5-point stencil pattern on a rows x cols grid:
// the communication graph of Jacobi/Gauss-Seidel sweeps, image filters
// and PDE solvers the paper's introduction cites.
func Stencil2D(rows, cols int) *Graph {
	g := FromSpec(grid.MeshSpec(rows, cols))
	g.Name = fmt.Sprintf("stencil2d(%dx%d)", rows, cols)
	return g
}

// Stencil3D returns the 7-point stencil on an x0 x x1 x x2 grid.
func Stencil3D(x0, x1, x2 int) *Graph {
	g := FromSpec(grid.MeshSpec(x0, x1, x2))
	g.Name = fmt.Sprintf("stencil3d(%dx%dx%d)", x0, x1, x2)
	return g
}

// HaloExchange2D returns the periodic 5-point stencil (a torus): the
// pattern of spectral and periodic-boundary scientific codes.
func HaloExchange2D(rows, cols int) *Graph {
	g := FromSpec(grid.TorusSpec(rows, cols))
	g.Name = fmt.Sprintf("halo2d(%dx%d)", rows, cols)
	return g
}

// Hypercube returns the dimension-exchange pattern of size 2^d used by
// FFTs, bitonic sorts and allreduce butterflies.
func Hypercube(d int) *Graph {
	g := FromSpec(grid.MustSpec(grid.Torus, grid.Hypercube(d)))
	g.Name = fmt.Sprintf("hypercube(%d)", d)
	return g
}

// Validate checks the edge list is well-formed.
func (g *Graph) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("taskgraph: %s has no tasks", g.Name)
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("taskgraph: %s has out-of-range edge %v", g.Name, e)
		}
		if e[0] == e[1] {
			return fmt.Errorf("taskgraph: %s has self-loop at %d", g.Name, e[0])
		}
	}
	return nil
}

// Incidence returns, for every task, the indices into Edges of the
// edges incident to it — the adjacency the incremental placement
// evaluator walks to find the O(degree) routes a node move touches.
// Entries are in Edges order; an edge appears once under each endpoint.
func (g *Graph) Incidence() [][]int32 {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	// One backing array, sliced per task, so the structure is two
	// allocations regardless of size.
	backing := make([]int32, 2*len(g.Edges))
	inc := make([][]int32, g.N)
	off := 0
	for t, d := range deg {
		inc[t] = backing[off : off : off+d]
		off += d
	}
	for i, e := range g.Edges {
		inc[e[0]] = append(inc[e[0]], int32(i))
		inc[e[1]] = append(inc[e[1]], int32(i))
	}
	return inc
}

// MaxDegree returns the maximum task degree.
func (g *Graph) MaxDegree() int {
	deg := make([]int, g.N)
	max := 0
	for _, e := range g.Edges {
		deg[e[0]]++
		deg[e[1]]++
		if deg[e[0]] > max {
			max = deg[e[0]]
		}
		if deg[e[1]] > max {
			max = deg[e[1]]
		}
	}
	return max
}
