package taskgraph

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestPipelineEdges(t *testing.T) {
	p := Pipeline(5)
	if p.N != 5 || len(p.Edges) != 4 {
		t.Fatalf("pipeline: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MaxDegree() != 2 {
		t.Errorf("pipeline max degree = %d", p.MaxDegree())
	}
}

func TestRingPipelineSmall(t *testing.T) {
	// n = 2: the wrap edge would duplicate the single edge; it is omitted.
	r := RingPipeline(2)
	if len(r.Edges) != 1 {
		t.Errorf("ring-pipeline(2) edges = %d, want 1", len(r.Edges))
	}
	r = RingPipeline(5)
	if len(r.Edges) != 5 {
		t.Errorf("ring-pipeline(5) edges = %d, want 5", len(r.Edges))
	}
}

func TestFromSpecMatchesEdgeCount(t *testing.T) {
	for _, sp := range []grid.Spec{
		grid.MeshSpec(3, 4), grid.TorusSpec(3, 4), grid.MeshSpec(2, 2, 2),
	} {
		g := FromSpec(sp)
		if len(g.Edges) != sp.EdgeCount() {
			t.Errorf("%s: %d edges, want %d", sp, len(g.Edges), sp.EdgeCount())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := &Graph{Name: "bad", N: 3, Edges: [][2]int{{0, 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	loop := &Graph{Name: "loop", N: 3, Edges: [][2]int{{1, 1}}}
	if err := loop.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	empty := &Graph{Name: "empty", N: 0}
	if err := empty.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
}

// TestIncidence: every task lists exactly the edges touching it, in
// Edges order, and the lists cover each edge twice in total.
func TestIncidence(t *testing.T) {
	for _, g := range []*Graph{
		Pipeline(6),
		RingPipeline(5),
		FromSpec(grid.TorusSpec(3, 4)),
		FromSpec(grid.MeshSpec(2, 2, 3)),
	} {
		inc := g.Incidence()
		if len(inc) != g.N {
			t.Fatalf("%s: incidence covers %d tasks, want %d", g.Name, len(inc), g.N)
		}
		total := 0
		for task, edges := range inc {
			last := int32(-1)
			for _, ei := range edges {
				if ei <= last {
					t.Errorf("%s: task %d incidence out of order: %v", g.Name, task, edges)
				}
				last = ei
				e := g.Edges[ei]
				if e[0] != task && e[1] != task {
					t.Errorf("%s: task %d lists edge %v it does not touch", g.Name, task, e)
				}
			}
			total += len(edges)
		}
		if total != 2*len(g.Edges) {
			t.Errorf("%s: incidence lists %d endpoints, want %d", g.Name, total, 2*len(g.Edges))
		}
	}
}

func TestGeneratorsNamesAndDegrees(t *testing.T) {
	if Stencil2D(4, 5).Name != "stencil2d(4x5)" {
		t.Error("stencil2d name wrong")
	}
	if Stencil3D(2, 2, 2).MaxDegree() != 3 {
		t.Errorf("2x2x2 stencil max degree = %d, want 3", Stencil3D(2, 2, 2).MaxDegree())
	}
	if HaloExchange2D(4, 4).MaxDegree() != 4 {
		t.Error("halo max degree wrong")
	}
	if Hypercube(4).MaxDegree() != 4 {
		t.Error("hypercube max degree wrong")
	}
}
