package taskgraph

import (
	"testing"

	"torusmesh/internal/grid"
)

func TestPipelineEdges(t *testing.T) {
	p := Pipeline(5)
	if p.N != 5 || len(p.Edges) != 4 {
		t.Fatalf("pipeline: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MaxDegree() != 2 {
		t.Errorf("pipeline max degree = %d", p.MaxDegree())
	}
}

func TestRingPipelineSmall(t *testing.T) {
	// n = 2: the wrap edge would duplicate the single edge; it is omitted.
	r := RingPipeline(2)
	if len(r.Edges) != 1 {
		t.Errorf("ring-pipeline(2) edges = %d, want 1", len(r.Edges))
	}
	r = RingPipeline(5)
	if len(r.Edges) != 5 {
		t.Errorf("ring-pipeline(5) edges = %d, want 5", len(r.Edges))
	}
}

func TestFromSpecMatchesEdgeCount(t *testing.T) {
	for _, sp := range []grid.Spec{
		grid.MeshSpec(3, 4), grid.TorusSpec(3, 4), grid.MeshSpec(2, 2, 2),
	} {
		g := FromSpec(sp)
		if len(g.Edges) != sp.EdgeCount() {
			t.Errorf("%s: %d edges, want %d", sp, len(g.Edges), sp.EdgeCount())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", sp, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := &Graph{Name: "bad", N: 3, Edges: [][2]int{{0, 3}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	loop := &Graph{Name: "loop", N: 3, Edges: [][2]int{{1, 1}}}
	if err := loop.Validate(); err == nil {
		t.Error("self-loop accepted")
	}
	empty := &Graph{Name: "empty", N: 0}
	if err := empty.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestGeneratorsNamesAndDegrees(t *testing.T) {
	if Stencil2D(4, 5).Name != "stencil2d(4x5)" {
		t.Error("stencil2d name wrong")
	}
	if Stencil3D(2, 2, 2).MaxDegree() != 3 {
		t.Errorf("2x2x2 stencil max degree = %d, want 3", Stencil3D(2, 2, 2).MaxDegree())
	}
	if HaloExchange2D(4, 4).MaxDegree() != 4 {
		t.Error("halo max degree wrong")
	}
	if Hypercube(4).MaxDegree() != 4 {
		t.Error("hypercube max degree wrong")
	}
}
