package baseline

import (
	"math/big"
	"testing"

	"torusmesh/internal/grid"
)

func TestFitzgeraldFormulas(t *testing.T) {
	if Fitzgerald2D(4) != 4 {
		t.Error("Fitzgerald2D wrong")
	}
	// ⌊3l²/4 + l/2⌋ for l = 2, 3, 4, 5.
	cases := map[int]int{2: 4, 3: 8, 4: 14, 5: 21}
	for l, want := range cases {
		if got := Fitzgerald3D(l); got != want {
			t.Errorf("Fitzgerald3D(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestHarperSequence(t *testing.T) {
	// Σ_{k=0}^{d-1} C(k,⌊k/2⌋): 1, 2, 4, 7, 13, 23, 43, ...
	want := map[int]int{1: 1, 2: 2, 3: 4, 4: 7, 5: 13, 6: 23, 7: 43}
	for d, w := range want {
		if got := HarperHypercubeLine(d); got != w {
			t.Errorf("Harper(%d) = %d, want %d", d, got, w)
		}
	}
}

// TestAppendixEpsilon reproduces the appendix: ε₀ = ε₁ = ε₂ = 1,
// ε₃ = 7/8, strictly decreasing for m >= 3, recurrence agrees with the
// direct sum, and Harper(d) = ε_{d-1}·2^{d-1}.
func TestAppendixEpsilon(t *testing.T) {
	one := big.NewRat(1, 1)
	for m := 0; m <= 2; m++ {
		if Epsilon(m).Cmp(one) != 0 {
			t.Errorf("ε_%d = %s, want 1", m, Epsilon(m))
		}
	}
	if Epsilon(3).Cmp(big.NewRat(7, 8)) != 0 {
		t.Errorf("ε₃ = %s, want 7/8", Epsilon(3))
	}
	prev := Epsilon(2)
	for m := 3; m <= 24; m++ {
		cur := Epsilon(m)
		if cur.Cmp(prev) >= 0 {
			t.Errorf("ε_%d = %s not strictly below ε_%d = %s", m, cur, m-1, prev)
		}
		if rec := EpsilonByRecurrence(m); rec.Cmp(cur) != 0 {
			t.Errorf("recurrence ε_%d = %s, direct = %s", m, rec, cur)
		}
		prev = cur
	}
	for d := 1; d <= 12; d++ {
		eps := Epsilon(d - 1)
		scaled := new(big.Rat).Mul(eps, new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(d-1))))
		if !scaled.IsInt() || scaled.Num().Int64() != int64(HarperHypercubeLine(d)) {
			t.Errorf("d=%d: ε_{d-1}·2^{d-1} = %s, Harper = %d", d, scaled, HarperHypercubeLine(d))
		}
	}
}

// TestOursVsHarper reproduces the Section 5 discussion: our 2^{d-1}
// equals Harper's optimum for d <= 3, and the ratio 1/ε_{d-1} grows
// strictly for d > 3.
func TestOursVsHarper(t *testing.T) {
	for d := 1; d <= 3; d++ {
		if OurHypercubeLine(d) != HarperHypercubeLine(d) {
			t.Errorf("d=%d: ours %d != optimal %d (should be truly optimal)", d, OurHypercubeLine(d), HarperHypercubeLine(d))
		}
	}
	prevRatio := big.NewRat(1, 1)
	for d := 4; d <= 12; d++ {
		ours := big.NewRat(int64(OurHypercubeLine(d)), 1)
		opt := big.NewRat(int64(HarperHypercubeLine(d)), 1)
		ratio := new(big.Rat).Quo(ours, opt)
		if ratio.Cmp(big.NewRat(1, 1)) <= 0 {
			t.Errorf("d=%d: ratio %s should exceed 1", d, ratio)
		}
		if ratio.Cmp(prevRatio) <= 0 {
			t.Errorf("d=%d: ratio %s not increasing past %s", d, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestRowMajorAndReversal(t *testing.T) {
	g := grid.RingSpec(24)
	h := grid.MeshSpec(4, 2, 3)
	rm, err := RowMajor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Verify(); err != nil {
		t.Fatal(err)
	}
	// The naive baseline pays the unreflected-sequence penalty: its
	// dilation is far above the optimal 1 (h_L embedding).
	if d := rm.Dilation(); d < 2 {
		t.Errorf("row-major ring->mesh dilation = %d; expected a poor baseline >= 2", d)
	}
	rv, err := Reversal(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := rv.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := RowMajor(grid.RingSpec(6), grid.MeshSpec(4, 2)); err == nil {
		t.Error("size mismatch accepted")
	}
}
