// Package baseline implements the known optimal results that Section 5
// of Ma & Tao compares against, plus naive embeddings used as ablation
// baselines in the experiment harness:
//
//   - Fitzgerald [Fit74]: optimal (ℓ,ℓ)-mesh in a line costs ℓ, and
//     optimal (ℓ,ℓ,ℓ)-mesh in a line costs ⌊3ℓ²/4 + ℓ/2⌋.
//   - Ma & Narahari [MN86]: optimal (ℓ,ℓ)-torus in a ring costs ℓ.
//   - Harper [Har66]: optimal hypercube of size 2^d in a line costs
//     Σ_{k=0}^{d-1} C(k, ⌊k/2⌋), which the paper's appendix rewrites as
//     ε_{d-1}·2^{d-1} with ε₀ = ε₁ = ε₂ = 1 and ε strictly decreasing
//     from d = 3 on.
//   - Row-major: the identity-by-index embedding (the unreflected
//     sequence P), the natural naive baseline.
package baseline

import (
	"math/big"

	"torusmesh/internal/embed"
	"torusmesh/internal/grid"
)

// Fitzgerald2D returns the optimal dilation of embedding an (l,l)-mesh
// in a line of the same size: l.
func Fitzgerald2D(l int) int { return l }

// Fitzgerald3D returns the optimal dilation of embedding an (l,l,l)-mesh
// in a line of the same size: ⌊3l²/4 + l/2⌋.
func Fitzgerald3D(l int) int { return (3*l*l + 2*l) / 4 }

// MNTorusRing returns the optimal dilation of embedding an (l,l)-torus
// in a ring of the same size: l.
func MNTorusRing(l int) int { return l }

// HarperHypercubeLine returns the optimal dilation of embedding a
// hypercube of size 2^d in a line: Σ_{k=0}^{d-1} C(k, ⌊k/2⌋).
func HarperHypercubeLine(d int) int {
	sum := 0
	for k := 0; k < d; k++ {
		sum += centralBinomial(k)
	}
	return sum
}

// centralBinomial returns C(k, ⌊k/2⌋).
func centralBinomial(k int) int {
	r := new(big.Int).Binomial(int64(k), int64(k/2))
	return int(r.Int64())
}

// Epsilon returns ε_m = (Σ_{k=0}^{m} C(k, ⌊k/2⌋)) / 2^m as an exact
// rational. The appendix proves ε₀ = ε₁ = ε₂ = 1 and ε_{m-1} > ε_m for
// all m >= 3, via the recurrence ε_m = (ε_{m-1} + C_{m-1})/2 with
// C_{m-1} = C(m, ⌊m/2⌋)/2^m.
func Epsilon(m int) *big.Rat {
	sum := big.NewInt(0)
	for k := 0; k <= m; k++ {
		sum.Add(sum, new(big.Int).Binomial(int64(k), int64(k/2)))
	}
	den := new(big.Int).Lsh(big.NewInt(1), uint(m))
	return new(big.Rat).SetFrac(sum, den)
}

// EpsilonByRecurrence computes ε_m via the appendix recurrence
// ε_m = (ε_{m-1} + C_{m-1})/2 seeded at ε₂ = 1, where Proposition 1
// defines C_{k-1} by C(k, ⌊k/2⌋) = 2^{k-1}·C_{k-1}, i.e.
// C_{i-1} = C(i, ⌊i/2⌋)/2^{i-1}. Exists to cross-check Epsilon in tests
// exactly as the appendix proof does.
func EpsilonByRecurrence(m int) *big.Rat {
	if m <= 2 {
		return big.NewRat(1, 1)
	}
	eps := big.NewRat(1, 1) // ε₂
	for i := 3; i <= m; i++ {
		ck := new(big.Rat).SetFrac(
			new(big.Int).Binomial(int64(i), int64(i/2)),
			new(big.Int).Lsh(big.NewInt(1), uint(i-1)),
		)
		eps.Add(eps, ck)
		eps.Quo(eps, big.NewRat(2, 1))
	}
	return eps
}

// OurHypercubeLine returns the dilation of this paper's hypercube-in-line
// embedding (Theorem 48 with ℓ = 2, c = 1): 2^{d-1}.
func OurHypercubeLine(d int) int { return 1 << (d - 1) }

// RowMajor returns the identity-by-index embedding of g in h: guest node
// with row-major index x maps to host node with row-major index x. This
// is the "sequence P" baseline — correct but oblivious to proximity.
func RowMajor(g, h grid.Spec) (*embed.Embedding, error) {
	return embed.NewIndexed(g, h, "baseline/row-major", 0, func(x int) int { return x })
}

// Reversal returns the index-reversal embedding, a second trivial
// baseline (worst-case-ish for locality).
func Reversal(g, h grid.Spec) (*embed.Embedding, error) {
	n := g.Size()
	return embed.NewIndexed(g, h, "baseline/reversal", 0, func(x int) int { return n - 1 - x })
}
