// Fault-tolerance coverage: an in-process fault-injecting worker that
// drops, duplicates, delays and corrupts shard streams, asserting the
// driver's retries and straggler re-issues still converge to the
// bit-for-bit merged artifact.

package driver_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"torusmesh/internal/census"
	"torusmesh/internal/driver"
)

// Fault kinds the injecting worker can apply to one attempt.
const (
	faultNone      = ""
	faultDrop      = "drop"      // swallow every other record, then return cleanly
	faultDuplicate = "duplicate" // emit every record twice
	faultCorrupt   = "corrupt"   // mangle records so driver validation rejects them
	faultCrash     = "crash"     // error out after a few records
	faultHang      = "hang"      // emit nothing and block until cancelled
)

// faultWorker wraps InProcess and injects the configured fault on
// specific (shard, attempt) executions; all other executions run
// clean. It also tallies attempts per shard.
type faultWorker struct {
	faults map[[2]int]string // (shard, attempt) -> fault kind

	mu       sync.Mutex
	attempts map[int]int
}

func newFaultWorker(faults map[[2]int]string) *faultWorker {
	return &faultWorker{faults: faults, attempts: map[int]int{}}
}

func (w *faultWorker) attemptCount(shard int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.attempts[shard]
}

func (w *faultWorker) Run(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
	w.mu.Lock()
	w.attempts[job.Shard]++
	w.mu.Unlock()
	fault := w.faults[[2]int{job.Shard, job.Attempt}]

	if fault == faultHang {
		<-ctx.Done()
		return ctx.Err()
	}
	seen := 0
	wrapped := func(r census.PairResult) error {
		seen++
		switch fault {
		case faultDrop:
			if seen%2 == 0 {
				return nil // swallowed: the stream silently loses records
			}
		case faultDuplicate:
			if err := emit(r); err != nil {
				return err
			}
		case faultCorrupt:
			r.Guest = "corrupt(" + r.Guest + ")"
		case faultCrash:
			if seen > 3 {
				return fmt.Errorf("injected crash after %d records", seen)
			}
		}
		return emit(r)
	}
	err := driver.InProcess{}.Run(ctx, job, wrapped)
	if fault == faultCrash && err == nil {
		// Stripes shorter than the crash threshold finish clean; make
		// the attempt fail anyway so the retry path is exercised.
		return fmt.Errorf("injected crash at end of stream")
	}
	return err
}

// TestFaultsConvergeBitForBit is the headline fault test: first
// attempts across the shards drop, duplicate, corrupt and crash, and
// after retries the merged artifact is still byte-identical to the
// unsharded census — with every pair delivered to OnResult exactly
// once.
func TestFaultsConvergeBitForBit(t *testing.T) {
	cfg := template(36, 0)
	want := encode(t, unsharded(t, cfg))
	w := newFaultWorker(map[[2]int]string{
		{0, 0}: faultDrop,
		{1, 0}: faultDuplicate,
		{2, 0}: faultCorrupt,
		{3, 0}: faultCrash,
		{4, 0}: faultCrash,
		{4, 1}: faultDrop, // a shard that fails twice in different ways
	})
	var mu sync.Mutex
	emitted := map[int]int{}
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 5, Workers: 3, Worker: w,
		Backoff: fastRetry,
		OnResult: func(r *census.PairResult) {
			mu.Lock()
			emitted[r.Index]++
			mu.Unlock()
		},
	}))
	if !bytes.Equal(want, got) {
		t.Error("faulted driver census differs from unsharded census")
	}
	space := len(emitted)
	for idx, count := range emitted {
		if count != 1 {
			t.Errorf("pair %d reached OnResult %d times", idx, count)
		}
		if idx < 0 {
			t.Errorf("negative pair index %d", idx)
		}
	}
	if space == 0 {
		t.Fatal("nothing was emitted")
	}
	// Every faulted shard must have retried at least once; duplicate
	// streams fold without a retry (dedup absorbs them).
	for _, s := range []int{0, 2, 3, 4} {
		if w.attemptCount(s) < 2 {
			t.Errorf("shard %d ran %d attempt(s), want a retry", s, w.attemptCount(s))
		}
	}
	if w.attemptCount(1) != 1 {
		t.Errorf("duplicate-stream shard retried (%d attempts); dedup should absorb it", w.attemptCount(1))
	}
	if w.attemptCount(4) < 3 {
		t.Errorf("twice-failing shard 4 ran %d attempt(s), want 3", w.attemptCount(4))
	}
}

// TestCrashKeepsDeliveredRecords: records streamed before a lost one
// stay folded, and the retry's Skip filter prevents their
// re-evaluation — only the pair that never reached the driver runs
// again.
func TestCrashKeepsDeliveredRecords(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))
	var mu sync.Mutex
	evaluated := map[int]int{}
	swallowed := -1
	counting := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		wrapped := func(r census.PairResult) error {
			mu.Lock()
			evaluated[r.Index]++
			drop := job.Shard == 0 && job.Attempt == 0 && swallowed == -1
			if drop {
				swallowed = r.Index
			}
			mu.Unlock()
			if drop {
				return nil // lost in transit: folded by nobody
			}
			return emit(r)
		}
		return driver.InProcess{}.Run(ctx, job, wrapped)
	})
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 2, Workers: 2, Worker: counting, Backoff: fastRetry,
	}))
	if !bytes.Equal(want, got) {
		t.Error("census differs from unsharded census")
	}
	if swallowed < 0 {
		t.Fatal("no record was swallowed")
	}
	for idx, n := range evaluated {
		want := 1
		if idx == swallowed {
			want = 2 // once dropped, once on the retry
		}
		if n != want {
			t.Errorf("pair %d evaluated %d times, want %d", idx, n, want)
		}
	}
}

// TestStragglerReissue: a first attempt that hangs forever is re-issued
// once the other shards establish a median wall time, and the re-issued
// attempt completes the census bit for bit.
func TestStragglerReissue(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))
	w := newFaultWorker(map[[2]int]string{
		{3, 0}: faultHang,
	})
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 4, Workers: 3, Worker: w,
		Backoff:           fastRetry,
		Retries:           -1, // no failure retries: only the straggler policy can save shard 3
		StragglerFactor:   3,
		StragglerInterval: 5 * time.Millisecond,
	}))
	if !bytes.Equal(want, got) {
		t.Error("straggler-rescued census differs from unsharded census")
	}
	if w.attemptCount(3) < 2 {
		t.Errorf("hanging shard ran %d attempt(s), want a straggler re-issue", w.attemptCount(3))
	}
}

// TestRetriesExhausted: a shard that fails every attempt aborts the run
// with an error naming the shard.
func TestRetriesExhausted(t *testing.T) {
	cfg := template(24, 0)
	broken := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		if job.Shard == 1 {
			return fmt.Errorf("injected permanent failure")
		}
		return driver.InProcess{}.Run(ctx, job, emit)
	})
	d, err := driver.New(driver.Plan{
		Config: cfg, Shards: 3, Workers: 2, Worker: broken, Retries: 1, Backoff: fastRetry,
	})
	if err != nil {
		t.Fatalf("driver.New: %v", err)
	}
	_, err = d.Run(context.Background())
	if err == nil {
		t.Fatal("run with a permanently failing shard succeeded")
	}
	if !strings.Contains(err.Error(), "shard 1/3") || !strings.Contains(err.Error(), "injected permanent failure") {
		t.Errorf("error does not name the failing shard and cause: %v", err)
	}
}

// TestCorruptIndexRejected: records pointing outside the pair space or
// into the wrong stripe fail the attempt.
func TestCorruptIndexRejected(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))
	mangle := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		first := true
		wrapped := func(r census.PairResult) error {
			if job.Attempt == 0 && first {
				first = false
				bad := r
				bad.Index += 1 << 20 // far outside the space
				if err := emit(bad); err != nil {
					return err
				}
			}
			return emit(r)
		}
		return driver.InProcess{}.Run(ctx, job, wrapped)
	})
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 2, Workers: 2, Worker: mangle, Backoff: fastRetry,
	}))
	if !bytes.Equal(want, got) {
		t.Error("census differs after corrupt-index retries")
	}
}

// TestStragglerClampLoneWorker: with fewer than two completed shards
// there is no fleet median, so the straggler cutoff must stay disarmed
// — a healthy worker that is merely slow (the only shard still
// running) must not be re-issued and cancelled off a 0/1-sample
// "median". Before the clamp this scenario re-issued shard 1 as soon
// as fast shard 0 landed its single duration sample.
func TestStragglerClampLoneWorker(t *testing.T) {
	cfg := template(24, 0)
	want := encode(t, unsharded(t, cfg))
	slow := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		if job.Shard == 1 {
			// Far past any cutoff a 1-sample median would set, but
			// healthy: it completes on its own.
			select {
			case <-time.After(150 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return driver.InProcess{}.Run(ctx, job, emit)
	})
	w := newFaultWorker(nil)
	counting := workerFunc(func(ctx context.Context, job driver.Job, emit func(census.PairResult) error) error {
		w.mu.Lock()
		w.attempts[job.Shard]++
		w.mu.Unlock()
		return slow(ctx, job, emit)
	})
	got := encode(t, run(t, driver.Plan{
		Config: cfg, Shards: 2, Workers: 2, Worker: counting,
		Backoff:           fastRetry,
		Retries:           -1,
		StragglerFactor:   1.5,
		StragglerInterval: 5 * time.Millisecond,
	}))
	if !bytes.Equal(want, got) {
		t.Error("census differs from unsharded census")
	}
	if n := w.attemptCount(1); n != 1 {
		t.Errorf("slow lone shard ran %d attempt(s), want exactly 1 (cutoff must not arm on one completed shard)", n)
	}
}
